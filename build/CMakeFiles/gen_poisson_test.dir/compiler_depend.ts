# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for gen_poisson_test.
