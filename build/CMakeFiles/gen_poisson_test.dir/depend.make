# Empty dependencies file for gen_poisson_test.
# This may be replaced when dependencies are built.
