file(REMOVE_RECURSE
  "CMakeFiles/gen_poisson_test.dir/tests/gen_poisson_test.cpp.o"
  "CMakeFiles/gen_poisson_test.dir/tests/gen_poisson_test.cpp.o.d"
  "gen_poisson_test"
  "gen_poisson_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_poisson_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
