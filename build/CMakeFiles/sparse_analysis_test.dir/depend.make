# Empty dependencies file for sparse_analysis_test.
# This may be replaced when dependencies are built.
