file(REMOVE_RECURSE
  "CMakeFiles/sparse_analysis_test.dir/tests/sparse_analysis_test.cpp.o"
  "CMakeFiles/sparse_analysis_test.dir/tests/sparse_analysis_test.cpp.o.d"
  "sparse_analysis_test"
  "sparse_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
