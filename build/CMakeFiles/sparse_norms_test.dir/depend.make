# Empty dependencies file for sparse_norms_test.
# This may be replaced when dependencies are built.
