file(REMOVE_RECURSE
  "CMakeFiles/sparse_norms_test.dir/tests/sparse_norms_test.cpp.o"
  "CMakeFiles/sparse_norms_test.dir/tests/sparse_norms_test.cpp.o.d"
  "sparse_norms_test"
  "sparse_norms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_norms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
