# Empty dependencies file for example_fault_injection_study.
# This may be replaced when dependencies are built.
