file(REMOVE_RECURSE
  "CMakeFiles/example_fault_injection_study.dir/examples/fault_injection_study.cpp.o"
  "CMakeFiles/example_fault_injection_study.dir/examples/fault_injection_study.cpp.o.d"
  "example_fault_injection_study"
  "example_fault_injection_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fault_injection_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
