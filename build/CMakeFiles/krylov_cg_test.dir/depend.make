# Empty dependencies file for krylov_cg_test.
# This may be replaced when dependencies are built.
