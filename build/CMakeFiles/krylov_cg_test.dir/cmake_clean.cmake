file(REMOVE_RECURSE
  "CMakeFiles/krylov_cg_test.dir/tests/krylov_cg_test.cpp.o"
  "CMakeFiles/krylov_cg_test.dir/tests/krylov_cg_test.cpp.o.d"
  "krylov_cg_test"
  "krylov_cg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krylov_cg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
