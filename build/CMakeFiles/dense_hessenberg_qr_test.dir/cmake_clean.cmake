file(REMOVE_RECURSE
  "CMakeFiles/dense_hessenberg_qr_test.dir/tests/dense_hessenberg_qr_test.cpp.o"
  "CMakeFiles/dense_hessenberg_qr_test.dir/tests/dense_hessenberg_qr_test.cpp.o.d"
  "dense_hessenberg_qr_test"
  "dense_hessenberg_qr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dense_hessenberg_qr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
