# Empty dependencies file for dense_hessenberg_qr_test.
# This may be replaced when dependencies are built.
