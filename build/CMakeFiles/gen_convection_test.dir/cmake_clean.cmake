file(REMOVE_RECURSE
  "CMakeFiles/gen_convection_test.dir/tests/gen_convection_test.cpp.o"
  "CMakeFiles/gen_convection_test.dir/tests/gen_convection_test.cpp.o.d"
  "gen_convection_test"
  "gen_convection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_convection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
