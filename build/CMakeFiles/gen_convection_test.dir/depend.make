# Empty dependencies file for gen_convection_test.
# This may be replaced when dependencies are built.
