# Empty dependencies file for sdc_detector_property_test.
# This may be replaced when dependencies are built.
