# Empty dependencies file for bench_fig2_structure.
# This may be replaced when dependencies are built.
