file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_structure.dir/bench/bench_fig2_structure.cpp.o"
  "CMakeFiles/bench_fig2_structure.dir/bench/bench_fig2_structure.cpp.o.d"
  "bench_fig2_structure"
  "bench_fig2_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
