# Empty dependencies file for krylov_basis_ortho_test.
# This may be replaced when dependencies are built.
