file(REMOVE_RECURSE
  "CMakeFiles/krylov_basis_ortho_test.dir/tests/krylov_basis_ortho_test.cpp.o"
  "CMakeFiles/krylov_basis_ortho_test.dir/tests/krylov_basis_ortho_test.cpp.o.d"
  "krylov_basis_ortho_test"
  "krylov_basis_ortho_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krylov_basis_ortho_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
