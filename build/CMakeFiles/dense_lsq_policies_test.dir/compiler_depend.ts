# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dense_lsq_policies_test.
