file(REMOVE_RECURSE
  "CMakeFiles/dense_lsq_policies_test.dir/tests/dense_lsq_policies_test.cpp.o"
  "CMakeFiles/dense_lsq_policies_test.dir/tests/dense_lsq_policies_test.cpp.o.d"
  "dense_lsq_policies_test"
  "dense_lsq_policies_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dense_lsq_policies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
