# Empty dependencies file for dense_lsq_policies_test.
# This may be replaced when dependencies are built.
