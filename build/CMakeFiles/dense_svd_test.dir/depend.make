# Empty dependencies file for dense_svd_test.
# This may be replaced when dependencies are built.
