file(REMOVE_RECURSE
  "CMakeFiles/dense_svd_test.dir/tests/dense_svd_test.cpp.o"
  "CMakeFiles/dense_svd_test.dir/tests/dense_svd_test.cpp.o.d"
  "dense_svd_test"
  "dense_svd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dense_svd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
