# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for krylov_arnoldi_property_test.
