file(REMOVE_RECURSE
  "CMakeFiles/krylov_arnoldi_test.dir/tests/krylov_arnoldi_test.cpp.o"
  "CMakeFiles/krylov_arnoldi_test.dir/tests/krylov_arnoldi_test.cpp.o.d"
  "krylov_arnoldi_test"
  "krylov_arnoldi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krylov_arnoldi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
