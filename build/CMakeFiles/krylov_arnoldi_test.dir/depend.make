# Empty dependencies file for krylov_arnoldi_test.
# This may be replaced when dependencies are built.
