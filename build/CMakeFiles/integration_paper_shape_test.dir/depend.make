# Empty dependencies file for integration_paper_shape_test.
# This may be replaced when dependencies are built.
