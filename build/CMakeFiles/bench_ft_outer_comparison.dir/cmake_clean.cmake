file(REMOVE_RECURSE
  "CMakeFiles/bench_ft_outer_comparison.dir/bench/bench_ft_outer_comparison.cpp.o"
  "CMakeFiles/bench_ft_outer_comparison.dir/bench/bench_ft_outer_comparison.cpp.o.d"
  "bench_ft_outer_comparison"
  "bench_ft_outer_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ft_outer_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
