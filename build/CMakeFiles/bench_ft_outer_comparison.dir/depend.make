# Empty dependencies file for bench_ft_outer_comparison.
# This may be replaced when dependencies are built.
