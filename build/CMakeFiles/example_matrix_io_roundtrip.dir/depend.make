# Empty dependencies file for example_matrix_io_roundtrip.
# This may be replaced when dependencies are built.
