file(REMOVE_RECURSE
  "CMakeFiles/example_matrix_io_roundtrip.dir/examples/matrix_io_roundtrip.cpp.o"
  "CMakeFiles/example_matrix_io_roundtrip.dir/examples/matrix_io_roundtrip.cpp.o.d"
  "example_matrix_io_roundtrip"
  "example_matrix_io_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_matrix_io_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
