# Empty dependencies file for krylov_fgmres_test.
# This may be replaced when dependencies are built.
