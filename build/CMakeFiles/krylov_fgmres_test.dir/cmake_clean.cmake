file(REMOVE_RECURSE
  "CMakeFiles/krylov_fgmres_test.dir/tests/krylov_fgmres_test.cpp.o"
  "CMakeFiles/krylov_fgmres_test.dir/tests/krylov_fgmres_test.cpp.o.d"
  "krylov_fgmres_test"
  "krylov_fgmres_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krylov_fgmres_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
