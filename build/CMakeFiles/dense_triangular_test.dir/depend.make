# Empty dependencies file for dense_triangular_test.
# This may be replaced when dependencies are built.
