file(REMOVE_RECURSE
  "CMakeFiles/dense_triangular_test.dir/tests/dense_triangular_test.cpp.o"
  "CMakeFiles/dense_triangular_test.dir/tests/dense_triangular_test.cpp.o.d"
  "dense_triangular_test"
  "dense_triangular_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dense_triangular_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
