file(REMOVE_RECURSE
  "CMakeFiles/sdc_bits_test.dir/tests/sdc_bits_test.cpp.o"
  "CMakeFiles/sdc_bits_test.dir/tests/sdc_bits_test.cpp.o.d"
  "sdc_bits_test"
  "sdc_bits_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdc_bits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
