# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sdc_bits_test.
