# Empty dependencies file for sdc_bits_test.
# This may be replaced when dependencies are built.
