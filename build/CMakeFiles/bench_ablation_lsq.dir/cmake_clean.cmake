file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lsq.dir/bench/bench_ablation_lsq.cpp.o"
  "CMakeFiles/bench_ablation_lsq.dir/bench/bench_ablation_lsq.cpp.o.d"
  "bench_ablation_lsq"
  "bench_ablation_lsq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lsq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
