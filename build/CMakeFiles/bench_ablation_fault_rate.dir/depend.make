# Empty dependencies file for bench_ablation_fault_rate.
# This may be replaced when dependencies are built.
