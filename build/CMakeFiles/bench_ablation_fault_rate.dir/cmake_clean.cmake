file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fault_rate.dir/bench/bench_ablation_fault_rate.cpp.o"
  "CMakeFiles/bench_ablation_fault_rate.dir/bench/bench_ablation_fault_rate.cpp.o.d"
  "bench_ablation_fault_rate"
  "bench_ablation_fault_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fault_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
