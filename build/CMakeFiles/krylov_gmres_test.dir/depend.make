# Empty dependencies file for krylov_gmres_test.
# This may be replaced when dependencies are built.
