file(REMOVE_RECURSE
  "CMakeFiles/krylov_gmres_test.dir/tests/krylov_gmres_test.cpp.o"
  "CMakeFiles/krylov_gmres_test.dir/tests/krylov_gmres_test.cpp.o.d"
  "krylov_gmres_test"
  "krylov_gmres_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krylov_gmres_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
