file(REMOVE_RECURSE
  "CMakeFiles/example_detector_response.dir/examples/detector_response.cpp.o"
  "CMakeFiles/example_detector_response.dir/examples/detector_response.cpp.o.d"
  "example_detector_response"
  "example_detector_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_detector_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
