# Empty dependencies file for example_detector_response.
# This may be replaced when dependencies are built.
