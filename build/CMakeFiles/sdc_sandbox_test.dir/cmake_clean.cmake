file(REMOVE_RECURSE
  "CMakeFiles/sdc_sandbox_test.dir/tests/sdc_sandbox_test.cpp.o"
  "CMakeFiles/sdc_sandbox_test.dir/tests/sdc_sandbox_test.cpp.o.d"
  "sdc_sandbox_test"
  "sdc_sandbox_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdc_sandbox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
