# Empty dependencies file for sdc_sandbox_test.
# This may be replaced when dependencies are built.
