# Empty dependencies file for bench_ablation_ortho.
# This may be replaced when dependencies are built.
