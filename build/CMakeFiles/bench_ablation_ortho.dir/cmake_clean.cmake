file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ortho.dir/bench/bench_ablation_ortho.cpp.o"
  "CMakeFiles/bench_ablation_ortho.dir/bench/bench_ablation_ortho.cpp.o.d"
  "bench_ablation_ortho"
  "bench_ablation_ortho.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ortho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
