# Empty dependencies file for example_solve_mtx.
# This may be replaced when dependencies are built.
