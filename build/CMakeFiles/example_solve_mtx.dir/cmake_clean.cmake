file(REMOVE_RECURSE
  "CMakeFiles/example_solve_mtx.dir/examples/solve_mtx.cpp.o"
  "CMakeFiles/example_solve_mtx.dir/examples/solve_mtx.cpp.o.d"
  "example_solve_mtx"
  "example_solve_mtx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_solve_mtx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
