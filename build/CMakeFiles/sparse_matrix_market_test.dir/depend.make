# Empty dependencies file for sparse_matrix_market_test.
# This may be replaced when dependencies are built.
