file(REMOVE_RECURSE
  "CMakeFiles/sparse_matrix_market_test.dir/tests/sparse_matrix_market_test.cpp.o"
  "CMakeFiles/sparse_matrix_market_test.dir/tests/sparse_matrix_market_test.cpp.o.d"
  "sparse_matrix_market_test"
  "sparse_matrix_market_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_matrix_market_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
