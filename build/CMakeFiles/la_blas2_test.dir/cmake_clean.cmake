file(REMOVE_RECURSE
  "CMakeFiles/la_blas2_test.dir/tests/la_blas2_test.cpp.o"
  "CMakeFiles/la_blas2_test.dir/tests/la_blas2_test.cpp.o.d"
  "la_blas2_test"
  "la_blas2_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_blas2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
