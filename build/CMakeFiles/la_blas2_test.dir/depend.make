# Empty dependencies file for la_blas2_test.
# This may be replaced when dependencies are built.
