file(REMOVE_RECURSE
  "CMakeFiles/sdc_detector_test.dir/tests/sdc_detector_test.cpp.o"
  "CMakeFiles/sdc_detector_test.dir/tests/sdc_detector_test.cpp.o.d"
  "sdc_detector_test"
  "sdc_detector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdc_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
