# Empty dependencies file for sdc_detector_test.
# This may be replaced when dependencies are built.
