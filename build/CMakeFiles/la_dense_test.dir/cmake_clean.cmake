file(REMOVE_RECURSE
  "CMakeFiles/la_dense_test.dir/tests/la_dense_test.cpp.o"
  "CMakeFiles/la_dense_test.dir/tests/la_dense_test.cpp.o.d"
  "la_dense_test"
  "la_dense_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_dense_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
