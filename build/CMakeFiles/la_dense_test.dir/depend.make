# Empty dependencies file for la_dense_test.
# This may be replaced when dependencies are built.
