file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_detector.dir/bench/bench_ablation_detector.cpp.o"
  "CMakeFiles/bench_ablation_detector.dir/bench/bench_ablation_detector.cpp.o.d"
  "bench_ablation_detector"
  "bench_ablation_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
