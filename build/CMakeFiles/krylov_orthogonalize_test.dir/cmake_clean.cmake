file(REMOVE_RECURSE
  "CMakeFiles/krylov_orthogonalize_test.dir/tests/krylov_orthogonalize_test.cpp.o"
  "CMakeFiles/krylov_orthogonalize_test.dir/tests/krylov_orthogonalize_test.cpp.o.d"
  "krylov_orthogonalize_test"
  "krylov_orthogonalize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krylov_orthogonalize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
