# Empty dependencies file for krylov_orthogonalize_test.
# This may be replaced when dependencies are built.
