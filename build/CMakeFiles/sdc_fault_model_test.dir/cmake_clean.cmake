file(REMOVE_RECURSE
  "CMakeFiles/sdc_fault_model_test.dir/tests/sdc_fault_model_test.cpp.o"
  "CMakeFiles/sdc_fault_model_test.dir/tests/sdc_fault_model_test.cpp.o.d"
  "sdc_fault_model_test"
  "sdc_fault_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdc_fault_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
