# Empty dependencies file for sdc_fault_model_test.
# This may be replaced when dependencies are built.
