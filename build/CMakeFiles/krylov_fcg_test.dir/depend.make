# Empty dependencies file for krylov_fcg_test.
# This may be replaced when dependencies are built.
