file(REMOVE_RECURSE
  "CMakeFiles/krylov_fcg_test.dir/tests/krylov_fcg_test.cpp.o"
  "CMakeFiles/krylov_fcg_test.dir/tests/krylov_fcg_test.cpp.o.d"
  "krylov_fcg_test"
  "krylov_fcg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krylov_fcg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
