# Empty dependencies file for experiment_sweep_test.
# This may be replaced when dependencies are built.
