file(REMOVE_RECURSE
  "CMakeFiles/experiment_sweep_test.dir/tests/experiment_sweep_test.cpp.o"
  "CMakeFiles/experiment_sweep_test.dir/tests/experiment_sweep_test.cpp.o.d"
  "experiment_sweep_test"
  "experiment_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiment_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
