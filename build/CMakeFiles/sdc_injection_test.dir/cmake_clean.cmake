file(REMOVE_RECURSE
  "CMakeFiles/sdc_injection_test.dir/tests/sdc_injection_test.cpp.o"
  "CMakeFiles/sdc_injection_test.dir/tests/sdc_injection_test.cpp.o.d"
  "sdc_injection_test"
  "sdc_injection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdc_injection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
