file(REMOVE_RECURSE
  "CMakeFiles/krylov_precond_test.dir/tests/krylov_precond_test.cpp.o"
  "CMakeFiles/krylov_precond_test.dir/tests/krylov_precond_test.cpp.o.d"
  "krylov_precond_test"
  "krylov_precond_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krylov_precond_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
