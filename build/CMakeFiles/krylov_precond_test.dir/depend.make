# Empty dependencies file for krylov_precond_test.
# This may be replaced when dependencies are built.
