# Empty dependencies file for sdc_recurring_injection_test.
# This may be replaced when dependencies are built.
