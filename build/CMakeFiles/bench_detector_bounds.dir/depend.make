# Empty dependencies file for bench_detector_bounds.
# This may be replaced when dependencies are built.
