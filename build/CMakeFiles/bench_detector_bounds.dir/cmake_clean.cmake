file(REMOVE_RECURSE
  "CMakeFiles/bench_detector_bounds.dir/bench/bench_detector_bounds.cpp.o"
  "CMakeFiles/bench_detector_bounds.dir/bench/bench_detector_bounds.cpp.o.d"
  "bench_detector_bounds"
  "bench_detector_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_detector_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
