
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dense/givens.cpp" "CMakeFiles/sdcgmres.dir/src/dense/givens.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/dense/givens.cpp.o.d"
  "/root/repo/src/dense/hessenberg_qr.cpp" "CMakeFiles/sdcgmres.dir/src/dense/hessenberg_qr.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/dense/hessenberg_qr.cpp.o.d"
  "/root/repo/src/dense/lsq_policies.cpp" "CMakeFiles/sdcgmres.dir/src/dense/lsq_policies.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/dense/lsq_policies.cpp.o.d"
  "/root/repo/src/dense/svd.cpp" "CMakeFiles/sdcgmres.dir/src/dense/svd.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/dense/svd.cpp.o.d"
  "/root/repo/src/dense/triangular.cpp" "CMakeFiles/sdcgmres.dir/src/dense/triangular.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/dense/triangular.cpp.o.d"
  "/root/repo/src/experiment/report.cpp" "CMakeFiles/sdcgmres.dir/src/experiment/report.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/experiment/report.cpp.o.d"
  "/root/repo/src/experiment/sweep.cpp" "CMakeFiles/sdcgmres.dir/src/experiment/sweep.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/experiment/sweep.cpp.o.d"
  "/root/repo/src/gen/circuit.cpp" "CMakeFiles/sdcgmres.dir/src/gen/circuit.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/gen/circuit.cpp.o.d"
  "/root/repo/src/gen/convection_diffusion.cpp" "CMakeFiles/sdcgmres.dir/src/gen/convection_diffusion.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/gen/convection_diffusion.cpp.o.d"
  "/root/repo/src/gen/poisson.cpp" "CMakeFiles/sdcgmres.dir/src/gen/poisson.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/gen/poisson.cpp.o.d"
  "/root/repo/src/gen/random_sparse.cpp" "CMakeFiles/sdcgmres.dir/src/gen/random_sparse.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/gen/random_sparse.cpp.o.d"
  "/root/repo/src/krylov/arnoldi.cpp" "CMakeFiles/sdcgmres.dir/src/krylov/arnoldi.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/krylov/arnoldi.cpp.o.d"
  "/root/repo/src/krylov/cg.cpp" "CMakeFiles/sdcgmres.dir/src/krylov/cg.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/krylov/cg.cpp.o.d"
  "/root/repo/src/krylov/fcg.cpp" "CMakeFiles/sdcgmres.dir/src/krylov/fcg.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/krylov/fcg.cpp.o.d"
  "/root/repo/src/krylov/fgmres.cpp" "CMakeFiles/sdcgmres.dir/src/krylov/fgmres.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/krylov/fgmres.cpp.o.d"
  "/root/repo/src/krylov/ft_gmres.cpp" "CMakeFiles/sdcgmres.dir/src/krylov/ft_gmres.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/krylov/ft_gmres.cpp.o.d"
  "/root/repo/src/krylov/gmres.cpp" "CMakeFiles/sdcgmres.dir/src/krylov/gmres.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/krylov/gmres.cpp.o.d"
  "/root/repo/src/krylov/ilu0.cpp" "CMakeFiles/sdcgmres.dir/src/krylov/ilu0.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/krylov/ilu0.cpp.o.d"
  "/root/repo/src/krylov/operator.cpp" "CMakeFiles/sdcgmres.dir/src/krylov/operator.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/krylov/operator.cpp.o.d"
  "/root/repo/src/krylov/orthogonalize.cpp" "CMakeFiles/sdcgmres.dir/src/krylov/orthogonalize.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/krylov/orthogonalize.cpp.o.d"
  "/root/repo/src/krylov/precond.cpp" "CMakeFiles/sdcgmres.dir/src/krylov/precond.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/krylov/precond.cpp.o.d"
  "/root/repo/src/la/blas1.cpp" "CMakeFiles/sdcgmres.dir/src/la/blas1.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/la/blas1.cpp.o.d"
  "/root/repo/src/la/blas2.cpp" "CMakeFiles/sdcgmres.dir/src/la/blas2.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/la/blas2.cpp.o.d"
  "/root/repo/src/la/dense_matrix.cpp" "CMakeFiles/sdcgmres.dir/src/la/dense_matrix.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/la/dense_matrix.cpp.o.d"
  "/root/repo/src/la/krylov_basis.cpp" "CMakeFiles/sdcgmres.dir/src/la/krylov_basis.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/la/krylov_basis.cpp.o.d"
  "/root/repo/src/la/vector.cpp" "CMakeFiles/sdcgmres.dir/src/la/vector.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/la/vector.cpp.o.d"
  "/root/repo/src/sdc/abft.cpp" "CMakeFiles/sdcgmres.dir/src/sdc/abft.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/sdc/abft.cpp.o.d"
  "/root/repo/src/sdc/bits.cpp" "CMakeFiles/sdcgmres.dir/src/sdc/bits.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/sdc/bits.cpp.o.d"
  "/root/repo/src/sdc/detector.cpp" "CMakeFiles/sdcgmres.dir/src/sdc/detector.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/sdc/detector.cpp.o.d"
  "/root/repo/src/sdc/event_log.cpp" "CMakeFiles/sdcgmres.dir/src/sdc/event_log.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/sdc/event_log.cpp.o.d"
  "/root/repo/src/sdc/fault_model.cpp" "CMakeFiles/sdcgmres.dir/src/sdc/fault_model.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/sdc/fault_model.cpp.o.d"
  "/root/repo/src/sdc/injection.cpp" "CMakeFiles/sdcgmres.dir/src/sdc/injection.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/sdc/injection.cpp.o.d"
  "/root/repo/src/sdc/sandbox.cpp" "CMakeFiles/sdcgmres.dir/src/sdc/sandbox.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/sdc/sandbox.cpp.o.d"
  "/root/repo/src/sparse/analysis.cpp" "CMakeFiles/sdcgmres.dir/src/sparse/analysis.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/sparse/analysis.cpp.o.d"
  "/root/repo/src/sparse/coo.cpp" "CMakeFiles/sdcgmres.dir/src/sparse/coo.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/sparse/coo.cpp.o.d"
  "/root/repo/src/sparse/csr.cpp" "CMakeFiles/sdcgmres.dir/src/sparse/csr.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/sparse/csr.cpp.o.d"
  "/root/repo/src/sparse/matrix_market.cpp" "CMakeFiles/sdcgmres.dir/src/sparse/matrix_market.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/sparse/matrix_market.cpp.o.d"
  "/root/repo/src/sparse/norms.cpp" "CMakeFiles/sdcgmres.dir/src/sparse/norms.cpp.o" "gcc" "CMakeFiles/sdcgmres.dir/src/sparse/norms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
