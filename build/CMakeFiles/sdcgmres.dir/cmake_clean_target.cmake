file(REMOVE_RECURSE
  "libsdcgmres.a"
)
