# Empty dependencies file for sdcgmres.
# This may be replaced when dependencies are built.
