file(REMOVE_RECURSE
  "CMakeFiles/krylov_ilu0_test.dir/tests/krylov_ilu0_test.cpp.o"
  "CMakeFiles/krylov_ilu0_test.dir/tests/krylov_ilu0_test.cpp.o.d"
  "krylov_ilu0_test"
  "krylov_ilu0_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krylov_ilu0_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
