# Empty dependencies file for krylov_ilu0_test.
# This may be replaced when dependencies are built.
