file(REMOVE_RECURSE
  "CMakeFiles/integration_ft_gmres_faults_test.dir/tests/integration_ft_gmres_faults_test.cpp.o"
  "CMakeFiles/integration_ft_gmres_faults_test.dir/tests/integration_ft_gmres_faults_test.cpp.o.d"
  "integration_ft_gmres_faults_test"
  "integration_ft_gmres_faults_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_ft_gmres_faults_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
