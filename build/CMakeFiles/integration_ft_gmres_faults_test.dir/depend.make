# Empty dependencies file for integration_ft_gmres_faults_test.
# This may be replaced when dependencies are built.
