file(REMOVE_RECURSE
  "CMakeFiles/dense_givens_test.dir/tests/dense_givens_test.cpp.o"
  "CMakeFiles/dense_givens_test.dir/tests/dense_givens_test.cpp.o.d"
  "dense_givens_test"
  "dense_givens_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dense_givens_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
