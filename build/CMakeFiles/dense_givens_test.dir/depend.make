# Empty dependencies file for dense_givens_test.
# This may be replaced when dependencies are built.
