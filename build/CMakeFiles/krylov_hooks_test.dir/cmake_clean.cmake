file(REMOVE_RECURSE
  "CMakeFiles/krylov_hooks_test.dir/tests/krylov_hooks_test.cpp.o"
  "CMakeFiles/krylov_hooks_test.dir/tests/krylov_hooks_test.cpp.o.d"
  "krylov_hooks_test"
  "krylov_hooks_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krylov_hooks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
