# Empty dependencies file for krylov_hooks_test.
# This may be replaced when dependencies are built.
