# Empty dependencies file for sparse_coo_test.
# This may be replaced when dependencies are built.
