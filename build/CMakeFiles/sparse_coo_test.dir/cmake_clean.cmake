file(REMOVE_RECURSE
  "CMakeFiles/sparse_coo_test.dir/tests/sparse_coo_test.cpp.o"
  "CMakeFiles/sparse_coo_test.dir/tests/sparse_coo_test.cpp.o.d"
  "sparse_coo_test"
  "sparse_coo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_coo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
