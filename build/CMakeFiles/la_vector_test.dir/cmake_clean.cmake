file(REMOVE_RECURSE
  "CMakeFiles/la_vector_test.dir/tests/la_vector_test.cpp.o"
  "CMakeFiles/la_vector_test.dir/tests/la_vector_test.cpp.o.d"
  "la_vector_test"
  "la_vector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
