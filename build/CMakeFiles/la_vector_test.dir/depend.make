# Empty dependencies file for la_vector_test.
# This may be replaced when dependencies are built.
