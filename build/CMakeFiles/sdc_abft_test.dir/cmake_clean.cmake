file(REMOVE_RECURSE
  "CMakeFiles/sdc_abft_test.dir/tests/sdc_abft_test.cpp.o"
  "CMakeFiles/sdc_abft_test.dir/tests/sdc_abft_test.cpp.o.d"
  "sdc_abft_test"
  "sdc_abft_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdc_abft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
