# Empty dependencies file for sdc_abft_test.
# This may be replaced when dependencies are built.
