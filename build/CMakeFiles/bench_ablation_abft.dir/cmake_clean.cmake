file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_abft.dir/bench/bench_ablation_abft.cpp.o"
  "CMakeFiles/bench_ablation_abft.dir/bench/bench_ablation_abft.cpp.o.d"
  "bench_ablation_abft"
  "bench_ablation_abft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_abft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
