# Empty dependencies file for bench_ablation_abft.
# This may be replaced when dependencies are built.
