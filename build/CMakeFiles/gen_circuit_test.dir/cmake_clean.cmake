file(REMOVE_RECURSE
  "CMakeFiles/gen_circuit_test.dir/tests/gen_circuit_test.cpp.o"
  "CMakeFiles/gen_circuit_test.dir/tests/gen_circuit_test.cpp.o.d"
  "gen_circuit_test"
  "gen_circuit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_circuit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
