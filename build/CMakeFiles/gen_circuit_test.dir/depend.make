# Empty dependencies file for gen_circuit_test.
# This may be replaced when dependencies are built.
