# Empty dependencies file for sdc_event_log_test.
# This may be replaced when dependencies are built.
