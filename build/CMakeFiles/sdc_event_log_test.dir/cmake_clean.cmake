file(REMOVE_RECURSE
  "CMakeFiles/sdc_event_log_test.dir/tests/sdc_event_log_test.cpp.o"
  "CMakeFiles/sdc_event_log_test.dir/tests/sdc_event_log_test.cpp.o.d"
  "sdc_event_log_test"
  "sdc_event_log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdc_event_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
