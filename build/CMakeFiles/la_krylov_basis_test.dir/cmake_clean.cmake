file(REMOVE_RECURSE
  "CMakeFiles/la_krylov_basis_test.dir/tests/la_krylov_basis_test.cpp.o"
  "CMakeFiles/la_krylov_basis_test.dir/tests/la_krylov_basis_test.cpp.o.d"
  "la_krylov_basis_test"
  "la_krylov_basis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_krylov_basis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
