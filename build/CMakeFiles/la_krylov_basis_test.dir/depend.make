# Empty dependencies file for la_krylov_basis_test.
# This may be replaced when dependencies are built.
