# Empty dependencies file for sparse_csr_test.
# This may be replaced when dependencies are built.
