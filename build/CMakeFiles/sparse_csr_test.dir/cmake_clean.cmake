file(REMOVE_RECURSE
  "CMakeFiles/sparse_csr_test.dir/tests/sparse_csr_test.cpp.o"
  "CMakeFiles/sparse_csr_test.dir/tests/sparse_csr_test.cpp.o.d"
  "sparse_csr_test"
  "sparse_csr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_csr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
