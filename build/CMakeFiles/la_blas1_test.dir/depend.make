# Empty dependencies file for la_blas1_test.
# This may be replaced when dependencies are built.
