file(REMOVE_RECURSE
  "CMakeFiles/la_blas1_test.dir/tests/la_blas1_test.cpp.o"
  "CMakeFiles/la_blas1_test.dir/tests/la_blas1_test.cpp.o.d"
  "la_blas1_test"
  "la_blas1_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_blas1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
