file(REMOVE_RECURSE
  "CMakeFiles/gen_random_test.dir/tests/gen_random_test.cpp.o"
  "CMakeFiles/gen_random_test.dir/tests/gen_random_test.cpp.o.d"
  "gen_random_test"
  "gen_random_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
