# Empty dependencies file for gen_random_test.
# This may be replaced when dependencies are built.
