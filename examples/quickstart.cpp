/// \file quickstart.cpp
/// \brief Minimal tour of the sdcgmres public API.
///
/// Builds the paper's Poisson test problem, solves it three ways (CG,
/// GMRES, FT-GMRES), then injects one silent-data-corruption event into an
/// inner solve and shows FT-GMRES "running through" it.
///
/// Usage: ./quickstart [grid_size]   (default 40, i.e. a 1600x1600 system)

#include <cstdlib>
#include <iostream>

#include "gen/poisson.hpp"
#include "krylov/cg.hpp"
#include "krylov/ft_gmres.hpp"
#include "krylov/gmres.hpp"
#include "la/blas1.hpp"
#include "sdc/detector.hpp"
#include "sdc/injection.hpp"

using namespace sdcgmres;

int main(int argc, char** argv) {
  const std::size_t grid = (argc > 1) ? std::strtoul(argv[1], nullptr, 10) : 40;
  std::cout << "== sdcgmres quickstart ==\n";
  std::cout << "Problem: 2-D Poisson, " << grid << "x" << grid
            << " grid (n = " << grid * grid << ")\n\n";

  // 1. Build the matrix and a right-hand side.
  const sparse::CsrMatrix A = gen::poisson2d(grid);
  const la::Vector b = la::ones(A.rows());
  std::cout << "nnz = " << A.nnz() << ", ||A||_F = " << A.frobenius_norm()
            << "\n\n";

  // 2. CG (the SPD baseline).
  krylov::CgOptions cg_opts;
  cg_opts.tol = 1e-8;
  cg_opts.max_iters = 2000;
  const auto cg_res = krylov::cg(A, b, cg_opts);
  std::cout << "CG:       " << cg_res.iterations << " iterations, residual "
            << cg_res.residual_norm << "\n";

  // 3. Plain GMRES.
  krylov::GmresOptions gmres_opts;
  gmres_opts.tol = 1e-8;
  gmres_opts.max_iters = 2000;
  gmres_opts.restart = 50;
  const auto gm_res = krylov::gmres(A, b, gmres_opts);
  std::cout << "GMRES(50): " << gm_res.iterations
            << " iterations, status " << krylov::to_string(gm_res.status)
            << "\n";

  // 4. FT-GMRES: 25 unreliable inner iterations per reliable outer one.
  krylov::FtGmresOptions ft_opts; // paper defaults: 25 inner, tol 0
  ft_opts.outer.tol = 1e-8;
  const auto ft_res = krylov::ft_gmres(A, b, ft_opts);
  std::cout << "FT-GMRES: " << ft_res.outer_iterations << " outer x "
            << ft_opts.inner.max_iters << " inner iterations, status "
            << krylov::to_string(ft_res.status) << "\n\n";

  // 5. Inject a single SDC event (class 1: h *= 1e150) into the middle of
  //    the run and watch FT-GMRES run through it.
  sdc::FaultCampaign campaign(sdc::InjectionPlan::hessenberg(
      ft_res.total_inner_iterations / 2, sdc::MgsPosition::Last,
      sdc::fault_classes::very_large()));
  const auto faulty = krylov::ft_gmres(A, b, ft_opts, &campaign);
  std::cout << "FT-GMRES with one class-1 SDC event: "
            << faulty.outer_iterations << " outer iterations ("
            << krylov::to_string(faulty.status) << ")\n";
  if (campaign.fired()) {
    const auto& e = campaign.log().events()[0];
    std::cout << "  injected at inner solve " << e.solve_index
              << ", iteration " << e.iteration << ": " << e.value_before
              << " -> " << e.value_after << "\n";
  }

  // 6. Same fault, now with the invariant detector attached.
  campaign.reset();
  sdc::HessenbergBoundDetector detector(A.frobenius_norm(),
                                        sdc::DetectorResponse::AbortSolve);
  krylov::HookChain chain({&campaign, &detector});
  const auto guarded = krylov::ft_gmres(A, b, ft_opts, &chain);
  std::cout << "FT-GMRES with detector (|h| <= ||A||_F): "
            << guarded.outer_iterations << " outer iterations, "
            << detector.detections() << " detection(s) in "
            << detector.checks() << " checks\n";
  return 0;
}
