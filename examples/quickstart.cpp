/// \file quickstart.cpp
/// \brief Minimal tour of the sdcgmres public API.
///
/// Builds the paper's Poisson test problem, solves it three ways (CG,
/// GMRES, FT-GMRES) through the unified solver façade, then injects one
/// silent-data-corruption event into an inner solve and shows FT-GMRES
/// "running through" it.
///
/// Usage: ./quickstart [grid_size]   (default 40, i.e. a 1600x1600 system)

#include <cstdlib>
#include <iostream>

#include "gen/poisson.hpp"
#include "krylov/operator.hpp"
#include "la/blas1.hpp"
#include "sdc/detector.hpp"
#include "sdc/injection.hpp"
#include "solver/registry.hpp"
#include "solver/solver.hpp"

using namespace sdcgmres;

int main(int argc, char** argv) {
  const std::size_t grid = (argc > 1) ? std::strtoul(argv[1], nullptr, 10) : 40;
  std::cout << "== sdcgmres quickstart ==\n";
  std::cout << "Problem: 2-D Poisson, " << grid << "x" << grid
            << " grid (n = " << grid * grid << ")\n\n";

  // 1. Build the matrix and a right-hand side.
  const sparse::CsrMatrix A = gen::poisson2d(grid);
  const krylov::CsrOperator op(A);
  const la::Vector b = la::ones(A.rows());
  std::cout << "nnz = " << A.nnz() << ", ||A||_F = " << A.frobenius_norm()
            << "\n\n";

  // 2. Every solver is one IterativeSolver behind the façade; pick them
  //    by name from the registry with one shared Options struct.
  solver::Options opts;
  opts.tol = 1e-8;
  opts.max_iters = 2000;

  // CG (the SPD baseline).
  const auto cg =
      solver::solver_registry().make("cg", solver::SolverContext{op, opts});
  solver::SolveReport cg_rep;
  (void)cg->solve(b, &cg_rep);
  std::cout << "CG:       " << cg_rep.iterations << " iterations, residual "
            << cg_rep.residual_norm << "\n";

  // 3. Plain GMRES with restart 50.
  solver::Options gmres_opts = opts;
  gmres_opts.restart = 50;
  const auto gm = solver::solver_registry().make(
      "gmres", solver::SolverContext{op, gmres_opts});
  solver::SolveReport gm_rep;
  (void)gm->solve(b, &gm_rep);
  std::cout << "GMRES(50): " << gm_rep.iterations << " iterations, status "
            << solver::to_string(gm_rep.status) << "\n";

  // 4. FT-GMRES: 25 unreliable inner iterations per reliable outer one
  //    (the paper's defaults are the façade's defaults).
  solver::Options ft_opts; // tol 1e-8, 25 fixed inner iterations
  const auto ft = solver::solver_registry().make(
      "ft_gmres", solver::SolverContext{op, ft_opts});
  solver::SolveReport ft_rep;
  (void)ft->solve(b, &ft_rep);
  std::cout << "FT-GMRES: " << ft_rep.iterations << " outer x "
            << ft_opts.inner_iters << " inner iterations, status "
            << solver::to_string(ft_rep.status) << "\n\n";

  // 5. Inject a single SDC event (class 1: h *= 1e150) into the middle of
  //    the run and watch FT-GMRES run through it.  Hooks attach straight
  //    to the façade.
  sdc::FaultCampaign campaign(sdc::InjectionPlan::hessenberg(
      ft_rep.total_inner_iterations / 2, sdc::MgsPosition::Last,
      sdc::fault_classes::very_large()));
  ft->set_hook(&campaign);
  solver::SolveReport faulty;
  (void)ft->solve(b, &faulty);
  std::cout << "FT-GMRES with one class-1 SDC event: " << faulty.iterations
            << " outer iterations (" << solver::to_string(faulty.status)
            << ")\n";
  if (campaign.fired()) {
    const auto& e = campaign.log().events()[0];
    std::cout << "  injected at inner solve " << e.solve_index
              << ", iteration " << e.iteration << ": " << e.value_before
              << " -> " << e.value_after << "\n";
  }

  // 6. Same fault, now with the invariant detector attached.
  campaign.reset();
  sdc::HessenbergBoundDetector detector(A.frobenius_norm(),
                                        sdc::DetectorResponse::AbortSolve);
  krylov::HookChain chain({&campaign, &detector});
  ft->set_hook(&chain);
  solver::SolveReport guarded;
  (void)ft->solve(b, &guarded);
  std::cout << "FT-GMRES with detector (|h| <= ||A||_F): "
            << guarded.iterations << " outer iterations, "
            << detector.detections() << " detection(s) in "
            << detector.checks() << " checks\n";
  return 0;
}
