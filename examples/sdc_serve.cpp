/// \file sdc_serve.cpp
/// \brief Multi-tenant sweep service daemon: filesystem spool + HTTP
/// endpoint over the SweepScheduler.
///
/// Usage:
///   sdc_serve --root DIR [--port N] [--jobs N] [--cache-bytes N]
///             [--poll-ms N]
///
/// Flags:
///   --root DIR        spool root (created if missing; REQUIRED).  Jobs
///                     can also be submitted with no HTTP at all: write a
///                     job file into DIR/tmp and rename it into DIR/queue
///   --port N          HTTP port on 127.0.0.1 (default 0 = ephemeral;
///                     the bound port is printed and written to DIR/port
///                     so scripts can find it)
///   --jobs N          concurrent jobs / scheduler worker threads
///                     (default 1)
///   --cache-bytes N   ArtifactCache byte budget (default 256 MiB)
///   --poll-ms N       queue poll interval when idle (default 20)
///
/// HTTP routes (all JSON):
///   POST /jobs             body = job file text -> 201 {"id": "..."}
///   GET  /jobs/<id>        state + journal-tail progress
///   GET  /jobs/<id>/result the result document -- byte-identical to
///                          `sdc_run --json` on the same spec
///   GET  /stats            job counters + cache hit/miss/eviction
///
/// SIGTERM/SIGINT drain gracefully: in-flight jobs finish and spool
/// their results, queued jobs stay queued.  After kill -9, the next
/// start re-queues running/ jobs and their journals make the re-run
/// resume bitwise-identically.

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include <unistd.h>

#include "service/http.hpp"
#include "service/scheduler.hpp"
#include "service/spool.hpp"

using namespace sdcgmres;

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void on_signal(int) { g_shutdown = 1; }

[[noreturn]] void usage_exit(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --root DIR [--port N] [--jobs N] [--cache-bytes N] "
               "[--poll-ms N]\n";
  std::exit(1);
}

} // namespace

int main(int argc, char** argv) {
  std::string root;
  std::uint16_t port = 0;
  service::SchedulerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string tok = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_exit(argv[0]);
      return argv[++i];
    };
    if (tok == "--root") {
      root = value();
    } else if (tok == "--port") {
      port = static_cast<std::uint16_t>(std::stoul(value()));
    } else if (tok == "--jobs") {
      options.max_concurrent_jobs = std::stoul(value());
    } else if (tok == "--cache-bytes") {
      options.cache_bytes = std::stoull(value());
    } else if (tok == "--poll-ms") {
      options.poll_ms = std::stoul(value());
    } else {
      usage_exit(argv[0]);
    }
  }
  if (root.empty()) usage_exit(argv[0]);
  options.root = root;

  try {
    service::SweepScheduler scheduler(options);
    scheduler.start();

    service::HttpServer server(
        port, [&scheduler](const service::HttpRequest& request) {
          service::HttpResponse response;
          if (request.method == "POST" && request.target == "/jobs") {
            const std::string id = scheduler.submit(request.body);
            response.status = 201;
            response.body = "{\"id\": \"" + id + "\"}\n";
            return response;
          }
          if (request.method == "GET" && request.target == "/stats") {
            response.body = service::stats_json(scheduler.stats());
            return response;
          }
          if (request.method == "GET" &&
              request.target.rfind("/jobs/", 0) == 0) {
            std::string id = request.target.substr(6);
            const bool want_result =
                id.size() > 7 && id.rfind("/result") == id.size() - 7;
            if (want_result) id.resize(id.size() - 7);
            const service::JobStatus status = scheduler.status(id);
            if (status.state == service::JobStatus::State::Unknown) {
              response.status = 404;
              response.body = "{\"error\": \"unknown job\"}\n";
              return response;
            }
            if (!want_result) {
              response.body = service::status_json(status);
              return response;
            }
            if (status.state == service::JobStatus::State::Failed) {
              response.status = 409;
              response.body = service::status_json(status);
              return response;
            }
            if (!scheduler.read_result(id, &response.body)) {
              response.status = 409; // queued or still running
              response.body = service::status_json(status);
            }
            return response;
          }
          response.status =
              request.method == "GET" || request.method == "POST" ? 404 : 405;
          response.body = "{\"error\": \"no such route\"}\n";
          return response;
        });
    server.start();

    // Drop the bound port where scripts can poll for it (atomically, so
    // a reader never sees a truncated number).
    service::atomic_write(scheduler.spool().tmp,
                          scheduler.spool().root + "/port",
                          std::to_string(server.port()) + "\n");
    std::cout << "sdc_serve: root=" << root << " port=" << server.port()
              << " jobs=" << options.max_concurrent_jobs << "\n"
              << std::flush;

    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    while (g_shutdown == 0) {
      ::usleep(50 * 1000);
    }
    std::cout << "sdc_serve: draining\n" << std::flush;
    server.stop();
    scheduler.stop();
    std::cout << "sdc_serve: stopped\n" << std::flush;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "sdc_serve: " << e.what() << "\n";
    return 1;
  }
}
