/// \file fault_injection_study.cpp
/// \brief A complete (miniature) version of the paper's experiment: sweep a
/// single SDC event over every injection site, for all three fault classes
/// and both MGS positions, and report outer-iteration penalties.
///
/// This is the same protocol as bench/bench_fig3 but on a smaller grid so
/// it finishes in seconds.  Each cell of the grid is one scenario spec run
/// through the spec-driven sweep entry point -- use it as a template for
/// custom studies.
///
/// Usage: ./fault_injection_study [key=value ...]
///   e.g. ./fault_injection_study n=30 inner=15 threads=0

#include <iostream>
#include <string>

#include "experiment/report.hpp"
#include "experiment/scenario.hpp"
#include "experiment/sweep.hpp"

using namespace sdcgmres;

int main(int argc, char** argv) {
  experiment::ScenarioSpec base = experiment::ScenarioSpec::parse(
      "solver=ft_gmres matrix=poisson n=20 inner=10 tol=1e-8 max_iters=250 "
      "sweep=1");
  try {
    for (int i = 1; i < argc; ++i) {
      base.merge(experiment::ScenarioSpec::parse(argv[i]));
    }

    std::cout << "Fault-injection study: " << base.to_string() << "\n\n";

    const char* positions[] = {"first", "last"};
    const struct {
      const char* name;
      const char* key;
    } classes[] = {
        {"class 1 (x1e+150)", "class1"},
        {"class 2 (x10^-0.5)", "class2"},
        {"class 3 (x1e-300)", "class3"},
    };

    for (const char* position : positions) {
      std::cout << "--- SDC on the " << position << " MGS step ---\n";
      for (const auto& cls : classes) {
        experiment::ScenarioSpec spec = base;
        spec.set("position", position);
        spec.set("fault", cls.key);
        const auto sweep = experiment::run_injection_sweep(spec);
        experiment::print_sweep_summary(std::cout, cls.name, sweep);
      }
      std::cout << '\n';
    }

    std::cout << "Reading: max_increase is the worst outer-iteration penalty\n"
                 "over all injection sites; 'unchanged' counts runs whose\n"
                 "time-to-solution was unaffected by the fault.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "fault_injection_study: " << e.what() << "\n";
    return 1;
  }
}
