/// \file fault_injection_study.cpp
/// \brief A complete (miniature) version of the paper's experiment: sweep a
/// single SDC event over every injection site, for all three fault classes
/// and both MGS positions, and report outer-iteration penalties.
///
/// This is the same protocol as bench/bench_fig3 but on a smaller grid so
/// it finishes in seconds; use it as a template for custom studies.
///
/// Usage: ./fault_injection_study [grid_size] [inner_iters] [threads]

#include <cstdlib>
#include <iostream>
#include <string>

#include "experiment/report.hpp"
#include "experiment/sweep.hpp"
#include "gen/poisson.hpp"
#include "la/blas1.hpp"

using namespace sdcgmres;

int main(int argc, char** argv) {
  const std::size_t grid = (argc > 1) ? std::strtoul(argv[1], nullptr, 10) : 20;
  const std::size_t inner =
      (argc > 2) ? std::strtoul(argv[2], nullptr, 10) : 10;
  // 1 = serial, 0 = all hardware threads; the sweep result is identical
  // either way (deterministic site merge).
  const std::size_t threads =
      (argc > 3) ? std::strtoul(argv[3], nullptr, 10) : 1;

  const sparse::CsrMatrix A = gen::poisson2d(grid);
  const la::Vector b = la::ones(A.rows());
  std::cout << "Fault-injection study on Poisson " << grid << "x" << grid
            << " (n = " << A.rows() << "), " << inner
            << " inner iterations per outer iteration\n\n";

  const struct {
    const char* name;
    sdc::FaultModel model;
  } classes[] = {
      {"class 1 (x1e+150)", sdc::fault_classes::very_large()},
      {"class 2 (x10^-0.5)", sdc::fault_classes::slightly_smaller()},
      {"class 3 (x1e-300)", sdc::fault_classes::nearly_zero()},
  };
  const struct {
    const char* name;
    sdc::MgsPosition position;
  } positions[] = {
      {"first MGS step", sdc::MgsPosition::First},
      {"last MGS step", sdc::MgsPosition::Last},
  };

  for (const auto& pos : positions) {
    std::cout << "--- SDC on the " << pos.name << " ---\n";
    for (const auto& cls : classes) {
      experiment::SweepConfig config;
      config.solver.inner.max_iters = inner;
      config.solver.outer.tol = 1e-8;
      config.solver.outer.max_outer = 250;
      config.position = pos.position;
      config.model = cls.model;
      config.threads = threads;
      const auto sweep = experiment::run_injection_sweep(A, b, config);
      experiment::print_sweep_summary(std::cout, cls.name, sweep);
    }
    std::cout << '\n';
  }

  std::cout << "Reading: max_increase is the worst outer-iteration penalty\n"
               "over all injection sites; 'unchanged' counts runs whose\n"
               "time-to-solution was unaffected by the fault.\n";
  return 0;
}
