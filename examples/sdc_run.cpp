/// \file sdc_run.cpp
/// \brief The config-driven scenario runner CLI: one spec string, one
/// experiment -- no new .cpp file per workload.
///
/// Usage:
///   sdc_run [flags] key=value [key=value ...]
///
/// All non-flag tokens are joined into one scenario spec (see
/// src/experiment/scenario.hpp for the key vocabulary), so quoting is
/// optional:
///
///   # failure-free FT-GMRES solve of the paper's Poisson problem
///   sdc_run solver=ft_gmres matrix=poisson n=40
///
///   # one Fig. 3a cell: class-1 fault at every site, first MGS step
///   sdc_run matrix=poisson n=40 inner=25 sweep=1 fault=class1 position=first
///
///   # the same sweep guarded by the |h| <= ||A||_F detector, 2 workers
///   sdc_run matrix=poisson n=40 inner=25 sweep=1 fault=class1 \
///           detector=bound response=abort threads=2
///
///   # 2 workers, each solving 4 injection sites in lockstep (multi-RHS
///   # FT-GMRES: one matrix stream per outer iteration per block)
///   sdc_run matrix=poisson n=40 inner=25 sweep=1 fault=class1 \
///           --threads 2 --batch 4
///
/// Flags:
///   --list              print every registered solver/preconditioner/
///                       matrix/fault-model/detector/backend name and exit
///   --json FILE         also write a machine-readable result to FILE
///   --threads N         shorthand for the threads=N spec key (sweep
///                       worker threads; 0 = all hardware threads)
///   --batch N           shorthand for the batch=N spec key (injection
///                       sites solved in lockstep per worker)
///   --workers N         shorthand for the workers=N spec key (worker
///                       PROCESSES for the crash-tolerant sharded sweep;
///                       needs journal=<path>)
///   --worker-timeout S  shorthand for the worker_timeout=S spec key
///                       (per-attempt worker deadline in seconds)
///   --journal PATH      journal the sweep at PATH WITHOUT entering the
///                       spec (a runtime seam, like the sdc_serve
///                       scheduler uses): the result JSON's spec field --
///                       and hence its bytes -- match a journal-free run
///   --resume            resume --journal's path (seam-level resume=1)
///   --assert-identical  (sweep mode) rerun the sweep serially, unbatched
///                       and unsharded (threads=1 batch=1 workers=1, no
///                       journal) and fail with exit code 2 unless the
///                       result is identical -- the determinism check CI
///                       runs
///
/// Exit code: 0 on success (converged solve / identical sweep), 1 on a
/// non-converged solve or spec error, 2 on a sweep determinism mismatch.

#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "experiment/report.hpp"
#include "experiment/scenario.hpp"
#include "solver/registry.hpp"

using namespace sdcgmres;

namespace {

void print_registries() {
  const auto print = [](const char* what, const std::vector<std::string>& k) {
    std::cout << what << ":";
    for (const std::string& name : k) std::cout << ' ' << name;
    std::cout << '\n';
  };
  print("solvers", solver::solver_registry().keys());
  print("preconditioners", solver::preconditioner_registry().keys());
  print("matrices", solver::matrix_registry().keys());
  print("fault models", solver::fault_model_registry().keys());
  print("detectors", solver::detector_registry().keys());
  print("recovery modes", solver::recovery_registry().keys());
  print("backends", solver::backend_registry().keys());
}

} // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool assert_identical = false;
  experiment::ScenarioSeams seams;
  std::ostringstream spec_text;
  for (int i = 1; i < argc; ++i) {
    const std::string tok = argv[i];
    if (tok == "--list") {
      print_registries();
      return 0;
    }
    if (tok == "--json") {
      if (i + 1 >= argc) {
        std::cerr << "--json requires a value\n";
        return 1;
      }
      json_path = argv[++i];
      continue;
    }
    if (tok == "--journal") {
      if (i + 1 >= argc) {
        std::cerr << "--journal requires a value\n";
        return 1;
      }
      seams.journal = argv[++i];
      continue;
    }
    if (tok == "--resume") {
      seams.resume = true;
      continue;
    }
    if (tok == "--threads" || tok == "--batch" || tok == "--workers" ||
        tok == "--worker-timeout") {
      if (i + 1 >= argc) {
        std::cerr << tok << " requires a value\n";
        return 1;
      }
      // Flag shorthand for the matching spec key; appended tokens win, so
      // the flag overrides an earlier key=value and vice versa.
      const std::string key =
          tok == "--worker-timeout" ? "worker_timeout" : tok.substr(2);
      spec_text << key << '=' << argv[++i] << ' ';
      continue;
    }
    if (tok == "--assert-identical") {
      assert_identical = true;
      continue;
    }
    spec_text << tok << ' ';
  }

  try {
    const auto spec = experiment::ScenarioSpec::parse(spec_text.str());
    if (seams.resume && seams.journal.empty()) {
      std::cerr << "sdc_run: --resume needs --journal PATH\n";
      return 1;
    }
    experiment::ScenarioResult result =
        experiment::run_scenario(spec, seams);
    std::cout << "spec:   " << result.spec_text << "\n"
              << "matrix: " << result.matrix_name << " (n = " << result.n
              << ", nnz = " << result.nnz << ")\n";

    if (!result.is_sweep) {
      std::cout << result.solver_name << ": "
                << solver::to_string(result.report.status) << " in "
                << result.report.iterations << " iterations, residual "
                << result.report.residual_norm << ", global syncs "
                << result.report.global_syncs << "\n";
      if (result.report.total_inner_iterations > 0) {
        std::cout << "inner iterations: "
                  << result.report.total_inner_iterations << "\n";
      }
      if (spec.get("fault", "none") != "none") {
        std::cout << "fault " << (result.injected ? "fired" : "did not fire")
                  << ", detector "
                  << (result.detected ? "triggered" : "silent") << "\n";
      }
      if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
          std::cerr << "sdc_run: cannot write " << json_path << "\n";
          return 1;
        }
        experiment::write_solve_json(out, result);
      }
      return result.report.converged() ? 0 : 1;
    }

    experiment::print_sweep_summary(std::cout, "sweep", result.sweep);
    if (result.sharded) {
      std::cout << "shard: ranges=" << result.shard.ranges
                << " worker_crashes=" << result.shard.worker_crashes
                << " timeouts=" << result.shard.timeouts
                << " ranges_requeued=" << result.shard.ranges_requeued << "\n";
    }

    bool identical = true;
    if (assert_identical) {
      // Determinism contract check: a threaded, batched and/or sharded
      // sweep must be bitwise identical to the in-process serial
      // solo-solve one (same points, same doubles).
      experiment::ScenarioSpec serial = spec;
      serial.set("threads", "1");
      serial.set("batch", "1");
      serial.set("workers", "1");
      serial.set("journal", "");
      serial.set("resume", "0");
      const experiment::SweepResult reference =
          experiment::run_injection_sweep(serial);
      identical =
          reference.points == result.sweep.points &&
          reference.baseline_outer == result.sweep.baseline_outer &&
          reference.baseline_total_inner == result.sweep.baseline_total_inner &&
          reference.baseline_global_syncs == result.sweep.baseline_global_syncs;
      std::cout << "identical_results (threads=" << spec.get("threads", "1")
                << " batch=" << spec.get("batch", "1") << " workers="
                << spec.get("workers", "1")
                << " vs serial batch=1): " << (identical ? "true" : "false")
                << "\n";
    }
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out) {
        std::cerr << "sdc_run: cannot write " << json_path << "\n";
        return 1;
      }
      experiment::write_sweep_json(out, result, assert_identical, identical);
    }
    return identical ? 0 : 2;
  } catch (const std::exception& e) {
    std::cerr << "sdc_run: " << e.what() << "\n";
    return 1;
  }
}
