/// \file solve_mtx.cpp
/// \brief End-user CLI: solve A x = b for a Matrix Market file with the
/// resilient solver stack.
///
/// Usage:
///   solve_mtx <matrix.mtx> [--solver gmres|cg|fgmres|ftgmres|ftcg]
///             [--tol 1e-8] [--inner 25] [--precond none|jacobi|ilu0]
///             [--inject site[,class]] [--detector]
///
/// The right-hand side is b = A*ones, so the exact solution is known and
/// the forward error is reported alongside the residual.  With no
/// arguments it demonstrates itself on a generated problem.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "gen/convection_diffusion.hpp"
#include "krylov/fcg.hpp"
#include "krylov/ft_gmres.hpp"
#include "krylov/gmres.hpp"
#include "krylov/cg.hpp"
#include "krylov/ilu0.hpp"
#include "la/blas1.hpp"
#include "sdc/detector.hpp"
#include "sdc/injection.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/norms.hpp"

using namespace sdcgmres;

namespace {

struct Args {
  std::string path;
  std::string solver = "ftgmres";
  std::string precond = "none";
  double tol = 1e-8;
  std::size_t inner = 25;
  bool inject = false;
  std::size_t inject_site = 0;
  int inject_class = 1;
  bool detector = false;
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--solver") {
      args.solver = next();
    } else if (a == "--tol") {
      args.tol = std::strtod(next().c_str(), nullptr);
    } else if (a == "--inner") {
      args.inner = std::strtoul(next().c_str(), nullptr, 10);
    } else if (a == "--precond") {
      args.precond = next();
    } else if (a == "--inject") {
      args.inject = true;
      const std::string v = next();
      const auto comma = v.find(',');
      args.inject_site = std::strtoul(v.c_str(), nullptr, 10);
      if (comma != std::string::npos) {
        args.inject_class = std::atoi(v.c_str() + comma + 1);
      }
    } else if (a == "--detector") {
      args.detector = true;
    } else if (!a.empty() && a[0] != '-') {
      args.path = a;
    } else {
      std::cerr << "unknown option " << a << "\n";
      std::exit(2);
    }
  }
  return args;
}

sdc::FaultModel model_for_class(int cls) {
  switch (cls) {
    case 1: return sdc::fault_classes::very_large();
    case 2: return sdc::fault_classes::slightly_smaller();
    default: return sdc::fault_classes::nearly_zero();
  }
}

double forward_error(const la::Vector& x) {
  // Exact solution is ones.
  double worst = 0.0;
  for (const double v : x) worst = std::max(worst, std::abs(v - 1.0));
  return worst;
}

} // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  sparse::CsrMatrix A;
  if (args.path.empty()) {
    std::cout << "(no .mtx given: demonstrating on a generated "
                 "convection-diffusion problem)\n";
    A = gen::convection_diffusion2d(40, 20.0, -5.0);
  } else {
    A = sparse::read_matrix_market_file(args.path);
  }
  const la::Vector b = A.apply(la::ones(A.rows()));
  std::cout << "matrix: " << A.rows() << " rows, " << A.nnz()
            << " nonzeros, detector bound "
            << sparse::cheapest_detector_bound(A) << "\n";

  // Optional fixed preconditioner (gmres/cg paths).
  std::unique_ptr<krylov::Preconditioner> precond;
  if (args.precond == "jacobi") {
    precond = std::make_unique<krylov::JacobiPreconditioner>(A);
  } else if (args.precond == "ilu0") {
    precond = std::make_unique<krylov::Ilu0Preconditioner>(A);
  } else if (args.precond != "none") {
    std::cerr << "unknown preconditioner " << args.precond << "\n";
    return 2;
  }

  // Optional fault injection + detection (nested solvers only).
  std::unique_ptr<sdc::FaultCampaign> campaign;
  std::unique_ptr<sdc::HessenbergBoundDetector> detector;
  krylov::HookChain hooks;
  krylov::ArnoldiHook* hook = nullptr;
  if (args.inject) {
    campaign = std::make_unique<sdc::FaultCampaign>(
        sdc::InjectionPlan::hessenberg(args.inject_site,
                                       sdc::MgsPosition::First,
                                       model_for_class(args.inject_class)));
    hooks.add(campaign.get());
    hook = &hooks;
  }
  if (args.detector) {
    detector = std::make_unique<sdc::HessenbergBoundDetector>(
        sparse::cheapest_detector_bound(A), sdc::DetectorResponse::AbortSolve);
    hooks.add(detector.get());
    hook = &hooks;
  }

  la::Vector x;
  std::string status;
  std::size_t iterations = 0;
  double residual = 0.0;
  if (args.solver == "gmres") {
    krylov::GmresOptions opts;
    opts.tol = args.tol;
    opts.max_iters = 10000;
    opts.restart = 50;
    opts.right_precond = precond.get();
    const krylov::CsrOperator op(A);
    const auto res = krylov::gmres(op, b, la::Vector(A.cols()), opts, hook, 0);
    x = res.x;
    status = krylov::to_string(res.status);
    iterations = res.iterations;
    residual = res.residual_norm;
  } else if (args.solver == "cg") {
    krylov::CgOptions opts;
    opts.tol = args.tol;
    opts.max_iters = 10000;
    opts.precond = precond.get();
    const auto res = krylov::cg(A, b, opts);
    x = res.x;
    status = res.converged ? "converged"
                           : (res.indefinite ? "indefinite" : "max-iterations");
    iterations = res.iterations;
    residual = res.residual_norm;
  } else if (args.solver == "ftgmres" || args.solver == "fgmres") {
    krylov::FtGmresOptions opts;
    opts.inner.max_iters = args.inner;
    opts.outer.tol = args.tol;
    const auto res = krylov::ft_gmres(A, b, opts, hook);
    x = res.x;
    status = krylov::to_string(res.status);
    iterations = res.outer_iterations;
    residual = res.residual_norm;
  } else if (args.solver == "ftcg") {
    krylov::FtCgOptions opts;
    opts.inner.max_iters = args.inner;
    opts.outer.tol = args.tol;
    const auto res = krylov::ft_cg(A, b, opts, hook);
    x = res.x;
    status = krylov::to_string(res.status);
    iterations = res.outer_iterations;
    residual = res.residual_norm;
  } else {
    std::cerr << "unknown solver " << args.solver << "\n";
    return 2;
  }

  std::cout << args.solver << ": " << status << " in " << iterations
            << " iterations, residual " << residual << ", max forward error "
            << forward_error(x) << "\n";
  if (campaign) {
    std::cout << "fault " << (campaign->fired() ? "fired" : "did not fire");
    if (campaign->fired()) {
      const auto& e = campaign->log().events()[0];
      std::cout << " (" << e.description << ")";
    }
    std::cout << "\n";
  }
  if (detector) {
    std::cout << "detector: " << detector->detections() << " detection(s) in "
              << detector->checks() << " checks\n";
  }
  return status == "converged" ? 0 : 1;
}
