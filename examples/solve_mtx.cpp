/// \file solve_mtx.cpp
/// \brief End-user CLI: solve A x = b for a Matrix Market file with the
/// resilient solver stack.
///
/// A thin shell over the scenario runner (experiment/scenario.hpp): the
/// .mtx path becomes `matrix=mtx:<path>` and every other argument is a
/// scenario key=value token, so all registry names work here too.
///
/// Usage:
///   solve_mtx <matrix.mtx> [key=value ...]
///   solve_mtx poisson.mtx solver=gmres restart=50 precond=ilu0
///   solve_mtx circuit.mtx solver=ft_gmres inner=25 fault=class1 site=30 \
///             detector=bound
///
/// The right-hand side defaults to b = A*ones (rhs=consistent), so the
/// exact solution is known and the forward error is reported alongside
/// the residual.  With no arguments it demonstrates itself on a generated
/// convection-diffusion problem.

#include <cmath>
#include <iostream>
#include <string>

#include "experiment/scenario.hpp"
#include "solver/solver.hpp"

using namespace sdcgmres;

namespace {

double forward_error(const la::Vector& x) {
  // Exact solution is ones (consistent rhs).
  double worst = 0.0;
  for (const double v : x) worst = std::max(worst, std::abs(v - 1.0));
  return worst;
}

} // namespace

int main(int argc, char** argv) {
  experiment::ScenarioSpec spec;
  spec.set("solver", "ft_gmres");
  spec.set("rhs", "consistent");
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string tok = argv[i];
      if (tok.find('=') != std::string::npos) {
        spec.merge(experiment::ScenarioSpec::parse(tok));
      } else if (!tok.empty() && tok[0] == '-') {
        std::cerr << "unknown option " << tok
                  << "\nusage: solve_mtx <matrix.mtx> [key=value ...]  "
                     "(see src/experiment/scenario.hpp for keys)\n";
        return 2;
      } else {
        spec.set("matrix", "mtx:" + tok);
      }
    }
    if (spec.get_bool("sweep", false)) {
      std::cerr << "solve_mtx runs single solves; use sdc_run for "
                   "sweep=1 scenarios\n";
      return 2;
    }
    if (spec.get("matrix").empty()) {
      std::cout << "(no .mtx given: demonstrating on a generated "
                   "convection-diffusion problem)\n";
      experiment::ScenarioSpec demo = experiment::ScenarioSpec::parse(
          "matrix=convdiff n=40 beta_x=20 beta_y=-5");
      demo.merge(spec); // user keys win over the demo defaults
      spec = demo;
    }

    const experiment::ScenarioResult result = experiment::run_scenario(spec);
    std::cout << "matrix: " << result.n << " rows, " << result.nnz
              << " nonzeros\n"
              << result.solver_name << ": "
              << solver::to_string(result.report.status) << " in "
              << result.report.iterations << " iterations, residual "
              << result.report.residual_norm;
    // The forward-error metric assumes the exact solution is ones, which
    // only holds for the consistent rhs b = A*1.
    if (spec.get("rhs") == "consistent") {
      std::cout << ", max forward error " << forward_error(result.x);
    }
    std::cout << "\n";
    if (spec.get("fault", "none") != "none") {
      std::cout << "fault " << (result.injected ? "fired" : "did not fire")
                << "\n";
    }
    if (spec.get("detector", "none") != "none") {
      std::cout << "detector " << (result.detected ? "triggered" : "silent")
                << "\n";
    }
    return result.report.converged() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "solve_mtx: " << e.what() << "\n";
    return 2;
  }
}
