/// \file detector_response.cpp
/// \brief Demonstrates the invariant detector and the projected
/// least-squares policies from Sections V-D and VI-D of the paper.
///
/// Shows, for one large fault: (a) observation mode recording the
/// violation; (b) abort mode cutting the tainted inner solve short; and
/// (c) how the three R y = z policies behave when the fault drives the
/// projected problem singular.

#include <iostream>

#include "dense/lsq_policies.hpp"
#include "gen/convection_diffusion.hpp"
#include "krylov/ft_gmres.hpp"
#include "la/blas1.hpp"
#include "sdc/detector.hpp"
#include "sdc/injection.hpp"

using namespace sdcgmres;

namespace {

void run_with_detector(const sparse::CsrMatrix& A, const la::Vector& b,
                       sdc::DetectorResponse response, const char* label) {
  krylov::FtGmresOptions opts;
  opts.outer.tol = 1e-8;
  sdc::FaultCampaign campaign(sdc::InjectionPlan::hessenberg(
      12, sdc::MgsPosition::Last, sdc::fault_classes::very_large()));
  sdc::HessenbergBoundDetector detector(A.frobenius_norm(), response);
  krylov::HookChain chain({&campaign, &detector});
  const auto res = krylov::ft_gmres(A, b, opts, &chain);
  std::cout << label << ": " << res.outer_iterations
            << " outer iterations, status " << krylov::to_string(res.status)
            << ", detections " << detector.detections() << "\n";
  for (const auto& event : detector.log().events()) {
    std::cout << "    " << event.description << " (bound " << event.bound
              << ")\n";
  }
}

} // namespace

int main() {
  const sparse::CsrMatrix A = gen::convection_diffusion2d(20, 15.0, -5.0);
  const la::Vector b = la::ones(A.rows());
  std::cout << "Detector demo on convection-diffusion (n = " << A.rows()
            << "), bound ||A||_F = " << A.frobenius_norm() << "\n\n";

  // Failure-free baseline.
  krylov::FtGmresOptions opts;
  opts.outer.tol = 1e-8;
  const auto baseline = krylov::ft_gmres(A, b, opts);
  std::cout << "failure-free: " << baseline.outer_iterations
            << " outer iterations\n\n";

  run_with_detector(A, b, sdc::DetectorResponse::RecordOnly,
                    "record-only  ");
  run_with_detector(A, b, sdc::DetectorResponse::AbortSolve,
                    "abort-solve  ");

  // --- The three R y = z policies under a singular projected problem. ---
  std::cout << "\nProjected least-squares policies on a singular R:\n";
  la::DenseMatrix R(3, 3);
  R(0, 0) = 2.0; R(0, 1) = 1.0; R(0, 2) = 0.5;
  R(1, 1) = 1.0; R(1, 2) = 1.0;
  R(2, 2) = 0.0; // the fault zeroed the last pivot
  const la::Vector z{1.0, 1.0, 1.0};
  for (const auto policy :
       {dense::LsqPolicy::Standard, dense::LsqPolicy::Fallback,
        dense::LsqPolicy::RankRevealing}) {
    const auto out = dense::solve_projected(R, z, policy, 1e-12);
    std::cout << "  " << dense::to_string(policy) << ": y = [" << out.y[0]
              << ", " << out.y[1] << ", " << out.y[2] << "], rank "
              << out.effective_rank
              << (out.fallback_triggered ? " (fallback fired)" : "")
              << (out.nonfinite ? " (non-finite!)" : "") << "\n";
  }
  std::cout << "\nThe paper recommends policy 1 or 3; policy 2 conceals the\n"
               "natural IEEE-754 error signal without bounding the error.\n";
  return 0;
}
