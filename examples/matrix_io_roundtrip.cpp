/// \file matrix_io_roundtrip.cpp
/// \brief Matrix Market I/O + matrix characterization workflow.
///
/// Generates the synthetic circuit matrix (the mult_dcop_03 stand-in),
/// writes it to a Matrix Market file, reads it back, verifies the round
/// trip, and prints a Table I style characterization -- the workflow a
/// user would follow to run the fault experiments on their own matrices.
///
/// Usage: ./matrix_io_roundtrip [nodes] [path.mtx]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "experiment/report.hpp"
#include "gen/circuit.hpp"
#include "gen/poisson.hpp"
#include "sparse/matrix_market.hpp"

using namespace sdcgmres;

int main(int argc, char** argv) {
  const std::size_t nodes =
      (argc > 1) ? std::strtoul(argv[1], nullptr, 10) : 2000;
  const std::string path = (argc > 2) ? argv[2] : "circuit_like.mtx";

  gen::CircuitOptions copts;
  copts.nodes = nodes;
  const sparse::CsrMatrix A = gen::circuit_like(copts);
  std::cout << "Generated circuit-like matrix: " << A.rows() << " rows, "
            << A.nnz() << " nonzeros\n";

  sparse::write_matrix_market_file(path, A);
  std::cout << "Wrote " << path << "\n";

  const sparse::CsrMatrix B = sparse::read_matrix_market_file(path);
  bool identical = A.rows() == B.rows() && A.nnz() == B.nnz();
  if (identical) {
    for (std::size_t k = 0; k < A.values().size(); ++k) {
      if (A.values()[k] != B.values()[k] ||
          A.col_idx()[k] != B.col_idx()[k]) {
        identical = false;
        break;
      }
    }
  }
  std::cout << "Round trip " << (identical ? "exact" : "FAILED") << "\n\n";

  // Characterize both paper matrices side by side (condition estimation
  // for the circuit matrix is skipped here; see bench_table1 for it).
  const auto poisson_report = experiment::characterize(
      "poisson-40", gen::poisson2d(40), /*estimate_condition=*/true);
  const auto circuit_report =
      experiment::characterize("circuit-like", B, /*estimate_condition=*/false);
  experiment::print_table1(std::cout, {poisson_report, circuit_report});

  std::remove(path.c_str());
  return identical ? 0 : 1;
}
