#pragma once
/// \file blas2.hpp
/// \brief Dense level-2 kernels on DenseMatrix / Vector and on contiguous
/// column-major blocks (KrylovBasis views).
///
/// The raw kernels are blocked over columns: gemv_t interleaves four
/// independent per-column accumulator chains (4x the instruction-level
/// parallelism of a single latency-bound dot product, and x is streamed
/// once per block instead of once per column), and gemv updates each y
/// chunk once per four columns instead of once per column.  Each column's
/// accumulation stays in plain sequential order, bitwise identical to a
/// sequential dot product -- so the Arnoldi hook protocol observes the
/// same projection coefficients through the fused CGS path as through the
/// per-vector reference path: exactly, when the reference dot runs
/// serially (below la::dot's parallel threshold, or one thread); to
/// reduction roundoff when it runs as a multi-threaded OpenMP reduction
/// (combine order is thread-arrival-dependent).

#include <cstddef>
#include <span>

#include "la/dense_matrix.hpp"
#include "la/krylov_basis.hpp"
#include "la/vector.hpp"

namespace sdcgmres::la {

/// y := alpha*B*x + beta*y over a column-major block (\p rows x \p cols,
/// leading dimension \p lda >= rows).  x has cols entries, y has rows
/// entries.
void gemv(double alpha, std::size_t rows, std::size_t cols, const double* b,
          std::size_t lda, const double* x, double beta, double* y);

/// y := alpha*B^T*x + beta*y over the same block layout.  x has rows
/// entries, y has cols entries.  Each y[j] accumulates column j
/// sequentially, bitwise identical to a sequential dot(col_j, x).
void gemv_t(double alpha, std::size_t rows, std::size_t cols, const double* b,
            std::size_t lda, const double* x, double beta, double* y);

/// y := alpha*Q*x + beta*y for a basis view (x.size() == Q.cols(),
/// y.size() == Q.rows()).
void gemv(double alpha, const BasisView& q, std::span<const double> x,
          double beta, std::span<double> y);

/// y := alpha*Q^T*x + beta*y for a basis view (x.size() == Q.rows(),
/// y.size() == Q.cols()).
void gemv_t(double alpha, const BasisView& q, std::span<const double> x,
            double beta, std::span<double> y);

// --- Float kernels (mixed-precision inner plane) ------------------------
//
// Concrete float overloads of the raw and BasisView gemv/gemv_t kernels:
// same column blocking, accumulator chains, and OpenMP thresholds as the
// double kernels, with all arithmetic in float.

void gemv(float alpha, std::size_t rows, std::size_t cols, const float* b,
          std::size_t lda, const float* x, float beta, float* y);

void gemv_t(float alpha, std::size_t rows, std::size_t cols, const float* b,
            std::size_t lda, const float* x, float beta, float* y);

void gemv(float alpha, const BasisViewT<float>& q, std::span<const float> x,
          float beta, std::span<float> y);

void gemv_t(float alpha, const BasisViewT<float>& q, std::span<const float> x,
            float beta, std::span<float> y);

/// y := alpha*A*x + beta*y.
void gemv(double alpha, const DenseMatrix& A, const Vector& x, double beta,
          Vector& y);

/// y := alpha*A^T*x + beta*y.
void gemv_t(double alpha, const DenseMatrix& A, const Vector& x, double beta,
            Vector& y);

/// C := A*B (no accumulation; C is reshaped as needed).
void gemm(const DenseMatrix& A, const DenseMatrix& B, DenseMatrix& C);

/// Frobenius norm of a dense matrix.
[[nodiscard]] double frobenius_norm(const DenseMatrix& A);

/// Maximum absolute deviation of A^T*A from the identity; measures loss of
/// orthonormality of A's columns (used by the Arnoldi property tests).
[[nodiscard]] double orthonormality_defect(const DenseMatrix& A);

/// Same measure over a contiguous basis view.
[[nodiscard]] double orthonormality_defect(const BasisView& q);

} // namespace sdcgmres::la
