#pragma once
/// \file blas2.hpp
/// \brief Dense level-2 kernels on DenseMatrix / Vector.

#include "la/dense_matrix.hpp"
#include "la/vector.hpp"

namespace sdcgmres::la {

/// y := alpha*A*x + beta*y.
void gemv(double alpha, const DenseMatrix& A, const Vector& x, double beta,
          Vector& y);

/// y := alpha*A^T*x + beta*y.
void gemv_t(double alpha, const DenseMatrix& A, const Vector& x, double beta,
            Vector& y);

/// C := A*B (no accumulation; C is reshaped as needed).
void gemm(const DenseMatrix& A, const DenseMatrix& B, DenseMatrix& C);

/// Frobenius norm of a dense matrix.
[[nodiscard]] double frobenius_norm(const DenseMatrix& A);

/// Maximum absolute deviation of A^T*A from the identity; measures loss of
/// orthonormality of A's columns (used by the Arnoldi property tests).
[[nodiscard]] double orthonormality_defect(const DenseMatrix& A);

} // namespace sdcgmres::la
