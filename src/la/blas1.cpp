#include "la/blas1.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace sdcgmres::la {

namespace {

void require_same_size(const Vector& x, const Vector& y, const char* what) {
  if (x.size() != y.size()) {
    throw std::invalid_argument(std::string("la::") + what +
                                ": vector size mismatch");
  }
}

// OpenMP reductions use signed loop indices; sizes in this project are far
// below 2^63 so the narrowing is safe.
std::int64_t ssize(const Vector& x) { return static_cast<std::int64_t>(x.size()); }

} // namespace

double dot(const Vector& x, const Vector& y) {
  require_same_size(x, y, "dot");
  double sum = 0.0;
  const std::int64_t n = ssize(x);
#pragma omp parallel for reduction(+ : sum) schedule(static) if (n > 4096)
  for (std::int64_t i = 0; i < n; ++i) {
    sum += x[static_cast<std::size_t>(i)] * y[static_cast<std::size_t>(i)];
  }
  return sum;
}

double nrm2(const Vector& x) { return std::sqrt(dot(x, x)); }

double nrm1(const Vector& x) {
  double sum = 0.0;
  const std::int64_t n = ssize(x);
#pragma omp parallel for reduction(+ : sum) schedule(static) if (n > 4096)
  for (std::int64_t i = 0; i < n; ++i) {
    sum += std::abs(x[static_cast<std::size_t>(i)]);
  }
  return sum;
}

double nrminf(const Vector& x) {
  double best = 0.0;
  const std::int64_t n = ssize(x);
#pragma omp parallel for reduction(max : best) schedule(static) if (n > 4096)
  for (std::int64_t i = 0; i < n; ++i) {
    const double a = std::abs(x[static_cast<std::size_t>(i)]);
    if (a > best) best = a;
  }
  return best;
}

void axpy(double alpha, const Vector& x, Vector& y) {
  require_same_size(x, y, "axpy");
  const std::int64_t n = ssize(x);
#pragma omp parallel for schedule(static) if (n > 4096)
  for (std::int64_t i = 0; i < n; ++i) {
    y[static_cast<std::size_t>(i)] += alpha * x[static_cast<std::size_t>(i)];
  }
}

void waxpby(double alpha, const Vector& x, double beta, const Vector& y,
            Vector& w) {
  require_same_size(x, y, "waxpby");
  if (w.size() != x.size()) w.resize(x.size());
  const std::int64_t n = ssize(x);
#pragma omp parallel for schedule(static) if (n > 4096)
  for (std::int64_t i = 0; i < n; ++i) {
    const auto k = static_cast<std::size_t>(i);
    w[k] = alpha * x[k] + beta * y[k];
  }
}

void scal(double alpha, Vector& x) {
  const std::int64_t n = ssize(x);
#pragma omp parallel for schedule(static) if (n > 4096)
  for (std::int64_t i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] *= alpha;
  }
}

void copy(const Vector& x, Vector& y) {
  if (y.size() != x.size()) y.resize(x.size());
  const std::int64_t n = ssize(x);
#pragma omp parallel for schedule(static) if (n > 4096)
  for (std::int64_t i = 0; i < n; ++i) {
    y[static_cast<std::size_t>(i)] = x[static_cast<std::size_t>(i)];
  }
}

void hadamard(const Vector& x, const Vector& y, Vector& z) {
  require_same_size(x, y, "hadamard");
  if (z.size() != x.size()) z.resize(x.size());
  const std::int64_t n = ssize(x);
#pragma omp parallel for schedule(static) if (n > 4096)
  for (std::int64_t i = 0; i < n; ++i) {
    const auto k = static_cast<std::size_t>(i);
    z[k] = x[k] * y[k];
  }
}

bool all_finite(const Vector& x) { return count_nonfinite(x) == 0; }

std::size_t count_nonfinite(const Vector& x) {
  std::int64_t bad = 0;
  const std::int64_t n = ssize(x);
#pragma omp parallel for reduction(+ : bad) schedule(static) if (n > 4096)
  for (std::int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(x[static_cast<std::size_t>(i)])) ++bad;
  }
  return static_cast<std::size_t>(bad);
}

} // namespace sdcgmres::la
