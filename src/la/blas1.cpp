#include "la/blas1.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace sdcgmres::la {

namespace {

void require_same_size(const Vector& x, const Vector& y, const char* what) {
  if (x.size() != y.size()) {
    throw std::invalid_argument(std::string("la::") + what +
                                ": vector size mismatch");
  }
}

// OpenMP reductions use signed loop indices; sizes in this project are far
// below 2^63 so the narrowing is safe.
std::int64_t ssize(const Vector& x) { return static_cast<std::int64_t>(x.size()); }

void require_same_size(std::span<const double> x, std::span<const double> y,
                       const char* what) {
  if (x.size() != y.size()) {
    throw std::invalid_argument(std::string("la::") + what +
                                ": span size mismatch");
  }
}

} // namespace

double dot(std::span<const double> x, std::span<const double> y) {
  require_same_size(x, y, "dot");
  double sum = 0.0;
  const auto n = static_cast<std::int64_t>(x.size());
  const double* px = x.data();
  const double* py = y.data();
#pragma omp parallel for reduction(+ : sum) schedule(static) if (n > 4096)
  for (std::int64_t i = 0; i < n; ++i) {
    sum += px[i] * py[i];
  }
  return sum;
}

double nrm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  require_same_size(x, y, "axpy");
  const auto n = static_cast<std::int64_t>(x.size());
  const double* px = x.data();
  double* py = y.data();
#pragma omp parallel for schedule(static) if (n > 4096)
  for (std::int64_t i = 0; i < n; ++i) {
    py[i] += alpha * px[i];
  }
}

void scal(double alpha, std::span<double> x) {
  const auto n = static_cast<std::int64_t>(x.size());
  double* px = x.data();
#pragma omp parallel for schedule(static) if (n > 4096)
  for (std::int64_t i = 0; i < n; ++i) {
    px[i] *= alpha;
  }
}

void copy(std::span<const double> x, std::span<double> y) {
  require_same_size(x, y, "copy");
  const auto n = static_cast<std::int64_t>(x.size());
  const double* px = x.data();
  double* py = y.data();
#pragma omp parallel for schedule(static) if (n > 4096)
  for (std::int64_t i = 0; i < n; ++i) {
    py[i] = px[i];
  }
}

void waxpby(double alpha, std::span<const double> x, double beta,
            std::span<const double> y, std::span<double> w) {
  require_same_size(x, y, "waxpby");
  require_same_size(x, std::span<const double>(w), "waxpby");
  const auto n = static_cast<std::int64_t>(x.size());
  const double* px = x.data();
  const double* py = y.data();
  double* pw = w.data();
#pragma omp parallel for schedule(static) if (n > 4096)
  for (std::int64_t i = 0; i < n; ++i) {
    pw[i] = alpha * px[i] + beta * py[i];
  }
}

void hadamard(std::span<const double> x, std::span<const double> y,
              std::span<double> z) {
  require_same_size(x, y, "hadamard");
  require_same_size(x, std::span<const double>(z), "hadamard");
  const auto n = static_cast<std::int64_t>(x.size());
  const double* px = x.data();
  const double* py = y.data();
  double* pz = z.data();
#pragma omp parallel for schedule(static) if (n > 4096)
  for (std::int64_t i = 0; i < n; ++i) {
    pz[i] = px[i] * py[i];
  }
}

bool all_finite(std::span<const double> x) { return count_nonfinite(x) == 0; }

std::size_t count_nonfinite(std::span<const double> x) {
  std::int64_t bad = 0;
  const auto n = static_cast<std::int64_t>(x.size());
  const double* px = x.data();
#pragma omp parallel for reduction(+ : bad) schedule(static) if (n > 4096)
  for (std::int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(px[i])) ++bad;
  }
  return static_cast<std::size_t>(bad);
}

namespace {

double dot_axpy_impl(std::span<const double> x, std::span<double> y,
                     const std::function<void(double&)>* adjust) {
  require_same_size(x, std::span<const double>(y), "dot_axpy");
  const auto n = static_cast<std::int64_t>(x.size());
  const double* px = x.data();
  double* py = y.data();
  double h = 0.0;
#pragma omp parallel if (n > 4096) default(shared)
  {
#pragma omp for reduction(+ : h) schedule(static)
    for (std::int64_t i = 0; i < n; ++i) {
      h += px[i] * py[i];
    }
    // The reduction is complete at the barrier above; the hook point runs
    // exactly once, between the dot and the correction, and may mutate h.
#pragma omp single
    {
      if (adjust != nullptr) (*adjust)(h);
    }
    // Private copy: h is shared in the outlined region, and a shared
    // variable read inside the loop defeats register allocation.
    const double hh = h;
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < n; ++i) {
      py[i] -= hh * px[i];
    }
  }
  return h;
}

} // namespace

double dot_axpy(std::span<const double> x, std::span<double> y) {
  return dot_axpy_impl(x, y, nullptr);
}

double dot_axpy(std::span<const double> x, std::span<double> y,
                const std::function<void(double&)>& adjust) {
  return dot_axpy_impl(x, y, &adjust);
}

// --- Float kernels ----------------------------------------------------------
//
// Same loops, thresholds, and summation order as the double kernels above,
// instantiated for float.  Kept as a generic implementation block so a
// future half-precision plane is a one-line instantiation.

namespace {

template <typename S>
void require_same_size_t(std::span<const S> x, std::span<const S> y,
                         const char* what) {
  if (x.size() != y.size()) {
    throw std::invalid_argument(std::string("la::") + what +
                                ": span size mismatch");
  }
}

template <typename S>
S dot_t(std::span<const S> x, std::span<const S> y) {
  require_same_size_t<S>(x, y, "dot");
  S sum = S(0);
  const auto n = static_cast<std::int64_t>(x.size());
  const S* px = x.data();
  const S* py = y.data();
#pragma omp parallel for reduction(+ : sum) schedule(static) if (n > 4096)
  for (std::int64_t i = 0; i < n; ++i) {
    sum += px[i] * py[i];
  }
  return sum;
}

template <typename S>
S dot_axpy_impl_t(std::span<const S> x, std::span<S> y,
                  const std::function<void(S&)>* adjust) {
  require_same_size_t<S>(x, std::span<const S>(y), "dot_axpy");
  const auto n = static_cast<std::int64_t>(x.size());
  const S* px = x.data();
  S* py = y.data();
  S h = S(0);
#pragma omp parallel if (n > 4096) default(shared)
  {
#pragma omp for reduction(+ : h) schedule(static)
    for (std::int64_t i = 0; i < n; ++i) {
      h += px[i] * py[i];
    }
#pragma omp single
    {
      if (adjust != nullptr) (*adjust)(h);
    }
    const S hh = h;
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < n; ++i) {
      py[i] -= hh * px[i];
    }
  }
  return h;
}

} // namespace

float dot(std::span<const float> x, std::span<const float> y) {
  return dot_t<float>(x, y);
}

float nrm2(std::span<const float> x) { return std::sqrt(dot(x, x)); }

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  require_same_size_t<float>(x, std::span<const float>(y), "axpy");
  const auto n = static_cast<std::int64_t>(x.size());
  const float* px = x.data();
  float* py = y.data();
#pragma omp parallel for schedule(static) if (n > 4096)
  for (std::int64_t i = 0; i < n; ++i) {
    py[i] += alpha * px[i];
  }
}

void scal(float alpha, std::span<float> x) {
  const auto n = static_cast<std::int64_t>(x.size());
  float* px = x.data();
#pragma omp parallel for schedule(static) if (n > 4096)
  for (std::int64_t i = 0; i < n; ++i) {
    px[i] *= alpha;
  }
}

void copy(std::span<const float> x, std::span<float> y) {
  require_same_size_t<float>(x, std::span<const float>(y), "copy");
  const auto n = static_cast<std::int64_t>(x.size());
  const float* px = x.data();
  float* py = y.data();
#pragma omp parallel for schedule(static) if (n > 4096)
  for (std::int64_t i = 0; i < n; ++i) {
    py[i] = px[i];
  }
}

void waxpby(float alpha, std::span<const float> x, float beta,
            std::span<const float> y, std::span<float> w) {
  require_same_size_t<float>(x, y, "waxpby");
  require_same_size_t<float>(x, std::span<const float>(w), "waxpby");
  const auto n = static_cast<std::int64_t>(x.size());
  const float* px = x.data();
  const float* py = y.data();
  float* pw = w.data();
#pragma omp parallel for schedule(static) if (n > 4096)
  for (std::int64_t i = 0; i < n; ++i) {
    pw[i] = alpha * px[i] + beta * py[i];
  }
}

bool all_finite(std::span<const float> x) { return count_nonfinite(x) == 0; }

std::size_t count_nonfinite(std::span<const float> x) {
  std::int64_t bad = 0;
  const auto n = static_cast<std::int64_t>(x.size());
  const float* px = x.data();
#pragma omp parallel for reduction(+ : bad) schedule(static) if (n > 4096)
  for (std::int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(px[i])) ++bad;
  }
  return static_cast<std::size_t>(bad);
}

float dot_axpy(std::span<const float> x, std::span<float> y) {
  return dot_axpy_impl_t<float>(x, y, nullptr);
}

float dot_axpy(std::span<const float> x, std::span<float> y,
               const std::function<void(float&)>& adjust) {
  return dot_axpy_impl_t<float>(x, y, &adjust);
}

double dot(const Vector& x, const Vector& y) {
  require_same_size(x, y, "dot");
  return dot(std::span<const double>(x.span()),
             std::span<const double>(y.span()));
}

double nrm2(const Vector& x) { return std::sqrt(dot(x, x)); }

double nrm1(const Vector& x) {
  double sum = 0.0;
  const std::int64_t n = ssize(x);
#pragma omp parallel for reduction(+ : sum) schedule(static) if (n > 4096)
  for (std::int64_t i = 0; i < n; ++i) {
    sum += std::abs(x[static_cast<std::size_t>(i)]);
  }
  return sum;
}

double nrminf(const Vector& x) {
  double best = 0.0;
  const std::int64_t n = ssize(x);
#pragma omp parallel for reduction(max : best) schedule(static) if (n > 4096)
  for (std::int64_t i = 0; i < n; ++i) {
    const double a = std::abs(x[static_cast<std::size_t>(i)]);
    if (a > best) best = a;
  }
  return best;
}

void axpy(double alpha, const Vector& x, Vector& y) {
  require_same_size(x, y, "axpy");
  const std::int64_t n = ssize(x);
#pragma omp parallel for schedule(static) if (n > 4096)
  for (std::int64_t i = 0; i < n; ++i) {
    y[static_cast<std::size_t>(i)] += alpha * x[static_cast<std::size_t>(i)];
  }
}

void waxpby(double alpha, const Vector& x, double beta, const Vector& y,
            Vector& w) {
  require_same_size(x, y, "waxpby");
  if (w.size() != x.size()) w.resize(x.size());
  const std::int64_t n = ssize(x);
#pragma omp parallel for schedule(static) if (n > 4096)
  for (std::int64_t i = 0; i < n; ++i) {
    const auto k = static_cast<std::size_t>(i);
    w[k] = alpha * x[k] + beta * y[k];
  }
}

void scal(double alpha, Vector& x) {
  const std::int64_t n = ssize(x);
#pragma omp parallel for schedule(static) if (n > 4096)
  for (std::int64_t i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] *= alpha;
  }
}

void copy(const Vector& x, Vector& y) {
  if (y.size() != x.size()) y.resize(x.size());
  const std::int64_t n = ssize(x);
#pragma omp parallel for schedule(static) if (n > 4096)
  for (std::int64_t i = 0; i < n; ++i) {
    y[static_cast<std::size_t>(i)] = x[static_cast<std::size_t>(i)];
  }
}

void hadamard(const Vector& x, const Vector& y, Vector& z) {
  require_same_size(x, y, "hadamard");
  if (z.size() != x.size()) z.resize(x.size());
  const std::int64_t n = ssize(x);
#pragma omp parallel for schedule(static) if (n > 4096)
  for (std::int64_t i = 0; i < n; ++i) {
    const auto k = static_cast<std::size_t>(i);
    z[k] = x[k] * y[k];
  }
}

bool all_finite(const Vector& x) { return count_nonfinite(x.span()) == 0; }

std::size_t count_nonfinite(const Vector& x) {
  return count_nonfinite(std::span<const double>(x.span()));
}

} // namespace sdcgmres::la
