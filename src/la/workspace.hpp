#pragma once
/// \file workspace.hpp
/// \brief Reusable solver storage: the zero-allocation data plane.
///
/// Every GMRES-family solve needs the same storage shape: an orthonormal
/// basis arena V, a (flexible solvers only) preconditioned-direction arena
/// Z, a handful of length-n scratch vectors, and one Hessenberg column.
/// Allocating these per solve is invisible for a single solve but dominates
/// an injection sweep, which runs hundreds of independent solves of the
/// same shape.  SolverWorkspace owns all of it once; reserve() grows the
/// arenas monotonically (never shrinks), so a workspace checked out by a
/// sweep worker thread reaches a fixed point after its first solve and
/// every subsequent solve runs without touching the heap.
///
/// Templated on the scalar type: the reliable plane uses the double
/// instantiation (aliased SolverWorkspace), the mixed-precision inner
/// GMRES engines check out SolverWorkspaceT<float> arenas.
///
/// Ownership and aliasing rules (the span data plane contract):
///   - A workspace serves ONE solver instance at a time.  Nested solvers
///     (FT-GMRES: outer FGMRES + inner GMRES) need one workspace per
///     nesting level, because the outer basis must survive inner solves.
///   - Spans handed to operators/preconditioners point into these arenas;
///     callees must treat input spans as read-only and write every entry
///     of their output span.  Input and output spans never alias.
///   - Threads must not share a workspace.  One workspace per thread is
///     the parallel-sweep pattern (see experiment::run_injection_sweep).

#include <algorithm>
#include <cstddef>
#include <vector>

#include "la/krylov_basis.hpp"
#include "la/vector.hpp"

namespace sdcgmres::la {

/// Arena of reusable solver storage (see file comment for the contract).
template <typename S>
class SolverWorkspaceT {
public:
  /// Number of length-n scratch vectors (residual, candidate,
  /// preconditioner output, update -- the most any solver needs at once).
  static constexpr std::size_t kScratchSlots = 4;

  SolverWorkspaceT() = default;

  /// Pre-size for solves with \p rows unknowns and up to \p max_dim basis
  /// columns (V gets max_dim+1 columns for the final Arnoldi vector).
  SolverWorkspaceT(std::size_t rows, std::size_t max_dim) {
    reserve(rows, max_dim);
  }

  /// Shape the arenas for a solve of \p rows unknowns with up to
  /// \p max_dim basis/direction columns.  With an unchanged row count the
  /// column capacity grows monotonically and a fitting reserve is
  /// allocation-free; changing the row count reshapes (reallocates) the
  /// arenas.  Existing column contents are NOT preserved across a
  /// reshaping reserve.
  void reserve(std::size_t rows, std::size_t max_dim) {
    if (rows != rows_ || max_dim > max_dim_) {
      // Same row count: grow the column capacity monotonically.  A changed
      // row count reshapes the arenas (their columns must be exactly
      // rows-long spans), which reallocates -- the one case a workspace is
      // not allocation-free, and one that repeated same-shape solves (the
      // sweep pattern) never hit.
      const std::size_t d = (rows == rows_) ? std::max(max_dim, max_dim_)
                                            : max_dim;
      v_ = KrylovBasisT<S>(rows, d + 1);
      z_ = KrylovBasisT<S>(rows, d);
      rows_ = rows;
      max_dim_ = d;
    }
    for (VectorT<S>& s : scratch_) {
      if (s.size() != rows_) s.resize(rows_);
    }
    if (hcol_.size() < max_dim_ + 2) hcol_.resize(max_dim_ + 2, S(0));
  }

  /// Orthonormal basis arena V (capacity >= max_dim+1 after reserve).
  [[nodiscard]] KrylovBasisT<S>& basis() noexcept { return v_; }
  /// Preconditioned-direction arena Z (capacity >= max_dim after reserve).
  [[nodiscard]] KrylovBasisT<S>& directions() noexcept { return z_; }

  /// Length-rows scratch vector \p slot (0 <= slot < kScratchSlots).
  /// Contents are unspecified at checkout; callers must fully overwrite.
  [[nodiscard]] VectorT<S>& scratch(std::size_t slot) noexcept {
    return scratch_[slot];
  }

  /// Hessenberg column scratch (length >= max_dim+2 after reserve).
  [[nodiscard]] std::vector<S>& h_column() noexcept { return hcol_; }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t max_dim() const noexcept { return max_dim_; }

private:
  std::size_t rows_ = 0;
  std::size_t max_dim_ = 0;
  KrylovBasisT<S> v_;
  KrylovBasisT<S> z_;
  VectorT<S> scratch_[kScratchSlots];
  std::vector<S> hcol_;
};

using SolverWorkspace = SolverWorkspaceT<double>;

} // namespace sdcgmres::la
