#include "la/dense_matrix.hpp"

#include <stdexcept>

namespace sdcgmres::la {

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix I(n, n);
  for (std::size_t i = 0; i < n; ++i) I(i, i) = 1.0;
  return I;
}

DenseMatrix DenseMatrix::top_left(std::size_t r, std::size_t c) const {
  if (r > rows_ || c > cols_) {
    throw std::out_of_range("DenseMatrix::top_left: block exceeds matrix");
  }
  DenseMatrix B(r, c);
  for (std::size_t j = 0; j < c; ++j) {
    for (std::size_t i = 0; i < r; ++i) {
      B(i, j) = (*this)(i, j);
    }
  }
  return B;
}

DenseMatrix DenseMatrix::transposed() const {
  DenseMatrix T(cols_, rows_);
  for (std::size_t j = 0; j < cols_; ++j) {
    for (std::size_t i = 0; i < rows_; ++i) {
      T(j, i) = (*this)(i, j);
    }
  }
  return T;
}

} // namespace sdcgmres::la
