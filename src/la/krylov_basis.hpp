#pragma once
/// \file krylov_basis.hpp
/// \brief Contiguous column-major arena for a growing Krylov basis.
///
/// The per-iteration hot path of every GMRES variant orthogonalizes the new
/// candidate vector against the whole current basis.  Storing the basis as
/// `std::vector<la::Vector>` (one heap allocation per column) forces the
/// projection and correction to run as k separate dot/axpy kernels over
/// scattered buffers.  KrylovBasis instead owns ONE flat buffer of
/// rows x capacity scalars, laid out column-major with leading dimension ==
/// rows, so that
///   - the CGS/CGS2 projection is a single gemv_t over the block,
///   - the correction is a single gemv,
///   - MGS streams each column once through the fused la::dot_axpy kernel,
/// exactly as production Krylov codes (Trilinos/Belos-style blocked CGS2)
/// arrange it.  Columns are exposed as std::span views, which all blas1/2
/// kernels accept.
///
/// The arena is templated on the scalar type: the reliable plane uses the
/// double instantiations (aliased BasisView / KrylovBasis, unchanged
/// behaviour), the mixed-precision inner plane uses the float ones.
///
/// The capacity is fixed at construction: growing would reallocate and
/// silently invalidate column spans held by callers (solvers always know
/// their restart length up front).  append() past capacity throws.

#include <algorithm>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "la/dense_matrix.hpp"
#include "la/vector.hpp"

namespace sdcgmres::la {

/// Leading dimension used by every column-major arena in the la layer:
/// rows, plus a one-cache-line pad when a rows-sized stride would be a
/// multiple of the 4 KiB page (all columns congruent modulo every
/// cache-set stride -> conflict misses on every multi-column kernel;
/// measured ~20% slowdown for MGS at n = 65536).  The pad is one 64-byte
/// cache line in units of the scalar (8 doubles / 16 floats).
template <typename S = double>
[[nodiscard]] std::size_t padded_leading_dimension(std::size_t rows) noexcept {
  if (rows >= 512 && (rows * sizeof(S)) % 4096 == 0) {
    return rows + 64 / sizeof(S);
  }
  return rows;
}

/// Non-owning read-only view of the leading columns of a contiguous
/// column-major block (leading dimension >= rows).  This is what the
/// fused kernels and the Arnoldi hook protocol consume; it is trivially
/// copyable and valid as long as the underlying basis is alive and not
/// shrunk below `cols` columns.
template <typename S>
class BasisViewT {
public:
  BasisViewT() = default;
  BasisViewT(const S* data, std::size_t rows, std::size_t cols,
             std::size_t ld) noexcept
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  /// Leading dimension (distance in scalars between column starts).
  [[nodiscard]] std::size_t ld() const noexcept { return ld_; }
  [[nodiscard]] bool empty() const noexcept { return cols_ == 0; }

  /// Column \p j as a contiguous span of length rows().
  [[nodiscard]] std::span<const S> col(std::size_t j) const noexcept {
    return {data_ + j * ld_, rows_};
  }

  /// Start of the flat column-major storage.
  [[nodiscard]] const S* data() const noexcept { return data_; }

private:
  const S* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t ld_ = 0;
};

using BasisView = BasisViewT<double>;

/// Contiguous column-major Krylov basis arena.
template <typename S>
class KrylovBasisT {
public:
  KrylovBasisT() = default;

  /// Arena for up to \p capacity vectors of length \p rows; allocates the
  /// whole buffer once, zero-initialized, with zero current columns.
  KrylovBasisT(std::size_t rows, std::size_t capacity)
      : rows_(rows), capacity_(capacity),
        ld_(padded_leading_dimension<S>(rows)), data_(ld_ * capacity, S(0)) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  /// Number of columns currently in the basis.
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return cols_ == 0; }
  /// Leading dimension: rows() plus a small pad when a rows-sized stride
  /// would be a multiple of the 4 KiB page (all columns congruent modulo
  /// every cache-set stride -> conflict misses on every kernel).
  [[nodiscard]] std::size_t ld() const noexcept { return ld_; }

  /// Append a zero column and return a mutable view of it.  Throws
  /// std::length_error when the arena is full.
  std::span<S> append() {
    if (cols_ == capacity_) {
      throw std::length_error(
          "KrylovBasis::append: arena full (growing would invalidate "
          "outstanding column views)");
    }
    ++cols_;
    return col(cols_ - 1);
  }

  /// Append a copy of \p v (length must equal rows()).
  void append(std::span<const S> v) {
    if (v.size() != rows_) {
      throw std::invalid_argument(
          "KrylovBasis::append: column length mismatch");
    }
    std::span<S> dst = append();
    std::copy(v.begin(), v.end(), dst.begin());
  }
  void append(const VectorT<S>& v) { append(v.span()); }

  /// Drop the last column (its storage is re-zeroed so a later append()
  /// starts clean).  Throws std::out_of_range when empty.
  void pop_back() {
    if (cols_ == 0) {
      throw std::out_of_range("KrylovBasis::pop_back: basis is empty");
    }
    std::span<S> last = col(cols_ - 1);
    std::fill(last.begin(), last.end(), S(0));
    --cols_;
  }

  /// Drop all columns; the arena stays allocated.
  void clear() {
    for (std::size_t j = 0; j < cols_; ++j) {
      std::span<S> c = col(j);
      std::fill(c.begin(), c.end(), S(0));
    }
    cols_ = 0;
  }

  /// Column \p j as a span (no bounds check beyond debug assertions).
  [[nodiscard]] std::span<S> col(std::size_t j) noexcept {
    return {data_.data() + j * ld_, rows_};
  }
  [[nodiscard]] std::span<const S> col(std::size_t j) const noexcept {
    return {data_.data() + j * ld_, rows_};
  }

  /// Copy of column \p j as an owning vector (compat / test helper).
  [[nodiscard]] VectorT<S> col_copy(std::size_t j) const {
    if (j >= cols_) throw std::out_of_range("KrylovBasis::col_copy");
    VectorT<S> out(rows_);
    const std::span<const S> src = col(j);
    std::copy(src.begin(), src.end(), out.begin());
    return out;
  }

  /// View of the first \p k columns (k <= cols()).
  [[nodiscard]] BasisViewT<S> view(std::size_t k) const {
    if (k > cols_) {
      throw std::out_of_range("KrylovBasis::view: more columns than present");
    }
    return {data_.data(), rows_, k, ld_};
  }
  /// View of all current columns.
  [[nodiscard]] BasisViewT<S> view() const { return view(cols_); }

  [[nodiscard]] S* data() noexcept { return data_.data(); }
  [[nodiscard]] const S* data() const noexcept { return data_.data(); }

  /// Dense (double) copy (rows x cols) of the current basis, for tests
  /// that measure orthonormality with the DenseMatrix helpers; float
  /// columns are widened entry-wise.
  [[nodiscard]] DenseMatrix to_dense() const {
    DenseMatrix out(rows_, cols_);
    for (std::size_t j = 0; j < cols_; ++j) {
      const std::span<const S> src = col(j);
      double* dst = out.col(j);
      for (std::size_t i = 0; i < rows_; ++i) {
        dst[i] = static_cast<double>(src[i]);
      }
    }
    return out;
  }

private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t capacity_ = 0;
  std::size_t ld_ = 0;
  std::vector<S> data_;
};

using KrylovBasis = KrylovBasisT<double>;

} // namespace sdcgmres::la
