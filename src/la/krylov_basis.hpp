#pragma once
/// \file krylov_basis.hpp
/// \brief Contiguous column-major arena for a growing Krylov basis.
///
/// The per-iteration hot path of every GMRES variant orthogonalizes the new
/// candidate vector against the whole current basis.  Storing the basis as
/// `std::vector<la::Vector>` (one heap allocation per column) forces the
/// projection and correction to run as k separate dot/axpy kernels over
/// scattered buffers.  KrylovBasis instead owns ONE flat buffer of
/// rows x capacity doubles, laid out column-major with leading dimension ==
/// rows, so that
///   - the CGS/CGS2 projection is a single gemv_t over the block,
///   - the correction is a single gemv,
///   - MGS streams each column once through the fused la::dot_axpy kernel,
/// exactly as production Krylov codes (Trilinos/Belos-style blocked CGS2)
/// arrange it.  Columns are exposed as std::span views, which all blas1/2
/// kernels accept.
///
/// The capacity is fixed at construction: growing would reallocate and
/// silently invalidate column spans held by callers (solvers always know
/// their restart length up front).  append() past capacity throws.

#include <cstddef>
#include <span>
#include <vector>

#include "la/dense_matrix.hpp"
#include "la/vector.hpp"

namespace sdcgmres::la {

/// Leading dimension used by every column-major arena in the la layer:
/// rows, plus a one-cache-line pad when a rows-sized stride would be a
/// multiple of the 4 KiB page (all columns congruent modulo every
/// cache-set stride -> conflict misses on every multi-column kernel).
[[nodiscard]] std::size_t padded_leading_dimension(std::size_t rows) noexcept;

/// Non-owning read-only view of the leading columns of a contiguous
/// column-major block (leading dimension >= rows).  This is what the
/// fused kernels and the Arnoldi hook protocol consume; it is trivially
/// copyable and valid as long as the underlying basis is alive and not
/// shrunk below `cols` columns.
class BasisView {
public:
  BasisView() = default;
  BasisView(const double* data, std::size_t rows, std::size_t cols,
            std::size_t ld) noexcept
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  /// Leading dimension (distance in doubles between column starts).
  [[nodiscard]] std::size_t ld() const noexcept { return ld_; }
  [[nodiscard]] bool empty() const noexcept { return cols_ == 0; }

  /// Column \p j as a contiguous span of length rows().
  [[nodiscard]] std::span<const double> col(std::size_t j) const noexcept {
    return {data_ + j * ld_, rows_};
  }

  /// Start of the flat column-major storage.
  [[nodiscard]] const double* data() const noexcept { return data_; }

private:
  const double* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t ld_ = 0;
};

/// Contiguous column-major Krylov basis arena.
class KrylovBasis {
public:
  KrylovBasis() = default;

  /// Arena for up to \p capacity vectors of length \p rows; allocates the
  /// whole buffer once, zero-initialized, with zero current columns.
  KrylovBasis(std::size_t rows, std::size_t capacity);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  /// Number of columns currently in the basis.
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return cols_ == 0; }
  /// Leading dimension: rows() plus a small pad when a rows-sized stride
  /// would be a multiple of the 4 KiB page (all columns congruent modulo
  /// every cache-set stride -> conflict misses on every kernel).
  [[nodiscard]] std::size_t ld() const noexcept { return ld_; }

  /// Append a zero column and return a mutable view of it.  Throws
  /// std::length_error when the arena is full.
  std::span<double> append();

  /// Append a copy of \p v (length must equal rows()).
  void append(std::span<const double> v);
  void append(const Vector& v);

  /// Drop the last column (its storage is re-zeroed so a later append()
  /// starts clean).  Throws std::out_of_range when empty.
  void pop_back();

  /// Drop all columns; the arena stays allocated.
  void clear();

  /// Column \p j as a span (no bounds check beyond debug assertions).
  [[nodiscard]] std::span<double> col(std::size_t j) noexcept {
    return {data_.data() + j * ld_, rows_};
  }
  [[nodiscard]] std::span<const double> col(std::size_t j) const noexcept {
    return {data_.data() + j * ld_, rows_};
  }

  /// Copy of column \p j as an owning la::Vector (compat / test helper).
  [[nodiscard]] Vector col_copy(std::size_t j) const;

  /// View of the first \p k columns (k <= cols()).
  [[nodiscard]] BasisView view(std::size_t k) const;
  /// View of all current columns.
  [[nodiscard]] BasisView view() const { return view(cols_); }

  [[nodiscard]] double* data() noexcept { return data_.data(); }
  [[nodiscard]] const double* data() const noexcept { return data_.data(); }

  /// Dense copy (rows x cols) of the current basis, for tests that measure
  /// orthonormality with the DenseMatrix helpers.
  [[nodiscard]] DenseMatrix to_dense() const;

private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t capacity_ = 0;
  std::size_t ld_ = 0;
  std::vector<double> data_;
};

} // namespace sdcgmres::la
