#include "la/workspace.hpp"

#include <algorithm>

namespace sdcgmres::la {

void SolverWorkspace::reserve(std::size_t rows, std::size_t max_dim) {
  if (rows != rows_ || max_dim > max_dim_) {
    // Same row count: grow the column capacity monotonically.  A changed
    // row count reshapes the arenas (their columns must be exactly
    // rows-long spans), which reallocates -- the one case a workspace is
    // not allocation-free, and one that repeated same-shape solves (the
    // sweep pattern) never hit.
    const std::size_t d = (rows == rows_) ? std::max(max_dim, max_dim_)
                                          : max_dim;
    v_ = KrylovBasis(rows, d + 1);
    z_ = KrylovBasis(rows, d);
    rows_ = rows;
    max_dim_ = d;
  }
  for (Vector& s : scratch_) {
    if (s.size() != rows_) s.resize(rows_);
  }
  if (hcol_.size() < max_dim_ + 2) hcol_.resize(max_dim_ + 2, 0.0);
}

} // namespace sdcgmres::la
