#pragma once
/// \file tsqr.hpp
/// \brief Tall-skinny QR (TSQR) over a contiguous column-major panel.
///
/// The s-step Arnoldi path stages s candidate basis vectors at once and
/// must orthonormalize them in ONE global reduction instead of CGS2's two
/// sweeps per vector.  TSQR is the standard communication-avoiding kernel
/// for that shape (Demmel et al.): partition the n x m panel into row
/// panels, factor each panel with a local Householder QR (no communication
/// between panels), then reduce the per-panel m x m R factors up a binary
/// tree -- the only step that touches data across panels, i.e. the single
/// "global reduction" the SyncStats counter charges for.
///
/// Determinism contract: the row-panel partition depends only on (rows,
/// cols, panel_rows) -- never on the thread count -- and the R-reduction
/// tree is walked serially in a fixed pairwise order.  OpenMP parallelism
/// is applied ONLY across independent row panels (local QR and the final
/// panel-times-G multiply), so results are bitwise identical for any
/// thread count, including serial.
///
/// Sign convention: the final R is normalized to a nonnegative diagonal
/// (flipping the corresponding Q columns), so R(j,j) can serve directly as
/// the Arnoldi subdiagonal entries, matching the nonnegative h(j+1,j)
/// produced by the norm in the one-vector-at-a-time path.
///
/// Rank deficiency: a column whose remaining norm vanishes at step j gets
/// tau = 0 and R(j,j) = 0 (H_j = I); Q stays orthonormal -- its column j
/// is just no longer determined by the input.  Callers detect breakdown
/// from the R diagonal, exactly as they detect h(j+1,j) = 0.

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "la/block.hpp"

namespace sdcgmres::la {

namespace tsqr_detail {

/// In-place Householder QR of a rows x m column-major block (leading
/// dimension ld, rows >= m).  On return the upper triangle holds R, the
/// entries below the diagonal hold the Householder vectors (implicit unit
/// leading entry), and tau[j] the scalar factors (LAPACK geqrf layout).
template <typename S>
void householder_qr(S* a, std::size_t rows, std::size_t m, std::size_t ld,
                    S* tau) {
  for (std::size_t j = 0; j < m; ++j) {
    S* col = a + j * ld;
    // Norm of the active column tail (sequential order: deterministic).
    S sq = S(0);
    for (std::size_t i = j; i < rows; ++i) sq += col[i] * col[i];
    const S norm = std::sqrt(sq);
    if (norm == S(0)) {
      tau[j] = S(0); // H_j = I; R(j,j) = 0 (rank-deficient column).
      continue;
    }
    const S alpha = col[j];
    const S beta = (alpha >= S(0)) ? -norm : norm;
    tau[j] = (beta - alpha) / beta;
    const S scale = S(1) / (alpha - beta);
    for (std::size_t i = j + 1; i < rows; ++i) col[i] *= scale;
    col[j] = beta;
    // Apply H_j = I - tau v v^T to the trailing columns.
    for (std::size_t k = j + 1; k < m; ++k) {
      S* ck = a + k * ld;
      S w = ck[j]; // v[0] == 1 implicitly.
      for (std::size_t i = j + 1; i < rows; ++i) w += col[i] * ck[i];
      w *= tau[j];
      ck[j] -= w;
      for (std::size_t i = j + 1; i < rows; ++i) ck[i] -= w * col[i];
    }
  }
}

/// Backward accumulation of the explicit thin Q (rows x m) in place over
/// the geqrf-layout factors (LAPACK org2r).
template <typename S>
void accumulate_q(S* a, std::size_t rows, std::size_t m, std::size_t ld,
                  const S* tau) {
  for (std::size_t jj = m; jj-- > 0;) {
    const std::size_t j = jj;
    S* col = a + j * ld;
    // Apply H_j to the already-accumulated trailing columns.
    for (std::size_t k = j + 1; k < m; ++k) {
      S* ck = a + k * ld;
      S w = ck[j];
      for (std::size_t i = j + 1; i < rows; ++i) w += col[i] * ck[i];
      w *= tau[j];
      ck[j] -= w;
      for (std::size_t i = j + 1; i < rows; ++i) ck[i] -= w * col[i];
    }
    // Column j := H_j e_j.
    for (std::size_t i = j + 1; i < rows; ++i) col[i] *= -tau[j];
    col[j] = S(1) - tau[j];
    for (std::size_t i = 0; i < j; ++i) col[i] = S(0);
  }
}

} // namespace tsqr_detail

/// Factor \p panel (n x m, n >= m >= 1) as Q * R: on return the panel
/// columns hold the explicit orthonormal Q and the upper-triangular R
/// (nonnegative diagonal) is written into \p r column-major with leading
/// dimension \p ldr >= m (entries below the diagonal are zeroed).
///
/// \p panel_rows sets the row-panel granularity of the local-QR stage; the
/// effective panel height is max(panel_rows, m) with the remainder rows
/// folded into the LAST panel, so every panel has at least m rows and the
/// partition is independent of the thread count (bitwise thread-invariant
/// results; see file comment).
template <typename S>
void tsqr(BlockViewT<S> panel, S* r, std::size_t ldr,
          std::size_t panel_rows = 2048) {
  const std::size_t n = panel.rows();
  const std::size_t m = panel.cols();
  if (m == 0) throw std::invalid_argument("tsqr: panel has no columns");
  if (n < m) throw std::invalid_argument("tsqr: panel has fewer rows than columns");
  if (ldr < m) throw std::invalid_argument("tsqr: ldr smaller than cols");

  // Thread-count-independent row partition: panels of `base` rows, the
  // remainder folded into the last panel (every panel >= m rows).
  const std::size_t base = panel_rows > m ? panel_rows : m;
  const std::size_t num_panels = n / base > 0 ? n / base : 1;

  // Per-panel R factors (m x m each, column-major, packed) and tau.
  std::vector<S> rfac(num_panels * m * m, S(0));
  std::vector<S> taus(num_panels * m, S(0));

  auto panel_start = [&](std::size_t p) { return p * base; };
  auto panel_rows_of = [&](std::size_t p) {
    return (p + 1 == num_panels) ? n - p * base : base;
  };

#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t ps = 0; ps < static_cast<std::ptrdiff_t>(num_panels);
       ++ps) {
    const std::size_t p = static_cast<std::size_t>(ps);
    S* ap = panel.data() + panel_start(p);
    const std::size_t rp = panel_rows_of(p);
    S* tau = taus.data() + p * m;
    tsqr_detail::householder_qr(ap, rp, m, panel.ld(), tau);
    // Extract R_p, then expand the factors to the explicit local Q_p.
    S* rploc = rfac.data() + p * m * m;
    for (std::size_t j = 0; j < m; ++j) {
      for (std::size_t i = 0; i <= j; ++i) {
        rploc[i + j * m] = ap[i + j * panel.ld()];
      }
    }
    tsqr_detail::accumulate_q(ap, rp, m, panel.ld(), tau);
  }

  // Serial fixed-order pairwise reduction of the R factors.  Each live
  // node carries its m x m R and the list of leaf panels beneath it; each
  // leaf panel carries an m x m accumulator G_p (initially identity) that
  // collects the tree Q factors applying to it.
  std::vector<S> g(num_panels * m * m, S(0));
  for (std::size_t p = 0; p < num_panels; ++p) {
    for (std::size_t j = 0; j < m; ++j) g[p * m * m + j + j * m] = S(1);
  }
  std::vector<std::vector<std::size_t>> node_leaves(num_panels);
  std::vector<std::size_t> node_r(num_panels); // index into rfac
  for (std::size_t p = 0; p < num_panels; ++p) {
    node_leaves[p] = {p};
    node_r[p] = p;
  }
  std::vector<std::size_t> active(num_panels);
  for (std::size_t p = 0; p < num_panels; ++p) active[p] = p;

  const std::size_t two_m = 2 * m;
  std::vector<S> stacked(two_m * m);
  std::vector<S> tau2(m);
  std::vector<S> gtmp(m * m);

  while (active.size() > 1) {
    std::vector<std::size_t> next;
    next.reserve((active.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < active.size(); i += 2) {
      const std::size_t na = active[i];
      const std::size_t nb = active[i + 1];
      const S* ra = rfac.data() + node_r[na] * m * m;
      const S* rb = rfac.data() + node_r[nb] * m * m;
      // Stack [R_a; R_b] and factor the 2m x m block.
      for (std::size_t j = 0; j < m; ++j) {
        for (std::size_t k = 0; k < m; ++k) {
          stacked[k + j * two_m] = ra[k + j * m];
          stacked[m + k + j * two_m] = rb[k + j * m];
        }
      }
      tsqr_detail::householder_qr(stacked.data(), two_m, m, two_m,
                                  tau2.data());
      // The combined R overwrites node a's slot.
      S* rc = rfac.data() + node_r[na] * m * m;
      for (std::size_t j = 0; j < m; ++j) {
        for (std::size_t k = 0; k < m; ++k) {
          rc[k + j * m] = (k <= j) ? stacked[k + j * two_m] : S(0);
        }
      }
      // Explicit 2m x m tree Q, split into the blocks applying to the two
      // subtrees, folded into every leaf accumulator beneath them.
      tsqr_detail::accumulate_q(stacked.data(), two_m, m, two_m, tau2.data());
      auto fold = [&](std::size_t leaf, const S* c, std::size_t ldc) {
        S* gp = g.data() + leaf * m * m;
        for (std::size_t j = 0; j < m; ++j) {
          for (std::size_t k = 0; k < m; ++k) {
            S acc = S(0);
            for (std::size_t t = 0; t < m; ++t) {
              acc += gp[k + t * m] * c[t + j * ldc];
            }
            gtmp[k + j * m] = acc;
          }
        }
        for (std::size_t j = 0; j < m * m; ++j) gp[j] = gtmp[j];
      };
      for (std::size_t leaf : node_leaves[na]) {
        fold(leaf, stacked.data(), two_m); // top block C_a
      }
      for (std::size_t leaf : node_leaves[nb]) {
        fold(leaf, stacked.data() + m, two_m); // bottom block C_b
      }
      node_leaves[na].insert(node_leaves[na].end(), node_leaves[nb].begin(),
                             node_leaves[nb].end());
      next.push_back(na);
    }
    if (active.size() % 2 == 1) next.push_back(active.back());
    active.swap(next);
  }

  // Final R; normalize to a nonnegative diagonal (flip R rows + the
  // matching G columns so Q*R is unchanged).
  S* rfinal = rfac.data() + node_r[active[0]] * m * m;
  for (std::size_t j = 0; j < m; ++j) {
    if (rfinal[j + j * m] < S(0)) {
      for (std::size_t k = j; k < m; ++k) rfinal[j + k * m] = -rfinal[j + k * m];
      for (std::size_t p = 0; p < num_panels; ++p) {
        S* gp = g.data() + p * m * m;
        for (std::size_t k = 0; k < m; ++k) gp[k + j * m] = -gp[k + j * m];
      }
    }
  }
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t i = 0; i < m; ++i) {
      r[i + j * ldr] = (i <= j) ? rfinal[i + j * m] : S(0);
    }
  }

  // panel_p := Q_p * G_p, in place with a per-row temp.
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t ps = 0; ps < static_cast<std::ptrdiff_t>(num_panels);
       ++ps) {
    const std::size_t p = static_cast<std::size_t>(ps);
    S* ap = panel.data() + panel_start(p);
    const std::size_t rp = panel_rows_of(p);
    const S* gp = g.data() + p * m * m;
    std::vector<S> row(m);
    for (std::size_t i = 0; i < rp; ++i) {
      for (std::size_t c = 0; c < m; ++c) {
        S acc = S(0);
        for (std::size_t k = 0; k < m; ++k) {
          acc += ap[i + k * panel.ld()] * gp[k + c * m];
        }
        row[c] = acc;
      }
      for (std::size_t c = 0; c < m; ++c) ap[i + c * panel.ld()] = row[c];
    }
  }
}

} // namespace sdcgmres::la
