#include "la/vector.hpp"

#include <stdexcept>

namespace sdcgmres::la {

Vector zeros(std::size_t n) { return Vector(n); }

Vector ones(std::size_t n) { return Vector(n, 1.0); }

Vector unit(std::size_t n, std::size_t i) {
  if (i >= n) {
    throw std::out_of_range("la::unit: index out of range");
  }
  Vector e(n);
  e[i] = 1.0;
  return e;
}

Vector iota(std::size_t n, double step) {
  Vector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<double>(i) * step;
  }
  return v;
}

} // namespace sdcgmres::la
