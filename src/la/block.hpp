#pragma once
/// \file block.hpp
/// \brief Mutable multi-column views and a reusable block arena: the
/// third generation of the solver data plane (Vector -> span -> block).
///
/// The injection-sweep workload runs thousands of independent solves of
/// the SAME matrix.  Advancing B of them in lockstep turns the B per-
/// iteration operator applications into one SpMM that streams the matrix
/// once, but that requires the B operand columns to sit in one contiguous
/// column-major block.  BlockView is the mutable counterpart of
/// la::BasisView (same layout contract: leading dimension >= rows, padded
/// against 4 KiB aliasing); BlockWorkspace owns such a block arena with
/// the monotone reserve() semantics of la::SolverWorkspace, so a batch
/// driver reaches a fixed point after its first solve and never touches
/// the heap again.
///
/// Aliasing contract (same as the span data plane): a BlockView's columns
/// never overlap, input and output blocks of a kernel never alias, and a
/// callee must write every entry of every output column it is handed.

#include <cstddef>
#include <span>
#include <vector>

#include "la/krylov_basis.hpp"

namespace sdcgmres::la {

/// Non-owning MUTABLE view of the leading columns of a contiguous
/// column-major block (leading dimension >= rows).  Trivially copyable;
/// valid as long as the underlying storage is alive.  The read-only
/// counterpart is la::BasisView (as_basis_view() converts).
class BlockView {
public:
  BlockView() = default;
  BlockView(double* data, std::size_t rows, std::size_t cols,
            std::size_t ld) noexcept
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  /// Leading dimension (distance in doubles between column starts).
  [[nodiscard]] std::size_t ld() const noexcept { return ld_; }
  [[nodiscard]] bool empty() const noexcept { return cols_ == 0; }

  /// Column \p j as a contiguous mutable span of length rows().
  [[nodiscard]] std::span<double> col(std::size_t j) const noexcept {
    return {data_ + j * ld_, rows_};
  }

  /// Start of the flat column-major storage.
  [[nodiscard]] double* data() const noexcept { return data_; }

  /// Read-only view of the same block (what spmm and the fused kernels
  /// consume).
  [[nodiscard]] BasisView as_basis_view() const noexcept {
    return {data_, rows_, cols_, ld_};
  }

private:
  double* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t ld_ = 0;
};

/// Reusable block arena: one flat column-major buffer of rows x capacity
/// doubles with the same anti-aliasing column padding as la::KrylovBasis.
/// Unlike KrylovBasis there is no append()/cols() growth protocol -- all
/// reserved columns are usable at once; view(k) hands out the leading k.
///
/// reserve() is monotone in the column count for a fixed row count (like
/// SolverWorkspace): a batch worker that reserved (n, B) once never
/// reallocates for blocks of <= B columns.  Not shareable between
/// threads.
class BlockWorkspace {
public:
  BlockWorkspace() = default;

  BlockWorkspace(std::size_t rows, std::size_t capacity) {
    reserve(rows, capacity);
  }

  /// Shape the arena for blocks of \p rows -vectors with up to
  /// \p capacity columns.  Contents are unspecified after any reshaping
  /// call; a fitting reserve is allocation-free and preserves contents.
  void reserve(std::size_t rows, std::size_t capacity);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Leading dimension (la::padded_leading_dimension of rows()).
  [[nodiscard]] std::size_t ld() const noexcept { return ld_; }

  /// Mutable view of the leading \p cols columns (cols <= capacity()).
  /// Throws std::out_of_range past the reserved capacity.
  [[nodiscard]] BlockView view(std::size_t cols);

  /// Column \p j (j < capacity()) as a mutable span.
  [[nodiscard]] std::span<double> col(std::size_t j) noexcept {
    return {data_.data() + j * ld_, rows_};
  }

private:
  std::size_t rows_ = 0;
  std::size_t capacity_ = 0;
  std::size_t ld_ = 0;
  std::vector<double> data_;
};

/// Mutable block view of the first \p k columns of a KrylovBasis arena
/// (k <= basis.cols()).  This is how a batch driver hands a slice of an
/// existing padded arena to a block kernel without copying.  Throws
/// std::out_of_range past the current column count.
[[nodiscard]] BlockView block(KrylovBasis& basis, std::size_t k);

} // namespace sdcgmres::la
