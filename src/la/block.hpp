#pragma once
/// \file block.hpp
/// \brief Mutable multi-column views and a reusable block arena: the
/// third generation of the solver data plane (Vector -> span -> block).
///
/// The injection-sweep workload runs thousands of independent solves of
/// the SAME matrix.  Advancing B of them in lockstep turns the B per-
/// iteration operator applications into one SpMM that streams the matrix
/// once, but that requires the B operand columns to sit in one contiguous
/// column-major block.  BlockView is the mutable counterpart of
/// la::BasisView (same layout contract: leading dimension >= rows, padded
/// against 4 KiB aliasing); BlockWorkspace owns such a block arena with
/// the monotone reserve() semantics of la::SolverWorkspace, so a batch
/// driver reaches a fixed point after its first solve and never touches
/// the heap again.
///
/// Templated on the scalar type like the rest of the data plane: the
/// reliable (outer) lockstep staging uses the double instantiations
/// (aliased BlockView / BlockWorkspace), the float-inner lockstep staging
/// of the mixed-precision plane uses BlockViewT<float> /
/// BlockWorkspaceT<float>.
///
/// Aliasing contract (same as the span data plane): a BlockView's columns
/// never overlap, input and output blocks of a kernel never alias, and a
/// callee must write every entry of every output column it is handed.

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "la/krylov_basis.hpp"

namespace sdcgmres::la {

/// Non-owning MUTABLE view of the leading columns of a contiguous
/// column-major block (leading dimension >= rows).  Trivially copyable;
/// valid as long as the underlying storage is alive.  The read-only
/// counterpart is la::BasisViewT (as_basis_view() converts).
template <typename S>
class BlockViewT {
public:
  BlockViewT() = default;
  BlockViewT(S* data, std::size_t rows, std::size_t cols,
             std::size_t ld) noexcept
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  /// Leading dimension (distance in scalars between column starts).
  [[nodiscard]] std::size_t ld() const noexcept { return ld_; }
  [[nodiscard]] bool empty() const noexcept { return cols_ == 0; }

  /// Column \p j as a contiguous mutable span of length rows().
  [[nodiscard]] std::span<S> col(std::size_t j) const noexcept {
    return {data_ + j * ld_, rows_};
  }

  /// Start of the flat column-major storage.
  [[nodiscard]] S* data() const noexcept { return data_; }

  /// Read-only view of the same block (what spmm and the fused kernels
  /// consume).
  [[nodiscard]] BasisViewT<S> as_basis_view() const noexcept {
    return {data_, rows_, cols_, ld_};
  }

private:
  S* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t ld_ = 0;
};

using BlockView = BlockViewT<double>;

/// Reusable block arena: one flat column-major buffer of rows x capacity
/// scalars with the same anti-aliasing column padding as la::KrylovBasis.
/// Unlike KrylovBasis there is no append()/cols() growth protocol -- all
/// reserved columns are usable at once; view(k) hands out the leading k.
///
/// reserve() is monotone in the column count for a fixed row count (like
/// SolverWorkspace): a batch worker that reserved (n, B) once never
/// reallocates for blocks of <= B columns.  Not shareable between
/// threads.
template <typename S>
class BlockWorkspaceT {
public:
  BlockWorkspaceT() = default;

  BlockWorkspaceT(std::size_t rows, std::size_t capacity) {
    reserve(rows, capacity);
  }

  /// Shape the arena for blocks of \p rows -vectors with up to
  /// \p capacity columns.  Contents are unspecified after any reshaping
  /// call; a fitting reserve is allocation-free and preserves contents.
  void reserve(std::size_t rows, std::size_t capacity) {
    if (rows == rows_ && capacity <= capacity_) return;
    if (rows != rows_) {
      // Reshape: new geometry, everything reallocates.
      rows_ = rows;
      capacity_ = capacity;
      ld_ = padded_leading_dimension<S>(rows);
      data_.assign(ld_ * capacity_, S(0));
      return;
    }
    // Same rows, more columns: grow monotonically.
    capacity_ = capacity;
    data_.resize(ld_ * capacity_, S(0));
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Leading dimension (la::padded_leading_dimension of rows()).
  [[nodiscard]] std::size_t ld() const noexcept { return ld_; }

  /// Mutable view of the leading \p cols columns (cols <= capacity()).
  /// Throws std::out_of_range past the reserved capacity.
  [[nodiscard]] BlockViewT<S> view(std::size_t cols) {
    if (cols > capacity_) {
      throw std::out_of_range(
          "BlockWorkspace::view: more columns than reserved");
    }
    return {data_.data(), rows_, cols, ld_};
  }

  /// Column \p j (j < capacity()) as a mutable span.
  [[nodiscard]] std::span<S> col(std::size_t j) noexcept {
    return {data_.data() + j * ld_, rows_};
  }

private:
  std::size_t rows_ = 0;
  std::size_t capacity_ = 0;
  std::size_t ld_ = 0;
  std::vector<S> data_;
};

using BlockWorkspace = BlockWorkspaceT<double>;

/// Mutable block view of the first \p k columns of a KrylovBasis arena
/// (k <= basis.cols()).  This is how a batch driver hands a slice of an
/// existing padded arena to a block kernel without copying.  Throws
/// std::out_of_range past the current column count.
template <typename S>
[[nodiscard]] BlockViewT<S> block(KrylovBasisT<S>& basis, std::size_t k) {
  if (k > basis.cols()) {
    throw std::out_of_range("la::block: more columns than present");
  }
  return {basis.data(), basis.rows(), k, basis.ld()};
}

} // namespace sdcgmres::la
