#include "la/blas2.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace sdcgmres::la {

namespace {

/// Row-chunk size for gemv: the y chunk stays cache-resident while all
/// columns stream past it (one pass over B, ~cols/4 passes over y instead
/// of cols).
constexpr std::size_t kGemvRowChunk = 4096;

void gemv_chunk(double alpha, std::size_t rows, std::size_t cols,
                const double* b, std::size_t lda, const double* x,
                double beta, double* y, std::size_t r0, std::size_t r1) {
  (void)rows;
  if (beta == 0.0) {
    for (std::size_t i = r0; i < r1; ++i) y[i] = 0.0;
  } else if (beta != 1.0) {
    for (std::size_t i = r0; i < r1; ++i) y[i] *= beta;
  }
  std::size_t j = 0;
  for (; j + 4 <= cols; j += 4) {
    const double* c0 = b + j * lda;
    const double* c1 = c0 + lda;
    const double* c2 = c1 + lda;
    const double* c3 = c2 + lda;
    const double a0 = alpha * x[j];
    const double a1 = alpha * x[j + 1];
    const double a2 = alpha * x[j + 2];
    const double a3 = alpha * x[j + 3];
    for (std::size_t i = r0; i < r1; ++i) {
      y[i] += a0 * c0[i] + a1 * c1[i] + a2 * c2[i] + a3 * c3[i];
    }
  }
  for (; j < cols; ++j) {
    const double* cj = b + j * lda;
    const double aj = alpha * x[j];
    for (std::size_t i = r0; i < r1; ++i) {
      y[i] += aj * cj[i];
    }
  }
}

} // namespace

void gemv(double alpha, std::size_t rows, std::size_t cols, const double* b,
          std::size_t lda, const double* x, double beta, double* y) {
  const auto nchunks = static_cast<std::int64_t>(
      (rows + kGemvRowChunk - 1) / kGemvRowChunk);
#pragma omp parallel for schedule(static) if (nchunks > 1 && rows * cols > 65536)
  for (std::int64_t c = 0; c < nchunks; ++c) {
    const std::size_t r0 = static_cast<std::size_t>(c) * kGemvRowChunk;
    const std::size_t r1 = std::min(rows, r0 + kGemvRowChunk);
    gemv_chunk(alpha, rows, cols, b, lda, x, beta, y, r0, r1);
  }
}

void gemv_t(double alpha, std::size_t rows, std::size_t cols, const double* b,
            std::size_t lda, const double* x, double beta, double* y) {
  const auto nblocks = static_cast<std::int64_t>((cols + 3) / 4);
#pragma omp parallel for schedule(static) if (nblocks > 1 && rows * cols > 65536)
  for (std::int64_t blk = 0; blk < nblocks; ++blk) {
    const std::size_t j = static_cast<std::size_t>(blk) * 4;
    if (j + 4 <= cols) {
      const double* c0 = b + j * lda;
      const double* c1 = c0 + lda;
      const double* c2 = c1 + lda;
      const double* c3 = c2 + lda;
      // Four independent accumulator chains; each chain keeps the plain
      // sequential summation order of a naive dot product.
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (std::size_t i = 0; i < rows; ++i) {
        const double xi = x[i];
        s0 += c0[i] * xi;
        s1 += c1[i] * xi;
        s2 += c2[i] * xi;
        s3 += c3[i] * xi;
      }
      if (beta == 0.0) {
        y[j] = alpha * s0;
        y[j + 1] = alpha * s1;
        y[j + 2] = alpha * s2;
        y[j + 3] = alpha * s3;
      } else {
        y[j] = alpha * s0 + beta * y[j];
        y[j + 1] = alpha * s1 + beta * y[j + 1];
        y[j + 2] = alpha * s2 + beta * y[j + 2];
        y[j + 3] = alpha * s3 + beta * y[j + 3];
      }
    } else {
      for (std::size_t jj = j; jj < cols; ++jj) {
        const double* cj = b + jj * lda;
        double s = 0.0;
        for (std::size_t i = 0; i < rows; ++i) s += cj[i] * x[i];
        y[jj] = (beta == 0.0) ? alpha * s : alpha * s + beta * y[jj];
      }
    }
  }
}

void gemv(double alpha, const BasisView& q, std::span<const double> x,
          double beta, std::span<double> y) {
  if (x.size() != q.cols()) {
    throw std::invalid_argument("la::gemv: x size must equal basis cols");
  }
  if (y.size() != q.rows()) {
    throw std::invalid_argument("la::gemv: y size must equal basis rows");
  }
  gemv(alpha, q.rows(), q.cols(), q.data(), q.ld(), x.data(), beta,
       y.data());
}

void gemv_t(double alpha, const BasisView& q, std::span<const double> x,
            double beta, std::span<double> y) {
  if (x.size() != q.rows()) {
    throw std::invalid_argument("la::gemv_t: x size must equal basis rows");
  }
  if (y.size() != q.cols()) {
    throw std::invalid_argument("la::gemv_t: y size must equal basis cols");
  }
  gemv_t(alpha, q.rows(), q.cols(), q.data(), q.ld(), x.data(), beta,
         y.data());
}

// --- Float kernels ----------------------------------------------------------
//
// Float mirrors of the raw kernels above: identical blocking and
// accumulation order, all arithmetic in float.

namespace {

void gemv_chunk_f(float alpha, std::size_t cols, const float* b,
                  std::size_t lda, const float* x, float beta, float* y,
                  std::size_t r0, std::size_t r1) {
  if (beta == 0.0f) {
    for (std::size_t i = r0; i < r1; ++i) y[i] = 0.0f;
  } else if (beta != 1.0f) {
    for (std::size_t i = r0; i < r1; ++i) y[i] *= beta;
  }
  std::size_t j = 0;
  for (; j + 4 <= cols; j += 4) {
    const float* c0 = b + j * lda;
    const float* c1 = c0 + lda;
    const float* c2 = c1 + lda;
    const float* c3 = c2 + lda;
    const float a0 = alpha * x[j];
    const float a1 = alpha * x[j + 1];
    const float a2 = alpha * x[j + 2];
    const float a3 = alpha * x[j + 3];
    for (std::size_t i = r0; i < r1; ++i) {
      y[i] += a0 * c0[i] + a1 * c1[i] + a2 * c2[i] + a3 * c3[i];
    }
  }
  for (; j < cols; ++j) {
    const float* cj = b + j * lda;
    const float aj = alpha * x[j];
    for (std::size_t i = r0; i < r1; ++i) {
      y[i] += aj * cj[i];
    }
  }
}

} // namespace

void gemv(float alpha, std::size_t rows, std::size_t cols, const float* b,
          std::size_t lda, const float* x, float beta, float* y) {
  const auto nchunks = static_cast<std::int64_t>(
      (rows + kGemvRowChunk - 1) / kGemvRowChunk);
#pragma omp parallel for schedule(static) if (nchunks > 1 && rows * cols > 65536)
  for (std::int64_t c = 0; c < nchunks; ++c) {
    const std::size_t r0 = static_cast<std::size_t>(c) * kGemvRowChunk;
    const std::size_t r1 = std::min(rows, r0 + kGemvRowChunk);
    gemv_chunk_f(alpha, cols, b, lda, x, beta, y, r0, r1);
  }
}

void gemv_t(float alpha, std::size_t rows, std::size_t cols, const float* b,
            std::size_t lda, const float* x, float beta, float* y) {
  const auto nblocks = static_cast<std::int64_t>((cols + 3) / 4);
#pragma omp parallel for schedule(static) if (nblocks > 1 && rows * cols > 65536)
  for (std::int64_t blk = 0; blk < nblocks; ++blk) {
    const std::size_t j = static_cast<std::size_t>(blk) * 4;
    if (j + 4 <= cols) {
      const float* c0 = b + j * lda;
      const float* c1 = c0 + lda;
      const float* c2 = c1 + lda;
      const float* c3 = c2 + lda;
      float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
      for (std::size_t i = 0; i < rows; ++i) {
        const float xi = x[i];
        s0 += c0[i] * xi;
        s1 += c1[i] * xi;
        s2 += c2[i] * xi;
        s3 += c3[i] * xi;
      }
      if (beta == 0.0f) {
        y[j] = alpha * s0;
        y[j + 1] = alpha * s1;
        y[j + 2] = alpha * s2;
        y[j + 3] = alpha * s3;
      } else {
        y[j] = alpha * s0 + beta * y[j];
        y[j + 1] = alpha * s1 + beta * y[j + 1];
        y[j + 2] = alpha * s2 + beta * y[j + 2];
        y[j + 3] = alpha * s3 + beta * y[j + 3];
      }
    } else {
      for (std::size_t jj = j; jj < cols; ++jj) {
        const float* cj = b + jj * lda;
        float s = 0.0f;
        for (std::size_t i = 0; i < rows; ++i) s += cj[i] * x[i];
        y[jj] = (beta == 0.0f) ? alpha * s : alpha * s + beta * y[jj];
      }
    }
  }
}

void gemv(float alpha, const BasisViewT<float>& q, std::span<const float> x,
          float beta, std::span<float> y) {
  if (x.size() != q.cols()) {
    throw std::invalid_argument("la::gemv: x size must equal basis cols");
  }
  if (y.size() != q.rows()) {
    throw std::invalid_argument("la::gemv: y size must equal basis rows");
  }
  gemv(alpha, q.rows(), q.cols(), q.data(), q.ld(), x.data(), beta,
       y.data());
}

void gemv_t(float alpha, const BasisViewT<float>& q, std::span<const float> x,
            float beta, std::span<float> y) {
  if (x.size() != q.rows()) {
    throw std::invalid_argument("la::gemv_t: x size must equal basis rows");
  }
  if (y.size() != q.cols()) {
    throw std::invalid_argument("la::gemv_t: y size must equal basis cols");
  }
  gemv_t(alpha, q.rows(), q.cols(), q.data(), q.ld(), x.data(), beta,
         y.data());
}

void gemv(double alpha, const DenseMatrix& A, const Vector& x, double beta,
          Vector& y) {
  if (x.size() != A.cols()) {
    throw std::invalid_argument("la::gemv: x size must equal A.cols()");
  }
  if (y.size() != A.rows()) {
    throw std::invalid_argument("la::gemv: y size must equal A.rows()");
  }
  gemv(alpha, A.rows(), A.cols(), A.data(), A.rows(), x.data(), beta,
       y.data());
}

void gemv_t(double alpha, const DenseMatrix& A, const Vector& x, double beta,
            Vector& y) {
  if (x.size() != A.rows()) {
    throw std::invalid_argument("la::gemv_t: x size must equal A.rows()");
  }
  if (y.size() != A.cols()) {
    throw std::invalid_argument("la::gemv_t: y size must equal A.cols()");
  }
  gemv_t(alpha, A.rows(), A.cols(), A.data(), A.rows(), x.data(), beta,
         y.data());
}

void gemm(const DenseMatrix& A, const DenseMatrix& B, DenseMatrix& C) {
  if (A.cols() != B.rows()) {
    throw std::invalid_argument("la::gemm: inner dimensions must agree");
  }
  C.reshape(A.rows(), B.cols());
  for (std::size_t j = 0; j < B.cols(); ++j) {
    for (std::size_t k = 0; k < A.cols(); ++k) {
      const double bkj = B(k, j);
      if (bkj == 0.0) continue;
      const double* colk = A.col(k);
      double* coutj = C.col(j);
      for (std::size_t i = 0; i < A.rows(); ++i) {
        coutj[i] += colk[i] * bkj;
      }
    }
  }
}

double frobenius_norm(const DenseMatrix& A) {
  double sum = 0.0;
  for (std::size_t j = 0; j < A.cols(); ++j) {
    const double* colj = A.col(j);
    for (std::size_t i = 0; i < A.rows(); ++i) {
      sum += colj[i] * colj[i];
    }
  }
  return std::sqrt(sum);
}

namespace {

double orthonormality_defect_impl(const double* data, std::size_t rows,
                                  std::size_t cols, std::size_t lda) {
  double worst = 0.0;
  for (std::size_t j = 0; j < cols; ++j) {
    for (std::size_t k = j; k < cols; ++k) {
      double sum = 0.0;
      const double* cj = data + j * lda;
      const double* ck = data + k * lda;
      for (std::size_t i = 0; i < rows; ++i) sum += cj[i] * ck[i];
      const double target = (j == k) ? 1.0 : 0.0;
      worst = std::max(worst, std::abs(sum - target));
    }
  }
  return worst;
}

} // namespace

double orthonormality_defect(const DenseMatrix& A) {
  return orthonormality_defect_impl(A.data(), A.rows(), A.cols(), A.rows());
}

double orthonormality_defect(const BasisView& q) {
  return orthonormality_defect_impl(q.data(), q.rows(), q.cols(), q.ld());
}

} // namespace sdcgmres::la
