#include "la/blas2.hpp"

#include <cmath>
#include <stdexcept>

namespace sdcgmres::la {

void gemv(double alpha, const DenseMatrix& A, const Vector& x, double beta,
          Vector& y) {
  if (x.size() != A.cols()) {
    throw std::invalid_argument("la::gemv: x size must equal A.cols()");
  }
  if (y.size() != A.rows()) {
    throw std::invalid_argument("la::gemv: y size must equal A.rows()");
  }
  for (std::size_t i = 0; i < A.rows(); ++i) y[i] *= beta;
  // Column-major storage: run down each column for unit-stride access.
  for (std::size_t j = 0; j < A.cols(); ++j) {
    const double axj = alpha * x[j];
    const double* colj = A.col(j);
    for (std::size_t i = 0; i < A.rows(); ++i) {
      y[i] += axj * colj[i];
    }
  }
}

void gemv_t(double alpha, const DenseMatrix& A, const Vector& x, double beta,
            Vector& y) {
  if (x.size() != A.rows()) {
    throw std::invalid_argument("la::gemv_t: x size must equal A.rows()");
  }
  if (y.size() != A.cols()) {
    throw std::invalid_argument("la::gemv_t: y size must equal A.cols()");
  }
  for (std::size_t j = 0; j < A.cols(); ++j) {
    double sum = 0.0;
    const double* colj = A.col(j);
    for (std::size_t i = 0; i < A.rows(); ++i) {
      sum += colj[i] * x[i];
    }
    y[j] = alpha * sum + beta * y[j];
  }
}

void gemm(const DenseMatrix& A, const DenseMatrix& B, DenseMatrix& C) {
  if (A.cols() != B.rows()) {
    throw std::invalid_argument("la::gemm: inner dimensions must agree");
  }
  C.reshape(A.rows(), B.cols());
  for (std::size_t j = 0; j < B.cols(); ++j) {
    for (std::size_t k = 0; k < A.cols(); ++k) {
      const double bkj = B(k, j);
      if (bkj == 0.0) continue;
      const double* colk = A.col(k);
      double* coutj = C.col(j);
      for (std::size_t i = 0; i < A.rows(); ++i) {
        coutj[i] += colk[i] * bkj;
      }
    }
  }
}

double frobenius_norm(const DenseMatrix& A) {
  double sum = 0.0;
  for (std::size_t j = 0; j < A.cols(); ++j) {
    const double* colj = A.col(j);
    for (std::size_t i = 0; i < A.rows(); ++i) {
      sum += colj[i] * colj[i];
    }
  }
  return std::sqrt(sum);
}

double orthonormality_defect(const DenseMatrix& A) {
  double worst = 0.0;
  for (std::size_t j = 0; j < A.cols(); ++j) {
    for (std::size_t k = j; k < A.cols(); ++k) {
      double sum = 0.0;
      const double* cj = A.col(j);
      const double* ck = A.col(k);
      for (std::size_t i = 0; i < A.rows(); ++i) sum += cj[i] * ck[i];
      const double target = (j == k) ? 1.0 : 0.0;
      worst = std::max(worst, std::abs(sum - target));
    }
  }
  return worst;
}

} // namespace sdcgmres::la
