#include "la/block.hpp"

#include <stdexcept>

namespace sdcgmres::la {

void BlockWorkspace::reserve(std::size_t rows, std::size_t capacity) {
  if (rows == rows_ && capacity <= capacity_) return;
  if (rows != rows_) {
    // Reshape: new geometry, everything reallocates.
    rows_ = rows;
    capacity_ = capacity;
    ld_ = padded_leading_dimension(rows);
    data_.assign(ld_ * capacity_, 0.0);
    return;
  }
  // Same rows, more columns: grow monotonically.
  capacity_ = capacity;
  data_.resize(ld_ * capacity_, 0.0);
}

BlockView BlockWorkspace::view(std::size_t cols) {
  if (cols > capacity_) {
    throw std::out_of_range(
        "BlockWorkspace::view: more columns than reserved");
  }
  return {data_.data(), rows_, cols, ld_};
}

BlockView block(KrylovBasis& basis, std::size_t k) {
  if (k > basis.cols()) {
    throw std::out_of_range("la::block: more columns than present");
  }
  return {basis.data(), basis.rows(), k, basis.ld()};
}

} // namespace sdcgmres::la
