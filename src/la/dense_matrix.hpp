#pragma once
/// \file dense_matrix.hpp
/// \brief Small dense column-major matrix used for the projected problems.
///
/// GMRES projects the large sparse problem onto a (k+1) x k upper-Hessenberg
/// matrix with k <= restart length, so this type is deliberately simple:
/// column-major contiguous storage, no expression templates.  It is also the
/// carrier for the rank-revealing SVD in dense/svd.hpp.

#include <cstddef>
#include <vector>

namespace sdcgmres::la {

/// Column-major dense matrix of doubles.
class DenseMatrix {
public:
  DenseMatrix() = default;

  /// rows x cols matrix, zero-initialized.
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& operator()(std::size_t i, std::size_t j) noexcept {
    return data_[j * rows_ + i];
  }
  [[nodiscard]] const double& operator()(std::size_t i,
                                         std::size_t j) const noexcept {
    return data_[j * rows_ + i];
  }

  /// Pointer to the first element of column \p j.
  [[nodiscard]] double* col(std::size_t j) noexcept {
    return data_.data() + j * rows_;
  }
  [[nodiscard]] const double* col(std::size_t j) const noexcept {
    return data_.data() + j * rows_;
  }

  [[nodiscard]] double* data() noexcept { return data_.data(); }
  [[nodiscard]] const double* data() const noexcept { return data_.data(); }

  /// Reshape to rows x cols, zeroing all entries.
  void reshape(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0);
  }

  /// Set every entry to \p value.
  void fill(double value) { data_.assign(data_.size(), value); }

  /// rows x rows identity.
  [[nodiscard]] static DenseMatrix identity(std::size_t n);

  /// Leading block view copy: rows [0, r) x cols [0, c).
  [[nodiscard]] DenseMatrix top_left(std::size_t r, std::size_t c) const;

  /// Transposed copy.
  [[nodiscard]] DenseMatrix transposed() const;

  bool operator==(const DenseMatrix& other) const = default;

private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

} // namespace sdcgmres::la
