#pragma once
/// \file vector.hpp
/// \brief Dense double-precision vector type used throughout sdcgmres.
///
/// A thin, RAII-managed wrapper over contiguous storage.  All numerical
/// kernels that operate on vectors live in blas1.hpp; this header only
/// defines the container and simple element-wise constructors so that the
/// container stays cheap to include.

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace sdcgmres::la {

/// Dense vector of doubles.
///
/// Invariants: storage is contiguous, size is fixed after construction
/// unless resize() is called explicitly.  Elements are value-initialized
/// (zero) by the sizing constructor.
class Vector {
public:
  Vector() = default;

  /// Create a vector of length \p n, all entries zero.
  explicit Vector(std::size_t n) : data_(n, 0.0) {}

  /// Create a vector of length \p n with every entry equal to \p value.
  Vector(std::size_t n, double value) : data_(n, value) {}

  /// Create from an explicit list of entries, e.g. `Vector{1.0, 2.0}`.
  Vector(std::initializer_list<double> init) : data_(init) {}

  /// Number of entries.
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  /// True when the vector has no entries.
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const double& operator[](std::size_t i) const noexcept {
    return data_[i];
  }

  /// Raw contiguous storage (mutable).
  [[nodiscard]] double* data() noexcept { return data_.data(); }
  /// Raw contiguous storage (read-only).
  [[nodiscard]] const double* data() const noexcept { return data_.data(); }

  /// View of the storage as a std::span.
  [[nodiscard]] std::span<double> span() noexcept { return {data_}; }
  [[nodiscard]] std::span<const double> span() const noexcept { return {data_}; }

  [[nodiscard]] auto begin() noexcept { return data_.begin(); }
  [[nodiscard]] auto end() noexcept { return data_.end(); }
  [[nodiscard]] auto begin() const noexcept { return data_.begin(); }
  [[nodiscard]] auto end() const noexcept { return data_.end(); }

  /// Resize to \p n entries; new entries are zero.
  void resize(std::size_t n) { data_.resize(n, 0.0); }

  /// Set every entry to \p value.
  void fill(double value) { data_.assign(data_.size(), value); }

  bool operator==(const Vector& other) const = default;

private:
  std::vector<double> data_;
};

/// Vector of length \p n with all entries zero.
[[nodiscard]] Vector zeros(std::size_t n);

/// Vector of length \p n with all entries one.
[[nodiscard]] Vector ones(std::size_t n);

/// Standard basis vector e_i of length \p n (0-based index \p i).
[[nodiscard]] Vector unit(std::size_t n, std::size_t i);

/// Vector with entries 0, 1, ..., n-1 scaled by \p step (useful in tests).
[[nodiscard]] Vector iota(std::size_t n, double step = 1.0);

} // namespace sdcgmres::la
