#pragma once
/// \file vector.hpp
/// \brief Dense vector type used throughout sdcgmres.
///
/// A thin, RAII-managed wrapper over contiguous storage.  All numerical
/// kernels that operate on vectors live in blas1.hpp; this header only
/// defines the container and simple element-wise constructors so that the
/// container stays cheap to include.
///
/// The container is templated on the scalar type: the reliable solver
/// plane runs on VectorT<double> (aliased as la::Vector, the default
/// everywhere), while the mixed-precision inner-solve plane instantiates
/// VectorT<float>.  The template carries no behavioural switches -- the
/// double instantiation is the exact pre-template container.

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace sdcgmres::la {

/// Dense vector of scalars \p S (double in the reliable plane, float in
/// the mixed-precision inner plane).
///
/// Invariants: storage is contiguous, size is fixed after construction
/// unless resize() is called explicitly.  Elements are value-initialized
/// (zero) by the sizing constructor.
template <typename S>
class VectorT {
public:
  using value_type = S;

  VectorT() = default;

  /// Create a vector of length \p n, all entries zero.
  explicit VectorT(std::size_t n) : data_(n, S(0)) {}

  /// Create a vector of length \p n with every entry equal to \p value.
  VectorT(std::size_t n, S value) : data_(n, value) {}

  /// Create from an explicit list of entries, e.g. `Vector{1.0, 2.0}`.
  VectorT(std::initializer_list<S> init) : data_(init) {}

  /// Number of entries.
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  /// True when the vector has no entries.
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] S& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const S& operator[](std::size_t i) const noexcept {
    return data_[i];
  }

  /// Raw contiguous storage (mutable).
  [[nodiscard]] S* data() noexcept { return data_.data(); }
  /// Raw contiguous storage (read-only).
  [[nodiscard]] const S* data() const noexcept { return data_.data(); }

  /// View of the storage as a std::span.
  [[nodiscard]] std::span<S> span() noexcept { return {data_}; }
  [[nodiscard]] std::span<const S> span() const noexcept { return {data_}; }

  [[nodiscard]] auto begin() noexcept { return data_.begin(); }
  [[nodiscard]] auto end() noexcept { return data_.end(); }
  [[nodiscard]] auto begin() const noexcept { return data_.begin(); }
  [[nodiscard]] auto end() const noexcept { return data_.end(); }

  /// Resize to \p n entries; new entries are zero.
  void resize(std::size_t n) { data_.resize(n, S(0)); }

  /// Set every entry to \p value.
  void fill(S value) { data_.assign(data_.size(), value); }

  bool operator==(const VectorT& other) const = default;

private:
  std::vector<S> data_;
};

/// The reliable-plane vector: every pre-existing API takes this alias.
using Vector = VectorT<double>;

/// Vector of length \p n with all entries zero.
[[nodiscard]] Vector zeros(std::size_t n);

/// Vector of length \p n with all entries one.
[[nodiscard]] Vector ones(std::size_t n);

/// Standard basis vector e_i of length \p n (0-based index \p i).
[[nodiscard]] Vector unit(std::size_t n, std::size_t i);

/// Vector with entries 0, 1, ..., n-1 scaled by \p step (useful in tests).
[[nodiscard]] Vector iota(std::size_t n, double step = 1.0);

} // namespace sdcgmres::la
