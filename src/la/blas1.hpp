#pragma once
/// \file blas1.hpp
/// \brief Level-1 dense kernels (dot, axpy, norms, ...) on la::Vector.
///
/// These are the only vector kernels the Krylov solvers use, so they are the
/// natural unit for OpenMP parallelism.  All functions validate dimensions
/// with exceptions rather than assertions so that misuse is loud in Release
/// builds too (faults in *metadata* are out of the paper's scope, but bugs
/// are not faults).

#include <cstddef>
#include <functional>
#include <span>

#include "la/vector.hpp"

namespace sdcgmres::la {

/// Euclidean inner product x.y.  Throws std::invalid_argument on size
/// mismatch.
[[nodiscard]] double dot(const Vector& x, const Vector& y);

// --- Span kernels -----------------------------------------------------------
//
// The contiguous KrylovBasis exposes its columns as std::span views; these
// overloads let every kernel run on a basis column without materializing an
// owning la::Vector.  The Vector overloads forward here, so both entry
// points share one implementation (and one summation order: results are
// bitwise identical between the two).

/// Euclidean inner product over spans (sequential accumulation order,
/// identical to the Vector overload).
[[nodiscard]] double dot(std::span<const double> x, std::span<const double> y);

/// 2-norm of a span.
[[nodiscard]] double nrm2(std::span<const double> x);

/// y := alpha*x + y over spans.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x := alpha*x over a span.
void scal(double alpha, std::span<double> x);

/// y := x over spans (sizes must match).
void copy(std::span<const double> x, std::span<double> y);

/// w := alpha*x + beta*y over spans (sizes must match; w may alias x or y).
void waxpby(double alpha, std::span<const double> x, double beta,
            std::span<const double> y, std::span<double> w);

/// Element-wise product z := x .* y over spans (sizes must match).
void hadamard(std::span<const double> x, std::span<const double> y,
              std::span<double> z);

/// True when every entry of the span is finite (no Inf, no NaN).
[[nodiscard]] bool all_finite(std::span<const double> x);

/// Number of span entries that are NaN or infinite.
[[nodiscard]] std::size_t count_nonfinite(std::span<const double> x);

/// Fused MGS step: computes h = x.y, then y := y - h*x, in one kernel
/// (single parallel region; one fork/join instead of two, and x is hot in
/// cache for the correction).  The dot uses the same loop and reduction as
/// dot(), so in serial execution (or below the parallel threshold) the
/// returned coefficient is bitwise identical to the unfused dot+axpy
/// sequence; with multiple OpenMP threads, separate reductions may combine
/// partials in different orders, so agreement is to reduction roundoff.
/// Returns h.
double dot_axpy(std::span<const double> x, std::span<double> y);

/// Instrumented variant: \p adjust runs once with the freshly computed
/// coefficient BEFORE it is applied to y, and may mutate it; the mutated
/// value is what gets subtracted (and returned).  This is the projection-
/// coefficient hook point of the Arnoldi process (SDC injection/detection
/// site), preserved inside the fused kernel.
double dot_axpy(std::span<const double> x, std::span<double> y,
                const std::function<void(double&)>& adjust);

// --- Float kernels (mixed-precision inner plane) ------------------------
//
// Concrete overloads (not deduced templates) so that the implicit
// span<float> -> span<const float> conversions keep working at call
// sites, exactly as they do for the double overloads above.  All
// arithmetic, including the reductions, runs in float: the inner solve of
// the mixed-precision plane is genuinely a float32 computation, not a
// float-stored/double-accumulated hybrid.  Loop structure, OpenMP
// thresholds, and summation order mirror the double kernels one-to-one.

[[nodiscard]] float dot(std::span<const float> x, std::span<const float> y);
[[nodiscard]] float nrm2(std::span<const float> x);
void axpy(float alpha, std::span<const float> x, std::span<float> y);
void scal(float alpha, std::span<float> x);
void copy(std::span<const float> x, std::span<float> y);
void waxpby(float alpha, std::span<const float> x, float beta,
            std::span<const float> y, std::span<float> w);
[[nodiscard]] bool all_finite(std::span<const float> x);
[[nodiscard]] std::size_t count_nonfinite(std::span<const float> x);

/// Fused MGS step in float (see the double overload for the contract).
float dot_axpy(std::span<const float> x, std::span<float> y);

/// Instrumented float variant; the hook observes/mutates the float
/// coefficient directly (callers widen for double-typed hook protocols).
float dot_axpy(std::span<const float> x, std::span<float> y,
               const std::function<void(float&)>& adjust);

/// 2-norm of \p x, computed as sqrt(dot(x, x)).
[[nodiscard]] double nrm2(const Vector& x);

/// 1-norm (sum of absolute values).
[[nodiscard]] double nrm1(const Vector& x);

/// Infinity-norm (max absolute value); 0 for the empty vector.
[[nodiscard]] double nrminf(const Vector& x);

/// y := alpha*x + y.
void axpy(double alpha, const Vector& x, Vector& y);

/// w := alpha*x + beta*y (three-operand update; w may alias x or y).
void waxpby(double alpha, const Vector& x, double beta, const Vector& y,
            Vector& w);

/// x := alpha*x.
void scal(double alpha, Vector& x);

/// y := x (sizes must already match).
void copy(const Vector& x, Vector& y);

/// Element-wise product z := x .* y.
void hadamard(const Vector& x, const Vector& y, Vector& z);

/// True when every entry is finite (no Inf, no NaN).
[[nodiscard]] bool all_finite(const Vector& x);

/// Number of entries that are NaN or infinite.
[[nodiscard]] std::size_t count_nonfinite(const Vector& x);

} // namespace sdcgmres::la
