#pragma once
/// \file blas1.hpp
/// \brief Level-1 dense kernels (dot, axpy, norms, ...) on la::Vector.
///
/// These are the only vector kernels the Krylov solvers use, so they are the
/// natural unit for OpenMP parallelism.  All functions validate dimensions
/// with exceptions rather than assertions so that misuse is loud in Release
/// builds too (faults in *metadata* are out of the paper's scope, but bugs
/// are not faults).

#include <cstddef>

#include "la/vector.hpp"

namespace sdcgmres::la {

/// Euclidean inner product x.y.  Throws std::invalid_argument on size
/// mismatch.
[[nodiscard]] double dot(const Vector& x, const Vector& y);

/// 2-norm of \p x, computed as sqrt(dot(x, x)).
[[nodiscard]] double nrm2(const Vector& x);

/// 1-norm (sum of absolute values).
[[nodiscard]] double nrm1(const Vector& x);

/// Infinity-norm (max absolute value); 0 for the empty vector.
[[nodiscard]] double nrminf(const Vector& x);

/// y := alpha*x + y.
void axpy(double alpha, const Vector& x, Vector& y);

/// w := alpha*x + beta*y (three-operand update; w may alias x or y).
void waxpby(double alpha, const Vector& x, double beta, const Vector& y,
            Vector& w);

/// x := alpha*x.
void scal(double alpha, Vector& x);

/// y := x (sizes must already match).
void copy(const Vector& x, Vector& y);

/// Element-wise product z := x .* y.
void hadamard(const Vector& x, const Vector& y, Vector& z);

/// True when every entry is finite (no Inf, no NaN).
[[nodiscard]] bool all_finite(const Vector& x);

/// Number of entries that are NaN or infinite.
[[nodiscard]] std::size_t count_nonfinite(const Vector& x);

} // namespace sdcgmres::la
