#include "la/krylov_basis.hpp"

#include <algorithm>
#include <stdexcept>

namespace sdcgmres::la {

/// Pad the leading dimension when a rows-sized column stride would be a
/// multiple of 4 KiB: every column would then be congruent modulo all
/// cache-set strides, turning the multi-column kernels (and the per-column
/// streaming against v) into pure conflict-miss traffic (measured ~20%
/// slowdown for MGS at n = 65536).  Eight doubles = one cache line.
std::size_t padded_leading_dimension(std::size_t rows) noexcept {
  if (rows >= 512 && (rows * sizeof(double)) % 4096 == 0) return rows + 8;
  return rows;
}

KrylovBasis::KrylovBasis(std::size_t rows, std::size_t capacity)
    : rows_(rows), capacity_(capacity), ld_(padded_leading_dimension(rows)),
      data_(ld_ * capacity, 0.0) {}

std::span<double> KrylovBasis::append() {
  if (cols_ == capacity_) {
    throw std::length_error("KrylovBasis::append: arena full (growing would "
                            "invalidate outstanding column views)");
  }
  ++cols_;
  return col(cols_ - 1);
}

void KrylovBasis::append(std::span<const double> v) {
  if (v.size() != rows_) {
    throw std::invalid_argument("KrylovBasis::append: column length mismatch");
  }
  std::span<double> dst = append();
  std::copy(v.begin(), v.end(), dst.begin());
}

void KrylovBasis::append(const Vector& v) { append(v.span()); }

void KrylovBasis::pop_back() {
  if (cols_ == 0) {
    throw std::out_of_range("KrylovBasis::pop_back: basis is empty");
  }
  std::span<double> last = col(cols_ - 1);
  std::fill(last.begin(), last.end(), 0.0);
  --cols_;
}

void KrylovBasis::clear() {
  for (std::size_t j = 0; j < cols_; ++j) {
    std::span<double> c = col(j);
    std::fill(c.begin(), c.end(), 0.0);
  }
  cols_ = 0;
}

Vector KrylovBasis::col_copy(std::size_t j) const {
  if (j >= cols_) throw std::out_of_range("KrylovBasis::col_copy");
  Vector out(rows_);
  const std::span<const double> src = col(j);
  std::copy(src.begin(), src.end(), out.begin());
  return out;
}

BasisView KrylovBasis::view(std::size_t k) const {
  if (k > cols_) {
    throw std::out_of_range("KrylovBasis::view: more columns than present");
  }
  return {data_.data(), rows_, k, ld_};
}

DenseMatrix KrylovBasis::to_dense() const {
  DenseMatrix out(rows_, cols_);
  for (std::size_t j = 0; j < cols_; ++j) {
    const std::span<const double> src = col(j);
    std::copy(src.begin(), src.end(), out.col(j));
  }
  return out;
}

} // namespace sdcgmres::la
