#include "krylov/orthogonalize.hpp"

#include <stdexcept>

#include "la/blas1.hpp"

namespace sdcgmres::krylov {

const char* to_string(Orthogonalization kind) noexcept {
  switch (kind) {
    case Orthogonalization::MGS: return "mgs";
    case Orthogonalization::CGS: return "cgs";
    case Orthogonalization::CGS2: return "cgs2";
  }
  return "unknown";
}

namespace {

void mgs_pass(std::span<const la::Vector> q, std::size_t k, la::Vector& v,
              std::span<double> h, ArnoldiHook* hook,
              const ArnoldiContext& ctx, bool fire_hook) {
  for (std::size_t i = 0; i < k; ++i) {
    double hij = la::dot(q[i], v);
    if (fire_hook && hook != nullptr) {
      hook->on_projection_coefficient(ctx, i, k, hij);
    }
    h[i] += hij;
    la::axpy(-hij, q[i], v);
  }
}

void cgs_pass(std::span<const la::Vector> q, std::size_t k, la::Vector& v,
              std::span<double> h, ArnoldiHook* hook,
              const ArnoldiContext& ctx, bool fire_hook) {
  std::vector<double> coeffs(k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    double hij = la::dot(q[i], v);
    if (fire_hook && hook != nullptr) {
      hook->on_projection_coefficient(ctx, i, k, hij);
    }
    coeffs[i] = hij;
  }
  for (std::size_t i = 0; i < k; ++i) {
    h[i] += coeffs[i];
    la::axpy(-coeffs[i], q[i], v);
  }
}

} // namespace

void orthogonalize(Orthogonalization kind, std::span<const la::Vector> q,
                   std::size_t k, la::Vector& v, std::span<double> h,
                   ArnoldiHook* hook, const ArnoldiContext& ctx) {
  if (q.size() < k) {
    throw std::invalid_argument("orthogonalize: fewer basis vectors than k");
  }
  if (h.size() < k) {
    throw std::invalid_argument("orthogonalize: coefficient span too small");
  }
  for (std::size_t i = 0; i < k; ++i) h[i] = 0.0;
  switch (kind) {
    case Orthogonalization::MGS:
      mgs_pass(q, k, v, h, hook, ctx, /*fire_hook=*/true);
      break;
    case Orthogonalization::CGS:
      cgs_pass(q, k, v, h, hook, ctx, /*fire_hook=*/true);
      break;
    case Orthogonalization::CGS2:
      cgs_pass(q, k, v, h, hook, ctx, /*fire_hook=*/true);
      cgs_pass(q, k, v, h, /*hook=*/nullptr, ctx, /*fire_hook=*/false);
      break;
  }
}

} // namespace sdcgmres::krylov
