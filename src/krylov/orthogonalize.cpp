#include "krylov/orthogonalize.hpp"

#include <stdexcept>
#include <vector>

#include "la/blas1.hpp"
#include "la/blas2.hpp"

namespace sdcgmres::krylov {

const char* to_string(Orthogonalization kind) noexcept {
  switch (kind) {
    case Orthogonalization::MGS: return "mgs";
    case Orthogonalization::CGS: return "cgs";
    case Orthogonalization::CGS2: return "cgs2";
  }
  return "unknown";
}

namespace {

void mgs_pass(std::span<const la::Vector> q, std::size_t k, la::Vector& v,
              std::span<double> h, ArnoldiHook* hook,
              const ArnoldiContext& ctx, bool fire_hook) {
  for (std::size_t i = 0; i < k; ++i) {
    double hij = la::dot(q[i], v);
    if (fire_hook && hook != nullptr) {
      hook->on_projection_coefficient(ctx, i, k, hij);
    }
    h[i] += hij;
    la::axpy(-hij, q[i], v);
  }
}

void cgs_pass(std::span<const la::Vector> q, std::size_t k, la::Vector& v,
              std::span<double> h, ArnoldiHook* hook,
              const ArnoldiContext& ctx, bool fire_hook) {
  std::vector<double> coeffs(k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    double hij = la::dot(q[i], v);
    if (fire_hook && hook != nullptr) {
      hook->on_projection_coefficient(ctx, i, k, hij);
    }
    coeffs[i] = hij;
  }
  for (std::size_t i = 0; i < k; ++i) {
    h[i] += coeffs[i];
    la::axpy(-coeffs[i], q[i], v);
  }
}

// --- Fused kernels over the contiguous basis -------------------------------

/// MGS over the arena: each column streams through the fused dot_axpy
/// kernel (one parallel region per column instead of two); the hook's
/// mutation point sits between the dot and the correction, exactly as in
/// the reference path.
void mgs_pass_fused(const la::KrylovBasis& q, std::size_t k,
                    std::span<double> v, std::span<double> h,
                    ArnoldiHook* hook, const ArnoldiContext& ctx) {
  for (std::size_t i = 0; i < k; ++i) {
    double hij;
    if (hook != nullptr) {
      hij = la::dot_axpy(q.col(i), v, [&](double& c) {
        hook->on_projection_coefficient(ctx, i, k, c);
      });
    } else {
      hij = la::dot_axpy(q.col(i), v);
    }
    h[i] += hij;
  }
}

/// One classical Gram-Schmidt pass over the arena: coefficients via a
/// single gemv_t over the basis block, correction via a single gemv.
void cgs_pass_fused(const la::KrylovBasis& q, std::size_t k,
                    std::span<double> v, std::span<double> h,
                    ArnoldiHook* hook, const ArnoldiContext& ctx,
                    bool fire_hook) {
  std::vector<double> coeffs(k, 0.0);
  const la::BasisView block = q.view(k);
  la::gemv_t(1.0, block, v, 0.0, coeffs);
  if (fire_hook && hook != nullptr) {
    // All first-pass coefficients are dot products against the SAME
    // (untouched) v, so firing after the blocked projection preserves the
    // reference path's (i, mgs_steps) sequence, with values bitwise equal
    // whenever the reference dot runs serially.
    for (std::size_t i = 0; i < k; ++i) {
      hook->on_projection_coefficient(ctx, i, k, coeffs[i]);
    }
  }
  for (std::size_t i = 0; i < k; ++i) h[i] += coeffs[i];
  la::gemv(-1.0, block, coeffs, 1.0, v);
}

void validate_args(std::size_t basis_cols, std::size_t k,
                   std::span<double> h) {
  if (basis_cols < k) {
    throw std::invalid_argument("orthogonalize: fewer basis vectors than k");
  }
  if (h.size() < k) {
    throw std::invalid_argument("orthogonalize: coefficient span too small");
  }
}

// --- Float fused kernels (mixed-precision inner plane) ---------------------
//
// Mirrors of the fused double kernels with all arithmetic in float.  The
// hook protocol stays double-typed: coefficients are widened for the hook
// and the mutated value narrowed back before application.

void mgs_pass_fused_f(const la::KrylovBasisT<float>& q, std::size_t k,
                      std::span<float> v, std::span<float> h,
                      ArnoldiHook* hook, const ArnoldiContext& ctx) {
  for (std::size_t i = 0; i < k; ++i) {
    float hij;
    if (hook != nullptr) {
      hij = la::dot_axpy(q.col(i), v, [&](float& c) {
        double wide = static_cast<double>(c);
        hook->on_projection_coefficient(ctx, i, k, wide);
        c = static_cast<float>(wide);
      });
    } else {
      hij = la::dot_axpy(q.col(i), v);
    }
    h[i] += hij;
  }
}

void cgs_pass_fused_f(const la::KrylovBasisT<float>& q, std::size_t k,
                      std::span<float> v, std::span<float> h,
                      ArnoldiHook* hook, const ArnoldiContext& ctx,
                      bool fire_hook) {
  std::vector<float> coeffs(k, 0.0f);
  const la::BasisViewT<float> block = q.view(k);
  la::gemv_t(1.0f, block, v, 0.0f, coeffs);
  if (fire_hook && hook != nullptr) {
    for (std::size_t i = 0; i < k; ++i) {
      double wide = static_cast<double>(coeffs[i]);
      hook->on_projection_coefficient(ctx, i, k, wide);
      coeffs[i] = static_cast<float>(wide);
    }
  }
  for (std::size_t i = 0; i < k; ++i) h[i] += coeffs[i];
  la::gemv(-1.0f, block, coeffs, 1.0f, v);
}

} // namespace

void orthogonalize(Orthogonalization kind, std::span<const la::Vector> q,
                   std::size_t k, la::Vector& v, std::span<double> h,
                   ArnoldiHook* hook, const ArnoldiContext& ctx) {
  validate_args(q.size(), k, h);
  for (std::size_t i = 0; i < k; ++i) h[i] = 0.0;
  switch (kind) {
    case Orthogonalization::MGS:
      mgs_pass(q, k, v, h, hook, ctx, /*fire_hook=*/true);
      break;
    case Orthogonalization::CGS:
      cgs_pass(q, k, v, h, hook, ctx, /*fire_hook=*/true);
      break;
    case Orthogonalization::CGS2:
      cgs_pass(q, k, v, h, hook, ctx, /*fire_hook=*/true);
      cgs_pass(q, k, v, h, /*hook=*/nullptr, ctx, /*fire_hook=*/false);
      break;
  }
}

void orthogonalize(Orthogonalization kind, const la::KrylovBasis& q,
                   std::size_t k, std::span<double> v, std::span<double> h,
                   ArnoldiHook* hook, const ArnoldiContext& ctx) {
  validate_args(q.cols(), k, h);
  if (v.size() != q.rows()) {
    throw std::invalid_argument("orthogonalize: v size must equal basis rows");
  }
  for (std::size_t i = 0; i < k; ++i) h[i] = 0.0;
  switch (kind) {
    case Orthogonalization::MGS:
      mgs_pass_fused(q, k, v, h, hook, ctx);
      break;
    case Orthogonalization::CGS:
      cgs_pass_fused(q, k, v, h, hook, ctx, /*fire_hook=*/true);
      break;
    case Orthogonalization::CGS2:
      cgs_pass_fused(q, k, v, h, hook, ctx, /*fire_hook=*/true);
      cgs_pass_fused(q, k, v, h, /*hook=*/nullptr, ctx, /*fire_hook=*/false);
      break;
  }
}

void orthogonalize(Orthogonalization kind, const la::KrylovBasisT<float>& q,
                   std::size_t k, std::span<float> v, std::span<float> h,
                   ArnoldiHook* hook, const ArnoldiContext& ctx) {
  if (q.cols() < k) {
    throw std::invalid_argument("orthogonalize: fewer basis vectors than k");
  }
  if (h.size() < k) {
    throw std::invalid_argument("orthogonalize: coefficient span too small");
  }
  if (v.size() != q.rows()) {
    throw std::invalid_argument("orthogonalize: v size must equal basis rows");
  }
  for (std::size_t i = 0; i < k; ++i) h[i] = 0.0f;
  switch (kind) {
    case Orthogonalization::MGS:
      mgs_pass_fused_f(q, k, v, h, hook, ctx);
      break;
    case Orthogonalization::CGS:
      cgs_pass_fused_f(q, k, v, h, hook, ctx, /*fire_hook=*/true);
      break;
    case Orthogonalization::CGS2:
      cgs_pass_fused_f(q, k, v, h, hook, ctx, /*fire_hook=*/true);
      cgs_pass_fused_f(q, k, v, h, /*hook=*/nullptr, ctx, /*fire_hook=*/false);
      break;
  }
}

} // namespace sdcgmres::krylov
