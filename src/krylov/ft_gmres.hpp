#pragma once
/// \file ft_gmres.hpp
/// \brief Fault-Tolerant GMRES: FGMRES outer + (unreliable) GMRES inner.
///
/// This is the paper's nested solver (Section VI): the outer FGMRES
/// iteration runs reliably and drives convergence; each outer iteration
/// invokes one inner GMRES solve that is allowed to be faulty.  The inner
/// solve is exposed through the FlexiblePreconditioner seam, so the SDC
/// framework's sandbox (sdc/sandbox.hpp) can wrap it with fault campaigns
/// and detectors; the convenience driver here accepts a raw ArnoldiHook for
/// the same purpose.

#include <cstddef>
#include <vector>

#include "krylov/fgmres.hpp"
#include "krylov/gmres.hpp"
#include "krylov/hooks.hpp"
#include "krylov/operator.hpp"
#include "krylov/precision.hpp"
#include "la/vector.hpp"

namespace sdcgmres::krylov {

/// What the nested solver does when a detector aborts an inner solve
/// (an attached hook's abort_requested() fired).  This is the krylov-level
/// vocabulary; sdc::DetectorResponse maps onto it via
/// sdc::inner_recovery_for -- the krylov layer stays sdc-free.
enum class InnerRecovery {
  None,          ///< keep the aborted inner solve's pre-fault iterate as
                 ///< the outer direction (the paper's AbortSolve behaviour)
  RetryReliable, ///< re-run the flagged inner solve with injection
                 ///< disabled (hook detached): the paper's selective-
                 ///< reliability answer -- recompute in reliable mode
  RestartOuter,  ///< discard the poisoned direction and restart the outer
                 ///< cycle from the accepted columns' explicit residual
                 ///< (FgmresEngine::restart_cycle)
};

/// Options of the nested solver.
struct FtGmresOptions {
  GmresOptions inner;  ///< inner solve config; the paper uses tol = 0 and
                       ///< max_iters = 25 (a fixed-effort preconditioner)
  FgmresOptions outer; ///< reliable outer iteration config
  bool robust_first_inner = false; ///< the paper's Section VII-E-1
                       ///< suggestion, implemented: run the *first* inner
                       ///< solve (the most fault-vulnerable one) with CGS2
                       ///< re-orthogonalization.  The silent second pass
                       ///< restores both the basis vector and the total
                       ///< projection coefficient after a single
                       ///< multiplicative fault, at ~2x orthogonalization
                       ///< cost for that one solve.
  InnerRecovery recovery = InnerRecovery::None; ///< detector-triggered
                       ///< recovery policy; only acts on inner solves that
                       ///< finish with status AbortedByDetector, so runs
                       ///< where no detector fires are bitwise identical
                       ///< at every setting
  Precision precision = Precision::Double; ///< scalar of the inner-solve
                       ///< data plane (basis, Hessenberg QR, operator
                       ///< applies).  Float runs the inner solves on a
                       ///< narrowed mirror of the matrix -- selective
                       ///< reliability's answer to reduced precision: the
                       ///< flexible outer absorbs it like any other inner
                       ///< perturbation.  The outer iteration is always
                       ///< double.
  IndexWidth index_width = IndexWidth::I64; ///< CSR index width of the
                       ///< inner-solve mirror; I32 halves index traffic
                       ///< (narrowing validates, throws on overflow) and
                       ///< never changes arithmetic, so double/I32 results
                       ///< are bitwise identical to the default.  Any
                       ///< non-default (precision, index_width) pair
                       ///< requires a CSR-backed operator.

  /// Paper-style defaults: 25 fixed inner iterations, outer tol 1e-8.
  FtGmresOptions() {
    inner.max_iters = 25;
    inner.tol = 0.0;
  }
};

/// Bookkeeping for one inner solve.
struct InnerSolveRecord {
  std::size_t outer_index = 0;
  SolveStatus status = SolveStatus::MaxIterations;
  std::size_t iterations = 0;
  std::size_t operator_applies = 0; ///< operator products this inner solve
                                    ///< consumed (cycle residuals + Arnoldi
                                    ///< products); identical whether they
                                    ///< arrived as solo SpMVs or as columns
                                    ///< of a lockstep batch's fused SpMM
  double residual_norm = 0.0; ///< inner least-squares estimate (may be
                              ///< corrupted when faults were injected)
  std::size_t reliable_retries = 0; ///< 1 when this record's inner solve
                              ///< was recomputed in reliable mode after a
                              ///< detector abort (recovery RetryReliable);
                              ///< iterations/operator_applies then sum
                              ///< BOTH attempts (total effort spent at
                              ///< this outer step) while status and
                              ///< residual_norm describe the final one
  bool triggered_outer_restart = false; ///< this inner solve's detector
                              ///< abort triggered an outer-cycle restart
                              ///< (recovery RestartOuter)
  std::size_t global_syncs = 0; ///< global reductions this inner solve
                              ///< consumed (both attempts when a reliable
                              ///< retry ran); see GmresStats::global_syncs
};

/// Result of an FT-GMRES solve.
struct FtGmresResult {
  la::Vector x;
  SolveStatus status = SolveStatus::MaxIterations;
  std::size_t outer_iterations = 0;
  std::size_t total_inner_iterations = 0;
  std::size_t total_inner_applies = 0; ///< operator products consumed by
                                       ///< the inner solves (the dominant
                                       ///< matrix traffic at inner=25)
  double residual_norm = 0.0; ///< explicit ||b - A*x|| at exit
  std::vector<double> residual_history;
  std::vector<InnerSolveRecord> inner_solves;
  std::size_t sanitized_outputs = 0; ///< inner results replaced by q_j
  std::size_t reliable_retries = 0;  ///< inner solves recomputed reliably
                                     ///< (recovery RetryReliable)
  std::size_t outer_restarts = 0;    ///< outer cycles restarted (recovery
                                     ///< RestartOuter)
  std::size_t global_syncs = 0;      ///< global reductions the whole nested
                                     ///< solve consumed: the outer
                                     ///< iteration's own plus every inner
                                     ///< solve's.  The s-step inner mode
                                     ///< (GmresOptions::s_step) shrinks the
                                     ///< inner share by ~s/2x.
};

/// Inner GMRES exposed as a flexible preconditioner: each application
/// approximately solves A z = q from a zero initial guess, running
/// span-to-span out of the outer solver's arenas (q is an outer basis
/// column, z an outer Z-arena column; no owning la::Vector crosses the
/// boundary).  The optional hook observes/corrupts the inner Arnoldi
/// process; the hook's solve_index equals the outer iteration index.
///
/// There is ONE construction path for the inner solve -- make_engine() --
/// shared by apply() (the solo FT-GMRES path, which drives the engine
/// straight through) and the lockstep batch driver
/// (krylov/ft_gmres_batch.cpp, which interleaves the engines of B
/// instances so each inner Arnoldi iteration issues one fused
/// apply_block).  finish_engine() closes the bookkeeping either way, so
/// the two drivers can never diverge in options plumbing or records.
class InnerGmresPreconditioner final : public FlexiblePreconditioner {
public:
  /// \param ws optional reusable workspace for the inner solves; one inner
  ///        solve runs per outer iteration, so a matching workspace makes
  ///        every inner solve after the first allocation-free.  nullptr
  ///        falls back to an internally owned workspace (same reuse
  ///        semantics, same results -- workspace contents never leak
  ///        between solves).
  InnerGmresPreconditioner(const LinearOperator& A, const GmresOptions& opts,
                           ArnoldiHook* hook = nullptr,
                           bool robust_first_solve = false,
                           KrylovWorkspace* ws = nullptr,
                           InnerRecovery recovery = InnerRecovery::None)
      : a_(&A), opts_(opts), hook_(hook),
        robust_first_solve_(robust_first_solve), ws_(ws),
        recovery_(recovery) {}

  using FlexiblePreconditioner::apply;
  void apply(std::span<const double> q, std::size_t outer_index,
             std::span<double> z) override;

  /// Batch seam: zero-fill \p z and construct the step-driveable engine
  /// of the inner solve for outer iteration \p outer_index (b = \p q, the
  /// outer basis column; x = \p z, the outer Z-arena column; hook,
  /// robust-first-solve orthogonalization, and workspace plumbing exactly
  /// as apply() uses).  The caller drives the engine to completion --
  /// solo or interleaved with other instances -- and then hands it to
  /// finish_engine().
  [[nodiscard]] GmresEngine make_engine(std::span<const double> q,
                                        std::size_t outer_index,
                                        std::span<double> z);

  /// Record the finished engine's inner-solve bookkeeping (exactly the
  /// record apply() produces).  With recovery RestartOuter, an engine
  /// that finished AbortedByDetector marks its record
  /// triggered_outer_restart -- the driver must then call
  /// FgmresEngine::restart_cycle() instead of direction()/advance()
  /// (query via last_record_requests_outer_restart()).
  void finish_engine(const GmresEngine& engine);

  /// True when \p engine finished AbortedByDetector and the RetryReliable
  /// policy wants it recomputed: hand the engine to
  /// make_reliable_retry() instead of finish_engine().
  [[nodiscard]] bool wants_reliable_retry(const GmresEngine& engine) const {
    return recovery_ == InnerRecovery::RetryReliable && !retrying_ &&
           engine.finished() &&
           engine.stats().status == SolveStatus::AbortedByDetector;
  }

  /// Build the reliable recomputation of the flagged inner solve: same
  /// operands and options as the engine make_engine() last produced, but
  /// with the hook detached -- injection disabled, the paper's
  /// selective-reliability recompute.  The aborted attempt's effort is
  /// carried into the eventual record (finish_engine sums both attempts).
  [[nodiscard]] GmresEngine make_reliable_retry(const GmresEngine& aborted);

  /// True when the most recent record was flagged for the RestartOuter
  /// policy (the driver's cue to call FgmresEngine::restart_cycle()).
  [[nodiscard]] bool last_record_requests_outer_restart() const {
    return !records_.empty() && records_.back().triggered_outer_restart;
  }

  [[nodiscard]] const std::vector<InnerSolveRecord>& records() const {
    return records_;
  }

private:
  /// The per-solve options: the configured inner options, with CGS2
  /// re-orthogonalization swapped in for the first inner solve when
  /// robust_first_solve is set (paper Section VII-E-1).
  [[nodiscard]] GmresOptions options_for(std::size_t outer_index) const;

  [[nodiscard]] KrylovWorkspace& workspace() noexcept {
    return ws_ != nullptr ? *ws_ : fallback_ws_;
  }

  const LinearOperator* a_;
  GmresOptions opts_;
  ArnoldiHook* hook_;
  bool robust_first_solve_;
  KrylovWorkspace* ws_;
  KrylovWorkspace fallback_ws_;
  InnerRecovery recovery_ = InnerRecovery::None;
  std::vector<InnerSolveRecord> records_;
  // Operands of the engine make_engine() last produced, kept so
  // make_reliable_retry can rebuild the same solve hook-free; the pending_*
  // counters carry the aborted attempt's effort into the final record.
  std::span<const double> cur_q_;
  std::span<double> cur_z_;
  std::size_t cur_outer_ = 0;
  std::size_t pending_retry_iters_ = 0;
  std::size_t pending_retry_applies_ = 0;
  std::size_t pending_retry_syncs_ = 0;
  bool retrying_ = false;
};

namespace detail {
/// Assemble an FtGmresResult from the outer FGMRES result and the inner
/// solve records (including the total-inner summations).  Shared by
/// ft_gmres() and ft_gmres_batch() so the two drivers can never diverge
/// field-wise.
[[nodiscard]] FtGmresResult make_ft_gmres_result(
    FgmresResult&& outer, std::vector<InnerSolveRecord> inner_solves);
} // namespace detail

/// Solve A x = b with FT-GMRES from a zero initial guess.
/// \param inner_hook observes/corrupts inner solves only; the outer
///        iteration is always reliable.
/// \param ws optional reusable nested workspace (outer + inner slots);
///        reusing one across solves of the same shape removes all heap
///        allocation from the iteration paths (the sweep engine checks
///        out one per worker thread).
[[nodiscard]] FtGmresResult ft_gmres(const LinearOperator& A,
                                     const la::Vector& b,
                                     const FtGmresOptions& opts,
                                     ArnoldiHook* inner_hook = nullptr,
                                     FtGmresWorkspace* ws = nullptr);

/// Convenience overload for CSR matrices.
[[nodiscard]] FtGmresResult ft_gmres(const sparse::CsrMatrix& A,
                                     const la::Vector& b,
                                     const FtGmresOptions& opts,
                                     ArnoldiHook* inner_hook = nullptr,
                                     FtGmresWorkspace* ws = nullptr);

} // namespace sdcgmres::krylov
