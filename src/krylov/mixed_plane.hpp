#pragma once
/// \file mixed_plane.hpp
/// \brief Backend-agnostic seam of the mixed-precision inner data plane.
///
/// PR 7 introduced the narrowed inner plane with exactly one storage
/// format behind it (the CSR mirror).  The multi-backend matrix plane
/// needs the inner solves to stream whatever format the outer operator
/// streams -- a SELL-backed solve must narrow the SELL structure, not
/// secretly fall back to CSR -- so the typed apply seam is split out
/// here as an abstract base, mirroring LinearOperator's design one
/// level down:
///
///   * MixedOperatorT<S>: public NON-virtual counting wrappers
///     (apply/apply_block) over protected virtual cores, with the byte
///     hooks reporting each format's true stored widths.  Deliberately
///     NOT a LinearOperator (that seam is double-typed).
///   * MixedPlaneBase: the type-erased cache slot held by the solver
///     workspaces (moved here from mixed.hpp).
///   * MixedPlaneOf<S>: the scalar-typed layer between the two -- what
///     ensure_plane() returns, so inner engines can be constructed
///     against the plane's typed operator without knowing the format or
///     index width.
///
/// Virtual dispatch changes no arithmetic: a MixedCsrOperator reached
/// through MixedOperatorT<S> produces the same bits it always did.

#include <atomic>
#include <cstddef>

#include "krylov/operator.hpp"
#include "la/block.hpp"
#include "la/krylov_basis.hpp"

namespace sdcgmres::krylov {

/// Abstract counting apply seam of a narrowed matrix mirror, typed on
/// the plane's scalar S.  Same counters and stats vocabulary as
/// LinearOperator (relaxed atomics, so a const operator shared by
/// lockstep instances counts exactly); scalar/index byte accounting is
/// delegated to the format so padding and index compression are both
/// reflected at their true stored widths.
template <typename S>
class MixedOperatorT {
public:
  virtual ~MixedOperatorT() = default;

  [[nodiscard]] virtual std::size_t rows() const noexcept = 0;
  [[nodiscard]] virtual std::size_t cols() const noexcept = 0;

  /// y := A*x at the plane's precision (counted: one stream, one column).
  void apply(std::span<const S> x, std::span<S> y) const {
    apply_calls_.fetch_add(1, std::memory_order_relaxed);
    scalar_bytes_.fetch_add(do_scalar_bytes(1), std::memory_order_relaxed);
    index_bytes_.fetch_add(do_index_bytes(), std::memory_order_relaxed);
    do_apply(x, y);
  }

  /// Y := A*X fused over the block (counted: one stream, X.cols()
  /// columns).  Columns must be bitwise identical to apply() per column
  /// -- the lockstep contract, unchanged at reduced precision.
  void apply_block(const la::BasisViewT<S>& x, la::BlockViewT<S> y) const {
    apply_block_calls_.fetch_add(1, std::memory_order_relaxed);
    block_columns_.fetch_add(x.cols(), std::memory_order_relaxed);
    scalar_bytes_.fetch_add(do_scalar_bytes(x.cols()),
                            std::memory_order_relaxed);
    index_bytes_.fetch_add(do_index_bytes(), std::memory_order_relaxed);
    do_apply_block(x, y);
  }

  [[nodiscard]] OperatorStats stats() const noexcept {
    return {.apply_calls = apply_calls_.load(std::memory_order_relaxed),
            .apply_block_calls =
                apply_block_calls_.load(std::memory_order_relaxed),
            .block_columns = block_columns_.load(std::memory_order_relaxed),
            .scalar_bytes = scalar_bytes_.load(std::memory_order_relaxed),
            .index_bytes = index_bytes_.load(std::memory_order_relaxed)};
  }

  void reset_stats() const noexcept {
    apply_calls_.store(0, std::memory_order_relaxed);
    apply_block_calls_.store(0, std::memory_order_relaxed);
    block_columns_.store(0, std::memory_order_relaxed);
    scalar_bytes_.store(0, std::memory_order_relaxed);
    index_bytes_.store(0, std::memory_order_relaxed);
  }

protected:
  virtual void do_apply(std::span<const S> x, std::span<S> y) const = 0;
  virtual void do_apply_block(const la::BasisViewT<S>& x,
                              la::BlockViewT<S> y) const = 0;
  /// Scalar bytes of one matrix stream with \p columns operand/result
  /// columns, at the format's true stored widths (padding included).
  [[nodiscard]] virtual std::size_t
  do_scalar_bytes(std::size_t columns) const noexcept = 0;
  /// Index bytes of one matrix stream at the compressed index width.
  [[nodiscard]] virtual std::size_t do_index_bytes() const noexcept = 0;

private:
  mutable std::atomic<std::size_t> apply_calls_{0};
  mutable std::atomic<std::size_t> apply_block_calls_{0};
  mutable std::atomic<std::size_t> block_columns_{0};
  mutable std::atomic<std::size_t> scalar_bytes_{0};
  mutable std::atomic<std::size_t> index_bytes_{0};
};

/// Type-erased cache slot for one narrowed mirror (see
/// FtGmresWorkspace::plane).  stats() surfaces the mirror's traffic so
/// solvers and the sweep can fold inner-plane bytes into their totals
/// without knowing the instantiation.
class MixedPlaneBase {
public:
  virtual ~MixedPlaneBase() = default;
  /// Traffic counters of the mirror's apply seam.
  [[nodiscard]] virtual OperatorStats stats() const noexcept = 0;
  /// Zero the mirror's counters (between measured phases).
  virtual void reset_stats() const noexcept = 0;
  /// Identity of the source matrix the mirror was narrowed from.
  [[nodiscard]] virtual const void* source() const noexcept = 0;
};

/// The scalar-typed plane layer: what ensure_plane() hands back, so the
/// caller can reach the typed counting operator without knowing the
/// storage format or index width behind it.
template <typename S>
class MixedPlaneOf : public MixedPlaneBase {
public:
  /// The plane's S-typed counting operator.
  [[nodiscard]] virtual const MixedOperatorT<S>& typed_op() const noexcept = 0;
};

} // namespace sdcgmres::krylov
