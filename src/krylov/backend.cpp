#include "krylov/backend.hpp"

#include <sstream>
#include <stdexcept>

namespace sdcgmres::krylov {

SellBackend::SellBackend(const sparse::CsrMatrix& A, std::size_t chunk,
                         std::size_t sigma_chunks, std::string decision)
    : sell_(A, chunk, sigma_chunks), decision_(std::move(decision)) {
  std::ostringstream name;
  name << "sell:" << chunk << ':' << sigma_chunks;
  name_ = name.str();
}

std::size_t SellBackend::resident_bytes() const noexcept {
  return sizeof(double) * sell_.values().size() +
         sizeof(std::size_t) *
             (sell_.col_idx().size() + sell_.chunk_ptr().size() +
              sell_.slot_lengths().size() + sell_.perm().size() +
              sell_.inv_perm().size());
}

std::unique_ptr<LinearOperator>
SellBackend::make_operator(const sparse::CsrMatrix& A) const {
  if (A.rows() != sell_.rows() || A.cols() != sell_.cols() ||
      A.nnz() != sell_.nnz()) {
    throw std::invalid_argument(
        "SellBackend::make_operator: matrix shape differs from the matrix "
        "this backend was assembled from");
  }
  return std::make_unique<SellOperator>(sell_);
}

} // namespace sdcgmres::krylov
