#pragma once
/// \file arnoldi.hpp
/// \brief Standalone Arnoldi process (basis + Hessenberg matrix).
///
/// Used directly by the property tests (orthonormality, the Arnoldi
/// relation A Q_k = Q_{k+1} H_k, and the paper's Eq. 3 bound) and by the
/// Fig. 2 structure benchmark; GMRES embeds the same kernels but interleaves
/// the least-squares update.

#include <cstddef>
#include <vector>

#include "krylov/hooks.hpp"
#include "krylov/operator.hpp"
#include "krylov/orthogonalize.hpp"
#include "la/dense_matrix.hpp"
#include "la/krylov_basis.hpp"
#include "la/vector.hpp"

namespace sdcgmres::krylov {

/// Result of running the Arnoldi process for up to m steps.
struct ArnoldiResult {
  la::KrylovBasis q;      ///< k+1 orthonormal basis columns (contiguous,
                          ///< column-major; q.col(j) views column j)
  la::DenseMatrix h;      ///< (k+1) x k upper Hessenberg
  std::size_t steps = 0;  ///< k, the number of completed steps
  bool breakdown = false; ///< happy breakdown occurred at step `steps`
};

/// Run m steps of Arnoldi with start vector \p v0 (need not be normalized).
/// Stops early on happy breakdown (subdiagonal below \p breakdown_tol).
[[nodiscard]] ArnoldiResult arnoldi(
    const LinearOperator& A, const la::Vector& v0, std::size_t m,
    Orthogonalization ortho = Orthogonalization::MGS,
    ArnoldiHook* hook = nullptr, double breakdown_tol = 1e-14);

} // namespace sdcgmres::krylov
