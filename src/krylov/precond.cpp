#include "krylov/precond.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "la/blas1.hpp"

namespace sdcgmres::krylov {

void IdentityPreconditioner::apply(std::span<const double> r,
                                   std::span<double> z) const {
  la::copy(r, z);
}

JacobiPreconditioner::JacobiPreconditioner(const sparse::CsrMatrix& A) {
  if (A.rows() != A.cols()) {
    throw std::invalid_argument("JacobiPreconditioner: matrix must be square");
  }
  inv_diag_ = A.diagonal();
  for (std::size_t i = 0; i < inv_diag_.size(); ++i) {
    if (inv_diag_[i] == 0.0 || !std::isfinite(inv_diag_[i])) {
      throw std::invalid_argument(
          "JacobiPreconditioner: zero or non-finite diagonal entry");
    }
    inv_diag_[i] = 1.0 / inv_diag_[i];
  }
}

void JacobiPreconditioner::apply(std::span<const double> r,
                                 std::span<double> z) const {
  if (r.size() != inv_diag_.size()) {
    throw std::invalid_argument("JacobiPreconditioner: size mismatch");
  }
  la::hadamard(r, std::span<const double>(inv_diag_.span()), z);
}

NeumannPolynomialPreconditioner::NeumannPolynomialPreconditioner(
    const LinearOperator& A, std::size_t degree, double omega)
    : a_(&A), degree_(degree), omega_(omega) {
  if (A.rows() != A.cols()) {
    throw std::invalid_argument(
        "NeumannPolynomialPreconditioner: matrix must be square");
  }
  if (omega <= 0.0) {
    throw std::invalid_argument(
        "NeumannPolynomialPreconditioner: omega must be positive");
  }
}

void NeumannPolynomialPreconditioner::apply(std::span<const double> r,
                                            std::span<double> z) const {
  if (r.size() != a_->rows() || z.size() != r.size()) {
    throw std::invalid_argument(
        "NeumannPolynomialPreconditioner: size mismatch");
  }
  // z = w * sum_{k=0}^{d} (I - w A)^k r, built by Horner-style recurrence:
  //   t_0 = r;  t_{k+1} = t_k - w*A*t_k;  z += w * t_k.
  // The recurrence needs two internal length-n temporaries; they are local
  // to this preconditioner (the solver boundary itself stays span-based)
  // and keep apply() const and safe to share across threads.
  la::Vector t(r.size());
  la::copy(r, t.span());
  la::Vector at(a_->rows());
  std::fill(z.begin(), z.end(), 0.0);
  for (std::size_t k = 0; k <= degree_; ++k) {
    la::axpy(omega_, t.span(), z);
    if (k == degree_) break;
    a_->apply(t.span(), at.span());
    la::axpy(-omega_, at.span(), t.span());
  }
}

} // namespace sdcgmres::krylov
