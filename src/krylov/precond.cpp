#include "krylov/precond.hpp"

#include <cmath>
#include <stdexcept>

#include "la/blas1.hpp"

namespace sdcgmres::krylov {

void IdentityPreconditioner::apply(const la::Vector& r, la::Vector& z) const {
  la::copy(r, z);
}

JacobiPreconditioner::JacobiPreconditioner(const sparse::CsrMatrix& A) {
  if (A.rows() != A.cols()) {
    throw std::invalid_argument("JacobiPreconditioner: matrix must be square");
  }
  inv_diag_ = A.diagonal();
  for (std::size_t i = 0; i < inv_diag_.size(); ++i) {
    if (inv_diag_[i] == 0.0 || !std::isfinite(inv_diag_[i])) {
      throw std::invalid_argument(
          "JacobiPreconditioner: zero or non-finite diagonal entry");
    }
    inv_diag_[i] = 1.0 / inv_diag_[i];
  }
}

void JacobiPreconditioner::apply(const la::Vector& r, la::Vector& z) const {
  if (r.size() != inv_diag_.size()) {
    throw std::invalid_argument("JacobiPreconditioner: size mismatch");
  }
  la::hadamard(r, inv_diag_, z);
}

NeumannPolynomialPreconditioner::NeumannPolynomialPreconditioner(
    const LinearOperator& A, std::size_t degree, double omega)
    : a_(&A), degree_(degree), omega_(omega) {
  if (A.rows() != A.cols()) {
    throw std::invalid_argument(
        "NeumannPolynomialPreconditioner: matrix must be square");
  }
  if (omega <= 0.0) {
    throw std::invalid_argument(
        "NeumannPolynomialPreconditioner: omega must be positive");
  }
}

void NeumannPolynomialPreconditioner::apply(const la::Vector& r,
                                            la::Vector& z) const {
  // z = w * sum_{k=0}^{d} (I - w A)^k r, built by Horner-style recurrence:
  //   t_0 = r;  t_{k+1} = t_k - w*A*t_k;  z += w * t_k.
  la::Vector t = r;
  la::Vector at(a_->rows());
  z.resize(r.size());
  z.fill(0.0);
  for (std::size_t k = 0; k <= degree_; ++k) {
    la::axpy(omega_, t, z);
    if (k == degree_) break;
    a_->apply(t, at);
    la::axpy(-omega_, at, t);
  }
}

} // namespace sdcgmres::krylov
