#include "krylov/arnoldi.hpp"

#include <stdexcept>
#include <vector>

#include "la/blas1.hpp"

namespace sdcgmres::krylov {

ArnoldiResult arnoldi(const LinearOperator& A, const la::Vector& v0,
                      std::size_t m, Orthogonalization ortho,
                      ArnoldiHook* hook, double breakdown_tol) {
  if (A.rows() != A.cols()) {
    throw std::invalid_argument("arnoldi: operator must be square");
  }
  if (v0.size() != A.cols()) {
    throw std::invalid_argument("arnoldi: start vector size mismatch");
  }
  ArnoldiResult out;
  const double beta = la::nrm2(v0);
  if (beta == 0.0) {
    throw std::invalid_argument("arnoldi: start vector must be nonzero");
  }
  out.h.reshape(m + 1, m);
  out.q = la::KrylovBasis(A.rows(), m + 1);
  out.q.append(v0);
  la::scal(1.0 / beta, out.q.col(0));

  if (hook != nullptr) hook->on_solve_begin(0);
  la::Vector v(A.rows());
  std::vector<double> hcol(m + 1, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    const ArnoldiContext ctx{.solve_index = 0, .iteration = j};
    if (hook != nullptr) hook->on_iteration_begin(ctx);
    A.apply(out.q.col(j), v);
    if (hook != nullptr) hook->on_matvec_result(ctx, v.span());
    orthogonalize(ortho, out.q, j + 1, v, hcol, hook, ctx);
    for (std::size_t i = 0; i <= j; ++i) out.h(i, j) = hcol[i];
    double hnext = la::nrm2(v);
    if (hook != nullptr) hook->on_subdiagonal(ctx, hnext);
    out.h(j + 1, j) = hnext;
    out.steps = j + 1;
    if (hook != nullptr && hook->abort_requested()) break;
    if (hnext <= breakdown_tol) {
      out.breakdown = true;
      break;
    }
    out.q.append(v.span());
    la::scal(1.0 / hnext, out.q.col(j + 1));
    if (hook != nullptr) {
      hcol[j + 1] = hnext;
      const ArnoldiIterationView view{
          .basis = out.q.view(j + 2),
          .h_column = {hcol.data(), j + 2},
      };
      hook->on_iteration_end(ctx, view);
      if (hook->abort_requested()) break;
    }
  }
  return out;
}

} // namespace sdcgmres::krylov
