#pragma once
/// \file orthogonalize.hpp
/// \brief Orthogonalization kernels for the Arnoldi process.
///
/// The paper's analysis (Section V-B) is deliberately invariant of the
/// orthogonalization algorithm: the bound |h(i,j)| <= ||A||_2 holds for
/// Modified Gram-Schmidt, Classical Gram-Schmidt, and Householder alike.
/// We provide MGS (the paper's choice), CGS, and re-orthogonalized CGS2.
///
/// Hook semantics: on_projection_coefficient fires for every first-pass
/// coefficient, after its dot product and before it is applied to v.  For
/// MGS this reproduces the paper's injection site exactly (a corrupted
/// h(i,j) taints all subsequent MGS steps of the same column, the paper's
/// "worst-case scenario").  CGS2's second-pass corrections are applied
/// silently (they refine, not define, the coefficients).

#include <cstddef>
#include <span>
#include <vector>

#include "krylov/hooks.hpp"
#include "la/krylov_basis.hpp"
#include "la/vector.hpp"

namespace sdcgmres::krylov {

/// Which Gram-Schmidt variant the Arnoldi process uses.
enum class Orthogonalization {
  MGS,  ///< Modified Gram-Schmidt (the paper's choice)
  CGS,  ///< Classical Gram-Schmidt (one pass)
  CGS2, ///< Classical Gram-Schmidt with full re-orthogonalization
};

/// Human-readable name (for reports).
[[nodiscard]] const char* to_string(Orthogonalization kind) noexcept;

/// Orthogonalize \p v against the \p k basis vectors \p q[0..k-1], writing
/// the projection coefficients into \p h (length >= k).  On return v is
/// (approximately) orthogonal to span{q_0..q_{k-1}} and h[i] holds the
/// total coefficient of q_i removed from v.
///
/// This is the per-vector REFERENCE path (k separate dot+axpy kernels over
/// scattered la::Vector buffers).  The solvers use the contiguous-basis
/// overload below; this one is kept as the baseline for the equivalence
/// tests and the old-vs-new kernel benchmark.
///
/// \param hook optional Arnoldi hook (may be nullptr); receives
///        on_projection_coefficient for every first-pass coefficient.
/// \param ctx context forwarded to the hook.
void orthogonalize(Orthogonalization kind,
                   std::span<const la::Vector> q, std::size_t k,
                   la::Vector& v, std::span<double> h, ArnoldiHook* hook,
                   const ArnoldiContext& ctx);

/// Fused orthogonalization over a contiguous KrylovBasis.  Semantics match
/// the reference overload:
///   - the hook fires once per first-pass coefficient with the same
///     (i, mgs_steps) sequence, each coefficient computed from the same
///     operands, and hook mutations are applied identically;
///   - in serial execution (or below la::dot's OpenMP threshold) the hook
///     values are bitwise identical to the reference path; with multiple
///     OpenMP threads the reference path's parallel reductions combine in
///     thread-arrival order, so values agree to reduction roundoff;
///   - CGS2's second-pass corrections remain silent.
/// The kernels differ: CGS/CGS2 projections run as one gemv_t + one gemv
/// over the basis block, and MGS streams each column through the fused
/// la::dot_axpy kernel.  The CORRECTION rounding can also differ from the
/// reference (blocked column combination), i.e. v agrees to roundoff.
/// \p v is a span so callers can orthogonalize in place inside an arena
/// column (s-step mode) or a bound staging block (lockstep batch driver).
void orthogonalize(Orthogonalization kind, const la::KrylovBasis& q,
                   std::size_t k, std::span<double> v, std::span<double> h,
                   ArnoldiHook* hook, const ArnoldiContext& ctx);

/// Convenience wrapper for owning-vector callers.
inline void orthogonalize(Orthogonalization kind, const la::KrylovBasis& q,
                          std::size_t k, la::Vector& v, std::span<double> h,
                          ArnoldiHook* hook, const ArnoldiContext& ctx) {
  orthogonalize(kind, q, k, v.span(), h, hook, ctx);
}

/// Float instantiation of the fused contiguous-basis orthogonalization,
/// for the mixed-precision inner engine.  All kernels (dot_axpy, gemv_t,
/// gemv) run in float; the ArnoldiHook protocol is double-typed, so each
/// first-pass coefficient is widened for the hook and the (possibly
/// mutated) value narrowed back before it is applied -- injected faults
/// land in the float data plane exactly where they land in the double
/// one.
void orthogonalize(Orthogonalization kind, const la::KrylovBasisT<float>& q,
                   std::size_t k, std::span<float> v, std::span<float> h,
                   ArnoldiHook* hook, const ArnoldiContext& ctx);

/// Convenience wrapper for owning-vector callers.
inline void orthogonalize(Orthogonalization kind,
                          const la::KrylovBasisT<float>& q, std::size_t k,
                          la::VectorT<float>& v, std::span<float> h,
                          ArnoldiHook* hook, const ArnoldiContext& ctx) {
  orthogonalize(kind, q, k, v.span(), h, hook, ctx);
}

} // namespace sdcgmres::krylov
