#include "krylov/cg.hpp"

#include <cmath>
#include <stdexcept>

#include "la/blas1.hpp"

namespace sdcgmres::krylov {

CgResult cg(const LinearOperator& A, const la::Vector& b, const la::Vector& x0,
            const CgOptions& opts) {
  if (A.rows() != A.cols()) {
    throw std::invalid_argument("cg: operator must be square");
  }
  if (b.size() != A.rows() || x0.size() != A.cols()) {
    throw std::invalid_argument("cg: vector size mismatch");
  }
  const std::size_t n = A.rows();
  CgResult result;
  result.x = x0;

  la::Vector r(n);
  A.apply(result.x, r);
  la::waxpby(1.0, b, -1.0, r, r);
  const double bnorm = la::nrm2(b);
  const double abs_target = opts.tol * (bnorm > 0.0 ? bnorm : 1.0);

  la::Vector z(n);
  if (opts.precond != nullptr) {
    opts.precond->apply(r, z);
  } else {
    la::copy(r, z);
  }
  la::Vector p = z;
  la::Vector ap(n);
  double rz = la::dot(r, z);
  result.residual_norm = la::nrm2(r);

  for (std::size_t it = 0; it < opts.max_iters; ++it) {
    if (result.residual_norm <= abs_target) {
      result.converged = true;
      return result;
    }
    A.apply(p, ap);
    const double pap = la::dot(p, ap);
    if (pap <= 0.0 || !std::isfinite(pap)) {
      result.indefinite = true;
      return result;
    }
    const double alpha = rz / pap;
    la::axpy(alpha, p, result.x);
    la::axpy(-alpha, ap, r);
    result.residual_norm = la::nrm2(r);
    result.residual_history.push_back(result.residual_norm);
    result.iterations = it + 1;

    if (opts.precond != nullptr) {
      opts.precond->apply(r, z);
    } else {
      la::copy(r, z);
    }
    const double rz_next = la::dot(r, z);
    const double beta = rz_next / rz;
    la::waxpby(1.0, z, beta, p, p);
    rz = rz_next;
  }
  result.converged = result.residual_norm <= abs_target;
  return result;
}

CgResult cg(const sparse::CsrMatrix& A, const la::Vector& b,
            const CgOptions& opts) {
  const CsrOperator op(A);
  return cg(op, b, la::Vector(A.cols()), opts);
}

} // namespace sdcgmres::krylov
