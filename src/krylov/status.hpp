#pragma once
/// \file status.hpp
/// \brief The one terminal-state vocabulary shared by every solver.
///
/// Historically GMRES, FGMRES, and FCG each grew their own status enum
/// (SolveStatus / FgmresStatus / FcgStatus) with overlapping but
/// incompatible values; every caller that mixed solvers had to translate.
/// This header collapses them: one enum covers the union of terminal
/// states, and each solver simply never returns the states that cannot
/// occur for it (e.g. only FGMRES-family solvers report RankDeficient,
/// only the CG family reports Indefinite).

namespace sdcgmres::krylov {

/// Terminal state of any iterative solve.
enum class SolveStatus {
  Converged,         ///< residual reached the tolerance
  HappyBreakdown,    ///< invariant subspace found (full-rank H for the
                     ///< FGMRES trichotomy): the solution is exact
  MaxIterations,     ///< iteration budget exhausted
  RankDeficient,     ///< H(1:j,1:j) rank-deficient: loud failure report
                     ///< (FGMRES trichotomy, paper Section VI-C)
  AbortedByDetector, ///< an attached hook requested abort (fault detected)
  Indefinite,        ///< p^T A p <= 0 observed: A not SPD (CG family)
  Diverged,          ///< residual-explosion guard fired: the residual
                     ///< estimate exceeded divergence_factor x the initial
                     ///< residual (or went non-finite) -- a pathological
                     ///< faulty solve degrading gracefully instead of
                     ///< burning its whole budget
  DeadlineExceeded,  ///< wall-clock deadline guard fired: the solve ran
                     ///< past deadline_seconds and returned its best
                     ///< iterate so far
};

/// Human-readable status (for reports).
[[nodiscard]] const char* to_string(SolveStatus status) noexcept;

/// Inverse of to_string (sweep-journal round-trips).  Returns true and
/// sets \p out when \p name is a known status spelling, false otherwise.
[[nodiscard]] bool status_from_string(const char* name,
                                      SolveStatus& out) noexcept;

/// True for the two states that certify a correct solution (tolerance
/// reached, or an invariant subspace making the iterate exact).
[[nodiscard]] constexpr bool is_success(SolveStatus status) noexcept {
  return status == SolveStatus::Converged ||
         status == SolveStatus::HappyBreakdown;
}

} // namespace sdcgmres::krylov
