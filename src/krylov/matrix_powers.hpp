#pragma once
/// \file matrix_powers.hpp
/// \brief Matrix-powers kernel for the s-step (communication-avoiding)
/// Krylov path.
///
/// Fills s+1 consecutive columns of a contiguous block arena with the
/// monomial Krylov sequence {v, Av, A^2 v, ...} (optionally Newton-shifted:
/// p_{k} = (A - shift_k I) p_{k-1}) by chaining width-1 apply_block calls,
/// so the traffic is accounted through the operator's OperatorStats exactly
/// like the solvers' own products.  The GmresEngine s-step staging loop
/// computes the same chain through its step protocol; this standalone
/// kernel is the reference the engine is tested against (bitwise) and the
/// building block for offline basis studies.
///
/// No global reduction happens here -- that is the point of the s-step
/// reformulation: the powers are staged untouched and the whole block is
/// paid for later with one block projection + one TSQR.

#include <cstddef>
#include <span>

#include "krylov/operator.hpp"
#include "la/block.hpp"

namespace sdcgmres::krylov {

/// Fill \p out with the monomial (or Newton-shifted) power sequence seeded
/// by \p v: out.col(0) = v, out.col(k) = A*out.col(k-1) - shifts[k-1]*
/// out.col(k-1) for k = 1..out.cols()-1 (missing shifts are zero, i.e. the
/// monomial basis).  \p out must have at least one column and rows ==
/// v.size() == A.rows(); shifts, when given, must provide at least
/// out.cols()-1 entries.  Throws std::invalid_argument on shape mismatch.
void matrix_powers(const LinearOperator& A, std::span<const double> v,
                   la::BlockView out, std::span<const double> shifts = {});

} // namespace sdcgmres::krylov
