#pragma once
/// \file ft_gmres_batch.hpp
/// \brief Multi-RHS FT-GMRES: B independent nested solves in lockstep.
///
/// The paper's headline experiment runs thousands of independent FT-GMRES
/// solves of the SAME matrix (one per injection site).  Run solo, each
/// outer iteration pays a full matrix stream for its one A*z product;
/// run B solves in lockstep, the B products of an outer iteration fuse
/// into ONE apply_block/SpMM that streams the matrix once, cutting the
/// reliable-phase matrix traffic to ~1/B (see CsrMatrix::spmm).
///
/// Determinism contract: every instance advances through EXACTLY the
/// floating-point operation sequence of its solo krylov::ft_gmres run --
/// the outer iteration is the shared FgmresEngine, the fused product's
/// columns are bitwise equal to per-column apply(), and instances share
/// no mutable state.  An instance that terminates early (converged,
/// happy breakdown, rank-deficient, budget) simply drops out of the
/// block; the survivors' packed columns are unchanged values, so their
/// iterate streams are unperturbed.  This is what lets the injection
/// sweep assert batch=B results are bitwise identical to batch=1.
///
/// The inner (unreliable) solves still run one instance at a time: each
/// owns a fault campaign/detector hook whose event stream must match the
/// solo run one-to-one.

#include <cstddef>
#include <span>
#include <vector>

#include "krylov/ft_gmres.hpp"
#include "krylov/workspace.hpp"
#include "la/block.hpp"
#include "la/vector.hpp"

namespace sdcgmres::krylov {

/// Reusable storage for one batch driver (NOT shareable between
/// threads): one nested per-instance workspace slot plus the two staging
/// blocks of the fused operator application.  Like the scalar
/// workspaces, a driver that solved a (shape, batch) once re-solves it
/// with no heap allocation on the iteration path.
struct FtGmresBatchWorkspace {
  std::vector<FtGmresWorkspace> instances; ///< one per lockstep instance
  la::BlockWorkspace directions; ///< packed live Z columns (SpMM operand)
  la::BlockWorkspace products;   ///< A * directions (SpMM result)
};

/// Solve A x_i = b_i for every right-hand side in \p bs with FT-GMRES
/// from zero initial guesses, advancing all instances in lockstep (one
/// fused operator application per outer iteration).  Results arrive in
/// input order and are bitwise identical to ft_gmres() run per rhs.
///
/// \param inner_hooks per-instance hooks observing/corrupting the
///        unreliable inner solves (the sweep engine passes one fault
///        campaign + detector chain per injection site); empty = no
///        hooks, otherwise must match \p bs in size (nullptr entries
///        allowed).
/// \param ws optional reusable batch workspace.
[[nodiscard]] std::vector<FtGmresResult> ft_gmres_batch(
    const LinearOperator& A, std::span<const std::span<const double>> bs,
    const FtGmresOptions& opts, std::span<ArnoldiHook* const> inner_hooks = {},
    FtGmresBatchWorkspace* ws = nullptr);

/// Convenience overload for owning right-hand sides.
[[nodiscard]] std::vector<FtGmresResult> ft_gmres_batch(
    const LinearOperator& A, const std::vector<la::Vector>& bs,
    const FtGmresOptions& opts, std::span<ArnoldiHook* const> inner_hooks = {},
    FtGmresBatchWorkspace* ws = nullptr);

} // namespace sdcgmres::krylov
