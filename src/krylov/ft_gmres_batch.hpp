#pragma once
/// \file ft_gmres_batch.hpp
/// \brief Multi-RHS FT-GMRES: B independent nested solves in lockstep.
///
/// The paper's headline experiment runs thousands of independent FT-GMRES
/// solves of the SAME matrix (one per injection site).  Run solo, every
/// operator product pays a full matrix stream; run B solves in lockstep,
/// the B products of each step fuse into ONE apply_block/SpMM that
/// streams the matrix once, cutting the matrix traffic to ~1/B (see
/// CsrMatrix::spmm).  Both nesting levels advance in lockstep:
///
///   * the OUTER iteration interleaves B krylov::FgmresEngine instances
///     (one fused product per outer iteration), and
///   * the INNER (unreliable) GMRES solves interleave B
///     krylov::GmresEngine instances, so each inner Arnoldi iteration --
///     and each inner cycle-start residual -- is one fused product too.
///     At the paper's 25 fixed inner iterations per outer step ~25/26 of
///     all products happen inside the inner solves, so this is where the
///     batching win actually lives.
///
/// Determinism contract: every instance advances through EXACTLY the
/// floating-point operation sequence of its solo krylov::ft_gmres run --
/// both nesting levels run the same step-driveable engines the solo path
/// drives, the fused products' columns are bitwise equal to per-column
/// apply(), and instances share no mutable state.  Inner hook streams
/// (fault campaigns, detectors), Hessenberg/QR factorizations, and
/// records stay strictly per-instance.  An instance that terminates
/// early -- at either level: a detector-aborted or broken-down inner
/// solve, a converged/rank-deficient/spent outer -- simply drops out of
/// its block; the survivors' packed columns are unchanged values, so
/// their iterate streams are unperturbed.  This is what lets the
/// injection sweep assert batch=B results are bitwise identical to
/// batch=1.

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "krylov/ft_gmres.hpp"
#include "krylov/workspace.hpp"
#include "la/block.hpp"
#include "la/vector.hpp"

namespace sdcgmres::krylov {

/// Reusable storage for one batch driver (NOT shareable between
/// threads): one nested per-instance workspace slot plus the two staging
/// blocks of the fused operator application.  Like the scalar
/// workspaces, a driver that solved a (shape, batch) once re-solves it
/// with no heap allocation on the iteration path.
struct FtGmresBatchWorkspace {
  std::vector<FtGmresWorkspace> instances; ///< one per lockstep instance
  la::BlockWorkspace directions; ///< packed live operand columns (SpMM
                                 ///< operand; outer Z directions and inner
                                 ///< iterates/directions take turns -- the
                                 ///< two lockstep levels never overlap)
  la::BlockWorkspace products;   ///< A * directions (SpMM result)
  /// Float staging blocks of the inner lockstep phase for
  /// precision=float configurations (unused and unallocated on double
  /// paths, where the inner phase shares directions/products above).
  la::BlockWorkspaceT<float> directions_f32;
  la::BlockWorkspaceT<float> products_f32;
  /// Narrowed-mirror cache shared by every lockstep instance for
  /// non-default precision/index configurations (the mirror is
  /// read-only during applies and its counters are atomic, so one copy
  /// serves the whole batch); null on the default path.
  std::shared_ptr<MixedPlaneBase> plane;
};

/// Solve A x_i = b_i for every right-hand side in \p bs with FT-GMRES
/// from zero initial guesses, advancing all instances in lockstep (one
/// fused operator application per outer iteration).  Results arrive in
/// input order and are bitwise identical to ft_gmres() run per rhs.
///
/// \param inner_hooks per-instance hooks observing/corrupting the
///        unreliable inner solves (the sweep engine passes one fault
///        campaign + detector chain per injection site); empty = no
///        hooks, otherwise must match \p bs in size (nullptr entries
///        allowed).
/// \param ws optional reusable batch workspace.
[[nodiscard]] std::vector<FtGmresResult> ft_gmres_batch(
    const LinearOperator& A, std::span<const std::span<const double>> bs,
    const FtGmresOptions& opts, std::span<ArnoldiHook* const> inner_hooks = {},
    FtGmresBatchWorkspace* ws = nullptr);

/// Convenience overload for owning right-hand sides.
[[nodiscard]] std::vector<FtGmresResult> ft_gmres_batch(
    const LinearOperator& A, const std::vector<la::Vector>& bs,
    const FtGmresOptions& opts, std::span<ArnoldiHook* const> inner_hooks = {},
    FtGmresBatchWorkspace* ws = nullptr);

} // namespace sdcgmres::krylov
