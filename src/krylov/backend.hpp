#pragma once
/// \file backend.hpp
/// \brief Pluggable matrix execution backends behind the operator seam.
///
/// A MatrixBackend is an assembled execution format for one CsrMatrix:
/// it owns whatever derived structure the format needs (nothing for
/// CSR, the SELL-C-sigma structure for SELL) and hands out the
/// LinearOperator that streams it.  Backends are shared_ptr-shared so
/// one assembly serves a whole sweep (every worker's operator points at
/// the same immutable structure), survives a fork into shard workers,
/// and can live in the service's ArtifactCache keyed by matrix+backend.
///
/// Construction goes through solver::backend_registry() (keys `csr`,
/// `sell`, `sell:<C>[:<sigma>]`, `auto`), which is what the `backend=`
/// scenario key resolves against; `auto` is the format autotuner, and
/// its reasoning is recorded in decision() and surfaced in the report
/// JSON.
///
/// Every backend's operator is bitwise identical to CsrOperator per
/// output column at any thread count -- the acceptance contract that
/// keeps sweeps, journals, and the service's byte-identity guarantees
/// backend-agnostic.

#include <cstddef>
#include <memory>
#include <string>

#include "krylov/operator.hpp"
#include "krylov/sell_operator.hpp"
#include "sparse/csr.hpp"
#include "sparse/sell.hpp"

namespace sdcgmres::krylov {

/// An assembled execution format for one matrix.
class MatrixBackend {
public:
  virtual ~MatrixBackend() = default;

  /// Normalized registry key of the assembled format ("csr",
  /// "sell:8:1", ...).  Reported in the result JSON.
  [[nodiscard]] virtual const std::string& name() const noexcept = 0;

  /// The autotuner's reasoning when this backend came from `auto`
  /// (empty for explicit selections).
  [[nodiscard]] virtual const std::string& decision() const noexcept = 0;

  /// Bytes of derived structure this backend keeps resident (0 for CSR,
  /// which streams the source matrix itself) -- what the artifact cache
  /// charges.
  [[nodiscard]] virtual std::size_t resident_bytes() const noexcept = 0;

  /// The counting operator streaming this backend's format.  \p A must
  /// be the matrix the backend was assembled from (same shape; SELL
  /// verifies).  The operator holds references into the backend, which
  /// must outlive it.
  [[nodiscard]] virtual std::unique_ptr<LinearOperator>
  make_operator(const sparse::CsrMatrix& A) const = 0;
};

/// The trivial backend: operators stream the source CSR matrix
/// directly; nothing is assembled.
class CsrBackend final : public MatrixBackend {
public:
  explicit CsrBackend(std::string decision = std::string())
      : decision_(std::move(decision)) {}

  [[nodiscard]] const std::string& name() const noexcept override {
    return name_;
  }
  [[nodiscard]] const std::string& decision() const noexcept override {
    return decision_;
  }
  [[nodiscard]] std::size_t resident_bytes() const noexcept override {
    return 0;
  }
  [[nodiscard]] std::unique_ptr<LinearOperator>
  make_operator(const sparse::CsrMatrix& A) const override {
    return std::make_unique<CsrOperator>(A);
  }

private:
  std::string name_{"csr"};
  std::string decision_;
};

/// The SELL-C-sigma backend: owns the converted structure; operators
/// stream it.  name() is the normalized "sell:<C>:<sigma>" key.
class SellBackend final : public MatrixBackend {
public:
  /// Converts \p A (see SellMatrix for geometry validation).
  SellBackend(const sparse::CsrMatrix& A,
              std::size_t chunk = sparse::SellMatrix::kDefaultChunk,
              std::size_t sigma_chunks = sparse::SellMatrix::kDefaultSigmaChunks,
              std::string decision = std::string());

  [[nodiscard]] const std::string& name() const noexcept override {
    return name_;
  }
  [[nodiscard]] const std::string& decision() const noexcept override {
    return decision_;
  }
  [[nodiscard]] std::size_t resident_bytes() const noexcept override;
  /// Throws std::invalid_argument when \p A's shape differs from the
  /// assembly-time matrix (the backend would silently stream stale
  /// structure otherwise).
  [[nodiscard]] std::unique_ptr<LinearOperator>
  make_operator(const sparse::CsrMatrix& A) const override;

  [[nodiscard]] const sparse::SellMatrix& matrix() const noexcept {
    return sell_;
  }

private:
  sparse::SellMatrix sell_;
  std::string name_;
  std::string decision_;
};

} // namespace sdcgmres::krylov
