#pragma once
/// \file cg.hpp
/// \brief Conjugate Gradient, the SPD baseline the paper contrasts with.
///
/// Table I notes the Poisson matrix "could be solved using the Conjugate
/// Gradient method" while mult_dcop_03 could not; CG is provided both as
/// that baseline and as an independent cross-check of GMRES solutions in
/// the tests.

#include <cstddef>
#include <vector>

#include "krylov/operator.hpp"
#include "krylov/precond.hpp"
#include "la/vector.hpp"
#include "sparse/csr.hpp"

namespace sdcgmres::krylov {

/// Configuration of a CG solve.
struct CgOptions {
  std::size_t max_iters = 1000;
  double tol = 1e-8;        ///< relative residual target (vs ||b||)
  const Preconditioner* precond = nullptr; ///< optional SPD preconditioner
};

/// Result of a CG solve.
struct CgResult {
  la::Vector x;
  bool converged = false;
  bool indefinite = false;  ///< p^T A p <= 0 observed: A not SPD
  std::size_t iterations = 0;
  double residual_norm = 0.0;
  std::vector<double> residual_history;
};

/// Solve SPD system A x = b from initial guess \p x0.
[[nodiscard]] CgResult cg(const LinearOperator& A, const la::Vector& b,
                          const la::Vector& x0, const CgOptions& opts);

/// Convenience overload for CSR matrices with a zero initial guess.
[[nodiscard]] CgResult cg(const sparse::CsrMatrix& A, const la::Vector& b,
                          const CgOptions& opts);

} // namespace sdcgmres::krylov
