#include "krylov/gmres.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "dense/hessenberg_qr.hpp"
#include "la/blas1.hpp"
#include "la/blas2.hpp"
#include "la/block.hpp"
#include "la/krylov_basis.hpp"
#include "la/tsqr.hpp"

namespace sdcgmres::krylov {

namespace {

/// Global reductions one orthogonalization pass over k columns costs on a
/// distributed machine: MGS is k sequential dot products, CGS is one
/// blocked gemv_t pass, CGS2 two.
inline std::size_t ortho_sync_count(Orthogonalization kind,
                                    std::size_t k) noexcept {
  switch (kind) {
    case Orthogonalization::MGS: return k;
    case Orthogonalization::CGS: return 1;
    case Orthogonalization::CGS2: return 2;
  }
  return 0;
}

} // namespace

// ---------------------------------------------------------------------------
// GmresEngine: the one GMRES implementation.  gmres_in_place() below drives
// it straight through; the FT-GMRES batch driver interleaves many engines
// (one per lockstep instance) so their products fuse into block applies.
// Any change to the iteration math happens HERE and nowhere else.
//
// Workspace layout (all checked out of the bound KrylovWorkspace; with a
// reused workspace of matching shape nothing on the solve path touches the
// heap): scratch(0) = residual r, scratch(1) = Arnoldi candidate v,
// scratch(2) = preconditioned direction z, scratch(3) = Q_k y at cycle end.
// ---------------------------------------------------------------------------

template <typename S>
GmresEngineT<S>::GmresEngineT(std::size_t rows, std::size_t cols,
                              std::span<const S> b, std::span<S> x,
                              const GmresOptions& opts, ArnoldiHook* hook,
                              std::size_t solve_index, KrylovWorkspaceT<S>& ws,
                              std::vector<double>* residual_history)
    : b_(b), x_(x), opts_(opts), hook_(hook), solve_index_(solve_index),
      w_(&ws), history_(residual_history), n_(rows) {
  if (rows != cols) {
    throw std::invalid_argument("gmres: operator must be square");
  }
  if (b.size() != rows || x.size() != cols) {
    throw std::invalid_argument("gmres: vector size mismatch");
  }
  if (opts.max_iters == 0) {
    throw std::invalid_argument("gmres: max_iters must be positive");
  }
  if constexpr (!std::is_same_v<S, double>) {
    if (opts.right_precond != nullptr) {
      throw std::invalid_argument(
          "gmres: the float engine does not support right preconditioning");
    }
  }

  ++stats_.global_syncs; // ||b||
  const double bnorm = static_cast<double>(la::nrm2(b_));
  abs_target_ =
      (opts_.tol > 0.0) ? opts_.tol * (bnorm > 0.0 ? bnorm : 1.0) : 0.0;
  cycle_len_ = (opts_.restart == 0) ? opts_.max_iters : opts_.restart;

  s_ = opts_.s_step;
  if (s_ == 0) {
    throw std::invalid_argument("gmres: s_step must be positive");
  }
  if (s_ > cycle_len_) {
    throw std::invalid_argument(
        "gmres: s_step (" + std::to_string(s_) +
        ") exceeds the restart cycle length (" + std::to_string(cycle_len_) +
        "); valid range is 1.." + std::to_string(cycle_len_));
  }
  if (s_ > n_) {
    throw std::invalid_argument(
        "gmres: s_step (" + std::to_string(s_) +
        ") exceeds the operator dimension (" + std::to_string(n_) +
        "); valid range is 1.." + std::to_string(n_));
  }
  if (s_ > 1 && opts_.right_precond != nullptr) {
    throw std::invalid_argument(
        "gmres: s-step mode does not support right preconditioning "
        "(set s_step=1 or drop the preconditioner)");
  }
  w_->arena.reserve(n_, cycle_len_);
  if (s_ > 1) hmat_.assign((cycle_len_ + 1) * cycle_len_, 0.0);

  if (hook_ != nullptr) hook_->on_solve_begin(solve_index_);
}

template <typename S>
std::span<S> GmresEngineT<S>::residual_target() {
  if (ext_bound_) return ext_target_;
  return w_->arena.scratch(0).span();
}

template <typename S>
bool GmresEngineT<S>::start_cycle() {
  ++stats_.operator_applies; // the caller-provided A*x this call consumes

  la::VectorT<S>& r = w_->arena.scratch(0);
  std::vector<S>& hcol = w_->arena.h_column();
  std::fill(hcol.begin(),
            hcol.begin() + static_cast<std::ptrdiff_t>(cycle_len_ + 2), S(0));
  if (s_ > 1) {
    std::fill(hmat_.begin(), hmat_.end(), 0.0);
    stage_count_ = 0;
    stage_idx_ = 0;
  }

  // Reliable residual at cycle start: r = b - A*x (A*x is in r already,
  // or in the bound staging column when a lockstep driver bound one --
  // same values, different address, so results stay bitwise identical).
  if (ext_bound_) {
    la::waxpby(S(1), b_, S(-1), std::span<const S>(ext_target_), r.span());
  } else {
    la::waxpby(S(1), b_, S(-1), r.span(), r.span());
  }
  ++stats_.global_syncs; // beta = ||r||
  const double beta = static_cast<double>(la::nrm2(std::span<const S>(r.span())));
  stats_.residual_norm = beta;
  if (beta0_ < 0.0) beta0_ = beta; // the solve's initial residual
  if (beta == 0.0 || (abs_target_ > 0.0 && beta <= abs_target_)) {
    stats_.status = SolveStatus::Converged;
    finished_ = true;
    return true;
  }
  if (!std::isfinite(beta)) {
    // A non-finite iterate cannot improve; report and stop.
    stats_.status = SolveStatus::MaxIterations;
    finished_ = true;
    return true;
  }

  // Contiguous column-major basis arena: the whole cycle's basis lives in
  // one buffer so orthogonalization runs as fused block kernels.
  la::KrylovBasisT<S>& q = w_->arena.basis();
  q.clear();
  q.append(r);
  la::scal(static_cast<S>(1.0 / beta), q.col(0));

  w_->qr.reset(cycle_len_, static_cast<S>(beta));
  awaiting_residual_ = false;
  return false;
}

template <typename S>
void GmresEngineT<S>::begin_iteration() {
  if (s_ > 1) {
    if (stage_count_ == 0) {
      // New matrix-powers block: size it to what the cycle and the
      // iteration budget can still absorb, so a block never overruns
      // either (the tail block of a 25-iteration s=4 solve has 1 power).
      block_j0_ = w_->qr.size();
      stage_idx_ = 0;
      const std::size_t cycle_room = cycle_len_ - block_j0_;
      const std::size_t budget_room = opts_.max_iters - stats_.iterations;
      stage_count_ = std::min(s_, std::min(cycle_room, budget_room));
    }
    const ArnoldiContext ctx{.solve_index = solve_index_,
                             .iteration = block_j0_ + stage_idx_};
    if (hook_ != nullptr) hook_->on_iteration_begin(ctx);
    // Staging column for the pending power (freshly zeroed by the arena).
    w_->arena.basis().append();
    return;
  }

  const std::size_t j = w_->qr.size();
  const ArnoldiContext ctx{.solve_index = solve_index_, .iteration = j};
  if (hook_ != nullptr) hook_->on_iteration_begin(ctx);

  // Right-preconditioned: the pending product is A * (M^{-1} q_j); the
  // preconditioner runs span-to-span out of the arena, here and now.
  // (Double engine only; the float constructor rejects right_precond.)
  if constexpr (std::is_same_v<S, double>) {
    if (opts_.right_precond != nullptr) {
      opts_.right_precond->apply(w_->arena.basis().col(j),
                                 w_->arena.scratch(2).span());
    }
  }
}

template <typename S>
std::span<const S> GmresEngineT<S>::direction() const {
  if (s_ > 1 && stage_count_ > 0) {
    // Power chain: the first power multiplies the last committed basis
    // vector, every later one the previously staged power.
    return w_->arena.basis().col(block_j0_ + stage_idx_);
  }
  if constexpr (std::is_same_v<S, double>) {
    if (opts_.right_precond != nullptr) {
      return w_->arena.scratch(2).span();
    }
  }
  return w_->arena.basis().col(w_->qr.size());
}

template <typename S>
std::span<S> GmresEngineT<S>::v_target() {
  if (ext_bound_) return ext_target_;
  if (s_ > 1 && stage_count_ > 0) {
    return w_->arena.basis().col(block_j0_ + 1 + stage_idx_);
  }
  return w_->arena.scratch(1).span();
}

template <typename S>
bool GmresEngineT<S>::advance() {
  if (s_ > 1 && stage_count_ > 0) return advance_staged();

  ++stats_.operator_applies; // the caller-provided A*direction()

  const std::size_t j = w_->qr.size();
  la::KrylovBasisT<S>& q = w_->arena.basis();
  const std::span<S> v =
      ext_bound_ ? ext_target_ : w_->arena.scratch(1).span();
  std::vector<S>& hcol = w_->arena.h_column();
  const ArnoldiContext ctx{.solve_index = solve_index_, .iteration = j};

  if (hook_ != nullptr) {
    if constexpr (std::is_same_v<S, double>) {
      hook_->on_matvec_result(ctx, v);
    } else {
      // Widen the float candidate for the double-typed hook, then narrow
      // the (possibly mutated) copy back: faults injected at the matvec
      // site land in the float data plane.
      hook_vec_.resize(n_);
      for (std::size_t i = 0; i < n_; ++i) {
        hook_vec_[i] = static_cast<double>(v[i]);
      }
      hook_->on_matvec_result(ctx, hook_vec_.span());
      for (std::size_t i = 0; i < n_; ++i) {
        v[i] = static_cast<S>(hook_vec_[i]);
      }
    }
  }
  ++stats_.global_syncs; // ||v|| (breakdown scale)
  const double w_norm = static_cast<double>(
      la::nrm2(std::span<const S>(v))); // breakdown scale reference

  stats_.global_syncs += ortho_sync_count(opts_.ortho, j + 1);
  orthogonalize(opts_.ortho, q, j + 1, v, hcol, hook_, ctx);
  if (hook_ != nullptr && hook_->abort_requested()) {
    // Drop the tainted column entirely; solve with the j columns that
    // were accepted before the detector fired.
    return finish_cycle(/*aborted=*/true, false, false, false, false);
  }

  ++stats_.global_syncs; // h(j+1,j) = ||v||
  double hnext = static_cast<double>(la::nrm2(std::span<const S>(v)));
  if (hook_ != nullptr) hook_->on_subdiagonal(ctx, hnext);
  if (hook_ != nullptr && hook_->abort_requested()) {
    return finish_cycle(/*aborted=*/true, false, false, false, false);
  }

  hcol[j + 1] = static_cast<S>(hnext);
  const double est = w_->qr.add_column({hcol.data(), j + 2});
  if (history_ != nullptr) history_->push_back(est);
  ++stats_.iterations;
  stats_.residual_norm = est;

  // --- Divergence guard: a least-squares estimate blowing past the
  // initial residual (or going non-finite) means the projected problem is
  // garbage -- in FT-GMRES, typically a corrupted Hessenberg column.
  // Drop the exploding column and return the pre-explosion iterate, like
  // a detector abort but guard-triggered.
  if (opts_.divergence_factor > 0.0 && beta0_ > 0.0 &&
      (!std::isfinite(est) || est > opts_.divergence_factor * beta0_)) {
    if (history_ != nullptr) history_->pop_back();
    --stats_.iterations;
    return finish_cycle(false, false, false, /*diverged=*/true,
                        /*qr_pop_pending=*/true);
  }

  if (hnext <= opts_.breakdown_tol * (w_norm > 0.0 ? w_norm : 1.0)) {
    return finish_cycle(false, /*breakdown=*/true, false, false, false);
  }
  q.append(std::span<const S>(v));
  la::scal(static_cast<S>(1.0 / hnext), q.col(j + 1));

  if (hook_ != nullptr) {
    if constexpr (std::is_same_v<S, double>) {
      const ArnoldiIterationView view{
          .basis = q.view(j + 2),
          .h_column = {hcol.data(), j + 2},
      };
      hook_->on_iteration_end(ctx, view);
    } else {
      // Full widened mirror of the iteration state for the double-typed
      // whole-iteration checks (Online-ABFT).  Rebuilt per event --
      // correctness over speed; only paid when a hook is installed.
      if (hook_basis_.rows() != n_ || hook_basis_.capacity() < cycle_len_ + 1) {
        hook_basis_ = la::KrylovBasis(n_, cycle_len_ + 1);
      }
      hook_basis_.clear();
      for (std::size_t c = 0; c < j + 2; ++c) {
        std::span<double> dst = hook_basis_.append();
        const std::span<const S> src = q.col(c);
        for (std::size_t i = 0; i < n_; ++i) {
          dst[i] = static_cast<double>(src[i]);
        }
      }
      hook_hcol_.assign(j + 2, 0.0);
      for (std::size_t i = 0; i < j + 2; ++i) {
        hook_hcol_[i] = static_cast<double>(hcol[i]);
      }
      const ArnoldiIterationView view{
          .basis = hook_basis_.view(j + 2),
          .h_column = {hook_hcol_.data(), j + 2},
      };
      hook_->on_iteration_end(ctx, view);
    }
    if (hook_->abort_requested()) {
      // The whole-iteration check rejected this column (Online-ABFT
      // style); drop it and stop, as for coefficient-level aborts.
      q.pop_back();
      // The column is already in the QR factorization; the projected
      // solve below must not use it.
      if (history_ != nullptr) history_->pop_back();
      --stats_.iterations;
      return finish_cycle(/*aborted=*/true, false, false, false,
                          /*qr_pop_pending=*/true);
    }
  }

  if (abs_target_ > 0.0 && est <= abs_target_) {
    return finish_cycle(false, false, /*converged=*/true, false, false);
  }
  if (w_->qr.size() >= cycle_len_ || stats_.iterations >= opts_.max_iters) {
    // Cycle exhausted: restart (or stop on a spent budget).
    return finish_cycle(false, false, false, false, false);
  }
  return false; // next step: begin_iteration()
}

template <typename S>
bool GmresEngineT<S>::advance_staged() {
  ++stats_.operator_applies; // the caller-provided A*direction()
  // NO global reduction here: powers are staged untouched; the whole
  // block is paid for in commit_block() (2 reductions for s columns).

  const ArnoldiContext ctx{.solve_index = solve_index_,
                           .iteration = block_j0_ + stage_idx_};
  const std::span<S> pcol =
      w_->arena.basis().col(block_j0_ + 1 + stage_idx_);
  if (ext_bound_) {
    // Lockstep driver: the product arrived in the bound staging column;
    // persist it into the basis arena (powers must outlive the step).
    la::copy(std::span<const S>(ext_target_), pcol);
  }
  if (hook_ != nullptr) {
    if constexpr (std::is_same_v<S, double>) {
      hook_->on_matvec_result(ctx, pcol);
      hook_->on_power_computed(ctx, stage_idx_, stage_count_, pcol);
    } else {
      hook_vec_.resize(n_);
      for (std::size_t i = 0; i < n_; ++i) {
        hook_vec_[i] = static_cast<double>(pcol[i]);
      }
      hook_->on_matvec_result(ctx, hook_vec_.span());
      hook_->on_power_computed(ctx, stage_idx_, stage_count_,
                               hook_vec_.span());
      for (std::size_t i = 0; i < n_; ++i) {
        pcol[i] = static_cast<S>(hook_vec_[i]);
      }
    }
  }
  ++stage_idx_;
  if (stage_idx_ < stage_count_) return false; // next power of the block
  return commit_block();
}

template <typename S>
bool GmresEngineT<S>::commit_block() {
  la::KrylovBasisT<S>& q = w_->arena.basis();
  std::vector<S>& hcol = w_->arena.h_column();
  const std::size_t k = block_j0_ + 1; // committed basis columns
  const std::size_t m = stage_count_;  // powers staged in this block
  stage_count_ = 0;
  stage_idx_ = 0;

  // --- Block projection, ONE fused reduction pass: C = Q_k^T P, then
  // P <- P - Q_k C.  C is kept (widened) for the Hessenberg recovery.
  ++stats_.global_syncs;
  cmat_.assign(k * m, 0.0);
  cs_.resize(k);
  const la::BasisViewT<S> qk = q.view(k);
  for (std::size_t t = 0; t < m; ++t) {
    const std::span<S> pt = q.col(k + t);
    la::gemv_t(S(1), qk, std::span<const S>(pt), S(0),
               std::span<S>(cs_.data(), k));
    la::gemv(S(-1), qk, std::span<const S>(cs_.data(), k), S(1), pt);
    for (std::size_t i = 0; i < k; ++i) {
      cmat_[i + t * k] = static_cast<double>(cs_[i]);
    }
  }

  // --- TSQR over the projected block, ONE reduction pass: P' = U R in
  // place; the staged columns become the block's orthonormal basis
  // columns u_1..u_m (unit length by construction -- a mutated
  // subdiagonal does NOT rescale them, unlike the one-vector path).
  ++stats_.global_syncs;
  rs_.assign(m * m, S(0));
  const la::BlockViewT<S> panel(q.data() + k * q.ld(), n_, m, q.ld());
  la::tsqr(panel, rs_.data(), m);
  rmat_.assign(m * m, 0.0);
  for (std::size_t i = 0; i < m * m; ++i) {
    rmat_[i] = static_cast<double>(rs_[i]);
  }

  // --- Per-column Hessenberg recovery + the standard commit protocol.
  // With P = [p_1..p_m] (p_t = A^t q_{j0}) and P = Q_k C + U R, the
  // coordinates of p_t in the extended basis {q_0..q_j0, u_1..u_m} are
  // g_t = [C(:,t-1); R(:,t-1)].  Column c of the block is the
  // coordinates of A u_c (u_0 := q_j0); from u_c = (p_c - Q_k C(:,c-1)
  // - sum_{t<c} u_t R(t-1,c-1)) / R(c-1,c-1):
  //
  //   coords(A u_c) = (g_{c+1} - sum_i C(i,c-1) coords(A q_i)
  //                    - sum_{t<c} coords(A u_t) R(t-1,c-1)) / R(c-1,c-1)
  //
  // where coords(A q_i) are the COMMITTED (possibly hook-mutated)
  // Hessenberg columns read back from hmat_ -- so an injected fault
  // propagates into every later column, exactly as the corrupted basis
  // would propagate it on the one-vector path.  All recovery arithmetic
  // is double (the float engine widens C and R once per block).
  const std::size_t ldh = cycle_len_ + 1;
  hraw_.assign(k + m, 0.0);
  for (std::size_t c = 0; c < m; ++c) {
    const std::size_t jg = block_j0_ + c; // global column index
    const std::size_t len = jg + 2;
    const ArnoldiContext ctx{.solve_index = solve_index_, .iteration = jg};

    std::fill(hraw_.begin(), hraw_.end(), 0.0);
    if (c == 0) {
      // A q_j0 = p_1: coordinates are g_1 directly.
      for (std::size_t i = 0; i < k; ++i) hraw_[i] = cmat_[i];
      hraw_[k] = rmat_[0];
    } else {
      for (std::size_t i = 0; i < k; ++i) hraw_[i] = cmat_[i + c * k];
      for (std::size_t t = 0; t <= c; ++t) hraw_[k + t] = rmat_[t + c * m];
      for (std::size_t i = 0; i < k; ++i) {
        const double ci = cmat_[i + (c - 1) * k];
        if (ci == 0.0) continue;
        const double* hi = hmat_.data() + i * ldh;
        for (std::size_t r = 0; r < i + 2; ++r) hraw_[r] -= ci * hi[r];
      }
      for (std::size_t t = 1; t < c; ++t) {
        const double rt = rmat_[(t - 1) + (c - 1) * m];
        if (rt == 0.0) continue;
        const double* ht = hmat_.data() + (block_j0_ + t) * ldh;
        for (std::size_t r = 0; r < k + t + 1; ++r) hraw_[r] -= rt * ht[r];
      }
      const double rdiag = rmat_[(c - 1) + (c - 1) * m];
      for (std::size_t r = 0; r < len; ++r) hraw_[r] /= rdiag;
    }

    // Breakdown scale WITHOUT a global reduction: ||raw column||_2 over
    // the small recovered coordinates stands in for the one-vector
    // path's ||A q_j|| (equal when A u_c lies in the extended span).
    double scale = 0.0;
    for (std::size_t r = 0; r < len; ++r) scale += hraw_[r] * hraw_[r];
    scale = std::sqrt(scale);
    if (!(scale > 0.0)) scale = 1.0;

    // Same hook-event sequence as the one-vector path.
    if (hook_ != nullptr) {
      for (std::size_t i = 0; i <= jg; ++i) {
        hook_->on_projection_coefficient(ctx, i, jg + 1, hraw_[i]);
      }
      if (hook_->abort_requested()) {
        return finish_cycle(/*aborted=*/true, false, false, false, false);
      }
    }
    double hnext = hraw_[jg + 1];
    if (hook_ != nullptr) {
      hook_->on_subdiagonal(ctx, hnext);
      if (hook_->abort_requested()) {
        return finish_cycle(/*aborted=*/true, false, false, false, false);
      }
    }
    hraw_[jg + 1] = hnext;

    for (std::size_t r = 0; r < len; ++r) hcol[r] = static_cast<S>(hraw_[r]);
    const double est = w_->qr.add_column({hcol.data(), len});
    std::copy(hraw_.begin(),
              hraw_.begin() + static_cast<std::ptrdiff_t>(len),
              hmat_.begin() + static_cast<std::ptrdiff_t>(jg * ldh));
    if (history_ != nullptr) history_->push_back(est);
    ++stats_.iterations;
    stats_.residual_norm = est;

    if (opts_.divergence_factor > 0.0 && beta0_ > 0.0 &&
        (!std::isfinite(est) || est > opts_.divergence_factor * beta0_)) {
      if (history_ != nullptr) history_->pop_back();
      --stats_.iterations;
      return finish_cycle(false, false, false, /*diverged=*/true,
                          /*qr_pop_pending=*/true);
    }
    if (hnext <= opts_.breakdown_tol * scale) {
      return finish_cycle(false, /*breakdown=*/true, false, false, false);
    }

    if (hook_ != nullptr) {
      if constexpr (std::is_same_v<S, double>) {
        const ArnoldiIterationView view{
            .basis = q.view(len),
            .h_column = {hraw_.data(), len},
        };
        hook_->on_iteration_end(ctx, view);
      } else {
        if (hook_basis_.rows() != n_ ||
            hook_basis_.capacity() < cycle_len_ + 1) {
          hook_basis_ = la::KrylovBasis(n_, cycle_len_ + 1);
        }
        hook_basis_.clear();
        for (std::size_t col = 0; col < len; ++col) {
          std::span<double> dst = hook_basis_.append();
          const std::span<const S> src = q.col(col);
          for (std::size_t i = 0; i < n_; ++i) {
            dst[i] = static_cast<double>(src[i]);
          }
        }
        const ArnoldiIterationView view{
            .basis = hook_basis_.view(len),
            .h_column = {hraw_.data(), len},
        };
        hook_->on_iteration_end(ctx, view);
      }
      if (hook_->abort_requested()) {
        // Interior block column: the basis columns stay in the arena
        // (later ones are simply never committed); only the projected
        // factorization rolls back.
        if (history_ != nullptr) history_->pop_back();
        --stats_.iterations;
        return finish_cycle(/*aborted=*/true, false, false, false,
                            /*qr_pop_pending=*/true);
      }
    }

    if (abs_target_ > 0.0 && est <= abs_target_) {
      return finish_cycle(false, false, /*converged=*/true, false, false);
    }
    if (w_->qr.size() >= cycle_len_ ||
        stats_.iterations >= opts_.max_iters) {
      // Only reachable at the block's last column (the block was sized
      // to the remaining cycle/budget room).
      return finish_cycle(false, false, false, false, false);
    }
  }
  return false; // block committed; next step begins a new block
}

template <typename S>
bool GmresEngineT<S>::finish_cycle(bool aborted, bool breakdown,
                                   bool converged, bool diverged,
                                   bool qr_pop_pending) {
  dense::HessenbergQrT<S>& qr = w_->qr;
  la::KrylovBasisT<S>& q = w_->arena.basis();
  la::VectorT<S>& z = w_->arena.scratch(2);
  la::VectorT<S>& update = w_->arena.scratch(3);

  // Form the update x += (M^{-1}) Q_k y from the accepted columns.
  if (qr_pop_pending) {
    qr.pop_column();
    stats_.residual_norm = qr.residual_estimate();
  }
  const std::size_t k = qr.size();
  if (k > 0) {
    // The projected least-squares solve is ALWAYS double: r_block() /
    // rhs_block() widen float factors (O(restart^2) work, negligible
    // against the length-n streams that the float plane narrows).
    const auto solve = dense::solve_projected(qr.r_block(), qr.rhs_block(),
                                              opts_.lsq_policy,
                                              opts_.truncation_tol);
    stats_.lsq_effective_rank = solve.effective_rank;
    stats_.lsq_fallback_triggered = solve.fallback_triggered;
    if constexpr (std::is_same_v<S, double>) {
      // update := Q_k y as one gemv over the contiguous block.
      la::gemv(1.0, q.view(k), std::span<const double>(solve.y.data(), k),
               0.0, std::span<double>(update.data(), n_));
      if (opts_.right_precond != nullptr) {
        opts_.right_precond->apply(std::span<const double>(update.data(), n_),
                                   z.span());
        la::axpy(1.0, std::span<const double>(z.data(), n_), x_);
      } else {
        la::axpy(1.0, std::span<const double>(update.data(), n_), x_);
      }
    } else {
      // Narrow the double solution coefficients, then run the length-n
      // combination in the engine's own precision.
      std::vector<S> y(k);
      for (std::size_t i = 0; i < k; ++i) y[i] = static_cast<S>(solve.y[i]);
      la::gemv(S(1), q.view(k), std::span<const S>(y.data(), k), S(0),
               std::span<S>(update.data(), n_));
      la::axpy(S(1), std::span<const S>(update.data(), n_), x_);
      (void)z;
    }
  }

  if (aborted) {
    stats_.status = SolveStatus::AbortedByDetector;
    finished_ = true;
  } else if (diverged) {
    stats_.status = SolveStatus::Diverged;
    finished_ = true;
  } else if (breakdown) {
    stats_.status = SolveStatus::HappyBreakdown;
    finished_ = true;
  } else if (converged) {
    stats_.status = SolveStatus::Converged;
    finished_ = true;
  } else {
    stats_.status = SolveStatus::MaxIterations;
    finished_ = stats_.iterations >= opts_.max_iters;
    if (!finished_) awaiting_residual_ = true; // restart: next cycle
  }
  return finished_;
}

// The two data planes: the reliable double engine and the mixed-precision
// float inner engine.
template class GmresEngineT<double>;
template class GmresEngineT<float>;

bool step_with_apply(const LinearOperator& A, GmresEngine& engine) {
  if (engine.awaiting_residual()) {
    A.apply(engine.residual_operand(), engine.residual_target());
    return engine.start_cycle();
  }
  engine.begin_iteration();
  A.apply(engine.direction(), engine.v_target());
  return engine.advance();
}

void drive_to_completion(const LinearOperator& A, GmresEngine& engine) {
  while (!engine.finished()) step_with_apply(A, engine);
}

GmresStats gmres_in_place(const LinearOperator& A, std::span<const double> b,
                          std::span<double> x, const GmresOptions& opts,
                          ArnoldiHook* hook, std::size_t solve_index,
                          KrylovWorkspace* ws,
                          std::vector<double>* residual_history) {
  KrylovWorkspace local;
  KrylovWorkspace& w = (ws != nullptr) ? *ws : local;
  GmresEngine engine(A, b, x, opts, hook, solve_index, w, residual_history);
  drive_to_completion(A, engine);
  return engine.stats();
}

GmresResult gmres(const LinearOperator& A, const la::Vector& b,
                  const la::Vector& x0, const GmresOptions& opts,
                  ArnoldiHook* hook, std::size_t solve_index,
                  KrylovWorkspace* ws) {
  GmresResult result;
  result.x = x0;
  result.residual_history.reserve(opts.max_iters);
  const GmresStats stats =
      gmres_in_place(A, b.span(), result.x.span(), opts, hook, solve_index,
                     ws, &result.residual_history);
  result.status = stats.status;
  result.iterations = stats.iterations;
  result.residual_norm = stats.residual_norm;
  result.lsq_effective_rank = stats.lsq_effective_rank;
  result.lsq_fallback_triggered = stats.lsq_fallback_triggered;
  result.global_syncs = stats.global_syncs;
  return result;
}

GmresResult gmres(const sparse::CsrMatrix& A, const la::Vector& b,
                  const GmresOptions& opts, ArnoldiHook* hook) {
  const CsrOperator op(A);
  return gmres(op, b, la::Vector(A.cols()), opts, hook, 0);
}

} // namespace sdcgmres::krylov
