#include "krylov/gmres.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "dense/hessenberg_qr.hpp"
#include "la/blas1.hpp"
#include "la/blas2.hpp"
#include "la/krylov_basis.hpp"

namespace sdcgmres::krylov {

namespace {

/// One restart cycle of GMRES.  Returns true when the whole solve should
/// stop (converged / breakdown / abort); false means "restart and go on".
struct CycleOutcome {
  bool stop = false;
  SolveStatus status = SolveStatus::MaxIterations;
};

CycleOutcome run_cycle(const LinearOperator& A, std::span<const double> b,
                       std::span<double> x, const GmresOptions& opts,
                       std::size_t cycle_len, double abs_target,
                       ArnoldiHook* hook, std::size_t solve_index,
                       KrylovWorkspace& w, GmresStats& stats,
                       std::vector<double>* history) {
  CycleOutcome outcome;
  const std::size_t n = A.rows();

  // All per-cycle storage is checked out of the workspace; with a reused
  // workspace of matching shape nothing below touches the heap.
  la::Vector& r = w.arena.scratch(0);      // residual
  la::Vector& v = w.arena.scratch(1);      // Arnoldi candidate
  la::Vector& z = w.arena.scratch(2);      // preconditioned direction
  la::Vector& update = w.arena.scratch(3); // Q_k y at cycle end
  la::KrylovBasis& q = w.arena.basis();
  std::vector<double>& hcol = w.arena.h_column();
  std::fill(hcol.begin(), hcol.begin() + static_cast<std::ptrdiff_t>(cycle_len + 2), 0.0);

  // Reliable residual at cycle start: r = b - A*x.
  A.apply(x, r.span());
  la::waxpby(1.0, b, -1.0, r.span(), r.span());
  const double beta = la::nrm2(r);
  stats.residual_norm = beta;
  if (beta == 0.0 || (abs_target > 0.0 && beta <= abs_target)) {
    outcome.stop = true;
    outcome.status = SolveStatus::Converged;
    return outcome;
  }
  if (!std::isfinite(beta)) {
    // A non-finite iterate cannot improve; report and stop.
    outcome.stop = true;
    outcome.status = SolveStatus::MaxIterations;
    return outcome;
  }

  // Contiguous column-major basis arena: the whole cycle's basis lives in
  // one buffer so orthogonalization runs as fused block kernels.
  q.clear();
  q.append(r);
  la::scal(1.0 / beta, q.col(0));

  dense::HessenbergQr& qr = w.qr;
  qr.reset(cycle_len, beta);

  bool aborted = false;
  bool breakdown = false;
  bool converged = false;
  bool qr_pop_pending = false;
  while (qr.size() < cycle_len && stats.iterations < opts.max_iters) {
    const std::size_t j = qr.size();
    const ArnoldiContext ctx{.solve_index = solve_index, .iteration = j};
    if (hook != nullptr) hook->on_iteration_begin(ctx);

    // v := A q_j (right-preconditioned: v := A M^{-1} q_j).  Both the
    // preconditioner and the operator run span-to-span out of the arena.
    if (opts.right_precond != nullptr) {
      opts.right_precond->apply(q.col(j), z.span());
      A.apply(z.span(), v.span());
    } else {
      A.apply(q.col(j), v.span());
    }
    if (hook != nullptr) hook->on_matvec_result(ctx, v);
    const double w_norm = la::nrm2(v); // scale reference for breakdown test

    orthogonalize(opts.ortho, q, j + 1, v, hcol, hook, ctx);
    if (hook != nullptr && hook->abort_requested()) {
      // Drop the tainted column entirely; solve with the j columns that
      // were accepted before the detector fired.
      aborted = true;
      break;
    }

    double hnext = la::nrm2(v);
    if (hook != nullptr) hook->on_subdiagonal(ctx, hnext);
    if (hook != nullptr && hook->abort_requested()) {
      aborted = true;
      break;
    }

    hcol[j + 1] = hnext;
    const double est = qr.add_column({hcol.data(), j + 2});
    if (history != nullptr) history->push_back(est);
    ++stats.iterations;
    stats.residual_norm = est;

    if (hnext <= opts.breakdown_tol * (w_norm > 0.0 ? w_norm : 1.0)) {
      breakdown = true;
      break;
    }
    q.append(v.span());
    la::scal(1.0 / hnext, q.col(j + 1));

    if (hook != nullptr) {
      const ArnoldiIterationView view{
          .basis = q.view(j + 2),
          .h_column = {hcol.data(), j + 2},
      };
      hook->on_iteration_end(ctx, view);
      if (hook->abort_requested()) {
        // The whole-iteration check rejected this column (Online-ABFT
        // style); drop it and stop, as for coefficient-level aborts.
        aborted = true;
        q.pop_back();
        // The column is already in the QR factorization; the projected
        // solve below must not use it.
        if (history != nullptr) history->pop_back();
        --stats.iterations;
        qr_pop_pending = true;
        break;
      }
    }

    if (abs_target > 0.0 && est <= abs_target) {
      converged = true;
      break;
    }
  }

  // Form the update x += (M^{-1}) Q_k y from the accepted columns.
  if (qr_pop_pending) {
    qr.pop_column();
    stats.residual_norm = qr.residual_estimate();
  }
  const std::size_t k = qr.size();
  if (k > 0) {
    const auto solve = dense::solve_projected(qr.r_block(), qr.rhs_block(),
                                              opts.lsq_policy,
                                              opts.truncation_tol);
    stats.lsq_effective_rank = solve.effective_rank;
    stats.lsq_fallback_triggered = solve.fallback_triggered;
    // update := Q_k y as one gemv over the contiguous block.
    la::gemv(1.0, q.view(k), std::span<const double>(solve.y.data(), k), 0.0,
             std::span<double>(update.data(), n));
    if (opts.right_precond != nullptr) {
      opts.right_precond->apply(std::span<const double>(update.data(), n),
                                z.span());
      la::axpy(1.0, std::span<const double>(z.data(), n), x);
    } else {
      la::axpy(1.0, std::span<const double>(update.data(), n), x);
    }
  }

  if (aborted) {
    outcome.stop = true;
    outcome.status = SolveStatus::AbortedByDetector;
  } else if (breakdown) {
    outcome.stop = true;
    outcome.status = SolveStatus::HappyBreakdown;
  } else if (converged) {
    outcome.stop = true;
    outcome.status = SolveStatus::Converged;
  } else {
    outcome.stop = stats.iterations >= opts.max_iters;
    outcome.status = SolveStatus::MaxIterations;
  }
  return outcome;
}

} // namespace

GmresStats gmres_in_place(const LinearOperator& A, std::span<const double> b,
                          std::span<double> x, const GmresOptions& opts,
                          ArnoldiHook* hook, std::size_t solve_index,
                          KrylovWorkspace* ws,
                          std::vector<double>* residual_history) {
  if (A.rows() != A.cols()) {
    throw std::invalid_argument("gmres: operator must be square");
  }
  if (b.size() != A.rows() || x.size() != A.cols()) {
    throw std::invalid_argument("gmres: vector size mismatch");
  }
  if (opts.max_iters == 0) {
    throw std::invalid_argument("gmres: max_iters must be positive");
  }

  GmresStats stats;

  const double bnorm = la::nrm2(b);
  const double abs_target =
      (opts.tol > 0.0) ? opts.tol * (bnorm > 0.0 ? bnorm : 1.0) : 0.0;
  const std::size_t cycle_len =
      (opts.restart == 0) ? opts.max_iters : opts.restart;

  KrylovWorkspace local;
  KrylovWorkspace& w = (ws != nullptr) ? *ws : local;
  w.arena.reserve(A.rows(), cycle_len);

  if (hook != nullptr) hook->on_solve_begin(solve_index);
  while (true) {
    const CycleOutcome outcome =
        run_cycle(A, b, x, opts, cycle_len, abs_target, hook, solve_index, w,
                  stats, residual_history);
    stats.status = outcome.status;
    if (outcome.stop) break;
  }
  return stats;
}

GmresResult gmres(const LinearOperator& A, const la::Vector& b,
                  const la::Vector& x0, const GmresOptions& opts,
                  ArnoldiHook* hook, std::size_t solve_index,
                  KrylovWorkspace* ws) {
  GmresResult result;
  result.x = x0;
  result.residual_history.reserve(opts.max_iters);
  const GmresStats stats =
      gmres_in_place(A, b.span(), result.x.span(), opts, hook, solve_index,
                     ws, &result.residual_history);
  result.status = stats.status;
  result.iterations = stats.iterations;
  result.residual_norm = stats.residual_norm;
  result.lsq_effective_rank = stats.lsq_effective_rank;
  result.lsq_fallback_triggered = stats.lsq_fallback_triggered;
  return result;
}

GmresResult gmres(const sparse::CsrMatrix& A, const la::Vector& b,
                  const GmresOptions& opts, ArnoldiHook* hook) {
  const CsrOperator op(A);
  return gmres(op, b, la::Vector(A.cols()), opts, hook, 0);
}

} // namespace sdcgmres::krylov
