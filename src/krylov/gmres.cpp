#include "krylov/gmres.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "dense/hessenberg_qr.hpp"
#include "la/blas1.hpp"
#include "la/blas2.hpp"
#include "la/krylov_basis.hpp"

namespace sdcgmres::krylov {

// ---------------------------------------------------------------------------
// GmresEngine: the one GMRES implementation.  gmres_in_place() below drives
// it straight through; the FT-GMRES batch driver interleaves many engines
// (one per lockstep instance) so their products fuse into block applies.
// Any change to the iteration math happens HERE and nowhere else.
//
// Workspace layout (all checked out of the bound KrylovWorkspace; with a
// reused workspace of matching shape nothing on the solve path touches the
// heap): scratch(0) = residual r, scratch(1) = Arnoldi candidate v,
// scratch(2) = preconditioned direction z, scratch(3) = Q_k y at cycle end.
// ---------------------------------------------------------------------------

template <typename S>
GmresEngineT<S>::GmresEngineT(std::size_t rows, std::size_t cols,
                              std::span<const S> b, std::span<S> x,
                              const GmresOptions& opts, ArnoldiHook* hook,
                              std::size_t solve_index, KrylovWorkspaceT<S>& ws,
                              std::vector<double>* residual_history)
    : b_(b), x_(x), opts_(opts), hook_(hook), solve_index_(solve_index),
      w_(&ws), history_(residual_history), n_(rows) {
  if (rows != cols) {
    throw std::invalid_argument("gmres: operator must be square");
  }
  if (b.size() != rows || x.size() != cols) {
    throw std::invalid_argument("gmres: vector size mismatch");
  }
  if (opts.max_iters == 0) {
    throw std::invalid_argument("gmres: max_iters must be positive");
  }
  if constexpr (!std::is_same_v<S, double>) {
    if (opts.right_precond != nullptr) {
      throw std::invalid_argument(
          "gmres: the float engine does not support right preconditioning");
    }
  }

  const double bnorm = static_cast<double>(la::nrm2(b_));
  abs_target_ =
      (opts_.tol > 0.0) ? opts_.tol * (bnorm > 0.0 ? bnorm : 1.0) : 0.0;
  cycle_len_ = (opts_.restart == 0) ? opts_.max_iters : opts_.restart;
  w_->arena.reserve(n_, cycle_len_);

  if (hook_ != nullptr) hook_->on_solve_begin(solve_index_);
}

template <typename S>
std::span<S> GmresEngineT<S>::residual_target() {
  return w_->arena.scratch(0).span();
}

template <typename S>
bool GmresEngineT<S>::start_cycle() {
  ++stats_.operator_applies; // the caller-provided A*x this call consumes

  la::VectorT<S>& r = w_->arena.scratch(0);
  std::vector<S>& hcol = w_->arena.h_column();
  std::fill(hcol.begin(),
            hcol.begin() + static_cast<std::ptrdiff_t>(cycle_len_ + 2), S(0));

  // Reliable residual at cycle start: r = b - A*x (A*x is in r already).
  la::waxpby(S(1), b_, S(-1), r.span(), r.span());
  const double beta = static_cast<double>(la::nrm2(std::span<const S>(r.span())));
  stats_.residual_norm = beta;
  if (beta0_ < 0.0) beta0_ = beta; // the solve's initial residual
  if (beta == 0.0 || (abs_target_ > 0.0 && beta <= abs_target_)) {
    stats_.status = SolveStatus::Converged;
    finished_ = true;
    return true;
  }
  if (!std::isfinite(beta)) {
    // A non-finite iterate cannot improve; report and stop.
    stats_.status = SolveStatus::MaxIterations;
    finished_ = true;
    return true;
  }

  // Contiguous column-major basis arena: the whole cycle's basis lives in
  // one buffer so orthogonalization runs as fused block kernels.
  la::KrylovBasisT<S>& q = w_->arena.basis();
  q.clear();
  q.append(r);
  la::scal(static_cast<S>(1.0 / beta), q.col(0));

  w_->qr.reset(cycle_len_, static_cast<S>(beta));
  awaiting_residual_ = false;
  return false;
}

template <typename S>
void GmresEngineT<S>::begin_iteration() {
  const std::size_t j = w_->qr.size();
  const ArnoldiContext ctx{.solve_index = solve_index_, .iteration = j};
  if (hook_ != nullptr) hook_->on_iteration_begin(ctx);

  // Right-preconditioned: the pending product is A * (M^{-1} q_j); the
  // preconditioner runs span-to-span out of the arena, here and now.
  // (Double engine only; the float constructor rejects right_precond.)
  if constexpr (std::is_same_v<S, double>) {
    if (opts_.right_precond != nullptr) {
      opts_.right_precond->apply(w_->arena.basis().col(j),
                                 w_->arena.scratch(2).span());
    }
  }
}

template <typename S>
std::span<const S> GmresEngineT<S>::direction() const {
  if constexpr (std::is_same_v<S, double>) {
    if (opts_.right_precond != nullptr) {
      return w_->arena.scratch(2).span();
    }
  }
  return w_->arena.basis().col(w_->qr.size());
}

template <typename S>
std::span<S> GmresEngineT<S>::v_target() {
  return w_->arena.scratch(1).span();
}

template <typename S>
bool GmresEngineT<S>::advance() {
  ++stats_.operator_applies; // the caller-provided A*direction()

  const std::size_t j = w_->qr.size();
  la::KrylovBasisT<S>& q = w_->arena.basis();
  la::VectorT<S>& v = w_->arena.scratch(1);
  std::vector<S>& hcol = w_->arena.h_column();
  const ArnoldiContext ctx{.solve_index = solve_index_, .iteration = j};

  if (hook_ != nullptr) {
    if constexpr (std::is_same_v<S, double>) {
      hook_->on_matvec_result(ctx, v);
    } else {
      // Widen the float candidate for the double-typed hook, then narrow
      // the (possibly mutated) copy back: faults injected at the matvec
      // site land in the float data plane.
      hook_vec_.resize(n_);
      for (std::size_t i = 0; i < n_; ++i) {
        hook_vec_[i] = static_cast<double>(v[i]);
      }
      hook_->on_matvec_result(ctx, hook_vec_);
      for (std::size_t i = 0; i < n_; ++i) {
        v[i] = static_cast<S>(hook_vec_[i]);
      }
    }
  }
  const double w_norm = static_cast<double>(
      la::nrm2(std::span<const S>(v.span()))); // breakdown scale reference

  orthogonalize(opts_.ortho, q, j + 1, v, hcol, hook_, ctx);
  if (hook_ != nullptr && hook_->abort_requested()) {
    // Drop the tainted column entirely; solve with the j columns that
    // were accepted before the detector fired.
    return finish_cycle(/*aborted=*/true, false, false, false, false);
  }

  double hnext = static_cast<double>(la::nrm2(std::span<const S>(v.span())));
  if (hook_ != nullptr) hook_->on_subdiagonal(ctx, hnext);
  if (hook_ != nullptr && hook_->abort_requested()) {
    return finish_cycle(/*aborted=*/true, false, false, false, false);
  }

  hcol[j + 1] = static_cast<S>(hnext);
  const double est = w_->qr.add_column({hcol.data(), j + 2});
  if (history_ != nullptr) history_->push_back(est);
  ++stats_.iterations;
  stats_.residual_norm = est;

  // --- Divergence guard: a least-squares estimate blowing past the
  // initial residual (or going non-finite) means the projected problem is
  // garbage -- in FT-GMRES, typically a corrupted Hessenberg column.
  // Drop the exploding column and return the pre-explosion iterate, like
  // a detector abort but guard-triggered.
  if (opts_.divergence_factor > 0.0 && beta0_ > 0.0 &&
      (!std::isfinite(est) || est > opts_.divergence_factor * beta0_)) {
    if (history_ != nullptr) history_->pop_back();
    --stats_.iterations;
    return finish_cycle(false, false, false, /*diverged=*/true,
                        /*qr_pop_pending=*/true);
  }

  if (hnext <= opts_.breakdown_tol * (w_norm > 0.0 ? w_norm : 1.0)) {
    return finish_cycle(false, /*breakdown=*/true, false, false, false);
  }
  q.append(v.span());
  la::scal(static_cast<S>(1.0 / hnext), q.col(j + 1));

  if (hook_ != nullptr) {
    if constexpr (std::is_same_v<S, double>) {
      const ArnoldiIterationView view{
          .basis = q.view(j + 2),
          .h_column = {hcol.data(), j + 2},
      };
      hook_->on_iteration_end(ctx, view);
    } else {
      // Full widened mirror of the iteration state for the double-typed
      // whole-iteration checks (Online-ABFT).  Rebuilt per event --
      // correctness over speed; only paid when a hook is installed.
      if (hook_basis_.rows() != n_ || hook_basis_.capacity() < cycle_len_ + 1) {
        hook_basis_ = la::KrylovBasis(n_, cycle_len_ + 1);
      }
      hook_basis_.clear();
      for (std::size_t c = 0; c < j + 2; ++c) {
        std::span<double> dst = hook_basis_.append();
        const std::span<const S> src = q.col(c);
        for (std::size_t i = 0; i < n_; ++i) {
          dst[i] = static_cast<double>(src[i]);
        }
      }
      hook_hcol_.assign(j + 2, 0.0);
      for (std::size_t i = 0; i < j + 2; ++i) {
        hook_hcol_[i] = static_cast<double>(hcol[i]);
      }
      const ArnoldiIterationView view{
          .basis = hook_basis_.view(j + 2),
          .h_column = {hook_hcol_.data(), j + 2},
      };
      hook_->on_iteration_end(ctx, view);
    }
    if (hook_->abort_requested()) {
      // The whole-iteration check rejected this column (Online-ABFT
      // style); drop it and stop, as for coefficient-level aborts.
      q.pop_back();
      // The column is already in the QR factorization; the projected
      // solve below must not use it.
      if (history_ != nullptr) history_->pop_back();
      --stats_.iterations;
      return finish_cycle(/*aborted=*/true, false, false, false,
                          /*qr_pop_pending=*/true);
    }
  }

  if (abs_target_ > 0.0 && est <= abs_target_) {
    return finish_cycle(false, false, /*converged=*/true, false, false);
  }
  if (w_->qr.size() >= cycle_len_ || stats_.iterations >= opts_.max_iters) {
    // Cycle exhausted: restart (or stop on a spent budget).
    return finish_cycle(false, false, false, false, false);
  }
  return false; // next step: begin_iteration()
}

template <typename S>
bool GmresEngineT<S>::finish_cycle(bool aborted, bool breakdown,
                                   bool converged, bool diverged,
                                   bool qr_pop_pending) {
  dense::HessenbergQrT<S>& qr = w_->qr;
  la::KrylovBasisT<S>& q = w_->arena.basis();
  la::VectorT<S>& z = w_->arena.scratch(2);
  la::VectorT<S>& update = w_->arena.scratch(3);

  // Form the update x += (M^{-1}) Q_k y from the accepted columns.
  if (qr_pop_pending) {
    qr.pop_column();
    stats_.residual_norm = qr.residual_estimate();
  }
  const std::size_t k = qr.size();
  if (k > 0) {
    // The projected least-squares solve is ALWAYS double: r_block() /
    // rhs_block() widen float factors (O(restart^2) work, negligible
    // against the length-n streams that the float plane narrows).
    const auto solve = dense::solve_projected(qr.r_block(), qr.rhs_block(),
                                              opts_.lsq_policy,
                                              opts_.truncation_tol);
    stats_.lsq_effective_rank = solve.effective_rank;
    stats_.lsq_fallback_triggered = solve.fallback_triggered;
    if constexpr (std::is_same_v<S, double>) {
      // update := Q_k y as one gemv over the contiguous block.
      la::gemv(1.0, q.view(k), std::span<const double>(solve.y.data(), k),
               0.0, std::span<double>(update.data(), n_));
      if (opts_.right_precond != nullptr) {
        opts_.right_precond->apply(std::span<const double>(update.data(), n_),
                                   z.span());
        la::axpy(1.0, std::span<const double>(z.data(), n_), x_);
      } else {
        la::axpy(1.0, std::span<const double>(update.data(), n_), x_);
      }
    } else {
      // Narrow the double solution coefficients, then run the length-n
      // combination in the engine's own precision.
      std::vector<S> y(k);
      for (std::size_t i = 0; i < k; ++i) y[i] = static_cast<S>(solve.y[i]);
      la::gemv(S(1), q.view(k), std::span<const S>(y.data(), k), S(0),
               std::span<S>(update.data(), n_));
      la::axpy(S(1), std::span<const S>(update.data(), n_), x_);
      (void)z;
    }
  }

  if (aborted) {
    stats_.status = SolveStatus::AbortedByDetector;
    finished_ = true;
  } else if (diverged) {
    stats_.status = SolveStatus::Diverged;
    finished_ = true;
  } else if (breakdown) {
    stats_.status = SolveStatus::HappyBreakdown;
    finished_ = true;
  } else if (converged) {
    stats_.status = SolveStatus::Converged;
    finished_ = true;
  } else {
    stats_.status = SolveStatus::MaxIterations;
    finished_ = stats_.iterations >= opts_.max_iters;
    if (!finished_) awaiting_residual_ = true; // restart: next cycle
  }
  return finished_;
}

// The two data planes: the reliable double engine and the mixed-precision
// float inner engine.
template class GmresEngineT<double>;
template class GmresEngineT<float>;

bool step_with_apply(const LinearOperator& A, GmresEngine& engine) {
  if (engine.awaiting_residual()) {
    A.apply(engine.residual_operand(), engine.residual_target());
    return engine.start_cycle();
  }
  engine.begin_iteration();
  A.apply(engine.direction(), engine.v_target());
  return engine.advance();
}

void drive_to_completion(const LinearOperator& A, GmresEngine& engine) {
  while (!engine.finished()) step_with_apply(A, engine);
}

GmresStats gmres_in_place(const LinearOperator& A, std::span<const double> b,
                          std::span<double> x, const GmresOptions& opts,
                          ArnoldiHook* hook, std::size_t solve_index,
                          KrylovWorkspace* ws,
                          std::vector<double>* residual_history) {
  KrylovWorkspace local;
  KrylovWorkspace& w = (ws != nullptr) ? *ws : local;
  GmresEngine engine(A, b, x, opts, hook, solve_index, w, residual_history);
  drive_to_completion(A, engine);
  return engine.stats();
}

GmresResult gmres(const LinearOperator& A, const la::Vector& b,
                  const la::Vector& x0, const GmresOptions& opts,
                  ArnoldiHook* hook, std::size_t solve_index,
                  KrylovWorkspace* ws) {
  GmresResult result;
  result.x = x0;
  result.residual_history.reserve(opts.max_iters);
  const GmresStats stats =
      gmres_in_place(A, b.span(), result.x.span(), opts, hook, solve_index,
                     ws, &result.residual_history);
  result.status = stats.status;
  result.iterations = stats.iterations;
  result.residual_norm = stats.residual_norm;
  result.lsq_effective_rank = stats.lsq_effective_rank;
  result.lsq_fallback_triggered = stats.lsq_fallback_triggered;
  return result;
}

GmresResult gmres(const sparse::CsrMatrix& A, const la::Vector& b,
                  const GmresOptions& opts, ArnoldiHook* hook) {
  const CsrOperator op(A);
  return gmres(op, b, la::Vector(A.cols()), opts, hook, 0);
}

} // namespace sdcgmres::krylov
