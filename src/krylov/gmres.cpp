#include "krylov/gmres.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "dense/hessenberg_qr.hpp"
#include "la/blas1.hpp"
#include "la/blas2.hpp"
#include "la/krylov_basis.hpp"

namespace sdcgmres::krylov {

// ---------------------------------------------------------------------------
// GmresEngine: the one GMRES implementation.  gmres_in_place() below drives
// it straight through; the FT-GMRES batch driver interleaves many engines
// (one per lockstep instance) so their products fuse into block applies.
// Any change to the iteration math happens HERE and nowhere else.
//
// Workspace layout (all checked out of the bound KrylovWorkspace; with a
// reused workspace of matching shape nothing on the solve path touches the
// heap): scratch(0) = residual r, scratch(1) = Arnoldi candidate v,
// scratch(2) = preconditioned direction z, scratch(3) = Q_k y at cycle end.
// ---------------------------------------------------------------------------

GmresEngine::GmresEngine(const LinearOperator& A, std::span<const double> b,
                         std::span<double> x, const GmresOptions& opts,
                         ArnoldiHook* hook, std::size_t solve_index,
                         KrylovWorkspace& ws,
                         std::vector<double>* residual_history)
    : a_(&A), b_(b), x_(x), opts_(opts), hook_(hook),
      solve_index_(solve_index), w_(&ws), history_(residual_history),
      n_(A.rows()) {
  if (A.rows() != A.cols()) {
    throw std::invalid_argument("gmres: operator must be square");
  }
  if (b.size() != A.rows() || x.size() != A.cols()) {
    throw std::invalid_argument("gmres: vector size mismatch");
  }
  if (opts.max_iters == 0) {
    throw std::invalid_argument("gmres: max_iters must be positive");
  }

  const double bnorm = la::nrm2(b_);
  abs_target_ =
      (opts_.tol > 0.0) ? opts_.tol * (bnorm > 0.0 ? bnorm : 1.0) : 0.0;
  cycle_len_ = (opts_.restart == 0) ? opts_.max_iters : opts_.restart;
  w_->arena.reserve(n_, cycle_len_);

  if (hook_ != nullptr) hook_->on_solve_begin(solve_index_);
}

std::span<double> GmresEngine::residual_target() {
  return w_->arena.scratch(0).span();
}

bool GmresEngine::start_cycle() {
  ++stats_.operator_applies; // the caller-provided A*x this call consumes

  la::Vector& r = w_->arena.scratch(0);
  std::vector<double>& hcol = w_->arena.h_column();
  std::fill(hcol.begin(),
            hcol.begin() + static_cast<std::ptrdiff_t>(cycle_len_ + 2), 0.0);

  // Reliable residual at cycle start: r = b - A*x (A*x is in r already).
  la::waxpby(1.0, b_, -1.0, r.span(), r.span());
  const double beta = la::nrm2(r);
  stats_.residual_norm = beta;
  if (beta0_ < 0.0) beta0_ = beta; // the solve's initial residual
  if (beta == 0.0 || (abs_target_ > 0.0 && beta <= abs_target_)) {
    stats_.status = SolveStatus::Converged;
    finished_ = true;
    return true;
  }
  if (!std::isfinite(beta)) {
    // A non-finite iterate cannot improve; report and stop.
    stats_.status = SolveStatus::MaxIterations;
    finished_ = true;
    return true;
  }

  // Contiguous column-major basis arena: the whole cycle's basis lives in
  // one buffer so orthogonalization runs as fused block kernels.
  la::KrylovBasis& q = w_->arena.basis();
  q.clear();
  q.append(r);
  la::scal(1.0 / beta, q.col(0));

  w_->qr.reset(cycle_len_, beta);
  awaiting_residual_ = false;
  return false;
}

void GmresEngine::begin_iteration() {
  const std::size_t j = w_->qr.size();
  const ArnoldiContext ctx{.solve_index = solve_index_, .iteration = j};
  if (hook_ != nullptr) hook_->on_iteration_begin(ctx);

  // Right-preconditioned: the pending product is A * (M^{-1} q_j); the
  // preconditioner runs span-to-span out of the arena, here and now.
  if (opts_.right_precond != nullptr) {
    opts_.right_precond->apply(w_->arena.basis().col(j),
                               w_->arena.scratch(2).span());
  }
}

std::span<const double> GmresEngine::direction() const {
  if (opts_.right_precond != nullptr) {
    return w_->arena.scratch(2).span();
  }
  return w_->arena.basis().col(w_->qr.size());
}

std::span<double> GmresEngine::v_target() {
  return w_->arena.scratch(1).span();
}

bool GmresEngine::advance() {
  ++stats_.operator_applies; // the caller-provided A*direction()

  const std::size_t j = w_->qr.size();
  la::KrylovBasis& q = w_->arena.basis();
  la::Vector& v = w_->arena.scratch(1);
  std::vector<double>& hcol = w_->arena.h_column();
  const ArnoldiContext ctx{.solve_index = solve_index_, .iteration = j};

  if (hook_ != nullptr) hook_->on_matvec_result(ctx, v);
  const double w_norm = la::nrm2(v); // scale reference for breakdown test

  orthogonalize(opts_.ortho, q, j + 1, v, hcol, hook_, ctx);
  if (hook_ != nullptr && hook_->abort_requested()) {
    // Drop the tainted column entirely; solve with the j columns that
    // were accepted before the detector fired.
    return finish_cycle(/*aborted=*/true, false, false, false, false);
  }

  double hnext = la::nrm2(v);
  if (hook_ != nullptr) hook_->on_subdiagonal(ctx, hnext);
  if (hook_ != nullptr && hook_->abort_requested()) {
    return finish_cycle(/*aborted=*/true, false, false, false, false);
  }

  hcol[j + 1] = hnext;
  const double est = w_->qr.add_column({hcol.data(), j + 2});
  if (history_ != nullptr) history_->push_back(est);
  ++stats_.iterations;
  stats_.residual_norm = est;

  // --- Divergence guard: a least-squares estimate blowing past the
  // initial residual (or going non-finite) means the projected problem is
  // garbage -- in FT-GMRES, typically a corrupted Hessenberg column.
  // Drop the exploding column and return the pre-explosion iterate, like
  // a detector abort but guard-triggered.
  if (opts_.divergence_factor > 0.0 && beta0_ > 0.0 &&
      (!std::isfinite(est) || est > opts_.divergence_factor * beta0_)) {
    if (history_ != nullptr) history_->pop_back();
    --stats_.iterations;
    return finish_cycle(false, false, false, /*diverged=*/true,
                        /*qr_pop_pending=*/true);
  }

  if (hnext <= opts_.breakdown_tol * (w_norm > 0.0 ? w_norm : 1.0)) {
    return finish_cycle(false, /*breakdown=*/true, false, false, false);
  }
  q.append(v.span());
  la::scal(1.0 / hnext, q.col(j + 1));

  if (hook_ != nullptr) {
    const ArnoldiIterationView view{
        .basis = q.view(j + 2),
        .h_column = {hcol.data(), j + 2},
    };
    hook_->on_iteration_end(ctx, view);
    if (hook_->abort_requested()) {
      // The whole-iteration check rejected this column (Online-ABFT
      // style); drop it and stop, as for coefficient-level aborts.
      q.pop_back();
      // The column is already in the QR factorization; the projected
      // solve below must not use it.
      if (history_ != nullptr) history_->pop_back();
      --stats_.iterations;
      return finish_cycle(/*aborted=*/true, false, false, false,
                          /*qr_pop_pending=*/true);
    }
  }

  if (abs_target_ > 0.0 && est <= abs_target_) {
    return finish_cycle(false, false, /*converged=*/true, false, false);
  }
  if (w_->qr.size() >= cycle_len_ || stats_.iterations >= opts_.max_iters) {
    // Cycle exhausted: restart (or stop on a spent budget).
    return finish_cycle(false, false, false, false, false);
  }
  return false; // next step: begin_iteration()
}

bool GmresEngine::finish_cycle(bool aborted, bool breakdown, bool converged,
                               bool diverged, bool qr_pop_pending) {
  dense::HessenbergQr& qr = w_->qr;
  la::KrylovBasis& q = w_->arena.basis();
  la::Vector& z = w_->arena.scratch(2);
  la::Vector& update = w_->arena.scratch(3);

  // Form the update x += (M^{-1}) Q_k y from the accepted columns.
  if (qr_pop_pending) {
    qr.pop_column();
    stats_.residual_norm = qr.residual_estimate();
  }
  const std::size_t k = qr.size();
  if (k > 0) {
    const auto solve = dense::solve_projected(qr.r_block(), qr.rhs_block(),
                                              opts_.lsq_policy,
                                              opts_.truncation_tol);
    stats_.lsq_effective_rank = solve.effective_rank;
    stats_.lsq_fallback_triggered = solve.fallback_triggered;
    // update := Q_k y as one gemv over the contiguous block.
    la::gemv(1.0, q.view(k), std::span<const double>(solve.y.data(), k), 0.0,
             std::span<double>(update.data(), n_));
    if (opts_.right_precond != nullptr) {
      opts_.right_precond->apply(std::span<const double>(update.data(), n_),
                                 z.span());
      la::axpy(1.0, std::span<const double>(z.data(), n_), x_);
    } else {
      la::axpy(1.0, std::span<const double>(update.data(), n_), x_);
    }
  }

  if (aborted) {
    stats_.status = SolveStatus::AbortedByDetector;
    finished_ = true;
  } else if (diverged) {
    stats_.status = SolveStatus::Diverged;
    finished_ = true;
  } else if (breakdown) {
    stats_.status = SolveStatus::HappyBreakdown;
    finished_ = true;
  } else if (converged) {
    stats_.status = SolveStatus::Converged;
    finished_ = true;
  } else {
    stats_.status = SolveStatus::MaxIterations;
    finished_ = stats_.iterations >= opts_.max_iters;
    if (!finished_) awaiting_residual_ = true; // restart: next cycle
  }
  return finished_;
}

bool step_with_apply(const LinearOperator& A, GmresEngine& engine) {
  if (engine.awaiting_residual()) {
    A.apply(engine.residual_operand(), engine.residual_target());
    return engine.start_cycle();
  }
  engine.begin_iteration();
  A.apply(engine.direction(), engine.v_target());
  return engine.advance();
}

void drive_to_completion(const LinearOperator& A, GmresEngine& engine) {
  while (!engine.finished()) step_with_apply(A, engine);
}

GmresStats gmres_in_place(const LinearOperator& A, std::span<const double> b,
                          std::span<double> x, const GmresOptions& opts,
                          ArnoldiHook* hook, std::size_t solve_index,
                          KrylovWorkspace* ws,
                          std::vector<double>* residual_history) {
  KrylovWorkspace local;
  KrylovWorkspace& w = (ws != nullptr) ? *ws : local;
  GmresEngine engine(A, b, x, opts, hook, solve_index, w, residual_history);
  drive_to_completion(A, engine);
  return engine.stats();
}

GmresResult gmres(const LinearOperator& A, const la::Vector& b,
                  const la::Vector& x0, const GmresOptions& opts,
                  ArnoldiHook* hook, std::size_t solve_index,
                  KrylovWorkspace* ws) {
  GmresResult result;
  result.x = x0;
  result.residual_history.reserve(opts.max_iters);
  const GmresStats stats =
      gmres_in_place(A, b.span(), result.x.span(), opts, hook, solve_index,
                     ws, &result.residual_history);
  result.status = stats.status;
  result.iterations = stats.iterations;
  result.residual_norm = stats.residual_norm;
  result.lsq_effective_rank = stats.lsq_effective_rank;
  result.lsq_fallback_triggered = stats.lsq_fallback_triggered;
  return result;
}

GmresResult gmres(const sparse::CsrMatrix& A, const la::Vector& b,
                  const GmresOptions& opts, ArnoldiHook* hook) {
  const CsrOperator op(A);
  return gmres(op, b, la::Vector(A.cols()), opts, hook, 0);
}

} // namespace sdcgmres::krylov
