#include "krylov/operator.hpp"

#include "la/blas1.hpp"

namespace sdcgmres::krylov {

void ScaledOperator::apply(std::span<const double> x,
                           std::span<double> y) const {
  a_->apply(x, y);
  la::scal(alpha_, y);
}

} // namespace sdcgmres::krylov
