#include "krylov/operator.hpp"

#include "la/blas1.hpp"

namespace sdcgmres::krylov {

void ScaledOperator::apply(const la::Vector& x, la::Vector& y) const {
  a_->apply(x, y);
  la::scal(alpha_, y);
}

} // namespace sdcgmres::krylov
