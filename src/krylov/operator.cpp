#include "krylov/operator.hpp"

#include <algorithm>

#include "la/blas1.hpp"

namespace sdcgmres::krylov {

void LinearOperator::apply(std::span<const double> x, la::Vector& y) const {
  la::Vector tmp(x.size());
  std::copy(x.begin(), x.end(), tmp.begin());
  apply(tmp, y);
}

void ScaledOperator::apply(const la::Vector& x, la::Vector& y) const {
  a_->apply(x, y);
  la::scal(alpha_, y);
}

} // namespace sdcgmres::krylov
