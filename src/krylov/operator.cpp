#include "krylov/operator.hpp"

#include <stdexcept>

#include "la/blas1.hpp"

namespace sdcgmres::krylov {

void CsrOperator::do_apply_block(const la::BasisView& x,
                                 la::BlockView y) const {
  if (x.rows() != a_->cols() || y.rows() != a_->rows() ||
      x.cols() != y.cols()) {
    throw std::invalid_argument("CsrOperator::apply_block: shape mismatch");
  }
  if (x.cols() == 0) return; // nothing to do; data() may be null
  a_->spmm(x.cols(), x.data(), x.ld(), y.data(), y.ld());
}

void ScaledOperator::do_apply(std::span<const double> x,
                              std::span<double> y) const {
  a_->apply(x, y);
  la::scal(alpha_, y);
}

} // namespace sdcgmres::krylov
