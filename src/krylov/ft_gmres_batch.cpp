#include "krylov/ft_gmres_batch.hpp"

#include <cstdint>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "krylov/mixed.hpp"
#include "la/blas1.hpp"

namespace sdcgmres::krylov {

namespace {

/// One lockstep step of the live inner GMRES engines: pack every engine's
/// pending operand -- a cycle-start iterate or an Arnoldi direction, both
/// single columns of A's operand space -- into the staging block, stream
/// the matrix ONCE with apply_block, distribute the product columns, and
/// step each engine (start_cycle or advance).  Engines that reach a
/// terminal state (detector abort, breakdown, convergence, budget) are
/// first offered to \p on_done(engine_index): returning true means the
/// engine was replaced in place (the RetryReliable recompute) and stays
/// live; returning false drops it out of \p live without perturbing the
/// survivors, exactly like the outer dropout protocol.  A one-engine
/// block skips the staging copies and applies directly -- same operand,
/// same values, no detour.
///
/// Generic over the inner plane: Op is the LinearOperator on the default
/// double path or a MixedCsrOperator mirror, S its scalar; the staging
/// blocks are typed to match.
template <typename Op, typename S, typename OnDone>
void step_inner_block(const Op& A, std::vector<GmresEngineT<S>>& inners,
                      std::vector<std::size_t>& live,
                      std::vector<std::size_t>& still_live,
                      la::BlockWorkspaceT<S>& directions,
                      la::BlockWorkspaceT<S>& products, OnDone&& on_done) {
  const std::size_t cols = live.size();
  if (cols == 1) {
    if (step_with_apply_t(A, inners[live[0]]) && !on_done(live[0]))
      live.clear();
    return;
  }

  // Each engine's product target is BOUND to its staging column for this
  // step, so apply_block's output lands exactly where start_cycle/advance
  // read it -- no per-column unpack copy.  Same values at a different
  // address, hence bitwise identical to the copying driver.  The binding
  // is per-step: column indices shift as engines drop out, so every round
  // re-binds before the fused product and unbinds right after its step.
  const la::BlockViewT<S> zblock = directions.view(cols);
  const la::BlockViewT<S> vblock = products.view(cols);
  for (std::size_t s = 0; s < cols; ++s) {
    GmresEngineT<S>& engine = inners[live[s]];
    engine.bind_product_target(vblock.col(s));
    if (engine.awaiting_residual()) {
      la::copy(engine.residual_operand(), zblock.col(s));
    } else {
      engine.begin_iteration();
      la::copy(engine.direction(), zblock.col(s));
    }
  }
  A.apply_block(zblock.as_basis_view(), vblock);

  still_live.clear();
  for (std::size_t s = 0; s < cols; ++s) {
    GmresEngineT<S>& engine = inners[live[s]];
    bool done = false;
    if (engine.awaiting_residual()) {
      done = engine.start_cycle();
    } else {
      done = engine.advance();
    }
    engine.unbind_product_target();
    if (done) done = !on_done(live[s]);
    if (!done) still_live.push_back(live[s]);
  }
  live.swap(still_live);
}

/// Inner-plane facade of the default path: inner products stream the
/// original double operator and the inner lockstep phase shares the
/// outer phase's staging blocks (the two levels never overlap in time).
struct DoublePlaneFacade {
  using Scalar = double;
  using Precond = InnerGmresPreconditioner;

  const LinearOperator* a;
  FtGmresBatchWorkspace* w;

  [[nodiscard]] const LinearOperator& inner_op() const noexcept { return *a; }
  [[nodiscard]] la::BlockWorkspace& directions() const noexcept {
    return w->directions;
  }
  [[nodiscard]] la::BlockWorkspace& products() const noexcept {
    return w->products;
  }
  [[nodiscard]] Precond make_precond(std::size_t i, const FtGmresOptions& opts,
                                     ArnoldiHook* hook) const {
    return Precond(*a, opts.inner, hook, opts.robust_first_inner,
                   &w->instances[i].inner, opts.recovery);
  }
};

/// Inner-plane facade of a mixed configuration: inner products stream
/// the narrowed <S, I> mirror (one copy shared by the whole batch); a
/// float plane stages through the dedicated float blocks, the
/// (double, int32) plane reuses the double blocks bit-for-bit.
template <typename S>
struct MixedPlaneFacade {
  using Scalar = S;
  using Precond = MixedInnerGmresT<S>;

  MixedPlaneOf<S>* plane;
  FtGmresBatchWorkspace* w;

  [[nodiscard]] const MixedOperatorT<S>& inner_op() const noexcept {
    return plane->typed_op();
  }
  [[nodiscard]] la::BlockWorkspaceT<S>& directions() const noexcept {
    if constexpr (std::is_same_v<S, double>) {
      return w->directions;
    } else {
      return w->directions_f32;
    }
  }
  [[nodiscard]] la::BlockWorkspaceT<S>& products() const noexcept {
    if constexpr (std::is_same_v<S, double>) {
      return w->products;
    } else {
      return w->products_f32;
    }
  }
  [[nodiscard]] Precond make_precond(std::size_t i, const FtGmresOptions& opts,
                                     ArnoldiHook* hook) const {
    return Precond(plane->typed_op(), opts.inner, hook,
                   opts.robust_first_inner,
                   &inner_workspace_for<S>(w->instances[i]), opts.recovery);
  }
};

/// The lockstep driver, generic over the inner plane.  The outer
/// (reliable) phase always runs in double against the original operator;
/// only the inner phase's engines, staging, and products are typed on
/// the plane's scalar.  Instantiated with DoublePlaneFacade this is
/// operation-for-operation the pre-mixed-plane driver.
template <typename Plane>
std::vector<FtGmresResult> ft_gmres_batch_impl(
    const LinearOperator& A, const Plane& plane,
    std::span<const std::span<const double>> bs, const FtGmresOptions& opts,
    std::span<ArnoldiHook* const> inner_hooks, FtGmresBatchWorkspace& w) {
  using S = typename Plane::Scalar;
  const std::size_t batch = bs.size();
  std::vector<FtGmresResult> results(batch);

  // Never shrink: a reused workspace keeps the warm arenas of earlier,
  // larger batches (the monotone-reserve contract of the data plane).
  if (w.instances.size() < batch) w.instances.resize(batch);
  w.directions.reserve(A.cols(), batch);
  w.products.reserve(A.rows(), batch);
  plane.directions().reserve(A.cols(), batch);
  plane.products().reserve(A.rows(), batch);

  // Paper protocol (same as ft_gmres): every instance starts from zero.
  const la::Vector x0(A.cols());

  std::vector<typename Plane::Precond> inner;
  inner.reserve(batch);
  std::vector<FgmresEngine> engines;
  engines.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    ArnoldiHook* hook = inner_hooks.empty() ? nullptr : inner_hooks[i];
    inner.push_back(plane.make_precond(i, opts, hook));
    engines.emplace_back(A, bs[i], x0.span(), opts.outer,
                         w.instances[i].outer);
  }

  // `active` holds the indices of instances still iterating, in input
  // order; a terminated instance drops out without disturbing the rest.
  std::vector<std::size_t> active;
  active.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    if (!engines[i].start()) active.push_back(i);
  }

  std::vector<GmresEngineT<S>> inners;
  inners.reserve(batch);
  std::vector<std::size_t> inner_live;
  inner_live.reserve(batch);
  std::vector<std::size_t> inner_scratch;
  inner_scratch.reserve(batch);
  std::vector<std::size_t> live;
  live.reserve(batch);
  std::vector<std::size_t> producing;
  producing.reserve(batch);
  std::vector<char> alive;
  while (!active.empty()) {
    // --- Unreliable phase, in lockstep: one step-driveable inner engine
    // per live instance, all advanced together so each inner Arnoldi
    // iteration streams the matrix once for the whole block (the
    // dominant traffic: at the paper's 25 fixed inner iterations, ~25/26
    // of all products happen here).  Hook streams, fault campaigns,
    // detectors, and Hessenberg/QR state stay strictly per-instance, so
    // every instance sees the exact event stream of its solo run.
    inners.clear();
    inner_live.clear();
    for (std::size_t s = 0; s < active.size(); ++s) {
      const FgmresEngine::PrecondRequest req =
          engines[active[s]].begin_iteration();
      inners.push_back(inner[active[s]].make_engine(req.q, req.outer_index,
                                                    req.z));
      inner_live.push_back(s);
    }
    while (!inner_live.empty()) {
      step_inner_block(plane.inner_op(), inners, inner_live, inner_scratch,
                       plane.directions(), plane.products(),
                       [&](std::size_t s) {
                         // Terminal inner engine: the RetryReliable policy
                         // replaces a detector-aborted engine in place with
                         // its hook-free recompute (same operands, same
                         // lockstep slot), which simply keeps iterating in
                         // the block.  Same turnover apply() performs solo.
                         typename Plane::Precond& p = inner[active[s]];
                         if (!p.wants_reliable_retry(inners[s])) return false;
                         inners[s] = p.make_reliable_retry(inners[s]);
                         return true;
                       });
    }
    for (std::size_t s = 0; s < active.size(); ++s) {
      inner[active[s]].finish_engine(inners[s]);
    }

    // --- RestartOuter recovery: a flagged instance folds its accepted
    // columns and restarts its outer cycle (rejoining the next round's
    // inner phase) instead of committing the poisoned direction; the
    // rest advance through the fused reliable product below.
    alive.assign(active.size(), 1);
    producing.clear();
    for (std::size_t s = 0; s < active.size(); ++s) {
      const std::size_t i = active[s];
      if (inner[i].last_record_requests_outer_restart()) {
        if (engines[i].restart_cycle()) alive[s] = 0;
      } else {
        producing.push_back(s);
      }
    }

    // --- The fused reliable product: pack every producing instance's
    // sanitized direction into the staging block and stream the matrix
    // ONCE (columns are bitwise equal to per-instance apply(), so
    // packing order cannot affect any instance).  A one-instance block
    // skips the staging copies and applies directly -- the same operand
    // and the same values, just without the detour.
    const std::size_t cols = producing.size();
    if (cols == 1) {
      FgmresEngine& only = engines[active[producing[0]]];
      A.apply(only.direction(), only.v_target());
      if (only.advance()) alive[producing[0]] = 0;
    } else if (cols > 1) {
      const la::BlockView zblock = w.directions.view(cols);
      for (std::size_t s = 0; s < cols; ++s) {
        la::copy(engines[active[producing[s]]].direction(), zblock.col(s));
      }
      const la::BlockView vblock = w.products.view(cols);
      A.apply_block(zblock.as_basis_view(), vblock);

      // --- Reliable phase, per instance: orthogonalize / project / check.
      for (std::size_t s = 0; s < cols; ++s) {
        const std::size_t i = active[producing[s]];
        la::copy(std::span<const double>(vblock.col(s)), engines[i].v_target());
        if (engines[i].advance()) alive[producing[s]] = 0;
      }
    }

    // Survivors keep their input order (the dropout protocol).
    live.clear();
    for (std::size_t s = 0; s < active.size(); ++s) {
      if (alive[s] != 0) live.push_back(active[s]);
    }
    active.swap(live);
  }

  for (std::size_t i = 0; i < batch; ++i) {
    results[i] =
        detail::make_ft_gmres_result(engines[i].take_result(),
                                     inner[i].records());
  }
  return results;
}

} // namespace

std::vector<FtGmresResult> ft_gmres_batch(
    const LinearOperator& A, std::span<const std::span<const double>> bs,
    const FtGmresOptions& opts, std::span<ArnoldiHook* const> inner_hooks,
    FtGmresBatchWorkspace* ws) {
  const std::size_t batch = bs.size();
  if (!inner_hooks.empty() && inner_hooks.size() != batch) {
    throw std::invalid_argument(
        "ft_gmres_batch: inner_hooks must be empty or match bs in size");
  }
  if (batch == 0) return {};

  FtGmresBatchWorkspace local;
  FtGmresBatchWorkspace& w = (ws != nullptr) ? *ws : local;
  // Non-default (precision, index_width) pairs run the inner lockstep
  // phase on the narrowed mirror (one copy shared by all instances);
  // the default pair never builds a mirror and is the original driver.
  if (opts.precision == Precision::Float) {
    if (opts.index_width == IndexWidth::I32) {
      MixedPlaneFacade<float> plane{
          &ensure_plane<float, std::int32_t>(w.plane, A), &w};
      return ft_gmres_batch_impl(A, plane, bs, opts, inner_hooks, w);
    }
    MixedPlaneFacade<float> plane{
        &ensure_plane<float, std::int64_t>(w.plane, A), &w};
    return ft_gmres_batch_impl(A, plane, bs, opts, inner_hooks, w);
  }
  if (opts.index_width == IndexWidth::I32) {
    MixedPlaneFacade<double> plane{
        &ensure_plane<double, std::int32_t>(w.plane, A), &w};
    return ft_gmres_batch_impl(A, plane, bs, opts, inner_hooks, w);
  }
  const DoublePlaneFacade plane{&A, &w};
  return ft_gmres_batch_impl(A, plane, bs, opts, inner_hooks, w);
}

std::vector<FtGmresResult> ft_gmres_batch(
    const LinearOperator& A, const std::vector<la::Vector>& bs,
    const FtGmresOptions& opts, std::span<ArnoldiHook* const> inner_hooks,
    FtGmresBatchWorkspace* ws) {
  std::vector<std::span<const double>> spans;
  spans.reserve(bs.size());
  for (const la::Vector& b : bs) spans.push_back(b.span());
  return ft_gmres_batch(A, spans, opts, inner_hooks, ws);
}

} // namespace sdcgmres::krylov
