#include "krylov/fcg.hpp"

#include <cmath>
#include <stdexcept>

#include "krylov/ft_gmres.hpp"
#include "la/blas1.hpp"

namespace sdcgmres::krylov {

FcgResult fcg(const LinearOperator& A, const la::Vector& b,
              const la::Vector& x0, const FcgOptions& opts,
              FlexiblePreconditioner& M) {
  if (A.rows() != A.cols()) {
    throw std::invalid_argument("fcg: operator must be square");
  }
  if (b.size() != A.rows() || x0.size() != A.cols()) {
    throw std::invalid_argument("fcg: vector size mismatch");
  }
  if (opts.max_outer == 0) {
    throw std::invalid_argument("fcg: max_outer must be positive");
  }

  FcgResult result;
  result.x = x0;
  const std::size_t n = A.rows();
  const double bnorm = la::nrm2(b);
  const double abs_target = opts.tol * (bnorm > 0.0 ? bnorm : 1.0);

  la::Vector r(n);
  A.apply(result.x, r);
  la::waxpby(1.0, b, -1.0, r, r);
  result.residual_norm = la::nrm2(r);
  if (result.residual_norm <= abs_target) {
    result.status = SolveStatus::Converged;
    return result;
  }

  const auto sanitize = [&](la::Vector& z) {
    if (!opts.sanitize_preconditioner_output) return;
    if (!la::all_finite(z) || la::nrm2(z) == 0.0) {
      la::copy(r, z); // identity-preconditioner fallback
      ++result.sanitized_outputs;
    }
  };

  la::Vector z(n);
  M.apply(r, 0, z); // unreliable phase
  sanitize(z);
  la::Vector p = z;
  la::Vector ap(n);
  la::Vector r_prev(n);
  double rz = la::dot(r, z);

  for (std::size_t k = 0; k < opts.max_outer; ++k) {
    A.apply(p, ap);
    const double pap = la::dot(p, ap);
    if (!(pap > 0.0)) { // catches <= 0 and NaN
      result.status = SolveStatus::Indefinite;
      return result;
    }
    const double alpha = rz / pap;
    la::copy(r, r_prev);
    la::axpy(alpha, p, result.x);
    la::axpy(-alpha, ap, r);
    result.residual_norm = la::nrm2(r);
    result.residual_history.push_back(result.residual_norm);
    result.outer_iterations = k + 1;

    if (result.residual_norm <= abs_target) {
      if (!opts.verify_with_explicit_residual) {
        result.status = SolveStatus::Converged;
        return result;
      }
      // Reliable phase: trust only the explicit residual.
      la::Vector true_r(n);
      A.apply(result.x, true_r);
      la::waxpby(1.0, b, -1.0, true_r, true_r);
      const double true_norm = la::nrm2(true_r);
      if (true_norm <= abs_target) {
        result.residual_norm = true_norm;
        result.status = SolveStatus::Converged;
        return result;
      }
      la::copy(true_r, r); // resynchronize the recurrence and continue
      result.residual_norm = true_norm;
    }

    // Unreliable phase: apply the (flexible) preconditioner.
    M.apply(r, k + 1, z);
    sanitize(z);

    // Flexible (Polak-Ribiere style) beta keeps directions useful when
    // M changes between iterations; plain CG's <z,r>/<z_prev,r_prev>
    // assumes a fixed M.
    la::Vector dr = r;
    la::axpy(-1.0, r_prev, dr);
    const double zdr = la::dot(z, dr);
    const double beta = (rz != 0.0) ? zdr / rz : 0.0;
    la::waxpby(1.0, z, beta, p, p);
    rz = la::dot(r, z);
    if (!(std::abs(rz) > 0.0) || !std::isfinite(rz)) {
      // <r, z> collapsed; restart the direction from the current residual
      // preconditioned output (equivalent to a fresh CG start).
      la::copy(z, p);
      rz = la::dot(r, z);
      if (rz == 0.0) rz = la::dot(r, r); // last resort: steepest descent
    }
  }
  result.status = result.residual_norm <= abs_target ? SolveStatus::Converged
                                                     : SolveStatus::MaxIterations;
  return result;
}

FtCgResult ft_cg(const LinearOperator& A, const la::Vector& b,
                 const FtCgOptions& opts, ArnoldiHook* inner_hook) {
  InnerGmresPreconditioner inner(A, opts.inner, inner_hook);
  const FcgResult outer = fcg(A, b, la::Vector(A.cols()), opts.outer, inner);

  FtCgResult result;
  result.x = outer.x;
  result.status = outer.status;
  result.outer_iterations = outer.outer_iterations;
  result.residual_norm = outer.residual_norm;
  result.residual_history = outer.residual_history;
  result.sanitized_outputs = outer.sanitized_outputs;
  for (const InnerSolveRecord& rec : inner.records()) {
    result.total_inner_iterations += rec.iterations;
  }
  return result;
}

FtCgResult ft_cg(const sparse::CsrMatrix& A, const la::Vector& b,
                 const FtCgOptions& opts, ArnoldiHook* inner_hook) {
  const CsrOperator op(A);
  return ft_cg(op, b, opts, inner_hook);
}

} // namespace sdcgmres::krylov
