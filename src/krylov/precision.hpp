#pragma once
/// \file precision.hpp
/// \brief Scalar-precision and index-width selectors for the mixed plane.
///
/// FT-GMRES's selective-reliability split makes the inner solves the one
/// place reduced precision is admissible: the flexible outer iteration
/// treats an imprecise inner result as just another perturbed
/// preconditioner application (the same argument that lets the paper run
/// the inner solves on unreliable hardware).  These enums select, per
/// FT-GMRES configuration, the scalar type of the inner data plane and
/// the index width of the narrowed CSR mirror the inner solves stream.

namespace sdcgmres::krylov {

/// Scalar precision of the inner-solve data plane.
enum class Precision {
  Double, ///< default: inner solves run in double (bitwise-identical path)
  Float,  ///< inner basis/Hessenberg/operator applies in float32
};

/// Index width of the inner-solve CSR mirror.
enum class IndexWidth {
  I64, ///< default: the original size_t-indexed CsrMatrix is streamed
  I32, ///< int32 row_ptr/col_idx mirror (validated at construction)
};

[[nodiscard]] constexpr const char* to_string(Precision p) noexcept {
  return p == Precision::Double ? "double" : "float";
}

[[nodiscard]] constexpr const char* to_string(IndexWidth w) noexcept {
  return w == IndexWidth::I64 ? "64" : "32";
}

} // namespace sdcgmres::krylov
