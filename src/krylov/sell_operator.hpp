#pragma once
/// \file sell_operator.hpp
/// \brief SELL-C-sigma execution backend of the operator seam.
///
/// SellOperator is the LinearOperator over a sparse::SellMatrix -- the
/// `backend=sell` counterpart of CsrOperator -- and the Mixed* pieces
/// are its narrowed inner-plane mirrors, so every precision=/index=
/// configuration works unchanged on a SELL-backed solve (the inner
/// solves stream a narrowed SELL structure, not a CSR fallback).
///
/// Byte accounting counts the format's TRUE stored widths: scalar bytes
/// include the padding slots (they stream through the cache hierarchy
/// whether or not the active-prefix kernel multiplies them... and ours
/// never multiplies them, see sell.hpp), and index bytes count the
/// padded column indices plus the chunk offsets, slot lengths, and
/// scatter permutation the kernels walk per pass.

#include <cstddef>
#include <span>

#include "krylov/mixed_plane.hpp"
#include "krylov/operator.hpp"
#include "sparse/sell.hpp"

namespace sdcgmres::krylov {

/// Counting operator over a SELL-C-sigma matrix.  Results are bitwise
/// identical to CsrOperator over the source matrix, per column, at any
/// thread count (sell.hpp documents why).
class SellOperator final : public LinearOperator {
public:
  explicit SellOperator(const sparse::SellMatrix& a) : a_(&a) {}

  [[nodiscard]] std::size_t rows() const noexcept override {
    return a_->rows();
  }
  [[nodiscard]] std::size_t cols() const noexcept override {
    return a_->cols();
  }

  /// The SELL structure behind the operator (the mixed plane narrows it).
  [[nodiscard]] const sparse::SellMatrix& matrix() const noexcept {
    return *a_;
  }

protected:
  void do_apply(std::span<const double> x,
                std::span<double> y) const override {
    a_->spmv(x, y);
  }
  void do_apply_block(const la::BasisView& x, la::BlockView y) const override;

  /// Padded entry slots once + `columns` operand and result columns, all
  /// at sizeof(double).
  [[nodiscard]] std::size_t
  do_scalar_bytes(std::size_t columns) const noexcept override {
    return sizeof(double) *
           (a_->stored() + columns * (a_->rows() + a_->cols()));
  }
  /// Padded col_idx + chunk_ptr + slot lengths + permutation (independent
  /// of the operand column count, like CsrOperator's row_ptr + col_idx).
  [[nodiscard]] std::size_t
  do_index_bytes(std::size_t columns) const noexcept override {
    (void)columns;
    return sizeof(std::size_t) * a_->index_slots();
  }

private:
  const sparse::SellMatrix* a_;
};

/// Counting apply seam of the narrowed SELL mirror (the SELL counterpart
/// of MixedCsrOperator).
template <typename S, typename I>
class MixedSellOperator final : public MixedOperatorT<S> {
public:
  explicit MixedSellOperator(const sparse::SellMatrixT<S, I>& a) : a_(&a) {}

  [[nodiscard]] std::size_t rows() const noexcept override {
    return a_->rows();
  }
  [[nodiscard]] std::size_t cols() const noexcept override {
    return a_->cols();
  }

protected:
  void do_apply(std::span<const S> x, std::span<S> y) const override {
    a_->spmv(x, y);
  }
  void do_apply_block(const la::BasisViewT<S>& x,
                      la::BlockViewT<S> y) const override {
    a_->spmm(x, y);
  }
  [[nodiscard]] std::size_t
  do_scalar_bytes(std::size_t columns) const noexcept override {
    return sizeof(S) * (a_->stored() + columns * (a_->rows() + a_->cols()));
  }
  [[nodiscard]] std::size_t do_index_bytes() const noexcept override {
    return sizeof(I) * a_->index_slots();
  }

private:
  const sparse::SellMatrixT<S, I>* a_;
};

/// One (scalar, index) instantiation of the narrowed SELL plane: the
/// mirror structure plus its counting operator (the SELL counterpart of
/// MixedPlane<S, I>).
template <typename S, typename I>
class SellMixedPlane final : public MixedPlaneOf<S> {
public:
  /// Narrows \p a (throws std::overflow_error when the padded shape
  /// overflows the index type I -- see SellMatrixT).
  explicit SellMixedPlane(const sparse::SellMatrix& a)
      : matrix(a), op(matrix), src_(&a) {}

  [[nodiscard]] OperatorStats stats() const noexcept override {
    return op.stats();
  }
  void reset_stats() const noexcept override { op.reset_stats(); }
  [[nodiscard]] const void* source() const noexcept override { return src_; }
  [[nodiscard]] const MixedOperatorT<S>& typed_op() const noexcept override {
    return op;
  }

  sparse::SellMatrixT<S, I> matrix;
  MixedSellOperator<S, I> op;

private:
  const void* src_;
};

} // namespace sdcgmres::krylov
