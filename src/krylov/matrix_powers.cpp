#include "krylov/matrix_powers.hpp"

#include <algorithm>
#include <stdexcept>

#include "la/blas1.hpp"

namespace sdcgmres::krylov {

void matrix_powers(const LinearOperator& A, std::span<const double> v,
                   la::BlockView out, std::span<const double> shifts) {
  if (A.rows() != A.cols()) {
    throw std::invalid_argument("matrix_powers: operator must be square");
  }
  if (out.cols() == 0) {
    throw std::invalid_argument("matrix_powers: out needs >= 1 column");
  }
  if (out.rows() != A.rows() || v.size() != A.rows()) {
    throw std::invalid_argument("matrix_powers: shape mismatch");
  }
  if (!shifts.empty() && shifts.size() < out.cols() - 1) {
    throw std::invalid_argument(
        "matrix_powers: need out.cols()-1 shifts (or none)");
  }

  const std::span<double> seed = out.col(0);
  std::copy(v.begin(), v.end(), seed.begin());

  for (std::size_t k = 1; k < out.cols(); ++k) {
    // Width-1 apply_block on adjacent columns of the same arena: the CSR
    // SpMM column contract makes each power bitwise equal to a solo SpMV,
    // and the traffic lands in the operator's OperatorStats.
    const la::BasisView x(out.data() + (k - 1) * out.ld(), out.rows(), 1,
                          out.ld());
    const la::BlockView y(out.data() + k * out.ld(), out.rows(), 1, out.ld());
    A.apply_block(x, y);
    if (!shifts.empty() && shifts[k - 1] != 0.0) {
      la::axpy(-shifts[k - 1], std::span<const double>(out.col(k - 1)),
               out.col(k));
    }
  }
}

} // namespace sdcgmres::krylov
