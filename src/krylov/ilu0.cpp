#include "krylov/ilu0.hpp"

#include <cmath>
#include <stdexcept>

namespace sdcgmres::krylov {

Ilu0Preconditioner::Ilu0Preconditioner(const sparse::CsrMatrix& A) : a_(&A) {
  if (A.rows() != A.cols()) {
    throw std::invalid_argument("Ilu0Preconditioner: matrix must be square");
  }
  const std::size_t n = A.rows();
  const auto& row_ptr = A.row_ptr();
  const auto& col_idx = A.col_idx();
  lu_ = A.values();
  diag_pos_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    bool found = false;
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      if (col_idx[k] == i) {
        diag_pos_[i] = k;
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::invalid_argument(
          "Ilu0Preconditioner: missing structural diagonal entry");
    }
  }

  // IKJ-variant incomplete elimination restricted to A's pattern.
  // Column lookup scratch: position of column j in the current row, or
  // npos when the position is outside the pattern.
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::vector<std::size_t> col_pos(n, npos);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      col_pos[col_idx[k]] = k;
    }
    // Eliminate using previous rows k < i present in row i's pattern.
    for (std::size_t kk = row_ptr[i]; kk < row_ptr[i + 1]; ++kk) {
      const std::size_t k = col_idx[kk];
      if (k >= i) break; // columns are sorted; past the strict lower part
      const double pivot = lu_[diag_pos_[k]];
      if (pivot == 0.0 || !std::isfinite(pivot)) {
        throw std::invalid_argument("Ilu0Preconditioner: zero pivot");
      }
      const double lik = lu_[kk] / pivot;
      lu_[kk] = lik;
      // Subtract lik * U(k, j) for j > k, only where row i has pattern.
      for (std::size_t jj = diag_pos_[k] + 1; jj < row_ptr[k + 1]; ++jj) {
        const std::size_t pos = col_pos[col_idx[jj]];
        if (pos != npos) lu_[pos] -= lik * lu_[jj];
      }
    }
    if (lu_[diag_pos_[i]] == 0.0) {
      throw std::invalid_argument("Ilu0Preconditioner: zero pivot");
    }
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      col_pos[col_idx[k]] = npos;
    }
  }
}

void Ilu0Preconditioner::apply(std::span<const double> r,
                               std::span<double> z) const {
  const std::size_t n = a_->rows();
  if (r.size() != n || z.size() != n) {
    throw std::invalid_argument("Ilu0Preconditioner: size mismatch");
  }
  const auto& row_ptr = a_->row_ptr();
  const auto& col_idx = a_->col_idx();
  // Forward solve L y = r (unit diagonal), in place in z.
  for (std::size_t i = 0; i < n; ++i) {
    double sum = r[i];
    for (std::size_t k = row_ptr[i]; k < diag_pos_[i]; ++k) {
      sum -= lu_[k] * z[col_idx[k]];
    }
    z[i] = sum;
  }
  // Backward solve U z = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = z[ii];
    for (std::size_t k = diag_pos_[ii] + 1; k < row_ptr[ii + 1]; ++k) {
      sum -= lu_[k] * z[col_idx[k]];
    }
    z[ii] = sum / lu_[diag_pos_[ii]];
  }
}

} // namespace sdcgmres::krylov
