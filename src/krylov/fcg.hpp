#pragma once
/// \file fcg.hpp
/// \brief Flexible Conjugate Gradients and the FT-CG nested solver.
///
/// The paper (Section VI-A) names flexible CG [Golub & Ye 1999] as an
/// alternative outer iteration and leaves experimenting with it to future
/// work; this module implements that experiment.  FCG is CG for SPD A
/// with a preconditioner that may change every iteration; the flexible
/// Polak-Ribiere-style beta
///     beta_k = <z_{k+1}, r_{k+1} - r_k> / <z_k, r_k>
/// keeps the search directions usefully conjugate when M_k varies
/// (Notay's formulation), where plain Fletcher-Reeves would not.
///
/// FT-CG mirrors FT-GMRES: a reliable FCG outer iteration whose
/// "preconditioner" is an unreliable fixed-effort inner GMRES solve, with
/// the same reliable-phase sanitization of impossible inner output.
/// Unlike FT-GMRES it requires SPD A, and its failure mode under
/// non-SPD-consistent corruption is direction breakdown (p^T A p <= 0),
/// which it reports loudly.

#include <cstddef>
#include <vector>

#include "krylov/gmres.hpp"
#include "krylov/hooks.hpp"
#include "krylov/operator.hpp"
#include "krylov/precond.hpp"
#include "la/vector.hpp"
#include "sparse/csr.hpp"

namespace sdcgmres::krylov {

// FCG's terminal states (converged / budget exhausted / direction
// breakdown p^T A p <= 0) use the shared SolveStatus vocabulary
// (status.hpp); the breakdown case is SolveStatus::Indefinite.

/// Configuration of an FCG solve.
struct FcgOptions {
  std::size_t max_outer = 500; ///< outer iteration budget
  double tol = 1e-8;           ///< relative residual target (vs ||b||)
  bool sanitize_preconditioner_output = true; ///< reliable-phase filter:
                               ///< Inf/NaN/zero z is replaced by r
  bool verify_with_explicit_residual = true;  ///< on recurrence-residual
                               ///< convergence, recompute b - A*x and keep
                               ///< iterating if it disagrees
};

/// Result of an FCG solve.
struct FcgResult {
  la::Vector x;
  SolveStatus status = SolveStatus::MaxIterations;
  std::size_t outer_iterations = 0;
  double residual_norm = 0.0; ///< explicit ||b - A*x|| at exit
  std::vector<double> residual_history;
  std::size_t sanitized_outputs = 0;
};

/// Solve SPD A x = b with flexible preconditioner \p M from \p x0.
[[nodiscard]] FcgResult fcg(const LinearOperator& A, const la::Vector& b,
                            const la::Vector& x0, const FcgOptions& opts,
                            FlexiblePreconditioner& M);

/// Options of the nested FT-CG solver (FCG outer + inner GMRES guest).
struct FtCgOptions {
  GmresOptions inner; ///< fixed-effort unreliable inner solve
  FcgOptions outer;

  FtCgOptions() {
    inner.max_iters = 25;
    inner.tol = 0.0;
  }
};

/// Result of an FT-CG solve.
struct FtCgResult {
  la::Vector x;
  SolveStatus status = SolveStatus::MaxIterations;
  std::size_t outer_iterations = 0;
  std::size_t total_inner_iterations = 0;
  double residual_norm = 0.0;
  std::vector<double> residual_history;
  std::size_t sanitized_outputs = 0;
};

/// Solve SPD A x = b with FT-CG from a zero initial guess.
/// \param inner_hook observes/corrupts inner solves only.
[[nodiscard]] FtCgResult ft_cg(const LinearOperator& A, const la::Vector& b,
                               const FtCgOptions& opts,
                               ArnoldiHook* inner_hook = nullptr);

/// Convenience overload for CSR matrices.
[[nodiscard]] FtCgResult ft_cg(const sparse::CsrMatrix& A, const la::Vector& b,
                               const FtCgOptions& opts,
                               ArnoldiHook* inner_hook = nullptr);

} // namespace sdcgmres::krylov
