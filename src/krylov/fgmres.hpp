#pragma once
/// \file fgmres.hpp
/// \brief Flexible GMRES (Saad 1993), Algorithm 2 of the paper.
///
/// FGMRES allows the preconditioner to change on every iteration, which is
/// what lets FT-GMRES model a faulty inner solve as "a different
/// preconditioner".  The implementation realizes the paper's trichotomy
/// (Section VI-C): it either converges, correctly detects an invariant
/// subspace (happy breakdown with full-rank H), or loudly reports rank
/// deficiency of H -- it never silently returns a wrong answer.

#include <cstddef>
#include <vector>

#include "dense/lsq_policies.hpp"
#include "krylov/operator.hpp"
#include "krylov/orthogonalize.hpp"
#include "krylov/precond.hpp"
#include "krylov/status.hpp"
#include "krylov/workspace.hpp"
#include "la/vector.hpp"

namespace sdcgmres::krylov {

// The FGMRES trichotomy (converged / invariant subspace with full-rank H /
// loud rank-deficiency report) is expressed in the shared SolveStatus
// vocabulary (status.hpp): HappyBreakdown is the invariant-subspace case.

/// Configuration of an FGMRES solve.
struct FgmresOptions {
  std::size_t max_outer = 200;  ///< outer iteration budget (also basis size)
  double tol = 1e-8;            ///< relative residual target (vs ||b||)
  Orthogonalization ortho = Orthogonalization::MGS;
  dense::LsqPolicy lsq_policy = dense::LsqPolicy::RankRevealing;
  double truncation_tol = 1e-12; ///< SVD cutoff for the update coefficients
  double breakdown_tol = 1e-12;  ///< happy-breakdown threshold (relative to
                                 ///< the initial residual norm)
  double rank_tol = 1e-12;       ///< sigma_min/sigma_max threshold declaring
                                 ///< H rank-deficient
  bool rank_check_every_iteration = true; ///< maintain the rank-revealing
                                 ///< decomposition each iteration (paper
                                 ///< Section VI-C); false checks only at
                                 ///< breakdown
  bool sanitize_preconditioner_output = true; ///< reliable-phase filter: a
                                 ///< z_j with Inf/NaN (a guest that ran
                                 ///< wild) is replaced by q_j, i.e. the
                                 ///< identity preconditioner for that step
  bool verify_with_explicit_residual = true; ///< on estimated convergence,
                                 ///< recompute b - A*x reliably and keep
                                 ///< iterating if it disagrees
};

/// Result of an FGMRES solve.
struct FgmresResult {
  la::Vector x;                 ///< final iterate
  SolveStatus status = SolveStatus::MaxIterations;
  std::size_t outer_iterations = 0;
  double residual_norm = 0.0;   ///< explicit ||b - A*x|| at exit
  std::vector<double> residual_history; ///< estimate after each iteration
  std::size_t sanitized_outputs = 0;    ///< z_j replaced due to Inf/NaN
  std::size_t rank_checks = 0;          ///< rank-revealing updates performed
  double min_sigma_ratio = 1.0;         ///< smallest sigma_min/sigma_max seen
};

/// Solve A x = b with flexible preconditioner \p M, starting from \p x0.
/// \param ws optional reusable workspace (basis/direction arenas +
///        projected QR); with a workspace of matching shape the solve
///        performs no heap allocation on the iteration path.  The
///        preconditioner receives basis columns and writes directly into
///        Z-arena columns -- no owning la::Vector crosses the boundary.
[[nodiscard]] FgmresResult fgmres(const LinearOperator& A, const la::Vector& b,
                                  const la::Vector& x0,
                                  const FgmresOptions& opts,
                                  FlexiblePreconditioner& M,
                                  KrylovWorkspace* ws = nullptr);

} // namespace sdcgmres::krylov
