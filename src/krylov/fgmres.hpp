#pragma once
/// \file fgmres.hpp
/// \brief Flexible GMRES (Saad 1993), Algorithm 2 of the paper.
///
/// FGMRES allows the preconditioner to change on every iteration, which is
/// what lets FT-GMRES model a faulty inner solve as "a different
/// preconditioner".  The implementation realizes the paper's trichotomy
/// (Section VI-C): it either converges, correctly detects an invariant
/// subspace (happy breakdown with full-rank H), or loudly reports rank
/// deficiency of H -- it never silently returns a wrong answer.

#include <chrono>
#include <cstddef>
#include <vector>

#include "dense/condition.hpp"
#include "dense/lsq_policies.hpp"
#include "krylov/operator.hpp"
#include "krylov/orthogonalize.hpp"
#include "krylov/precond.hpp"
#include "krylov/status.hpp"
#include "krylov/workspace.hpp"
#include "la/vector.hpp"

namespace sdcgmres::krylov {

// The FGMRES trichotomy (converged / invariant subspace with full-rank H /
// loud rank-deficiency report) is expressed in the shared SolveStatus
// vocabulary (status.hpp): HappyBreakdown is the invariant-subspace case.

/// Configuration of an FGMRES solve.
struct FgmresOptions {
  std::size_t max_outer = 200;  ///< outer iteration budget (also basis size)
  double tol = 1e-8;            ///< relative residual target (vs ||b||)
  Orthogonalization ortho = Orthogonalization::MGS;
  dense::LsqPolicy lsq_policy = dense::LsqPolicy::RankRevealing;
  double truncation_tol = 1e-12; ///< SVD cutoff for the update coefficients
  double breakdown_tol = 1e-12;  ///< happy-breakdown threshold (relative to
                                 ///< the initial residual norm)
  double rank_tol = 1e-12;       ///< sigma_min/sigma_max threshold declaring
                                 ///< H rank-deficient
  bool rank_check_every_iteration = true; ///< monitor the triangular
                                 ///< factor's conditioning each iteration
                                 ///< (paper Section VI-C) via O(k)
                                 ///< incremental condition estimation
                                 ///< (dense/condition.hpp); the exact SVD
                                 ///< oracle still decides rank deficiency
                                 ///< at breakdown, so solve outcomes do
                                 ///< not depend on this flag's estimator.
                                 ///< false monitors only at breakdown
  bool sanitize_preconditioner_output = true; ///< reliable-phase filter: a
                                 ///< z_j with Inf/NaN (a guest that ran
                                 ///< wild) is replaced by q_j, i.e. the
                                 ///< identity preconditioner for that step
  bool verify_with_explicit_residual = true; ///< on estimated convergence,
                                 ///< recompute b - A*x reliably and keep
                                 ///< iterating if it disagrees
  double deadline_seconds = 0.0; ///< wall-clock guard: a solve running past
                                 ///< this many seconds finalizes its best
                                 ///< iterate with status DeadlineExceeded
                                 ///< (0 disables; enabling it trades the
                                 ///< bitwise determinism contract for a
                                 ///< bounded worst case)
  double divergence_factor = 0.0; ///< residual-explosion guard: an outer
                                 ///< residual estimate exceeding factor x
                                 ///< the initial residual (or going
                                 ///< non-finite) finalizes with status
                                 ///< Diverged (0 disables)
};

/// Result of an FGMRES solve.
struct FgmresResult {
  la::Vector x;                 ///< final iterate
  SolveStatus status = SolveStatus::MaxIterations;
  std::size_t outer_iterations = 0;
  double residual_norm = 0.0;   ///< explicit ||b - A*x|| at exit
  std::vector<double> residual_history; ///< estimate after each iteration
  std::size_t sanitized_outputs = 0;    ///< z_j replaced due to Inf/NaN
  std::size_t rank_checks = 0;          ///< conditioning checks performed
                                        ///< (incremental per iteration,
                                        ///< exact SVD at breakdown)
  double min_sigma_ratio = 1.0;         ///< smallest sigma_min/sigma_max
                                        ///< seen (per-iteration values are
                                        ///< the incremental estimator's
                                        ///< upper bound of the true ratio)
  std::size_t outer_restarts = 0;       ///< recovery restarts (restart_cycle)
  std::size_t global_syncs = 0;         ///< global reductions the OUTER
                                        ///< iteration consumed (norms +
                                        ///< orthogonalization passes; the
                                        ///< inner solves count their own,
                                        ///< see GmresStats::global_syncs)
};

/// Step-driveable FGMRES: the single implementation behind both the
/// one-shot fgmres() free function and the lockstep batch drivers
/// (krylov/ft_gmres_batch.hpp).  One outer iteration is split at its two
/// external data dependencies so a driver can interleave many instances:
///
///   begin_iteration()  ->  caller runs the (flexible) preconditioner
///   direction()        ->  caller computes v = A * direction() into
///                          v_target() (a batch driver fuses the products
///                          of all live instances into one apply_block)
///   advance()          ->  orthogonalization, projected QR, trichotomy,
///                          convergence checks
///
/// The per-instance floating-point operation sequence is EXACTLY the
/// sequence fgmres() executes, and the engine touches no state outside
/// its own workspace, so lockstep instances are bitwise identical to
/// their solo runs as long as the caller-supplied products are (CSR SpMM
/// columns are bitwise equal to SpMV -- see sparse::CsrMatrix::spmm).
///
/// Lifetime: \p b and \p ws must outlive the engine; \p x0 is copied at
/// construction.  v_target() is valid only after start().
class FgmresEngine {
public:
  /// Validates shapes/options (throws std::invalid_argument exactly as
  /// fgmres() does) and binds the workspace.  No solve work yet.
  FgmresEngine(const LinearOperator& A, std::span<const double> b,
               std::span<const double> x0, const FgmresOptions& opts,
               KrylovWorkspace& ws);

  /// Compute the reliable initial residual and set up the basis/QR state.
  /// Returns finished(): true when x0 already meets the tolerance (the
  /// iteration protocol must then be skipped entirely).
  bool start();

  /// True once a terminal status has been reached; no further protocol
  /// calls are allowed.
  [[nodiscard]] bool finished() const noexcept { return finished_; }

  /// Current outer iteration index j (valid while !finished()).
  [[nodiscard]] std::size_t iteration() const noexcept { return j_; }

  /// What the caller's preconditioner application needs: read q, write z.
  struct PrecondRequest {
    std::span<const double> q; ///< basis column q_j (read-only)
    std::size_t outer_index;   ///< outer iteration j
    std::span<double> z;       ///< Z-arena column to fill completely
  };

  /// Begin outer iteration j: appends the Z-arena column and hands out
  /// the preconditioner operands (the unreliable phase runs outside the
  /// engine).
  PrecondRequest begin_iteration();

  /// Reliable phase, part 1: sanitize the direction the preconditioner
  /// wrote (Inf/NaN/zero fallback to q_j when enabled) and return the
  /// operand of the pending operator application.  Call exactly once per
  /// iteration, after the preconditioner ran.
  std::span<const double> direction();

  /// Destination for v = A * direction(); the caller must fully overwrite
  /// it before advance().
  [[nodiscard]] std::span<double> v_target();

  /// Reliable phase, part 2: orthogonalize, update the projected QR, run
  /// the trichotomy bookkeeping and convergence checks (retries and
  /// explicit-residual verification apply the operator internally).
  /// Returns finished().
  bool advance();

  /// Recovery seam (FT-GMRES `restart_outer` policy): discard the
  /// direction appended by the last begin_iteration() WITHOUT committing
  /// it -- direction()/advance() must NOT have run for this iteration --
  /// fold the accepted columns into the iterate, recompute the reliable
  /// explicit residual, and restart the outer cycle from it.  The
  /// discarded iteration still counts against max_outer (a persistently
  /// faulty preconditioner cannot loop forever), and
  /// FgmresResult::outer_restarts records the restart.  Returns
  /// finished(): true when the restart point already meets the tolerance
  /// or exhausts the budget/deadline.
  bool restart_cycle();

  /// Move the result out (call once, after finished()).
  [[nodiscard]] FgmresResult take_result() { return std::move(result_); }

private:
  const LinearOperator* a_;
  std::span<const double> b_;
  FgmresOptions opts_;
  KrylovWorkspace* w_;
  /// True when the wall-clock guard is armed and the deadline has passed.
  [[nodiscard]] bool past_deadline() const;

  la::Vector x0_;
  std::size_t n_ = 0;
  std::size_t j_ = 0;
  std::size_t base_iters_ = 0; ///< iterations consumed by earlier
                               ///< (recovery-restarted) cycles
  double bnorm_ = 0.0;
  double abs_target_ = 0.0;
  double beta_ = 0.0;  ///< residual norm at the current cycle's start
  double beta0_ = 0.0; ///< initial residual norm (divergence reference)
  std::chrono::steady_clock::time_point deadline_{};
  bool finished_ = false;
  FgmresResult result_;
  /// O(k)/iteration conditioning monitor of the projected QR's R factor
  /// (rank_check_every_iteration); reset with the factor on every cycle.
  dense::IncrementalConditionEstimator ice_;
  std::vector<double> ice_col_; ///< scratch: the newest R column
};

/// Solve A x = b with flexible preconditioner \p M, starting from \p x0.
/// \param ws optional reusable workspace (basis/direction arenas +
///        projected QR); with a workspace of matching shape the solve
///        performs no heap allocation on the iteration path.  The
///        preconditioner receives basis columns and writes directly into
///        Z-arena columns -- no owning la::Vector crosses the boundary.
[[nodiscard]] FgmresResult fgmres(const LinearOperator& A, const la::Vector& b,
                                  const la::Vector& x0,
                                  const FgmresOptions& opts,
                                  FlexiblePreconditioner& M,
                                  KrylovWorkspace* ws = nullptr);

} // namespace sdcgmres::krylov
