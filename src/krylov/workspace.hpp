#pragma once
/// \file workspace.hpp
/// \brief Check-out-able solver workspaces for the Krylov layer.
///
/// A KrylovWorkspace bundles everything one GMRES/FGMRES instance reuses
/// across solves: the la-layer span arena (basis, directions, scratch,
/// Hessenberg column) and the projected-problem QR factorization.  After
/// the first solve of a given shape, every further solve through the same
/// workspace performs no heap allocation on the iteration path.
///
/// FT-GMRES nests two solvers -- the reliable outer FGMRES and the faulty
/// inner GMRES called once per outer iteration -- whose live ranges
/// overlap, so it checks out one slot per nesting level.
///
/// Threading: workspaces are NOT shareable between threads.  The parallel
/// injection sweep (experiment::run_injection_sweep) checks out one
/// FtGmresWorkspace per worker thread.

#include "dense/hessenberg_qr.hpp"
#include "la/workspace.hpp"

namespace sdcgmres::krylov {

/// Reusable state for one (F)GMRES solver instance.
struct KrylovWorkspace {
  la::SolverWorkspace arena;  ///< V/Z arenas, scratch vectors, h column
  dense::HessenbergQr qr;     ///< projected least-squares factorization
};

/// Reusable state for one FT-GMRES instance: outer FGMRES + inner GMRES.
struct FtGmresWorkspace {
  KrylovWorkspace outer;
  KrylovWorkspace inner;
};

} // namespace sdcgmres::krylov
