#pragma once
/// \file workspace.hpp
/// \brief Check-out-able solver workspaces for the Krylov layer.
///
/// A KrylovWorkspace bundles everything one GMRES/FGMRES instance reuses
/// across solves: the la-layer span arena (basis, directions, scratch,
/// Hessenberg column) and the projected-problem QR factorization.  After
/// the first solve of a given shape, every further solve through the same
/// workspace performs no heap allocation on the iteration path.
///
/// Templated on the scalar type like the la arenas underneath: the
/// reliable plane checks out the double instantiation (aliased
/// KrylovWorkspace), the mixed-precision inner engines check out
/// KrylovWorkspaceT<float>.
///
/// FT-GMRES nests two solvers -- the reliable outer FGMRES and the faulty
/// inner GMRES called once per outer iteration -- whose live ranges
/// overlap, so it checks out one slot per nesting level.  An
/// FtGmresWorkspace additionally carries the float inner arena and a
/// cached narrowed-operator plane for mixed-precision configurations;
/// both stay empty (and cost nothing) on the default double/int64 path.
///
/// Threading: workspaces are NOT shareable between threads.  The parallel
/// injection sweep (experiment::run_injection_sweep) checks out one
/// FtGmresWorkspace per worker thread.

#include <memory>

#include "dense/hessenberg_qr.hpp"
#include "la/workspace.hpp"

namespace sdcgmres::krylov {

/// Type-erased cache slot for a narrowed-operator mirror (defined in
/// krylov/mixed.hpp); forward-declared so the workspace header does not
/// pull in the mixed-precision plane.
class MixedPlaneBase;

/// Reusable state for one (F)GMRES solver instance.
template <typename S>
struct KrylovWorkspaceT {
  la::SolverWorkspaceT<S> arena; ///< V/Z arenas, scratch vectors, h column
  dense::HessenbergQrT<S> qr;    ///< projected least-squares factorization
};

using KrylovWorkspace = KrylovWorkspaceT<double>;

/// Reusable state for one FT-GMRES instance: outer FGMRES + inner GMRES.
struct FtGmresWorkspace {
  KrylovWorkspace outer;
  KrylovWorkspace inner;
  /// Float inner arena for precision=float configurations (unused and
  /// unallocated on the default double path).
  KrylovWorkspaceT<float> inner_f32;
  /// Cached narrowed-operator mirror (scalar/index-compressed CSR copy +
  /// bytes-streamed counters) for non-default precision/index
  /// configurations; null on the default path.
  std::shared_ptr<MixedPlaneBase> plane;
};

} // namespace sdcgmres::krylov
