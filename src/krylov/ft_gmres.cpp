#include "krylov/ft_gmres.hpp"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "krylov/mixed.hpp"

namespace sdcgmres::krylov {

GmresOptions InnerGmresPreconditioner::options_for(
    std::size_t outer_index) const {
  GmresOptions opts = opts_;
  if (robust_first_solve_ && outer_index == 0) {
    // Paper Section VII-E-1: spend extra effort where faults hurt most.
    // CGS2's silent second pass restores the correct total projection
    // coefficient after a single multiplicative fault in the first pass.
    opts.ortho = Orthogonalization::CGS2;
  }
  return opts;
}

GmresEngine InnerGmresPreconditioner::make_engine(std::span<const double> q,
                                                  std::size_t outer_index,
                                                  std::span<double> z) {
  // Zero initial guess, solved in place in the caller's z storage; the
  // inner solve never sees an owning vector (b is the outer basis column,
  // x the outer Z-arena column).
  cur_q_ = q;
  cur_z_ = z;
  cur_outer_ = outer_index;
  retrying_ = false;
  pending_retry_iters_ = 0;
  pending_retry_applies_ = 0;
  pending_retry_syncs_ = 0;
  std::fill(z.begin(), z.end(), 0.0);
  return GmresEngine(*a_, q, z, options_for(outer_index), hook_, outer_index,
                     workspace(), /*residual_history=*/nullptr);
}

GmresEngine InnerGmresPreconditioner::make_reliable_retry(
    const GmresEngine& aborted) {
  // Carry the aborted attempt's effort into the eventual record, then
  // rebuild the identical solve with the hook detached: no campaign can
  // re-inject and no detector can re-abort -- the recompute is reliable.
  pending_retry_iters_ = aborted.stats().iterations;
  pending_retry_applies_ = aborted.stats().operator_applies;
  pending_retry_syncs_ = aborted.stats().global_syncs;
  retrying_ = true;
  std::fill(cur_z_.begin(), cur_z_.end(), 0.0);
  return GmresEngine(*a_, cur_q_, cur_z_, options_for(cur_outer_),
                     /*hook=*/nullptr, cur_outer_, workspace(),
                     /*residual_history=*/nullptr);
}

void InnerGmresPreconditioner::finish_engine(const GmresEngine& engine) {
  const GmresStats& inner = engine.stats();
  InnerSolveRecord rec{.outer_index = engine.solve_index(),
                       .status = inner.status,
                       .iterations = pending_retry_iters_ + inner.iterations,
                       .operator_applies =
                           pending_retry_applies_ + inner.operator_applies,
                       .residual_norm = inner.residual_norm};
  rec.global_syncs = pending_retry_syncs_ + inner.global_syncs;
  rec.reliable_retries = retrying_ ? 1 : 0;
  rec.triggered_outer_restart =
      recovery_ == InnerRecovery::RestartOuter &&
      inner.status == SolveStatus::AbortedByDetector;
  records_.push_back(rec);
  retrying_ = false;
  pending_retry_iters_ = 0;
  pending_retry_applies_ = 0;
  pending_retry_syncs_ = 0;
}

void InnerGmresPreconditioner::apply(std::span<const double> q,
                                     std::size_t outer_index,
                                     std::span<double> z) {
  // The canonical straight-through drive of the shared engine (the batch
  // driver runs the same protocol with the products fused per block,
  // including the reliable-retry turnover below).
  GmresEngine engine = make_engine(q, outer_index, z);
  drive_to_completion(*a_, engine);
  if (wants_reliable_retry(engine)) {
    GmresEngine retry = make_reliable_retry(engine);
    drive_to_completion(*a_, retry);
    finish_engine(retry);
    return;
  }
  finish_engine(engine);
}

FtGmresResult detail::make_ft_gmres_result(
    FgmresResult&& outer, std::vector<InnerSolveRecord> inner_solves) {
  FtGmresResult result;
  result.x = std::move(outer.x);
  result.status = outer.status;
  result.outer_iterations = outer.outer_iterations;
  result.residual_norm = outer.residual_norm;
  result.residual_history = std::move(outer.residual_history);
  result.inner_solves = std::move(inner_solves);
  result.sanitized_outputs = outer.sanitized_outputs;
  result.outer_restarts = outer.outer_restarts;
  result.global_syncs = outer.global_syncs;
  for (const InnerSolveRecord& rec : result.inner_solves) {
    result.total_inner_iterations += rec.iterations;
    result.total_inner_applies += rec.operator_applies;
    result.reliable_retries += rec.reliable_retries;
    result.global_syncs += rec.global_syncs;
  }
  return result;
}

namespace {

/// The shared solo drive: the outer engine's loop (same as fgmres()'s,
/// driven directly so RestartOuter can divert a flagged iteration into
/// restart_cycle()) around any inner preconditioner exposing the
/// apply / last_record_requests_outer_restart / records protocol --
/// the reliable InnerGmresPreconditioner or a MixedInnerGmresT mirror.
template <typename Inner>
FtGmresResult drive_solo(const LinearOperator& A, const la::Vector& b,
                         const FtGmresOptions& opts, Inner& inner,
                         FtGmresWorkspace& w) {
  const la::Vector x0(A.cols());
  FgmresEngine engine(A, b.span(), x0.span(), opts.outer, w.outer);
  if (!engine.start()) {
    while (true) {
      const FgmresEngine::PrecondRequest req = engine.begin_iteration();
      inner.apply(req.q, req.outer_index, req.z);
      if (inner.last_record_requests_outer_restart()) {
        if (engine.restart_cycle()) break;
        continue;
      }
      A.apply(engine.direction(), engine.v_target());
      if (engine.advance()) break;
    }
  }
  return detail::make_ft_gmres_result(engine.take_result(), inner.records());
}

/// Solo drive of a mixed-plane configuration: the inner solves run on
/// the narrowed <S, I> mirror cached in the workspace; the outer
/// iteration (and its products) stays on the original double operator.
template <typename S, typename I>
FtGmresResult ft_gmres_mixed(const LinearOperator& A, const la::Vector& b,
                             const FtGmresOptions& opts,
                             ArnoldiHook* inner_hook, FtGmresWorkspace& w) {
  MixedPlaneOf<S>& plane = ensure_plane<S, I>(w.plane, A);
  MixedInnerGmresT<S> inner(plane.typed_op(), opts.inner, inner_hook,
                            opts.robust_first_inner,
                            &inner_workspace_for<S>(w), opts.recovery);
  return drive_solo(A, b, opts, inner, w);
}

} // namespace

FtGmresResult ft_gmres(const LinearOperator& A, const la::Vector& b,
                       const FtGmresOptions& opts, ArnoldiHook* inner_hook,
                       FtGmresWorkspace* ws) {
  FtGmresWorkspace local;
  FtGmresWorkspace& w = (ws != nullptr) ? *ws : local;
  // Non-default (precision, index_width) pairs route the inner solves
  // through the narrowed mirror; the default pair keeps the original
  // path (no mirror is ever built, no staging copies happen).
  if (opts.precision == Precision::Float) {
    if (opts.index_width == IndexWidth::I32) {
      return ft_gmres_mixed<float, std::int32_t>(A, b, opts, inner_hook, w);
    }
    return ft_gmres_mixed<float, std::int64_t>(A, b, opts, inner_hook, w);
  }
  if (opts.index_width == IndexWidth::I32) {
    return ft_gmres_mixed<double, std::int32_t>(A, b, opts, inner_hook, w);
  }
  InnerGmresPreconditioner inner(A, opts.inner, inner_hook,
                                 opts.robust_first_inner, &w.inner,
                                 opts.recovery);
  return drive_solo(A, b, opts, inner, w);
}

FtGmresResult ft_gmres(const sparse::CsrMatrix& A, const la::Vector& b,
                       const FtGmresOptions& opts, ArnoldiHook* inner_hook,
                       FtGmresWorkspace* ws) {
  const CsrOperator op(A);
  return ft_gmres(op, b, opts, inner_hook, ws);
}

} // namespace sdcgmres::krylov
