#include "krylov/ft_gmres.hpp"

#include <algorithm>
#include <utility>

namespace sdcgmres::krylov {

GmresOptions InnerGmresPreconditioner::options_for(
    std::size_t outer_index) const {
  GmresOptions opts = opts_;
  if (robust_first_solve_ && outer_index == 0) {
    // Paper Section VII-E-1: spend extra effort where faults hurt most.
    // CGS2's silent second pass restores the correct total projection
    // coefficient after a single multiplicative fault in the first pass.
    opts.ortho = Orthogonalization::CGS2;
  }
  return opts;
}

GmresEngine InnerGmresPreconditioner::make_engine(std::span<const double> q,
                                                  std::size_t outer_index,
                                                  std::span<double> z) {
  // Zero initial guess, solved in place in the caller's z storage; the
  // inner solve never sees an owning vector (b is the outer basis column,
  // x the outer Z-arena column).
  std::fill(z.begin(), z.end(), 0.0);
  return GmresEngine(*a_, q, z, options_for(outer_index), hook_, outer_index,
                     workspace(), /*residual_history=*/nullptr);
}

void InnerGmresPreconditioner::finish_engine(const GmresEngine& engine) {
  const GmresStats& inner = engine.stats();
  records_.push_back({.outer_index = engine.solve_index(),
                      .status = inner.status,
                      .iterations = inner.iterations,
                      .operator_applies = inner.operator_applies,
                      .residual_norm = inner.residual_norm});
}

void InnerGmresPreconditioner::apply(std::span<const double> q,
                                     std::size_t outer_index,
                                     std::span<double> z) {
  // The canonical straight-through drive of the shared engine (the batch
  // driver runs the same protocol with the products fused per block).
  GmresEngine engine = make_engine(q, outer_index, z);
  drive_to_completion(*a_, engine);
  finish_engine(engine);
}

FtGmresResult detail::make_ft_gmres_result(
    FgmresResult&& outer, std::vector<InnerSolveRecord> inner_solves) {
  FtGmresResult result;
  result.x = std::move(outer.x);
  result.status = outer.status;
  result.outer_iterations = outer.outer_iterations;
  result.residual_norm = outer.residual_norm;
  result.residual_history = std::move(outer.residual_history);
  result.inner_solves = std::move(inner_solves);
  result.sanitized_outputs = outer.sanitized_outputs;
  for (const InnerSolveRecord& rec : result.inner_solves) {
    result.total_inner_iterations += rec.iterations;
    result.total_inner_applies += rec.operator_applies;
  }
  return result;
}

FtGmresResult ft_gmres(const LinearOperator& A, const la::Vector& b,
                       const FtGmresOptions& opts, ArnoldiHook* inner_hook,
                       FtGmresWorkspace* ws) {
  InnerGmresPreconditioner inner(A, opts.inner, inner_hook,
                                 opts.robust_first_inner,
                                 ws != nullptr ? &ws->inner : nullptr);
  FgmresResult outer =
      fgmres(A, b, la::Vector(A.cols()), opts.outer, inner,
             ws != nullptr ? &ws->outer : nullptr);
  return detail::make_ft_gmres_result(std::move(outer), inner.records());
}

FtGmresResult ft_gmres(const sparse::CsrMatrix& A, const la::Vector& b,
                       const FtGmresOptions& opts, ArnoldiHook* inner_hook,
                       FtGmresWorkspace* ws) {
  const CsrOperator op(A);
  return ft_gmres(op, b, opts, inner_hook, ws);
}

} // namespace sdcgmres::krylov
