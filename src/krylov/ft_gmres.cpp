#include "krylov/ft_gmres.hpp"

#include <algorithm>
#include <utility>

namespace sdcgmres::krylov {

void InnerGmresPreconditioner::apply(std::span<const double> q,
                                     std::size_t outer_index,
                                     std::span<double> z) {
  GmresOptions opts = opts_;
  if (robust_first_solve_ && outer_index == 0) {
    // Paper Section VII-E-1: spend extra effort where faults hurt most.
    // CGS2's silent second pass restores the correct total projection
    // coefficient after a single multiplicative fault in the first pass.
    opts.ortho = Orthogonalization::CGS2;
  }
  // Zero initial guess, solved in place in the caller's z storage; the
  // inner solve never sees an owning vector (b is the outer basis column,
  // x the outer Z-arena column).
  std::fill(z.begin(), z.end(), 0.0);
  const GmresStats inner =
      gmres_in_place(*a_, q, z, opts, hook_, outer_index, ws_,
                     /*residual_history=*/nullptr);
  records_.push_back({.outer_index = outer_index,
                      .status = inner.status,
                      .iterations = inner.iterations,
                      .residual_norm = inner.residual_norm});
}

FtGmresResult detail::make_ft_gmres_result(
    FgmresResult&& outer, std::vector<InnerSolveRecord> inner_solves) {
  FtGmresResult result;
  result.x = std::move(outer.x);
  result.status = outer.status;
  result.outer_iterations = outer.outer_iterations;
  result.residual_norm = outer.residual_norm;
  result.residual_history = std::move(outer.residual_history);
  result.inner_solves = std::move(inner_solves);
  result.sanitized_outputs = outer.sanitized_outputs;
  for (const InnerSolveRecord& rec : result.inner_solves) {
    result.total_inner_iterations += rec.iterations;
  }
  return result;
}

FtGmresResult ft_gmres(const LinearOperator& A, const la::Vector& b,
                       const FtGmresOptions& opts, ArnoldiHook* inner_hook,
                       FtGmresWorkspace* ws) {
  InnerGmresPreconditioner inner(A, opts.inner, inner_hook,
                                 opts.robust_first_inner,
                                 ws != nullptr ? &ws->inner : nullptr);
  FgmresResult outer =
      fgmres(A, b, la::Vector(A.cols()), opts.outer, inner,
             ws != nullptr ? &ws->outer : nullptr);
  return detail::make_ft_gmres_result(std::move(outer), inner.records());
}

FtGmresResult ft_gmres(const sparse::CsrMatrix& A, const la::Vector& b,
                       const FtGmresOptions& opts, ArnoldiHook* inner_hook,
                       FtGmresWorkspace* ws) {
  const CsrOperator op(A);
  return ft_gmres(op, b, opts, inner_hook, ws);
}

} // namespace sdcgmres::krylov
