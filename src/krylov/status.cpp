#include "krylov/status.hpp"

#include <cstring>

namespace sdcgmres::krylov {

const char* to_string(SolveStatus status) noexcept {
  switch (status) {
    case SolveStatus::Converged: return "converged";
    case SolveStatus::HappyBreakdown: return "happy-breakdown";
    case SolveStatus::MaxIterations: return "max-iterations";
    case SolveStatus::RankDeficient: return "rank-deficient";
    case SolveStatus::AbortedByDetector: return "aborted-by-detector";
    case SolveStatus::Indefinite: return "indefinite";
    case SolveStatus::Diverged: return "diverged";
    case SolveStatus::DeadlineExceeded: return "deadline-exceeded";
  }
  return "unknown";
}

bool status_from_string(const char* name, SolveStatus& out) noexcept {
  constexpr SolveStatus all[] = {
      SolveStatus::Converged,         SolveStatus::HappyBreakdown,
      SolveStatus::MaxIterations,     SolveStatus::RankDeficient,
      SolveStatus::AbortedByDetector, SolveStatus::Indefinite,
      SolveStatus::Diverged,          SolveStatus::DeadlineExceeded,
  };
  for (const SolveStatus s : all) {
    if (std::strcmp(name, to_string(s)) == 0) {
      out = s;
      return true;
    }
  }
  return false;
}

} // namespace sdcgmres::krylov
