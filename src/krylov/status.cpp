#include "krylov/status.hpp"

namespace sdcgmres::krylov {

const char* to_string(SolveStatus status) noexcept {
  switch (status) {
    case SolveStatus::Converged: return "converged";
    case SolveStatus::HappyBreakdown: return "happy-breakdown";
    case SolveStatus::MaxIterations: return "max-iterations";
    case SolveStatus::RankDeficient: return "rank-deficient";
    case SolveStatus::AbortedByDetector: return "aborted-by-detector";
    case SolveStatus::Indefinite: return "indefinite";
  }
  return "unknown";
}

} // namespace sdcgmres::krylov
