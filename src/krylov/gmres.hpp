#pragma once
/// \file gmres.hpp
/// \brief GMRES (Saad & Schultz 1986) with restart, pluggable
/// orthogonalization, least-squares policies, and Arnoldi hooks.
///
/// This is Algorithm 1 of the paper.  The hook parameter is the seam where
/// the SDC framework injects faults into the projection coefficients and
/// where the invariant detector checks |h(i,j)| <= ||A||_F; passing no hook
/// gives the plain solver.
///
/// The one implementation is the step-driveable GmresEngine below (the
/// inner-solve counterpart of krylov::FgmresEngine): gmres() and
/// gmres_in_place() drive it straight through, and the lockstep batch
/// driver (krylov/ft_gmres_batch.cpp) interleaves many engines so the B
/// inner solves of a batch share one fused SpMM per inner iteration.

#include <cstddef>
#include <span>
#include <vector>

#include "dense/lsq_policies.hpp"
#include "krylov/hooks.hpp"
#include "krylov/operator.hpp"
#include "krylov/orthogonalize.hpp"
#include "krylov/precond.hpp"
#include "krylov/status.hpp"
#include "krylov/workspace.hpp"
#include "la/vector.hpp"
#include "sparse/csr.hpp"

namespace sdcgmres::krylov {

/// Configuration of a GMRES solve.
struct GmresOptions {
  std::size_t max_iters = 100; ///< total iteration budget (across restarts)
  std::size_t restart = 0;     ///< restart cycle length; 0 = no restart
  double tol = 1e-8;           ///< relative residual target (vs ||b||);
                               ///< 0 disables the convergence test, giving
                               ///< the paper's fixed-iteration inner solves
  Orthogonalization ortho = Orthogonalization::MGS;
  dense::LsqPolicy lsq_policy = dense::LsqPolicy::Standard;
  double truncation_tol = 1e-12; ///< SVD cutoff for rank-revealing policies
  double breakdown_tol = 1e-14;  ///< happy-breakdown threshold, relative to
                                 ///< the norm of the unorthogonalized vector
  const Preconditioner* right_precond = nullptr; ///< optional fixed M;
                                 ///< solves A M^{-1} u = b, x = M^{-1} u
  double divergence_factor = 0.0; ///< residual-explosion guard: a residual
                                 ///< estimate exceeding factor x the
                                 ///< initial residual (or going non-finite)
                                 ///< drops the exploding column and stops
                                 ///< with status Diverged, returning the
                                 ///< pre-explosion iterate (0 disables).
                                 ///< In FT-GMRES this bounds how long a
                                 ///< pathologically corrupted inner solve
                                 ///< can churn on garbage.
  std::size_t s_step = 1;        ///< s-step (communication-avoiding) mode:
                                 ///< stage s matrix powers per block, then
                                 ///< commit them with ONE block projection
                                 ///< and ONE TSQR (2 global reductions per
                                 ///< s columns instead of ~2 per column).
                                 ///< 1 = the classical one-vector-at-a-time
                                 ///< path, bitwise identical to pre-s-step
                                 ///< builds.  Must be in 1..restart-cycle
                                 ///< length and is incompatible with
                                 ///< right_precond (validated up front).
};

/// Result of a GMRES solve.
struct GmresResult {
  la::Vector x;                     ///< final iterate
  SolveStatus status = SolveStatus::MaxIterations;
  std::size_t iterations = 0;       ///< Arnoldi iterations performed
  double residual_norm = 0.0;       ///< final least-squares residual estimate
  std::vector<double> residual_history; ///< estimate after each iteration
  std::size_t lsq_effective_rank = 0;   ///< rank used by the final update
  bool lsq_fallback_triggered = false;  ///< policy-2 fallback fired
  std::size_t global_syncs = 0;         ///< global reductions consumed (see
                                        ///< GmresStats::global_syncs)
};

/// Statistics of an in-place GMRES solve (everything in GmresResult except
/// the owning iterate and history, which the span entry point leaves with
/// the caller).
struct GmresStats {
  SolveStatus status = SolveStatus::MaxIterations;
  std::size_t iterations = 0;
  double residual_norm = 0.0;
  std::size_t operator_applies = 0; ///< operator products the solve consumed
                                    ///< (one per restart-cycle residual, one
                                    ///< per Arnoldi iteration); independent
                                    ///< of whether the products arrived as
                                    ///< solo SpMVs or fused SpMM columns
  std::size_t lsq_effective_rank = 0;
  bool lsq_fallback_triggered = false;
  std::size_t global_syncs = 0; ///< global reductions the solve consumed:
                                ///< every norm and every (blocked) inner-
                                ///< product pass that would be an
                                ///< all-reduce on a distributed machine.
                                ///< MGS counts one per basis column, CGS
                                ///< one per pass; the s-step block commit
                                ///< counts exactly two (projection + TSQR)
                                ///< per s columns.  This is the metric the
                                ///< communication-avoiding mode improves,
                                ///< measurable even where wall-clock is
                                ///< flat (1-core containers).
};

/// Step-driveable GMRES: the single implementation behind gmres(),
/// gmres_in_place(), and the FT-GMRES inner solve
/// (InnerGmresPreconditioner).  Mirrors krylov::FgmresEngine: the
/// iteration is split at its external data dependencies -- the operator
/// applications -- so a lockstep driver can interleave many engines and
/// fuse their products into one apply_block per step.
///
/// GMRES consumes two kinds of products, and the engine exposes which one
/// it is waiting for:
///
///   awaiting_residual() == true   (start of every restart cycle)
///     caller computes A * residual_operand() into residual_target(),
///     then calls start_cycle()
///   awaiting_residual() == false  (one Arnoldi iteration)
///     begin_iteration()  ->  hook events + optional right-precond z
///     caller computes A * direction() into v_target()
///     advance()          ->  orthogonalization, projected QR, breakdown/
///                            abort/convergence checks, cycle turnover
///
/// The canonical driver loop (exactly what gmres_in_place runs):
///
///   while (!engine.finished()) {
///     if (engine.awaiting_residual()) {
///       A.apply(engine.residual_operand(), engine.residual_target());
///       engine.start_cycle();
///     } else {
///       engine.begin_iteration();
///       A.apply(engine.direction(), engine.v_target());
///       engine.advance();
///     }
///   }
///
/// Both pending operands are single columns of A's operand space, so a
/// batch driver can pack engines in either phase into the same fused
/// apply_block.  The per-instance floating-point and hook-event sequence
/// is EXACTLY the sequence gmres_in_place() executes, and the engine
/// touches no state outside its own workspace, so lockstep instances are
/// bitwise identical to their solo runs as long as the caller-supplied
/// products are (CSR SpMM columns are bitwise equal to SpMV).
///
/// Lifetime: \p b, \p x, \p ws, and \p residual_history must outlive the
/// engine; \p x is updated in place at the end of every restart cycle.
///
/// Templated on the scalar type.  GmresEngineT<double> (aliased
/// GmresEngine) is the reliable-plane engine, arithmetic unchanged from
/// the pre-template class.  GmresEngineT<float> is the mixed-precision
/// inner engine: basis, Hessenberg recurrence, and orthogonalization run
/// in float (the projected least-squares solve stays double, see
/// dense::HessenbergQrT); control-flow comparisons are made on widened
/// (double) values.  The double-typed ArnoldiHook protocol is preserved
/// for the float engine by widening at each event: on_matvec_result and
/// on_iteration_end observe double copies of the float state (narrowed
/// back after possible mutation), a deliberate correctness-over-speed
/// choice that only costs when a hook is installed.  The float engine
/// does not support right preconditioning (the Preconditioner seam is
/// double-typed; FT-GMRES inner solves never configure one) and throws
/// std::invalid_argument if one is set.
template <typename S>
class GmresEngineT {
public:
  /// Validates shapes/options (throws std::invalid_argument exactly as
  /// gmres() does), reserves the workspace, and reports the solve to the
  /// hook (on_solve_begin).  The first step is always the initial
  /// residual product: awaiting_residual() is true after construction.
  /// \p rows / \p cols describe the operator the caller will apply.
  GmresEngineT(std::size_t rows, std::size_t cols, std::span<const S> b,
               std::span<S> x, const GmresOptions& opts, ArnoldiHook* hook,
               std::size_t solve_index, KrylovWorkspaceT<S>& ws,
               std::vector<double>* residual_history);

  /// Convenience: shapes taken from a LinearOperator (the operator itself
  /// is not retained -- products are always caller-provided).
  GmresEngineT(const LinearOperator& A, std::span<const S> b, std::span<S> x,
               const GmresOptions& opts, ArnoldiHook* hook,
               std::size_t solve_index, KrylovWorkspaceT<S>& ws,
               std::vector<double>* residual_history)
      : GmresEngineT(A.rows(), A.cols(), b, x, opts, hook, solve_index, ws,
                     residual_history) {}

  /// True once a terminal status has been reached; no further protocol
  /// calls are allowed.
  [[nodiscard]] bool finished() const noexcept { return finished_; }

  /// True when the next step is a restart-cycle residual product
  /// (A * residual_operand() -> residual_target() -> start_cycle());
  /// false when it is an Arnoldi product (begin_iteration() ->
  /// A * direction() -> v_target() -> advance()).
  [[nodiscard]] bool awaiting_residual() const noexcept {
    return awaiting_residual_;
  }

  /// Operand of the pending cycle-start product: the current iterate.
  [[nodiscard]] std::span<const S> residual_operand() const noexcept {
    return x_;
  }

  /// Destination for A * residual_operand(); the caller must fully
  /// overwrite it before start_cycle().
  [[nodiscard]] std::span<S> residual_target();

  /// Consume the cycle-start product: form r = b - A*x, test for
  /// immediate convergence / a non-finite iterate, and set up the basis
  /// and projected-QR state of the new cycle.  Returns finished().
  bool start_cycle();

  /// Begin Arnoldi iteration j: hook on_iteration_begin, plus the
  /// right-preconditioner application z = M^{-1} q_j when configured.
  void begin_iteration();

  /// Operand of the pending Arnoldi product (q_j, or z when
  /// right-preconditioned).  Valid between begin_iteration() and
  /// advance().
  [[nodiscard]] std::span<const S> direction() const;

  /// Destination for A * direction(); the caller must fully overwrite it
  /// before advance().
  [[nodiscard]] std::span<S> v_target();

  /// Consume the Arnoldi product: hook on_matvec_result,
  /// orthogonalization (with per-coefficient hook events), detector
  /// aborts, the projected QR update, breakdown and convergence tests.
  /// Ends the cycle (forming the iterate update in x) when one of those
  /// fires or the cycle/budget is exhausted.  Returns finished().
  bool advance();

  /// Hook identifier of this solve (FT-GMRES: the owning outer iteration).
  [[nodiscard]] std::size_t solve_index() const noexcept {
    return solve_index_;
  }

  /// Lockstep-driver optimization: point residual_target()/v_target()
  /// directly at \p target (a column of the driver's shared staging
  /// BlockWorkspace) so the fused apply_block writes the product where
  /// the engine consumes it, eliminating the per-column unpack copy.
  /// The binding is transient -- the driver re-binds before every step
  /// (column indices shift as instances finish) and must unbind after.
  /// Values are read from the bound span exactly where the unbound path
  /// reads its own scratch, so results are bitwise identical.
  void bind_product_target(std::span<S> target) noexcept {
    ext_target_ = target;
    ext_bound_ = true;
  }
  /// Drop the external product-target binding (see bind_product_target).
  void unbind_product_target() noexcept {
    ext_target_ = {};
    ext_bound_ = false;
  }

  /// Accumulated statistics (final once finished()).
  [[nodiscard]] const GmresStats& stats() const noexcept { return stats_; }

private:
  /// Everything after an iteration or budget check ends a cycle: form the
  /// update x += (M^{-1}) Q_k y from the accepted columns and either
  /// finish the solve or turn over into the next cycle's residual phase.
  bool finish_cycle(bool aborted, bool breakdown, bool converged,
                    bool diverged, bool qr_pop_pending);

  /// s-step mode: consume one staged matrix power (hook events, stage
  /// bookkeeping); triggers commit_block() after the block's last power.
  bool advance_staged();

  /// s-step mode: turn the staged powers into committed basis columns --
  /// one block projection against the existing basis (1 reduction), one
  /// TSQR over the projected block (1 reduction), then per-column
  /// Hessenberg recovery with the same hook/termination protocol as the
  /// one-vector path.
  bool commit_block();

  std::span<const S> b_;
  std::span<S> x_;
  GmresOptions opts_;
  ArnoldiHook* hook_;
  std::size_t solve_index_;
  KrylovWorkspaceT<S>* w_;
  std::vector<double>* history_;
  std::size_t n_ = 0;
  std::size_t cycle_len_ = 0;
  double abs_target_ = 0.0;
  double beta0_ = -1.0; ///< initial residual norm (divergence reference);
                        ///< negative until the first cycle measured it
  bool awaiting_residual_ = true;
  bool finished_ = false;
  GmresStats stats_;
  // --- s-step staging state (opts_.s_step > 1 only) ---
  std::size_t s_ = 1;           ///< opts_.s_step (validated)
  std::size_t stage_count_ = 0; ///< powers in the current block; 0 = not
                                ///< staging
  std::size_t stage_idx_ = 0;   ///< next power within the block
  std::size_t block_j0_ = 0;    ///< committed columns when the block began
  std::vector<double> hmat_;    ///< committed (possibly hook-mutated)
                                ///< Hessenberg columns of this cycle,
                                ///< column-major, ld = cycle_len_+1; the
                                ///< block recovery recursion reads them
                                ///< back, so corruption propagates into
                                ///< later columns as it does on the
                                ///< one-vector path
  std::vector<S> cs_, rs_;      ///< projection coeffs / TSQR R (scalar S)
  std::vector<double> cmat_, rmat_, hraw_; ///< widened recovery buffers
  // --- lockstep product-target binding (see bind_product_target) ---
  std::span<S> ext_target_;
  bool ext_bound_ = false;
  // Hook adapters for the float instantiation: double mirrors handed to
  // the double-typed hook protocol (unused, and empty, for S = double).
  la::Vector hook_vec_;
  la::KrylovBasis hook_basis_;
  std::vector<double> hook_hcol_;
};

using GmresEngine = GmresEngineT<double>;

/// Advance \p engine by exactly one protocol step with a solo operator
/// application: the cycle-start residual product + start_cycle() when
/// awaiting_residual(), else begin_iteration() + Arnoldi product +
/// advance().  Returns finished().  This is the unit the batch driver's
/// one-live-engine tails reuse; lockstep blocks run the same step with
/// the product replaced by a fused apply_block column.
bool step_with_apply(const LinearOperator& A, GmresEngine& engine);

/// Drive \p engine to completion with solo operator applications -- the
/// canonical straight-through loop (shown in the GmresEngine docs),
/// shared by gmres_in_place() and the solo FT-GMRES inner-solve path so
/// the protocol exists exactly once.
void drive_to_completion(const LinearOperator& A, GmresEngine& engine);

/// Span-core GMRES: solve A x = b with \p x holding the initial guess on
/// entry and the final iterate on exit.  This is the zero-copy entry point
/// the FT-GMRES inner solve uses: b is a basis column of the outer solver
/// and x a Z-arena column, with no owning la::Vector at the boundary.
/// Implemented as the canonical straight-through drive of GmresEngine.
/// \param ws optional reusable workspace (basis arena + projected QR);
///        with a workspace of matching shape the solve performs no heap
///        allocation.  nullptr allocates internally, as before.
/// \param residual_history optional sink for the per-iteration residual
///        estimates (appended; pass nullptr to skip recording).
GmresStats gmres_in_place(const LinearOperator& A, std::span<const double> b,
                          std::span<double> x, const GmresOptions& opts,
                          ArnoldiHook* hook = nullptr,
                          std::size_t solve_index = 0,
                          KrylovWorkspace* ws = nullptr,
                          std::vector<double>* residual_history = nullptr);

/// Solve A x = b starting from \p x0.
/// \param hook optional Arnoldi hook (fault injection / detection)
/// \param solve_index forwarded to the hook as the solve identifier; in
///        FT-GMRES this is the outer iteration owning the inner solve.
/// \param ws optional reusable workspace (see gmres_in_place)
[[nodiscard]] GmresResult gmres(const LinearOperator& A, const la::Vector& b,
                                const la::Vector& x0, const GmresOptions& opts,
                                ArnoldiHook* hook = nullptr,
                                std::size_t solve_index = 0,
                                KrylovWorkspace* ws = nullptr);

/// Convenience overload for CSR matrices with a zero initial guess.
[[nodiscard]] GmresResult gmres(const sparse::CsrMatrix& A, const la::Vector& b,
                                const GmresOptions& opts,
                                ArnoldiHook* hook = nullptr);

} // namespace sdcgmres::krylov
