#pragma once
/// \file gmres.hpp
/// \brief GMRES (Saad & Schultz 1986) with restart, pluggable
/// orthogonalization, least-squares policies, and Arnoldi hooks.
///
/// This is Algorithm 1 of the paper.  The hook parameter is the seam where
/// the SDC framework injects faults into the projection coefficients and
/// where the invariant detector checks |h(i,j)| <= ||A||_F; passing no hook
/// gives the plain solver.

#include <cstddef>
#include <span>
#include <vector>

#include "dense/lsq_policies.hpp"
#include "krylov/hooks.hpp"
#include "krylov/operator.hpp"
#include "krylov/orthogonalize.hpp"
#include "krylov/precond.hpp"
#include "krylov/status.hpp"
#include "krylov/workspace.hpp"
#include "la/vector.hpp"
#include "sparse/csr.hpp"

namespace sdcgmres::krylov {

/// Configuration of a GMRES solve.
struct GmresOptions {
  std::size_t max_iters = 100; ///< total iteration budget (across restarts)
  std::size_t restart = 0;     ///< restart cycle length; 0 = no restart
  double tol = 1e-8;           ///< relative residual target (vs ||b||);
                               ///< 0 disables the convergence test, giving
                               ///< the paper's fixed-iteration inner solves
  Orthogonalization ortho = Orthogonalization::MGS;
  dense::LsqPolicy lsq_policy = dense::LsqPolicy::Standard;
  double truncation_tol = 1e-12; ///< SVD cutoff for rank-revealing policies
  double breakdown_tol = 1e-14;  ///< happy-breakdown threshold, relative to
                                 ///< the norm of the unorthogonalized vector
  const Preconditioner* right_precond = nullptr; ///< optional fixed M;
                                 ///< solves A M^{-1} u = b, x = M^{-1} u
};

/// Result of a GMRES solve.
struct GmresResult {
  la::Vector x;                     ///< final iterate
  SolveStatus status = SolveStatus::MaxIterations;
  std::size_t iterations = 0;       ///< Arnoldi iterations performed
  double residual_norm = 0.0;       ///< final least-squares residual estimate
  std::vector<double> residual_history; ///< estimate after each iteration
  std::size_t lsq_effective_rank = 0;   ///< rank used by the final update
  bool lsq_fallback_triggered = false;  ///< policy-2 fallback fired
};

/// Statistics of an in-place GMRES solve (everything in GmresResult except
/// the owning iterate and history, which the span entry point leaves with
/// the caller).
struct GmresStats {
  SolveStatus status = SolveStatus::MaxIterations;
  std::size_t iterations = 0;
  double residual_norm = 0.0;
  std::size_t lsq_effective_rank = 0;
  bool lsq_fallback_triggered = false;
};

/// Span-core GMRES: solve A x = b with \p x holding the initial guess on
/// entry and the final iterate on exit.  This is the zero-copy entry point
/// the FT-GMRES inner solve uses: b is a basis column of the outer solver
/// and x a Z-arena column, with no owning la::Vector at the boundary.
/// \param ws optional reusable workspace (basis arena + projected QR);
///        with a workspace of matching shape the solve performs no heap
///        allocation.  nullptr allocates internally, as before.
/// \param residual_history optional sink for the per-iteration residual
///        estimates (appended; pass nullptr to skip recording).
GmresStats gmres_in_place(const LinearOperator& A, std::span<const double> b,
                          std::span<double> x, const GmresOptions& opts,
                          ArnoldiHook* hook = nullptr,
                          std::size_t solve_index = 0,
                          KrylovWorkspace* ws = nullptr,
                          std::vector<double>* residual_history = nullptr);

/// Solve A x = b starting from \p x0.
/// \param hook optional Arnoldi hook (fault injection / detection)
/// \param solve_index forwarded to the hook as the solve identifier; in
///        FT-GMRES this is the outer iteration owning the inner solve.
/// \param ws optional reusable workspace (see gmres_in_place)
[[nodiscard]] GmresResult gmres(const LinearOperator& A, const la::Vector& b,
                                const la::Vector& x0, const GmresOptions& opts,
                                ArnoldiHook* hook = nullptr,
                                std::size_t solve_index = 0,
                                KrylovWorkspace* ws = nullptr);

/// Convenience overload for CSR matrices with a zero initial guess.
[[nodiscard]] GmresResult gmres(const sparse::CsrMatrix& A, const la::Vector& b,
                                const GmresOptions& opts,
                                ArnoldiHook* hook = nullptr);

} // namespace sdcgmres::krylov
