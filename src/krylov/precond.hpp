#pragma once
/// \file precond.hpp
/// \brief Stationary preconditioners and the flexible-preconditioner
/// interface used by FGMRES.

#include <cstddef>
#include <memory>

#include "krylov/operator.hpp"
#include "la/vector.hpp"
#include "sparse/csr.hpp"

namespace sdcgmres::krylov {

/// Fixed (non-flexible) preconditioner: z = M^{-1} r.
class Preconditioner {
public:
  virtual ~Preconditioner() = default;

  /// z := M^{-1} r.
  virtual void apply(const la::Vector& r, la::Vector& z) const = 0;
};

/// Identity preconditioner (no-op copy).
class IdentityPreconditioner final : public Preconditioner {
public:
  void apply(const la::Vector& r, la::Vector& z) const override;
};

/// Jacobi (diagonal) preconditioner: z_i = r_i / a_ii.
/// Throws std::invalid_argument at construction when a diagonal entry is 0.
class JacobiPreconditioner final : public Preconditioner {
public:
  explicit JacobiPreconditioner(const sparse::CsrMatrix& A);
  void apply(const la::Vector& r, la::Vector& z) const override;

private:
  la::Vector inv_diag_;
};

/// Truncated Neumann-series polynomial preconditioner:
///   M^{-1} = sum_{k=0}^{degree} (I - w A)^k * w,
/// valid when ||I - w A|| < 1.  Cheap, matrix-free, and a genuinely
/// different operator per degree -- a useful fixed preconditioner baseline.
class NeumannPolynomialPreconditioner final : public Preconditioner {
public:
  NeumannPolynomialPreconditioner(const LinearOperator& A, std::size_t degree,
                                  double omega);
  void apply(const la::Vector& r, la::Vector& z) const override;

private:
  const LinearOperator* a_;
  std::size_t degree_;
  double omega_;
};

/// Flexible preconditioner: may differ arbitrarily on each application.
/// This is the contract FGMRES needs (Saad 1993) and the seam where
/// FT-GMRES plugs in its *unreliable inner solver* (the sandbox guest).
class FlexiblePreconditioner {
public:
  virtual ~FlexiblePreconditioner() = default;

  /// z := M_j^{-1} q where j = \p outer_index; called once per outer
  /// iteration.
  virtual void apply(const la::Vector& q, std::size_t outer_index,
                     la::Vector& z) = 0;
};

/// Adapts a fixed Preconditioner to the flexible interface.
class FixedFlexibleAdapter final : public FlexiblePreconditioner {
public:
  explicit FixedFlexibleAdapter(const Preconditioner& M) : m_(&M) {}
  void apply(const la::Vector& q, std::size_t outer_index,
             la::Vector& z) override {
    (void)outer_index;
    m_->apply(q, z);
  }

private:
  const Preconditioner* m_;
};

} // namespace sdcgmres::krylov
