#pragma once
/// \file precond.hpp
/// \brief Stationary preconditioners and the flexible-preconditioner
/// interface used by FGMRES.
///
/// Both interfaces are span-in/span-out at the core: solvers hand the
/// preconditioner a basis column (read-only span into the Krylov arena)
/// and receive the output directly in workspace storage (a Z-basis
/// column), with no owning la::Vector copies at the boundary.  Thin
/// la::Vector convenience overloads resize the output and forward.
///
/// Span contract: r/q and z never alias; z.size() == r.size(); the
/// implementation must write every entry of z.

#include <cstddef>
#include <memory>
#include <span>

#include "krylov/operator.hpp"
#include "la/block.hpp"
#include "la/vector.hpp"
#include "sparse/csr.hpp"

namespace sdcgmres::krylov {

/// Fixed (non-flexible) preconditioner: z = M^{-1} r.
class Preconditioner {
public:
  virtual ~Preconditioner() = default;

  /// z := M^{-1} r, the span core (see the span contract above).
  virtual void apply(std::span<const double> r, std::span<double> z) const = 0;

  /// Convenience for owning vectors; resizes z and forwards.
  void apply(const la::Vector& r, la::Vector& z) const {
    if (z.size() != r.size()) z.resize(r.size());
    apply(std::span<const double>(r.span()), z.span());
  }

  /// Z := M^{-1} R column by column, the block core.  r.cols() must equal
  /// z.cols() and the blocks must not alias; each output column must be
  /// bitwise identical to apply() on the matching operand column.  The
  /// default walks the columns through the span core, so every existing
  /// implementor keeps working; implementations with a fused multi-column
  /// kernel (e.g. a batched triangular sweep) may override.  A
  /// zero-column block is a no-op.
  virtual void apply_block(const la::BasisView& r, la::BlockView z) const {
    for (std::size_t j = 0; j < r.cols(); ++j) apply(r.col(j), z.col(j));
  }
};

/// Identity preconditioner (no-op copy).
class IdentityPreconditioner final : public Preconditioner {
public:
  using Preconditioner::apply;
  void apply(std::span<const double> r, std::span<double> z) const override;
};

/// Jacobi (diagonal) preconditioner: z_i = r_i / a_ii.
/// Throws std::invalid_argument at construction when a diagonal entry is 0.
class JacobiPreconditioner final : public Preconditioner {
public:
  explicit JacobiPreconditioner(const sparse::CsrMatrix& A);
  using Preconditioner::apply;
  void apply(std::span<const double> r, std::span<double> z) const override;

private:
  la::Vector inv_diag_;
};

/// Truncated Neumann-series polynomial preconditioner:
///   M^{-1} = sum_{k=0}^{degree} (I - w A)^k * w,
/// valid when ||I - w A|| < 1.  Cheap, matrix-free, and a genuinely
/// different operator per degree -- a useful fixed preconditioner baseline.
class NeumannPolynomialPreconditioner final : public Preconditioner {
public:
  NeumannPolynomialPreconditioner(const LinearOperator& A, std::size_t degree,
                                  double omega);
  using Preconditioner::apply;
  void apply(std::span<const double> r, std::span<double> z) const override;

private:
  const LinearOperator* a_;
  std::size_t degree_;
  double omega_;
};

/// Flexible preconditioner: may differ arbitrarily on each application.
/// This is the contract FGMRES needs (Saad 1993) and the seam where
/// FT-GMRES plugs in its *unreliable inner solver* (the sandbox guest).
class FlexiblePreconditioner {
public:
  virtual ~FlexiblePreconditioner() = default;

  /// z := M_j^{-1} q where j = \p outer_index, the span core; called once
  /// per outer iteration (see the span contract above).
  virtual void apply(std::span<const double> q, std::size_t outer_index,
                     std::span<double> z) = 0;

  /// Convenience for owning vectors; resizes z and forwards.
  void apply(const la::Vector& q, std::size_t outer_index, la::Vector& z) {
    if (z.size() != q.size()) z.resize(q.size());
    apply(std::span<const double>(q.span()), outer_index, z.span());
  }
};

/// Adapts a fixed Preconditioner to the flexible interface.
class FixedFlexibleAdapter final : public FlexiblePreconditioner {
public:
  explicit FixedFlexibleAdapter(const Preconditioner& M) : m_(&M) {}
  using FlexiblePreconditioner::apply;
  void apply(std::span<const double> q, std::size_t outer_index,
             std::span<double> z) override {
    (void)outer_index;
    m_->apply(q, z);
  }

private:
  const Preconditioner* m_;
};

} // namespace sdcgmres::krylov
