#pragma once
/// \file hooks.hpp
/// \brief Observation/mutation points inside the Arnoldi process.
///
/// The SDC framework (src/sdc) needs to (a) corrupt individual projection
/// coefficients h(i,j) exactly where the paper does -- between the dot
/// product and the axpy of the Modified Gram-Schmidt loop -- and (b) check
/// the invariant |h(i,j)| <= ||A||_F at the same points.  Rather than
/// baking either concern into the solvers, the Arnoldi kernel exposes this
/// hook interface; fault campaigns and detectors implement it.  The solver
/// layer has no dependency on the SDC layer.
///
/// All indices are 0-based: iteration j builds Hessenberg column j, whose
/// projection coefficients are h(0..j, j) and whose subdiagonal entry is
/// h(j+1, j).

#include <cstddef>
#include <span>
#include <vector>

#include "la/krylov_basis.hpp"
#include "la/vector.hpp"

namespace sdcgmres::krylov {

/// Where in a nested solve an Arnoldi event happens.
struct ArnoldiContext {
  std::size_t solve_index = 0; ///< which (inner) solve since hook attach;
                               ///< equals the outer iteration in FT-GMRES
  std::size_t iteration = 0;   ///< Arnoldi iteration j within this solve
};

/// Read-only snapshot of the Arnoldi state at the end of iteration j,
/// for hooks that verify whole-iteration invariants (e.g. the Chen-style
/// Online-ABFT comparator re-checks the relation
/// A q_j = sum_{i<=j+1} h(i,j) q_i, which needs the basis itself).
struct ArnoldiIterationView {
  la::BasisView basis;              ///< q_0 .. q_{j+1} (j+2 columns of the
                                    ///< contiguous basis; the new column is
                                    ///< already normalized)
  std::span<const double> h_column; ///< h(0..j+1, j), j+2 entries
};

/// Interface for observing and (for fault injection) mutating the Arnoldi
/// process.  Default implementations do nothing, so implementors override
/// only the events they care about.
class ArnoldiHook {
public:
  virtual ~ArnoldiHook() = default;

  /// A new solve is starting (FT-GMRES: a new inner solve).
  virtual void on_solve_begin(std::size_t solve_index) { (void)solve_index; }

  /// Arnoldi iteration \p ctx.iteration is starting.
  virtual void on_iteration_begin(const ArnoldiContext& ctx) { (void)ctx; }

  /// The candidate basis vector v = A*q_j has been computed, before
  /// orthogonalization.  May mutate \p v (models faults in the matvec).
  /// \p v is a span so the solvers can hand out arena columns directly
  /// (in s-step mode the candidate lives in the staging block, not in an
  /// owning vector).
  virtual void on_matvec_result(const ArnoldiContext& ctx,
                                std::span<double> v) {
    (void)ctx;
    (void)v;
  }

  /// s-step mode only: power \p power_index (0-based; 0 is A*q_j, 1 is
  /// A^2*q_j, ...) of a matrix-powers block of \p block_size powers has
  /// been staged in \p power.  Fires after on_matvec_result of the same
  /// protocol step.  May mutate \p power -- a fault here corrupts the
  /// staged basis BEFORE the block orthogonalization, so it propagates
  /// into every later column of the block (the `fault_target=powers`
  /// scenario axis).  Never fires on the one-vector-at-a-time path.
  virtual void on_power_computed(const ArnoldiContext& ctx,
                                 std::size_t power_index,
                                 std::size_t block_size,
                                 std::span<double> power) {
    (void)ctx;
    (void)power_index;
    (void)block_size;
    (void)power;
  }

  /// Projection coefficient h(i, j) has been computed by the dot product
  /// and has not yet been used to update v.  May mutate \p h; the mutated
  /// value is what the algorithm stores and uses (this reproduces the
  /// paper's injection site between Lines 6 and 7 of Algorithm 1).
  /// \p i runs 0..j; \p mgs_steps == j+1 lets implementors identify the
  /// first (i == 0) and last (i == mgs_steps-1) MGS step.
  virtual void on_projection_coefficient(const ArnoldiContext& ctx,
                                         std::size_t i, std::size_t mgs_steps,
                                         double& h) {
    (void)ctx;
    (void)i;
    (void)mgs_steps;
    (void)h;
  }

  /// The subdiagonal entry h(j+1, j) = ||v|| has been computed and not yet
  /// used for the breakdown test or normalization.  May mutate \p h.
  virtual void on_subdiagonal(const ArnoldiContext& ctx, double& h) {
    (void)ctx;
    (void)h;
  }

  /// Iteration j completed: the basis has been extended and normalized.
  /// Not called when the iteration ends in breakdown or abort.  Intended
  /// for whole-iteration invariant checks (Online-ABFT style); such
  /// checks cost O(n) or more, unlike the O(1) coefficient bound check.
  virtual void on_iteration_end(const ArnoldiContext& ctx,
                                const ArnoldiIterationView& view) {
    (void)ctx;
    (void)view;
  }

  /// Polled by the solver after each hook event; returning true makes the
  /// solver stop this solve immediately and return its best current
  /// iterate (detector response "abort the inner solve").
  [[nodiscard]] virtual bool abort_requested() const { return false; }
};

/// Composite hook: forwards every event to each child, in order.  Typical
/// use: chain [fault campaign, detector] so the detector sees the corrupted
/// coefficients, exactly as real hardware faults would be observed.
class HookChain final : public ArnoldiHook {
public:
  HookChain() = default;
  explicit HookChain(std::vector<ArnoldiHook*> hooks)
      : hooks_(std::move(hooks)) {}

  void add(ArnoldiHook* hook) { hooks_.push_back(hook); }

  void on_solve_begin(std::size_t solve_index) override {
    for (ArnoldiHook* h : hooks_) h->on_solve_begin(solve_index);
  }
  void on_iteration_begin(const ArnoldiContext& ctx) override {
    for (ArnoldiHook* h : hooks_) h->on_iteration_begin(ctx);
  }
  void on_matvec_result(const ArnoldiContext& ctx,
                        std::span<double> v) override {
    for (ArnoldiHook* h : hooks_) h->on_matvec_result(ctx, v);
  }
  void on_power_computed(const ArnoldiContext& ctx, std::size_t power_index,
                         std::size_t block_size,
                         std::span<double> power) override {
    for (ArnoldiHook* h : hooks_) {
      h->on_power_computed(ctx, power_index, block_size, power);
    }
  }
  void on_projection_coefficient(const ArnoldiContext& ctx, std::size_t i,
                                 std::size_t mgs_steps, double& h) override {
    for (ArnoldiHook* hk : hooks_) {
      hk->on_projection_coefficient(ctx, i, mgs_steps, h);
    }
  }
  void on_subdiagonal(const ArnoldiContext& ctx, double& h) override {
    for (ArnoldiHook* hk : hooks_) hk->on_subdiagonal(ctx, h);
  }
  void on_iteration_end(const ArnoldiContext& ctx,
                        const ArnoldiIterationView& view) override {
    for (ArnoldiHook* hk : hooks_) hk->on_iteration_end(ctx, view);
  }
  [[nodiscard]] bool abort_requested() const override {
    for (const ArnoldiHook* h : hooks_) {
      if (h->abort_requested()) return true;
    }
    return false;
  }

private:
  std::vector<ArnoldiHook*> hooks_;
};

} // namespace sdcgmres::krylov
