#pragma once
/// \file ilu0.hpp
/// \brief ILU(0): incomplete LU factorization with zero fill-in.
///
/// The standard strong fixed preconditioner for sparse nonsymmetric
/// systems, completing the preconditioner lineup (identity, Jacobi,
/// Neumann polynomial, inner Krylov solve).  The factorization keeps
/// exactly the sparsity pattern of A: L is unit lower triangular, U upper
/// triangular, both stored in a single CSR-shaped value array.

#include <cstddef>
#include <vector>

#include "krylov/precond.hpp"
#include "sparse/csr.hpp"

namespace sdcgmres::krylov {

/// ILU(0) preconditioner: z = U^{-1} L^{-1} r.
///
/// Construction throws std::invalid_argument when the matrix is not
/// square, lacks a structural diagonal entry in some row, or a zero pivot
/// appears during elimination (no pivoting is performed, as usual for
/// ILU(0); diagonally dominant and M-matrices are safe).
class Ilu0Preconditioner final : public Preconditioner {
public:
  explicit Ilu0Preconditioner(const sparse::CsrMatrix& A);

  using Preconditioner::apply;
  /// Span core: the forward/backward sweeps run in place in z.
  void apply(std::span<const double> r, std::span<double> z) const override;

  /// Access to the combined LU values (tests / diagnostics); layout
  /// matches the input matrix's CSR arrays.
  [[nodiscard]] const std::vector<double>& lu_values() const noexcept {
    return lu_;
  }

private:
  const sparse::CsrMatrix* a_; // pattern provider (non-owning)
  std::vector<double> lu_;     // factor values on A's pattern
  std::vector<std::size_t> diag_pos_; // index of the diagonal in each row
};

} // namespace sdcgmres::krylov
