#pragma once
/// \file mixed.hpp
/// \brief The mixed-precision inner data plane of FT-GMRES.
///
/// FT-GMRES's selective-reliability split (paper Section VI) localizes
/// all "unreliable" work in the inner solves; the flexible outer
/// iteration absorbs whatever perturbation they produce.  Reduced
/// precision is exactly such a perturbation, so the inner solves -- and
/// only the inner solves -- may run on a narrowed data plane: a float32
/// and/or int32-indexed mirror of the CSR matrix, float32 Krylov basis,
/// Hessenberg QR, and BLAS.  The reliable outer FGMRES stays double and
/// keeps streaming the original operator.
///
/// The pieces:
///
///   * MixedPlane<S, I>: the CSR instantiation of the mixed-plane cache
///     slot (the abstract seam -- MixedOperatorT / MixedPlaneBase /
///     MixedPlaneOf -- lives in mixed_plane.hpp, and the SELL
///     instantiation in sell_operator.hpp).  ensure_plane() builds the
///     right instantiation for the OUTER operator's storage format on
///     first use and reuses it while the source matrix is unchanged, so
///     repeated solves (the sweep) pay the narrowing once.
///   * MixedCsrOperator<S, I>: the counting apply/apply_block seam of the
///     narrowed CSR matrix.  Deliberately NOT a LinearOperator (that
///     seam is double); it reports the same OperatorStats vocabulary,
///     with scalar_bytes/index_bytes computed at sizeof(S)/sizeof(I).
///   * MixedInnerGmresT<S>: the mixed mirror of
///     InnerGmresPreconditioner -- same make_engine/finish_engine batch
///     seam, same records, same recovery turnover -- that down-converts
///     the outer residual column on entry and up-converts the inner
///     correction on exit.  It drives any MixedOperatorT<S>, so one
///     instantiation serves every storage format and index width.  For
///     S = double (the index=32 configuration) the staging copies are
///     bitwise exact, so (double, int32) results are bit-identical to
///     the default path: indices never enter the arithmetic.
///
/// step_with_apply_t / drive_to_completion_t generalize the gmres.hpp
/// drivers over any operator exposing apply(span<const S>, span<S>).

#include <cstddef>
#include <memory>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "krylov/ft_gmres.hpp"
#include "krylov/gmres.hpp"
#include "krylov/mixed_plane.hpp"
#include "krylov/operator.hpp"
#include "krylov/precision.hpp"
#include "krylov/sell_operator.hpp"
#include "krylov/workspace.hpp"
#include "la/vector.hpp"
#include "sparse/csr_mixed.hpp"

namespace sdcgmres::krylov {

/// Narrowing / widening staging copies between the double outer plane
/// and the scalar-S inner plane.  Both are bitwise copies when S is
/// double.
template <typename S>
inline void narrow_into(std::span<const double> src, std::span<S> dst) {
  for (std::size_t i = 0; i < src.size(); ++i)
    dst[i] = static_cast<S>(src[i]);
}

template <typename S>
inline void widen_into(std::span<const S> src, std::span<double> dst) {
  for (std::size_t i = 0; i < src.size(); ++i)
    dst[i] = static_cast<double>(src[i]);
}

/// The S-typed inner workspace slot of an FtGmresWorkspace: the double
/// plane reuses the standard inner slot, float configurations use the
/// dedicated float arena.
template <typename S>
[[nodiscard]] inline KrylovWorkspaceT<S>&
inner_workspace_for(FtGmresWorkspace& w) noexcept {
  if constexpr (std::is_same_v<S, double>) {
    return w.inner;
  } else {
    return w.inner_f32;
  }
}

/// Counting apply seam of the narrowed CSR mirror: the CSR instantiation
/// of MixedOperatorT<S> (counting wrappers and stats live in the base;
/// see mixed_plane.hpp).
template <typename S, typename I>
class MixedCsrOperator final : public MixedOperatorT<S> {
public:
  explicit MixedCsrOperator(const sparse::CsrMatrixT<S, I>& A) : a_(&A) {}

  [[nodiscard]] std::size_t rows() const noexcept override {
    return a_->rows();
  }
  [[nodiscard]] std::size_t cols() const noexcept override {
    return a_->cols();
  }

protected:
  void do_apply(std::span<const S> x, std::span<S> y) const override {
    a_->spmv(x, y);
  }
  /// Columns are bitwise identical to apply() per column -- the lockstep
  /// contract, unchanged at reduced precision.
  void do_apply_block(const la::BasisViewT<S>& x,
                      la::BlockViewT<S> y) const override {
    a_->spmm(x, y);
  }
  /// One stream with C operand columns: values once + C operand and C
  /// result columns, all at sizeof(S).
  [[nodiscard]] std::size_t
  do_scalar_bytes(std::size_t columns) const noexcept override {
    return sizeof(S) * (a_->nnz() + columns * (a_->rows() + a_->cols()));
  }
  /// row_ptr (rows+1) + col_idx (nnz) at the compressed sizeof(I).
  [[nodiscard]] std::size_t do_index_bytes() const noexcept override {
    return sizeof(I) * (a_->nnz() + a_->rows() + 1);
  }

private:
  const sparse::CsrMatrixT<S, I>* a_;
};

/// One (scalar, index) instantiation of the narrowed CSR mirror: the
/// compressed matrix copy plus its counting operator.
template <typename S, typename I>
class MixedPlane final : public MixedPlaneOf<S> {
public:
  /// Narrows \p a (throws std::overflow_error when the shape overflows
  /// the index type I -- see CsrMatrixT).
  explicit MixedPlane(const sparse::CsrMatrix& a)
      : matrix(a), op(matrix), src_(&a) {}

  [[nodiscard]] OperatorStats stats() const noexcept override {
    return op.stats();
  }
  void reset_stats() const noexcept override { op.reset_stats(); }
  [[nodiscard]] const void* source() const noexcept override { return src_; }
  [[nodiscard]] const MixedOperatorT<S>& typed_op() const noexcept override {
    return op;
  }

  sparse::CsrMatrixT<S, I> matrix;
  MixedCsrOperator<S, I> op;

private:
  const void* src_;
};

/// Fetch (building or reusing) the <S, I> mirror of \p A in the cache
/// slot \p cache, narrowing whatever storage format the outer operator
/// streams: a CsrOperator gets a CsrMatrixT mirror, a SellOperator gets
/// a SellMatrixT mirror of the same chunk geometry (so inner results
/// stay bitwise identical across backends at every precision).  The
/// mirror is rebuilt only when the slot holds a different instantiation
/// or a different source matrix, so repeated solves through one
/// workspace narrow once.  Throws std::invalid_argument when \p A is
/// not matrix-backed: the mixed plane narrows a concrete matrix, not an
/// abstract operator.
template <typename S, typename I>
[[nodiscard]] inline MixedPlaneOf<S>&
ensure_plane(std::shared_ptr<MixedPlaneBase>& cache,
             const LinearOperator& A) {
  if (const auto* csr = dynamic_cast<const CsrOperator*>(&A);
      csr != nullptr) {
    if (auto* hit = dynamic_cast<MixedPlane<S, I>*>(cache.get());
        hit != nullptr && hit->source() == &csr->matrix()) {
      return *hit;
    }
    auto fresh = std::make_shared<MixedPlane<S, I>>(csr->matrix());
    cache = fresh;
    return *fresh;
  }
  if (const auto* sell = dynamic_cast<const SellOperator*>(&A);
      sell != nullptr) {
    if (auto* hit = dynamic_cast<SellMixedPlane<S, I>*>(cache.get());
        hit != nullptr && hit->source() == &sell->matrix()) {
      return *hit;
    }
    auto fresh = std::make_shared<SellMixedPlane<S, I>>(sell->matrix());
    cache = fresh;
    return *fresh;
  }
  throw std::invalid_argument(
      "ft_gmres: mixed precision/index configurations require a "
      "matrix-backed (csr/sell) operator");
}

/// One protocol step of an S-typed engine against any operator exposing
/// apply(span<const S>, span<S>) -- the generic form of
/// step_with_apply() (gmres.hpp), same sequence of operations.
template <typename Op, typename S>
inline bool step_with_apply_t(const Op& A, GmresEngineT<S>& engine) {
  if (engine.awaiting_residual()) {
    A.apply(engine.residual_operand(), engine.residual_target());
    return engine.start_cycle();
  }
  engine.begin_iteration();
  A.apply(engine.direction(), engine.v_target());
  return engine.advance();
}

/// Drive an S-typed engine to completion (generic form of
/// drive_to_completion()).
template <typename Op, typename S>
inline void drive_to_completion_t(const Op& A, GmresEngineT<S>& engine) {
  while (!step_with_apply_t(A, engine)) {
  }
}

/// The mixed-plane mirror of InnerGmresPreconditioner: each application
/// approximately solves A z = q at the plane's precision from a zero
/// initial guess.  The outer residual column q is down-converted into
/// per-instance staging on entry (make_engine) and the inner correction
/// up-converted into the outer Z-arena column on exit (finish_engine);
/// with S = double both conversions are bitwise copies, so the
/// (double, int32) configuration reproduces the default path bit for
/// bit.  Identical make_engine/finish_engine batch seam, records,
/// options plumbing (robust first inner via CGS2), and recovery
/// turnover as the double preconditioner, so the solo and lockstep
/// drivers can never diverge from their reliable counterparts in
/// bookkeeping.
template <typename S>
class MixedInnerGmresT {
public:
  MixedInnerGmresT(const MixedOperatorT<S>& A, const GmresOptions& opts,
                   ArnoldiHook* hook = nullptr,
                   bool robust_first_solve = false,
                   KrylovWorkspaceT<S>* ws = nullptr,
                   InnerRecovery recovery = InnerRecovery::None)
      : a_(&A), opts_(opts), hook_(hook),
        robust_first_solve_(robust_first_solve), ws_(ws),
        recovery_(recovery) {}

  /// Straight-through drive (the solo FT-GMRES path), including the
  /// RetryReliable turnover -- mirrors InnerGmresPreconditioner::apply.
  void apply(std::span<const double> q, std::size_t outer_index,
             std::span<double> z) {
    GmresEngineT<S> engine = make_engine(q, outer_index, z);
    drive_to_completion_t(*a_, engine);
    if (wants_reliable_retry(engine)) {
      GmresEngineT<S> retry = make_reliable_retry(engine);
      drive_to_completion_t(*a_, retry);
      finish_engine(retry);
      return;
    }
    finish_engine(engine);
  }

  /// Batch seam: stage q down to the plane's scalar, zero the staged
  /// iterate, and construct the step-driveable S-typed engine.  The
  /// caller drives it (solo or interleaved) and hands it to
  /// finish_engine(), which up-converts the correction into \p z.
  [[nodiscard]] GmresEngineT<S> make_engine(std::span<const double> q,
                                            std::size_t outer_index,
                                            std::span<double> z) {
    cur_z_ = z;
    cur_outer_ = outer_index;
    retrying_ = false;
    pending_retry_iters_ = 0;
    pending_retry_applies_ = 0;
    pending_retry_syncs_ = 0;
    q_staged_.resize(q.size());
    z_staged_.resize(z.size());
    narrow_into<S>(q, q_staged_.span());
    std::fill(z_staged_.span().begin(), z_staged_.span().end(), S(0));
    return GmresEngineT<S>(a_->rows(), a_->cols(),
                           std::span<const S>(q_staged_.span()),
                           z_staged_.span(), options_for(outer_index), hook_,
                           outer_index, workspace(),
                           /*residual_history=*/nullptr);
  }

  /// Up-convert the finished engine's correction into the outer Z-arena
  /// column and record its bookkeeping (exactly the record the reliable
  /// preconditioner produces).
  void finish_engine(const GmresEngineT<S>& engine) {
    widen_into<S>(z_staged_.span(), cur_z_);
    const GmresStats& inner = engine.stats();
    InnerSolveRecord rec{.outer_index = engine.solve_index(),
                         .status = inner.status,
                         .iterations =
                             pending_retry_iters_ + inner.iterations,
                         .operator_applies =
                             pending_retry_applies_ + inner.operator_applies,
                         .residual_norm = inner.residual_norm};
    rec.global_syncs = pending_retry_syncs_ + inner.global_syncs;
    rec.reliable_retries = retrying_ ? 1 : 0;
    rec.triggered_outer_restart =
        recovery_ == InnerRecovery::RestartOuter &&
        inner.status == SolveStatus::AbortedByDetector;
    records_.push_back(rec);
    retrying_ = false;
    pending_retry_iters_ = 0;
    pending_retry_applies_ = 0;
    pending_retry_syncs_ = 0;
  }

  [[nodiscard]] bool wants_reliable_retry(
      const GmresEngineT<S>& engine) const {
    return recovery_ == InnerRecovery::RetryReliable && !retrying_ &&
           engine.finished() &&
           engine.stats().status == SolveStatus::AbortedByDetector;
  }

  /// Hook-free recompute of the flagged inner solve on the same staged
  /// operands (selective reliability: the retry stays at the plane's
  /// precision -- reduced precision is a deliberate configuration, not
  /// a fault).
  [[nodiscard]] GmresEngineT<S> make_reliable_retry(
      const GmresEngineT<S>& aborted) {
    pending_retry_iters_ = aborted.stats().iterations;
    pending_retry_applies_ = aborted.stats().operator_applies;
    pending_retry_syncs_ = aborted.stats().global_syncs;
    retrying_ = true;
    std::fill(z_staged_.span().begin(), z_staged_.span().end(), S(0));
    return GmresEngineT<S>(a_->rows(), a_->cols(),
                           std::span<const S>(q_staged_.span()),
                           z_staged_.span(), options_for(cur_outer_),
                           /*hook=*/nullptr, cur_outer_, workspace(),
                           /*residual_history=*/nullptr);
  }

  [[nodiscard]] bool last_record_requests_outer_restart() const {
    return !records_.empty() && records_.back().triggered_outer_restart;
  }

  [[nodiscard]] const std::vector<InnerSolveRecord>& records() const {
    return records_;
  }

private:
  [[nodiscard]] GmresOptions options_for(std::size_t outer_index) const {
    GmresOptions opts = opts_;
    if (robust_first_solve_ && outer_index == 0) {
      opts.ortho = Orthogonalization::CGS2;
    }
    return opts;
  }

  [[nodiscard]] KrylovWorkspaceT<S>& workspace() noexcept {
    return ws_ != nullptr ? *ws_ : fallback_ws_;
  }

  const MixedOperatorT<S>* a_;
  GmresOptions opts_;
  ArnoldiHook* hook_;
  bool robust_first_solve_;
  KrylovWorkspaceT<S>* ws_;
  KrylovWorkspaceT<S> fallback_ws_;
  InnerRecovery recovery_ = InnerRecovery::None;
  std::vector<InnerSolveRecord> records_;
  // Per-instance staging of the engine operands at the plane's scalar
  // (stable storage: live engines hold spans into these), plus the
  // outer-side column the correction widens back into.
  la::VectorT<S> q_staged_;
  la::VectorT<S> z_staged_;
  std::span<double> cur_z_;
  std::size_t cur_outer_ = 0;
  std::size_t pending_retry_iters_ = 0;
  std::size_t pending_retry_applies_ = 0;
  std::size_t pending_retry_syncs_ = 0;
  bool retrying_ = false;
};

} // namespace sdcgmres::krylov
