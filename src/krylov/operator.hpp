#pragma once
/// \file operator.hpp
/// \brief Abstract linear operator, the solver-facing matrix interface.
///
/// Mirrors the role of Tpetra::Operator in the paper's Trilinos
/// implementation: solvers see only y = A*x.

#include <cstddef>
#include <span>

#include "la/vector.hpp"
#include "sparse/csr.hpp"

namespace sdcgmres::krylov {

/// Abstract y = A*x.
class LinearOperator {
public:
  virtual ~LinearOperator() = default;

  [[nodiscard]] virtual std::size_t rows() const = 0;
  [[nodiscard]] virtual std::size_t cols() const = 0;

  /// y := A*x.  Implementations must resize y as needed.
  virtual void apply(const la::Vector& x, la::Vector& y) const = 0;

  /// y := A*x for a span operand (a column of a contiguous KrylovBasis).
  /// The default copies into a temporary la::Vector; zero-copy-capable
  /// operators (CsrOperator) override it.
  virtual void apply(std::span<const double> x, la::Vector& y) const;

  /// Convenience: A*x by value.
  [[nodiscard]] la::Vector operator()(const la::Vector& x) const {
    la::Vector y(rows());
    apply(x, y);
    return y;
  }
};

/// Adapter exposing a CSR matrix as a LinearOperator (non-owning).
class CsrOperator final : public LinearOperator {
public:
  explicit CsrOperator(const sparse::CsrMatrix& A) : a_(&A) {}

  [[nodiscard]] std::size_t rows() const override { return a_->rows(); }
  [[nodiscard]] std::size_t cols() const override { return a_->cols(); }
  void apply(const la::Vector& x, la::Vector& y) const override {
    a_->spmv(x, y);
  }
  /// Zero-copy SpMV straight from a basis column.
  void apply(std::span<const double> x, la::Vector& y) const override {
    a_->spmv(x, y);
  }

  [[nodiscard]] const sparse::CsrMatrix& matrix() const { return *a_; }

private:
  const sparse::CsrMatrix* a_;
};

/// Operator scaled by a constant: y = alpha * A * x (used in tests).
class ScaledOperator final : public LinearOperator {
public:
  ScaledOperator(const LinearOperator& A, double alpha) : a_(&A), alpha_(alpha) {}

  using LinearOperator::apply; // keep the span overload visible

  [[nodiscard]] std::size_t rows() const override { return a_->rows(); }
  [[nodiscard]] std::size_t cols() const override { return a_->cols(); }
  void apply(const la::Vector& x, la::Vector& y) const override;

private:
  const LinearOperator* a_;
  double alpha_;
};

} // namespace sdcgmres::krylov
