#pragma once
/// \file operator.hpp
/// \brief Abstract linear operator, the solver-facing matrix interface.
///
/// Mirrors the role of Tpetra::Operator in the paper's Trilinos
/// implementation: solvers see only y = A*x.
///
/// The virtual core is span-in/span-out so that solvers can feed basis
/// columns straight out of a contiguous la::KrylovBasis arena and receive
/// results straight into workspace storage, with zero owning-vector
/// copies at the operator boundary.  Thin la::Vector overloads remain for
/// callers that hold owning vectors; they resize the output and forward.

#include <cstddef>
#include <span>

#include "la/block.hpp"
#include "la/krylov_basis.hpp"
#include "la/vector.hpp"
#include "sparse/csr.hpp"

namespace sdcgmres::krylov {

/// Abstract y = A*x.
class LinearOperator {
public:
  virtual ~LinearOperator() = default;

  [[nodiscard]] virtual std::size_t rows() const = 0;
  [[nodiscard]] virtual std::size_t cols() const = 0;

  /// y := A*x, the span core.  x.size() must equal cols() and y.size()
  /// must equal rows(); x and y must not alias.  Implementations must
  /// write every entry of y.
  virtual void apply(std::span<const double> x, std::span<double> y) const = 0;

  /// Convenience: y := A*x for owning vectors; resizes y to rows().
  void apply(const la::Vector& x, la::Vector& y) const {
    if (y.size() != rows()) y.resize(rows());
    apply(std::span<const double>(x.span()), y.span());
  }

  /// Convenience: y := A*x for a span operand into an owning result.
  void apply(std::span<const double> x, la::Vector& y) const {
    if (y.size() != rows()) y.resize(rows());
    apply(x, y.span());
  }

  /// Convenience: A*x by value.
  [[nodiscard]] la::Vector operator()(const la::Vector& x) const {
    la::Vector y(rows());
    apply(x, y);
    return y;
  }

  /// Y := A*X over a block of operand columns, the block core of the data
  /// plane.  x.rows() must equal cols(), y.rows() must equal rows(), and
  /// x.cols() must equal y.cols(); the blocks must not alias.  Each output
  /// column must be BITWISE identical to apply() on the matching operand
  /// column -- batch drivers rely on this to keep lockstep solves equal to
  /// their solo runs.  The default walks the columns through the span
  /// core, so every existing implementor is block-capable for free;
  /// matrix-backed operators override with a fused SpMM that streams the
  /// matrix once per block.  A zero-column block is a no-op.
  virtual void apply_block(const la::BasisView& x, la::BlockView y) const {
    for (std::size_t j = 0; j < x.cols(); ++j) apply(x.col(j), y.col(j));
  }
};

/// Adapter exposing a CSR matrix as a LinearOperator (non-owning).
class CsrOperator final : public LinearOperator {
public:
  explicit CsrOperator(const sparse::CsrMatrix& A) : a_(&A) {}

  using LinearOperator::apply; // keep the la::Vector conveniences visible

  [[nodiscard]] std::size_t rows() const override { return a_->rows(); }
  [[nodiscard]] std::size_t cols() const override { return a_->cols(); }

  /// Zero-copy SpMV straight between spans (basis column in, workspace
  /// column out).
  void apply(std::span<const double> x, std::span<double> y) const override {
    a_->spmv(x, y);
  }

  /// Fused SpMM: one pass over the matrix for the whole block instead of
  /// one per column (columns stay bitwise identical to spmv -- see
  /// CsrMatrix::spmm).
  void apply_block(const la::BasisView& x, la::BlockView y) const override;

  [[nodiscard]] const sparse::CsrMatrix& matrix() const { return *a_; }

private:
  const sparse::CsrMatrix* a_;
};

/// Operator scaled by a constant: y = alpha * A * x (used in tests).
class ScaledOperator final : public LinearOperator {
public:
  ScaledOperator(const LinearOperator& A, double alpha) : a_(&A), alpha_(alpha) {}

  using LinearOperator::apply; // keep the la::Vector conveniences visible

  [[nodiscard]] std::size_t rows() const override { return a_->rows(); }
  [[nodiscard]] std::size_t cols() const override { return a_->cols(); }
  void apply(std::span<const double> x, std::span<double> y) const override;

private:
  const LinearOperator* a_;
  double alpha_;
};

} // namespace sdcgmres::krylov
