#pragma once
/// \file operator.hpp
/// \brief Abstract linear operator, the solver-facing matrix interface.
///
/// Mirrors the role of Tpetra::Operator in the paper's Trilinos
/// implementation: solvers see only y = A*x.
///
/// The virtual cores (do_apply / do_apply_block) are span-in/span-out so
/// that solvers can feed basis columns straight out of a contiguous
/// la::KrylovBasis arena and receive results straight into workspace
/// storage, with zero owning-vector copies at the operator boundary.
/// Thin la::Vector overloads remain for callers that hold owning vectors;
/// they resize the output and forward.
///
/// The public apply()/apply_block() entry points are non-virtual counting
/// wrappers: every application is tallied in per-instance OperatorStats
/// (calls and operand columns), which is how the batched sweep proves its
/// matrix-traffic reduction with measured numbers instead of wall-clock.

#include <atomic>
#include <cstddef>
#include <span>

#include "la/block.hpp"
#include "la/krylov_basis.hpp"
#include "la/vector.hpp"
#include "sparse/csr.hpp"

namespace sdcgmres::krylov {

/// A snapshot of an operator's application counters.  apply() streams
/// the matrix once for one operand column; apply_block() streams it once
/// for a whole block of columns -- so streams() is the number of matrix
/// passes paid and columns() the number of operand columns processed.
/// The lockstep batch drivers keep columns() fixed while dividing
/// streams() by ~B.
struct OperatorStats {
  std::size_t apply_calls = 0;       ///< span-core applications (1 column)
  std::size_t apply_block_calls = 0; ///< fused block applications
  std::size_t block_columns = 0;     ///< operand columns across all
                                     ///< apply_block calls
  std::size_t scalar_bytes = 0;      ///< bytes of scalar traffic (matrix
                                     ///< values + operand/result columns)
                                     ///< at the operator's own precision
  std::size_t index_bytes = 0;       ///< bytes of index traffic (row_ptr +
                                     ///< col_idx) at the operator's own
                                     ///< index width

  /// Matrix passes paid (the traffic proxy the batch optimizes).
  [[nodiscard]] std::size_t streams() const noexcept {
    return apply_calls + apply_block_calls;
  }
  /// Total operand columns processed (the work, identical at any batch).
  [[nodiscard]] std::size_t columns() const noexcept {
    return apply_calls + block_columns;
  }
  /// Total bytes streamed (the traffic the mixed-precision plane halves).
  [[nodiscard]] std::size_t bytes() const noexcept {
    return scalar_bytes + index_bytes;
  }

  bool operator==(const OperatorStats&) const = default;

  OperatorStats& operator+=(const OperatorStats& other) noexcept {
    apply_calls += other.apply_calls;
    apply_block_calls += other.apply_block_calls;
    block_columns += other.block_columns;
    scalar_bytes += other.scalar_bytes;
    index_bytes += other.index_bytes;
    return *this;
  }
};

/// Abstract y = A*x.
class LinearOperator {
public:
  virtual ~LinearOperator() = default;

  [[nodiscard]] virtual std::size_t rows() const = 0;
  [[nodiscard]] virtual std::size_t cols() const = 0;

  /// y := A*x, the span entry point.  x.size() must equal cols() and
  /// y.size() must equal rows(); x and y must not alias.  The
  /// implementation (do_apply) must write every entry of y.
  void apply(std::span<const double> x, std::span<double> y) const {
    apply_calls_.fetch_add(1, std::memory_order_relaxed);
    scalar_bytes_.fetch_add(do_scalar_bytes(1), std::memory_order_relaxed);
    index_bytes_.fetch_add(do_index_bytes(1), std::memory_order_relaxed);
    do_apply(x, y);
  }

  /// Convenience: y := A*x for owning vectors; resizes y to rows().
  void apply(const la::Vector& x, la::Vector& y) const {
    if (y.size() != rows()) y.resize(rows());
    apply(std::span<const double>(x.span()), y.span());
  }

  /// Convenience: y := A*x for a span operand into an owning result.
  void apply(std::span<const double> x, la::Vector& y) const {
    if (y.size() != rows()) y.resize(rows());
    apply(x, y.span());
  }

  /// Convenience: A*x by value.
  [[nodiscard]] la::Vector operator()(const la::Vector& x) const {
    la::Vector y(rows());
    apply(x, y);
    return y;
  }

  /// Y := A*X over a block of operand columns, the block entry point of
  /// the data plane.  x.rows() must equal cols(), y.rows() must equal
  /// rows(), and x.cols() must equal y.cols(); the blocks must not alias.
  /// Each output column must be BITWISE identical to apply() on the
  /// matching operand column -- batch drivers rely on this to keep
  /// lockstep solves equal to their solo runs.  The default core walks
  /// the columns through do_apply, so every implementor is block-capable
  /// for free; matrix-backed operators override do_apply_block with a
  /// fused SpMM that streams the matrix once per block.  A zero-column
  /// block is a no-op.
  void apply_block(const la::BasisView& x, la::BlockView y) const {
    apply_block_calls_.fetch_add(1, std::memory_order_relaxed);
    block_columns_.fetch_add(x.cols(), std::memory_order_relaxed);
    scalar_bytes_.fetch_add(do_scalar_bytes(x.cols()),
                            std::memory_order_relaxed);
    index_bytes_.fetch_add(do_index_bytes(x.cols()),
                           std::memory_order_relaxed);
    do_apply_block(x, y);
  }

  /// Snapshot of this instance's traffic counters.  The counters are
  /// relaxed atomics, so a const operator shared across threads stays
  /// well-defined and counts exactly; still prefer one operator per
  /// thread over a shared matrix (the sweep engine's pattern) so each
  /// phase's traffic is attributable, and sum the stats afterwards.
  [[nodiscard]] OperatorStats stats() const noexcept {
    return {.apply_calls = apply_calls_.load(std::memory_order_relaxed),
            .apply_block_calls =
                apply_block_calls_.load(std::memory_order_relaxed),
            .block_columns = block_columns_.load(std::memory_order_relaxed),
            .scalar_bytes = scalar_bytes_.load(std::memory_order_relaxed),
            .index_bytes = index_bytes_.load(std::memory_order_relaxed)};
  }

  /// Zero the counters (e.g. between measured phases).
  void reset_stats() const noexcept {
    apply_calls_.store(0, std::memory_order_relaxed);
    apply_block_calls_.store(0, std::memory_order_relaxed);
    block_columns_.store(0, std::memory_order_relaxed);
    scalar_bytes_.store(0, std::memory_order_relaxed);
    index_bytes_.store(0, std::memory_order_relaxed);
  }

protected:
  LinearOperator() = default;
  /// Copies/assignments of an implementor carry its configuration, not
  /// its traffic history: the copied-to operator's counters (re)start
  /// at zero.
  LinearOperator(const LinearOperator&) noexcept {}
  LinearOperator& operator=(const LinearOperator&) noexcept {
    reset_stats();
    return *this;
  }

  /// Virtual span core (see apply() for the contract).
  virtual void do_apply(std::span<const double> x,
                        std::span<double> y) const = 0;

  /// Virtual block core (see apply_block() for the contract).  The
  /// default loops over do_apply so counting stays call-accurate: one
  /// block call, x.cols() columns, however the block is realized.
  virtual void do_apply_block(const la::BasisView& x, la::BlockView y) const {
    for (std::size_t j = 0; j < x.cols(); ++j) do_apply(x.col(j), y.col(j));
  }

  /// Bytes of scalar traffic one application with \p columns operand
  /// columns streams (matrix values once, plus operand and result columns
  /// at the operator's own precision).  The default 0 keeps synthetic /
  /// test operators out of the traffic accounting; matrix-backed
  /// operators override.
  [[nodiscard]] virtual std::size_t
  do_scalar_bytes(std::size_t columns) const noexcept {
    (void)columns;
    return 0;
  }

  /// Bytes of index traffic one application streams (row_ptr + col_idx,
  /// independent of the column count).  Default 0, see do_scalar_bytes.
  [[nodiscard]] virtual std::size_t
  do_index_bytes(std::size_t columns) const noexcept {
    (void)columns;
    return 0;
  }

private:
  mutable std::atomic<std::size_t> apply_calls_{0};
  mutable std::atomic<std::size_t> apply_block_calls_{0};
  mutable std::atomic<std::size_t> block_columns_{0};
  mutable std::atomic<std::size_t> scalar_bytes_{0};
  mutable std::atomic<std::size_t> index_bytes_{0};
};

/// Adapter exposing a CSR matrix as a LinearOperator (non-owning).
class CsrOperator final : public LinearOperator {
public:
  explicit CsrOperator(const sparse::CsrMatrix& A) : a_(&A) {}

  [[nodiscard]] std::size_t rows() const override { return a_->rows(); }
  [[nodiscard]] std::size_t cols() const override { return a_->cols(); }

  [[nodiscard]] const sparse::CsrMatrix& matrix() const { return *a_; }

protected:
  /// Zero-copy SpMV straight between spans (basis column in, workspace
  /// column out).
  void do_apply(std::span<const double> x,
                std::span<double> y) const override {
    a_->spmv(x, y);
  }

  /// Fused SpMM: one pass over the matrix for the whole block instead of
  /// one per column (columns stay bitwise identical to spmv -- see
  /// CsrMatrix::spmm).
  void do_apply_block(const la::BasisView& x, la::BlockView y) const override;

  /// One stream with C operand columns touches the values once and C
  /// operand + C result columns, all doubles.
  [[nodiscard]] std::size_t
  do_scalar_bytes(std::size_t columns) const noexcept override {
    return sizeof(double) *
           (a_->nnz() + columns * (a_->rows() + a_->cols()));
  }

  /// row_ptr (rows+1) + col_idx (nnz), stored as size_t.
  [[nodiscard]] std::size_t
  do_index_bytes(std::size_t columns) const noexcept override {
    (void)columns;
    return sizeof(std::size_t) * (a_->nnz() + a_->rows() + 1);
  }

private:
  const sparse::CsrMatrix* a_;
};

/// Operator scaled by a constant: y = alpha * A * x (used in tests).
class ScaledOperator final : public LinearOperator {
public:
  ScaledOperator(const LinearOperator& A, double alpha) : a_(&A), alpha_(alpha) {}

  [[nodiscard]] std::size_t rows() const override { return a_->rows(); }
  [[nodiscard]] std::size_t cols() const override { return a_->cols(); }

protected:
  void do_apply(std::span<const double> x, std::span<double> y) const override;

private:
  const LinearOperator* a_;
  double alpha_;
};

} // namespace sdcgmres::krylov
