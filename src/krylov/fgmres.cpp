#include "krylov/fgmres.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "dense/hessenberg_qr.hpp"
#include "dense/svd.hpp"
#include "la/blas1.hpp"
#include "la/blas2.hpp"
#include "la/krylov_basis.hpp"

namespace sdcgmres::krylov {

namespace {

/// sigma_min / sigma_max of the current triangular factor; 0 for singular.
double sigma_ratio(const dense::HessenbergQr& qr) {
  const auto svd = dense::jacobi_svd(qr.r_block());
  const std::size_t k = qr.size();
  if (k == 0) return 1.0;
  const double smax = svd.sigma[0];
  const double smin = svd.sigma[k - 1];
  if (smax == 0.0) return 0.0;
  return smin / smax;
}

/// x := x0 + Z y for the current projected solution (one gemv over the
/// contiguous preconditioned-direction block).
void form_iterate(const la::Vector& x0, const la::KrylovBasis& zbasis,
                  const dense::HessenbergQr& qr, const FgmresOptions& opts,
                  la::Vector& x) {
  x = x0;
  const std::size_t k = qr.size();
  if (k == 0) return;
  const auto solve = dense::solve_projected(qr.r_block(), qr.rhs_block(),
                                            opts.lsq_policy,
                                            opts.truncation_tol);
  la::gemv(1.0, zbasis.view(k), std::span<const double>(solve.y.data(), k),
           1.0, x.span());
}

} // namespace

FgmresResult fgmres(const LinearOperator& A, const la::Vector& b,
                    const la::Vector& x0, const FgmresOptions& opts,
                    FlexiblePreconditioner& M, KrylovWorkspace* ws) {
  if (A.rows() != A.cols()) {
    throw std::invalid_argument("fgmres: operator must be square");
  }
  if (b.size() != A.rows() || x0.size() != A.cols()) {
    throw std::invalid_argument("fgmres: vector size mismatch");
  }
  if (opts.max_outer == 0) {
    throw std::invalid_argument("fgmres: max_outer must be positive");
  }

  FgmresResult result;
  result.x = x0;
  const std::size_t n = A.rows();
  const double bnorm = la::nrm2(b);
  const double abs_target = opts.tol * (bnorm > 0.0 ? bnorm : 1.0);

  KrylovWorkspace local;
  KrylovWorkspace& w = (ws != nullptr) ? *ws : local;
  w.arena.reserve(n, opts.max_outer);

  // Reliable initial residual.
  la::Vector& r = w.arena.scratch(0);
  A.apply(x0.span(), r.span());
  la::waxpby(1.0, b.span(), -1.0, r.span(), r.span());
  const double beta = la::nrm2(r);
  result.residual_norm = beta;
  if (beta <= abs_target) {
    result.status = SolveStatus::Converged;
    return result;
  }

  // Both bases live in contiguous column-major workspace arenas: q feeds
  // the fused orthogonalization kernels, zbasis feeds the gemv in
  // form_iterate.  The preconditioner reads q's columns and writes z's
  // columns directly -- the whole per-iteration data plane is spans over
  // these two arenas plus two scratch vectors.
  la::KrylovBasis& q = w.arena.basis();           // orthonormal basis
  la::KrylovBasis& zbasis = w.arena.directions(); // preconditioned directions
  q.clear();
  zbasis.clear();
  q.append(r);
  la::scal(1.0 / beta, q.col(0));

  dense::HessenbergQr& qr = w.qr;
  qr.reset(opts.max_outer, beta);
  la::Vector& v = w.arena.scratch(1);
  std::vector<double>& hcol = w.arena.h_column();
  std::fill(hcol.begin(),
            hcol.begin() + static_cast<std::ptrdiff_t>(opts.max_outer + 2),
            0.0);

  for (std::size_t j = 0; j < opts.max_outer; ++j) {
    // --- Unreliable phase: apply the (flexible) preconditioner straight
    // into the next Z-arena column (zero copies at the boundary). ---
    std::span<double> zcol = zbasis.append();
    M.apply(q.col(j), j, zcol);

    // --- Reliable phase resumes: sanitize, expand, orthogonalize. ---
    if (opts.sanitize_preconditioner_output &&
        (!la::all_finite(std::span<const double>(zcol)) ||
         la::nrm2(std::span<const double>(zcol)) == 0.0)) {
      // The sandbox guest produced theoretically impossible values (Inf or
      // NaN), or returned the zero vector -- impossible for any nonsingular
      // preconditioner.  Fall back to the identity preconditioner for this
      // step (z := q_j).
      la::copy(q.col(j), zcol);
      ++result.sanitized_outputs;
    }

    double hnext = 0.0;
    double est = 0.0;
    double ratio = 1.0;
    bool subdiag_small = false;
    bool rank_deficient = false;
    // At most two attempts: the guest's direction, then (when sanitizing)
    // the identity-preconditioner fallback.  A direction that is
    // (numerically) linearly dependent on the existing basis -- e.g. an
    // inner solve whose faulty projected problem truncated to a ~zero
    // update -- is discarded and the iteration retried; a second failure
    // is then a property of A itself and is reported loudly below.
    for (int attempt = 0; attempt < 2; ++attempt) {
      A.apply(zbasis.col(j), v.span());
      const ArnoldiContext ctx{.solve_index = 0, .iteration = j};
      orthogonalize(opts.ortho, q, j + 1, v, hcol, nullptr, ctx);
      hnext = la::nrm2(v);
      hcol[j + 1] = hnext;
      est = qr.add_column({hcol.data(), j + 2});
      result.outer_iterations = j + 1;

      // --- Rank-revealing bookkeeping (trichotomy, Section VI-C). ---
      ratio = 1.0;
      subdiag_small = hnext <= opts.breakdown_tol * beta;
      if (opts.rank_check_every_iteration || subdiag_small) {
        ratio = sigma_ratio(qr);
        ++result.rank_checks;
        result.min_sigma_ratio = std::min(result.min_sigma_ratio, ratio);
      }
      rank_deficient = subdiag_small && ratio <= opts.rank_tol;
      if (!rank_deficient) break;
      if (!opts.sanitize_preconditioner_output || attempt == 1) break;
      ++result.sanitized_outputs;
      qr.pop_column();
      la::copy(q.col(j), zbasis.col(j));
    }
    if (subdiag_small) {
      if (rank_deficient) {
        // Saad's Proposition 2.2 case: loud failure, never a wrong answer.
        result.residual_history.push_back(est);
        form_iterate(x0, zbasis, qr, opts, result.x);
        A.apply(result.x.span(), r.span());
        la::waxpby(1.0, b.span(), -1.0, r.span(), r.span());
        result.residual_norm = la::nrm2(r);
        result.status = SolveStatus::RankDeficient;
        return result;
      }
      result.residual_history.push_back(est);
      form_iterate(x0, zbasis, qr, opts, result.x);
      A.apply(result.x.span(), r.span());
      la::waxpby(1.0, b.span(), -1.0, r.span(), r.span());
      result.residual_norm = la::nrm2(r);
      result.status = result.residual_norm <= abs_target
                          ? SolveStatus::Converged
                          : SolveStatus::HappyBreakdown;
      return result;
    }

    result.residual_history.push_back(est);
    q.append(v.span());
    la::scal(1.0 / hnext, q.col(j + 1));

    if (est <= abs_target) {
      form_iterate(x0, zbasis, qr, opts, result.x);
      if (!opts.verify_with_explicit_residual) {
        result.residual_norm = est;
        result.status = SolveStatus::Converged;
        return result;
      }
      A.apply(result.x.span(), r.span());
      la::waxpby(1.0, b.span(), -1.0, r.span(), r.span());
      result.residual_norm = la::nrm2(r);
      if (result.residual_norm <= abs_target) {
        result.status = SolveStatus::Converged;
        return result;
      }
      // Estimate was optimistic (can happen with truncated updates);
      // keep iterating.
    }
  }

  form_iterate(x0, zbasis, qr, opts, result.x);
  A.apply(result.x.span(), r.span());
  la::waxpby(1.0, b.span(), -1.0, r.span(), r.span());
  result.residual_norm = la::nrm2(r);
  result.status = result.residual_norm <= abs_target
                      ? SolveStatus::Converged
                      : SolveStatus::MaxIterations;
  return result;
}

} // namespace sdcgmres::krylov
