#include "krylov/fgmres.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "dense/hessenberg_qr.hpp"
#include "dense/svd.hpp"
#include "la/blas1.hpp"
#include "la/blas2.hpp"
#include "la/krylov_basis.hpp"

namespace sdcgmres::krylov {

namespace {

/// sigma_min / sigma_max of the current triangular factor; 0 for singular.
double sigma_ratio(const dense::HessenbergQr& qr) {
  const auto svd = dense::jacobi_svd(qr.r_block());
  const std::size_t k = qr.size();
  if (k == 0) return 1.0;
  const double smax = svd.sigma[0];
  const double smin = svd.sigma[k - 1];
  if (smax == 0.0) return 0.0;
  return smin / smax;
}

/// x := x0 + Z y for the current projected solution (one gemv over the
/// contiguous preconditioned-direction block).
void form_iterate(const la::Vector& x0, const la::KrylovBasis& zbasis,
                  const dense::HessenbergQr& qr, const FgmresOptions& opts,
                  la::Vector& x) {
  x = x0;
  const std::size_t k = qr.size();
  if (k == 0) return;
  const auto solve = dense::solve_projected(qr.r_block(), qr.rhs_block(),
                                            opts.lsq_policy,
                                            opts.truncation_tol);
  la::gemv(1.0, zbasis.view(k), std::span<const double>(solve.y.data(), k),
           1.0, x.span());
}

} // namespace

// ---------------------------------------------------------------------------
// FgmresEngine: the one FGMRES implementation.  fgmres() below drives it
// straight through; the batch drivers interleave many engines.  Any change
// to the iteration math happens HERE and nowhere else.
// ---------------------------------------------------------------------------

FgmresEngine::FgmresEngine(const LinearOperator& A, std::span<const double> b,
                           std::span<const double> x0,
                           const FgmresOptions& opts, KrylovWorkspace& ws)
    : a_(&A), b_(b), opts_(opts), w_(&ws), n_(A.rows()) {
  if (A.rows() != A.cols()) {
    throw std::invalid_argument("fgmres: operator must be square");
  }
  if (b.size() != A.rows() || x0.size() != A.cols()) {
    throw std::invalid_argument("fgmres: vector size mismatch");
  }
  if (opts.max_outer == 0) {
    throw std::invalid_argument("fgmres: max_outer must be positive");
  }
  x0_.resize(n_);
  std::copy(x0.begin(), x0.end(), x0_.begin());
  result_.x = x0_;
}

bool FgmresEngine::past_deadline() const {
  return opts_.deadline_seconds > 0.0 &&
         std::chrono::steady_clock::now() >= deadline_;
}

bool FgmresEngine::start() {
  ++result_.global_syncs; // ||b||
  bnorm_ = la::nrm2(b_);
  abs_target_ = opts_.tol * (bnorm_ > 0.0 ? bnorm_ : 1.0);
  w_->arena.reserve(n_, opts_.max_outer);
  if (opts_.deadline_seconds > 0.0) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(opts_.deadline_seconds));
  }

  // Reliable initial residual.
  la::Vector& r = w_->arena.scratch(0);
  a_->apply(x0_.span(), r.span());
  la::waxpby(1.0, b_, -1.0, r.span(), r.span());
  ++result_.global_syncs; // beta = ||r||
  beta_ = la::nrm2(r);
  beta0_ = beta_;
  result_.residual_norm = beta_;
  if (beta_ <= abs_target_) {
    result_.status = SolveStatus::Converged;
    finished_ = true;
    return true;
  }

  // Both bases live in contiguous column-major workspace arenas: q feeds
  // the fused orthogonalization kernels, zbasis feeds the gemv in
  // form_iterate.  The preconditioner reads q's columns and writes z's
  // columns directly -- the whole per-iteration data plane is spans over
  // these two arenas plus two scratch vectors.
  la::KrylovBasis& q = w_->arena.basis();           // orthonormal basis
  la::KrylovBasis& zbasis = w_->arena.directions(); // preconditioned dirs
  q.clear();
  zbasis.clear();
  q.append(r);
  la::scal(1.0 / beta_, q.col(0));

  w_->qr.reset(opts_.max_outer, beta_);
  if (opts_.rank_check_every_iteration) {
    ice_.reset();
    ice_.reserve(opts_.max_outer);
    ice_col_.resize(opts_.max_outer);
  }
  std::vector<double>& hcol = w_->arena.h_column();
  std::fill(hcol.begin(),
            hcol.begin() + static_cast<std::ptrdiff_t>(opts_.max_outer + 2),
            0.0);
  return false;
}

FgmresEngine::PrecondRequest FgmresEngine::begin_iteration() {
  // --- Unreliable phase: the caller applies the (flexible) preconditioner
  // straight into the next Z-arena column (zero copies at the boundary).
  std::span<double> zcol = w_->arena.directions().append();
  return {w_->arena.basis().col(j_), j_, zcol};
}

std::span<const double> FgmresEngine::direction() {
  // --- Reliable phase resumes: sanitize before the direction is used.
  std::span<double> zcol = w_->arena.directions().col(j_);
  if (opts_.sanitize_preconditioner_output) {
    ++result_.global_syncs; // finiteness/zero screen of z_j
  }
  if (opts_.sanitize_preconditioner_output &&
      (!la::all_finite(std::span<const double>(zcol)) ||
       la::nrm2(std::span<const double>(zcol)) == 0.0)) {
    // The sandbox guest produced theoretically impossible values (Inf or
    // NaN), or returned the zero vector -- impossible for any nonsingular
    // preconditioner.  Fall back to the identity preconditioner for this
    // step (z := q_j).
    la::copy(w_->arena.basis().col(j_), zcol);
    ++result_.sanitized_outputs;
  }
  return zcol;
}

std::span<double> FgmresEngine::v_target() {
  return w_->arena.scratch(1).span();
}

bool FgmresEngine::advance() {
  const std::size_t j = j_;
  la::KrylovBasis& q = w_->arena.basis();
  la::KrylovBasis& zbasis = w_->arena.directions();
  dense::HessenbergQr& qr = w_->qr;
  la::Vector& r = w_->arena.scratch(0);
  la::Vector& v = w_->arena.scratch(1);
  std::vector<double>& hcol = w_->arena.h_column();

  double hnext = 0.0;
  double est = 0.0;
  double ratio = 1.0;
  bool subdiag_small = false;
  bool rank_deficient = false;
  // At most two attempts: the caller-provided direction, then (when
  // sanitizing) the identity-preconditioner fallback.  A direction that is
  // (numerically) linearly dependent on the existing basis -- e.g. an
  // inner solve whose faulty projected problem truncated to a ~zero
  // update -- is discarded and the iteration retried; a second failure
  // is then a property of A itself and is reported loudly below.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (attempt > 0) a_->apply(zbasis.col(j), v.span());
    const ArnoldiContext ctx{.solve_index = 0, .iteration = j};
    switch (opts_.ortho) {
      case Orthogonalization::MGS: result_.global_syncs += j + 1; break;
      case Orthogonalization::CGS: result_.global_syncs += 1; break;
      case Orthogonalization::CGS2: result_.global_syncs += 2; break;
    }
    orthogonalize(opts_.ortho, q, j + 1, v, hcol, nullptr, ctx);
    ++result_.global_syncs; // h(j+1,j) = ||v||
    hnext = la::nrm2(v);
    hcol[j + 1] = hnext;
    est = qr.add_column({hcol.data(), j + 2});
    result_.outer_iterations = base_iters_ + j + 1;

    // --- Rank-revealing bookkeeping (trichotomy, Section VI-C). ---
    // Per-iteration monitoring is the O(k) incremental estimate over the
    // just-appended R column; the exact SVD oracle runs only at
    // subdiagonal breakdown, where a DECISION (rank-deficient vs happy
    // breakdown) is made -- the estimator only upper-bounds the true
    // ratio, so it must never certify full rank on its own.
    ratio = 1.0;
    subdiag_small = hnext <= opts_.breakdown_tol * beta_;
    if (opts_.rank_check_every_iteration) {
      const std::size_t k = qr.size();
      for (std::size_t i = 0; i < k; ++i) ice_col_[i] = qr.r(i, k - 1);
      ice_.update({ice_col_.data(), k});
      ratio = ice_.ratio();
      ++result_.rank_checks;
      result_.min_sigma_ratio = std::min(result_.min_sigma_ratio, ratio);
    }
    if (subdiag_small) {
      ratio = sigma_ratio(qr);
      if (!opts_.rank_check_every_iteration) ++result_.rank_checks;
      result_.min_sigma_ratio = std::min(result_.min_sigma_ratio, ratio);
    }
    rank_deficient = subdiag_small && ratio <= opts_.rank_tol;
    if (!rank_deficient) break;
    if (!opts_.sanitize_preconditioner_output || attempt == 1) break;
    ++result_.sanitized_outputs;
    qr.pop_column();
    if (opts_.rank_check_every_iteration) ice_.pop();
    la::copy(q.col(j), zbasis.col(j));
  }
  if (subdiag_small) {
    result_.residual_history.push_back(est);
    form_iterate(x0_, zbasis, qr, opts_, result_.x);
    a_->apply(result_.x.span(), r.span());
    la::waxpby(1.0, b_, -1.0, r.span(), r.span());
    ++result_.global_syncs; // explicit ||b - A*x||
    result_.residual_norm = la::nrm2(r);
    if (rank_deficient) {
      // Saad's Proposition 2.2 case: loud failure, never a wrong answer.
      result_.status = SolveStatus::RankDeficient;
    } else {
      result_.status = result_.residual_norm <= abs_target_
                           ? SolveStatus::Converged
                           : SolveStatus::HappyBreakdown;
    }
    finished_ = true;
    return true;
  }

  result_.residual_history.push_back(est);
  q.append(v.span());
  la::scal(1.0 / hnext, q.col(j + 1));

  if (est <= abs_target_) {
    form_iterate(x0_, zbasis, qr, opts_, result_.x);
    if (!opts_.verify_with_explicit_residual) {
      result_.residual_norm = est;
      result_.status = SolveStatus::Converged;
      finished_ = true;
      return true;
    }
    a_->apply(result_.x.span(), r.span());
    la::waxpby(1.0, b_, -1.0, r.span(), r.span());
    ++result_.global_syncs; // explicit ||b - A*x||
    result_.residual_norm = la::nrm2(r);
    if (result_.residual_norm <= abs_target_) {
      result_.status = SolveStatus::Converged;
      finished_ = true;
      return true;
    }
    // Estimate was optimistic (can happen with truncated updates);
    // keep iterating.
  }

  // --- Divergence guard: a residual estimate blowing past the initial
  // residual (or going non-finite) certifies the iteration is not
  // converging; finalize the best iterate instead of burning the budget.
  if (opts_.divergence_factor > 0.0 &&
      (!std::isfinite(est) || est > opts_.divergence_factor * beta0_)) {
    form_iterate(x0_, zbasis, qr, opts_, result_.x);
    a_->apply(result_.x.span(), r.span());
    la::waxpby(1.0, b_, -1.0, r.span(), r.span());
    ++result_.global_syncs; // explicit ||b - A*x||
    result_.residual_norm = la::nrm2(r);
    result_.status = result_.residual_norm <= abs_target_
                         ? SolveStatus::Converged
                         : SolveStatus::Diverged;
    finished_ = true;
    return true;
  }

  ++j_;
  if (base_iters_ + j_ >= opts_.max_outer || past_deadline()) {
    const bool deadline_hit = base_iters_ + j_ < opts_.max_outer;
    form_iterate(x0_, zbasis, qr, opts_, result_.x);
    a_->apply(result_.x.span(), r.span());
    la::waxpby(1.0, b_, -1.0, r.span(), r.span());
    ++result_.global_syncs; // explicit ||b - A*x||
    result_.residual_norm = la::nrm2(r);
    result_.status = result_.residual_norm <= abs_target_
                         ? SolveStatus::Converged
                     : deadline_hit ? SolveStatus::DeadlineExceeded
                                    : SolveStatus::MaxIterations;
    finished_ = true;
    return true;
  }
  return false;
}

bool FgmresEngine::restart_cycle() {
  la::KrylovBasis& q = w_->arena.basis();
  la::KrylovBasis& zbasis = w_->arena.directions();
  dense::HessenbergQr& qr = w_->qr;
  la::Vector& r = w_->arena.scratch(0);

  // The flagged iteration consumed budget like any other (a persistently
  // faulty inner solve must not loop forever): j_ accepted columns plus
  // the one direction begin_iteration() appended but never committed.
  base_iters_ += j_ + 1;
  ++result_.outer_restarts;
  result_.outer_iterations = base_iters_;

  // Fold the accepted columns into the iterate -- the flagged direction
  // never entered the projected QR factorization -- and restart from the
  // reliable explicit residual.
  form_iterate(x0_, zbasis, qr, opts_, result_.x);
  x0_ = result_.x;
  a_->apply(x0_.span(), r.span());
  la::waxpby(1.0, b_, -1.0, r.span(), r.span());
  ++result_.global_syncs; // explicit restart residual
  beta_ = la::nrm2(r);
  result_.residual_norm = beta_;

  if (beta_ <= abs_target_) {
    result_.status = SolveStatus::Converged;
    finished_ = true;
    return true;
  }
  if (!std::isfinite(beta_)) {
    result_.status = SolveStatus::Diverged;
    finished_ = true;
    return true;
  }
  if (base_iters_ >= opts_.max_outer) {
    result_.status = SolveStatus::MaxIterations;
    finished_ = true;
    return true;
  }
  if (past_deadline()) {
    result_.status = SolveStatus::DeadlineExceeded;
    finished_ = true;
    return true;
  }

  q.clear();
  zbasis.clear();
  q.append(r);
  la::scal(1.0 / beta_, q.col(0));
  qr.reset(opts_.max_outer, beta_);
  if (opts_.rank_check_every_iteration) ice_.reset();
  std::vector<double>& hcol = w_->arena.h_column();
  std::fill(hcol.begin(),
            hcol.begin() + static_cast<std::ptrdiff_t>(opts_.max_outer + 2),
            0.0);
  j_ = 0;
  return false;
}

FgmresResult fgmres(const LinearOperator& A, const la::Vector& b,
                    const la::Vector& x0, const FgmresOptions& opts,
                    FlexiblePreconditioner& M, KrylovWorkspace* ws) {
  KrylovWorkspace local;
  KrylovWorkspace& w = (ws != nullptr) ? *ws : local;
  FgmresEngine engine(A, b.span(), x0.span(), opts, w);
  if (!engine.start()) {
    while (true) {
      const FgmresEngine::PrecondRequest req = engine.begin_iteration();
      M.apply(req.q, req.outer_index, req.z);
      A.apply(engine.direction(), engine.v_target());
      if (engine.advance()) break;
    }
  }
  return engine.take_result();
}

} // namespace sdcgmres::krylov
