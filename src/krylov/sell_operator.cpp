#include "krylov/sell_operator.hpp"

#include <stdexcept>

namespace sdcgmres::krylov {

void SellOperator::do_apply_block(const la::BasisView& x,
                                  la::BlockView y) const {
  if (x.rows() != a_->cols() || y.rows() != a_->rows() ||
      x.cols() != y.cols()) {
    throw std::invalid_argument("SellOperator::apply_block: shape mismatch");
  }
  if (x.cols() == 0) return; // nothing to do; data() may be null
  a_->spmm(x.cols(), x.data(), x.ld(), y.data(), y.ld());
}

} // namespace sdcgmres::krylov
