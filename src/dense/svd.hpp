#pragma once
/// \file svd.hpp
/// \brief One-sided Jacobi SVD for small dense matrices.
///
/// The paper regularizes the projected least-squares problem with a
/// rank-revealing decomposition; its authors used an SVD "as an easier to
/// implement and no more accurate substitute" for Stewart's updating ULV.
/// We follow them.  The projected problems have dimension <= the restart
/// length (tens), so an O(n^3)-per-sweep one-sided Jacobi is more than fast
/// enough and has excellent relative accuracy for small singular values --
/// which is exactly what rank truncation relies on.

#include <cstddef>

#include "la/dense_matrix.hpp"
#include "la/vector.hpp"

namespace sdcgmres::dense {

/// Thin SVD A = U * diag(sigma) * V^T of an m x n matrix with m >= n.
struct SvdResult {
  la::DenseMatrix u;   ///< m x n, orthonormal columns
  la::Vector sigma;    ///< n singular values, descending, nonnegative
  la::DenseMatrix v;   ///< n x n orthogonal
  std::size_t sweeps = 0; ///< Jacobi sweeps used
  bool converged = false; ///< off-diagonal convergence reached
};

/// Compute the thin SVD by one-sided Jacobi rotations.
/// Throws std::invalid_argument when m < n.
[[nodiscard]] SvdResult jacobi_svd(const la::DenseMatrix& A,
                                   std::size_t max_sweeps = 60,
                                   double tol = 1e-14);

/// Minimum-norm least-squares solution of min ||A y - b|| via the SVD,
/// truncating singular values below rel_tol * sigma_max (the paper's
/// regularization policy, Section VI-D).
/// \returns the solution; \p effective_rank (optional out) receives the
/// number of singular values kept.
[[nodiscard]] la::Vector svd_least_squares(const la::DenseMatrix& A,
                                           const la::Vector& b,
                                           double rel_tol = 1e-12,
                                           std::size_t* effective_rank = nullptr);

} // namespace sdcgmres::dense
