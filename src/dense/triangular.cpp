#include "dense/triangular.hpp"

#include <stdexcept>

namespace sdcgmres::dense {

la::Vector back_substitute(const la::DenseMatrix& R, const la::Vector& z) {
  const std::size_t n = R.rows();
  if (R.cols() != n || z.size() != n) {
    throw std::invalid_argument("back_substitute: dimension mismatch");
  }
  la::Vector y(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = z[ii];
    for (std::size_t j = ii + 1; j < n; ++j) {
      sum -= R(ii, j) * y[j];
    }
    y[ii] = sum / R(ii, ii);
  }
  return y;
}

la::Vector forward_substitute(const la::DenseMatrix& L, const la::Vector& z) {
  const std::size_t n = L.rows();
  if (L.cols() != n || z.size() != n) {
    throw std::invalid_argument("forward_substitute: dimension mismatch");
  }
  la::Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = z[i];
    for (std::size_t j = 0; j < i; ++j) {
      sum -= L(i, j) * y[j];
    }
    y[i] = sum / L(i, i);
  }
  return y;
}

} // namespace sdcgmres::dense
