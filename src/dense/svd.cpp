#include "dense/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace sdcgmres::dense {

SvdResult jacobi_svd(const la::DenseMatrix& A, std::size_t max_sweeps,
                     double tol) {
  const std::size_t m = A.rows();
  const std::size_t n = A.cols();
  if (m < n) {
    throw std::invalid_argument("jacobi_svd: requires rows >= cols");
  }
  SvdResult out;
  out.u = A; // working copy; columns orthogonalized in place
  out.v = la::DenseMatrix::identity(n);
  out.sigma = la::Vector(n);

  // One-sided Jacobi: repeatedly rotate column pairs (p, q) of U so they
  // become orthogonal, accumulating the rotations into V.
  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double app = 0.0, aqq = 0.0, apq = 0.0;
        const double* cp = out.u.col(p);
        const double* cq = out.u.col(q);
        for (std::size_t i = 0; i < m; ++i) {
          app += cp[i] * cp[i];
          aqq += cq[i] * cq[i];
          apq += cp[i] * cq[i];
        }
        const double denom = std::sqrt(app * aqq);
        if (denom == 0.0 || std::abs(apq) <= tol * denom) continue;
        off = std::max(off, std::abs(apq) / denom);
        // Classic Jacobi rotation angle.
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0)
                             ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                             : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        double* up = out.u.col(p);
        double* uq = out.u.col(q);
        for (std::size_t i = 0; i < m; ++i) {
          const double a = up[i];
          const double b = uq[i];
          up[i] = c * a - s * b;
          uq[i] = s * a + c * b;
        }
        double* vp = out.v.col(p);
        double* vq = out.v.col(q);
        for (std::size_t i = 0; i < n; ++i) {
          const double a = vp[i];
          const double b = vq[i];
          vp[i] = c * a - s * b;
          vq[i] = s * a + c * b;
        }
      }
    }
    out.sweeps = sweep + 1;
    if (off <= tol) {
      out.converged = true;
      break;
    }
  }

  // Column norms are the singular values; normalize U's columns.
  for (std::size_t j = 0; j < n; ++j) {
    double norm = 0.0;
    double* cj = out.u.col(j);
    for (std::size_t i = 0; i < m; ++i) norm += cj[i] * cj[i];
    norm = std::sqrt(norm);
    out.sigma[j] = norm;
    if (norm > 0.0) {
      for (std::size_t i = 0; i < m; ++i) cj[i] /= norm;
    }
  }

  // Sort singular values descending; permute U and V columns to match.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return out.sigma[a] > out.sigma[b];
  });
  la::DenseMatrix us(m, n), vs(n, n);
  la::Vector ss(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t src = order[j];
    ss[j] = out.sigma[src];
    for (std::size_t i = 0; i < m; ++i) us(i, j) = out.u(i, src);
    for (std::size_t i = 0; i < n; ++i) vs(i, j) = out.v(i, src);
  }
  out.u = std::move(us);
  out.v = std::move(vs);
  out.sigma = std::move(ss);
  return out;
}

la::Vector svd_least_squares(const la::DenseMatrix& A, const la::Vector& b,
                             double rel_tol, std::size_t* effective_rank) {
  if (b.size() != A.rows()) {
    throw std::invalid_argument("svd_least_squares: rhs size mismatch");
  }
  const SvdResult svd = jacobi_svd(A);
  const std::size_t n = A.cols();
  const double cutoff = (n == 0) ? 0.0 : rel_tol * svd.sigma[0];
  la::Vector y(n);
  std::size_t rank = 0;
  for (std::size_t j = 0; j < n; ++j) {
    if (svd.sigma[j] <= cutoff || svd.sigma[j] == 0.0) continue;
    ++rank;
    // coefficient = (u_j . b) / sigma_j
    double uj_b = 0.0;
    const double* uj = svd.u.col(j);
    for (std::size_t i = 0; i < A.rows(); ++i) uj_b += uj[i] * b[i];
    const double coeff = uj_b / svd.sigma[j];
    const double* vj = svd.v.col(j);
    for (std::size_t i = 0; i < n; ++i) y[i] += coeff * vj[i];
  }
  if (effective_rank != nullptr) *effective_rank = rank;
  return y;
}

} // namespace sdcgmres::dense
