#pragma once
/// \file condition.hpp
/// \brief Incremental condition estimation for a growing triangular factor.
///
/// FGMRES's trichotomy wants sigma_min/sigma_max of the projected QR's
/// triangular factor R_k every iteration (`rank_check_every_iteration`).
/// A full Jacobi SVD per iteration costs O(k^3); this estimator maintains
/// the classic incremental condition estimate (Bischof 1990) instead:
/// one approximate extreme singular pair per bound, updated in O(k) when
/// a column is appended to R.
///
/// Invariant: each estimate keeps a UNIT vector y with sigma~ = ||y^T R||.
/// Appending column [v; gamma] (v = R(0..k-1, k), gamma = R(k, k))
/// restricts the new left vector to span{[y; 0], e_{k+1}}, i.e.
/// y' = [s*y; c] with s^2 + c^2 = 1, where
///
///   ||y'^T R'||^2 = [s c] M [s c]^T,
///   M = [[sigma~^2 + beta^2, beta*gamma], [beta*gamma, gamma^2]],
///   beta = y . v.
///
/// Maximizing (resp. minimizing) the 2x2 quadratic form gives the new
/// sigma~ as sqrt of the extreme eigenvalue and y' from its eigenvector.
/// Because the optimization is over a SUBSPACE of unit vectors:
///
///   sigma~max <= sigma_max(R)   and   sigma~min >= sigma_min(R),
///
/// so ratio() = sigma~min/sigma~max UPPER-bounds the true
/// sigma_min/sigma_max.  That makes it a sound cheap monitor (a healthy
/// ratio estimate can hide deficiency, a tiny one is real trouble), but
/// NOT a sound rank-deficiency certificate -- FGMRES therefore still
/// runs the exact jacobi_svd oracle at the one place a decision is made
/// (subdiagonal breakdown), keeping solve outcomes bitwise unchanged.

#include <cstddef>
#include <span>
#include <vector>

namespace sdcgmres::dense {

class IncrementalConditionEstimator {
public:
  /// Forget every column (a fresh factor / outer restart).  Keeps the
  /// reserved storage, so reset-per-solve is allocation-free.
  void reset() noexcept;

  /// Pre-size the internal vectors for factors up to \p max_cols columns
  /// so update() never allocates on the iteration path.
  void reserve(std::size_t max_cols);

  /// Number of columns folded in so far.
  [[nodiscard]] std::size_t size() const noexcept { return k_; }

  /// Fold in the next column of R: \p r_col holds R(0..k, k) for
  /// k = size() -- the k entries above the diagonal followed by the new
  /// diagonal R(k, k).  Throws std::invalid_argument on a size mismatch.
  void update(std::span<const double> r_col);

  /// Undo the most recent update() (ONE level -- FGMRES pairs this with
  /// HessenbergQr::pop_column when it discards a degenerate direction).
  /// Throws std::logic_error when there is no update to undo.
  void pop();

  /// Lower bound of sigma_max(R) (0 before any column).
  [[nodiscard]] double sigma_max() const noexcept { return smax_; }
  /// Upper bound of sigma_min(R) (0 before any column).
  [[nodiscard]] double sigma_min() const noexcept { return smin_; }

  /// sigma_min()/sigma_max(), clamped to [0, 1]; 1.0 for an empty factor
  /// and 0.0 when sigma_max() is zero (an all-zero factor).
  [[nodiscard]] double ratio() const noexcept;

private:
  /// Advance one estimate (y, sigma) by the new column; want_max picks
  /// the maximizing or minimizing eigenpair of the 2x2 form.
  static void step(std::vector<double>& y, double& sigma,
                   std::span<const double> v, double gamma, bool want_max);

  std::size_t k_ = 0;
  double smin_ = 0.0;
  double smax_ = 0.0;
  std::vector<double> ymin_; ///< unit vector attaining sigma~min
  std::vector<double> ymax_; ///< unit vector attaining sigma~max

  // One-level undo stash for pop().
  bool can_pop_ = false;
  double prev_smin_ = 0.0;
  double prev_smax_ = 0.0;
  std::vector<double> prev_ymin_;
  std::vector<double> prev_ymax_;
};

} // namespace sdcgmres::dense
