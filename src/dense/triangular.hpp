#pragma once
/// \file triangular.hpp
/// \brief Dense triangular solves (Saad & Schultz's standard GMRES update).

#include "la/dense_matrix.hpp"
#include "la/vector.hpp"

namespace sdcgmres::dense {

/// Solve the upper-triangular system R y = z by back-substitution.
/// R must be square and match z's length.  No singularity guard: division
/// by a zero diagonal produces Inf/NaN exactly as IEEE-754 prescribes --
/// this is deliberate, because the paper's least-squares Policy 2 relies on
/// observing those non-finite values (Section VI-D).
[[nodiscard]] la::Vector back_substitute(const la::DenseMatrix& R,
                                         const la::Vector& z);

/// Solve the lower-triangular system L y = z by forward substitution
/// (same IEEE semantics as back_substitute).
[[nodiscard]] la::Vector forward_substitute(const la::DenseMatrix& L,
                                            const la::Vector& z);

} // namespace sdcgmres::dense
