#include "dense/condition.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sdcgmres::dense {

void IncrementalConditionEstimator::reset() noexcept {
  k_ = 0;
  smin_ = 0.0;
  smax_ = 0.0;
  ymin_.clear();
  ymax_.clear();
  can_pop_ = false;
}

void IncrementalConditionEstimator::reserve(std::size_t max_cols) {
  ymin_.reserve(max_cols);
  ymax_.reserve(max_cols);
  prev_ymin_.reserve(max_cols);
  prev_ymax_.reserve(max_cols);
}

void IncrementalConditionEstimator::update(std::span<const double> r_col) {
  if (r_col.size() != k_ + 1) {
    throw std::invalid_argument(
        "IncrementalConditionEstimator::update: column must hold size() + 1 "
        "entries (R(0..k, k) including the diagonal)");
  }
  // Stash the one-level undo state.
  prev_smin_ = smin_;
  prev_smax_ = smax_;
  prev_ymin_.assign(ymin_.begin(), ymin_.end());
  prev_ymax_.assign(ymax_.begin(), ymax_.end());
  can_pop_ = true;

  const double gamma = r_col[k_];
  if (k_ == 0) {
    // R is the 1x1 matrix [gamma]: both singular values are exact.
    smin_ = std::abs(gamma);
    smax_ = smin_;
    ymin_.assign(1, 1.0);
    ymax_.assign(1, 1.0);
    k_ = 1;
    return;
  }
  step(ymin_, smin_, r_col, gamma, /*want_max=*/false);
  step(ymax_, smax_, r_col, gamma, /*want_max=*/true);
  ++k_;
}

void IncrementalConditionEstimator::step(std::vector<double>& y, double& sigma,
                                         std::span<const double> v,
                                         double gamma, bool want_max) {
  const std::size_t k = y.size();
  double beta = 0.0;
  for (std::size_t i = 0; i < k; ++i) beta += y[i] * v[i];

  // Extreme eigenpair of M = [[a, b], [b, d]] (see header).
  const double a = sigma * sigma + beta * beta;
  const double b = beta * gamma;
  const double d = gamma * gamma;
  const double tr = a + d;
  const double disc = std::hypot(a - d, 2.0 * b);
  const double lambda = want_max ? 0.5 * (tr + disc) : 0.5 * (tr - disc);

  // Eigenvector: both (b, lambda - a) and (lambda - d, b) solve
  // (M - lambda I) w = 0; take the larger one for numerical safety (one
  // of them degenerates to ~0 whenever b is tiny).
  double s = b;
  double c = lambda - a;
  const double s2 = lambda - d;
  const double c2 = b;
  if (s * s + c * c < s2 * s2 + c2 * c2) {
    s = s2;
    c = c2;
  }
  double norm = std::hypot(s, c);
  if (norm == 0.0) {
    // M is a multiple of the identity (b == 0, a == d): every unit vector
    // attains lambda; keep the existing direction.
    s = 1.0;
    c = 0.0;
    norm = 1.0;
  }
  s /= norm;
  c /= norm;

  for (std::size_t i = 0; i < k; ++i) y[i] *= s;
  y.push_back(c);
  sigma = std::sqrt(std::max(lambda, 0.0));
}

void IncrementalConditionEstimator::pop() {
  if (!can_pop_) {
    throw std::logic_error(
        "IncrementalConditionEstimator::pop: no update to undo");
  }
  smin_ = prev_smin_;
  smax_ = prev_smax_;
  ymin_.assign(prev_ymin_.begin(), prev_ymin_.end());
  ymax_.assign(prev_ymax_.begin(), prev_ymax_.end());
  k_ = ymin_.size();
  can_pop_ = false;
}

double IncrementalConditionEstimator::ratio() const noexcept {
  if (k_ == 0) return 1.0;
  if (!(smax_ > 0.0)) return 0.0;
  return std::min(1.0, smin_ / smax_);
}

} // namespace sdcgmres::dense
