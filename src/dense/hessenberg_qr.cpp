#include "dense/hessenberg_qr.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sdcgmres::dense {

HessenbergQr::HessenbergQr(std::size_t max_cols, double beta) {
  reset(max_cols, beta);
}

void HessenbergQr::reset(std::size_t max_cols, double beta) {
  if (max_cols == 0) {
    throw std::invalid_argument("HessenbergQr: max_cols must be positive");
  }
  if (max_cols > max_cols_) {
    // DenseMatrix::reshape and vector::resize keep capacity when shrinking
    // and only allocate on growth, so repeated resets of one shape are free.
    r_.reshape(max_cols, max_cols);
    rotations_.reserve(max_cols);
    g_.resize(max_cols + 1);
    col_.resize(max_cols + 1);
    max_cols_ = max_cols;
  }
  k_ = 0;
  rotations_.clear();
  std::fill(g_.begin(), g_.end(), 0.0);
  g_[0] = beta;
}

double HessenbergQr::add_column(std::span<const double> h_col) {
  if (k_ >= max_cols_) {
    throw std::length_error("HessenbergQr: capacity exhausted");
  }
  if (h_col.size() != k_ + 2) {
    throw std::invalid_argument(
        "HessenbergQr: column must have size() + 2 entries");
  }
  // Work on a scratch copy of the new column (member storage: add_column
  // is allocation-free after construction/reset).
  std::span<double> col(col_.data(), k_ + 2);
  std::copy(h_col.begin(), h_col.end(), col.begin());
  // Apply all previous rotations.
  for (std::size_t i = 0; i < k_; ++i) {
    rotations_[i].apply(col[i], col[i + 1]);
  }
  // New rotation annihilates the subdiagonal entry.
  const GivensRotation rot = make_givens(col[k_], col[k_ + 1]);
  rotations_.push_back(rot);
  rot.apply(col[k_], col[k_ + 1]);
  // Store the triangular column and rotate the rhs.
  for (std::size_t i = 0; i <= k_; ++i) {
    r_(i, k_) = col[i];
  }
  rot.apply(g_[k_], g_[k_ + 1]);
  ++k_;
  return residual_estimate();
}

void HessenbergQr::pop_column() {
  if (k_ == 0) {
    throw std::logic_error("HessenbergQr::pop_column: no columns");
  }
  --k_;
  // Undo the rhs rotation with the transposed (inverse) rotation; the
  // stored R column becomes dead storage governed by k_.
  const GivensRotation rot = rotations_.back();
  const double a = g_[k_];
  const double b = g_[k_ + 1];
  g_[k_] = rot.c * a - rot.s * b;
  g_[k_ + 1] = rot.s * a + rot.c * b;
  rotations_.pop_back();
}

double HessenbergQr::residual_estimate() const noexcept {
  return std::abs(g_[k_]);
}

double HessenbergQr::r(std::size_t i, std::size_t j) const {
  if (j >= k_ || i > j) {
    throw std::out_of_range("HessenbergQr::r: not in the upper triangle");
  }
  return r_(i, j);
}

la::DenseMatrix HessenbergQr::r_block() const { return r_.top_left(k_, k_); }

la::Vector HessenbergQr::rhs_block() const {
  la::Vector z(k_);
  for (std::size_t i = 0; i < k_; ++i) z[i] = g_[i];
  return z;
}

} // namespace sdcgmres::dense
