#include "dense/lsq_policies.hpp"

#include <cmath>

#include "dense/svd.hpp"
#include "dense/triangular.hpp"

namespace sdcgmres::dense {

namespace {

bool has_nonfinite(const la::Vector& v) {
  for (const double x : v) {
    if (!std::isfinite(x)) return true;
  }
  return false;
}

} // namespace

const char* to_string(LsqPolicy policy) noexcept {
  switch (policy) {
    case LsqPolicy::Standard: return "standard";
    case LsqPolicy::Fallback: return "fallback-on-nonfinite";
    case LsqPolicy::RankRevealing: return "rank-revealing";
  }
  return "unknown";
}

ProjectedSolve solve_projected(const la::DenseMatrix& R, const la::Vector& z,
                               LsqPolicy policy, double truncation_tol) {
  ProjectedSolve out;
  switch (policy) {
    case LsqPolicy::Standard: {
      out.y = back_substitute(R, z);
      out.effective_rank = R.cols();
      out.nonfinite = has_nonfinite(out.y);
      return out;
    }
    case LsqPolicy::Fallback: {
      out.y = back_substitute(R, z);
      out.effective_rank = R.cols();
      if (has_nonfinite(out.y)) {
        out.fallback_triggered = true;
        out.y = svd_least_squares(R, z, truncation_tol, &out.effective_rank);
      }
      out.nonfinite = has_nonfinite(out.y);
      return out;
    }
    case LsqPolicy::RankRevealing: {
      out.y = svd_least_squares(R, z, truncation_tol, &out.effective_rank);
      out.nonfinite = has_nonfinite(out.y);
      return out;
    }
  }
  return out;
}

} // namespace sdcgmres::dense
