#pragma once
/// \file lsq_policies.hpp
/// \brief The paper's three policies for solving the projected system Ry=z.
///
/// Section VI-D of the paper: after the Givens reduction, GMRES computes
/// the solution-update coefficients from the triangular system R y = z.
/// A (nearly) singular R -- which faults can cause -- makes the standard
/// triangular solve produce unboundedly large or non-finite coefficients.
/// The paper implements and compares three policies:
///   1. Standard       -- plain back-substitution (Saad & Schultz)
///   2. Fallback       -- back-substitution, redone with a rank-revealing
///                        SVD only if the result contains Inf/NaN
///   3. RankRevealing  -- always solve via truncated SVD (minimum-norm)
/// The paper recommends 1 or 3; policy 2 "conceals the natural error
/// detection that comes with IEEE-754" without bounding the error.

#include <cstddef>

#include "la/dense_matrix.hpp"
#include "la/vector.hpp"

namespace sdcgmres::dense {

/// Least-squares update policy (paper Section VI-D).
enum class LsqPolicy {
  Standard,      ///< policy 1: plain triangular solve
  Fallback,      ///< policy 2: triangular solve, SVD retry on Inf/NaN
  RankRevealing, ///< policy 3: always truncated-SVD minimum-norm solve
};

/// Human-readable policy name (for reports).
[[nodiscard]] const char* to_string(LsqPolicy policy) noexcept;

/// Outcome of a projected solve.
struct ProjectedSolve {
  la::Vector y;                ///< update coefficients
  std::size_t effective_rank = 0; ///< columns kept (== n for Standard
                               ///< solves that succeed)
  bool fallback_triggered = false; ///< policy 2 only: SVD retry happened
  bool nonfinite = false;      ///< final y still contains Inf/NaN
};

/// Solve R y = z under \p policy.  \p truncation_tol is the relative
/// singular-value cutoff used by the rank-revealing path.
[[nodiscard]] ProjectedSolve solve_projected(const la::DenseMatrix& R,
                                             const la::Vector& z,
                                             LsqPolicy policy,
                                             double truncation_tol = 1e-12);

} // namespace sdcgmres::dense
