#pragma once
/// \file hessenberg_qr.hpp
/// \brief Incremental QR factorization of the GMRES upper-Hessenberg matrix.
///
/// GMRES solves min_y || H_k y - beta*e1 ||_2 where H_k is (k+1) x k upper
/// Hessenberg.  Appending one column per iteration and updating with Givens
/// rotations keeps the per-iteration cost O(k) and makes the current
/// residual norm available for free as |g_{k+1}| (Saad & Schultz).  This
/// class owns the rotations, the triangular factor R, and the transformed
/// right-hand side g.

#include <cstddef>
#include <span>
#include <vector>

#include "dense/givens.hpp"
#include "la/dense_matrix.hpp"
#include "la/vector.hpp"

namespace sdcgmres::dense {

class HessenbergQr {
public:
  /// Empty factorization; reset() must be called before use.  Exists so a
  /// HessenbergQr can live inside a reusable solver workspace.
  HessenbergQr() = default;

  /// \param max_cols maximum number of columns (restart length)
  /// \param beta norm of the initial residual; the rhs starts as beta*e1
  HessenbergQr(std::size_t max_cols, double beta);

  /// Restart the factorization for a new solve: capacity at least
  /// \p max_cols (never shrinks), rhs beta*e1, zero columns.  Reuses the
  /// existing storage when the capacity fits (no heap allocation), so a
  /// workspace-held factorization is allocation-free across repeated
  /// solves of the same shape.
  void reset(std::size_t max_cols, double beta);

  /// Append the next Hessenberg column.  \p h_col must contain the k+2
  /// entries H(0..k+1, k) where k = size() is the index of the new column.
  /// Returns the updated least-squares residual norm |g_{k+1}|.
  double add_column(std::span<const double> h_col);

  /// Remove the most recently appended column, restoring the factorization
  /// and the transformed right-hand side to their prior state exactly (the
  /// Givens update is orthogonal, so it is undone by the transposed
  /// rotation).  Used by FGMRES to discard a degenerate preconditioned
  /// direction and retry the iteration.
  void pop_column();

  /// Number of columns appended so far.
  [[nodiscard]] std::size_t size() const noexcept { return k_; }

  /// Current least-squares residual norm |g_{k+1}| (equals beta before any
  /// column is added).  This is the GMRES residual norm in exact arithmetic.
  [[nodiscard]] double residual_estimate() const noexcept;

  /// R(i, j) of the triangular factor, for i <= j < size().
  [[nodiscard]] double r(std::size_t i, std::size_t j) const;

  /// Leading k x k block of the triangular factor as a dense matrix.
  [[nodiscard]] la::DenseMatrix r_block() const;

  /// First k entries of the transformed right-hand side g.
  [[nodiscard]] la::Vector rhs_block() const;

private:
  std::size_t max_cols_ = 0;
  std::size_t k_ = 0;
  la::DenseMatrix r_;                   // (max_cols) x (max_cols), upper part
  std::vector<GivensRotation> rotations_;
  std::vector<double> g_;               // transformed rhs, length max_cols+1
  std::vector<double> col_;             // add_column scratch, max_cols+1
};

} // namespace sdcgmres::dense
