#pragma once
/// \file hessenberg_qr.hpp
/// \brief Incremental QR factorization of the GMRES upper-Hessenberg matrix.
///
/// GMRES solves min_y || H_k y - beta*e1 ||_2 where H_k is (k+1) x k upper
/// Hessenberg.  Appending one column per iteration and updating with Givens
/// rotations keeps the per-iteration cost O(k) and makes the current
/// residual norm available for free as |g_{k+1}| (Saad & Schultz).  This
/// class owns the rotations, the triangular factor R, and the transformed
/// right-hand side g.
///
/// Templated on the scalar type.  The double instantiation (aliased
/// HessenbergQr) is the reliable-plane factorization, arithmetic unchanged
/// from the pre-template class; the float instantiation runs the
/// mixed-precision inner engine's recurrence entirely in float.  The
/// projected-problem views (r_block / rhs_block) widen to double for every
/// instantiation: the tiny (k x k) least-squares solve is always done in
/// double -- it is O(restart^2) work against the O(n) iteration cost, and
/// keeping it double means the float plane only gives up precision where
/// the bytes are (the length-n streams), not in the recurrence bookkeeping
/// that decides convergence.
///
/// The triangular factor is stored as a flat column-major scratch of
/// max_cols x max_cols scalars (leading dimension max_cols); storage is
/// reused across reset() calls of a fitting shape, so a workspace-held
/// factorization is allocation-free across repeated solves.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "dense/givens.hpp"
#include "la/dense_matrix.hpp"
#include "la/vector.hpp"

namespace sdcgmres::dense {

template <typename S>
class HessenbergQrT {
public:
  /// Empty factorization; reset() must be called before use.  Exists so a
  /// HessenbergQr can live inside a reusable solver workspace.
  HessenbergQrT() = default;

  /// \param max_cols maximum number of columns (restart length)
  /// \param beta norm of the initial residual; the rhs starts as beta*e1
  HessenbergQrT(std::size_t max_cols, S beta) { reset(max_cols, beta); }

  /// Restart the factorization for a new solve: capacity at least
  /// \p max_cols (never shrinks), rhs beta*e1, zero columns.  Reuses the
  /// existing storage when the capacity fits (no heap allocation), so a
  /// workspace-held factorization is allocation-free across repeated
  /// solves of the same shape.
  void reset(std::size_t max_cols, S beta) {
    if (max_cols == 0) {
      throw std::invalid_argument("HessenbergQr: max_cols must be positive");
    }
    if (max_cols > max_cols_) {
      // Growth reallocates; repeated resets of one shape are free.  The
      // factor's old contents are dead once k_ returns to zero, so the
      // buffer is simply re-zeroed at the new shape.
      r_.assign(max_cols * max_cols, S(0));
      rotations_.reserve(max_cols);
      g_.resize(max_cols + 1);
      col_.resize(max_cols + 1);
      max_cols_ = max_cols;
    }
    k_ = 0;
    rotations_.clear();
    std::fill(g_.begin(), g_.end(), S(0));
    g_[0] = beta;
  }

  /// Append the next Hessenberg column.  \p h_col must contain the k+2
  /// entries H(0..k+1, k) where k = size() is the index of the new column.
  /// Returns the updated least-squares residual norm |g_{k+1}| (widened).
  double add_column(std::span<const S> h_col) {
    if (k_ >= max_cols_) {
      throw std::length_error("HessenbergQr: capacity exhausted");
    }
    if (h_col.size() != k_ + 2) {
      throw std::invalid_argument(
          "HessenbergQr: column must have size() + 2 entries");
    }
    // Work on a scratch copy of the new column (member storage: add_column
    // is allocation-free after construction/reset).
    std::span<S> col(col_.data(), k_ + 2);
    std::copy(h_col.begin(), h_col.end(), col.begin());
    // Apply all previous rotations.
    for (std::size_t i = 0; i < k_; ++i) {
      rotations_[i].apply(col[i], col[i + 1]);
    }
    // New rotation annihilates the subdiagonal entry.
    const GivensRotationT<S> rot = make_givens<S>(col[k_], col[k_ + 1]);
    rotations_.push_back(rot);
    rot.apply(col[k_], col[k_ + 1]);
    // Store the triangular column and rotate the rhs.
    for (std::size_t i = 0; i <= k_; ++i) {
      r_[i + k_ * max_cols_] = col[i];
    }
    rot.apply(g_[k_], g_[k_ + 1]);
    ++k_;
    return residual_estimate();
  }

  /// Remove the most recently appended column, restoring the factorization
  /// and the transformed right-hand side to their prior state exactly (the
  /// Givens update is orthogonal, so it is undone by the transposed
  /// rotation).  Used by FGMRES to discard a degenerate preconditioned
  /// direction and retry the iteration.
  void pop_column() {
    if (k_ == 0) {
      throw std::logic_error("HessenbergQr::pop_column: no columns");
    }
    --k_;
    // Undo the rhs rotation with the transposed (inverse) rotation; the
    // stored R column becomes dead storage governed by k_.
    const GivensRotationT<S> rot = rotations_.back();
    const S a = g_[k_];
    const S b = g_[k_ + 1];
    g_[k_] = rot.c * a - rot.s * b;
    g_[k_ + 1] = rot.s * a + rot.c * b;
    rotations_.pop_back();
  }

  /// Number of columns appended so far.
  [[nodiscard]] std::size_t size() const noexcept { return k_; }

  /// Current least-squares residual norm |g_{k+1}| (equals beta before any
  /// column is added).  This is the GMRES residual norm in exact arithmetic.
  [[nodiscard]] double residual_estimate() const noexcept {
    return std::abs(static_cast<double>(g_[k_]));
  }

  /// R(i, j) of the triangular factor, for i <= j < size() (widened).
  [[nodiscard]] double r(std::size_t i, std::size_t j) const {
    if (j >= k_ || i > j) {
      throw std::out_of_range("HessenbergQr::r: not in the upper triangle");
    }
    return static_cast<double>(r_[i + j * max_cols_]);
  }

  /// Leading k x k block of the triangular factor as a dense (double)
  /// matrix, by value; float factors are widened entry-wise.
  [[nodiscard]] la::DenseMatrix r_block() const {
    la::DenseMatrix out(k_, k_);
    for (std::size_t j = 0; j < k_; ++j) {
      const S* src = r_.data() + j * max_cols_;
      double* dst = out.col(j);
      for (std::size_t i = 0; i <= j; ++i) {
        dst[i] = static_cast<double>(src[i]);
      }
    }
    return out;
  }

  /// First k entries of the transformed right-hand side g (widened).
  [[nodiscard]] la::Vector rhs_block() const {
    la::Vector z(k_);
    for (std::size_t i = 0; i < k_; ++i) z[i] = static_cast<double>(g_[i]);
    return z;
  }

private:
  std::size_t max_cols_ = 0;
  std::size_t k_ = 0;
  std::vector<S> r_;                    // max_cols x max_cols, upper part
  std::vector<GivensRotationT<S>> rotations_;
  std::vector<S> g_;                    // transformed rhs, length max_cols+1
  std::vector<S> col_;                  // add_column scratch, max_cols+1
};

using HessenbergQr = HessenbergQrT<double>;

} // namespace sdcgmres::dense
