#pragma once
/// \file givens.hpp
/// \brief Givens plane rotations, the workhorse of the Hessenberg QR update.

namespace sdcgmres::dense {

/// A 2x2 plane rotation [c s; -s c] chosen to zero the second component of
/// a two-vector.
struct GivensRotation {
  double c = 1.0;
  double s = 0.0;

  /// Apply the rotation to the pair (a, b) in place:
  ///   a' =  c*a + s*b
  ///   b' = -s*a + c*b
  void apply(double& a, double& b) const noexcept {
    const double ta = c * a + s * b;
    const double tb = -s * a + c * b;
    a = ta;
    b = tb;
  }
};

/// Compute the rotation that maps (a, b) to (r, 0) with r = hypot(a, b).
/// Uses the LAPACK dlartg-style branch-free-overflow formulation: safe for
/// huge and tiny inputs (including the paper's 1e+150-scaled faulty
/// Hessenberg entries, whose squares would overflow a naive c = a/sqrt(a^2
/// + b^2)).
[[nodiscard]] GivensRotation make_givens(double a, double b) noexcept;

} // namespace sdcgmres::dense
