#pragma once
/// \file givens.hpp
/// \brief Givens plane rotations, the workhorse of the Hessenberg QR update.
///
/// Templated on the scalar type: the reliable plane uses the double
/// instantiation (aliased GivensRotation, unchanged behaviour), the
/// mixed-precision inner Hessenberg QR uses the float one.

#include <cmath>

namespace sdcgmres::dense {

/// A 2x2 plane rotation [c s; -s c] chosen to zero the second component of
/// a two-vector.
template <typename S>
struct GivensRotationT {
  S c = S(1);
  S s = S(0);

  /// Apply the rotation to the pair (a, b) in place:
  ///   a' =  c*a + s*b
  ///   b' = -s*a + c*b
  void apply(S& a, S& b) const noexcept {
    const S ta = c * a + s * b;
    const S tb = -s * a + c * b;
    a = ta;
    b = tb;
  }
};

using GivensRotation = GivensRotationT<double>;

/// Compute the rotation that maps (a, b) to (r, 0) with r = hypot(a, b).
/// Uses the LAPACK dlartg-style branch-free-overflow formulation: safe for
/// huge and tiny inputs (including the paper's 1e+150-scaled faulty
/// Hessenberg entries, whose squares would overflow a naive c = a/sqrt(a^2
/// + b^2)).
template <typename S>
[[nodiscard]] inline GivensRotationT<S> make_givens(S a, S b) noexcept {
  GivensRotationT<S> g;
  if (b == S(0)) {
    g.c = S(1);
    g.s = S(0);
    return g;
  }
  if (a == S(0)) {
    g.c = S(0);
    g.s = (b > S(0)) ? S(1) : S(-1);
    return g;
  }
  // std::hypot avoids overflow/underflow of a*a + b*b for extreme inputs.
  const S r = std::hypot(a, b);
  g.c = a / r;
  g.s = b / r;
  return g;
}

} // namespace sdcgmres::dense
