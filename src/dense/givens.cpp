#include "dense/givens.hpp"

#include <cmath>

namespace sdcgmres::dense {

GivensRotation make_givens(double a, double b) noexcept {
  GivensRotation g;
  if (b == 0.0) {
    g.c = 1.0;
    g.s = 0.0;
    return g;
  }
  if (a == 0.0) {
    g.c = 0.0;
    g.s = (b > 0.0) ? 1.0 : -1.0;
    return g;
  }
  // std::hypot avoids overflow/underflow of a*a + b*b for extreme inputs.
  const double r = std::hypot(a, b);
  g.c = a / r;
  g.s = b / r;
  return g;
}

} // namespace sdcgmres::dense
