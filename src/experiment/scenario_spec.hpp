#pragma once
/// \file scenario_spec.hpp
/// \brief Key=value scenario descriptions, the one text format every
/// front end shares.
///
/// A scenario -- {solver, preconditioner, matrix, fault model, injection
/// position, detector, sweep parameters} -- is described as
/// whitespace-separated `key=value` tokens:
///
///   solver=ft_gmres matrix=poisson n=40 inner=25 fault=class1
///   position=first detector=bound response=abort sweep=1 threads=2
///
/// The same parser backs the `sdc_run` example CLI, the spec-driven
/// `experiment::run_injection_sweep` overload, and the shared bench flag
/// handling (bench/bench_common.hpp), so a scenario string is portable
/// between all of them.  Values may contain ':' (registry inline
/// arguments such as `matrix=mtx:/path/to.mtx` or `fault=scale:1e150`).

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sdcgmres::experiment {

/// An ordered key=value map with typed accessors.  Later assignments of
/// the same key override earlier ones (so specs compose left to right:
/// defaults first, overrides appended).
class ScenarioSpec {
public:
  ScenarioSpec() = default;

  /// Parse whitespace-separated `key=value` tokens.  Throws
  /// std::invalid_argument on a token without '=' or with an empty key.
  [[nodiscard]] static ScenarioSpec parse(std::string_view text);

  /// Parse a spec FILE (one or more `key=value` tokens per line; `#`
  /// starts a comment through end of line).  Unlike parse(), assigning
  /// the same key twice is REJECTED: on a command line, later tokens
  /// deliberately override earlier ones, but in a queued job file a
  /// silent last-wins would hide which of two conflicting lines the
  /// service actually ran.  All errors -- unreadable file, malformed
  /// token, duplicate key -- throw std::runtime_error carrying the path
  /// and 1-based line number (the journal loader's error style).
  [[nodiscard]] static ScenarioSpec parse_file(const std::string& path);

  /// Set (or override) one entry.
  void set(std::string_view key, std::string_view value);

  /// Merge \p other on top of this spec (its entries win).
  void merge(const ScenarioSpec& other);

  [[nodiscard]] bool has(std::string_view key) const noexcept;
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// Raw string value, or \p dflt when absent.
  [[nodiscard]] std::string get(std::string_view key,
                                std::string_view dflt = {}) const;

  /// Typed accessors; throw std::invalid_argument naming the key when the
  /// value does not parse (trailing garbage included).
  [[nodiscard]] std::size_t get_size(std::string_view key,
                                     std::size_t dflt) const;
  [[nodiscard]] double get_double(std::string_view key, double dflt) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool dflt) const;

  /// Keys in first-assignment order (deduplicated).
  [[nodiscard]] std::vector<std::string> keys() const;

  /// All entries in first-assignment order (for diagnostics / JSON).
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  entries() const noexcept {
    return entries_;
  }

  /// Round-trip text form: `key=value` joined by single spaces.
  [[nodiscard]] std::string to_string() const;

  /// Throw std::invalid_argument listing \p known when this spec contains
  /// a key outside \p known (catches typos like `positon=first` before a
  /// long sweep silently ignores them).
  void require_keys_in(std::initializer_list<std::string_view> known) const;

private:
  [[nodiscard]] const std::string* find(std::string_view key) const noexcept;

  std::vector<std::pair<std::string, std::string>> entries_;
};

} // namespace sdcgmres::experiment
