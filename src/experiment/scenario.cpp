#include "experiment/scenario.hpp"

#include <memory>
#include <random>
#include <stdexcept>
#include <string>

#include "experiment/shard.hpp"
#include "krylov/operator.hpp"
#include "krylov/precision.hpp"
#include "sdc/injection.hpp"
#include "solver/registry.hpp"

namespace sdcgmres::experiment {

namespace {

[[noreturn]] void bad_choice(const char* key, const std::string& value,
                             const char* choices) {
  throw std::invalid_argument(std::string("scenario: ") + key + "='" + value +
                              "' is not one of: " + choices);
}

/// Loud up-front range validation for sweep-critical integer keys.  The
/// spec parser itself rejects negative values ("-4" is not a non-negative
/// integer) but without naming the valid range, and zero used to surface
/// only deep inside the sweep (after matrices were built) or as a silent
/// promotion; here both fail immediately, stating what IS valid.
std::size_t sweep_size_key(const ScenarioSpec& spec, std::string_view key,
                           std::size_t dflt, const char* range_doc) {
  const std::string raw = spec.get(key);
  if (!raw.empty() && raw[0] == '-') {
    throw std::invalid_argument(std::string("scenario: ") + std::string(key) +
                                "=" + raw + " is out of range; " + range_doc);
  }
  const std::size_t value = spec.get_size(key, dflt);
  if (value == 0) {
    throw std::invalid_argument(std::string("scenario: ") + std::string(key) +
                                "=0 is out of range; " + range_doc);
  }
  return value;
}

krylov::Orthogonalization parse_ortho(const ScenarioSpec& spec,
                                      std::string_view key,
                                      krylov::Orthogonalization dflt) {
  const std::string name = spec.get(key);
  if (name.empty()) return dflt;
  if (name == "mgs") return krylov::Orthogonalization::MGS;
  if (name == "cgs") return krylov::Orthogonalization::CGS;
  if (name == "cgs2") return krylov::Orthogonalization::CGS2;
  bad_choice(std::string(key).c_str(), name, "mgs cgs cgs2");
}

sdc::InjectionTarget parse_fault_target(const ScenarioSpec& spec,
                                        std::size_t s_step) {
  const std::string name = spec.get("fault_target", "coefficient");
  if (name == "coefficient") return sdc::InjectionTarget::ProjectionCoefficient;
  if (name == "subdiagonal") return sdc::InjectionTarget::SubdiagonalNorm;
  if (name == "matvec") return sdc::InjectionTarget::MatvecElement;
  if (name == "powers") {
    if (s_step < 2) {
      throw std::invalid_argument(
          "scenario: fault_target=powers corrupts a staged matrix power, "
          "which only exists in the s-step mode; set s=<block size> with "
          "s >= 2 (got s=" +
          std::to_string(s_step) + ")");
    }
    return sdc::InjectionTarget::PowerElement;
  }
  bad_choice("fault_target", name, "coefficient subdiagonal matvec powers");
}

} // namespace

void validate_scenario_keys(const ScenarioSpec& spec) {
  spec.require_keys_in({
      // problem
      "solver", "matrix", "n", "nodes", "path", "seed", "eps_x", "eps_y",
      "beta_x", "beta_y", "rhs",
      // preconditioner
      "precond", "neumann_degree", "neumann_omega",
      // solver options
      "tol", "max_iters", "restart", "ortho", "lsq", "inner", "inner_tol",
      "inner_ortho", "robust_first_inner", "precision", "index", "backend",
      "s",
      // fault + detector + recovery
      "fault", "fault_target", "element", "position", "site", "detector",
      "bound", "response", "recovery",
      // solve guards
      "deadline", "divergence",
      // sweep
      "sweep", "stride", "site_limit", "threads", "batch",
      // resilient sweep runtime
      "journal", "resume", "workers", "worker_timeout",
  });
}

ScenarioProblem build_problem(const ScenarioSpec& spec) {
  ScenarioProblem problem;
  problem.matrix_name = spec.get("matrix", "poisson");
  problem.A = solver::matrix_registry().make(problem.matrix_name, spec);

  // The circuit problem defaults to the consistent rhs b = A*1: with
  // kappa ~ 1e13 an arbitrary rhs would demand solution components beyond
  // what double-precision residuals can certify (see bench_common.hpp).
  const bool is_circuit = problem.matrix_name.rfind("circuit", 0) == 0;
  const std::string rhs = spec.get("rhs", is_circuit ? "consistent" : "ones");
  if (rhs == "ones") {
    problem.b = la::ones(problem.A.rows());
  } else if (rhs == "consistent") {
    problem.b = problem.A.apply(la::ones(problem.A.rows()));
  } else if (rhs == "random") {
    std::mt19937 rng(static_cast<unsigned>(spec.get_size("seed", 42)));
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    problem.b.resize(problem.A.rows());
    for (std::size_t i = 0; i < problem.b.size(); ++i) problem.b[i] = dist(rng);
  } else {
    bad_choice("rhs", rhs, "ones consistent random");
  }
  return problem;
}

solver::Options solver_options_from_spec(const ScenarioSpec& spec) {
  solver::Options opts;
  opts.max_iters = spec.get_size("max_iters", 0);
  opts.restart = spec.get_size("restart", 0);
  opts.tol = spec.get_double("tol", opts.tol);
  opts.ortho = parse_ortho(spec, "ortho", opts.ortho);
  if (const std::string lsq = spec.get("lsq"); !lsq.empty()) {
    if (lsq == "standard") {
      opts.lsq_policy = dense::LsqPolicy::Standard;
    } else if (lsq == "fallback") {
      opts.lsq_policy = dense::LsqPolicy::Fallback;
    } else if (lsq == "rank_revealing") {
      opts.lsq_policy = dense::LsqPolicy::RankRevealing;
    } else {
      bad_choice("lsq", lsq, "standard fallback rank_revealing");
    }
  }
  opts.inner_iters = spec.get_size("inner", opts.inner_iters);
  opts.inner_tol = spec.get_double("inner_tol", opts.inner_tol);
  opts.inner_ortho = parse_ortho(spec, "inner_ortho", opts.inner_ortho);
  opts.robust_first_inner =
      spec.get_bool("robust_first_inner", opts.robust_first_inner);
  if (const std::string precision = spec.get("precision");
      !precision.empty()) {
    if (precision == "double") {
      opts.precision = krylov::Precision::Double;
    } else if (precision == "float") {
      opts.precision = krylov::Precision::Float;
    } else {
      bad_choice("precision", precision, "double float");
    }
  }
  if (const std::string index = spec.get("index"); !index.empty()) {
    if (index == "64") {
      opts.index_width = krylov::IndexWidth::I64;
    } else if (index == "32") {
      opts.index_width = krylov::IndexWidth::I32;
    } else {
      bad_choice("index", index, "32 64");
    }
  }
  opts.s_step = sweep_size_key(
      spec, "s", 1,
      "the s-step block size ranges over s >= 1 (1 = the classical "
      "bitwise-identical path; the solver additionally requires s <= the "
      "restart cycle length, and only gmres/ft_gmres/ft_gmres_batch have "
      "an s-step path)");
  opts.deadline_seconds = spec.get_double("deadline", 0.0);
  if (opts.deadline_seconds < 0.0) {
    throw std::invalid_argument(
        "scenario: deadline=" + spec.get("deadline") +
        " is out of range; the wall-clock budget is in seconds, >= 0 "
        "(0 disables the guard)");
  }
  opts.divergence_factor = spec.get_double("divergence", 0.0);
  if (opts.divergence_factor < 0.0) {
    throw std::invalid_argument(
        "scenario: divergence=" + spec.get("divergence") +
        " is out of range; the guard flags ||r|| > divergence * ||r0||, "
        "so the factor must be >= 0 (0 disables it; typical values >= 10)");
  }
  return opts;
}

ShardOptions shard_options_from_spec(const ScenarioSpec& spec) {
  ShardOptions shard;
  shard.workers =
      sweep_size_key(spec, "workers", 1,
                     "the valid range is workers >= 1 (1 = in-process "
                     "sweep, >1 = crash-tolerant process sharding)");
  shard.worker_timeout_seconds = spec.get_double("worker_timeout", 0.0);
  if (shard.worker_timeout_seconds < 0.0) {
    throw std::invalid_argument(
        "scenario: worker_timeout=" + spec.get("worker_timeout") +
        " is out of range; the per-attempt deadline is in seconds, >= 0 "
        "(0 disables it)");
  }
  return shard;
}

sdc::MgsPosition position_from_spec(const ScenarioSpec& spec,
                                    std::size_t& coefficient_index) {
  coefficient_index = 0;
  const std::string name = spec.get("position", "first");
  if (name == "first") return sdc::MgsPosition::First;
  if (name == "last") return sdc::MgsPosition::Last;
  if (name.rfind("index:", 0) == 0) {
    const std::string digits = name.substr(6);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      bad_choice("position", name, "first last index:<i>");
    }
    try {
      coefficient_index = std::stoull(digits, nullptr, 10);
    } catch (const std::exception&) {
      bad_choice("position", name, "first last index:<i>");
    }
    return sdc::MgsPosition::Index;
  }
  bad_choice("position", name, "first last index:<i>");
}

/// The nested solvers' preconditioner IS the unreliable inner solve;
/// silently dropping a requested fixed preconditioner would misattribute
/// experiment results, so it is rejected loudly (same philosophy as
/// IterativeSolver::set_hook on a hookless solver).
static void reject_precond_for_nested(const ScenarioSpec& spec,
                                      const std::string& solver_name) {
  if (spec.get("precond", "none") != "none") {
    throw std::invalid_argument(
        "scenario: solver '" + solver_name +
        "' is a nested solver whose preconditioner is the unreliable "
        "inner solve; precond=" +
        spec.get("precond") +
        " would be silently ignored -- drop it or pick "
        "gmres/fgmres/cg/fcg");
  }
}

SweepConfig sweep_config_from_spec(const ScenarioSpec& spec,
                                   double frobenius_norm) {
  const std::string solver_name = spec.get("solver", "ft_gmres");
  if (solver_name != "ft_gmres" && solver_name != "ft_gmres_batch") {
    throw std::invalid_argument(
        "scenario: the injection sweep runs the paper's nested solver; "
        "specify solver=ft_gmres (got solver=" +
        solver_name + "; lockstep batching is the batch= key)");
  }
  reject_precond_for_nested(spec, solver_name);

  // Fail fast, listing the valid ranges, before anything expensive runs:
  // inner=0 would admit no injection sites at all, and batch=0 names no
  // lockstep block shape.  (The default inner budget is the paper's 25.)
  (void)sweep_size_key(spec, "inner", solver::Options{}.inner_iters,
                       "the injection-site axis counts inner Arnoldi "
                       "iterations, so the valid range is inner >= 1 "
                       "(paper protocol: inner=25)");
  const std::size_t batch =
      sweep_size_key(spec, "batch", 1,
                     "the valid range is batch >= 1 (1 = solo solves, "
                     ">1 = sites solved in lockstep per sweep worker)");

  SweepConfig config;
  config.solver = solver::to_ft_gmres_options(solver_options_from_spec(spec));

  // Loud up-front backend validation (unknown names list the registry's
  // keys; bad sell geometry names the syntax) -- assembly itself waits
  // until the matrix exists (run_scenario / run_injection_sweep).
  config.backend_key = spec.get("backend", "csr");
  solver::validate_backend_key(config.backend_key);

  const std::string fault = spec.get("fault", "class1");
  if (fault == "none") {
    throw std::invalid_argument(
        "scenario: a sweep injects one fault per site; fault=none is "
        "meaningless (drop sweep=1 for a failure-free solve)");
  }
  config.model = solver::fault_model_registry().make(fault, spec);
  config.target = parse_fault_target(spec, config.solver.inner.s_step);
  config.element_index = spec.get_size("element", 0);

  std::size_t coefficient_index = 0;
  config.position = position_from_spec(spec, coefficient_index);
  if (config.position == sdc::MgsPosition::Index) {
    throw std::invalid_argument(
        "scenario: sweeps support position=first|last (the paper's two "
        "series); per-index sweeps need the InjectionPlan API");
  }

  const std::string detector = spec.get("detector", "none");
  if (detector == "none" && spec.has("recovery")) {
    throw std::invalid_argument(
        "scenario: recovery=" + spec.get("recovery") +
        " needs a detector to trigger it; set detector=bound (or drop "
        "the recovery key)");
  }
  if (detector != "none") {
    // Build one detector to validate the spec and to resolve bound and
    // response exactly as the registry does (inline arg wins over the
    // `response` key); the sweep engine constructs per-site instances.
    const auto probe =
        solver::detector_registry().make(detector, frobenius_norm, spec);
    if (probe == nullptr) {
      throw std::invalid_argument("scenario: detector '" + detector +
                                  "' produced no detector");
    }
    config.with_detector = true;
    config.detector_bound = probe->bound();
    config.detector_response = probe->response();
  }

  config.stride = spec.get_size("stride", 1);
  config.site_limit = spec.get_size("site_limit", 0);
  config.threads = spec.get_size("threads", 1);
  config.batch = batch;
  config.journal = spec.get("journal");
  config.resume = spec.get_bool("resume", false);
  if (config.resume && config.journal.empty()) {
    throw std::invalid_argument(
        "scenario: resume=1 needs journal=<path> (the journal is what a "
        "resumed sweep picks its completed points back up from)");
  }
  if (solver_name == "ft_gmres_batch" && !spec.has("batch")) {
    // The name promises lockstep batching; defaulting to batch=1 would
    // silently run solo solves under it and misattribute measurements.
    throw std::invalid_argument(
        "scenario: solver=ft_gmres_batch in a sweep needs an explicit "
        "batch=B (the sweep engine batches by the batch= key; use "
        "solver=ft_gmres for solo solves)");
  }
  // Everything the sweep engine would reject is rejected here, before
  // any caller-built matrix or baseline solve is wasted on it.
  validate_sweep_config(config);
  return config;
}

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  return run_scenario(spec, ScenarioSeams{});
}

ScenarioResult run_scenario(const ScenarioSpec& spec,
                            const ScenarioSeams& seams) {
  validate_scenario_keys(spec);

  ScenarioResult result;
  result.spec_text = spec.to_string();
  result.solver_name = spec.get("solver", "ft_gmres");

  // A seam-provided problem (the service's artifact cache) replaces
  // build_problem; it was built from the same problem keys, so the
  // result is unchanged -- only the construction cost is.
  std::shared_ptr<const ScenarioProblem> owned;
  if (seams.problem == nullptr) {
    owned = std::make_shared<const ScenarioProblem>(build_problem(spec));
  }
  const ScenarioProblem& problem = seams.problem ? *seams.problem : *owned;
  result.matrix_name = problem.matrix_name;
  result.n = problem.A.rows();
  result.nnz = problem.A.nnz();

  const double frobenius_norm = seams.frobenius_norm >= 0.0
                                    ? seams.frobenius_norm
                                    : problem.A.frobenius_norm();

  // Resolve the execution backend once per scenario (a seam-provided
  // assembly -- the service's artifact cache -- must match the spec's
  // backend= key, exactly like the problem seam).
  std::shared_ptr<const krylov::MatrixBackend> backend = seams.backend;
  if (backend == nullptr) {
    backend =
        solver::backend_registry().make(spec.get("backend", "csr"), problem.A);
  }
  result.backend_name = backend->name();
  result.backend_decision = backend->decision();

  if (spec.get_bool("sweep", false)) {
    result.is_sweep = true;
    SweepConfig config = sweep_config_from_spec(spec, frobenius_norm);
    config.backend = backend;
    // Runtime plumbing lands AFTER the spec translation so spec_text (and
    // the result JSON) never reflects where the scheduler journals a job.
    if (!seams.journal.empty()) {
      config.journal = seams.journal;
      config.resume = seams.resume;
    }
    if (seams.on_progress) config.on_progress = seams.on_progress;
    const ShardOptions shard = shard_options_from_spec(spec);
    if (shard.workers > 1) {
      result.sharded = true;
      result.sweep = run_sharded_sweep(problem.A, problem.b, config, shard,
                                       &result.shard);
    } else {
      result.sweep = run_injection_sweep(problem.A, problem.b, config);
    }
    return result;
  }

  // --- Single solve through the façade. ---
  if (result.solver_name == "ft_gmres" ||
      result.solver_name == "ft_gmres_batch" ||
      result.solver_name == "ft_cg") {
    reject_precond_for_nested(spec, result.solver_name);
  }
  solver::Options options = solver_options_from_spec(spec);
  if ((options.precision != krylov::Precision::Double ||
       options.index_width != krylov::IndexWidth::I64) &&
      result.solver_name != "ft_gmres" &&
      result.solver_name != "ft_gmres_batch") {
    throw std::invalid_argument(
        "scenario: precision=/index= select the mixed inner data plane of "
        "the nested GMRES solvers; they apply to solver=ft_gmres or "
        "solver=ft_gmres_batch only (got solver=" +
        result.solver_name + ")");
  }
  // Preconditioner::apply is const, so a seam-shared instance (the
  // service's ILU0 cache) is safe across concurrent jobs.
  std::unique_ptr<krylov::Preconditioner> built_precond;
  if (seams.precond == nullptr) {
    built_precond = solver::preconditioner_registry().make(
        spec.get("precond", "none"), problem.A, spec);
  }
  options.precond =
      seams.precond ? seams.precond.get() : built_precond.get();

  // One planned fault (paper protocol: a single transient SDC event) and
  // an optional detector, chained so the detector sees corrupted values.
  // The detector is built BEFORE the solver: its response decides the
  // nested solvers' recovery mode (options.recovery).
  std::unique_ptr<sdc::FaultCampaign> campaign;
  const std::string fault = spec.get("fault", "none");
  if (fault == "none" && spec.has("fault_target")) {
    throw std::invalid_argument(
        "scenario: fault_target=" + spec.get("fault_target") +
        " names what a fault corrupts, but fault=none plans no fault; "
        "pick a fault class (or drop the fault_target key)");
  }
  if (fault != "none") {
    std::size_t coefficient_index = 0;
    sdc::InjectionPlan plan;
    plan.target = parse_fault_target(spec, options.s_step);
    plan.position = position_from_spec(spec, coefficient_index);
    plan.coefficient_index = coefficient_index;
    plan.aggregate_iteration = spec.get_size("site", 0);
    plan.element_index = spec.get_size("element", 0);
    plan.model = solver::fault_model_registry().make(fault, spec);
    campaign = std::make_unique<sdc::FaultCampaign>(plan);
  }
  auto detector = solver::detector_registry().make(
      spec.get("detector", "none"), frobenius_norm, spec);
  if (detector == nullptr && spec.has("recovery")) {
    throw std::invalid_argument(
        "scenario: recovery=" + spec.get("recovery") +
        " needs a detector to trigger it; set detector=bound (or drop "
        "the recovery key)");
  }
  if (detector != nullptr) {
    options.recovery = sdc::inner_recovery_for(detector->response());
  }

  const std::unique_ptr<krylov::LinearOperator> op =
      backend->make_operator(problem.A);
  const auto iterative = solver::solver_registry().make(
      result.solver_name, solver::SolverContext{*op, options, nullptr});

  krylov::HookChain chain;
  if (campaign != nullptr) chain.add(campaign.get());
  if (detector != nullptr) chain.add(detector.get());
  if (campaign != nullptr || detector != nullptr) {
    iterative->set_hook(&chain); // throws for solvers without a hook seam
  }

  result.x.resize(problem.A.rows());
  result.report = iterative->solve(problem.b.span(), result.x.span());
  result.injected = campaign != nullptr && campaign->fired();
  result.detected = detector != nullptr && detector->triggered();
  return result;
}

ScenarioResult run_scenario(std::string_view spec_text) {
  return run_scenario(ScenarioSpec::parse(spec_text));
}

SweepResult run_injection_sweep(const ScenarioSpec& spec) {
  validate_scenario_keys(spec);
  const ScenarioProblem problem = build_problem(spec);
  const SweepConfig config =
      sweep_config_from_spec(spec, problem.A.frobenius_norm());
  const ShardOptions shard = shard_options_from_spec(spec);
  if (shard.workers > 1) {
    return run_sharded_sweep(problem.A, problem.b, config, shard);
  }
  return run_injection_sweep(problem.A, problem.b, config);
}

} // namespace sdcgmres::experiment
