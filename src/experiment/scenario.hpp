#pragma once
/// \file scenario.hpp
/// \brief Config-driven scenario runner: spec string in, experiment out.
///
/// A scenario spec (scenario_spec.hpp) names one cell of the paper's
/// experiment grid.  This module turns the spec into concrete objects via
/// the string-keyed registries (solver/registry.hpp) and runs it --
/// either a single solve (optionally with one planned fault and a
/// detector) or a full injection sweep (sweep.hpp).  The `sdc_run`
/// example CLI is a thin shell around run_scenario().
///
/// Recognized keys (unknown keys throw, listing these):
///   solver     gmres|fgmres|ft_gmres|ft_gmres_batch|cg|fcg|ft_cg
///              (default ft_gmres)
///   matrix     poisson|poisson1d|poisson3d|aniso|convdiff|circuit|
///              random|spd|mtx:<path>                (default poisson)
///   n nodes path seed eps_x eps_y beta_x beta_y     matrix parameters
///   rhs        ones|consistent|random               (default ones;
///              consistent = A*1, the circuit default)
///   precond    none|jacobi|ilu0|neumann[:degree]    (default none)
///   neumann_degree neumann_omega                    preconditioner params
///   tol max_iters restart ortho lsq                 solver options
///   s          s-step block size of the GMRES Arnoldi loop (default 1 =
///              classical, bitwise identical; s>=2 stages s matrix powers
///              per block and pays ONE block projection + ONE TSQR, so
///              global reductions drop ~s/2x; gmres applies it directly,
///              the ft_gmres family to its unreliable inner solves)
///   inner inner_tol inner_ortho robust_first_inner  nested solver options
///   backend    csr|sell[:<C>[:<sigma>]]|auto -- matrix execution backend
///              (default csr; sell = SELL-C-sigma storage, bitwise
///              identical results; auto picks by row-length statistics
///              and records its decision in the result JSON)
///   fault      none|class1|class2|class3|scale[:f]|set[:v]|add[:v]|
///              bitflip[:b]                          (default none)
///   fault_target  coefficient|subdiagonal|matvec|powers -- which value
///              the fault corrupts (default coefficient, the paper's
///              h(i,j) site; powers hits one element of a staged matrix
///              power and needs the s-step mode, s>=2)
///   element    element index for fault_target=matvec|powers (default 0)
///   position   first|last|index:<i>                 (default first)
///   site       aggregate inner iteration of the single planned fault
///              (single-solve mode; default 0)
///   detector   none|bound[:<recovery>]              (default none)
///   bound      auto|<number>  response  record|abort (legacy response key)
///   recovery   none|record|abort|retry_reliable|restart_outer -- what a
///              firing detector does to the solve (default abort; needs
///              detector=bound)
///   deadline   per-solve wall-clock budget in seconds (0 = off)
///   divergence residual-explosion guard factor: flag ||r|| >
///              divergence * ||r0|| (0 = off; typical values >= 10)
///   sweep      0|1  -- run the full per-site injection sweep
///   stride site_limit threads                       sweep parameters
///   batch      sites solved in lockstep per worker (multi-RHS FT-GMRES;
///              default 1 = solo solves, results identical at any value;
///              batch=0 and negative batch=/inner= values are rejected up
///              front by sweep_config_from_spec with the valid ranges)
///   journal    append-only checkpoint file of completed sweep points
///   resume     0|1  -- skip the points the journal already holds
///   workers    worker processes for the crash-tolerant sharded sweep
///              (default 1 = in-process; >1 needs journal=<path>)
///   worker_timeout  per-attempt worker deadline in seconds (0 = off)

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "experiment/scenario_spec.hpp"
#include "experiment/shard.hpp"
#include "experiment/sweep.hpp"
#include "krylov/precond.hpp"
#include "la/vector.hpp"
#include "solver/solver.hpp"
#include "sparse/csr.hpp"

namespace sdcgmres::experiment {

/// Matrix + right-hand side named by a spec.
struct ScenarioProblem {
  std::string matrix_name; ///< registry key used (with inline arg)
  sparse::CsrMatrix A;
  la::Vector b;
};

/// Throw std::invalid_argument when \p spec contains a key this runner
/// does not recognize (typo protection for long sweep invocations).
void validate_scenario_keys(const ScenarioSpec& spec);

/// Build the matrix and right-hand side (`matrix`, `n`, `rhs`, ... keys).
[[nodiscard]] ScenarioProblem build_problem(const ScenarioSpec& spec);

/// Translate the solver-related keys into the shared façade options
/// (including the `deadline` and `divergence` guard keys).
[[nodiscard]] solver::Options solver_options_from_spec(
    const ScenarioSpec& spec);

/// Translate the `workers` / `worker_timeout` keys into ShardOptions.
/// workers defaults to 1 (no sharding); 0 and negatives throw.
[[nodiscard]] ShardOptions shard_options_from_spec(const ScenarioSpec& spec);

/// Parse `position` (first | last | index:<i>) into the sweep/injection
/// representation; the index (when given) goes to \p coefficient_index.
[[nodiscard]] sdc::MgsPosition position_from_spec(const ScenarioSpec& spec,
                                                  std::size_t& coefficient_index);

/// Assemble a SweepConfig from the spec (requires solver=ft_gmres, the
/// sweep engine's nested solver).  \p frobenius_norm seeds the detector
/// bound for `bound=auto`.  Validates the whole config up front --
/// out-of-range batch=/inner= values (0 or negative) and everything
/// validate_sweep_config rejects throw std::invalid_argument here,
/// listing the valid ranges, before any solve runs.
[[nodiscard]] SweepConfig sweep_config_from_spec(const ScenarioSpec& spec,
                                                 double frobenius_norm);

/// Outcome of run_scenario: a single-solve report or a sweep.
struct ScenarioResult {
  std::string spec_text;   ///< normalized round-trip of the input spec
  std::string solver_name;
  std::string matrix_name;
  std::size_t n = 0;
  std::size_t nnz = 0;
  std::string backend_name;     ///< normalized execution backend ("csr", ...)
  std::string backend_decision; ///< autotuner reasoning (backend=auto only)

  bool is_sweep = false;
  solver::SolveReport report; ///< single-solve mode
  la::Vector x;               ///< single-solve mode: final iterate
  bool injected = false;      ///< single-solve: the planned fault fired
  bool detected = false;      ///< single-solve: detector flagged it
  SweepResult sweep;          ///< sweep mode
  bool sharded = false;       ///< sweep ran as worker processes
  ShardReport shard;          ///< sweep mode with workers > 1
};

/// Injection points for callers that hold pre-built artifacts (the
/// sdc_serve ArtifactCache) or need runtime plumbing (the scheduler's job
/// journal) WITHOUT changing the spec: the result's spec_text -- and
/// therefore the result JSON -- stays byte-identical to a direct
/// `sdc_run --json` run of the same spec, which is the service's
/// acceptance contract.
struct ScenarioSeams {
  /// Pre-built matrix + rhs.  Must be what build_problem(spec) would
  /// construct for the same problem keys (callers key their cache on
  /// exactly those keys); when null, build_problem runs as usual.
  std::shared_ptr<const ScenarioProblem> problem;

  /// Pre-built preconditioner for single-solve mode (apply() is const, so
  /// one instance serves concurrent jobs).  Must match the spec's
  /// precond= keys; when null, the preconditioner registry builds one.
  std::shared_ptr<const krylov::Preconditioner> precond;

  /// Cached ||A||_F -- the detector-bound calibration input for
  /// bound=auto.  Negative (the default) recomputes it from the matrix.
  double frobenius_norm = -1.0;

  /// Pre-assembled execution backend (the service caches SELL assembly
  /// keyed by matrix+backend).  Must be what backend_registry() would
  /// assemble for the spec's backend= key over the same matrix; when
  /// null, the registry assembles one.
  std::shared_ptr<const krylov::MatrixBackend> backend;

  /// Sweep-mode runtime plumbing, applied AFTER sweep_config_from_spec:
  /// the scheduler journals every job under its own id and resumes it
  /// after a crash, but job files must not carry journal=/resume= keys
  /// (the spec stays exactly what the tenant submitted).  Empty journal
  /// leaves the spec's own journal/resume keys (if any) in effect.
  std::string journal;
  bool resume = false;
  std::function<void(std::size_t)> on_progress; ///< see SweepConfig
};

/// Run the scenario described by \p spec end to end.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioSpec& spec);

/// Run with pre-built artifacts / runtime overrides (see ScenarioSeams).
[[nodiscard]] ScenarioResult run_scenario(const ScenarioSpec& spec,
                                          const ScenarioSeams& seams);

/// Convenience: parse + run.
[[nodiscard]] ScenarioResult run_scenario(std::string_view spec_text);

} // namespace sdcgmres::experiment
