#include "experiment/scenario_spec.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace sdcgmres::experiment {

namespace {

[[noreturn]] void bad_value(std::string_view key, const std::string& value,
                            const char* expected) {
  throw std::invalid_argument("ScenarioSpec: value '" + value + "' for key '" +
                              std::string(key) + "' is not " + expected);
}

} // namespace

ScenarioSpec ScenarioSpec::parse(std::string_view text) {
  ScenarioSpec spec;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i >= text.size()) break;
    std::size_t end = i;
    while (end < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[end]))) {
      ++end;
    }
    const std::string_view token = text.substr(i, end - i);
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw std::invalid_argument("ScenarioSpec: token '" +
                                  std::string(token) +
                                  "' is not of the form key=value");
    }
    spec.set(token.substr(0, eq), token.substr(eq + 1));
    i = end;
  }
  return spec;
}

ScenarioSpec ScenarioSpec::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("scenario spec '" + path +
                             "': open for reading failed: " +
                             std::strerror(errno));
  }
  ScenarioSpec spec;
  // First-assignment line per key, for the duplicate-key diagnostic.
  std::map<std::string, std::size_t, std::less<>> first_line;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() &&
             std::isspace(static_cast<unsigned char>(line[i]))) {
        ++i;
      }
      if (i >= line.size()) break;
      std::size_t end = i;
      while (end < line.size() &&
             !std::isspace(static_cast<unsigned char>(line[end]))) {
        ++end;
      }
      const std::string token = line.substr(i, end - i);
      i = end;
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos || eq == 0) {
        throw std::runtime_error("scenario spec '" + path + "': token '" +
                                 token + "' at line " +
                                 std::to_string(line_no) +
                                 " is not of the form key=value");
      }
      const std::string key = token.substr(0, eq);
      const auto [it, inserted] = first_line.emplace(key, line_no);
      if (!inserted) {
        // Last-wins merging is for command lines, where later tokens
        // deliberately override; in a queued job file it would silently
        // pick one of two conflicting lines.
        throw std::runtime_error(
            "scenario spec '" + path + "': duplicate key '" + key +
            "' at line " + std::to_string(line_no) + " (first assigned at "
            "line " + std::to_string(it->second) +
            "); a job file must assign each key exactly once");
      }
      spec.set(key, token.substr(eq + 1));
    }
  }
  return spec;
}

void ScenarioSpec::set(std::string_view key, std::string_view value) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = std::string(value);
      return;
    }
  }
  entries_.emplace_back(std::string(key), std::string(value));
}

void ScenarioSpec::merge(const ScenarioSpec& other) {
  for (const auto& [k, v] : other.entries_) set(k, v);
}

const std::string* ScenarioSpec::find(std::string_view key) const noexcept {
  for (const auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool ScenarioSpec::has(std::string_view key) const noexcept {
  return find(key) != nullptr;
}

std::string ScenarioSpec::get(std::string_view key,
                              std::string_view dflt) const {
  const std::string* v = find(key);
  return v != nullptr ? *v : std::string(dflt);
}

std::size_t ScenarioSpec::get_size(std::string_view key,
                                   std::size_t dflt) const {
  const std::string* v = find(key);
  if (v == nullptr) return dflt;
  // Digits only: std::stoull would silently wrap "-5" to a huge value.
  if (v->empty() || v->find_first_not_of("0123456789") != std::string::npos) {
    bad_value(key, *v, "a non-negative integer");
  }
  try {
    return static_cast<std::size_t>(std::stoull(*v, nullptr, 10));
  } catch (const std::out_of_range&) {
    bad_value(key, *v, "a representable integer");
  }
}

double ScenarioSpec::get_double(std::string_view key, double dflt) const {
  const std::string* v = find(key);
  if (v == nullptr) return dflt;
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(*v, &pos);
    if (pos != v->size()) bad_value(key, *v, "a number");
    return parsed;
  } catch (const std::invalid_argument&) {
    bad_value(key, *v, "a number");
  } catch (const std::out_of_range&) {
    bad_value(key, *v, "a representable number");
  }
}

bool ScenarioSpec::get_bool(std::string_view key, bool dflt) const {
  const std::string* v = find(key);
  if (v == nullptr) return dflt;
  if (*v == "1" || *v == "true" || *v == "yes" || *v == "on") return true;
  if (*v == "0" || *v == "false" || *v == "no" || *v == "off") return false;
  bad_value(key, *v, "a boolean (1/0/true/false/yes/no/on/off)");
}

std::vector<std::string> ScenarioSpec::keys() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [k, v] : entries_) out.push_back(k);
  return out;
}

std::string ScenarioSpec::to_string() const {
  std::ostringstream out;
  bool first = true;
  for (const auto& [k, v] : entries_) {
    if (!first) out << ' ';
    out << k << '=' << v;
    first = false;
  }
  return out.str();
}

void ScenarioSpec::require_keys_in(
    std::initializer_list<std::string_view> known) const {
  for (const auto& [k, v] : entries_) {
    if (std::find(known.begin(), known.end(), k) == known.end()) {
      std::ostringstream msg;
      msg << "ScenarioSpec: unknown key '" << k << "'; known keys:";
      for (const std::string_view name : known) msg << ' ' << name;
      throw std::invalid_argument(msg.str());
    }
  }
}

} // namespace sdcgmres::experiment
