#pragma once
/// \file sweep.hpp
/// \brief The paper's experiment protocol: one solve per injection site.
///
/// Section VII-B: first run failure-free to learn the baseline outer
/// iteration count and the number of injectable sites (total inner
/// iterations); then re-solve the same system once per site, injecting a
/// single fault at that aggregate inner iteration, and record the outer
/// iterations to convergence.  Figures 3 and 4 plot exactly these series.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "experiment/scenario_spec.hpp"
#include "krylov/backend.hpp"
#include "krylov/ft_gmres.hpp"
#include "la/vector.hpp"
#include "sdc/detector.hpp"
#include "sdc/fault_model.hpp"
#include "sdc/injection.hpp"
#include "sparse/csr.hpp"

namespace sdcgmres::experiment {

/// Configuration of one injection sweep (one sub-plot of Fig. 3/4).
struct SweepConfig {
  krylov::FtGmresOptions solver;    ///< nested solver configuration
  sdc::MgsPosition position = sdc::MgsPosition::First; ///< MGS step faulted
  sdc::FaultModel model = sdc::FaultModel::scale(1e150); ///< fault class
  sdc::InjectionTarget target =
      sdc::InjectionTarget::ProjectionCoefficient; ///< faulted value (the
                                    ///< fault_target= key; PowerElement
                                    ///< needs the s-step inner mode,
                                    ///< solver.inner.s_step >= 2)
  std::size_t element_index = 0;    ///< element for the matvec/powers
                                    ///< targets (element= key)
  std::size_t stride = 1;           ///< sample every stride-th site (1 =
                                    ///< every site, the paper's protocol)
  std::size_t site_limit = 0;       ///< only sweep sites < site_limit
                                    ///< (0 = all sites); e.g. 25 restricts
                                    ///< the sweep to the first inner solve
  bool with_detector = false;       ///< attach the Hessenberg bound detector
  double detector_bound = 0.0;      ///< bound (e.g. ||A||_F); required when
                                    ///< with_detector is set
  sdc::DetectorResponse detector_response =
      sdc::DetectorResponse::AbortSolve;
  std::size_t threads = 1;          ///< worker threads for the per-site
                                    ///< solves: 1 = serial, 0 = all
                                    ///< hardware threads.  Every thread
                                    ///< checks out its own solver
                                    ///< workspace, fault campaign, and
                                    ///< detector/event log; results merge
                                    ///< deterministically by site, and the
                                    ///< SweepResult is identical to the
                                    ///< serial run (see sweep.cpp).  Note:
                                    ///< the sweep parallelizes across
                                    ///< SITES only -- kernel-level OpenMP
                                    ///< inside each solve is pinned to one
                                    ///< thread at every `threads` setting
                                    ///< (that pin is what makes the
                                    ///< results mode-independent), so on
                                    ///< multi-core machines use threads
                                    ///< != 1 to recover parallelism.
  std::size_t batch = 1;            ///< injection sites solved in lockstep
                                    ///< per worker (multi-RHS FT-GMRES,
                                    ///< krylov::ft_gmres_batch): each
                                    ///< worker packs `batch` sites into
                                    ///< one block so every outer iteration
                                    ///< streams the matrix once instead of
                                    ///< `batch` times.  Results are
                                    ///< bitwise identical at every batch
                                    ///< setting (each instance walks its
                                    ///< solo operation sequence; SpMM
                                    ///< columns == SpMV).  1 = solo
                                    ///< solves; 0 is rejected by
                                    ///< validate_sweep_config.

  // --- matrix execution backend ---
  std::string backend_key = "csr";  ///< backend_registry() key used when
                                    ///< `backend` below is null; every
                                    ///< backend is bitwise identical to
                                    ///< csr per solve, so the sweep
                                    ///< determinism contract is
                                    ///< backend-agnostic
  std::shared_ptr<const krylov::MatrixBackend> backend; ///< pre-assembled
                                    ///< backend (run_scenario and the
                                    ///< service seam set this so one
                                    ///< assembly serves the baseline and
                                    ///< every worker -- it also survives
                                    ///< the fork into shard workers);
                                    ///< null = assemble from backend_key

  // --- resilience: checkpoint/resume and range restriction ---
  std::string journal;              ///< path of the sweep journal (JSONL,
                                    ///< see experiment/journal.hpp); every
                                    ///< completed point is appended and
                                    ///< fsync'd, so a crashed sweep loses
                                    ///< at most in-flight solves.  Empty
                                    ///< disables journaling.
  bool resume = false;              ///< load `journal` first and skip the
                                    ///< points it already holds; the
                                    ///< resumed SweepResult is bitwise
                                    ///< identical (points and baseline
                                    ///< fields) to an uninterrupted run.
                                    ///< A missing journal file is a fresh
                                    ///< start, not an error.
  std::size_t point_offset = 0;     ///< first point index this run solves
                                    ///< (the shard seam: a worker process
                                    ///< owns points [offset, offset+count))
  std::size_t point_count = 0;      ///< number of points from point_offset
                                    ///< (0 = through the end)
  std::function<void(std::size_t)> on_progress; ///< called after each
                                    ///< journal flush with the cumulative
                                    ///< number of points this run solved
                                    ///< (crash drills and progress bars;
                                    ///< serialized, never concurrent)
};

/// Outcome of one faulty solve.
struct SweepPoint {
  std::size_t aggregate_iteration = 0; ///< injection site
  std::size_t outer_iterations = 0;    ///< outer iterations to convergence
  bool converged = false;
  bool injected = false;  ///< the fault actually fired (it may not, e.g.
                          ///< when the perturbed run ends sooner)
  bool detected = false;  ///< detector flagged the fault
  std::size_t sanitized_outputs = 0; ///< inner results the reliable outer
                                     ///< phase had to filter (Inf/NaN/zero)
  std::size_t inner_applies = 0; ///< operator products the run's inner
                                 ///< solves consumed -- a property of the
                                 ///< per-instance operation sequence, so
                                 ///< identical at every threads/batch
                                 ///< setting (unlike the matrix STREAMS
                                 ///< paid for them: see
                                 ///< SweepResult::operator_stats)
  double residual_norm = 0.0; ///< explicit final residual
  krylov::SolveStatus status = krylov::SolveStatus::MaxIterations;
                          ///< the outer solve's terminal state (converged
                          ///< is status-derived; Diverged/DeadlineExceeded
                          ///< mean a solve guard fired)
  std::size_t inner_diverged = 0; ///< inner solves the residual-explosion
                          ///< guard stopped (status Diverged)
  std::size_t reliable_retries = 0; ///< inner solves recomputed reliably
                          ///< (recovery retry_reliable)
  std::size_t outer_restarts = 0;   ///< outer cycles restarted (recovery
                          ///< restart_outer)
  std::size_t global_syncs = 0; ///< global reductions the run consumed
                          ///< (outer + every inner solve) -- like
                          ///< inner_applies a property of the per-instance
                          ///< operation sequence, identical at every
                          ///< threads/batch setting; the s-step inner mode
                          ///< (s= key) is what shrinks it

  bool operator==(const SweepPoint&) const = default;
};

/// Result of a full sweep.
struct SweepResult {
  std::size_t baseline_outer = 0;        ///< failure-free outer iterations
  std::size_t baseline_total_inner = 0;  ///< number of injectable sites
  bool baseline_converged = false;
  std::size_t baseline_global_syncs = 0; ///< failure-free global reductions
                                         ///< (the s-step speedup reference:
                                         ///< compare per-solve syncs across
                                         ///< s= settings at fixed problem)
  std::vector<SweepPoint> points;

  /// Measured operator traffic of the per-site solves (baseline
  /// excluded), summed over the sweep workers' operators.  columns() is
  /// mode-independent (same work at any threads/batch); streams() is
  /// NOT -- lockstep batching divides it by ~batch, which is exactly the
  /// number this field exists to show -- so operator_stats is not part
  /// of the sweep determinism contract and the identity assertions
  /// compare points and baseline fields only.
  krylov::OperatorStats operator_stats;

  /// Sum of the points' inner_applies: operand columns consumed by the
  /// unreliable inner solves (mode-independent; at the paper's inner=25
  /// this is ~25/26 of columns()).
  [[nodiscard]] std::size_t inner_operand_columns() const;

  /// Sum of the points' global_syncs (mode-independent, like
  /// inner_operand_columns).
  [[nodiscard]] std::size_t total_global_syncs() const;

  /// Largest outer-iteration increase over the baseline (0 when all runs
  /// match the failure-free count).
  [[nodiscard]] std::size_t max_outer_increase() const;
  /// Number of runs with no increase in outer iterations.
  [[nodiscard]] std::size_t unchanged_runs() const;
  /// Number of runs that failed to converge.
  [[nodiscard]] std::size_t failed_runs() const;
  /// Number of runs where the detector fired.
  [[nodiscard]] std::size_t detected_runs() const;

  // --- solve-guard counters ---
  /// Runs where the residual-explosion guard fired (outer status Diverged
  /// or at least one inner solve stopped Diverged).
  [[nodiscard]] std::size_t diverged_runs() const;
  /// Runs the wall-clock deadline guard stopped (status DeadlineExceeded).
  [[nodiscard]] std::size_t deadline_exceeded_runs() const;

  // --- recovery counters ---
  /// Inner solves recomputed reliably across the sweep (retry_reliable).
  [[nodiscard]] std::size_t retried_reliable() const;
  /// Outer cycles restarted across the sweep (restart_outer).
  [[nodiscard]] std::size_t restarted_outer() const;
};

/// Validate \p config before any solve runs.  Throws std::invalid_argument
/// on: stride == 0; with_detector without a positive detector_bound; an
/// inner iteration budget of zero (no injectable sites can exist).  Called
/// by run_injection_sweep up front; exposed so scenario builders can fail
/// fast before constructing matrices.
void validate_sweep_config(const SweepConfig& config);

/// Run the failure-free baseline followed by one faulty solve per
/// injection site.  \p b is the right-hand side; the initial guess is zero
/// for every run (paper: "same matrix, right-hand side, and initial
/// guess").  Throws std::invalid_argument when validate_sweep_config
/// rejects \p config or when the site_limit/stride combination selects
/// zero injection sites against the measured baseline.
[[nodiscard]] SweepResult run_injection_sweep(const sparse::CsrMatrix& A,
                                              const la::Vector& b,
                                              const SweepConfig& config);

/// Spec-driven entry: build the matrix, right-hand side, and SweepConfig
/// from a scenario spec (see scenario.hpp for the key vocabulary) and run
/// the sweep.  This is the same path the `sdc_run` example CLI uses.
[[nodiscard]] SweepResult run_injection_sweep(const ScenarioSpec& spec);

/// Just the failure-free baseline (also used by examples).
[[nodiscard]] krylov::FtGmresResult run_baseline(
    const sparse::CsrMatrix& A, const la::Vector& b,
    const krylov::FtGmresOptions& opts);

/// Baseline over an already-built operator (the backend-agnostic form:
/// the sweep and shard drivers stream the configured backend here too,
/// with the kernel pinned to one OpenMP thread exactly like the CSR
/// overload).
[[nodiscard]] krylov::FtGmresResult run_baseline(
    const krylov::LinearOperator& A, const la::Vector& b,
    const krylov::FtGmresOptions& opts);

} // namespace sdcgmres::experiment
