#include "experiment/journal.hpp"

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

#include "krylov/status.hpp"

namespace sdcgmres::experiment {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& reason) {
  throw std::runtime_error("sweep journal '" + path + "': " + reason);
}

[[noreturn]] void fail_errno(const std::string& path,
                             const std::string& action) {
  fail(path, action + " failed: " + std::strerror(errno));
}

// ---------------------------------------------------------------------------
// Record formatting.  The journal's JSON needs are tiny (flat objects,
// unsigned integers, booleans, and two enum-spelling strings), so both the
// writer and the reader are hand-rolled -- no JSON dependency.
// ---------------------------------------------------------------------------

void put_u64(std::string& out, const char* key, std::uint64_t value,
             bool first = false) {
  if (!first) out += ',';
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(value);
}

void put_bool(std::string& out, const char* key, bool value) {
  out += ",\"";
  out += key;
  out += "\":";
  out += value ? "true" : "false";
}

void put_str(std::string& out, const char* key, const char* value) {
  out += ",\"";
  out += key;
  out += "\":\"";
  out += value; // journal strings are enum spellings: no escaping needed
  out += '"';
}

/// Doubles round-trip as raw IEEE-754 bit patterns: a resumed point's
/// residual is the exact double the original solve produced.
std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

double bits_double(std::uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string format_header(const SweepJournalHeader& h) {
  std::string line = "{\"type\":\"header\"";
  put_u64(line, "version", h.version);
  put_u64(line, "baseline_outer", h.baseline_outer);
  put_u64(line, "baseline_total_inner", h.baseline_total_inner);
  put_bool(line, "baseline_converged", h.baseline_converged);
  put_u64(line, "n_points", h.n_points);
  put_u64(line, "stride", h.stride);
  put_u64(line, "site_limit", h.site_limit);
  line += "}\n";
  return line;
}

std::string format_point(std::size_t index, const SweepPoint& p) {
  std::string line = "{\"type\":\"point\"";
  put_u64(line, "index", index);
  put_u64(line, "site", p.aggregate_iteration);
  put_u64(line, "outer", p.outer_iterations);
  put_str(line, "status", krylov::to_string(p.status));
  put_bool(line, "converged", p.converged);
  put_bool(line, "injected", p.injected);
  put_bool(line, "detected", p.detected);
  put_u64(line, "sanitized", p.sanitized_outputs);
  put_u64(line, "inner_applies", p.inner_applies);
  put_u64(line, "inner_diverged", p.inner_diverged);
  put_u64(line, "retries", p.reliable_retries);
  put_u64(line, "restarts", p.outer_restarts);
  put_u64(line, "syncs", p.global_syncs);
  put_u64(line, "residual_bits", double_bits(p.residual_norm));
  line += "}\n";
  return line;
}

std::string format_stats(const SweepRunningStats& s) {
  // The raw OperatorStats decomposition, not the derived streams/columns
  // sums: a resume restores this record as its traffic baseline, so it
  // must round-trip the exact counters operator_stats accumulates.
  std::string line = "{\"type\":\"stats\"";
  put_u64(line, "done", s.points_done);
  put_u64(line, "applies", s.traffic.apply_calls);
  put_u64(line, "block_applies", s.traffic.apply_block_calls);
  put_u64(line, "block_columns", s.traffic.block_columns);
  put_u64(line, "scalar_bytes", s.traffic.scalar_bytes);
  put_u64(line, "index_bytes", s.traffic.index_bytes);
  line += "}\n";
  return line;
}

// ---------------------------------------------------------------------------
// Record parsing.
// ---------------------------------------------------------------------------

/// Locate `"key":` in \p line and return a pointer to the value token, or
/// nullptr when the key is absent.
const char* find_value(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return nullptr;
  return line.c_str() + pos + needle.size();
}

bool get_u64(const std::string& line, const char* key, std::uint64_t& out) {
  const char* v = find_value(line, key);
  if (v == nullptr) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || errno != 0) return false;
  out = static_cast<std::uint64_t>(parsed);
  return true;
}

bool get_bool(const std::string& line, const char* key, bool& out) {
  const char* v = find_value(line, key);
  if (v == nullptr) return false;
  if (std::strncmp(v, "true", 4) == 0) {
    out = true;
    return true;
  }
  if (std::strncmp(v, "false", 5) == 0) {
    out = false;
    return true;
  }
  return false;
}

bool get_str(const std::string& line, const char* key, std::string& out) {
  const char* v = find_value(line, key);
  if (v == nullptr || *v != '"') return false;
  const char* end = std::strchr(v + 1, '"');
  if (end == nullptr) return false;
  out.assign(v + 1, end);
  return true;
}

bool parse_header(const std::string& line, SweepJournalHeader& h) {
  std::uint64_t u = 0;
  if (!get_u64(line, "version", u)) return false;
  h.version = static_cast<std::size_t>(u);
  if (!get_u64(line, "baseline_outer", u)) return false;
  h.baseline_outer = static_cast<std::size_t>(u);
  if (!get_u64(line, "baseline_total_inner", u)) return false;
  h.baseline_total_inner = static_cast<std::size_t>(u);
  if (!get_bool(line, "baseline_converged", h.baseline_converged)) {
    return false;
  }
  if (!get_u64(line, "n_points", u)) return false;
  h.n_points = static_cast<std::size_t>(u);
  if (!get_u64(line, "stride", u)) return false;
  h.stride = static_cast<std::size_t>(u);
  if (!get_u64(line, "site_limit", u)) return false;
  h.site_limit = static_cast<std::size_t>(u);
  return true;
}

bool parse_point(const std::string& line, std::size_t& index, SweepPoint& p) {
  std::uint64_t u = 0;
  if (!get_u64(line, "index", u)) return false;
  index = static_cast<std::size_t>(u);
  if (!get_u64(line, "site", u)) return false;
  p.aggregate_iteration = static_cast<std::size_t>(u);
  if (!get_u64(line, "outer", u)) return false;
  p.outer_iterations = static_cast<std::size_t>(u);
  std::string status;
  if (!get_str(line, "status", status) ||
      !krylov::status_from_string(status.c_str(), p.status)) {
    return false;
  }
  if (!get_bool(line, "converged", p.converged)) return false;
  if (!get_bool(line, "injected", p.injected)) return false;
  if (!get_bool(line, "detected", p.detected)) return false;
  if (!get_u64(line, "sanitized", u)) return false;
  p.sanitized_outputs = static_cast<std::size_t>(u);
  if (!get_u64(line, "inner_applies", u)) return false;
  p.inner_applies = static_cast<std::size_t>(u);
  if (!get_u64(line, "inner_diverged", u)) return false;
  p.inner_diverged = static_cast<std::size_t>(u);
  if (!get_u64(line, "retries", u)) return false;
  p.reliable_retries = static_cast<std::size_t>(u);
  if (!get_u64(line, "restarts", u)) return false;
  p.outer_restarts = static_cast<std::size_t>(u);
  // "syncs" arrived with header version 2; leave a version-1 point's count
  // at zero so the header mismatch (not a parse error) reports the problem.
  if (get_u64(line, "syncs", u)) p.global_syncs = static_cast<std::size_t>(u);
  if (!get_u64(line, "residual_bits", u)) return false;
  p.residual_norm = bits_double(u);
  return true;
}

bool parse_stats(const std::string& line, SweepRunningStats& s) {
  std::uint64_t u = 0;
  if (!get_u64(line, "done", u)) return false;
  s.points_done = static_cast<std::size_t>(u);
  if (!get_u64(line, "applies", u)) return false;
  s.traffic.apply_calls = static_cast<std::size_t>(u);
  if (!get_u64(line, "block_applies", u)) return false;
  s.traffic.apply_block_calls = static_cast<std::size_t>(u);
  if (!get_u64(line, "block_columns", u)) return false;
  s.traffic.block_columns = static_cast<std::size_t>(u);
  if (!get_u64(line, "scalar_bytes", u)) return false;
  s.traffic.scalar_bytes = static_cast<std::size_t>(u);
  if (!get_u64(line, "index_bytes", u)) return false;
  s.traffic.index_bytes = static_cast<std::size_t>(u);
  return true;
}

void write_fully(int fd, const std::string& path, const char* data,
                 std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno(path, "write");
    }
    written += static_cast<std::size_t>(n);
  }
}

} // namespace

// ---------------------------------------------------------------------------
// load
// ---------------------------------------------------------------------------

SweepJournalContents SweepJournal::load(const std::string& path) {
  SweepJournalContents contents;

  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return contents; // a fresh start, not an error
    fail_errno(path, "open for reading");
  }
  std::string data;
  char chunk[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      errno = saved;
      fail_errno(path, "read");
    }
    if (n == 0) break;
    data.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t nl = data.find('\n', pos);
    if (nl == std::string::npos) {
      // Crash mid-append: the unterminated tail is discarded EVEN when it
      // parses -- a truncated number can parse to the wrong value.  The
      // dropped point is simply re-solved.
      contents.discarded_tail = true;
      break;
    }
    ++line_no;
    const std::string line = data.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;

    std::string type;
    if (get_str(line, "type", type)) {
      if (type == "header") {
        if (parse_header(line, contents.header)) {
          contents.has_header = true;
          continue;
        }
      } else if (type == "point") {
        std::size_t index = 0;
        SweepPoint point;
        if (parse_point(line, index, point)) {
          contents.points.emplace_back(index, point);
          continue;
        }
      } else if (type == "stats") {
        // Cumulative progress counters; each record supersedes the last.
        if (parse_stats(line, contents.stats)) {
          contents.has_stats = true;
          continue;
        }
      }
    }
    // An interior line that is not a well-formed record is corruption,
    // not truncation: refuse loudly rather than silently re-solving.
    fail(path, "malformed record at line " + std::to_string(line_no) +
                   " (delete the journal to start over)");
  }
  return contents;
}

// ---------------------------------------------------------------------------
// write_merged
// ---------------------------------------------------------------------------

void SweepJournal::write_merged(
    const std::string& path, const SweepJournalHeader& header,
    const std::vector<std::pair<std::size_t, SweepPoint>>& points) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail_errno(tmp, "open for writing");

  std::string body = format_header(header);
  for (const auto& [index, point] : points) {
    body += format_point(index, point);
  }
  write_fully(fd, tmp, body.data(), body.size());
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno(tmp, "fsync");
  }
  ::close(fd);

  // Atomic publish: readers see either the old journal or the complete
  // new one, never a partial rewrite.
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    fail_errno(path, "rename into place");
  }
}

// ---------------------------------------------------------------------------
// Appending writer
// ---------------------------------------------------------------------------

SweepJournal::SweepJournal(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) fail_errno(path_, "open for appending");
}

SweepJournal::~SweepJournal() {
  if (fd_ >= 0) {
    // Best effort on teardown; explicit flush() is the durability point.
    if (!buffer_.empty()) {
      ::write(fd_, buffer_.data(), buffer_.size());
    }
    ::close(fd_);
  }
}

void SweepJournal::append_header(const SweepJournalHeader& header) {
  buffer_ += format_header(header);
}

void SweepJournal::append_point(std::size_t index, const SweepPoint& point) {
  buffer_ += format_point(index, point);
}

void SweepJournal::append_stats(const SweepRunningStats& stats) {
  buffer_ += format_stats(stats);
}

void SweepJournal::flush() {
  if (buffer_.empty()) return;
  write_fully(fd_, path_, buffer_.data(), buffer_.size());
  buffer_.clear();
  if (::fsync(fd_) != 0) fail_errno(path_, "fsync");
}

// ---------------------------------------------------------------------------
// Tailing: the journal as a progress stream
// ---------------------------------------------------------------------------

SweepProgress tail_sweep_journal(const std::string& path) {
  const SweepJournalContents contents = SweepJournal::load(path);
  SweepProgress progress;
  progress.started = contents.has_header;
  progress.header = contents.header;
  progress.has_stats = contents.has_stats;
  progress.stats = contents.stats;

  // Re-queued shard ranges may journal a point twice; the LAST occurrence
  // is what a resume would keep, so count and aggregate by unique index
  // with last-wins (mirroring run_injection_sweep's resume path).
  std::map<std::size_t, const SweepPoint*> latest;
  for (const auto& [index, point] : contents.points) {
    latest[index] = &point;
  }
  progress.points_done = latest.size();
  for (const auto& [index, p] : latest) {
    if (!p->converged) ++progress.failed;
    if (p->detected) ++progress.detected;
    if (p->status == krylov::SolveStatus::Diverged || p->inner_diverged > 0) {
      ++progress.diverged;
    }
    if (p->status == krylov::SolveStatus::DeadlineExceeded) {
      ++progress.deadline_exceeded;
    }
    progress.reliable_retries += p->reliable_retries;
    progress.outer_restarts += p->outer_restarts;
  }
  return progress;
}

} // namespace sdcgmres::experiment
