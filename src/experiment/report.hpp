#pragma once
/// \file report.hpp
/// \brief Printers that render experiment results the way the paper does.

#include <iosfwd>
#include <string>
#include <vector>

#include "experiment/scenario.hpp"
#include "experiment/sweep.hpp"
#include "sparse/analysis.hpp"
#include "sparse/csr.hpp"

namespace sdcgmres::experiment {

/// One column of the Table I reproduction.
struct MatrixReport {
  std::string name;
  sparse::MatrixProperties properties;
  bool positive_definite = false;
  double two_norm_estimate = 0.0;  ///< potential fault detector sigma_max
  double frobenius_norm = 0.0;     ///< potential fault detector ||A||_F
  double condition_estimate = 0.0; ///< 0 when not computed
};

/// Gather everything Table I reports about \p A.
/// \param estimate_condition inverse iteration on A^T A is expensive for
///        ill-conditioned matrices; pass false to skip it.
[[nodiscard]] MatrixReport characterize(const std::string& name,
                                        const sparse::CsrMatrix& A,
                                        bool estimate_condition = true);

/// Print the Table I layout (one column per matrix).
void print_table1(std::ostream& out, const std::vector<MatrixReport>& reports);

/// Print one sweep as the paper's figure series: aggregate injection site
/// vs outer iterations, with the failure-free baseline in the header and
/// '|' separators at inner solve boundaries mirroring the figures'
/// vertical bars.
void print_sweep_series(std::ostream& out, const std::string& title,
                        const SweepResult& sweep,
                        std::size_t inner_per_outer);

/// Write a sweep as CSV: site,outer_iterations,converged,injected,detected.
void write_sweep_csv(std::ostream& out, const SweepResult& sweep);

/// Compact per-sweep summary line (max increase, unchanged runs, ...).
void print_sweep_summary(std::ostream& out, const std::string& title,
                         const SweepResult& sweep);

// ---------------------------------------------------------------------------
// Machine-readable result JSON, shared by the sdc_run CLI and the
// sdc_serve service.  Both front ends emit EXACTLY these bytes, so a job
// result fetched from the service is bitwise identical to `sdc_run
// --json` on the same spec -- the service acceptance contract.
// ---------------------------------------------------------------------------

/// Escape a string for embedding in a JSON double-quoted value.
[[nodiscard]] std::string json_escape(const std::string& s);

/// Render a double as a valid JSON token: non-finite values (a NaN
/// residual from an unsanitized fault) become strings, since bare
/// nan/inf are not JSON.
[[nodiscard]] std::string json_number(double v);

/// Write a sweep-mode ScenarioResult as JSON.  \p identical_checked adds
/// the `identical_results` field (the sdc_run --assert-identical flag);
/// the service never sets it, matching a plain `sdc_run --json` run.
void write_sweep_json(std::ostream& out, const ScenarioResult& r,
                      bool identical_checked = false, bool identical = true);

/// Write a single-solve ScenarioResult as JSON.
void write_solve_json(std::ostream& out, const ScenarioResult& r);

/// Dispatch on r.is_sweep (what the service's result files hold).
void write_scenario_json(std::ostream& out, const ScenarioResult& r);

} // namespace sdcgmres::experiment
