#pragma once
/// \file report.hpp
/// \brief Printers that render experiment results the way the paper does.

#include <iosfwd>
#include <string>
#include <vector>

#include "experiment/sweep.hpp"
#include "sparse/analysis.hpp"
#include "sparse/csr.hpp"

namespace sdcgmres::experiment {

/// One column of the Table I reproduction.
struct MatrixReport {
  std::string name;
  sparse::MatrixProperties properties;
  bool positive_definite = false;
  double two_norm_estimate = 0.0;  ///< potential fault detector sigma_max
  double frobenius_norm = 0.0;     ///< potential fault detector ||A||_F
  double condition_estimate = 0.0; ///< 0 when not computed
};

/// Gather everything Table I reports about \p A.
/// \param estimate_condition inverse iteration on A^T A is expensive for
///        ill-conditioned matrices; pass false to skip it.
[[nodiscard]] MatrixReport characterize(const std::string& name,
                                        const sparse::CsrMatrix& A,
                                        bool estimate_condition = true);

/// Print the Table I layout (one column per matrix).
void print_table1(std::ostream& out, const std::vector<MatrixReport>& reports);

/// Print one sweep as the paper's figure series: aggregate injection site
/// vs outer iterations, with the failure-free baseline in the header and
/// '|' separators at inner solve boundaries mirroring the figures'
/// vertical bars.
void print_sweep_series(std::ostream& out, const std::string& title,
                        const SweepResult& sweep,
                        std::size_t inner_per_outer);

/// Write a sweep as CSV: site,outer_iterations,converged,injected,detected.
void write_sweep_csv(std::ostream& out, const SweepResult& sweep);

/// Compact per-sweep summary line (max increase, unchanged runs, ...).
void print_sweep_summary(std::ostream& out, const std::string& title,
                         const SweepResult& sweep);

} // namespace sdcgmres::experiment
