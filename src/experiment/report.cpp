#include "experiment/report.hpp"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "sparse/norms.hpp"

namespace sdcgmres::experiment {

MatrixReport characterize(const std::string& name, const sparse::CsrMatrix& A,
                          bool estimate_condition) {
  MatrixReport report;
  report.name = name;
  report.properties = sparse::analyze(A);
  report.positive_definite =
      report.properties.numerically_symmetric &&
      sparse::probe_positive_definite(A);
  report.two_norm_estimate = sparse::estimate_two_norm(A).value;
  report.frobenius_norm = A.frobenius_norm();
  report.condition_estimate =
      estimate_condition ? sparse::estimate_condition_number(A) : 0.0;
  return report;
}

namespace {

void print_row(std::ostream& out, const std::string& label,
               const std::vector<std::string>& cells) {
  out << std::left << std::setw(28) << label;
  for (const std::string& c : cells) {
    out << std::right << std::setw(18) << c;
  }
  out << '\n';
}

std::string yes_no(bool b) { return b ? "yes" : "no"; }

std::string sci(double v, int precision = 4) {
  std::ostringstream ss;
  ss << std::scientific << std::setprecision(precision) << v;
  return ss.str();
}

} // namespace

void print_table1(std::ostream& out,
                  const std::vector<MatrixReport>& reports) {
  std::vector<std::string> cells;
  const auto collect = [&](auto&& fn) {
    cells.clear();
    for (const MatrixReport& r : reports) cells.push_back(fn(r));
    return cells;
  };
  out << "TABLE I: Sample Matrices\n";
  print_row(out, "Properties", collect([](const MatrixReport& r) {
              return r.name;
            }));
  print_row(out, "number of rows", collect([](const MatrixReport& r) {
              return std::to_string(r.properties.rows);
            }));
  print_row(out, "number of columns", collect([](const MatrixReport& r) {
              return std::to_string(r.properties.cols);
            }));
  print_row(out, "nonzeros", collect([](const MatrixReport& r) {
              return std::to_string(r.properties.nnz);
            }));
  print_row(out, "structural full rank?", collect([](const MatrixReport& r) {
              return yes_no(r.properties.has_full_structural_rank);
            }));
  print_row(out, "nonzero pattern symmetry", collect([](const MatrixReport& r) {
              return r.properties.pattern_symmetric ? "symmetric"
                                                    : "nonsymmetric";
            }));
  print_row(out, "type", collect([](const MatrixReport&) {
              return std::string("real");
            }));
  print_row(out, "positive definite?", collect([](const MatrixReport& r) {
              return yes_no(r.positive_definite);
            }));
  print_row(out, "Condition Number", collect([](const MatrixReport& r) {
              return r.condition_estimate > 0.0 ? sci(r.condition_estimate)
                                                : std::string("(skipped)");
            }));
  out << "Potential Fault Detectors\n";
  print_row(out, "||A||_2", collect([](const MatrixReport& r) {
              return sci(r.two_norm_estimate);
            }));
  print_row(out, "||A||_F", collect([](const MatrixReport& r) {
              return sci(r.frobenius_norm);
            }));
}

void print_sweep_series(std::ostream& out, const std::string& title,
                        const SweepResult& sweep,
                        std::size_t inner_per_outer) {
  out << title << '\n';
  out << "failure-free outer iterations = " << sweep.baseline_outer
      << ", injection sites = " << sweep.baseline_total_inner << '\n';
  out << "site : outer iterations ('|' marks a new inner solve, '*' = fault "
         "did not fire, 'D' = detected, 'X' = no convergence)\n";
  std::size_t col = 0;
  for (const SweepPoint& p : sweep.points) {
    if (inner_per_outer > 0 && p.aggregate_iteration % inner_per_outer == 0) {
      out << "| ";
    }
    out << p.aggregate_iteration << ':' << p.outer_iterations;
    if (!p.injected) out << '*';
    if (p.detected) out << 'D';
    if (!p.converged) out << 'X';
    out << ' ';
    if (++col % 12 == 0) out << '\n';
  }
  out << '\n';
}

void write_sweep_csv(std::ostream& out, const SweepResult& sweep) {
  out << "site,outer_iterations,converged,injected,detected,residual\n";
  for (const SweepPoint& p : sweep.points) {
    out << p.aggregate_iteration << ',' << p.outer_iterations << ','
        << (p.converged ? 1 : 0) << ',' << (p.injected ? 1 : 0) << ','
        << (p.detected ? 1 : 0) << ',' << sci(p.residual_norm) << '\n';
  }
}

void print_sweep_summary(std::ostream& out, const std::string& title,
                         const SweepResult& sweep) {
  out << std::left << std::setw(56) << title << " baseline="
      << sweep.baseline_outer << " max_increase=" << sweep.max_outer_increase()
      << " unchanged=" << sweep.unchanged_runs() << "/" << sweep.points.size()
      << " failed=" << sweep.failed_runs()
      << " detected=" << sweep.detected_runs();
  // Guard and recovery activity is exceptional: only clutter the line
  // when a run actually diverged, overran its deadline, or recovered.
  if (sweep.diverged_runs() > 0) out << " diverged=" << sweep.diverged_runs();
  if (sweep.deadline_exceeded_runs() > 0) {
    out << " deadline_exceeded=" << sweep.deadline_exceeded_runs();
  }
  if (sweep.retried_reliable() > 0) {
    out << " retried_reliable=" << sweep.retried_reliable();
  }
  if (sweep.restarted_outer() > 0) {
    out << " restarted_outer=" << sweep.restarted_outer();
  }
  out << '\n';
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string json_number(double v) {
  if (std::isnan(v)) return "\"nan\"";
  if (std::isinf(v)) return v > 0 ? "\"inf\"" : "\"-inf\"";
  std::ostringstream out;
  out << v;
  return out.str();
}

void write_sweep_json(std::ostream& out, const ScenarioResult& r,
                      bool identical_checked, bool identical) {
  out << "{\n"
      << "  \"spec\": \"" << json_escape(r.spec_text) << "\",\n"
      << "  \"matrix\": \"" << json_escape(r.matrix_name) << "\",\n"
      << "  \"n\": " << r.n << ",\n"
      << "  \"backend\": \"" << json_escape(r.backend_name) << "\",\n";
  // The autotuner's reasoning, recorded only when backend=auto ran.
  if (!r.backend_decision.empty()) {
    out << "  \"backend_decision\": \"" << json_escape(r.backend_decision)
        << "\",\n";
  }
  out << "  \"baseline_outer\": " << r.sweep.baseline_outer << ",\n"
      << "  \"sites\": " << r.sweep.points.size() << ",\n"
      << "  \"max_outer_increase\": " << r.sweep.max_outer_increase() << ",\n"
      << "  \"unchanged_runs\": " << r.sweep.unchanged_runs() << ",\n"
      << "  \"failed_runs\": " << r.sweep.failed_runs() << ",\n"
      << "  \"detected_runs\": " << r.sweep.detected_runs() << ",\n"
      // Measured operator traffic: columns is the work (identical at any
      // threads/batch), streams the matrix passes paid for it (divided by
      // ~batch when sites run in lockstep).
      << "  \"matrix_streams\": " << r.sweep.operator_stats.streams() << ",\n"
      << "  \"operand_columns\": " << r.sweep.operator_stats.columns() << ",\n"
      << "  \"inner_operand_columns\": " << r.sweep.inner_operand_columns()
      << ",\n"
      // Global reductions: the synchronization axis of the s-step mode.
      // Per-solve counts are mode-independent (same at any threads/batch);
      // the baseline figure is the failure-free per-solve reference to
      // compare across s= settings.
      << "  \"baseline_global_syncs\": " << r.sweep.baseline_global_syncs
      << ",\n"
      << "  \"global_syncs\": " << r.sweep.total_global_syncs() << ",\n"
      // Bytes actually streamed for those passes, split scalar (matrix
      // values + operand/result columns) vs index (row_ptr + col_idx),
      // each at the executing plane's own width -- this is where a
      // precision=float/index=32 inner plane shows its traffic cut.
      << "  \"scalar_bytes\": " << r.sweep.operator_stats.scalar_bytes
      << ",\n"
      << "  \"index_bytes\": " << r.sweep.operator_stats.index_bytes << ",\n"
      << "  \"bytes_streamed\": " << r.sweep.operator_stats.bytes() << ",\n"
      // Solve-guard trips and detector-triggered recovery activity across
      // the sweep (zero everywhere unless deadline=/divergence=/recovery=
      // are in play).
      << "  \"guard\": {\n"
      << "    \"diverged\": " << r.sweep.diverged_runs() << ",\n"
      << "    \"deadline_exceeded\": " << r.sweep.deadline_exceeded_runs()
      << "\n  },\n"
      << "  \"recovery\": {\n"
      << "    \"retried_reliable\": " << r.sweep.retried_reliable() << ",\n"
      << "    \"restarted_outer\": " << r.sweep.restarted_outer() << "\n  }";
  if (r.sharded) {
    out << ",\n  \"shard\": {\n"
        << "    \"ranges\": " << r.shard.ranges << ",\n"
        << "    \"worker_crashes\": " << r.shard.worker_crashes << ",\n"
        << "    \"timeouts\": " << r.shard.timeouts << ",\n"
        << "    \"ranges_requeued\": " << r.shard.ranges_requeued << "\n  }";
  }
  if (identical_checked) {
    out << ",\n  \"identical_results\": " << (identical ? "true" : "false");
  }
  out << "\n}\n";
}

void write_solve_json(std::ostream& out, const ScenarioResult& r) {
  out << "{\n"
      << "  \"spec\": \"" << json_escape(r.spec_text) << "\",\n"
      << "  \"solver\": \"" << json_escape(r.solver_name) << "\",\n"
      << "  \"matrix\": \"" << json_escape(r.matrix_name) << "\",\n"
      << "  \"n\": " << r.n << ",\n"
      << "  \"backend\": \"" << json_escape(r.backend_name) << "\",\n";
  if (!r.backend_decision.empty()) {
    out << "  \"backend_decision\": \"" << json_escape(r.backend_decision)
        << "\",\n";
  }
  out << "  \"status\": \"" << solver::to_string(r.report.status) << "\",\n"
      << "  \"iterations\": " << r.report.iterations << ",\n"
      << "  \"global_syncs\": " << r.report.global_syncs << ",\n"
      << "  \"residual\": " << json_number(r.report.residual_norm) << ",\n"
      << "  \"injected\": " << (r.injected ? "true" : "false") << ",\n"
      << "  \"detected\": " << (r.detected ? "true" : "false") << ",\n"
      << "  \"recovery\": {\n"
      << "    \"retried_reliable\": " << r.report.reliable_retries << ",\n"
      << "    \"restarted_outer\": " << r.report.outer_restarts << "\n  }\n"
      << "}\n";
}

void write_scenario_json(std::ostream& out, const ScenarioResult& r) {
  if (r.is_sweep) {
    write_sweep_json(out, r);
  } else {
    write_solve_json(out, r);
  }
}

} // namespace sdcgmres::experiment
