#pragma once
/// \file journal.hpp
/// \brief Append-only sweep journal: the checkpoint/resume substrate.
///
/// A sweep journal is a JSONL file -- one self-contained JSON object per
/// line -- holding a header record (the sweep's shape, so a resume can
/// refuse a journal written for a different sweep) followed by one point
/// record per completed injection-site solve.  Records are appended as
/// points finish and fsync'd in batches, so a crashed sweep (or a
/// SIGKILL'd shard worker) loses at most the solves that were in flight.
///
/// Durability/consistency rules:
///   * residual norms are stored as raw IEEE-754 bit patterns (u64), so a
///     resumed point is bitwise identical to its originally-solved run --
///     decimal round-trips would not be;
///   * a final line without a trailing newline is ALWAYS discarded on
///     load, even when it happens to parse (a truncated number can parse
///     to the wrong value); the discarded point is simply re-solved;
///   * a malformed INTERIOR line is corruption, not truncation: load()
///     throws with the journal path and 1-based line number;
///   * compact()/write_merged() replace a journal atomically
///     (tmp-write + fsync + rename), so readers never observe a partially
///     rewritten file.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "experiment/sweep.hpp"

namespace sdcgmres::experiment {

/// The sweep-shape header every journal starts with.  A resume checks it
/// against the live sweep's measured baseline and sampling parameters and
/// refuses a mismatch (a journal of some other sweep would silently
/// poison the merged result).
struct SweepJournalHeader {
  std::size_t version = 1;
  std::size_t baseline_outer = 0;
  std::size_t baseline_total_inner = 0;
  bool baseline_converged = false;
  std::size_t n_points = 0; ///< total points of the FULL sweep (not the
                            ///< shard range a given journal file covers)
  std::size_t stride = 1;
  std::size_t site_limit = 0;

  bool operator==(const SweepJournalHeader&) const = default;
};

/// What load() recovered from an existing journal file.
struct SweepJournalContents {
  bool has_header = false;
  SweepJournalHeader header;
  /// (point index, point) pairs in file order; duplicates keep the LAST
  /// occurrence (a re-queued shard range legitimately re-solves points).
  std::vector<std::pair<std::size_t, SweepPoint>> points;
  bool discarded_tail = false; ///< the final line had no trailing newline
                               ///< and was dropped (crash mid-append)
};

/// Append-only writer + loader of sweep journals.
class SweepJournal {
public:
  /// Parse \p path.  A missing file returns an empty contents object (a
  /// fresh start); any other open failure, or a malformed interior line,
  /// throws std::runtime_error naming the path (and line number).
  [[nodiscard]] static SweepJournalContents load(const std::string& path);

  /// Atomically replace \p path with a compact journal: one header line,
  /// then \p points in the given order (tmp-write + fsync + rename).
  /// Throws std::runtime_error naming the path and reason on any failure.
  static void write_merged(
      const std::string& path, const SweepJournalHeader& header,
      const std::vector<std::pair<std::size_t, SweepPoint>>& points);

  /// Open \p path for appending (created if missing).  Throws
  /// std::runtime_error naming the path and reason when it cannot be
  /// opened (e.g. the directory does not exist or is unwritable).
  explicit SweepJournal(std::string path);
  ~SweepJournal();

  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  /// Append one record (buffered until flush()).
  void append_header(const SweepJournalHeader& header);
  void append_point(std::size_t index, const SweepPoint& point);

  /// Write the buffered records and fsync: after flush() returns, every
  /// appended record survives a crash of this process.
  void flush();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

private:
  std::string path_;
  int fd_ = -1;
  std::string buffer_;
};

} // namespace sdcgmres::experiment
