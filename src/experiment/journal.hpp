#pragma once
/// \file journal.hpp
/// \brief Append-only sweep journal: the checkpoint/resume substrate.
///
/// A sweep journal is a JSONL file -- one self-contained JSON object per
/// line -- holding a header record (the sweep's shape, so a resume can
/// refuse a journal written for a different sweep) followed by one point
/// record per completed injection-site solve.  Records are appended as
/// points finish and fsync'd in batches, so a crashed sweep (or a
/// SIGKILL'd shard worker) loses at most the solves that were in flight.
///
/// Durability/consistency rules:
///   * residual norms are stored as raw IEEE-754 bit patterns (u64), so a
///     resumed point is bitwise identical to its originally-solved run --
///     decimal round-trips would not be;
///   * a final line without a trailing newline is ALWAYS discarded on
///     load, even when it happens to parse (a truncated number can parse
///     to the wrong value); the discarded point is simply re-solved;
///   * a malformed INTERIOR line is corruption, not truncation: load()
///     throws with the journal path and 1-based line number;
///   * compact()/write_merged() replace a journal atomically
///     (tmp-write + fsync + rename), so readers never observe a partially
///     rewritten file.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "experiment/sweep.hpp"

namespace sdcgmres::experiment {

/// The sweep-shape header every journal starts with.  A resume checks it
/// against the live sweep's measured baseline and sampling parameters and
/// refuses a mismatch (a journal of some other sweep would silently
/// poison the merged result).
struct SweepJournalHeader {
  std::size_t version = 2; ///< 2 added the per-point "syncs" field; a
                           ///< version-1 journal is a different sweep
  std::size_t baseline_outer = 0;
  std::size_t baseline_total_inner = 0;
  bool baseline_converged = false;
  std::size_t n_points = 0; ///< total points of the FULL sweep (not the
                            ///< shard range a given journal file covers)
  std::size_t stride = 1;
  std::size_t site_limit = 0;

  bool operator==(const SweepJournalHeader&) const = default;
};

/// Cumulative progress counters a running sweep appends alongside its
/// point records (one `stats` line per journal flush).  These make the
/// journal a live progress stream: a tailing reader sees points done and
/// the bytes/streams paid so far without waiting for the SweepResult.
/// The traffic counters are stored as the RAW OperatorStats decomposition
/// (not the derived streams/columns sums) so a resumed sweep can restore
/// the last record as its traffic baseline: the final operator_stats --
/// and hence the result JSON's bytes-streamed fields -- come out bitwise
/// identical to an uninterrupted run.  write_merged drops stats lines
/// during compaction; the resume path re-appends the restored record so
/// the baseline survives repeated crashes.
struct SweepRunningStats {
  std::size_t points_done = 0; ///< points this JOURNAL has recorded, i.e.
                               ///< cumulative across resumed incarnations
  krylov::OperatorStats traffic; ///< cumulative raw traffic counters

  bool operator==(const SweepRunningStats&) const = default;
};

/// What load() recovered from an existing journal file.
struct SweepJournalContents {
  bool has_header = false;
  SweepJournalHeader header;
  /// (point index, point) pairs in file order; duplicates keep the LAST
  /// occurrence (a re-queued shard range legitimately re-solves points).
  std::vector<std::pair<std::size_t, SweepPoint>> points;
  bool has_stats = false;  ///< at least one `stats` record was present
  SweepRunningStats stats; ///< the LAST stats record (cumulative counters)
  bool discarded_tail = false; ///< the final line had no trailing newline
                               ///< and was dropped (crash mid-append)
};

/// Live progress view of a (possibly still-growing, possibly absent)
/// journal: the journal IS the job's progress stream, and this is the
/// tail.  points_done counts UNIQUE point indexes (re-queued ranges may
/// journal a point twice); the outcome counters aggregate over those
/// points exactly like the SweepResult accessors will once the sweep
/// finishes.  A missing journal file reports zero progress (the job has
/// not started solving), matching load().
struct SweepProgress {
  bool started = false; ///< the journal exists and has a header
  SweepJournalHeader header;
  std::size_t points_done = 0;
  std::size_t failed = 0;            ///< points that did not converge
  std::size_t detected = 0;          ///< points whose detector fired
  std::size_t diverged = 0;          ///< divergence-guard trips
  std::size_t deadline_exceeded = 0; ///< deadline-guard trips
  std::size_t reliable_retries = 0;  ///< recovery: inner solves re-run
  std::size_t outer_restarts = 0;    ///< recovery: outer cycles restarted
  bool has_stats = false;
  SweepRunningStats stats; ///< latest cumulative traffic counters
};

/// Tail \p path: load the journal (tolerating the in-flight tail a live
/// writer leaves) and fold its records into a SweepProgress.  Throws only
/// on what load() throws on (corrupt interior lines, unreadable files).
[[nodiscard]] SweepProgress tail_sweep_journal(const std::string& path);

/// Append-only writer + loader of sweep journals.
class SweepJournal {
public:
  /// Parse \p path.  A missing file returns an empty contents object (a
  /// fresh start); any other open failure, or a malformed interior line,
  /// throws std::runtime_error naming the path (and line number).
  [[nodiscard]] static SweepJournalContents load(const std::string& path);

  /// Atomically replace \p path with a compact journal: one header line,
  /// then \p points in the given order (tmp-write + fsync + rename).
  /// Throws std::runtime_error naming the path and reason on any failure.
  static void write_merged(
      const std::string& path, const SweepJournalHeader& header,
      const std::vector<std::pair<std::size_t, SweepPoint>>& points);

  /// Open \p path for appending (created if missing).  Throws
  /// std::runtime_error naming the path and reason when it cannot be
  /// opened (e.g. the directory does not exist or is unwritable).
  explicit SweepJournal(std::string path);
  ~SweepJournal();

  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  /// Append one record (buffered until flush()).
  void append_header(const SweepJournalHeader& header);
  void append_point(std::size_t index, const SweepPoint& point);
  void append_stats(const SweepRunningStats& stats);

  /// Write the buffered records and fsync: after flush() returns, every
  /// appended record survives a crash of this process.
  void flush();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

private:
  std::string path_;
  int fd_ = -1;
  std::string buffer_;
};

} // namespace sdcgmres::experiment
