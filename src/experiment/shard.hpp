#pragma once
/// \file shard.hpp
/// \brief Crash-tolerant process sharding of an injection sweep.
///
/// run_sharded_sweep forks worker processes over contiguous point ranges
/// of a sweep.  Each worker runs run_injection_sweep restricted to its
/// range, journaling every completed point into a per-range journal file
/// (see experiment/journal.hpp); the parent monitors the children and
/// re-queues the range of any worker that exits abnormally -- crash,
/// signal (SIGKILL included), or a worker_timeout deadline -- with a
/// capped retry count and backoff.  A re-run worker RESUMES its range
/// journal, so it only re-solves the points the dead attempt had not yet
/// flushed.  When all ranges complete, the parent merges the range
/// journals deterministically by point index into one SweepResult (and
/// one merged journal file), so the final result is bitwise identical to
/// a serial run no matter how many workers died along the way.
///
/// Because each injection-site solve is independent and deterministic
/// (the sweep determinism contract), process sharding -- like thread
/// sharding and lockstep batching -- cannot change any point's value;
/// it only changes which process computes it.
///
/// Fork/OpenMP discipline: before forking, the parent only ever runs
/// 1-thread OpenMP regions (the pinned baseline), which spawn no helper
/// threads, so the children never inherit a torn thread pool; each child
/// builds its own OpenMP team from scratch.

#include <cstddef>
#include <string>

#include "experiment/sweep.hpp"
#include "la/vector.hpp"
#include "sparse/csr.hpp"

namespace sdcgmres::experiment {

/// Crash-drill instructions for tests: make one range's worker die (or
/// stall) after journaling a few points, proving that the parent's
/// re-queue + resume machinery reconstructs the exact serial result.
struct ShardDrill {
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t range = kNone;   ///< range index whose worker drills
  std::size_t after_points = 0; ///< act after this many journaled points
  bool stall = false;          ///< instead of SIGKILL'ing itself, hang
                               ///< forever (exercises worker_timeout)
  bool every_attempt = false;  ///< drill retries too (drives the range to
                               ///< retry exhaustion; tests the cap)
};

/// Configuration of the sharded run.
struct ShardOptions {
  std::size_t workers = 2;     ///< worker processes (= point ranges);
                               ///< must be >= 1
  double worker_timeout_seconds = 0.0; ///< per-attempt wall-clock deadline;
                               ///< an overrunning worker is SIGKILL'd and
                               ///< its range re-queued (0 = no deadline)
  std::size_t max_retries = 3; ///< extra attempts per range before the
                               ///< sweep fails loudly
  double retry_backoff_seconds = 0.05; ///< pause before attempt k+1 of a
                               ///< range, scaled linearly by k
  ShardDrill drill;            ///< test-only crash drill (default: none)
};

/// What the parent observed while supervising the workers.
struct ShardReport {
  std::size_t ranges = 0;          ///< point ranges (== workers clamped to
                                   ///< the point count)
  std::size_t worker_crashes = 0;  ///< abnormal exits (nonzero status or
                                   ///< signal, timeouts included)
  std::size_t timeouts = 0;        ///< workers SIGKILL'd by the deadline
  std::size_t ranges_requeued = 0; ///< re-queue events (a range may
                                   ///< contribute several)
};

/// Run \p config's sweep sharded over ShardOptions::workers processes.
/// Requires a non-empty config.journal: the per-range journals live at
/// `<journal>.range<K>` and the merged journal replaces `<journal>`
/// atomically at the end.  config.resume seeds the ranges from an
/// existing merged journal (interrupted sharded runs resume too).
/// config.point_offset/point_count must be 0 (the shard layer owns the
/// range split).  Throws std::runtime_error when a range exhausts
/// max_retries.  The returned SweepResult's points and baseline fields
/// are bitwise identical to run_injection_sweep's serial result;
/// operator_stats only covers the parent's baseline measurement (it is
/// outside the determinism contract).
[[nodiscard]] SweepResult run_sharded_sweep(const sparse::CsrMatrix& A,
                                            const la::Vector& b,
                                            const SweepConfig& config,
                                            const ShardOptions& shard,
                                            ShardReport* report = nullptr);

} // namespace sdcgmres::experiment
