#include "experiment/sweep.hpp"

#include <algorithm>
#include <cstdint>
#include <exception>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "experiment/journal.hpp"
#include "krylov/operator.hpp"
#include "krylov/workspace.hpp"
#include "solver/registry.hpp"
#include "solver/solver.hpp"

namespace sdcgmres::experiment {

std::size_t SweepResult::max_outer_increase() const {
  std::size_t worst = 0;
  for (const SweepPoint& p : points) {
    if (p.outer_iterations > baseline_outer) {
      worst = std::max(worst, p.outer_iterations - baseline_outer);
    }
  }
  return worst;
}

std::size_t SweepResult::unchanged_runs() const {
  return static_cast<std::size_t>(
      std::count_if(points.begin(), points.end(), [this](const SweepPoint& p) {
        return p.converged && p.outer_iterations <= baseline_outer;
      }));
}

std::size_t SweepResult::failed_runs() const {
  return static_cast<std::size_t>(std::count_if(
      points.begin(), points.end(),
      [](const SweepPoint& p) { return !p.converged; }));
}

std::size_t SweepResult::detected_runs() const {
  return static_cast<std::size_t>(std::count_if(
      points.begin(), points.end(),
      [](const SweepPoint& p) { return p.detected; }));
}

std::size_t SweepResult::inner_operand_columns() const {
  std::size_t total = 0;
  for (const SweepPoint& p : points) total += p.inner_applies;
  return total;
}

std::size_t SweepResult::diverged_runs() const {
  return static_cast<std::size_t>(
      std::count_if(points.begin(), points.end(), [](const SweepPoint& p) {
        return p.status == krylov::SolveStatus::Diverged ||
               p.inner_diverged > 0;
      }));
}

std::size_t SweepResult::deadline_exceeded_runs() const {
  return static_cast<std::size_t>(
      std::count_if(points.begin(), points.end(), [](const SweepPoint& p) {
        return p.status == krylov::SolveStatus::DeadlineExceeded;
      }));
}

std::size_t SweepResult::retried_reliable() const {
  std::size_t total = 0;
  for (const SweepPoint& p : points) total += p.reliable_retries;
  return total;
}

std::size_t SweepResult::restarted_outer() const {
  std::size_t total = 0;
  for (const SweepPoint& p : points) total += p.outer_restarts;
  return total;
}

std::size_t SweepResult::total_global_syncs() const {
  std::size_t total = 0;
  for (const SweepPoint& p : points) total += p.global_syncs;
  return total;
}

namespace {

/// Run \p fn inside a 1-thread OpenMP region with kernel threading pinned
/// to 1 (the sweep determinism contract), converting any escaping
/// exception back into a normal throw -- an exception crossing an OpenMP
/// region boundary would call std::terminate.
template <typename Fn>
void run_pinned(Fn&& fn) {
  std::exception_ptr error;
#pragma omp parallel num_threads(1)
  {
#ifdef _OPENMP
    omp_set_num_threads(1);
#endif
    try {
      fn();
    } catch (...) {
      error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
}

} // namespace

krylov::FtGmresResult run_baseline(const sparse::CsrMatrix& A,
                                   const la::Vector& b,
                                   const krylov::FtGmresOptions& opts) {
  // Pinned like every sweep solve, so run_baseline always agrees with
  // run_injection_sweep's baseline fields exactly.
  krylov::FtGmresResult baseline;
  run_pinned([&] { baseline = krylov::ft_gmres(A, b, opts, nullptr); });
  return baseline;
}

krylov::FtGmresResult run_baseline(const krylov::LinearOperator& A,
                                   const la::Vector& b,
                                   const krylov::FtGmresOptions& opts) {
  krylov::FtGmresResult baseline;
  run_pinned([&] { baseline = krylov::ft_gmres(A, b, opts, nullptr); });
  return baseline;
}

namespace {

/// The one SolveReport -> SweepPoint translation, shared by the solo and
/// batched site runners so batch=1 and batch>1 points can never diverge
/// field-wise.
SweepPoint make_sweep_point(const solver::SolveReport& run, std::size_t site,
                            const sdc::FaultCampaign& campaign,
                            const sdc::HessenbergBoundDetector* detector) {
  SweepPoint point;
  point.aggregate_iteration = site;
  point.outer_iterations = run.iterations;
  point.converged = run.converged();
  point.injected = campaign.fired();
  point.detected = detector != nullptr && detector->triggered();
  point.sanitized_outputs = run.sanitized_outputs;
  point.inner_applies = run.total_inner_applies;
  point.residual_norm = run.residual_norm;
  point.status = run.status;
  for (const krylov::InnerSolveRecord& rec : run.inner_solves) {
    if (rec.status == krylov::SolveStatus::Diverged) ++point.inner_diverged;
  }
  point.reliable_retries = run.reliable_retries;
  point.outer_restarts = run.outer_restarts;
  point.global_syncs = run.global_syncs;
  return point;
}

/// The per-site injection plan: the paper's Hessenberg fault by default,
/// or the fault_target= axis (subdiagonal / matvec / powers) at the same
/// aggregate-iteration site vocabulary.
sdc::InjectionPlan sweep_plan(const SweepConfig& config, std::size_t site) {
  sdc::InjectionPlan plan;
  plan.target = config.target;
  plan.position = config.position;
  plan.aggregate_iteration = site;
  plan.element_index = config.element_index;
  plan.model = config.model;
  return plan;
}

/// One faulty solve at one injection site, run through the unified
/// façade: \p ft is the worker's reusable FtGmresSolver (its internal
/// workspace makes every solve after the first allocation-free) and \p x
/// the worker's iterate buffer.  All mutable state (campaign, detector,
/// event logs, solver workspace) is owned by the caller's thread.
SweepPoint run_site(solver::FtGmresSolver& ft, const la::Vector& b,
                    const SweepConfig& config, std::size_t site,
                    la::Vector& x) {
  sdc::FaultCampaign campaign(sweep_plan(config, site));
  std::unique_ptr<sdc::HessenbergBoundDetector> detector;
  krylov::HookChain chain;
  chain.add(&campaign);
  if (config.with_detector) {
    detector = std::make_unique<sdc::HessenbergBoundDetector>(
        config.detector_bound, config.detector_response);
    chain.add(detector.get());
  }

  ft.set_hook(&chain);
  const solver::SolveReport run = ft.solve(b.span(), x.span());
  ft.set_hook(nullptr);

  return make_sweep_point(run, site, campaign, detector.get());
}

/// A block of faulty solves advanced in lockstep (config.batch > 1): one
/// fault campaign + detector chain per site, all sites of the block
/// sharing each outer iteration's matrix stream through
/// BatchedFtGmresSolver.  Every site's result is bitwise identical to its
/// run_site() solo run (asserted in tests and by sdc_run
/// --assert-identical), so batching is purely a traffic optimization.
/// \p point_indices names the sweep-point slots this block solves (not
/// necessarily contiguous: a resumed sweep blocks over the PENDING
/// points); \p xs provides one iterate buffer per instance.
void run_block(solver::BatchedFtGmresSolver& ft, const la::Vector& b,
               const SweepConfig& config,
               std::span<const std::size_t> point_indices, SweepPoint* points,
               std::vector<la::Vector>& xs) {
  const std::size_t count = point_indices.size();
  std::vector<sdc::FaultCampaign> campaigns;
  campaigns.reserve(count);
  std::vector<std::unique_ptr<sdc::HessenbergBoundDetector>> detectors(count);
  std::vector<krylov::HookChain> chains(count);
  std::vector<krylov::ArnoldiHook*> hooks(count);
  std::vector<std::span<const double>> bs(count);
  std::vector<std::span<double>> xspans(count);
  for (std::size_t s = 0; s < count; ++s) {
    const std::size_t site = point_indices[s] * config.stride;
    campaigns.emplace_back(sweep_plan(config, site));
    chains[s].add(&campaigns.back());
    if (config.with_detector) {
      detectors[s] = std::make_unique<sdc::HessenbergBoundDetector>(
          config.detector_bound, config.detector_response);
      chains[s].add(detectors[s].get());
    }
    hooks[s] = &chains[s];
    bs[s] = b.span();
    xspans[s] = xs[s].span();
  }

  const std::vector<solver::SolveReport> runs =
      ft.solve_batch(bs, xspans, hooks);

  for (std::size_t s = 0; s < count; ++s) {
    points[point_indices[s]] =
        make_sweep_point(runs[s], point_indices[s] * config.stride,
                         campaigns[s], detectors[s].get());
  }
}

} // namespace

void validate_sweep_config(const SweepConfig& config) {
  if (config.with_detector && config.detector_bound <= 0.0) {
    throw std::invalid_argument(
        "run_injection_sweep: detector enabled but detector_bound is not "
        "positive (use e.g. ||A||_F)");
  }
  if (config.stride == 0) {
    throw std::invalid_argument("run_injection_sweep: stride must be >= 1");
  }
  if (config.batch == 0) {
    throw std::invalid_argument(
        "run_injection_sweep: batch must be >= 1 (1 = solo solves)");
  }
  if (config.solver.inner.max_iters == 0) {
    throw std::invalid_argument(
        "run_injection_sweep: inner.max_iters == 0 admits no injection "
        "sites (the site axis counts inner Arnoldi iterations)");
  }
  if (config.target == sdc::InjectionTarget::PowerElement &&
      config.solver.inner.s_step < 2) {
    throw std::invalid_argument(
        "run_injection_sweep: fault_target=powers corrupts a staged matrix "
        "power, which only exists in the s-step inner mode; set s >= 2 "
        "(valid range: 2..restart cycle length)");
  }
}

SweepResult run_injection_sweep(const sparse::CsrMatrix& A,
                                const la::Vector& b,
                                const SweepConfig& config) {
  validate_sweep_config(config);

  // The detector response carries the recovery policy: any response
  // beyond record/abort translates onto the nested solver's
  // InnerRecovery (sdc::inner_recovery_for).  Runs where no detector
  // fires are bitwise identical at every policy.
  SweepConfig cfg = config;
  if (cfg.with_detector) {
    const krylov::InnerRecovery rec =
        sdc::inner_recovery_for(cfg.detector_response);
    if (rec != krylov::InnerRecovery::None) cfg.solver.recovery = rec;
  }

  SweepResult result;

  // Determinism contract: the sweep owns ALL parallelism.  Every solve
  // (baseline included) runs inside a sweep-created OpenMP region with its
  // per-thread kernel threading pinned to 1, so the low-level dot/spmv
  // reductions accumulate in one fixed (sequential) order no matter how
  // many sweep workers run.  A sweep at threads == N is therefore bitwise
  // identical to threads == 1: same points, same order, same doubles.
  // (nthreads-var is a per-region ICV: the pin dies with the region.)

  // --- Execution backend: one assembly serves the baseline and every
  // worker (each worker still gets its OWN thin operator so traffic
  // counters stay per-worker).  Every backend is bitwise identical to
  // csr per solve, so the determinism contract above is unaffected.
  const std::shared_ptr<const krylov::MatrixBackend> backend =
      cfg.backend ? cfg.backend
                  : solver::backend_registry().make(cfg.backend_key, A);

  // --- Failure-free baseline: learns the injection-site count. ---
  const std::unique_ptr<krylov::LinearOperator> baseline_op =
      backend->make_operator(A);
  const krylov::FtGmresResult baseline =
      run_baseline(*baseline_op, b, cfg.solver);
  result.baseline_outer = baseline.outer_iterations;
  result.baseline_total_inner = baseline.total_inner_iterations;
  result.baseline_converged =
      baseline.status == krylov::SolveStatus::Converged ||
      baseline.status == krylov::SolveStatus::HappyBreakdown;
  result.baseline_global_syncs = baseline.global_syncs;

  // --- One faulty solve per (sampled) injection site. ---
  std::size_t last_site = result.baseline_total_inner;
  if (cfg.site_limit > 0) {
    last_site = std::min(last_site, cfg.site_limit);
  }
  const std::size_t n_points = (last_site + cfg.stride - 1) / cfg.stride;
  if (n_points == 0) {
    throw std::invalid_argument(
        "run_injection_sweep: the site_limit/stride combination selects "
        "zero injection sites (baseline produced " +
        std::to_string(result.baseline_total_inner) +
        " inner iterations, site_limit=" + std::to_string(cfg.site_limit) +
        ", stride=" + std::to_string(cfg.stride) + ")");
  }
  result.points.resize(n_points);

  // --- Checkpoint/resume: load the journal, mark completed points, and
  // open the append writer.  The journaled header must match the live
  // sweep's measured shape -- resuming some OTHER sweep's journal would
  // silently poison the merged result.
  const SweepJournalHeader header{
      .version = 2,
      .baseline_outer = result.baseline_outer,
      .baseline_total_inner = result.baseline_total_inner,
      .baseline_converged = result.baseline_converged,
      .n_points = n_points,
      .stride = cfg.stride,
      .site_limit = cfg.site_limit,
  };
  std::vector<char> done(n_points, 0);
  std::optional<SweepJournal> writer;
  // Traffic baseline restored from the journal's last stats record: the
  // counters the previous incarnation(s) paid for the already-journaled
  // points.  Folding it into operator_stats makes a resumed run's totals
  // -- and hence the result JSON -- bitwise identical to an uninterrupted
  // run (each completed point's traffic is counted exactly once; partial
  // work a crash destroyed was never published and is re-solved in full).
  krylov::OperatorStats resumed_traffic;
  bool restore_stats = false;
  if (!cfg.journal.empty()) {
    if (cfg.resume) {
      SweepJournalContents loaded = SweepJournal::load(cfg.journal);
      if (loaded.has_header && loaded.header != header) {
        throw std::invalid_argument(
            "run_injection_sweep: journal '" + cfg.journal +
            "' was written for a different sweep (header mismatch); "
            "delete it or fix the scenario");
      }
      for (const auto& [index, point] : loaded.points) {
        if (index >= n_points) {
          throw std::invalid_argument(
              "run_injection_sweep: journal '" + cfg.journal +
              "' holds point index " + std::to_string(index) +
              " but this sweep has only " + std::to_string(n_points) +
              " points (header mismatch)");
        }
        result.points[index] = point; // duplicates: last occurrence wins
        done[index] = 1;
      }
      if (loaded.has_stats) {
        resumed_traffic = loaded.stats.traffic;
        restore_stats = true;
      }
      // Compact before appending: drops a crash-truncated tail line so
      // new records start on a clean line, and dedups re-queued ranges.
      SweepJournal::write_merged(cfg.journal, header, loaded.points);
    } else {
      // Fresh run: truncate any stale journal down to the header.
      SweepJournal::write_merged(cfg.journal, header, {});
    }
    writer.emplace(cfg.journal);
  }
  result.operator_stats = resumed_traffic;
  const std::size_t journaled_points = static_cast<std::size_t>(
      std::count(done.begin(), done.end(), static_cast<char>(1)));
  if (writer && restore_stats) {
    // write_merged's compaction dropped the stats lines; re-seed the
    // restored baseline record so a tailing reader keeps seeing the
    // cumulative traffic and a second crash still restores correctly.
    SweepRunningStats restored;
    restored.points_done = journaled_points;
    restored.traffic = resumed_traffic;
    writer->append_stats(restored);
    writer->flush();
  }

  // --- Range restriction (the shard seam): this run solves only the
  // pending points inside [point_offset, point_offset + point_count).
  const std::size_t first_point = std::min(cfg.point_offset, n_points);
  const std::size_t range_count =
      cfg.point_count == 0
          ? n_points - first_point
          : std::min(cfg.point_count, n_points - first_point);
  std::vector<std::size_t> pending;
  pending.reserve(range_count);
  for (std::size_t i = first_point; i < first_point + range_count; ++i) {
    if (done[i] == 0) pending.push_back(i);
  }

  int workers = 1;
#ifdef _OPENMP
  workers = cfg.threads == 0 ? omp_get_max_threads()
                             : static_cast<int>(cfg.threads);
  if (workers < 1) workers = 1;
#endif

  // Batching: each worker packs `batch` consecutive pending points into
  // one lockstep multi-RHS solve, so every outer iteration streams the
  // matrix once for the whole block instead of once per site.  The
  // schedule runs over BLOCKS; with batch == 1 this is exactly the
  // per-site schedule of earlier generations.
  const std::size_t batch = cfg.batch;
  const std::size_t n_blocks = (pending.size() + batch - 1) / batch;

  SweepPoint* points = result.points.data();
  // Journal-level progress: already-journaled points plus what this run
  // flushes, so the stats records stay cumulative across resumes.
  std::size_t completed = journaled_points;
  // Per-worker traffic snapshots, published under the journal critical
  // section so each flush can append a cumulative `stats` progress record
  // (the journal doubles as the job's live progress stream).
  std::vector<krylov::OperatorStats> worker_stats(
      static_cast<std::size_t>(workers));
  std::exception_ptr error;
#pragma omp parallel num_threads(workers)
  {
#ifdef _OPENMP
    omp_set_num_threads(1); // solver kernels stay serial inside a worker
#endif
    // One reusable façade solver per worker thread (solo or batched by
    // mode): its internal nested workspace (per-instance slots + staging
    // blocks in batch mode) makes every solve after the worker's first
    // block allocation-free on the iteration path.
    const std::unique_ptr<krylov::LinearOperator> op_ptr =
        backend->make_operator(A);
    const krylov::LinearOperator& op = *op_ptr;
    std::optional<solver::FtGmresSolver> ft;
    std::optional<solver::BatchedFtGmresSolver> ft_batch;
    la::Vector x;
    std::vector<la::Vector> xs;
    if (batch == 1) {
      ft.emplace(op, cfg.solver);
      x.resize(b.size());
    } else {
      ft_batch.emplace(op, cfg.solver);
      xs.assign(batch, la::Vector(b.size()));
    }
#pragma omp for schedule(dynamic)
    for (std::int64_t idx = 0; idx < static_cast<std::int64_t>(n_blocks);
         ++idx) {
      try {
        const std::size_t first = static_cast<std::size_t>(idx) * batch;
        const std::size_t count = std::min(batch, pending.size() - first);
        const std::span<const std::size_t> block(pending.data() + first,
                                                 count);
        if (batch == 1) {
          points[block[0]] = run_site(*ft, b, cfg, block[0] * cfg.stride, x);
        } else {
          run_block(*ft_batch, b, cfg, block, points, xs);
        }
        if (writer) {
          // Serialize journal traffic; each flush is a durability point
          // (these records survive a SIGKILL of this process).
#pragma omp critical(sdcgmres_sweep_journal)
          {
            for (const std::size_t p : block) {
              writer->append_point(p, points[p]);
            }
            completed += count;
            // Publish this worker's current traffic and append one
            // cumulative stats record per flush: the journal is the
            // job's live progress stream (tail_sweep_journal reads it
            // back), and these counters are the incremental view of
            // what SweepResult::operator_stats will total.
            int tid = 0;
#ifdef _OPENMP
            tid = omp_get_thread_num();
#endif
            krylov::OperatorStats mine = op.stats();
            if (ft) mine += ft->mixed_stats();
            if (ft_batch) mine += ft_batch->mixed_stats();
            worker_stats[static_cast<std::size_t>(tid)] = mine;
            SweepRunningStats running;
            running.points_done = completed;
            running.traffic = resumed_traffic;
            for (const krylov::OperatorStats& ws : worker_stats) {
              running.traffic += ws;
            }
            writer->append_stats(running);
            writer->flush();
            if (cfg.on_progress) cfg.on_progress(completed);
          }
        }
      } catch (...) {
        // An exception may not cross the region boundary (std::terminate);
        // keep the first one and rethrow it on the calling thread.
#pragma omp critical(sdcgmres_sweep_error)
        if (!error) error = std::current_exception();
      }
    }
    // Each worker counted its own operator's traffic; the sum of counters
    // is order-independent, so the merged stats are deterministic too.
    // (A resumed sweep adds its re-executed solves on top of the baseline
    // restored from the journal's last stats record, so the totals match
    // an uninterrupted run exactly.)  On mixed precision/index
    // configurations the inner solves stream the narrowed mirror instead
    // of the operator, so its counters are folded in too -- bytes then
    // reflect the compressed traffic actually paid.
#pragma omp critical(sdcgmres_sweep_stats)
    {
      result.operator_stats += op.stats();
      if (ft) result.operator_stats += ft->mixed_stats();
      if (ft_batch) result.operator_stats += ft_batch->mixed_stats();
    }
  }
  if (error) std::rethrow_exception(error);
  return result;
}

} // namespace sdcgmres::experiment
