#include "experiment/sweep.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace sdcgmres::experiment {

std::size_t SweepResult::max_outer_increase() const {
  std::size_t worst = 0;
  for (const SweepPoint& p : points) {
    if (p.outer_iterations > baseline_outer) {
      worst = std::max(worst, p.outer_iterations - baseline_outer);
    }
  }
  return worst;
}

std::size_t SweepResult::unchanged_runs() const {
  return static_cast<std::size_t>(
      std::count_if(points.begin(), points.end(), [this](const SweepPoint& p) {
        return p.converged && p.outer_iterations <= baseline_outer;
      }));
}

std::size_t SweepResult::failed_runs() const {
  return static_cast<std::size_t>(std::count_if(
      points.begin(), points.end(),
      [](const SweepPoint& p) { return !p.converged; }));
}

std::size_t SweepResult::detected_runs() const {
  return static_cast<std::size_t>(std::count_if(
      points.begin(), points.end(),
      [](const SweepPoint& p) { return p.detected; }));
}

krylov::FtGmresResult run_baseline(const sparse::CsrMatrix& A,
                                   const la::Vector& b,
                                   const krylov::FtGmresOptions& opts) {
  return krylov::ft_gmres(A, b, opts, nullptr);
}

SweepResult run_injection_sweep(const sparse::CsrMatrix& A,
                                const la::Vector& b,
                                const SweepConfig& config) {
  if (config.with_detector && config.detector_bound <= 0.0) {
    throw std::invalid_argument(
        "run_injection_sweep: detector enabled but bound not set");
  }
  if (config.stride == 0) {
    throw std::invalid_argument("run_injection_sweep: stride must be >= 1");
  }

  SweepResult result;

  // --- Failure-free baseline: learns the injection-site count. ---
  const krylov::FtGmresResult baseline =
      krylov::ft_gmres(A, b, config.solver, nullptr);
  result.baseline_outer = baseline.outer_iterations;
  result.baseline_total_inner = baseline.total_inner_iterations;
  result.baseline_converged =
      baseline.status == krylov::FgmresStatus::Converged ||
      baseline.status == krylov::FgmresStatus::InvariantSubspace;

  // --- One faulty solve per (sampled) injection site. ---
  std::size_t last_site = result.baseline_total_inner;
  if (config.site_limit > 0) {
    last_site = std::min(last_site, config.site_limit);
  }
  result.points.reserve(last_site / config.stride + 1);
  for (std::size_t site = 0; site < last_site; site += config.stride) {
    sdc::FaultCampaign campaign(
        sdc::InjectionPlan::hessenberg(site, config.position, config.model));
    std::unique_ptr<sdc::HessenbergBoundDetector> detector;
    krylov::HookChain chain;
    chain.add(&campaign);
    if (config.with_detector) {
      detector = std::make_unique<sdc::HessenbergBoundDetector>(
          config.detector_bound, config.detector_response);
      chain.add(detector.get());
    }

    const krylov::FtGmresResult run =
        krylov::ft_gmres(A, b, config.solver, &chain);

    SweepPoint point;
    point.aggregate_iteration = site;
    point.outer_iterations = run.outer_iterations;
    point.converged = run.status == krylov::FgmresStatus::Converged ||
                      run.status == krylov::FgmresStatus::InvariantSubspace;
    point.injected = campaign.fired();
    point.detected = detector != nullptr && detector->triggered();
    point.sanitized_outputs = run.sanitized_outputs;
    point.residual_norm = run.residual_norm;
    result.points.push_back(point);
  }
  return result;
}

} // namespace sdcgmres::experiment
