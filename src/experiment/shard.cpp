#include "experiment/shard.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "experiment/journal.hpp"
#include "solver/registry.hpp"

namespace sdcgmres::experiment {

namespace {

using Clock = std::chrono::steady_clock;

std::string range_journal_path(const std::string& journal, std::size_t range) {
  return journal + ".range" + std::to_string(range);
}

/// One contiguous point range and its supervision state.
struct Range {
  std::size_t index = 0;
  std::size_t first = 0;
  std::size_t count = 0;
  std::size_t attempts = 0;       ///< attempts already consumed
  Clock::time_point not_before{}; ///< retry backoff gate
};

struct RunningWorker {
  pid_t pid = -1;
  Range range;
  Clock::time_point deadline{}; ///< zero-initialized = no deadline
  bool has_deadline = false;
};

/// The child's whole life: run the range restricted, journal-resumed
/// sweep and exit.  Exits 0 on success and 1 on any exception (retryable
/// up to the cap -- a transient failure heals, a deterministic one fails
/// loudly after max_retries).  Uses _Exit so the child never runs the
/// parent's atexit handlers or flushes its duplicated stdio buffers.
[[noreturn]] void run_child(const sparse::CsrMatrix& A, const la::Vector& b,
                            const SweepConfig& config, const Range& range,
                            const ShardOptions& shard) {
  try {
    SweepConfig c = config;
    c.journal = range_journal_path(config.journal, range.index);
    c.resume = true; // pick up what the previous attempt already flushed
    c.point_offset = range.first;
    c.point_count = range.count;
    const ShardDrill& drill = shard.drill;
    if (drill.range == range.index &&
        (range.attempts == 0 || drill.every_attempt)) {
      c.on_progress = [&drill](std::size_t completed) {
        if (completed < drill.after_points) return;
        if (drill.stall) {
          // Hang past any worker_timeout; the parent must SIGKILL us.
          for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
        }
        (void)::raise(SIGKILL); // die mid-range, journal already flushed
      };
    }
    (void)run_injection_sweep(A, b, c);
    std::_Exit(0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep shard %zu (points %zu..%zu): %s\n",
                 range.index, range.first, range.first + range.count - 1,
                 e.what());
    std::_Exit(1);
  } catch (...) {
    std::_Exit(1);
  }
}

} // namespace

SweepResult run_sharded_sweep(const sparse::CsrMatrix& A, const la::Vector& b,
                              const SweepConfig& config,
                              const ShardOptions& shard, ShardReport* report) {
  validate_sweep_config(config);
  if (shard.workers == 0) {
    throw std::invalid_argument("run_sharded_sweep: workers must be >= 1");
  }
  if (config.journal.empty()) {
    throw std::invalid_argument(
        "run_sharded_sweep: a journal path is required (per-range journals "
        "and the merged result derive from it); set journal=<path>");
  }
  if (config.point_offset != 0 || config.point_count != 0) {
    throw std::invalid_argument(
        "run_sharded_sweep: point_offset/point_count are owned by the "
        "shard layer; restrict the sweep with site_limit/stride instead");
  }

  SweepResult result;

  // --- Execution backend: resolved ONCE in the parent, before any fork.
  // The shared_ptr lands in every child's copied address space, so one
  // assembly (e.g. a SELL structure) serves the baseline and all worker
  // processes without per-child re-sorting.
  SweepConfig cfg = config;
  if (!cfg.backend) {
    cfg.backend = solver::backend_registry().make(cfg.backend_key, A);
  }

  // --- The parent's only solve: the pinned failure-free baseline, which
  // fixes the point count and the journal header.  (1-thread OpenMP
  // region: no helper threads exist when we fork below.)
  const std::unique_ptr<krylov::LinearOperator> baseline_op =
      cfg.backend->make_operator(A);
  const krylov::FtGmresResult baseline =
      run_baseline(*baseline_op, b, config.solver);
  result.baseline_outer = baseline.outer_iterations;
  result.baseline_total_inner = baseline.total_inner_iterations;
  result.baseline_converged =
      baseline.status == krylov::SolveStatus::Converged ||
      baseline.status == krylov::SolveStatus::HappyBreakdown;
  result.baseline_global_syncs = baseline.global_syncs;

  std::size_t last_site = result.baseline_total_inner;
  if (config.site_limit > 0) last_site = std::min(last_site, config.site_limit);
  const std::size_t n_points =
      (last_site + config.stride - 1) / config.stride;
  if (n_points == 0) {
    throw std::invalid_argument(
        "run_sharded_sweep: the site_limit/stride combination selects zero "
        "injection sites");
  }
  result.points.resize(n_points);

  const SweepJournalHeader header{
      .version = 2,
      .baseline_outer = result.baseline_outer,
      .baseline_total_inner = result.baseline_total_inner,
      .baseline_converged = result.baseline_converged,
      .n_points = n_points,
      .stride = config.stride,
      .site_limit = config.site_limit,
  };

  // --- Resuming an interrupted sharded run: split the merged top-level
  // journal's completed points back out into the per-range journals the
  // workers will resume from.  A fresh run seeds header-only range
  // journals (clobbering stale ones from older runs).
  std::vector<std::pair<std::size_t, SweepPoint>> already_done;
  if (config.resume) {
    SweepJournalContents loaded = SweepJournal::load(config.journal);
    if (loaded.has_header && loaded.header != header) {
      throw std::invalid_argument(
          "run_sharded_sweep: journal '" + config.journal +
          "' was written for a different sweep (header mismatch); delete "
          "it or fix the scenario");
    }
    for (const auto& [index, point] : loaded.points) {
      if (index >= n_points) {
        throw std::invalid_argument(
            "run_sharded_sweep: journal '" + config.journal +
            "' holds point index " + std::to_string(index) +
            " out of range (header mismatch)");
      }
    }
    already_done = std::move(loaded.points);
  }

  const std::size_t n_ranges = std::min(shard.workers, n_points);
  std::vector<Range> queue;
  queue.reserve(n_ranges);
  for (std::size_t r = 0; r < n_ranges; ++r) {
    // Contiguous split, remainder spread over the leading ranges.
    const std::size_t base = n_points / n_ranges;
    const std::size_t extra = n_points % n_ranges;
    const std::size_t count = base + (r < extra ? 1 : 0);
    const std::size_t first = r * base + std::min(r, extra);
    Range range{.index = r, .first = first, .count = count};
    std::vector<std::pair<std::size_t, SweepPoint>> mine;
    for (const auto& entry : already_done) {
      if (entry.first >= first && entry.first < first + count) {
        mine.push_back(entry);
      }
    }
    SweepJournal::write_merged(range_journal_path(config.journal, r), header,
                               mine);
    queue.push_back(range);
  }

  ShardReport local_report;
  local_report.ranges = n_ranges;

  // --- Supervision loop: keep up to `workers` children alive, re-queue
  // abnormal exits with capped retries + backoff, enforce deadlines.
  std::vector<RunningWorker> running;
  running.reserve(shard.workers);

  const auto kill_all = [&running] {
    for (const RunningWorker& w : running) (void)::kill(w.pid, SIGKILL);
    for (const RunningWorker& w : running) {
      int status = 0;
      (void)::waitpid(w.pid, &status, 0);
    }
    running.clear();
  };

  try {
    while (!queue.empty() || !running.empty()) {
      // Spawn: any queued range whose backoff gate has passed, while
      // worker slots are free.
      const Clock::time_point now = Clock::now();
      for (std::size_t q = 0;
           q < queue.size() && running.size() < shard.workers;) {
        if (queue[q].not_before > now) {
          ++q;
          continue;
        }
        const Range range = queue[q];
        queue.erase(queue.begin() +
                    static_cast<std::ptrdiff_t>(q));
        const pid_t pid = ::fork();
        if (pid < 0) {
          throw std::runtime_error(
              std::string("run_sharded_sweep: fork failed: ") +
              std::strerror(errno));
        }
        if (pid == 0) run_child(A, b, cfg, range, shard); // never returns
        RunningWorker worker{.pid = pid, .range = range};
        if (shard.worker_timeout_seconds > 0.0) {
          worker.deadline =
              Clock::now() +
              std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(
                      shard.worker_timeout_seconds));
          worker.has_deadline = true;
        }
        running.push_back(worker);
      }

      // Deadlines: SIGKILL overrunning workers; the reap below observes
      // the signal exit and re-queues like any other crash.
      for (RunningWorker& w : running) {
        if (w.has_deadline && Clock::now() >= w.deadline) {
          (void)::kill(w.pid, SIGKILL);
          w.has_deadline = false; // kill once
          ++local_report.timeouts;
        }
      }

      // Reap.
      int status = 0;
      const pid_t reaped = ::waitpid(-1, &status, WNOHANG);
      if (reaped > 0) {
        const auto it = std::find_if(
            running.begin(), running.end(),
            [reaped](const RunningWorker& w) { return w.pid == reaped; });
        if (it != running.end()) {
          Range range = it->range;
          running.erase(it);
          const bool ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
          if (!ok) {
            ++local_report.worker_crashes;
            ++range.attempts;
            if (range.attempts > shard.max_retries) {
              kill_all();
              throw std::runtime_error(
                  "run_sharded_sweep: range " + std::to_string(range.index) +
                  " (points " + std::to_string(range.first) + ".." +
                  std::to_string(range.first + range.count - 1) +
                  ") failed " + std::to_string(range.attempts) +
                  " times; giving up (see worker stderr)");
            }
            ++local_report.ranges_requeued;
            range.not_before =
                Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(
                        shard.retry_backoff_seconds *
                        static_cast<double>(range.attempts)));
            queue.push_back(range);
          }
        }
        continue; // a reap may free a slot: spawn immediately
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  } catch (...) {
    kill_all();
    throw;
  }

  // --- Deterministic merge: per-range journals -> points by index.  The
  // merge trusts only the journals (never parent-side memory), which is
  // exactly what makes a kill -9 invisible in the final result.
  std::vector<std::pair<std::size_t, SweepPoint>> merged;
  merged.reserve(n_points);
  std::vector<char> seen(n_points, 0);
  for (std::size_t r = 0; r < n_ranges; ++r) {
    const std::string path = range_journal_path(config.journal, r);
    const SweepJournalContents contents = SweepJournal::load(path);
    if (!contents.has_header || contents.header != header) {
      throw std::runtime_error("run_sharded_sweep: range journal '" + path +
                               "' lost its header during the run");
    }
    for (const auto& [index, point] : contents.points) {
      if (seen[index] == 0) merged.emplace_back(index, point);
      seen[index] = 1;
      result.points[index] = point; // duplicates: last occurrence wins
    }
  }
  for (std::size_t i = 0; i < n_points; ++i) {
    if (seen[i] == 0) {
      throw std::runtime_error(
          "run_sharded_sweep: merged journals are missing point " +
          std::to_string(i) + " although every range completed");
    }
  }
  // Publish the merged journal (sorted by index) and drop the range files.
  std::sort(merged.begin(), merged.end(),
            [](const auto& a, const auto& b2) { return a.first < b2.first; });
  for (auto& [index, point] : merged) point = result.points[index];
  SweepJournal::write_merged(config.journal, header, merged);
  for (std::size_t r = 0; r < n_ranges; ++r) {
    (void)::unlink(range_journal_path(config.journal, r).c_str());
  }

  if (report != nullptr) *report = local_report;
  return result;
}

} // namespace sdcgmres::experiment
