#include "solver/registry.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "gen/circuit.hpp"
#include "gen/convection_diffusion.hpp"
#include "gen/poisson.hpp"
#include "gen/random_sparse.hpp"
#include "krylov/ilu0.hpp"
#include "krylov/operator.hpp"
#include "sparse/analysis.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/norms.hpp"

namespace sdcgmres::solver {

namespace {

using experiment::ScenarioSpec;

/// Parse an inline registry argument as a number, with the registry key
/// named in the error.
double arg_double(const std::string& arg, const char* what, double dflt) {
  if (arg.empty()) return dflt;
  try {
    std::size_t pos = 0;
    const double v = std::stod(arg, &pos);
    if (pos != arg.size()) throw std::invalid_argument(arg);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("registry: argument '") + arg +
                                "' of '" + what + "' is not a number");
  }
}

std::size_t arg_size(const std::string& arg, const char* what,
                     std::size_t dflt) {
  const double v = arg_double(arg, what, static_cast<double>(dflt));
  if (v < 0.0 || v != std::floor(v)) {
    throw std::invalid_argument(std::string("registry: argument '") + arg +
                                "' of '" + what +
                                "' is not a non-negative integer");
  }
  return static_cast<std::size_t>(v);
}

/// Reject a stray inline argument on an entry that takes none:
/// `solver=gmres:50` or `precond=jacobi:3` silently building an
/// unconfigured object would misattribute experiment results.
void no_arg(const std::string& arg, const char* what) {
  if (!arg.empty()) {
    throw std::invalid_argument(std::string("registry: '") + what +
                                "' takes no inline ':" + arg +
                                "' argument");
  }
}

/// Inline arg wins over the spec key `n`, which wins over the default --
/// so `matrix=poisson:100` and `matrix=poisson n=100` are equivalent.
std::size_t size_param(const std::string& arg, const ScenarioSpec& spec,
                       const char* what, const char* key, std::size_t dflt) {
  return arg.empty() ? spec.get_size(key, dflt) : arg_size(arg, what, dflt);
}

/// Owns the CsrOperator the Neumann polynomial applies; the registry
/// returns preconditioners keyed to a caller-owned CSR matrix, so the
/// operator wrapper must travel with the preconditioner.
class OwningNeumannPreconditioner final : public krylov::Preconditioner {
public:
  OwningNeumannPreconditioner(const sparse::CsrMatrix& A, std::size_t degree,
                              double omega)
      : op_(A), inner_(op_, degree, omega) {}

  using krylov::Preconditioner::apply;
  void apply(std::span<const double> r, std::span<double> z) const override {
    inner_.apply(r, z);
  }

private:
  krylov::CsrOperator op_;
  krylov::NeumannPolynomialPreconditioner inner_;
};

} // namespace

// ---------------------------------------------------------------------------
// Matrix sources
// ---------------------------------------------------------------------------

Registry<sparse::CsrMatrix(const ScenarioSpec&)>& matrix_registry() {
  static auto* reg = [] {
    auto* r = new Registry<sparse::CsrMatrix(const ScenarioSpec&)>("matrix");
    r->add("poisson", [](const std::string& arg, const ScenarioSpec& spec) {
      return gen::poisson2d(size_param(arg, spec, "poisson", "n", 40));
    });
    r->add("poisson1d", [](const std::string& arg, const ScenarioSpec& spec) {
      return gen::poisson1d(size_param(arg, spec, "poisson1d", "n", 1000));
    });
    r->add("poisson3d", [](const std::string& arg, const ScenarioSpec& spec) {
      return gen::poisson3d(size_param(arg, spec, "poisson3d", "n", 12));
    });
    r->add("aniso", [](const std::string& arg, const ScenarioSpec& spec) {
      return gen::anisotropic2d(size_param(arg, spec, "aniso", "n", 40),
                                spec.get_double("eps_x", 1.0),
                                spec.get_double("eps_y", 1e-2));
    });
    r->add("convdiff", [](const std::string& arg, const ScenarioSpec& spec) {
      return gen::convection_diffusion2d(
          size_param(arg, spec, "convdiff", "n", 40),
          spec.get_double("beta_x", 20.0), spec.get_double("beta_y", 10.0));
    });
    r->add("circuit", [](const std::string& arg, const ScenarioSpec& spec) {
      gen::CircuitOptions opts;
      opts.nodes = arg.empty() ? spec.get_size("nodes", 2000)
                               : arg_size(arg, "circuit", 2000);
      if (spec.has("seed")) {
        opts.seed = static_cast<unsigned>(spec.get_size("seed", opts.seed));
      }
      return gen::circuit_like(opts);
    });
    r->add("random", [](const std::string& arg, const ScenarioSpec& spec) {
      return gen::random_diag_dominant(
          size_param(arg, spec, "random", "n", 500),
          static_cast<unsigned>(spec.get_size("seed", 42)));
    });
    r->add("spd", [](const std::string& arg, const ScenarioSpec& spec) {
      return gen::random_spd(size_param(arg, spec, "spd", "n", 500),
                             static_cast<unsigned>(spec.get_size("seed", 42)));
    });
    r->add("mtx", [](const std::string& arg, const ScenarioSpec& spec) {
      const std::string path = !arg.empty() ? arg : spec.get("path");
      if (path.empty()) {
        throw std::invalid_argument(
            "matrix 'mtx' needs a file path: mtx:<path> (or path=<path>)");
      }
      return sparse::read_matrix_market_file(path);
    });
    return r;
  }();
  return *reg;
}

// ---------------------------------------------------------------------------
// Preconditioners
// ---------------------------------------------------------------------------

Registry<std::unique_ptr<krylov::Preconditioner>(const sparse::CsrMatrix&,
                                                 const ScenarioSpec&)>&
preconditioner_registry() {
  static auto* reg = [] {
    auto* r = new Registry<std::unique_ptr<krylov::Preconditioner>(
        const sparse::CsrMatrix&, const ScenarioSpec&)>("preconditioner");
    r->add("none", [](const std::string& arg, const sparse::CsrMatrix&,
                      const ScenarioSpec&)
               -> std::unique_ptr<krylov::Preconditioner> {
      no_arg(arg, "none");
      return nullptr;
    });
    r->add("jacobi", [](const std::string& arg, const sparse::CsrMatrix& A,
                        const ScenarioSpec&)
               -> std::unique_ptr<krylov::Preconditioner> {
      no_arg(arg, "jacobi");
      return std::make_unique<krylov::JacobiPreconditioner>(A);
    });
    r->add("ilu0", [](const std::string& arg, const sparse::CsrMatrix& A,
                      const ScenarioSpec&)
               -> std::unique_ptr<krylov::Preconditioner> {
      no_arg(arg, "ilu0");
      return std::make_unique<krylov::Ilu0Preconditioner>(A);
    });
    r->add("neumann", [](const std::string& arg, const sparse::CsrMatrix& A,
                         const ScenarioSpec& spec)
               -> std::unique_ptr<krylov::Preconditioner> {
      const std::size_t degree =
          arg.empty() ? spec.get_size("neumann_degree", 2)
                      : arg_size(arg, "neumann", 2);
      // 1/||A||_inf is a safe default omega (contraction of I - omega*A
      // for diagonally dominant A).
      const double norm = sparse::inf_norm(A);
      const double omega =
          spec.get_double("neumann_omega", norm > 0.0 ? 1.0 / norm : 1.0);
      return std::make_unique<OwningNeumannPreconditioner>(A, degree, omega);
    });
    return r;
  }();
  return *reg;
}

// ---------------------------------------------------------------------------
// Fault models
// ---------------------------------------------------------------------------

Registry<sdc::FaultModel(const ScenarioSpec&)>& fault_model_registry() {
  static auto* reg = [] {
    auto* r = new Registry<sdc::FaultModel(const ScenarioSpec&)>("fault model");
    r->add("none", [](const std::string& arg, const ScenarioSpec&) {
      no_arg(arg, "none");
      return sdc::FaultModel::scale(1.0); // identity; drivers skip injection
    });
    r->add("class1", [](const std::string& arg, const ScenarioSpec&) {
      no_arg(arg, "class1");
      return sdc::fault_classes::very_large();
    });
    r->add("class2", [](const std::string& arg, const ScenarioSpec&) {
      no_arg(arg, "class2");
      return sdc::fault_classes::slightly_smaller();
    });
    r->add("class3", [](const std::string& arg, const ScenarioSpec&) {
      no_arg(arg, "class3");
      return sdc::fault_classes::nearly_zero();
    });
    r->add("scale", [](const std::string& arg, const ScenarioSpec&) {
      return sdc::FaultModel::scale(arg_double(arg, "scale", 1e150));
    });
    r->add("set", [](const std::string& arg, const ScenarioSpec&) {
      return sdc::FaultModel::set_value(
          arg_double(arg, "set", std::numeric_limits<double>::quiet_NaN()));
    });
    r->add("add", [](const std::string& arg, const ScenarioSpec&) {
      return sdc::FaultModel::add_value(arg_double(arg, "add", 1.0));
    });
    r->add("bitflip", [](const std::string& arg, const ScenarioSpec&) {
      return sdc::FaultModel::bit_flip(
          static_cast<unsigned>(arg_size(arg, "bitflip", 62)));
    });
    return r;
  }();
  return *reg;
}

// ---------------------------------------------------------------------------
// Detectors
// ---------------------------------------------------------------------------

Registry<std::unique_ptr<sdc::HessenbergBoundDetector>(double,
                                                       const ScenarioSpec&)>&
detector_registry() {
  static auto* reg = [] {
    auto* r = new Registry<std::unique_ptr<sdc::HessenbergBoundDetector>(
        double, const ScenarioSpec&)>("detector");
    r->add("none",
           [](const std::string& arg, double, const ScenarioSpec&)
               -> std::unique_ptr<sdc::HessenbergBoundDetector> {
             no_arg(arg, "none");
             return nullptr;
           });
    r->add("bound", [](const std::string& arg, double default_bound,
                       const ScenarioSpec& spec)
               -> std::unique_ptr<sdc::HessenbergBoundDetector> {
      // Inline arg > `recovery` spec key > legacy `response` spec key.
      std::string response_name;
      if (!arg.empty()) {
        response_name = arg;
      } else if (spec.has("recovery")) {
        response_name = spec.get("recovery");
      } else {
        response_name = spec.get("response", "abort");
      }
      const sdc::DetectorResponse response =
          recovery_registry().make(response_name, spec);
      double bound = default_bound;
      if (const std::string text = spec.get("bound", "auto"); text != "auto") {
        bound = spec.get_double("bound", bound);
      }
      if (!(bound > 0.0)) {
        throw std::invalid_argument(
            "detector 'bound': the bound must be positive (pass bound=<num> "
            "or a positive default, e.g. ||A||_F)");
      }
      return std::make_unique<sdc::HessenbergBoundDetector>(bound, response);
    });
    return r;
  }();
  return *reg;
}

// ---------------------------------------------------------------------------
// Recovery modes
// ---------------------------------------------------------------------------

Registry<sdc::DetectorResponse(const ScenarioSpec&)>& recovery_registry() {
  static auto* reg = [] {
    auto* r =
        new Registry<sdc::DetectorResponse(const ScenarioSpec&)>("recovery mode");
    r->add("none", [](const std::string& arg, const ScenarioSpec&) {
      no_arg(arg, "none");
      return sdc::DetectorResponse::RecordOnly;
    });
    r->add("record", [](const std::string& arg, const ScenarioSpec&) {
      no_arg(arg, "record");
      return sdc::DetectorResponse::RecordOnly;
    });
    r->add("abort", [](const std::string& arg, const ScenarioSpec&) {
      no_arg(arg, "abort");
      return sdc::DetectorResponse::AbortSolve;
    });
    r->add("retry_reliable", [](const std::string& arg, const ScenarioSpec&) {
      no_arg(arg, "retry_reliable");
      return sdc::DetectorResponse::RetryReliable;
    });
    r->add("restart_outer", [](const std::string& arg, const ScenarioSpec&) {
      no_arg(arg, "restart_outer");
      return sdc::DetectorResponse::RestartOuter;
    });
    return r;
  }();
  return *reg;
}

// ---------------------------------------------------------------------------
// Solvers
// ---------------------------------------------------------------------------

Registry<std::unique_ptr<IterativeSolver>(const SolverContext&)>&
solver_registry() {
  static auto* reg = [] {
    auto* r = new Registry<std::unique_ptr<IterativeSolver>(
        const SolverContext&)>("solver");
    r->add("gmres", [](const std::string& arg, const SolverContext& ctx)
               -> std::unique_ptr<IterativeSolver> {
      no_arg(arg, "gmres");
      return std::make_unique<GmresSolver>(ctx.A, ctx.options);
    });
    r->add("fgmres", [](const std::string& arg, const SolverContext& ctx)
               -> std::unique_ptr<IterativeSolver> {
      no_arg(arg, "fgmres");
      return std::make_unique<FgmresSolver>(ctx.A, ctx.options, ctx.flexible);
    });
    r->add("ft_gmres", [](const std::string& arg, const SolverContext& ctx)
               -> std::unique_ptr<IterativeSolver> {
      no_arg(arg, "ft_gmres");
      return std::make_unique<FtGmresSolver>(ctx.A, ctx.options);
    });
    r->add("ft_gmres_batch", [](const std::string& arg,
                                const SolverContext& ctx)
               -> std::unique_ptr<IterativeSolver> {
      no_arg(arg, "ft_gmres_batch");
      return std::make_unique<BatchedFtGmresSolver>(ctx.A, ctx.options);
    });
    r->add("cg", [](const std::string& arg, const SolverContext& ctx)
               -> std::unique_ptr<IterativeSolver> {
      no_arg(arg, "cg");
      return std::make_unique<CgSolver>(ctx.A, ctx.options);
    });
    r->add("fcg", [](const std::string& arg, const SolverContext& ctx)
               -> std::unique_ptr<IterativeSolver> {
      no_arg(arg, "fcg");
      return std::make_unique<FcgSolver>(ctx.A, ctx.options, ctx.flexible);
    });
    r->add("ft_cg", [](const std::string& arg, const SolverContext& ctx)
               -> std::unique_ptr<IterativeSolver> {
      no_arg(arg, "ft_cg");
      return std::make_unique<FtCgSolver>(ctx.A, ctx.options);
    });
    return r;
  }();
  return *reg;
}

// ---------------------------------------------------------------------------
// Execution backends
// ---------------------------------------------------------------------------

namespace {

/// Parse `sell`'s inline geometry argument "C[:sigma]" (both decimal
/// integers, C in [1, 256], sigma >= 1).  Empty selects the defaults.
std::pair<std::size_t, std::size_t> parse_sell_geometry(
    const std::string& arg) {
  std::size_t chunk = sparse::SellMatrix::kDefaultChunk;
  std::size_t sigma = sparse::SellMatrix::kDefaultSigmaChunks;
  if (!arg.empty()) {
    const std::size_t colon = arg.find(':');
    const std::string c_str = arg.substr(0, colon);
    chunk = arg_size(c_str, "sell", 0);
    if (colon != std::string::npos) {
      sigma = arg_size(arg.substr(colon + 1), "sell", 0);
    }
  }
  if (chunk == 0 || chunk > sparse::SellMatrix::kMaxChunk) {
    throw std::invalid_argument(
        "registry: 'sell' chunk height C must be in [1, 256] "
        "(syntax: backend=sell:<C>[:<sigma>])");
  }
  if (sigma == 0) {
    throw std::invalid_argument(
        "registry: 'sell' sorting window sigma must be >= 1 chunk "
        "(syntax: backend=sell:<C>[:<sigma>])");
  }
  return {chunk, sigma};
}

/// The autotuner rule behind `backend=auto`: SELL pays off when rows
/// are wide enough to vectorize over (mean nnz/row) and regular enough
/// that padding stays cheap; otherwise keep CSR.  The thresholds are
/// deliberately simple and the full reasoning is recorded in the
/// decision string the report JSON surfaces.
constexpr double kAutoMinMeanRowLength = 4.0;
constexpr double kAutoMaxPaddingRatio = 1.25;

std::shared_ptr<const krylov::MatrixBackend>
autotune_backend(const sparse::CsrMatrix& A) {
  const sparse::RowLengthStats rls = sparse::row_length_stats(A);
  const double padding = sparse::sell_padding_ratio(
      A, sparse::SellMatrix::kDefaultChunk,
      sparse::SellMatrix::kDefaultSigmaChunks);
  const bool pick_sell =
      rls.mean >= kAutoMinMeanRowLength && padding <= kAutoMaxPaddingRatio;
  std::ostringstream why;
  why.precision(3);
  why << "auto: mean nnz/row " << rls.mean << ", row-length dispersion "
      << rls.dispersion() << ", sell:" << sparse::SellMatrix::kDefaultChunk
      << ':' << sparse::SellMatrix::kDefaultSigmaChunks << " padding "
      << padding << "x -> ";
  if (pick_sell) {
    why << "sell";
    return std::make_shared<krylov::SellBackend>(
        A, sparse::SellMatrix::kDefaultChunk,
        sparse::SellMatrix::kDefaultSigmaChunks, why.str());
  }
  why << "csr ("
      << (rls.mean < kAutoMinMeanRowLength ? "rows too short to vectorize over"
                                           : "padding overhead too high")
      << ")";
  return std::make_shared<krylov::CsrBackend>(why.str());
}

} // namespace

Registry<std::shared_ptr<const krylov::MatrixBackend>(
    const sparse::CsrMatrix&)>&
backend_registry() {
  static auto* reg = [] {
    auto* r = new Registry<std::shared_ptr<const krylov::MatrixBackend>(
        const sparse::CsrMatrix&)>("backend");
    r->add("csr",
           [](const std::string& arg, const sparse::CsrMatrix&)
               -> std::shared_ptr<const krylov::MatrixBackend> {
             no_arg(arg, "csr");
             return std::make_shared<krylov::CsrBackend>();
           });
    r->add("sell",
           [](const std::string& arg, const sparse::CsrMatrix& A)
               -> std::shared_ptr<const krylov::MatrixBackend> {
             const auto [chunk, sigma] = parse_sell_geometry(arg);
             return std::make_shared<krylov::SellBackend>(A, chunk, sigma);
           });
    r->add("auto",
           [](const std::string& arg, const sparse::CsrMatrix& A)
               -> std::shared_ptr<const krylov::MatrixBackend> {
             no_arg(arg, "auto");
             return autotune_backend(A);
           });
    return r;
  }();
  return *reg;
}

void validate_backend_key(std::string_view key) {
  backend_registry().require(key);
  const std::string k(key);
  const std::size_t colon = k.find(':');
  const std::string name = k.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? std::string() : k.substr(colon + 1);
  if (name == "sell") {
    (void)parse_sell_geometry(arg);
  } else if (name == "csr" || name == "auto") {
    no_arg(arg, name.c_str());
  }
}

} // namespace sdcgmres::solver
