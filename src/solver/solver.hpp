#pragma once
/// \file solver.hpp
/// \brief The unified solver façade: one polymorphic interface over the
/// whole Krylov lineup.
///
/// The free-function API grew one options/result family per solver
/// (gmres / fgmres / ft_gmres / cg / fcg / ft_cg), which forced every
/// experiment harness to hard-code its solver choice at compile time.
/// This façade collapses the five families into
///   * one solver::Options struct (translated exactly onto each native
///     options struct -- see the to_*_options functions),
///   * one SolveReport (status + histories + inner-solve records),
///   * one IterativeSolver interface with a span-in/span-out solve(b, x)
///     and a hook seam for the SDC framework.
/// Each adapter calls the corresponding free function (or its span core)
/// with a translated options struct and an internally owned reusable
/// workspace, so a façade solve is bitwise identical to the direct call
/// it wraps and allocation-free after the first solve of a given shape.
///
/// Solvers are also constructible by name through the string-keyed
/// registry in solver/registry.hpp.

#include <cstddef>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "krylov/cg.hpp"
#include "krylov/fcg.hpp"
#include "krylov/fgmres.hpp"
#include "krylov/ft_gmres.hpp"
#include "krylov/ft_gmres_batch.hpp"
#include "krylov/gmres.hpp"
#include "krylov/hooks.hpp"
#include "krylov/operator.hpp"
#include "krylov/precond.hpp"
#include "krylov/status.hpp"
#include "krylov/workspace.hpp"
#include "la/vector.hpp"

namespace sdcgmres::solver {

/// The merged terminal-state vocabulary (see krylov/status.hpp).
using SolveStatus = krylov::SolveStatus;
using krylov::is_success;
using krylov::to_string;

/// One configuration for every solver in the lineup.  Fields that do not
/// apply to a given solver are ignored by its adapter; optional fields
/// fall back to the solver's native default, so a default-constructed
/// Options reproduces each free function's default behaviour exactly.
struct Options {
  std::size_t max_iters = 0;  ///< outer/total iteration budget; 0 keeps the
                              ///< solver-native default (gmres 100,
                              ///< fgmres/ft_gmres 200, cg 1000, fcg 500)
  std::size_t restart = 0;    ///< GMRES restart cycle length (0 = none)
  double tol = 1e-8;          ///< relative residual target (vs ||b||)
  krylov::Orthogonalization ortho = krylov::Orthogonalization::MGS;
  std::optional<dense::LsqPolicy> lsq_policy; ///< projected-solve policy;
                              ///< unset keeps the native default (GMRES:
                              ///< Standard, FGMRES family: RankRevealing)
  double truncation_tol = 1e-12; ///< SVD cutoff for rank-revealing policies
  std::optional<double> breakdown_tol; ///< happy-breakdown threshold; unset
                              ///< keeps the native default (GMRES 1e-14,
                              ///< FGMRES 1e-12)
  double rank_tol = 1e-12;    ///< FGMRES rank-deficiency threshold
  bool rank_check_every_iteration = true; ///< FGMRES trichotomy maintenance
  bool sanitize_preconditioner_output = true; ///< reliable-phase Inf/NaN
                              ///< filter of the flexible solvers
  bool verify_with_explicit_residual = true;  ///< recompute b - A*x on
                              ///< estimated convergence
  std::size_t s_step = 1;     ///< s-step (communication-avoiding) block
                              ///< size of the GMRES Arnoldi loop: stage s
                              ///< matrix powers per block and pay ONE
                              ///< block projection + ONE TSQR (2 global
                              ///< reductions per s columns instead of
                              ///< O(s) per column).  1 = the classical
                              ///< path, bitwise identical to earlier
                              ///< releases.  Applies to gmres and, for
                              ///< the nested ft_gmres family, to the
                              ///< unreliable INNER solves (the reliable
                              ///< outer iteration stays classical).
                              ///< Rejected by solvers without an s-step
                              ///< path (fgmres/cg/fcg/ft_cg) when > 1.

  /// Optional fixed preconditioner (non-owning).  GMRES applies it on the
  /// right; CG directly; FGMRES/FCG wrap it in a FixedFlexibleAdapter.
  /// The nested solvers (ft_gmres/ft_cg) ignore it: their preconditioner
  /// IS the unreliable inner solve.
  const krylov::Preconditioner* precond = nullptr;

  // --- solve guards (gmres / fgmres family; 0 disables each) ---
  double deadline_seconds = 0.0;  ///< wall-clock budget: the (outer) solve
                              ///< stops with status DeadlineExceeded when
                              ///< a deadline passes between iterations
  double divergence_factor = 0.0; ///< residual-explosion guard: a residual
                              ///< estimate exceeding factor x the initial
                              ///< residual stops with status Diverged; in
                              ///< ft_gmres the same factor also guards the
                              ///< unreliable inner solves (where corrupted
                              ///< Hessenberg columns blow up the estimate)

  // --- nested solvers (ft_gmres / ft_cg) only ---
  std::size_t inner_iters = 25; ///< fixed-effort inner budget (paper: 25)
  double inner_tol = 0.0;       ///< 0 = fixed-iteration inner solves
  krylov::Orthogonalization inner_ortho = krylov::Orthogonalization::MGS;
  bool robust_first_inner = false; ///< CGS2 on the first inner solve
  krylov::InnerRecovery recovery = krylov::InnerRecovery::None;
                              ///< ft_gmres detector-triggered recovery
                              ///< policy (acts only on inner solves that
                              ///< end AbortedByDetector)
  krylov::Precision precision = krylov::Precision::Double;
                              ///< ft_gmres family: scalar of the inner-solve
                              ///< data plane (float = narrowed mirror; the
                              ///< outer iteration is always double)
  krylov::IndexWidth index_width = krylov::IndexWidth::I64;
                              ///< ft_gmres family: CSR index width of the
                              ///< inner-solve mirror (I32 halves index
                              ///< traffic, bitwise-identical arithmetic)
};

/// Exact translations onto the native options structs.  Exposed so tests
/// can verify the bitwise-identity contract: calling the free function
/// with to_X_options(o) must reproduce the façade solve exactly.
[[nodiscard]] krylov::GmresOptions to_gmres_options(const Options& o);
[[nodiscard]] krylov::FgmresOptions to_fgmres_options(const Options& o);
[[nodiscard]] krylov::FtGmresOptions to_ft_gmres_options(const Options& o);
[[nodiscard]] krylov::CgOptions to_cg_options(const Options& o);
[[nodiscard]] krylov::FcgOptions to_fcg_options(const Options& o);
[[nodiscard]] krylov::FtCgOptions to_ft_cg_options(const Options& o);

/// One result shape for every solver.  Fields that a solver does not
/// produce keep their zero defaults.
struct SolveReport {
  SolveStatus status = SolveStatus::MaxIterations;
  std::size_t iterations = 0; ///< outer iterations (nested/flexible) or
                              ///< total iterations (gmres/cg)
  std::size_t total_inner_iterations = 0; ///< nested solvers only
  std::size_t total_inner_applies = 0; ///< ft_gmres family: operator
                              ///< products consumed by the unreliable
                              ///< inner solves (the dominant matrix
                              ///< traffic; mode-independent, whether the
                              ///< products ran solo or lockstep-fused)
  double residual_norm = 0.0; ///< final residual (explicit where the
                              ///< underlying solver certifies explicitly)
  std::vector<double> residual_history; ///< per-(outer-)iteration estimates
  std::vector<krylov::InnerSolveRecord> inner_solves; ///< nested only
  std::size_t sanitized_outputs = 0; ///< flexible/nested: z_j replaced
  std::size_t lsq_effective_rank = 0;   ///< gmres only
  bool lsq_fallback_triggered = false;  ///< gmres only
  std::size_t rank_checks = 0;          ///< fgmres family
  double min_sigma_ratio = 1.0;         ///< fgmres family
  std::size_t reliable_retries = 0;     ///< ft_gmres: inner solves recomputed
                                        ///< reliably (recovery RetryReliable)
  std::size_t outer_restarts = 0;       ///< ft_gmres: outer cycles restarted
                                        ///< (recovery RestartOuter)
  std::size_t global_syncs = 0;         ///< global reductions (norms +
                                        ///< blocked inner-product passes)
                                        ///< the solve consumed; nested
                                        ///< solvers report outer + all
                                        ///< inner (see
                                        ///< krylov::GmresStats::global_syncs)

  /// Tolerance reached or invariant subspace found.
  [[nodiscard]] bool converged() const noexcept { return is_success(status); }
};

/// Polymorphic front door to the solver lineup.  Implementations are
/// adapters over the free-function solvers; they are cheap to construct
/// (non-owning view of the operator) and own their reusable workspace, so
/// one instance solved repeatedly (a sweep worker, a server handling a
/// stream of right-hand sides) allocates only on its first solve.
///
/// Not thread-safe: one instance per thread, like the workspaces it owns.
class IterativeSolver {
public:
  virtual ~IterativeSolver() = default;

  /// Registry key of this solver ("gmres", "ft_gmres", ...).
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Dimension of the underlying operator.
  [[nodiscard]] virtual std::size_t dimension() const noexcept = 0;

  /// Solve A x = b.  On entry \p x holds the initial guess (the nested
  /// solvers ft_gmres/ft_cg follow the paper's protocol and always start
  /// from zero, overwriting \p x); on exit it holds the final iterate.
  /// Both spans must have size dimension().
  virtual SolveReport solve(std::span<const double> b, std::span<double> x) = 0;

  /// Convenience: zero initial guess, owning result.
  [[nodiscard]] la::Vector solve(const la::Vector& b,
                                 SolveReport* report = nullptr);

  /// True when this solver has an Arnoldi hook seam (fault injection /
  /// detection): gmres observes its own iteration, the nested solvers
  /// expose their unreliable inner solves.
  [[nodiscard]] virtual bool supports_hooks() const noexcept { return false; }

  /// Attach \p hook to the solver's seam (nullptr detaches).  Throws
  /// std::invalid_argument when the solver has no seam -- silently
  /// dropping a fault campaign would corrupt an experiment.
  virtual void set_hook(krylov::ArnoldiHook* hook);

  /// Drop the internally owned workspace arenas (they regrow on the next
  /// solve).  Useful between problems of very different size.
  virtual void release_workspace() {}
};

/// GMRES (Algorithm 1), with restart and optional right preconditioner.
class GmresSolver final : public IterativeSolver {
public:
  explicit GmresSolver(const krylov::LinearOperator& A,
                       const Options& opts = {});

  [[nodiscard]] std::string_view name() const noexcept override {
    return "gmres";
  }
  [[nodiscard]] std::size_t dimension() const noexcept override {
    return a_->rows();
  }
  using IterativeSolver::solve;
  SolveReport solve(std::span<const double> b, std::span<double> x) override;
  [[nodiscard]] bool supports_hooks() const noexcept override { return true; }
  void set_hook(krylov::ArnoldiHook* hook) override { hook_ = hook; }
  void release_workspace() override { ws_ = {}; }

private:
  const krylov::LinearOperator* a_;
  krylov::GmresOptions opts_;
  krylov::ArnoldiHook* hook_ = nullptr;
  krylov::KrylovWorkspace ws_;
};

/// FGMRES (Algorithm 2) with a caller-supplied flexible preconditioner,
/// or a fixed one (Options::precond / identity) wrapped on the fly.
class FgmresSolver final : public IterativeSolver {
public:
  /// \param M flexible preconditioner applied each outer iteration; when
  ///        nullptr, Options::precond (or the identity) is wrapped in a
  ///        FixedFlexibleAdapter.
  explicit FgmresSolver(const krylov::LinearOperator& A,
                        const Options& opts = {},
                        krylov::FlexiblePreconditioner* M = nullptr);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "fgmres";
  }
  [[nodiscard]] std::size_t dimension() const noexcept override {
    return a_->rows();
  }
  using IterativeSolver::solve;
  SolveReport solve(std::span<const double> b, std::span<double> x) override;
  void release_workspace() override { ws_ = {}; }

private:
  const krylov::LinearOperator* a_;
  krylov::FgmresOptions opts_;
  krylov::FlexiblePreconditioner* m_;
  krylov::IdentityPreconditioner identity_;
  krylov::FixedFlexibleAdapter fixed_adapter_;
  krylov::KrylovWorkspace ws_;
  la::Vector b_scratch_, x_scratch_;
};

/// FT-GMRES: reliable FGMRES outer + unreliable fixed-effort GMRES inner
/// (the paper's nested solver).  The hook seam observes/corrupts the
/// inner solves only.
class FtGmresSolver final : public IterativeSolver {
public:
  explicit FtGmresSolver(const krylov::LinearOperator& A,
                         const Options& opts = {});
  /// Adapter over an already-translated native options struct (the sweep
  /// engine's path: SweepConfig carries krylov::FtGmresOptions).
  FtGmresSolver(const krylov::LinearOperator& A,
                const krylov::FtGmresOptions& opts);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "ft_gmres";
  }
  [[nodiscard]] std::size_t dimension() const noexcept override {
    return a_->rows();
  }
  using IterativeSolver::solve;
  SolveReport solve(std::span<const double> b, std::span<double> x) override;
  [[nodiscard]] bool supports_hooks() const noexcept override { return true; }
  void set_hook(krylov::ArnoldiHook* hook) override { hook_ = hook; }
  void release_workspace() override { ws_ = {}; }

  /// Traffic counters of the narrowed inner-plane mirror (zero when the
  /// configuration is the default double/int64 -- no mirror exists).
  /// The original operator's own stats() keep counting the reliable
  /// outer products; totals are the sum of both.
  [[nodiscard]] krylov::OperatorStats mixed_stats() const noexcept;

private:
  const krylov::LinearOperator* a_;
  krylov::FtGmresOptions opts_;
  krylov::ArnoldiHook* hook_ = nullptr;
  krylov::FtGmresWorkspace ws_;
  la::Vector b_scratch_;
};

/// Multi-RHS FT-GMRES (registry key "ft_gmres_batch"): B independent
/// nested solves advanced in lockstep so the B reliable-phase operator
/// applications of each outer iteration fuse into one apply_block/SpMM
/// (krylov::ft_gmres_batch).  Every instance's iterate stream is bitwise
/// identical to its FtGmresSolver solo run; instances that terminate
/// early drop out of the block without perturbing the others.
///
/// The single-rhs IterativeSolver::solve() runs a batch of one (also
/// bitwise identical to FtGmresSolver), so the solver is a drop-in
/// registry citizen; the batch entry point is solve_batch().
class BatchedFtGmresSolver final : public IterativeSolver {
public:
  explicit BatchedFtGmresSolver(const krylov::LinearOperator& A,
                                const Options& opts = {});
  /// Adapter over an already-translated native options struct (the sweep
  /// engine's path: SweepConfig carries krylov::FtGmresOptions).
  BatchedFtGmresSolver(const krylov::LinearOperator& A,
                       const krylov::FtGmresOptions& opts);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "ft_gmres_batch";
  }
  [[nodiscard]] std::size_t dimension() const noexcept override {
    return a_->rows();
  }
  using IterativeSolver::solve;
  SolveReport solve(std::span<const double> b, std::span<double> x) override;
  [[nodiscard]] bool supports_hooks() const noexcept override { return true; }
  void set_hook(krylov::ArnoldiHook* hook) override { hook_ = hook; }
  void release_workspace() override { ws_ = {}; }

  /// Solve A x_i = b_i for all right-hand sides in lockstep (zero initial
  /// guesses, the nested-solver protocol).  \p bs and \p xs must match in
  /// size, each span of size dimension(); \p inner_hooks is empty or one
  /// (possibly null) hook per instance observing that instance's
  /// unreliable inner solves.  Batch fault campaigns are per-instance by
  /// construction, so a hook installed via the single-solve set_hook()
  /// seam does NOT apply here: calling solve_batch with such a hook
  /// installed but no inner_hooks throws std::invalid_argument (silently
  /// dropping a campaign would corrupt an experiment).
  std::vector<SolveReport> solve_batch(
      std::span<const std::span<const double>> bs,
      std::span<const std::span<double>> xs,
      std::span<krylov::ArnoldiHook* const> inner_hooks = {});

  /// Traffic counters of the narrowed inner-plane mirror shared by the
  /// batch (zero on the default double/int64 configuration).
  [[nodiscard]] krylov::OperatorStats mixed_stats() const noexcept;

private:
  const krylov::LinearOperator* a_;
  krylov::FtGmresOptions opts_;
  krylov::ArnoldiHook* hook_ = nullptr;
  krylov::FtGmresBatchWorkspace ws_;
};

/// Conjugate Gradient (the SPD baseline).
class CgSolver final : public IterativeSolver {
public:
  explicit CgSolver(const krylov::LinearOperator& A, const Options& opts = {});

  [[nodiscard]] std::string_view name() const noexcept override {
    return "cg";
  }
  [[nodiscard]] std::size_t dimension() const noexcept override {
    return a_->rows();
  }
  using IterativeSolver::solve;
  SolveReport solve(std::span<const double> b, std::span<double> x) override;

private:
  const krylov::LinearOperator* a_;
  krylov::CgOptions opts_;
  la::Vector b_scratch_, x_scratch_;
};

/// Flexible CG (Notay's beta), SPD systems with a varying preconditioner.
class FcgSolver final : public IterativeSolver {
public:
  /// \param M flexible preconditioner; nullptr wraps Options::precond (or
  ///        the identity), as for FgmresSolver.
  explicit FcgSolver(const krylov::LinearOperator& A, const Options& opts = {},
                     krylov::FlexiblePreconditioner* M = nullptr);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "fcg";
  }
  [[nodiscard]] std::size_t dimension() const noexcept override {
    return a_->rows();
  }
  using IterativeSolver::solve;
  SolveReport solve(std::span<const double> b, std::span<double> x) override;

private:
  const krylov::LinearOperator* a_;
  krylov::FcgOptions opts_;
  krylov::FlexiblePreconditioner* m_;
  krylov::IdentityPreconditioner identity_;
  krylov::FixedFlexibleAdapter fixed_adapter_;
  la::Vector b_scratch_, x_scratch_;
};

/// FT-CG: reliable FCG outer + unreliable inner GMRES (the paper's
/// Section VI-A "future work" solver).  Requires SPD A.
class FtCgSolver final : public IterativeSolver {
public:
  explicit FtCgSolver(const krylov::LinearOperator& A,
                      const Options& opts = {});

  [[nodiscard]] std::string_view name() const noexcept override {
    return "ft_cg";
  }
  [[nodiscard]] std::size_t dimension() const noexcept override {
    return a_->rows();
  }
  using IterativeSolver::solve;
  SolveReport solve(std::span<const double> b, std::span<double> x) override;
  [[nodiscard]] bool supports_hooks() const noexcept override { return true; }
  void set_hook(krylov::ArnoldiHook* hook) override { hook_ = hook; }

private:
  const krylov::LinearOperator* a_;
  krylov::FtCgOptions opts_;
  krylov::ArnoldiHook* hook_ = nullptr;
  la::Vector b_scratch_;
};

} // namespace sdcgmres::solver
