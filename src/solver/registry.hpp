#pragma once
/// \file registry.hpp
/// \brief String-keyed factory registries for every scenario axis.
///
/// The paper's experiment grid is {solver} x {preconditioner} x {matrix}
/// x {fault model} x {detector}; these registries make each axis
/// addressable by name, so a whole scenario is a spec string instead of a
/// bespoke .cpp file.  Keys accept an inline argument after a colon
/// (`mtx:/path/to.mtx`, `scale:1e150`, `neumann:3`); named parameters
/// come from the accompanying experiment::ScenarioSpec.
///
/// Unknown names throw std::invalid_argument whose message lists the
/// registered keys.  The registries are mutable singletons: applications
/// can add their own operators, preconditioners, generators, fault
/// models, or solvers next to the built-ins.
///
/// Built-in keys:
///   solvers:          gmres fgmres ft_gmres ft_gmres_batch cg fcg ft_cg
///   preconditioners:  none jacobi ilu0 neumann[:degree]
///   matrices:         poisson[:n] poisson1d[:n] poisson3d[:n] aniso[:n]
///                     convdiff[:n] circuit[:nodes] random[:n] spd[:n]
///                     mtx:<path>
///   fault models:     none class1 class2 class3 scale[:factor]
///                     set[:value] add[:offset] bitflip[:bit]
///   detectors:        none bound[:<recovery mode>]
///   recovery modes:   none record abort retry_reliable restart_outer
///   backends:         csr sell[:<C>[:<sigma>]] auto

#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "experiment/scenario_spec.hpp"
#include "krylov/backend.hpp"
#include "krylov/precond.hpp"
#include "sdc/detector.hpp"
#include "sdc/fault_model.hpp"
#include "solver/solver.hpp"
#include "sparse/csr.hpp"

namespace sdcgmres::solver {

/// A string-keyed factory table.  `make("name:arg", ...)` splits the key
/// at the first colon and hands the factory the inline argument (empty
/// when absent) plus the caller's fixed arguments.
template <class Signature> class Registry;

template <class R, class... Args>
class Registry<R(Args...)> {
public:
  using Factory = std::function<R(const std::string& arg, Args... args)>;

  /// \param what axis name used in error messages ("solver", "matrix", ...)
  explicit Registry(std::string what) : what_(std::move(what)) {}

  /// Register \p factory under \p name (replaces an existing entry).
  void add(std::string name, Factory factory) {
    map_[std::move(name)] = std::move(factory);
  }

  /// True when the (pre-colon) name is registered.
  [[nodiscard]] bool contains(std::string_view key) const {
    return map_.find(split(key).first) != map_.end();
  }

  /// Validate the (pre-colon) name of \p key without invoking a factory:
  /// throws the same unknown-key std::invalid_argument make() would.
  /// For spec validation paths that do not yet hold the factory's fixed
  /// arguments (e.g. `backend=` names checked before the matrix exists).
  void require(std::string_view key) const {
    const auto [name, arg] = split(key);
    if (map_.find(name) == map_.end()) throw_unknown(name);
  }

  /// Construct the entry named by \p key.  Throws std::invalid_argument
  /// listing the registered keys when the name is unknown.
  [[nodiscard]] R make(std::string_view key, Args... args) const {
    const auto [name, arg] = split(key);
    const auto it = map_.find(name);
    if (it == map_.end()) throw_unknown(name);
    return it->second(arg, args...);
  }

  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> keys() const {
    std::vector<std::string> out;
    out.reserve(map_.size());
    for (const auto& [k, f] : map_) out.push_back(k);
    return out;
  }

private:
  [[noreturn]] void throw_unknown(const std::string& name) const {
    std::ostringstream msg;
    msg << "unknown " << what_ << " '" << name << "'; available " << what_
        << "s:";
    for (const auto& [k, f] : map_) msg << ' ' << k;
    throw std::invalid_argument(msg.str());
  }

  [[nodiscard]] static std::pair<std::string, std::string>
  split(std::string_view key) {
    const std::size_t colon = key.find(':');
    if (colon == std::string_view::npos) {
      return {std::string(key), std::string()};
    }
    return {std::string(key.substr(0, colon)),
            std::string(key.substr(colon + 1))};
  }

  std::string what_;
  std::map<std::string, Factory, std::less<>> map_;
};

/// Everything a solver factory needs to assemble an IterativeSolver.
struct SolverContext {
  const krylov::LinearOperator& A;     ///< system operator (non-owning)
  Options options;                     ///< shared façade options
  krylov::FlexiblePreconditioner* flexible = nullptr; ///< optional flexible
                                       ///< preconditioner (fgmres/fcg);
                                       ///< fixed ones go in options.precond
};

/// Matrix sources: spec params `n` (grid/size), `nodes`, `seed`,
/// `beta_x`/`beta_y` (convdiff), `eps_x`/`eps_y` (aniso).
[[nodiscard]] Registry<sparse::CsrMatrix(const experiment::ScenarioSpec&)>&
matrix_registry();

/// Preconditioners built on a CSR matrix; "none" yields nullptr.  Spec
/// params `neumann_degree`, `neumann_omega`.
[[nodiscard]] Registry<std::unique_ptr<krylov::Preconditioner>(
    const sparse::CsrMatrix&, const experiment::ScenarioSpec&)>&
preconditioner_registry();

/// Fault models; every key has a usable bare default (scale -> 1e150,
/// set -> NaN, add -> 1.0, bitflip -> bit 62); "none" yields the identity
/// corruption (scale by 1.0) -- scenario drivers skip injection entirely
/// for it.
[[nodiscard]] Registry<sdc::FaultModel(const experiment::ScenarioSpec&)>&
fault_model_registry();

/// Detectors; "none" yields nullptr.  `bound` reads the threshold from
/// spec key `bound` ("auto" or absent uses \p default_bound, the caller's
/// ||A||_F) and the response from the inline arg, the `recovery` spec
/// key, or the legacy `response` spec key, in that order (a recovery_registry
/// name; default abort).
[[nodiscard]] Registry<std::unique_ptr<sdc::HessenbergBoundDetector>(
    double default_bound, const experiment::ScenarioSpec&)>&
detector_registry();

/// Recovery modes: what a firing detector does to the solve.  `none` and
/// `record` observe only; `abort` discards the flagged inner result;
/// `retry_reliable` re-runs the flagged inner solve with injection
/// disabled; `restart_outer` discards the poisoned outer basis and
/// restarts the outer cycle from the current iterate.
[[nodiscard]] Registry<sdc::DetectorResponse(const experiment::ScenarioSpec&)>&
recovery_registry();

/// Solver adapters over the façade (solver/solver.hpp).
[[nodiscard]] Registry<std::unique_ptr<IterativeSolver>(const SolverContext&)>&
solver_registry();

/// Matrix execution backends (the `backend=` scenario key): `csr` (the
/// default, streams the source matrix), `sell[:<C>[:<sigma>]]`
/// (SELL-C-sigma with chunk height C, default 8, and a sorting window
/// of sigma chunks, default 1), and `auto` (the format autotuner: picks
/// csr or sell from row-length statistics and records its reasoning in
/// MatrixBackend::decision()).  Factories assemble the backend for the
/// given matrix; assembly is shared via shared_ptr so one structure
/// serves a whole sweep and the service cache.
[[nodiscard]] Registry<std::shared_ptr<const krylov::MatrixBackend>(
    const sparse::CsrMatrix&)>&
backend_registry();

/// Fully validate a `backend=` key WITHOUT a matrix: unknown names
/// throw the registry's key-listing error, and sell geometry arguments
/// are parsed (so `sell:0` or `sell:x` fail at spec-validation time,
/// before any assembly or solve work).
void validate_backend_key(std::string_view key);

} // namespace sdcgmres::solver
