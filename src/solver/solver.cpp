#include "solver/solver.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "krylov/mixed.hpp"

namespace sdcgmres::solver {

namespace {

void check_sizes(const IterativeSolver& s, std::span<const double> b,
                 std::span<double> x) {
  if (b.size() != s.dimension() || x.size() != s.dimension()) {
    throw std::invalid_argument(std::string(s.name()) +
                                ": b/x size must equal dimension()");
  }
}

void copy_in(std::span<const double> src, la::Vector& dst) {
  if (dst.size() != src.size()) dst.resize(src.size());
  std::copy(src.begin(), src.end(), dst.data());
}

void copy_out(const la::Vector& src, std::span<double> dst) {
  std::copy(src.data(), src.data() + src.size(), dst.begin());
}

/// Solvers without an s-step path reject s_step > 1 up front (the same
/// philosophy as the hookless set_hook: silently running the classical
/// path under an s-step configuration would misattribute sync counts).
void reject_s_step(const Options& o, const char* family) {
  if (o.s_step > 1) {
    throw std::invalid_argument(
        std::string(family) +
        ": s_step > 1 is not supported by this solver family; s-step "
        "execution is available in gmres, ft_gmres, and ft_gmres_batch");
  }
}

} // namespace

// ---------------------------------------------------------------------------
// Options translation
// ---------------------------------------------------------------------------

krylov::GmresOptions to_gmres_options(const Options& o) {
  krylov::GmresOptions g;
  if (o.max_iters != 0) g.max_iters = o.max_iters;
  g.restart = o.restart;
  g.tol = o.tol;
  g.ortho = o.ortho;
  g.lsq_policy = o.lsq_policy.value_or(g.lsq_policy);
  g.truncation_tol = o.truncation_tol;
  g.breakdown_tol = o.breakdown_tol.value_or(g.breakdown_tol);
  g.right_precond = o.precond;
  g.divergence_factor = o.divergence_factor;
  g.s_step = o.s_step;
  return g;
}

krylov::FgmresOptions to_fgmres_options(const Options& o) {
  krylov::FgmresOptions f;
  if (o.max_iters != 0) f.max_outer = o.max_iters;
  f.tol = o.tol;
  f.ortho = o.ortho;
  f.lsq_policy = o.lsq_policy.value_or(f.lsq_policy);
  f.truncation_tol = o.truncation_tol;
  f.breakdown_tol = o.breakdown_tol.value_or(f.breakdown_tol);
  f.rank_tol = o.rank_tol;
  f.rank_check_every_iteration = o.rank_check_every_iteration;
  f.sanitize_preconditioner_output = o.sanitize_preconditioner_output;
  f.verify_with_explicit_residual = o.verify_with_explicit_residual;
  f.deadline_seconds = o.deadline_seconds;
  f.divergence_factor = o.divergence_factor;
  return f;
}

krylov::FtGmresOptions to_ft_gmres_options(const Options& o) {
  krylov::FtGmresOptions ft; // ctor: 25 fixed inner iterations, tol 0
  ft.outer = to_fgmres_options(o);
  ft.inner.max_iters = o.inner_iters;
  ft.inner.tol = o.inner_tol;
  ft.inner.ortho = o.inner_ortho;
  ft.inner.lsq_policy =
      o.lsq_policy.value_or(krylov::GmresOptions{}.lsq_policy);
  ft.inner.truncation_tol = o.truncation_tol;
  ft.inner.breakdown_tol =
      o.breakdown_tol.value_or(krylov::GmresOptions{}.breakdown_tol);
  // The divergence guard bites mostly in the unreliable inner solves,
  // where a corrupted Hessenberg column explodes the lsq estimate; the
  // outer FGMRES estimate is monotone, so its guard is a backstop.
  ft.inner.divergence_factor = o.divergence_factor;
  // The s-step reformulation lives in the unreliable inner solves (the
  // sync-dominant work: ~25/26 of all reductions at the paper's fixed 25
  // inner iterations); the reliable outer FGMRES stays classical.
  ft.inner.s_step = o.s_step;
  ft.robust_first_inner = o.robust_first_inner;
  ft.recovery = o.recovery;
  ft.precision = o.precision;
  ft.index_width = o.index_width;
  return ft;
}

krylov::CgOptions to_cg_options(const Options& o) {
  krylov::CgOptions c;
  if (o.max_iters != 0) c.max_iters = o.max_iters;
  c.tol = o.tol;
  c.precond = o.precond;
  return c;
}

krylov::FcgOptions to_fcg_options(const Options& o) {
  krylov::FcgOptions f;
  if (o.max_iters != 0) f.max_outer = o.max_iters;
  f.tol = o.tol;
  f.sanitize_preconditioner_output = o.sanitize_preconditioner_output;
  f.verify_with_explicit_residual = o.verify_with_explicit_residual;
  return f;
}

krylov::FtCgOptions to_ft_cg_options(const Options& o) {
  krylov::FtCgOptions ft; // ctor: 25 fixed inner iterations, tol 0
  ft.outer = to_fcg_options(o);
  ft.inner.max_iters = o.inner_iters;
  ft.inner.tol = o.inner_tol;
  ft.inner.ortho = o.inner_ortho;
  ft.inner.lsq_policy =
      o.lsq_policy.value_or(krylov::GmresOptions{}.lsq_policy);
  ft.inner.truncation_tol = o.truncation_tol;
  ft.inner.breakdown_tol =
      o.breakdown_tol.value_or(krylov::GmresOptions{}.breakdown_tol);
  return ft;
}

// ---------------------------------------------------------------------------
// IterativeSolver
// ---------------------------------------------------------------------------

la::Vector IterativeSolver::solve(const la::Vector& b, SolveReport* report) {
  la::Vector x(dimension());
  SolveReport r = solve(b.span(), x.span());
  if (report != nullptr) *report = std::move(r);
  return x;
}

void IterativeSolver::set_hook(krylov::ArnoldiHook* hook) {
  if (hook != nullptr) {
    throw std::invalid_argument(
        std::string("solver '") + std::string(name()) +
        "' has no hook seam (fault campaigns/detectors would be silently "
        "ignored); use gmres, ft_gmres, or ft_cg");
  }
}

// ---------------------------------------------------------------------------
// GmresSolver
// ---------------------------------------------------------------------------

GmresSolver::GmresSolver(const krylov::LinearOperator& A, const Options& opts)
    : a_(&A), opts_(to_gmres_options(opts)) {}

SolveReport GmresSolver::solve(std::span<const double> b,
                               std::span<double> x) {
  check_sizes(*this, b, x);
  SolveReport r;
  r.residual_history.reserve(opts_.max_iters);
  const krylov::GmresStats stats = krylov::gmres_in_place(
      *a_, b, x, opts_, hook_, /*solve_index=*/0, &ws_, &r.residual_history);
  r.status = stats.status;
  r.iterations = stats.iterations;
  r.residual_norm = stats.residual_norm;
  r.lsq_effective_rank = stats.lsq_effective_rank;
  r.lsq_fallback_triggered = stats.lsq_fallback_triggered;
  r.global_syncs = stats.global_syncs;
  return r;
}

// ---------------------------------------------------------------------------
// FgmresSolver
// ---------------------------------------------------------------------------

FgmresSolver::FgmresSolver(const krylov::LinearOperator& A,
                           const Options& opts,
                           krylov::FlexiblePreconditioner* M)
    : a_(&A), opts_((reject_s_step(opts, "fgmres"), to_fgmres_options(opts))),
      fixed_adapter_(opts.precond != nullptr
                         ? *opts.precond
                         : static_cast<const krylov::Preconditioner&>(
                               identity_)) {
  m_ = (M != nullptr) ? M : &fixed_adapter_;
}

SolveReport FgmresSolver::solve(std::span<const double> b,
                                std::span<double> x) {
  check_sizes(*this, b, x);
  copy_in(b, b_scratch_);
  copy_in(x, x_scratch_);
  krylov::FgmresResult res =
      krylov::fgmres(*a_, b_scratch_, x_scratch_, opts_, *m_, &ws_);
  copy_out(res.x, x);
  SolveReport r;
  r.status = res.status;
  r.iterations = res.outer_iterations;
  r.residual_norm = res.residual_norm;
  r.residual_history = std::move(res.residual_history);
  r.sanitized_outputs = res.sanitized_outputs;
  r.rank_checks = res.rank_checks;
  r.min_sigma_ratio = res.min_sigma_ratio;
  r.global_syncs = res.global_syncs;
  return r;
}

// ---------------------------------------------------------------------------
// FtGmresSolver
// ---------------------------------------------------------------------------

namespace {

/// The one FtGmresResult -> SolveReport translation, shared by the solo
/// and batched adapters so their reports can never diverge field-wise.
SolveReport report_from_ft_result(krylov::FtGmresResult res) {
  SolveReport r;
  r.status = res.status;
  r.iterations = res.outer_iterations;
  r.total_inner_iterations = res.total_inner_iterations;
  r.total_inner_applies = res.total_inner_applies;
  r.residual_norm = res.residual_norm;
  r.residual_history = std::move(res.residual_history);
  r.inner_solves = std::move(res.inner_solves);
  r.sanitized_outputs = res.sanitized_outputs;
  r.reliable_retries = res.reliable_retries;
  r.outer_restarts = res.outer_restarts;
  r.global_syncs = res.global_syncs;
  return r;
}

} // namespace

FtGmresSolver::FtGmresSolver(const krylov::LinearOperator& A,
                             const Options& opts)
    : a_(&A), opts_(to_ft_gmres_options(opts)) {}

FtGmresSolver::FtGmresSolver(const krylov::LinearOperator& A,
                             const krylov::FtGmresOptions& opts)
    : a_(&A), opts_(opts) {}

SolveReport FtGmresSolver::solve(std::span<const double> b,
                                 std::span<double> x) {
  check_sizes(*this, b, x);
  copy_in(b, b_scratch_);
  krylov::FtGmresResult res =
      krylov::ft_gmres(*a_, b_scratch_, opts_, hook_, &ws_);
  copy_out(res.x, x);
  return report_from_ft_result(std::move(res));
}

krylov::OperatorStats FtGmresSolver::mixed_stats() const noexcept {
  return ws_.plane != nullptr ? ws_.plane->stats() : krylov::OperatorStats{};
}

// ---------------------------------------------------------------------------
// BatchedFtGmresSolver
// ---------------------------------------------------------------------------

BatchedFtGmresSolver::BatchedFtGmresSolver(const krylov::LinearOperator& A,
                                           const Options& opts)
    : a_(&A), opts_(to_ft_gmres_options(opts)) {}

BatchedFtGmresSolver::BatchedFtGmresSolver(const krylov::LinearOperator& A,
                                           const krylov::FtGmresOptions& opts)
    : a_(&A), opts_(opts) {}

SolveReport BatchedFtGmresSolver::solve(std::span<const double> b,
                                        std::span<double> x) {
  check_sizes(*this, b, x);
  // A batch of one: the engine walks the exact ft_gmres operation
  // sequence and the one-column apply_block is bitwise equal to apply(),
  // so this report matches FtGmresSolver::solve exactly.
  const std::span<const double> bs[] = {b};
  krylov::ArnoldiHook* hooks[] = {hook_};
  std::vector<krylov::FtGmresResult> res =
      krylov::ft_gmres_batch(*a_, bs, opts_, hooks, &ws_);
  std::copy(res[0].x.data(), res[0].x.data() + res[0].x.size(), x.begin());
  return report_from_ft_result(std::move(res[0]));
}

std::vector<SolveReport> BatchedFtGmresSolver::solve_batch(
    std::span<const std::span<const double>> bs,
    std::span<const std::span<double>> xs,
    std::span<krylov::ArnoldiHook* const> inner_hooks) {
  if (hook_ != nullptr && inner_hooks.empty()) {
    // Same philosophy as IterativeSolver::set_hook on a hookless solver:
    // silently dropping an installed fault campaign/detector would
    // misattribute experiment results.  Batch hooks are per-instance.
    throw std::invalid_argument(
        "ft_gmres_batch: a hook installed via set_hook() does not apply to "
        "solve_batch(); pass one (possibly null) hook per instance in "
        "inner_hooks instead");
  }
  if (bs.size() != xs.size()) {
    throw std::invalid_argument(
        "ft_gmres_batch: bs and xs must match in size");
  }
  for (std::size_t i = 0; i < bs.size(); ++i) {
    if (bs[i].size() != dimension() || xs[i].size() != dimension()) {
      throw std::invalid_argument(
          "ft_gmres_batch: every b/x span must have size dimension()");
    }
  }
  std::vector<krylov::FtGmresResult> res =
      krylov::ft_gmres_batch(*a_, bs, opts_, inner_hooks, &ws_);
  std::vector<SolveReport> reports;
  reports.reserve(res.size());
  for (std::size_t i = 0; i < res.size(); ++i) {
    std::copy(res[i].x.data(), res[i].x.data() + res[i].x.size(),
              xs[i].begin());
    reports.push_back(report_from_ft_result(std::move(res[i])));
  }
  return reports;
}

krylov::OperatorStats BatchedFtGmresSolver::mixed_stats() const noexcept {
  return ws_.plane != nullptr ? ws_.plane->stats() : krylov::OperatorStats{};
}

// ---------------------------------------------------------------------------
// CgSolver
// ---------------------------------------------------------------------------

CgSolver::CgSolver(const krylov::LinearOperator& A, const Options& opts)
    : a_(&A), opts_((reject_s_step(opts, "cg"), to_cg_options(opts))) {}

SolveReport CgSolver::solve(std::span<const double> b, std::span<double> x) {
  check_sizes(*this, b, x);
  copy_in(b, b_scratch_);
  copy_in(x, x_scratch_);
  krylov::CgResult res = krylov::cg(*a_, b_scratch_, x_scratch_, opts_);
  copy_out(res.x, x);
  SolveReport r;
  r.status = res.indefinite  ? SolveStatus::Indefinite
             : res.converged ? SolveStatus::Converged
                             : SolveStatus::MaxIterations;
  r.iterations = res.iterations;
  r.residual_norm = res.residual_norm;
  r.residual_history = std::move(res.residual_history);
  return r;
}

// ---------------------------------------------------------------------------
// FcgSolver
// ---------------------------------------------------------------------------

FcgSolver::FcgSolver(const krylov::LinearOperator& A, const Options& opts,
                     krylov::FlexiblePreconditioner* M)
    : a_(&A), opts_((reject_s_step(opts, "fcg"), to_fcg_options(opts))),
      fixed_adapter_(opts.precond != nullptr
                         ? *opts.precond
                         : static_cast<const krylov::Preconditioner&>(
                               identity_)) {
  m_ = (M != nullptr) ? M : &fixed_adapter_;
}

SolveReport FcgSolver::solve(std::span<const double> b, std::span<double> x) {
  check_sizes(*this, b, x);
  copy_in(b, b_scratch_);
  copy_in(x, x_scratch_);
  krylov::FcgResult res =
      krylov::fcg(*a_, b_scratch_, x_scratch_, opts_, *m_);
  copy_out(res.x, x);
  SolveReport r;
  r.status = res.status;
  r.iterations = res.outer_iterations;
  r.residual_norm = res.residual_norm;
  r.residual_history = std::move(res.residual_history);
  r.sanitized_outputs = res.sanitized_outputs;
  return r;
}

// ---------------------------------------------------------------------------
// FtCgSolver
// ---------------------------------------------------------------------------

FtCgSolver::FtCgSolver(const krylov::LinearOperator& A, const Options& opts)
    : a_(&A), opts_((reject_s_step(opts, "ft_cg"), to_ft_cg_options(opts))) {}

SolveReport FtCgSolver::solve(std::span<const double> b,
                              std::span<double> x) {
  check_sizes(*this, b, x);
  copy_in(b, b_scratch_);
  krylov::FtCgResult res = krylov::ft_cg(*a_, b_scratch_, opts_, hook_);
  copy_out(res.x, x);
  SolveReport r;
  r.status = res.status;
  r.iterations = res.outer_iterations;
  r.total_inner_iterations = res.total_inner_iterations;
  r.residual_norm = res.residual_norm;
  r.residual_history = std::move(res.residual_history);
  r.sanitized_outputs = res.sanitized_outputs;
  return r;
}

} // namespace sdcgmres::solver
