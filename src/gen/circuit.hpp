#pragma once
/// \file circuit.hpp
/// \brief Synthetic circuit-simulation matrix (substitute for mult_dcop_03).
///
/// The paper's second test problem is mult_dcop_03 from the UF Sparse Matrix
/// Collection: a 25,187-row nonsymmetric, severely ill-conditioned
/// (kappa ~ 7e13) matrix from DC operating-point analysis of a circuit.
/// That file is not available in this offline environment, so this module
/// generates a matrix with the same *experimentally relevant* properties:
///
///  1. nonsymmetric nonzero pattern (so the Arnoldi H is genuinely upper
///     Hessenberg, not tridiagonal),
///  2. severe ill-conditioning spanning ~13 orders of magnitude, produced
///     by a handful of "weak" circuit nodes coupled through extremely small
///     conductances (this concentrates the tiny singular values in a few
///     outliers, the typical structure of DC operating-point matrices, and
///     keeps GMRES convergence behaviour realistic),
///  3. a Frobenius norm calibrated to the paper's Table I value (42.4179)
///     so the fault-detector threshold operates at the same scale.
///
/// Construction: a modified-nodal-analysis-style conductance network on a
/// ring with random shortcut edges; every edge (i,j) stamps the usual
/// symmetric pattern [+g at (i,i),(j,j); -g at (i,j),(j,i)]; a fraction of
/// edges additionally stamp a one-sided coupling (a voltage-controlled
/// current source), which breaks pattern symmetry exactly the way real MNA
/// matrices do.

#include <cstddef>

#include "sparse/csr.hpp"

namespace sdcgmres::gen {

/// Parameters of the synthetic circuit matrix.
struct CircuitOptions {
  std::size_t nodes = 25187;        ///< matrix dimension (paper: 25,187)
  std::size_t shortcut_edges_per_node = 3; ///< random long-range edges
  double shortcut_conductance_scale = 0.012; ///< shortcut conductances are
                                    ///< this fraction of the bulk values;
                                    ///< small values give the long-diameter
                                    ///< spectrum (many small eigenvalues)
                                    ///< that real DC operating-point
                                    ///< matrices show, and calibrate the
                                    ///< FT-GMRES baseline near the paper's
                                    ///< 28 outer iterations (measured: 27
                                    ///< at 25,187 nodes, 25 at 2,000)
  double base_conductance_min = 0.5; ///< bulk conductances ~ O(1)
  double base_conductance_max = 2.0;
  std::size_t weak_nodes = 16;      ///< nodes scaled down to create tiny
                                    ///< singular values (ill-conditioning)
  double weak_scale_min = 1e-7;     ///< node scalings span [min, max]
  double weak_scale_max = 1e-3;
  double coupling_fraction = 0.3;   ///< fraction of edges with a one-sided
                                    ///< (nonsymmetric) coupling stamp
  double coupling_strength = 0.4;   ///< coupling magnitude relative to g
  double ground_leak = 1e-2;        ///< diagonal leak making A nonsingular
  double target_frobenius_norm = 42.4179; ///< paper's Table I ||A||_F;
                                    ///< <= 0 disables normalization
  unsigned seed = 20140519;         ///< deterministic construction
};

/// Generate the synthetic circuit matrix described above.
[[nodiscard]] sparse::CsrMatrix circuit_like(const CircuitOptions& opts = {});

} // namespace sdcgmres::gen
