#pragma once
/// \file poisson.hpp
/// \brief Finite-difference Poisson matrices.
///
/// poisson2d(n) reproduces Matlab's gallery('poisson', n): the block
/// tridiagonal 5-point stencil discretization of the 2-D Laplacian on an
/// n x n interior grid with Dirichlet boundaries.  For n = 100 this is the
/// paper's first test matrix: 10,000 rows, 49,600 nonzeros, ||A||_2 < 8,
/// ||A||_F ~= 446, SPD with condition number ~6.0e3.

#include <cstddef>

#include "sparse/csr.hpp"

namespace sdcgmres::gen {

/// 1-D Laplacian: tridiagonal [-1 2 -1] of dimension n.
[[nodiscard]] sparse::CsrMatrix poisson1d(std::size_t n);

/// 2-D 5-point Laplacian on an n x n grid (dimension n^2), row-major grid
/// ordering, diagonal 4, off-diagonals -1.  Matches gallery('poisson', n).
[[nodiscard]] sparse::CsrMatrix poisson2d(std::size_t n);

/// 3-D 7-point Laplacian on an n x n x n grid (dimension n^3), diagonal 6.
[[nodiscard]] sparse::CsrMatrix poisson3d(std::size_t n);

/// Anisotropic 2-D Laplacian: stencil weights eps_x and eps_y on the two
/// axes (diagonal 2*(eps_x + eps_y)); reduces to poisson2d at eps = 1.
[[nodiscard]] sparse::CsrMatrix anisotropic2d(std::size_t n, double eps_x,
                                              double eps_y);

} // namespace sdcgmres::gen
