#pragma once
/// \file random_sparse.hpp
/// \brief Random sparse test matrices (for property-based tests).

#include <cstddef>

#include "sparse/csr.hpp"

namespace sdcgmres::gen {

/// Parameters of a random sparse matrix.
struct RandomSparseOptions {
  std::size_t rows = 100;
  std::size_t cols = 100;
  std::size_t nnz_per_row = 8;   ///< off-diagonal entries sampled per row
  double value_min = -1.0;
  double value_max = 1.0;
  bool symmetric = false;        ///< symmetrize as (A + A^T)/2
  double diagonal_shift = 0.0;   ///< added to every diagonal entry; a shift
                                 ///< larger than the row sums makes the
                                 ///< matrix diagonally dominant
  unsigned seed = 42;
};

/// Generate a random sparse matrix.  The diagonal is always structurally
/// present (possibly zero-valued) so the Jacobi preconditioner is defined.
[[nodiscard]] sparse::CsrMatrix random_sparse(const RandomSparseOptions& opts);

/// Shorthand: random diagonally dominant nonsymmetric matrix of size n,
/// suitable as a well-conditioned GMRES test problem.
[[nodiscard]] sparse::CsrMatrix random_diag_dominant(std::size_t n,
                                                     unsigned seed = 42);

/// Shorthand: random SPD matrix of size n (symmetrized + dominant shift).
[[nodiscard]] sparse::CsrMatrix random_spd(std::size_t n, unsigned seed = 42);

} // namespace sdcgmres::gen
