#include "gen/convection_diffusion.hpp"

#include <cmath>
#include <stdexcept>

namespace sdcgmres::gen {

using sparse::CooMatrix;
using sparse::CsrMatrix;

CsrMatrix convection_diffusion2d(std::size_t n, double beta_x, double beta_y) {
  if (n == 0) {
    throw std::invalid_argument("convection_diffusion2d: n must be positive");
  }
  const std::size_t dim = n * n;
  const double h = 1.0 / static_cast<double>(n + 1);
  CooMatrix coo(dim, dim);
  coo.reserve(5 * dim);
  const auto idx = [n](std::size_t i, std::size_t j) { return i * n + j; };
  // First-order upwinding keeps the scheme stable for any Peclet number.
  const double cx = beta_x * h;
  const double cy = beta_y * h;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t row = idx(i, j);
      double diag = 4.0 + std::abs(cx) + std::abs(cy);
      const double west = -1.0 - std::max(cx, 0.0);
      const double east = -1.0 + std::min(cx, 0.0);
      const double south = -1.0 - std::max(cy, 0.0);
      const double north = -1.0 + std::min(cy, 0.0);
      coo.add(row, row, diag);
      if (j > 0) coo.add(row, idx(i, j - 1), west);
      if (j + 1 < n) coo.add(row, idx(i, j + 1), east);
      if (i > 0) coo.add(row, idx(i - 1, j), south);
      if (i + 1 < n) coo.add(row, idx(i + 1, j), north);
    }
  }
  return CsrMatrix(std::move(coo));
}

} // namespace sdcgmres::gen
