#pragma once
/// \file convection_diffusion.hpp
/// \brief Nonsymmetric convection-diffusion model problems.
///
/// Upwind finite-difference discretization of
///   -Laplace(u) + beta . grad(u) = f
/// on the unit square with Dirichlet boundaries.  Nonzero convection makes
/// the matrix nonsymmetric, which exercises the full upper-Hessenberg
/// structure in Arnoldi (the paper's Fig. 2 distinction).

#include <cstddef>

#include "sparse/csr.hpp"

namespace sdcgmres::gen {

/// 2-D convection-diffusion on an n x n interior grid.
/// \param n grid points per axis (matrix dimension n^2)
/// \param beta_x convection strength along x (cell Peclet = beta/2h)
/// \param beta_y convection strength along y
[[nodiscard]] sparse::CsrMatrix convection_diffusion2d(std::size_t n,
                                                       double beta_x,
                                                       double beta_y);

} // namespace sdcgmres::gen
