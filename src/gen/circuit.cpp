#include "gen/circuit.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>
#include <unordered_set>
#include <vector>

namespace sdcgmres::gen {

using sparse::CooMatrix;
using sparse::CsrMatrix;

CsrMatrix circuit_like(const CircuitOptions& opts) {
  const std::size_t n = opts.nodes;
  if (n < 4) throw std::invalid_argument("circuit_like: need at least 4 nodes");
  if (opts.weak_nodes >= n) {
    throw std::invalid_argument("circuit_like: weak_nodes must be < nodes");
  }

  std::mt19937_64 rng(opts.seed);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  std::uniform_real_distribution<double> gdist(opts.base_conductance_min,
                                               opts.base_conductance_max);
  std::uniform_int_distribution<std::size_t> node_dist(0, n - 1);

  // --- Edge set: ring + random shortcuts (dedup via hashed pair key). ---
  struct Edge {
    std::size_t a, b;
    bool shortcut;
  };
  std::vector<Edge> edges;
  edges.reserve(n * (1 + opts.shortcut_edges_per_node));
  std::unordered_set<std::size_t> seen;
  const auto key = [n](std::size_t a, std::size_t b) { return a * n + b; };
  const auto try_add = [&](std::size_t a, std::size_t b, bool shortcut) {
    if (a == b) return;
    if (a > b) std::swap(a, b);
    if (seen.insert(key(a, b)).second) edges.push_back({a, b, shortcut});
  };
  for (std::size_t i = 0; i < n; ++i) try_add(i, (i + 1) % n, false);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t e = 0; e < opts.shortcut_edges_per_node; ++e) {
      try_add(i, node_dist(rng), true);
    }
  }

  // --- Node scaling: a few "weak" nodes get tiny scale factors, log-
  // uniformly distributed across [weak_scale_min, weak_scale_max].  Scaling
  // row i and column i of the conductance matrix by s_i models a subcircuit
  // reachable only through extremely large resistances, and creates one
  // tiny singular value per weak node. ---
  std::vector<double> scale(n, 1.0);
  if (opts.weak_nodes > 0) {
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::shuffle(order.begin(), order.end(), rng);
    const double lo = std::log(opts.weak_scale_min);
    const double hi = std::log(opts.weak_scale_max);
    for (std::size_t k = 0; k < opts.weak_nodes; ++k) {
      const double t = (opts.weak_nodes == 1)
                           ? 0.0
                           : static_cast<double>(k) /
                                 static_cast<double>(opts.weak_nodes - 1);
      scale[order[k]] = std::exp(lo + t * (hi - lo));
    }
  }

  // --- Stamp the MNA-style matrix. ---
  CooMatrix coo(n, n);
  coo.reserve(4 * edges.size() + n);
  for (const Edge& e : edges) {
    const double g =
        gdist(rng) * (e.shortcut ? opts.shortcut_conductance_scale : 1.0);
    const double sab = scale[e.a] * scale[e.b];
    coo.accumulate(e.a, e.a, g * scale[e.a] * scale[e.a]);
    coo.accumulate(e.b, e.b, g * scale[e.b] * scale[e.b]);
    coo.accumulate(e.a, e.b, -g * sab);
    coo.accumulate(e.b, e.a, -g * sab);
    if (unif(rng) < opts.coupling_fraction) {
      // One-sided coupling stamp (VCCS): current into node a controlled by
      // the voltage at a third node c -- contributes to (a, c) only, with
      // no mirrored (c, a) entry, so the nonzero *pattern* becomes
      // nonsymmetric exactly as in real modified-nodal-analysis matrices.
      const std::size_t ctrl = node_dist(rng);
      if (ctrl != e.a) {
        const double c = opts.coupling_strength * g *
                         (unif(rng) < 0.5 ? 1.0 : -1.0);
        coo.accumulate(e.a, ctrl, c * scale[e.a] * scale[ctrl]);
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    coo.accumulate(i, i, opts.ground_leak * scale[i] * scale[i]);
  }

  CsrMatrix A(std::move(coo));
  if (opts.target_frobenius_norm > 0.0) {
    const double fro = A.frobenius_norm();
    if (fro > 0.0) A = A.scaled(opts.target_frobenius_norm / fro);
  }
  return A;
}

} // namespace sdcgmres::gen
