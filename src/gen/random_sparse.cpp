#include "gen/random_sparse.hpp"

#include <random>
#include <stdexcept>

namespace sdcgmres::gen {

using sparse::CooMatrix;
using sparse::CsrMatrix;

CsrMatrix random_sparse(const RandomSparseOptions& opts) {
  if (opts.rows == 0 || opts.cols == 0) {
    throw std::invalid_argument("random_sparse: empty dimensions");
  }
  std::mt19937_64 rng(opts.seed);
  std::uniform_int_distribution<std::size_t> col_dist(0, opts.cols - 1);
  std::uniform_real_distribution<double> val_dist(opts.value_min,
                                                  opts.value_max);
  CooMatrix coo(opts.rows, opts.cols);
  coo.reserve(opts.rows * (opts.nnz_per_row + 1));
  for (std::size_t i = 0; i < opts.rows; ++i) {
    for (std::size_t k = 0; k < opts.nnz_per_row; ++k) {
      coo.accumulate(i, col_dist(rng), val_dist(rng));
    }
  }
  // Structural diagonal (value may be zero before the shift).
  const std::size_t n = std::min(opts.rows, opts.cols);
  for (std::size_t i = 0; i < n; ++i) {
    coo.accumulate(i, i, opts.diagonal_shift);
  }
  CsrMatrix A(std::move(coo));
  if (opts.symmetric) {
    if (opts.rows != opts.cols) {
      throw std::invalid_argument("random_sparse: symmetric needs square");
    }
    const CsrMatrix At = A.transposed();
    CooMatrix sym(opts.rows, opts.cols);
    sym.reserve(2 * A.nnz());
    for (std::size_t i = 0; i < A.rows(); ++i) {
      const auto cols = A.row_cols(i);
      const auto vals = A.row_values(i);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        sym.accumulate(i, cols[k], 0.5 * vals[k]);
      }
      const auto tcols = At.row_cols(i);
      const auto tvals = At.row_values(i);
      for (std::size_t k = 0; k < tcols.size(); ++k) {
        sym.accumulate(i, tcols[k], 0.5 * tvals[k]);
      }
    }
    A = CsrMatrix(std::move(sym));
  }
  return A;
}

CsrMatrix random_diag_dominant(std::size_t n, unsigned seed) {
  RandomSparseOptions opts;
  opts.rows = n;
  opts.cols = n;
  opts.nnz_per_row = 6;
  opts.value_min = -1.0;
  opts.value_max = 1.0;
  // 6 entries in [-1, 1]: row sum of magnitudes <= 6 < shift.
  opts.diagonal_shift = 8.0;
  opts.seed = seed;
  return random_sparse(opts);
}

CsrMatrix random_spd(std::size_t n, unsigned seed) {
  RandomSparseOptions opts;
  opts.rows = n;
  opts.cols = n;
  opts.nnz_per_row = 6;
  opts.value_min = -1.0;
  opts.value_max = 1.0;
  opts.symmetric = true;
  opts.diagonal_shift = 8.0;
  opts.seed = seed;
  return random_sparse(opts);
}

} // namespace sdcgmres::gen
