#include "gen/poisson.hpp"

#include <stdexcept>

namespace sdcgmres::gen {

using sparse::CooMatrix;
using sparse::CsrMatrix;

CsrMatrix poisson1d(std::size_t n) {
  if (n == 0) throw std::invalid_argument("poisson1d: n must be positive");
  CooMatrix coo(n, n);
  coo.reserve(3 * n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) coo.add(i, i - 1, -1.0);
    coo.add(i, i, 2.0);
    if (i + 1 < n) coo.add(i, i + 1, -1.0);
  }
  return CsrMatrix(std::move(coo));
}

CsrMatrix poisson2d(std::size_t n) { return anisotropic2d(n, 1.0, 1.0); }

CsrMatrix anisotropic2d(std::size_t n, double eps_x, double eps_y) {
  if (n == 0) throw std::invalid_argument("anisotropic2d: n must be positive");
  const std::size_t dim = n * n;
  CooMatrix coo(dim, dim);
  coo.reserve(5 * dim);
  const auto idx = [n](std::size_t i, std::size_t j) { return i * n + j; };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t row = idx(i, j);
      coo.add(row, row, 2.0 * (eps_x + eps_y));
      if (i > 0) coo.add(row, idx(i - 1, j), -eps_y);
      if (i + 1 < n) coo.add(row, idx(i + 1, j), -eps_y);
      if (j > 0) coo.add(row, idx(i, j - 1), -eps_x);
      if (j + 1 < n) coo.add(row, idx(i, j + 1), -eps_x);
    }
  }
  return CsrMatrix(std::move(coo));
}

CsrMatrix poisson3d(std::size_t n) {
  if (n == 0) throw std::invalid_argument("poisson3d: n must be positive");
  const std::size_t dim = n * n * n;
  CooMatrix coo(dim, dim);
  coo.reserve(7 * dim);
  const auto idx = [n](std::size_t i, std::size_t j, std::size_t k) {
    return (i * n + j) * n + k;
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t row = idx(i, j, k);
        coo.add(row, row, 6.0);
        if (i > 0) coo.add(row, idx(i - 1, j, k), -1.0);
        if (i + 1 < n) coo.add(row, idx(i + 1, j, k), -1.0);
        if (j > 0) coo.add(row, idx(i, j - 1, k), -1.0);
        if (j + 1 < n) coo.add(row, idx(i, j + 1, k), -1.0);
        if (k > 0) coo.add(row, idx(i, j, k - 1), -1.0);
        if (k + 1 < n) coo.add(row, idx(i, j, k + 1), -1.0);
      }
    }
  }
  return CsrMatrix(std::move(coo));
}

} // namespace sdcgmres::gen
