#include "sparse/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "la/blas1.hpp"

namespace sdcgmres::sparse {

MatrixProperties analyze(const CsrMatrix& A) {
  MatrixProperties p;
  p.rows = A.rows();
  p.cols = A.cols();
  p.nnz = A.nnz();
  p.pattern_symmetric = is_pattern_symmetric(A);
  p.numerically_symmetric = is_numerically_symmetric(A);
  p.has_full_structural_rank = has_nonempty_rows_and_cols(A);
  p.diagonally_dominant = is_diagonally_dominant(A);
  p.bandwidth = bandwidth(A);
  return p;
}

bool is_pattern_symmetric(const CsrMatrix& A) {
  if (A.rows() != A.cols()) return false;
  const CsrMatrix At = A.transposed();
  for (std::size_t i = 0; i < A.rows(); ++i) {
    const auto a = A.row_cols(i);
    const auto b = At.row_cols(i);
    if (!std::equal(a.begin(), a.end(), b.begin(), b.end())) return false;
  }
  return true;
}

bool is_numerically_symmetric(const CsrMatrix& A, double tol) {
  if (A.rows() != A.cols()) return false;
  const CsrMatrix At = A.transposed();
  for (std::size_t i = 0; i < A.rows(); ++i) {
    const auto ac = A.row_cols(i);
    const auto av = A.row_values(i);
    const auto bc = At.row_cols(i);
    const auto bv = At.row_values(i);
    if (!std::equal(ac.begin(), ac.end(), bc.begin(), bc.end())) return false;
    for (std::size_t k = 0; k < av.size(); ++k) {
      if (std::abs(av[k] - bv[k]) > tol) return false;
    }
  }
  return true;
}

bool has_nonempty_rows_and_cols(const CsrMatrix& A) {
  std::vector<bool> col_hit(A.cols(), false);
  for (std::size_t i = 0; i < A.rows(); ++i) {
    const auto cols = A.row_cols(i);
    if (cols.empty()) return false;
    for (const std::size_t j : cols) col_hit[j] = true;
  }
  return std::all_of(col_hit.begin(), col_hit.end(), [](bool b) { return b; });
}

bool is_diagonally_dominant(const CsrMatrix& A) {
  if (A.rows() != A.cols()) return false;
  for (std::size_t i = 0; i < A.rows(); ++i) {
    const auto cols = A.row_cols(i);
    const auto vals = A.row_values(i);
    double diag = 0.0;
    double off = 0.0;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] == i) {
        diag = std::abs(vals[k]);
      } else {
        off += std::abs(vals[k]);
      }
    }
    // Small relative slack: upwind stencils are dominant by construction
    // but the two sides are summed in different orders.
    if (diag < off * (1.0 - 1e-14) - 1e-300) return false;
  }
  return true;
}

std::size_t bandwidth(const CsrMatrix& A) {
  std::size_t bw = 0;
  for (std::size_t i = 0; i < A.rows(); ++i) {
    for (const std::size_t j : A.row_cols(i)) {
      const std::size_t d = (i > j) ? i - j : j - i;
      bw = std::max(bw, d);
    }
  }
  return bw;
}

bool probe_positive_definite(const CsrMatrix& A, std::size_t trials,
                             unsigned seed) {
  if (A.rows() != A.cols() || A.rows() == 0) return false;
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  la::Vector x(A.rows());
  la::Vector y(A.rows());
  for (std::size_t t = 0; t < trials; ++t) {
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = dist(rng);
    A.spmv(x, y);
    if (la::dot(x, y) <= 0.0) return false;
  }
  return true;
}

RowLengthStats row_length_stats(const CsrMatrix& A) {
  RowLengthStats s;
  const std::size_t n = A.rows();
  if (n == 0) return s;
  const std::vector<std::size_t>& rp = A.row_ptr();
  s.min = rp[1] - rp[0];
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t len = rp[i + 1] - rp[i];
    s.min = std::min(s.min, len);
    s.max = std::max(s.max, len);
  }
  s.mean = static_cast<double>(A.nnz()) / static_cast<double>(n);
  double var = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(rp[i + 1] - rp[i]) - s.mean;
    var += d * d;
  }
  s.stddev = std::sqrt(var / static_cast<double>(n));
  return s;
}

double sell_padding_ratio(const CsrMatrix& A, std::size_t chunk,
                          std::size_t sigma_chunks) {
  if (A.nnz() == 0) return 1.0;
  const std::size_t n = A.rows();
  const std::vector<std::size_t>& rp = A.row_ptr();
  std::vector<std::size_t> lengths(n);
  for (std::size_t i = 0; i < n; ++i) lengths[i] = rp[i + 1] - rp[i];
  // Mirror SellMatrix's construction: descending sort inside windows of
  // sigma_chunks*chunk rows, then each chunk pays chunk * (its longest
  // slot) entry slots.
  const std::size_t window = chunk * sigma_chunks;
  for (std::size_t w0 = 0; w0 < n; w0 += window) {
    const std::size_t w1 = std::min(n, w0 + window);
    std::sort(lengths.begin() + static_cast<std::ptrdiff_t>(w0),
              lengths.begin() + static_cast<std::ptrdiff_t>(w1),
              std::greater<>());
  }
  // Each chunk stores (longest slot) * chunk entry slots -- the full
  // chunk height even when the last chunk is ragged, exactly as
  // SellMatrix allocates.
  std::size_t padded = 0;
  for (std::size_t c0 = 0; c0 < n; c0 += chunk) {
    padded += lengths[c0] * chunk;
  }
  return static_cast<double>(padded) / static_cast<double>(A.nnz());
}

} // namespace sdcgmres::sparse
