#pragma once
/// \file coo.hpp
/// \brief Coordinate-format sparse matrix builder.
///
/// COO is the assembly format: generators and the Matrix Market reader
/// append (row, col, value) triplets in any order, then convert to CSR for
/// compute.  Duplicate entries are summed during conversion, matching the
/// usual finite-element assembly semantics.

#include <cstddef>
#include <vector>

namespace sdcgmres::sparse {

/// One nonzero entry in coordinate format.
struct Triplet {
  std::size_t row = 0;
  std::size_t col = 0;
  double value = 0.0;

  bool operator==(const Triplet&) const = default;
};

/// Mutable coordinate-format sparse matrix.
class CooMatrix {
public:
  CooMatrix() = default;

  /// Empty rows x cols matrix.
  CooMatrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  /// Number of stored triplets (may include duplicates until compressed).
  [[nodiscard]] std::size_t nnz() const noexcept { return entries_.size(); }

  /// Append a triplet.  Throws std::out_of_range for indices outside the
  /// matrix.  Zero values are stored too (callers may want explicit zeros).
  void add(std::size_t row, std::size_t col, double value);

  /// Append `value` to position (row, col); alias of add() kept for
  /// readability at assembly call sites.
  void accumulate(std::size_t row, std::size_t col, double value) {
    add(row, col, value);
  }

  [[nodiscard]] const std::vector<Triplet>& entries() const noexcept {
    return entries_;
  }

  /// Sort triplets by (row, col) and sum duplicates in place.
  void compress();

  /// Reserve storage for \p n triplets.
  void reserve(std::size_t n) { entries_.reserve(n); }

private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Triplet> entries_;
};

} // namespace sdcgmres::sparse
