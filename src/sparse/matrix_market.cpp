#include "sparse/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sdcgmres::sparse {

namespace {

/// All reader errors go through here, so messages share one prefix and
/// the file entry point below can splice the offending path in.
[[noreturn]] void mm_fail(const std::string& reason) {
  throw std::runtime_error("matrix_market: " + reason);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

struct Header {
  bool pattern = false;
  enum class Symmetry { General, Symmetric, SkewSymmetric } symmetry =
      Symmetry::General;
};

Header parse_header(const std::string& line) {
  std::istringstream ss(line);
  std::string banner, object, format, field, symmetry;
  ss >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket") {
    mm_fail("missing %%MatrixMarket banner (line 1)");
  }
  if (lower(object) != "matrix" || lower(format) != "coordinate") {
    mm_fail("only 'matrix coordinate' files are supported (line 1)");
  }
  Header h;
  const std::string f = lower(field);
  if (f == "real" || f == "integer") {
    h.pattern = false;
  } else if (f == "pattern") {
    h.pattern = true;
  } else {
    mm_fail("unsupported field '" + field +
            "' (complex matrices are out of scope; line 1)");
  }
  const std::string s = lower(symmetry);
  if (s == "general") {
    h.symmetry = Header::Symmetry::General;
  } else if (s == "symmetric") {
    h.symmetry = Header::Symmetry::Symmetric;
  } else if (s == "skew-symmetric") {
    h.symmetry = Header::Symmetry::SkewSymmetric;
  } else {
    mm_fail("unsupported symmetry '" + symmetry + "' (line 1)");
  }
  return h;
}

} // namespace

CsrMatrix read_matrix_market(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  if (!std::getline(in, line)) {
    mm_fail("empty stream (no %%MatrixMarket banner)");
  }
  ++line_no;
  const Header header = parse_header(line);

  // Skip comments and blank lines until the size line.
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  std::size_t rows = 0, cols = 0, nnz = 0;
  if (!(size_line >> rows >> cols >> nnz)) {
    mm_fail("malformed size line (line " + std::to_string(line_no) +
            "): expected 'rows cols nnz', got '" + line + "'");
  }

  CooMatrix coo(rows, cols);
  coo.reserve(header.symmetry == Header::Symmetry::General ? nnz : 2 * nnz);
  std::size_t seen = 0;
  while (seen < nnz && std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '%') continue;
    std::istringstream entry(line);
    std::size_t i = 0, j = 0;
    double v = 1.0;
    if (!(entry >> i >> j)) {
      mm_fail("malformed entry line (line " + std::to_string(line_no) +
              "): '" + line + "'");
    }
    if (!header.pattern && !(entry >> v)) {
      mm_fail("entry missing its value (line " + std::to_string(line_no) +
              "): '" + line + "'");
    }
    if (i == 0 || j == 0 || i > rows || j > cols) {
      mm_fail("index (" + std::to_string(i) + ", " + std::to_string(j) +
              ") out of the declared " + std::to_string(rows) + " x " +
              std::to_string(cols) + " range (line " +
              std::to_string(line_no) + ")");
    }
    coo.add(i - 1, j - 1, v);
    if (i != j) {
      if (header.symmetry == Header::Symmetry::Symmetric) {
        coo.add(j - 1, i - 1, v);
      } else if (header.symmetry == Header::Symmetry::SkewSymmetric) {
        coo.add(j - 1, i - 1, -v);
      }
    }
    ++seen;
  }
  if (seen != nnz) {
    mm_fail("fewer entries than declared (" + std::to_string(seen) + " of " +
            std::to_string(nnz) + "; truncated file?)");
  }
  return CsrMatrix(std::move(coo));
}

CsrMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    mm_fail("cannot open '" + path + "': " + std::strerror(errno));
  }
  try {
    return read_matrix_market(in);
  } catch (const std::runtime_error& e) {
    // Splice the path into the stream reader's message so a failing
    // scenario names the offending file, not just the line.
    std::string what = e.what();
    const std::string prefix = "matrix_market: ";
    if (what.rfind(prefix, 0) == 0) what.erase(0, prefix.size());
    mm_fail("'" + path + "': " + what);
  }
}

void write_matrix_market(std::ostream& out, const CsrMatrix& A) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by sdcgmres\n";
  out << A.rows() << ' ' << A.cols() << ' ' << A.nnz() << '\n';
  out << std::setprecision(17);
  for (std::size_t i = 0; i < A.rows(); ++i) {
    const auto cols = A.row_cols(i);
    const auto vals = A.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      out << (i + 1) << ' ' << (cols[k] + 1) << ' ' << vals[k] << '\n';
    }
  }
}

void write_matrix_market_file(const std::string& path, const CsrMatrix& A) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("matrix_market: cannot open '" + path +
                             "' for writing");
  }
  write_matrix_market(out, A);
}

} // namespace sdcgmres::sparse
