#include "sparse/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sdcgmres::sparse {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

struct Header {
  bool pattern = false;
  enum class Symmetry { General, Symmetric, SkewSymmetric } symmetry =
      Symmetry::General;
};

Header parse_header(const std::string& line) {
  std::istringstream ss(line);
  std::string banner, object, format, field, symmetry;
  ss >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket") {
    throw std::runtime_error("matrix_market: missing %%MatrixMarket banner");
  }
  if (lower(object) != "matrix" || lower(format) != "coordinate") {
    throw std::runtime_error(
        "matrix_market: only 'matrix coordinate' files are supported");
  }
  Header h;
  const std::string f = lower(field);
  if (f == "real" || f == "integer") {
    h.pattern = false;
  } else if (f == "pattern") {
    h.pattern = true;
  } else {
    throw std::runtime_error("matrix_market: unsupported field '" + field +
                             "' (complex matrices are out of scope)");
  }
  const std::string s = lower(symmetry);
  if (s == "general") {
    h.symmetry = Header::Symmetry::General;
  } else if (s == "symmetric") {
    h.symmetry = Header::Symmetry::Symmetric;
  } else if (s == "skew-symmetric") {
    h.symmetry = Header::Symmetry::SkewSymmetric;
  } else {
    throw std::runtime_error("matrix_market: unsupported symmetry '" +
                             symmetry + "'");
  }
  return h;
}

} // namespace

CsrMatrix read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("matrix_market: empty stream");
  }
  const Header header = parse_header(line);

  // Skip comments and blank lines until the size line.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  std::size_t rows = 0, cols = 0, nnz = 0;
  if (!(size_line >> rows >> cols >> nnz)) {
    throw std::runtime_error("matrix_market: malformed size line");
  }

  CooMatrix coo(rows, cols);
  coo.reserve(header.symmetry == Header::Symmetry::General ? nnz : 2 * nnz);
  std::size_t seen = 0;
  while (seen < nnz && std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream entry(line);
    std::size_t i = 0, j = 0;
    double v = 1.0;
    if (!(entry >> i >> j)) {
      throw std::runtime_error("matrix_market: malformed entry line");
    }
    if (!header.pattern && !(entry >> v)) {
      throw std::runtime_error("matrix_market: entry missing value");
    }
    if (i == 0 || j == 0 || i > rows || j > cols) {
      throw std::runtime_error("matrix_market: index out of range");
    }
    coo.add(i - 1, j - 1, v);
    if (i != j) {
      if (header.symmetry == Header::Symmetry::Symmetric) {
        coo.add(j - 1, i - 1, v);
      } else if (header.symmetry == Header::Symmetry::SkewSymmetric) {
        coo.add(j - 1, i - 1, -v);
      }
    }
    ++seen;
  }
  if (seen != nnz) {
    throw std::runtime_error("matrix_market: fewer entries than declared");
  }
  return CsrMatrix(std::move(coo));
}

CsrMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("matrix_market: cannot open '" + path + "'");
  }
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const CsrMatrix& A) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by sdcgmres\n";
  out << A.rows() << ' ' << A.cols() << ' ' << A.nnz() << '\n';
  out << std::setprecision(17);
  for (std::size_t i = 0; i < A.rows(); ++i) {
    const auto cols = A.row_cols(i);
    const auto vals = A.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      out << (i + 1) << ' ' << (cols[k] + 1) << ' ' << vals[k] << '\n';
    }
  }
}

void write_matrix_market_file(const std::string& path, const CsrMatrix& A) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("matrix_market: cannot open '" + path +
                             "' for writing");
  }
  write_matrix_market(out, A);
}

} // namespace sdcgmres::sparse
