#pragma once
/// \file csr_mixed.hpp
/// \brief Reduced-precision / compressed-index CSR instantiation for the
/// mixed-precision inner-solve plane.
///
/// The lockstep work of the batched FT-GMRES driver already cut the number
/// of matrix STREAMS; the remaining lever is bytes per stream.  The inner
/// solves are the unreliable side of the paper's selective-reliability
/// split, so they may run on a narrowed copy of the operator: float values
/// (4 bytes instead of 8) and int32 indices (4 instead of 8) halve the
/// traffic of every inner SpMV/SpMM.  CsrMatrixT is that narrowed copy --
/// an immutable mirror built from a validated double/size_t CsrMatrix, NOT
/// a replacement for it (the reliable outer plane keeps streaming the
/// original).
///
/// Index narrowing is validated at construction: every dimension that must
/// fit the index type (rows, cols, and nnz, since row_ptr entries reach
/// nnz) is checked and construction throws std::overflow_error on
/// overflow.  Per-entry column indices need no separate check -- they are
/// < cols by the source matrix's invariants.
///
/// The kernels mirror sparse::CsrMatrix's spmv/spmm one-to-one: same row
/// loop, same 4-wide right-hand-side blocking, same OpenMP thresholds, all
/// arithmetic in S.  For S = double the narrowed indices do not change a
/// single floating-point operation, so a (double, int32) mirror produces
/// bitwise identical results to the source matrix -- the identity the
/// index-width tests pin down.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "la/block.hpp"
#include "la/krylov_basis.hpp"
#include "sparse/csr.hpp"

namespace sdcgmres::sparse {

/// Immutable CSR mirror with scalar type \p S and index type \p I.
template <typename S, typename I>
class CsrMatrixT {
public:
  static_assert(std::is_integral_v<I>, "index type must be integral");

  CsrMatrixT() = default;

  /// Narrowing copy of a validated double/size_t CSR matrix.  Throws
  /// std::overflow_error when rows, cols, or nnz do not fit \p I.
  explicit CsrMatrixT(const CsrMatrix& src)
      : rows_(src.rows()), cols_(src.cols()) {
    const auto max_index =
        static_cast<std::size_t>(std::numeric_limits<I>::max());
    if (src.rows() > max_index || src.cols() > max_index ||
        src.nnz() > max_index) {
      throw std::overflow_error(
          "CsrMatrixT: matrix shape overflows the compressed index type");
    }
    row_ptr_.clear(); // drop the default-constructed sentinel entry
    row_ptr_.reserve(src.row_ptr().size());
    for (const std::size_t p : src.row_ptr()) {
      row_ptr_.push_back(static_cast<I>(p));
    }
    col_idx_.reserve(src.nnz());
    for (const std::size_t j : src.col_idx()) {
      col_idx_.push_back(static_cast<I>(j));
    }
    values_.reserve(src.nnz());
    for (const double v : src.values()) {
      values_.push_back(static_cast<S>(v));
    }
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return values_.size(); }

  [[nodiscard]] const std::vector<I>& row_ptr() const noexcept {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<I>& col_idx() const noexcept {
    return col_idx_;
  }
  [[nodiscard]] const std::vector<S>& values() const noexcept {
    return values_;
  }

  /// y := A*x, the span core (same contract as CsrMatrix::spmv: exact
  /// sizes, no aliasing).
  void spmv(std::span<const S> x, std::span<S> y) const {
    if (x.size() != cols_) {
      throw std::invalid_argument("CsrMatrixT::spmv: x size mismatch");
    }
    if (y.size() != rows_) {
      throw std::invalid_argument("CsrMatrixT::spmv: y size mismatch");
    }
    const S* px = x.data();
    S* py = y.data();
    const auto n = static_cast<std::int64_t>(rows_);
#pragma omp parallel for schedule(static) if (n > 2048)
    for (std::int64_t ii = 0; ii < n; ++ii) {
      const auto i = static_cast<std::size_t>(ii);
      S sum = S(0);
      const auto kb = static_cast<std::size_t>(row_ptr_[i]);
      const auto ke = static_cast<std::size_t>(row_ptr_[i + 1]);
      for (std::size_t k = kb; k < ke; ++k) {
        sum += values_[k] * px[static_cast<std::size_t>(col_idx_[k])];
      }
      py[i] = sum;
    }
  }

  /// Raw SpMM core over column-major blocks; mirrors CsrMatrix::spmm
  /// (4-wide right-hand-side blocks, per-column accumulation in spmv
  /// order, so each output column is bitwise identical to a separate
  /// spmv of that column).
  void spmm(std::size_t ncols, const S* x, std::size_t ldx, S* y,
            std::size_t ldy) const {
    if (ncols == 0) return;
    const auto n = static_cast<std::int64_t>(rows_);
    for (std::size_t c0 = 0; c0 < ncols; c0 += 4) {
      const std::size_t bw = std::min<std::size_t>(4, ncols - c0);
      const S* x0 = x + c0 * ldx;
      S* y0 = y + c0 * ldy;
      if (bw == 4) {
#pragma omp parallel for schedule(static) if (n > 2048)
        for (std::int64_t ii = 0; ii < n; ++ii) {
          const auto i = static_cast<std::size_t>(ii);
          S s0 = S(0), s1 = S(0), s2 = S(0), s3 = S(0);
          const auto kb = static_cast<std::size_t>(row_ptr_[i]);
          const auto ke = static_cast<std::size_t>(row_ptr_[i + 1]);
          for (std::size_t k = kb; k < ke; ++k) {
            const S a = values_[k];
            const auto j = static_cast<std::size_t>(col_idx_[k]);
            s0 += a * x0[j];
            s1 += a * x0[j + ldx];
            s2 += a * x0[j + 2 * ldx];
            s3 += a * x0[j + 3 * ldx];
          }
          y0[i] = s0;
          y0[i + ldy] = s1;
          y0[i + 2 * ldy] = s2;
          y0[i + 3 * ldy] = s3;
        }
      } else {
#pragma omp parallel for schedule(static) if (n > 2048)
        for (std::int64_t ii = 0; ii < n; ++ii) {
          const auto i = static_cast<std::size_t>(ii);
          S s[4] = {S(0), S(0), S(0), S(0)};
          const auto kb = static_cast<std::size_t>(row_ptr_[i]);
          const auto ke = static_cast<std::size_t>(row_ptr_[i + 1]);
          for (std::size_t k = kb; k < ke; ++k) {
            const S a = values_[k];
            const auto j = static_cast<std::size_t>(col_idx_[k]);
            for (std::size_t c = 0; c < bw; ++c) s[c] += a * x0[j + c * ldx];
          }
          for (std::size_t c = 0; c < bw; ++c) y0[i + c * ldy] = s[c];
        }
      }
    }
  }

  /// Y := A*X over block views (the lockstep staging path of the batched
  /// driver).
  void spmm(const la::BasisViewT<S>& x, const la::BlockViewT<S>& y) const {
    if (x.cols() == 0 && y.cols() == 0) return;
    if (x.rows() != cols_) {
      throw std::invalid_argument("CsrMatrixT::spmm: X row count mismatch");
    }
    if (y.rows() != rows_ || y.cols() != x.cols()) {
      throw std::invalid_argument("CsrMatrixT::spmm: Y shape mismatch");
    }
    spmm(x.cols(), x.data(), x.ld(), y.data(), y.ld());
  }

private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<I> row_ptr_{0};
  std::vector<I> col_idx_;
  std::vector<S> values_;
};

} // namespace sdcgmres::sparse
