#pragma once
/// \file csr.hpp
/// \brief Compressed-sparse-row matrix: the compute format for all solvers.

#include <cstddef>
#include <span>
#include <vector>

#include "la/krylov_basis.hpp"
#include "la/vector.hpp"
#include "sparse/coo.hpp"

namespace sdcgmres::sparse {

/// Immutable CSR sparse matrix.
///
/// Construction goes through CooMatrix (which sums duplicates), so the row
/// pointer / column index invariants hold by construction: for each row the
/// column indices are strictly increasing.
class CsrMatrix {
public:
  CsrMatrix() = default;

  /// Build from a coordinate matrix.  \p coo is compressed (sorted,
  /// duplicates summed) as part of the conversion; explicit zeros are kept.
  explicit CsrMatrix(CooMatrix coo);

  /// Build directly from raw CSR arrays (validated).
  CsrMatrix(std::size_t rows, std::size_t cols,
            std::vector<std::size_t> row_ptr, std::vector<std::size_t> col_idx,
            std::vector<double> values);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return values_.size(); }

  [[nodiscard]] const std::vector<std::size_t>& row_ptr() const noexcept {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<std::size_t>& col_idx() const noexcept {
    return col_idx_;
  }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

  /// Column indices of row \p i.
  [[nodiscard]] std::span<const std::size_t> row_cols(std::size_t i) const;
  /// Values of row \p i.
  [[nodiscard]] std::span<const double> row_values(std::size_t i) const;

  /// Value at (i, j); 0.0 when the position is not stored.
  [[nodiscard]] double at(std::size_t i, std::size_t j) const;

  /// y := A*x.  Sizes must match; OpenMP-parallel over rows.
  void spmv(const la::Vector& x, la::Vector& y) const;

  /// y := A*x for a span operand (zero-copy from a KrylovBasis column).
  void spmv(std::span<const double> x, la::Vector& y) const;

  /// y := A*x, the span core: y.size() must equal rows() (never resized),
  /// x and y must not alias.  This is the zero-copy path the solver data
  /// plane uses (basis column in, workspace column out).
  void spmv(std::span<const double> x, std::span<double> y) const;

  /// Y := A*X for a block of vectors (SpMM, blocked multi-vector SpMV).
  /// X is a column-major view with X.rows() == cols(); Y must hold
  /// X.cols() columns of length rows() (use KrylovBasis::append() to shape
  /// it).  The matrix is streamed ONCE per block of right-hand sides
  /// instead of once per vector, so b simultaneous products pay ~1/b of
  /// the index/value traffic of b spmv calls.  Each output column
  /// accumulates in exactly spmv's order: results are bitwise identical
  /// to column-by-column spmv.
  void spmm(const la::BasisView& x, la::KrylovBasis& y) const;

  /// Raw SpMM core over column-major blocks: \p ncols vectors, x with
  /// leading dimension \p ldx >= cols(), y with \p ldy >= rows().
  void spmm(std::size_t ncols, const double* x, std::size_t ldx, double* y,
            std::size_t ldy) const;

  /// y := A^T*x.  OpenMP-parallel by column ownership: a one-time
  /// nnz-balanced partition gives each thread a contiguous column range
  /// that it alone writes; threads scan the rows in serial order and pick
  /// out their columns by binary search (per-row indices are strictly
  /// increasing), so results are bitwise identical to the serial fallback
  /// and no per-thread dense scratch is needed.  Serial fallback without
  /// OpenMP or for small matrices.
  void spmv_transpose(const la::Vector& x, la::Vector& y) const;

  /// A^T*x for a span operand (zero-copy from a basis column).
  void spmv_transpose(std::span<const double> x, la::Vector& y) const;

  /// Y := A^T*X for a block of vectors (transpose SpMM): the matrix is
  /// streamed ONCE per block of operands instead of once per operand, the
  /// transpose-side counterpart of spmm().  X is a column-major view with
  /// X.rows() == rows(); Y must hold X.cols() columns of length cols().
  /// Each output column accumulates its terms in exactly
  /// spmv_transpose's serial order (ascending rows, with the same
  /// x_i == 0 row skip applied per operand column), so every output
  /// column is bitwise identical to a separate spmv_transpose of that
  /// column -- at any thread count.
  void spmm_transpose(const la::BasisView& x, la::KrylovBasis& y) const;

  /// Raw transpose-SpMM core over column-major blocks: \p ncols vectors,
  /// x with leading dimension \p ldx >= rows(), y with \p ldy >= cols().
  void spmm_transpose(std::size_t ncols, const double* x, std::size_t ldx,
                      double* y, std::size_t ldy) const;

  /// Convenience: returns A*x by value.
  [[nodiscard]] la::Vector apply(const la::Vector& x) const;

  /// Main diagonal as a dense vector (missing entries are 0).
  [[nodiscard]] la::Vector diagonal() const;

  /// Transposed copy.
  [[nodiscard]] CsrMatrix transposed() const;

  /// Exact Frobenius norm: sqrt(sum of squares of stored values).
  [[nodiscard]] double frobenius_norm() const;

  /// Scale all values by \p alpha (returns a new matrix).
  [[nodiscard]] CsrMatrix scaled(double alpha) const;

  /// Back to coordinate format (for I/O and tests).
  [[nodiscard]] CooMatrix to_coo() const;

private:
  /// Tag for internal constructions whose CSR invariants hold by
  /// construction (scaled copies, counting-sort transposes); skips the
  /// O(nnz) validate() pass that the public constructors run.
  struct Prevalidated {};

  CsrMatrix(Prevalidated, std::size_t rows, std::size_t cols,
            std::vector<std::size_t> row_ptr, std::vector<std::size_t> col_idx,
            std::vector<double> values) noexcept
      : rows_(rows), cols_(cols), row_ptr_(std::move(row_ptr)),
        col_idx_(std::move(col_idx)), values_(std::move(values)) {}

  void validate() const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_{0};
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

} // namespace sdcgmres::sparse
