#pragma once
/// \file csr.hpp
/// \brief Compressed-sparse-row matrix: the compute format for all solvers.

#include <cstddef>
#include <span>
#include <vector>

#include "la/vector.hpp"
#include "sparse/coo.hpp"

namespace sdcgmres::sparse {

/// Immutable CSR sparse matrix.
///
/// Construction goes through CooMatrix (which sums duplicates), so the row
/// pointer / column index invariants hold by construction: for each row the
/// column indices are strictly increasing.
class CsrMatrix {
public:
  CsrMatrix() = default;

  /// Build from a coordinate matrix.  \p coo is compressed (sorted,
  /// duplicates summed) as part of the conversion; explicit zeros are kept.
  explicit CsrMatrix(CooMatrix coo);

  /// Build directly from raw CSR arrays (validated).
  CsrMatrix(std::size_t rows, std::size_t cols,
            std::vector<std::size_t> row_ptr, std::vector<std::size_t> col_idx,
            std::vector<double> values);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return values_.size(); }

  [[nodiscard]] const std::vector<std::size_t>& row_ptr() const noexcept {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<std::size_t>& col_idx() const noexcept {
    return col_idx_;
  }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

  /// Column indices of row \p i.
  [[nodiscard]] std::span<const std::size_t> row_cols(std::size_t i) const;
  /// Values of row \p i.
  [[nodiscard]] std::span<const double> row_values(std::size_t i) const;

  /// Value at (i, j); 0.0 when the position is not stored.
  [[nodiscard]] double at(std::size_t i, std::size_t j) const;

  /// y := A*x.  Sizes must match; OpenMP-parallel over rows.
  void spmv(const la::Vector& x, la::Vector& y) const;

  /// y := A*x for a span operand (zero-copy from a KrylovBasis column).
  void spmv(std::span<const double> x, la::Vector& y) const;

  /// y := A^T*x.  OpenMP-parallel over row blocks with per-thread
  /// accumulation buffers (each thread scatters into its own dense buffer,
  /// then the buffers are reduced column-wise); serial fallback without
  /// OpenMP or for small matrices.
  void spmv_transpose(const la::Vector& x, la::Vector& y) const;

  /// Convenience: returns A*x by value.
  [[nodiscard]] la::Vector apply(const la::Vector& x) const;

  /// Main diagonal as a dense vector (missing entries are 0).
  [[nodiscard]] la::Vector diagonal() const;

  /// Transposed copy.
  [[nodiscard]] CsrMatrix transposed() const;

  /// Exact Frobenius norm: sqrt(sum of squares of stored values).
  [[nodiscard]] double frobenius_norm() const;

  /// Scale all values by \p alpha (returns a new matrix).
  [[nodiscard]] CsrMatrix scaled(double alpha) const;

  /// Back to coordinate format (for I/O and tests).
  [[nodiscard]] CooMatrix to_coo() const;

private:
  /// Tag for internal constructions whose CSR invariants hold by
  /// construction (scaled copies, counting-sort transposes); skips the
  /// O(nnz) validate() pass that the public constructors run.
  struct Prevalidated {};

  CsrMatrix(Prevalidated, std::size_t rows, std::size_t cols,
            std::vector<std::size_t> row_ptr, std::vector<std::size_t> col_idx,
            std::vector<double> values) noexcept
      : rows_(rows), cols_(cols), row_ptr_(std::move(row_ptr)),
        col_idx_(std::move(col_idx)), values_(std::move(values)) {}

  void validate() const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_{0};
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

} // namespace sdcgmres::sparse
