#include "sparse/norms.hpp"

#include <cmath>
#include <limits>
#include <random>
#include <stdexcept>
#include <vector>

#include "la/blas1.hpp"
#include "la/krylov_basis.hpp"

namespace sdcgmres::sparse {

namespace {

la::Vector random_unit_vector(std::size_t n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  la::Vector v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = dist(rng);
  const double norm = la::nrm2(v);
  if (norm > 0.0) la::scal(1.0 / norm, v);
  return v;
}

// Internal conjugate-gradient solve of the normal equations
// (A^T A) x = b (CGNR).  Self-contained so that the sparse layer does not
// depend on the Krylov layer above it.
bool cgnr_solve(const CsrMatrix& A, const la::Vector& b, la::Vector& x,
                double tol, std::size_t max_iters) {
  const std::size_t n = A.cols();
  x.resize(n);
  x.fill(0.0);
  la::Vector tmp(A.rows());
  la::Vector r = b; // r = b - A^T A x, with x = 0
  la::Vector p = r;
  la::Vector q(n);
  double rho = la::dot(r, r);
  const double stop = tol * tol * la::dot(b, b);
  for (std::size_t it = 0; it < max_iters; ++it) {
    if (rho <= stop) return true;
    A.spmv(p, tmp);
    A.spmv_transpose(tmp, q);
    const double pq = la::dot(p, q);
    if (pq <= 0.0 || !std::isfinite(pq)) return false;
    const double alpha = rho / pq;
    la::axpy(alpha, p, x);
    la::axpy(-alpha, q, r);
    const double rho_next = la::dot(r, r);
    const double beta = rho_next / rho;
    la::waxpby(1.0, r, beta, p, p);
    rho = rho_next;
  }
  return rho <= stop;
}

} // namespace

NormEstimate estimate_two_norm(const CsrMatrix& A, std::size_t max_iters,
                               double tol, unsigned seed) {
  NormEstimate est;
  if (A.rows() == 0 || A.cols() == 0 || A.nnz() == 0) {
    est.converged = true;
    return est;
  }
  la::Vector v = random_unit_vector(A.cols(), seed);
  la::Vector Av(A.rows());
  la::Vector AtAv(A.cols());
  double sigma = 0.0;
  for (std::size_t it = 0; it < max_iters; ++it) {
    A.spmv(v, Av);
    A.spmv_transpose(Av, AtAv);
    const double lambda = la::nrm2(AtAv); // ~ sigma^2 since ||v|| = 1
    est.iterations = it + 1;
    const double sigma_next = std::sqrt(lambda);
    if (lambda == 0.0) {
      est.value = 0.0;
      est.converged = true;
      return est;
    }
    la::copy(AtAv, v);
    la::scal(1.0 / lambda, v);
    if (it > 0 && std::abs(sigma_next - sigma) <= tol * sigma_next) {
      est.value = sigma_next;
      est.converged = true;
      return est;
    }
    sigma = sigma_next;
  }
  est.value = sigma;
  est.converged = false;
  return est;
}

// Template-readiness audit (mixed-precision data plane): this calibration
// belongs to the RELIABLE plane -- its output feeds the fault detector's
// bound, which must not itself be perturbed -- so it intentionally stays
// on the double/size_t instantiations (la::KrylovBasis == KrylovBasisT
// <double>, CsrMatrix::spmm).  Nothing here assumes the arena types are
// double beyond those aliases; the float instantiations of the kernels it
// exercises (spmm, nrm2, copy, scal) are covered by the float smoke
// tests.
NormEstimate estimate_two_norm_batch(const CsrMatrix& A, std::size_t block,
                                     std::size_t max_iters, double tol,
                                     unsigned seed) {
  NormEstimate est;
  if (block == 0) {
    // A zero-replica calibration has no answer; the old silent block=1
    // promotion hid caller bugs (and a zero-column arena would reach the
    // SpMM with empty-span pointer arithmetic).
    throw std::invalid_argument(
        "estimate_two_norm_batch: block must be >= 1");
  }
  if (A.rows() == 0 || A.cols() == 0 || A.nnz() == 0) {
    est.converged = true;
    return est;
  }
  // X: block replicas of the power iteration, one column each, in a
  // contiguous arena so the forward product is a single SpMM.
  la::KrylovBasis x(A.cols(), block);
  la::KrylovBasis ax(A.rows(), block);
  la::KrylovBasis atax(A.cols(), block);
  for (std::size_t c = 0; c < block; ++c) {
    const la::Vector v0 = random_unit_vector(A.cols(), seed + 977u * (unsigned)c);
    x.append(v0.span());
    (void)ax.append();
    (void)atax.append();
  }
  std::vector<double> sigma(block, 0.0);
  for (std::size_t it = 0; it < max_iters; ++it) {
    A.spmm(x.view(), ax); // the batched half: one matrix pass for all replicas
    // The transpose half is fused too: one transpose-SpMM pass per
    // iteration instead of one spmv_transpose per replica, so a full
    // power-iteration step streams the matrix ~2 times at any block size
    // (down from 1 + block).  Bitwise identical to the per-replica path
    // (see CsrMatrix::spmm_transpose).
    A.spmm_transpose(ax.view(), atax);
    est.iterations = it + 1;
    double best_next = 0.0;
    double best_prev = 0.0;
    bool all_null = true;
    for (std::size_t c = 0; c < block; ++c) {
      const std::span<const double> atav(atax.col(c));
      const double lambda = la::nrm2(atav); // ~ sigma_c^2 since ||x_c|| = 1
      if (lambda == 0.0) continue;          // replica landed in the nullspace
      all_null = false;
      const double sigma_next = std::sqrt(lambda);
      la::copy(atav, x.col(c));
      la::scal(1.0 / lambda, x.col(c));
      if (sigma_next > best_next) {
        best_next = sigma_next;
        best_prev = sigma[c];
      }
      sigma[c] = sigma_next;
    }
    if (all_null) {
      est.value = 0.0;
      est.converged = true;
      return est;
    }
    if (it > 0 && std::abs(best_next - best_prev) <= tol * best_next) {
      est.value = best_next;
      est.converged = true;
      return est;
    }
    est.value = best_next;
  }
  est.converged = false;
  return est;
}

NormEstimate estimate_smallest_singular_value(const CsrMatrix& A,
                                              std::size_t max_iters,
                                              double solve_tol,
                                              std::size_t solve_max_iters,
                                              unsigned seed) {
  NormEstimate est;
  if (A.rows() == 0 || A.cols() == 0) {
    est.converged = true;
    return est;
  }
  la::Vector v = random_unit_vector(A.cols(), seed);
  la::Vector w(A.cols());
  double sigma = 0.0;
  for (std::size_t it = 0; it < max_iters; ++it) {
    // Inverse iteration on A^T A: solve (A^T A) w = v.
    if (!cgnr_solve(A, v, w, solve_tol, solve_max_iters)) {
      // Normal-equations solve failed (numerically singular);
      // report the current estimate as non-converged.
      est.value = sigma;
      est.converged = false;
      est.iterations = it;
      return est;
    }
    const double mu = la::nrm2(w); // ~ 1 / sigma_min^2
    est.iterations = it + 1;
    if (mu == 0.0) {
      est.value = std::numeric_limits<double>::infinity();
      est.converged = false;
      return est;
    }
    const double sigma_next = 1.0 / std::sqrt(mu);
    la::copy(w, v);
    la::scal(1.0 / mu, v);
    if (it > 0 && std::abs(sigma_next - sigma) <= 1e-8 * sigma_next) {
      est.value = sigma_next;
      est.converged = true;
      return est;
    }
    sigma = sigma_next;
  }
  est.value = sigma;
  est.converged = false;
  return est;
}

double estimate_condition_number(const CsrMatrix& A, unsigned seed) {
  const NormEstimate hi = estimate_two_norm(A, 500, 1e-12, seed);
  const NormEstimate lo = estimate_smallest_singular_value(
      A, 30, 1e-12, 4 * std::max<std::size_t>(A.rows(), 100), seed);
  if (lo.value == 0.0) return std::numeric_limits<double>::infinity();
  return hi.value / lo.value;
}

double min_column_norm(const CsrMatrix& A) {
  std::vector<double> colsq(A.cols(), 0.0);
  for (std::size_t i = 0; i < A.rows(); ++i) {
    const auto cols = A.row_cols(i);
    const auto vals = A.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      colsq[cols[k]] += vals[k] * vals[k];
    }
  }
  double best = std::numeric_limits<double>::infinity();
  for (const double s : colsq) best = std::min(best, s);
  return std::sqrt(best);
}

double one_norm(const CsrMatrix& A) {
  std::vector<double> colsum(A.cols(), 0.0);
  for (std::size_t i = 0; i < A.rows(); ++i) {
    const auto cols = A.row_cols(i);
    const auto vals = A.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      colsum[cols[k]] += std::abs(vals[k]);
    }
  }
  double best = 0.0;
  for (const double s : colsum) best = std::max(best, s);
  return best;
}

double inf_norm(const CsrMatrix& A) {
  double best = 0.0;
  for (std::size_t i = 0; i < A.rows(); ++i) {
    double sum = 0.0;
    for (const double v : A.row_values(i)) sum += std::abs(v);
    best = std::max(best, sum);
  }
  return best;
}

double sqrt_one_inf_bound(const CsrMatrix& A) {
  return std::sqrt(one_norm(A) * inf_norm(A));
}

double gershgorin_bound(const CsrMatrix& A) {
  double best = 0.0;
  for (std::size_t i = 0; i < A.rows(); ++i) {
    double radius = 0.0;
    for (const double v : A.row_values(i)) radius += std::abs(v);
    best = std::max(best, radius);
  }
  return best;
}

double cheapest_detector_bound(const CsrMatrix& A) {
  return std::min(A.frobenius_norm(), sqrt_one_inf_bound(A));
}

} // namespace sdcgmres::sparse
