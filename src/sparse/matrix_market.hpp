#pragma once
/// \file matrix_market.hpp
/// \brief Reader/writer for the Matrix Market coordinate format.
///
/// Supports `matrix coordinate real {general|symmetric|skew-symmetric}` and
/// `matrix coordinate pattern ...` headers, which covers the UF Sparse
/// Matrix Collection files the paper uses (mult_dcop_03 is `real general`).
/// Symmetric storage is expanded to full storage on read.

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

namespace sdcgmres::sparse {

/// Parse a Matrix Market stream into CSR.  Throws std::runtime_error on
/// malformed input.
[[nodiscard]] CsrMatrix read_matrix_market(std::istream& in);

/// Read a Matrix Market file by path.
[[nodiscard]] CsrMatrix read_matrix_market_file(const std::string& path);

/// Write \p A as `matrix coordinate real general` (1-based indices).
void write_matrix_market(std::ostream& out, const CsrMatrix& A);

/// Write to a file by path.
void write_matrix_market_file(const std::string& path, const CsrMatrix& A);

} // namespace sdcgmres::sparse
