#include "sparse/sell.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace sdcgmres::sparse {

SellMatrix::SellMatrix(const CsrMatrix& src, std::size_t chunk,
                       std::size_t sigma_chunks)
    : rows_(src.rows()), cols_(src.cols()), nnz_(src.nnz()), chunk_(chunk),
      sigma_(sigma_chunks) {
  if (chunk == 0 || chunk > kMaxChunk) {
    throw std::invalid_argument(
        "SellMatrix: chunk height C must be in [1, 256]");
  }
  if (sigma_chunks == 0) {
    throw std::invalid_argument(
        "SellMatrix: sorting window sigma must be >= 1 chunk");
  }
  const std::vector<std::size_t>& rp = src.row_ptr();
  n_chunks_ = (rows_ + chunk_ - 1) / chunk_;

  // Windowed length sort: stable descending-by-length inside windows of
  // sigma chunks, so ties keep CSR row order and the permutation is
  // deterministic.  Every chunk is a contiguous slice of one sorted
  // window, hence slot lengths are non-increasing inside each chunk --
  // the invariant the active-prefix kernels rely on.
  perm_.resize(rows_);
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});
  const std::size_t window = chunk_ * sigma_;
  for (std::size_t w0 = 0; w0 < rows_; w0 += window) {
    const std::size_t w1 = std::min(rows_, w0 + window);
    std::stable_sort(perm_.begin() + static_cast<std::ptrdiff_t>(w0),
                     perm_.begin() + static_cast<std::ptrdiff_t>(w1),
                     [&rp](std::size_t a, std::size_t b) {
                       return rp[a + 1] - rp[a] > rp[b + 1] - rp[b];
                     });
  }
  inv_perm_.resize(rows_);
  for (std::size_t s = 0; s < rows_; ++s) inv_perm_[perm_[s]] = s;

  // Slot lengths (phantom slots past rows() stay 0) and chunk offsets:
  // each chunk is padded to its longest slot, which is slot 0 after the
  // descending sort.
  len_.assign(n_chunks_ * chunk_, 0);
  for (std::size_t s = 0; s < rows_; ++s) {
    len_[s] = rp[perm_[s] + 1] - rp[perm_[s]];
  }
  chunk_ptr_.assign(n_chunks_ + 1, 0);
  for (std::size_t c = 0; c < n_chunks_; ++c) {
    chunk_ptr_[c + 1] = chunk_ptr_[c] + len_[c * chunk_] * chunk_;
  }

  // Fill, column-major inside each chunk and left-aligned, keeping every
  // row's ascending-column CSR entry order along j.  Padding slots hold
  // +0.0 / column 0 purely for alignment; the kernels never read them.
  values_.assign(chunk_ptr_[n_chunks_], 0.0);
  col_idx_.assign(chunk_ptr_[n_chunks_], 0);
  const std::vector<std::size_t>& sci = src.col_idx();
  const std::vector<double>& sv = src.values();
  for (std::size_t s = 0; s < rows_; ++s) {
    const std::size_t c = s / chunk_;
    const std::size_t r = s % chunk_;
    const std::size_t kb = rp[perm_[s]];
    for (std::size_t j = 0; j < len_[s]; ++j) {
      const std::size_t slot = chunk_ptr_[c] + j * chunk_ + r;
      values_[slot] = sv[kb + j];
      col_idx_[slot] = sci[kb + j];
    }
  }
}

void SellMatrix::spmv(std::span<const double> x, std::span<double> y) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("SellMatrix::spmv: x size mismatch");
  }
  if (y.size() != rows_) {
    throw std::invalid_argument("SellMatrix::spmv: y size mismatch");
  }
  const double* px = x.data();
  double* py = y.data();
  const auto run = [&](auto c0) {
    detail::sell_spmv_core<decltype(c0)::value, double, std::size_t>(
        rows_, n_chunks_, chunk_, chunk_ptr_.data(), len_.data(), perm_.data(),
        values_.data(), col_idx_.data(), px, py);
  };
  switch (chunk_) {
  case 4: run(std::integral_constant<std::size_t, 4>{}); break;
  case 8: run(std::integral_constant<std::size_t, 8>{}); break;
  case 16: run(std::integral_constant<std::size_t, 16>{}); break;
  case 32: run(std::integral_constant<std::size_t, 32>{}); break;
  default: run(std::integral_constant<std::size_t, 0>{}); break;
  }
}

void SellMatrix::spmm(std::size_t ncols, const double* x, std::size_t ldx,
                      double* y, std::size_t ldy) const {
  if (ncols == 0) return;
  const auto run = [&](auto c0) {
    detail::sell_spmm_core<decltype(c0)::value, double, std::size_t>(
        rows_, n_chunks_, chunk_, chunk_ptr_.data(), len_.data(), perm_.data(),
        values_.data(), col_idx_.data(), ncols, x, ldx, y, ldy);
  };
  switch (chunk_) {
  case 4: run(std::integral_constant<std::size_t, 4>{}); break;
  case 8: run(std::integral_constant<std::size_t, 8>{}); break;
  case 16: run(std::integral_constant<std::size_t, 16>{}); break;
  case 32: run(std::integral_constant<std::size_t, 32>{}); break;
  default: run(std::integral_constant<std::size_t, 0>{}); break;
  }
}

void SellMatrix::spmm(const la::BasisView& x, la::BlockView y) const {
  if (x.cols() == 0 && y.cols() == 0) return;
  if (x.rows() != cols_) {
    throw std::invalid_argument("SellMatrix::spmm: X row count mismatch");
  }
  if (y.rows() != rows_ || y.cols() != x.cols()) {
    throw std::invalid_argument("SellMatrix::spmm: Y shape mismatch");
  }
  spmm(x.cols(), x.data(), x.ld(), y.data(), y.ld());
}

} // namespace sdcgmres::sparse
