#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace sdcgmres::sparse {

CsrMatrix::CsrMatrix(CooMatrix coo) : rows_(coo.rows()), cols_(coo.cols()) {
  coo.compress();
  const auto& entries = coo.entries();
  row_ptr_.assign(rows_ + 1, 0);
  col_idx_.reserve(entries.size());
  values_.reserve(entries.size());
  for (const Triplet& t : entries) {
    ++row_ptr_[t.row + 1];
    col_idx_.push_back(t.col);
    values_.push_back(t.value);
  }
  for (std::size_t i = 0; i < rows_; ++i) {
    row_ptr_[i + 1] += row_ptr_[i];
  }
  validate();
}

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<std::size_t> row_ptr,
                     std::vector<std::size_t> col_idx,
                     std::vector<double> values)
    : rows_(rows), cols_(cols), row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)), values_(std::move(values)) {
  validate();
}

void CsrMatrix::validate() const {
  if (row_ptr_.size() != rows_ + 1) {
    throw std::invalid_argument("CsrMatrix: row_ptr size must be rows+1");
  }
  if (row_ptr_.front() != 0 || row_ptr_.back() != values_.size() ||
      col_idx_.size() != values_.size()) {
    throw std::invalid_argument("CsrMatrix: inconsistent CSR arrays");
  }
  for (std::size_t i = 0; i < rows_; ++i) {
    if (row_ptr_[i] > row_ptr_[i + 1]) {
      throw std::invalid_argument("CsrMatrix: row_ptr must be nondecreasing");
    }
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      if (col_idx_[k] >= cols_) {
        throw std::invalid_argument("CsrMatrix: column index out of range");
      }
      if (k > row_ptr_[i] && col_idx_[k] <= col_idx_[k - 1]) {
        throw std::invalid_argument(
            "CsrMatrix: column indices must be strictly increasing per row");
      }
    }
  }
}

std::span<const std::size_t> CsrMatrix::row_cols(std::size_t i) const {
  if (i >= rows_) throw std::out_of_range("CsrMatrix::row_cols");
  return {col_idx_.data() + row_ptr_[i], row_ptr_[i + 1] - row_ptr_[i]};
}

std::span<const double> CsrMatrix::row_values(std::size_t i) const {
  if (i >= rows_) throw std::out_of_range("CsrMatrix::row_values");
  return {values_.data() + row_ptr_[i], row_ptr_[i + 1] - row_ptr_[i]};
}

double CsrMatrix::at(std::size_t i, std::size_t j) const {
  if (i >= rows_ || j >= cols_) throw std::out_of_range("CsrMatrix::at");
  const auto cols = row_cols(i);
  const auto it = std::lower_bound(cols.begin(), cols.end(), j);
  if (it == cols.end() || *it != j) return 0.0;
  return values_[row_ptr_[i] + static_cast<std::size_t>(it - cols.begin())];
}

void CsrMatrix::spmv(const la::Vector& x, la::Vector& y) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("CsrMatrix::spmv: x size mismatch");
  }
  if (y.size() != rows_) y.resize(rows_);
  const auto n = static_cast<std::int64_t>(rows_);
#pragma omp parallel for schedule(static) if (n > 2048)
  for (std::int64_t ii = 0; ii < n; ++ii) {
    const auto i = static_cast<std::size_t>(ii);
    double sum = 0.0;
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      sum += values_[k] * x[col_idx_[k]];
    }
    y[i] = sum;
  }
}

void CsrMatrix::spmv_transpose(const la::Vector& x, la::Vector& y) const {
  if (x.size() != rows_) {
    throw std::invalid_argument("CsrMatrix::spmv_transpose: x size mismatch");
  }
  y.resize(cols_);
  y.fill(0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      y[col_idx_[k]] += values_[k] * xi;
    }
  }
}

la::Vector CsrMatrix::apply(const la::Vector& x) const {
  la::Vector y(rows_);
  spmv(x, y);
  return y;
}

la::Vector CsrMatrix::diagonal() const {
  const std::size_t n = std::min(rows_, cols_);
  la::Vector d(n);
  for (std::size_t i = 0; i < n; ++i) d[i] = at(i, i);
  return d;
}

CsrMatrix CsrMatrix::transposed() const {
  CooMatrix coo(cols_, rows_);
  coo.reserve(nnz());
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      coo.add(col_idx_[k], i, values_[k]);
    }
  }
  return CsrMatrix(std::move(coo));
}

double CsrMatrix::frobenius_norm() const {
  double sum = 0.0;
  for (const double v : values_) sum += v * v;
  return std::sqrt(sum);
}

CsrMatrix CsrMatrix::scaled(double alpha) const {
  CsrMatrix out = *this;
  for (double& v : out.values_) v *= alpha;
  return out;
}

CooMatrix CsrMatrix::to_coo() const {
  CooMatrix coo(rows_, cols_);
  coo.reserve(nnz());
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      coo.add(i, col_idx_[k], values_[k]);
    }
  }
  return coo;
}

} // namespace sdcgmres::sparse
