#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace sdcgmres::sparse {

CsrMatrix::CsrMatrix(CooMatrix coo) : rows_(coo.rows()), cols_(coo.cols()) {
  coo.compress();
  const auto& entries = coo.entries();
  row_ptr_.assign(rows_ + 1, 0);
  col_idx_.reserve(entries.size());
  values_.reserve(entries.size());
  for (const Triplet& t : entries) {
    ++row_ptr_[t.row + 1];
    col_idx_.push_back(t.col);
    values_.push_back(t.value);
  }
  for (std::size_t i = 0; i < rows_; ++i) {
    row_ptr_[i + 1] += row_ptr_[i];
  }
  validate();
}

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<std::size_t> row_ptr,
                     std::vector<std::size_t> col_idx,
                     std::vector<double> values)
    : rows_(rows), cols_(cols), row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)), values_(std::move(values)) {
  validate();
}

void CsrMatrix::validate() const {
  if (row_ptr_.size() != rows_ + 1) {
    throw std::invalid_argument("CsrMatrix: row_ptr size must be rows+1");
  }
  if (row_ptr_.front() != 0 || row_ptr_.back() != values_.size() ||
      col_idx_.size() != values_.size()) {
    throw std::invalid_argument("CsrMatrix: inconsistent CSR arrays");
  }
  for (std::size_t i = 0; i < rows_; ++i) {
    if (row_ptr_[i] > row_ptr_[i + 1]) {
      throw std::invalid_argument("CsrMatrix: row_ptr must be nondecreasing");
    }
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      if (col_idx_[k] >= cols_) {
        throw std::invalid_argument("CsrMatrix: column index out of range");
      }
      if (k > row_ptr_[i] && col_idx_[k] <= col_idx_[k - 1]) {
        throw std::invalid_argument(
            "CsrMatrix: column indices must be strictly increasing per row");
      }
    }
  }
}

std::span<const std::size_t> CsrMatrix::row_cols(std::size_t i) const {
  if (i >= rows_) throw std::out_of_range("CsrMatrix::row_cols");
  return {col_idx_.data() + row_ptr_[i], row_ptr_[i + 1] - row_ptr_[i]};
}

std::span<const double> CsrMatrix::row_values(std::size_t i) const {
  if (i >= rows_) throw std::out_of_range("CsrMatrix::row_values");
  return {values_.data() + row_ptr_[i], row_ptr_[i + 1] - row_ptr_[i]};
}

double CsrMatrix::at(std::size_t i, std::size_t j) const {
  if (i >= rows_ || j >= cols_) throw std::out_of_range("CsrMatrix::at");
  const auto cols = row_cols(i);
  const auto it = std::lower_bound(cols.begin(), cols.end(), j);
  if (it == cols.end() || *it != j) return 0.0;
  return values_[row_ptr_[i] + static_cast<std::size_t>(it - cols.begin())];
}

void CsrMatrix::spmv(std::span<const double> x, std::span<double> y) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("CsrMatrix::spmv: x size mismatch");
  }
  if (y.size() != rows_) {
    throw std::invalid_argument("CsrMatrix::spmv: y size mismatch");
  }
  const double* px = x.data();
  double* py = y.data();
  const auto n = static_cast<std::int64_t>(rows_);
#pragma omp parallel for schedule(static) if (n > 2048)
  for (std::int64_t ii = 0; ii < n; ++ii) {
    const auto i = static_cast<std::size_t>(ii);
    double sum = 0.0;
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      sum += values_[k] * px[col_idx_[k]];
    }
    py[i] = sum;
  }
}

void CsrMatrix::spmv(std::span<const double> x, la::Vector& y) const {
  if (y.size() != rows_) y.resize(rows_);
  spmv(x, y.span());
}

void CsrMatrix::spmv(const la::Vector& x, la::Vector& y) const {
  spmv(x.span(), y);
}

void CsrMatrix::spmm(std::size_t ncols, const double* x, std::size_t ldx,
                     double* y, std::size_t ldy) const {
  // Zero-column blocks are a no-op, returned before any pointer
  // arithmetic: an empty la::BasisView/BlockView carries a null data
  // pointer, and even forming x + c0 * ldx from it would be UB.
  if (ncols == 0) return;
  // Process right-hand sides in blocks of 4: one pass over the matrix per
  // block, with 4 independent accumulator chains per row.  Each chain
  // sums in the same order as spmv, so every output column is bitwise
  // identical to a separate spmv of that column.
  const auto n = static_cast<std::int64_t>(rows_);
  for (std::size_t c0 = 0; c0 < ncols; c0 += 4) {
    const std::size_t bw = std::min<std::size_t>(4, ncols - c0);
    const double* x0 = x + c0 * ldx;
    double* y0 = y + c0 * ldy;
    if (bw == 4) {
#pragma omp parallel for schedule(static) if (n > 2048)
      for (std::int64_t ii = 0; ii < n; ++ii) {
        const auto i = static_cast<std::size_t>(ii);
        double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
        for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
          const double a = values_[k];
          const std::size_t j = col_idx_[k];
          s0 += a * x0[j];
          s1 += a * x0[j + ldx];
          s2 += a * x0[j + 2 * ldx];
          s3 += a * x0[j + 3 * ldx];
        }
        y0[i] = s0;
        y0[i + ldy] = s1;
        y0[i + 2 * ldy] = s2;
        y0[i + 3 * ldy] = s3;
      }
    } else {
#pragma omp parallel for schedule(static) if (n > 2048)
      for (std::int64_t ii = 0; ii < n; ++ii) {
        const auto i = static_cast<std::size_t>(ii);
        double s[4] = {0.0, 0.0, 0.0, 0.0};
        for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
          const double a = values_[k];
          const std::size_t j = col_idx_[k];
          for (std::size_t c = 0; c < bw; ++c) s[c] += a * x0[j + c * ldx];
        }
        for (std::size_t c = 0; c < bw; ++c) y0[i + c * ldy] = s[c];
      }
    }
  }
}

void CsrMatrix::spmm(const la::BasisView& x, la::KrylovBasis& y) const {
  if (x.cols() == 0 && y.cols() == 0) return; // empty block: nothing to do
  if (x.rows() != cols_) {
    throw std::invalid_argument("CsrMatrix::spmm: X row count mismatch");
  }
  if (y.rows() != rows_ || y.cols() != x.cols()) {
    throw std::invalid_argument("CsrMatrix::spmm: Y shape mismatch");
  }
  spmm(x.cols(), x.data(), x.ld(), y.data(), y.ld());
}

void CsrMatrix::spmv_transpose(std::span<const double> x, la::Vector& y) const {
  if (x.size() != rows_) {
    throw std::invalid_argument("CsrMatrix::spmv_transpose: x size mismatch");
  }
  y.resize(cols_);
#ifdef _OPENMP
  const int max_threads = omp_get_max_threads();
  if (max_threads > 1 && nnz() > 16384) {
    // Column-ownership parallelization: a one-time O(nnz + cols) partition
    // assigns each chunk a contiguous, nnz-balanced column range that it
    // ALONE writes.  Every chunk scans all rows in ascending order (with
    // the same xi == 0 skip as the serial path) and, per row, locates its
    // column sub-range by binary search -- valid because validate()
    // guarantees strictly increasing column indices per row.  Each output
    // column therefore accumulates its terms in exactly the serial row
    // order, so results are bitwise identical to the serial fallback, with
    // NO per-thread dense buffers (the old scheme cost O(threads * cols)
    // scratch plus a reduction pass; this writes y directly).
    std::vector<std::size_t> col_prefix(cols_ + 1, 0);
    for (const std::size_t j : col_idx_) ++col_prefix[j + 1];
    for (std::size_t j = 0; j < cols_; ++j) col_prefix[j + 1] += col_prefix[j];
    const int nchunks = max_threads;
    std::vector<std::size_t> bounds(static_cast<std::size_t>(nchunks) + 1);
    bounds[0] = 0;
    bounds[static_cast<std::size_t>(nchunks)] = cols_;
    for (int t = 1; t < nchunks; ++t) {
      const std::size_t target =
          (nnz() * static_cast<std::size_t>(t)) / static_cast<std::size_t>(nchunks);
      bounds[static_cast<std::size_t>(t)] = static_cast<std::size_t>(
          std::lower_bound(col_prefix.begin(), col_prefix.end(), target) -
          col_prefix.begin());
    }
    const std::size_t* cbeg = col_idx_.data();
    double* py = y.data();
#pragma omp parallel for schedule(static) num_threads(max_threads)
    for (int t = 0; t < nchunks; ++t) {
      const std::size_t c_lo = bounds[static_cast<std::size_t>(t)];
      const std::size_t c_hi = bounds[static_cast<std::size_t>(t) + 1];
      if (c_lo == c_hi) continue;
      std::fill(py + c_lo, py + c_hi, 0.0);
      for (std::size_t i = 0; i < rows_; ++i) {
        const double xi = x[i];
        if (xi == 0.0) continue;
        const std::size_t kb = row_ptr_[i];
        const std::size_t ke = row_ptr_[i + 1];
        const std::size_t k0 = static_cast<std::size_t>(
            std::lower_bound(cbeg + kb, cbeg + ke, c_lo) - cbeg);
        const std::size_t k1 = static_cast<std::size_t>(
            std::lower_bound(cbeg + k0, cbeg + ke, c_hi) - cbeg);
        for (std::size_t k = k0; k < k1; ++k) {
          py[cbeg[k]] += values_[k] * xi;
        }
      }
    }
    return;
  }
#endif
  y.fill(0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      y[col_idx_[k]] += values_[k] * xi;
    }
  }
}

void CsrMatrix::spmv_transpose(const la::Vector& x, la::Vector& y) const {
  spmv_transpose(x.span(), y);
}

void CsrMatrix::spmm_transpose(std::size_t ncols, const double* x,
                               std::size_t ldx, double* y,
                               std::size_t ldy) const {
  if (ncols == 0) return; // empty block: no pointer arithmetic (see spmm)
  // Operand columns go in blocks of 4: one pass over the matrix per block
  // instead of one per operand.  Each output column accumulates in
  // ascending-row order with spmv_transpose's x_i == 0 row skip applied
  // PER COLUMN (the skip only elides += of a*0 terms for that column), so
  // every output column is bitwise identical to a separate spmv_transpose.
  for (std::size_t c0 = 0; c0 < ncols; c0 += 4) {
    const std::size_t bw = std::min<std::size_t>(4, ncols - c0);
    const double* x0 = x + c0 * ldx;
    double* y0 = y + c0 * ldy;
#ifdef _OPENMP
    const int max_threads = omp_get_max_threads();
    if (max_threads > 1 && nnz() > 16384) {
      // Same column-ownership parallelization as spmv_transpose: each
      // chunk alone writes a contiguous, nnz-balanced matrix-column range
      // of every output column, scanning the rows in serial order, so the
      // threaded fused product stays bitwise identical too.
      std::vector<std::size_t> col_prefix(cols_ + 1, 0);
      for (const std::size_t j : col_idx_) ++col_prefix[j + 1];
      for (std::size_t j = 0; j < cols_; ++j) {
        col_prefix[j + 1] += col_prefix[j];
      }
      const int nchunks = max_threads;
      std::vector<std::size_t> bounds(static_cast<std::size_t>(nchunks) + 1);
      bounds[0] = 0;
      bounds[static_cast<std::size_t>(nchunks)] = cols_;
      for (int t = 1; t < nchunks; ++t) {
        const std::size_t target = (nnz() * static_cast<std::size_t>(t)) /
                                   static_cast<std::size_t>(nchunks);
        bounds[static_cast<std::size_t>(t)] = static_cast<std::size_t>(
            std::lower_bound(col_prefix.begin(), col_prefix.end(), target) -
            col_prefix.begin());
      }
      const std::size_t* cbeg = col_idx_.data();
#pragma omp parallel for schedule(static) num_threads(max_threads)
      for (int t = 0; t < nchunks; ++t) {
        const std::size_t c_lo = bounds[static_cast<std::size_t>(t)];
        const std::size_t c_hi = bounds[static_cast<std::size_t>(t) + 1];
        if (c_lo == c_hi) continue;
        for (std::size_t c = 0; c < bw; ++c) {
          std::fill(y0 + c * ldy + c_lo, y0 + c * ldy + c_hi, 0.0);
        }
        for (std::size_t i = 0; i < rows_; ++i) {
          double xi[4];
          bool any = false;
          for (std::size_t c = 0; c < bw; ++c) {
            xi[c] = x0[i + c * ldx];
            any = any || xi[c] != 0.0;
          }
          if (!any) continue;
          const std::size_t kb = row_ptr_[i];
          const std::size_t ke = row_ptr_[i + 1];
          const std::size_t k0 = static_cast<std::size_t>(
              std::lower_bound(cbeg + kb, cbeg + ke, c_lo) - cbeg);
          const std::size_t k1 = static_cast<std::size_t>(
              std::lower_bound(cbeg + k0, cbeg + ke, c_hi) - cbeg);
          for (std::size_t k = k0; k < k1; ++k) {
            const double a = values_[k];
            const std::size_t j = cbeg[k];
            for (std::size_t c = 0; c < bw; ++c) {
              if (xi[c] != 0.0) y0[j + c * ldy] += a * xi[c];
            }
          }
        }
      }
      continue;
    }
#endif
    for (std::size_t c = 0; c < bw; ++c) {
      std::fill(y0 + c * ldy, y0 + c * ldy + cols_, 0.0);
    }
    for (std::size_t i = 0; i < rows_; ++i) {
      double xi[4];
      bool any = false;
      for (std::size_t c = 0; c < bw; ++c) {
        xi[c] = x0[i + c * ldx];
        any = any || xi[c] != 0.0;
      }
      if (!any) continue;
      for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
        const double a = values_[k];
        const std::size_t j = col_idx_[k];
        for (std::size_t c = 0; c < bw; ++c) {
          if (xi[c] != 0.0) y0[j + c * ldy] += a * xi[c];
        }
      }
    }
  }
}

void CsrMatrix::spmm_transpose(const la::BasisView& x,
                               la::KrylovBasis& y) const {
  if (x.cols() == 0 && y.cols() == 0) return; // empty block: nothing to do
  if (x.rows() != rows_) {
    throw std::invalid_argument("CsrMatrix::spmm_transpose: X row count "
                                "mismatch");
  }
  if (y.rows() != cols_ || y.cols() != x.cols()) {
    throw std::invalid_argument("CsrMatrix::spmm_transpose: Y shape "
                                "mismatch");
  }
  spmm_transpose(x.cols(), x.data(), x.ld(), y.data(), y.ld());
}

la::Vector CsrMatrix::apply(const la::Vector& x) const {
  la::Vector y(rows_);
  spmv(x, y);
  return y;
}

la::Vector CsrMatrix::diagonal() const {
  const std::size_t n = std::min(rows_, cols_);
  la::Vector d(n);
  // Single pass over the stored entries; column indices are strictly
  // increasing per row, so the scan can stop at the first index >= i.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const std::size_t j = col_idx_[k];
      if (j >= i) {
        if (j == i) d[i] = values_[k];
        break;
      }
    }
  }
  return d;
}

CsrMatrix CsrMatrix::transposed() const {
  // Counting-sort transpose: O(nnz), no COO round-trip, no re-sort.  The
  // result's per-row column indices are increasing by construction (rows
  // are visited in order), so the CSR invariants hold without validate().
  std::vector<std::size_t> t_row_ptr(cols_ + 1, 0);
  for (const std::size_t j : col_idx_) ++t_row_ptr[j + 1];
  for (std::size_t j = 0; j < cols_; ++j) t_row_ptr[j + 1] += t_row_ptr[j];
  std::vector<std::size_t> t_col_idx(nnz());
  std::vector<double> t_values(nnz());
  std::vector<std::size_t> next(t_row_ptr.begin(), t_row_ptr.end() - 1);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const std::size_t pos = next[col_idx_[k]]++;
      t_col_idx[pos] = i;
      t_values[pos] = values_[k];
    }
  }
  return CsrMatrix(Prevalidated{}, cols_, rows_, std::move(t_row_ptr),
                   std::move(t_col_idx), std::move(t_values));
}

double CsrMatrix::frobenius_norm() const {
  double sum = 0.0;
  for (const double v : values_) sum += v * v;
  return std::sqrt(sum);
}

CsrMatrix CsrMatrix::scaled(double alpha) const {
  std::vector<double> vals = values_;
  for (double& v : vals) v *= alpha;
  return CsrMatrix(Prevalidated{}, rows_, cols_, row_ptr_, col_idx_,
                   std::move(vals));
}

CooMatrix CsrMatrix::to_coo() const {
  CooMatrix coo(rows_, cols_);
  coo.reserve(nnz());
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      coo.add(i, col_idx_[k], values_[k]);
    }
  }
  return coo;
}

} // namespace sdcgmres::sparse
