#pragma once
/// \file sell.hpp
/// \brief SELL-C-sigma sparse storage: the SIMD-friendly execution format
/// behind the `backend=sell` matrix plane.
///
/// CSR's inner loop strides an irregular row; SELL-C-sigma (sliced ELL
/// with sorting) regroups the matrix into chunks of C consecutive rows,
/// stores each chunk column-major and padded to the chunk's widest row,
/// and sorts rows by descending length inside windows of sigma chunks so
/// chunks are packed with similarly-long rows.  The kernel's inner loop
/// is then a unit-stride walk over C rows at once -- the shape compilers
/// vectorize -- at the cost of storing padding entries.
///
/// Layout, built from a validated CsrMatrix:
///
///   * perm()[s] is the original row stored in slot s; inv_perm() is its
///     inverse.  Sorting is windowed (sigma chunks of C rows each) and
///     STABLE, so the permutation is deterministic and rows never leave
///     their window.  Because every chunk is a contiguous slice of one
///     sorted window, slot lengths are non-increasing inside each chunk.
///   * chunk_ptr()[c] is the entry offset of chunk c; the chunk's padded
///     width is (chunk_ptr()[c+1] - chunk_ptr()[c]) / C.
///   * Entry j of slot r in chunk c lives at chunk_ptr()[c] + j*C + r in
///     values()/col_idx(): column-major inside the chunk, rows
///     left-aligned.  Entries keep their CSR (ascending-column) order
///     along j.
///   * Padding slots hold value +0.0 and column 0 for alignment, but the
///     kernels NEVER read them: because slot lengths are non-increasing
///     inside a chunk, the rows still active at chunk column j are a
///     prefix, and the kernel shrinks its row loop to that prefix
///     ("active-prefix" loop).  Padding is therefore provably inert --
///     even 0.0 * Inf or 0.0 * NaN can never contaminate a sum, and a
///     row's partial sums accumulate in exactly CSR spmv's order, making
///     every result bitwise identical to CSR's (the backend acceptance
///     contract).  Empty rows produce the same +0.0 a CSR row sum does.
///
/// Parallelism: OpenMP over chunks.  Each chunk scatters to a disjoint
/// set of output rows (its own perm() slots), so results are bitwise
/// invariant under the thread count.
///
/// SellMatrixT<S, I> is the narrowed mirror (float values and/or int32
/// indices) for the mixed-precision inner plane, mirroring CsrMatrixT:
/// construction from a SellMatrix validates that every index-typed
/// quantity (rows, cols, and the padded entry count, which chunk_ptr
/// entries reach) fits I and throws std::overflow_error otherwise.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <numeric>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "la/block.hpp"
#include "la/krylov_basis.hpp"
#include "sparse/csr.hpp"

namespace sdcgmres::sparse {

namespace detail {

/// Hard cap on the chunk height: bounds the generic kernels' stack
/// accumulators (C doubles per right-hand side per chunk).
inline constexpr std::size_t kSellMaxChunk = 256;

/// SELL spmv core shared by SellMatrix and SellMatrixT.  C0 is the
/// compile-time chunk height (0 selects the runtime-\p chunk generic
/// path); \p len holds the non-increasing slot lengths per chunk and the
/// active-prefix loop guarantees padding slots are never read.
template <std::size_t C0, typename S, typename I>
inline void sell_spmv_core(std::size_t rows, std::size_t n_chunks,
                           std::size_t chunk, const I* chunk_ptr, const I* len,
                           const I* perm, const S* values, const I* col_idx,
                           const S* x, S* y) {
  const auto nc = static_cast<std::int64_t>(n_chunks);
#pragma omp parallel for schedule(static) if (rows > 2048)
  for (std::int64_t cc = 0; cc < nc; ++cc) {
    const auto c = static_cast<std::size_t>(cc);
    const std::size_t C = C0 != 0 ? C0 : chunk;
    const std::size_t base = c * C;
    const std::size_t nrows = std::min(C, rows - base);
    const auto off = static_cast<std::size_t>(chunk_ptr[c]);
    const std::size_t width =
        (static_cast<std::size_t>(chunk_ptr[c + 1]) - off) / C;
    const I* l = len + base;
    S sum[C0 != 0 ? C0 : kSellMaxChunk];
    for (std::size_t r = 0; r < nrows; ++r) sum[r] = S(0);
    std::size_t active = nrows;
    for (std::size_t j = 0; j < width; ++j) {
      while (active > 0 && static_cast<std::size_t>(l[active - 1]) <= j) {
        --active;
      }
      const S* v = values + off + j * C;
      const I* ci = col_idx + off + j * C;
      for (std::size_t r = 0; r < active; ++r) {
        sum[r] += v[r] * x[static_cast<std::size_t>(ci[r])];
      }
    }
    for (std::size_t r = 0; r < nrows; ++r) {
      y[static_cast<std::size_t>(perm[base + r])] = sum[r];
    }
  }
}

/// SELL SpMM core: same chunk walk as sell_spmv_core with CsrMatrix
/// spmm's 4-wide right-hand-side blocking.  Per output column the
/// accumulation order equals sell_spmv_core's (ascending j), so each
/// column is bitwise identical to a separate spmv of that column.
template <std::size_t C0, typename S, typename I>
inline void sell_spmm_core(std::size_t rows, std::size_t n_chunks,
                           std::size_t chunk, const I* chunk_ptr, const I* len,
                           const I* perm, const S* values, const I* col_idx,
                           std::size_t ncols, const S* x, std::size_t ldx,
                           S* y, std::size_t ldy) {
  const auto nc = static_cast<std::int64_t>(n_chunks);
  constexpr std::size_t kAcc = C0 != 0 ? C0 : kSellMaxChunk;
  for (std::size_t c0 = 0; c0 < ncols; c0 += 4) {
    const std::size_t bw = std::min<std::size_t>(4, ncols - c0);
    const S* x0 = x + c0 * ldx;
    S* y0 = y + c0 * ldy;
    if (bw == 4) {
#pragma omp parallel for schedule(static) if (rows > 2048)
      for (std::int64_t cc = 0; cc < nc; ++cc) {
        const auto c = static_cast<std::size_t>(cc);
        const std::size_t C = C0 != 0 ? C0 : chunk;
        const std::size_t base = c * C;
        const std::size_t nrows = std::min(C, rows - base);
        const auto off = static_cast<std::size_t>(chunk_ptr[c]);
        const std::size_t width =
            (static_cast<std::size_t>(chunk_ptr[c + 1]) - off) / C;
        const I* l = len + base;
        S s0[kAcc], s1[kAcc], s2[kAcc], s3[kAcc];
        for (std::size_t r = 0; r < nrows; ++r) {
          s0[r] = S(0);
          s1[r] = S(0);
          s2[r] = S(0);
          s3[r] = S(0);
        }
        std::size_t active = nrows;
        for (std::size_t j = 0; j < width; ++j) {
          while (active > 0 && static_cast<std::size_t>(l[active - 1]) <= j) {
            --active;
          }
          const S* v = values + off + j * C;
          const I* ci = col_idx + off + j * C;
          for (std::size_t r = 0; r < active; ++r) {
            const S a = v[r];
            const auto jj = static_cast<std::size_t>(ci[r]);
            s0[r] += a * x0[jj];
            s1[r] += a * x0[jj + ldx];
            s2[r] += a * x0[jj + 2 * ldx];
            s3[r] += a * x0[jj + 3 * ldx];
          }
        }
        for (std::size_t r = 0; r < nrows; ++r) {
          const auto i = static_cast<std::size_t>(perm[base + r]);
          y0[i] = s0[r];
          y0[i + ldy] = s1[r];
          y0[i + 2 * ldy] = s2[r];
          y0[i + 3 * ldy] = s3[r];
        }
      }
    } else {
#pragma omp parallel for schedule(static) if (rows > 2048)
      for (std::int64_t cc = 0; cc < nc; ++cc) {
        const auto c = static_cast<std::size_t>(cc);
        const std::size_t C = C0 != 0 ? C0 : chunk;
        const std::size_t base = c * C;
        const std::size_t nrows = std::min(C, rows - base);
        const auto off = static_cast<std::size_t>(chunk_ptr[c]);
        const std::size_t width =
            (static_cast<std::size_t>(chunk_ptr[c + 1]) - off) / C;
        const I* l = len + base;
        S s[4][kAcc];
        for (std::size_t b = 0; b < bw; ++b) {
          for (std::size_t r = 0; r < nrows; ++r) s[b][r] = S(0);
        }
        std::size_t active = nrows;
        for (std::size_t j = 0; j < width; ++j) {
          while (active > 0 && static_cast<std::size_t>(l[active - 1]) <= j) {
            --active;
          }
          const S* v = values + off + j * C;
          const I* ci = col_idx + off + j * C;
          for (std::size_t r = 0; r < active; ++r) {
            const S a = v[r];
            const auto jj = static_cast<std::size_t>(ci[r]);
            for (std::size_t b = 0; b < bw; ++b) s[b][r] += a * x0[jj + b * ldx];
          }
        }
        for (std::size_t r = 0; r < nrows; ++r) {
          const auto i = static_cast<std::size_t>(perm[base + r]);
          for (std::size_t b = 0; b < bw; ++b) y0[i + b * ldy] = s[b][r];
        }
      }
    }
  }
}

} // namespace detail

/// Immutable SELL-C-sigma matrix (double values, size_t indices) built
/// from a validated CsrMatrix.  See the file comment for the layout and
/// the padding-inertness argument.
class SellMatrix {
public:
  static constexpr std::size_t kDefaultChunk = 8;
  static constexpr std::size_t kDefaultSigmaChunks = 1;
  static constexpr std::size_t kMaxChunk = detail::kSellMaxChunk;

  SellMatrix() = default;

  /// Convert \p src.  \p chunk is the chunk height C (1..kMaxChunk);
  /// \p sigma_chunks is the sorting-window size in CHUNKS (>= 1), i.e.
  /// rows are length-sorted inside windows of sigma_chunks*chunk rows.
  /// Throws std::invalid_argument on out-of-range geometry.
  explicit SellMatrix(const CsrMatrix& src, std::size_t chunk = kDefaultChunk,
                      std::size_t sigma_chunks = kDefaultSigmaChunks);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  /// Stored nonzeros of the SOURCE matrix (excludes padding).
  [[nodiscard]] std::size_t nnz() const noexcept { return nnz_; }
  /// Padded entry slots actually stored (values().size()): what the
  /// kernels stream, and what byte accounting must count.
  [[nodiscard]] std::size_t stored() const noexcept { return values_.size(); }
  /// stored()/nnz(): the padding overhead factor (1.0 when empty).
  [[nodiscard]] double padding_ratio() const noexcept {
    return nnz_ == 0 ? 1.0
                     : static_cast<double>(stored()) /
                           static_cast<double>(nnz_);
  }

  [[nodiscard]] std::size_t chunk() const noexcept { return chunk_; }
  [[nodiscard]] std::size_t sigma_chunks() const noexcept { return sigma_; }
  [[nodiscard]] std::size_t n_chunks() const noexcept { return n_chunks_; }
  /// Padded width of chunk \p c (entries per slot).
  [[nodiscard]] std::size_t chunk_width(std::size_t c) const {
    return (chunk_ptr_.at(c + 1) - chunk_ptr_.at(c)) / chunk_;
  }

  [[nodiscard]] const std::vector<std::size_t>& chunk_ptr() const noexcept {
    return chunk_ptr_;
  }
  /// Per-slot row lengths (n_chunks()*chunk() entries, non-increasing
  /// inside each chunk; phantom slots past rows() have length 0).
  [[nodiscard]] const std::vector<std::size_t>& slot_lengths() const noexcept {
    return len_;
  }
  /// perm()[s]: original row held by slot s.
  [[nodiscard]] const std::vector<std::size_t>& perm() const noexcept {
    return perm_;
  }
  /// inv_perm()[i]: slot holding original row i.
  [[nodiscard]] const std::vector<std::size_t>& inv_perm() const noexcept {
    return inv_perm_;
  }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }
  [[nodiscard]] const std::vector<std::size_t>& col_idx() const noexcept {
    return col_idx_;
  }

  /// Index-typed slots the kernels stream per matrix pass: padded column
  /// indices + chunk_ptr + slot lengths + the scatter permutation.  The
  /// operator's index-byte accounting multiplies this by the index width.
  [[nodiscard]] std::size_t index_slots() const noexcept {
    return col_idx_.size() + chunk_ptr_.size() + len_.size() + perm_.size();
  }

  /// y := A*x, the span core (same contract as CsrMatrix::spmv: exact
  /// sizes, no aliasing).  Results are bitwise identical to
  /// CsrMatrix::spmv at any thread count.
  void spmv(std::span<const double> x, std::span<double> y) const;

  /// Raw SpMM core over column-major blocks (same contract as
  /// CsrMatrix::spmm); each output column is bitwise identical to a
  /// separate spmv of that column.
  void spmm(std::size_t ncols, const double* x, std::size_t ldx, double* y,
            std::size_t ldy) const;

  /// Y := A*X over block views (the operator's fused apply_block path).
  void spmm(const la::BasisView& x, la::BlockView y) const;

private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t nnz_ = 0;
  std::size_t chunk_ = kDefaultChunk;
  std::size_t sigma_ = kDefaultSigmaChunks;
  std::size_t n_chunks_ = 0;
  std::vector<std::size_t> perm_;
  std::vector<std::size_t> inv_perm_;
  std::vector<std::size_t> chunk_ptr_{0};
  std::vector<std::size_t> len_;
  std::vector<double> values_;
  std::vector<std::size_t> col_idx_;
};

/// Narrowed SELL mirror with scalar type \p S and index type \p I: the
/// SELL counterpart of CsrMatrixT, built from an assembled SellMatrix so
/// the permutation, chunk geometry, and therefore the accumulation order
/// are IDENTICAL to the source's -- a (double, int32) mirror is bitwise
/// identical to the SellMatrix, and an (S, I) mirror is bitwise
/// identical per column to the same-S CsrMatrixT mirror.
template <typename S, typename I>
class SellMatrixT {
public:
  static_assert(std::is_integral_v<I>, "index type must be integral");

  SellMatrixT() = default;

  /// Narrowing copy.  Throws std::overflow_error when rows, cols, or the
  /// padded entry count (which chunk_ptr entries reach) overflow \p I;
  /// slot lengths and permutation entries are bounded by cols and rows.
  explicit SellMatrixT(const SellMatrix& src)
      : rows_(src.rows()), cols_(src.cols()), nnz_(src.nnz()),
        chunk_(src.chunk()), n_chunks_(src.n_chunks()) {
    const auto max_index =
        static_cast<std::size_t>(std::numeric_limits<I>::max());
    if (src.rows() > max_index || src.cols() > max_index ||
        src.stored() > max_index) {
      throw std::overflow_error(
          "SellMatrixT: matrix shape overflows the compressed index type");
    }
    const auto narrow = [](const std::vector<std::size_t>& v) {
      std::vector<I> out;
      out.reserve(v.size());
      for (const std::size_t e : v) out.push_back(static_cast<I>(e));
      return out;
    };
    chunk_ptr_ = narrow(src.chunk_ptr());
    len_ = narrow(src.slot_lengths());
    perm_ = narrow(src.perm());
    col_idx_ = narrow(src.col_idx());
    values_.reserve(src.stored());
    for (const double v : src.values()) values_.push_back(static_cast<S>(v));
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return nnz_; }
  [[nodiscard]] std::size_t stored() const noexcept { return values_.size(); }
  [[nodiscard]] std::size_t chunk() const noexcept { return chunk_; }
  [[nodiscard]] std::size_t n_chunks() const noexcept { return n_chunks_; }
  [[nodiscard]] const std::vector<I>& chunk_ptr() const noexcept {
    return chunk_ptr_;
  }
  [[nodiscard]] const std::vector<I>& slot_lengths() const noexcept {
    return len_;
  }
  [[nodiscard]] const std::vector<I>& perm() const noexcept { return perm_; }
  [[nodiscard]] const std::vector<S>& values() const noexcept {
    return values_;
  }
  [[nodiscard]] const std::vector<I>& col_idx() const noexcept {
    return col_idx_;
  }
  [[nodiscard]] std::size_t index_slots() const noexcept {
    return col_idx_.size() + chunk_ptr_.size() + len_.size() + perm_.size();
  }

  /// y := A*x at the plane's precision (same contract as
  /// CsrMatrixT::spmv).
  void spmv(std::span<const S> x, std::span<S> y) const {
    if (x.size() != cols_) {
      throw std::invalid_argument("SellMatrixT::spmv: x size mismatch");
    }
    if (y.size() != rows_) {
      throw std::invalid_argument("SellMatrixT::spmv: y size mismatch");
    }
    const S* px = x.data();
    S* py = y.data();
    const auto run = [&](auto c0) {
      detail::sell_spmv_core<decltype(c0)::value, S, I>(
          rows_, n_chunks_, chunk_, chunk_ptr_.data(), len_.data(),
          perm_.data(), values_.data(), col_idx_.data(), px, py);
    };
    switch (chunk_) {
    case 4: run(std::integral_constant<std::size_t, 4>{}); break;
    case 8: run(std::integral_constant<std::size_t, 8>{}); break;
    case 16: run(std::integral_constant<std::size_t, 16>{}); break;
    case 32: run(std::integral_constant<std::size_t, 32>{}); break;
    default: run(std::integral_constant<std::size_t, 0>{}); break;
    }
  }

  /// Raw SpMM core (same contract as CsrMatrixT::spmm).
  void spmm(std::size_t ncols, const S* x, std::size_t ldx, S* y,
            std::size_t ldy) const {
    if (ncols == 0) return;
    const auto run = [&](auto c0) {
      detail::sell_spmm_core<decltype(c0)::value, S, I>(
          rows_, n_chunks_, chunk_, chunk_ptr_.data(), len_.data(),
          perm_.data(), values_.data(), col_idx_.data(), ncols, x, ldx, y,
          ldy);
    };
    switch (chunk_) {
    case 4: run(std::integral_constant<std::size_t, 4>{}); break;
    case 8: run(std::integral_constant<std::size_t, 8>{}); break;
    case 16: run(std::integral_constant<std::size_t, 16>{}); break;
    case 32: run(std::integral_constant<std::size_t, 32>{}); break;
    default: run(std::integral_constant<std::size_t, 0>{}); break;
    }
  }

  /// Y := A*X over block views (the lockstep staging path).
  void spmm(const la::BasisViewT<S>& x, const la::BlockViewT<S>& y) const {
    if (x.cols() == 0 && y.cols() == 0) return;
    if (x.rows() != cols_) {
      throw std::invalid_argument("SellMatrixT::spmm: X row count mismatch");
    }
    if (y.rows() != rows_ || y.cols() != x.cols()) {
      throw std::invalid_argument("SellMatrixT::spmm: Y shape mismatch");
    }
    spmm(x.cols(), x.data(), x.ld(), y.data(), y.ld());
  }

private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t nnz_ = 0;
  std::size_t chunk_ = SellMatrix::kDefaultChunk;
  std::size_t n_chunks_ = 0;
  std::vector<I> chunk_ptr_{0};
  std::vector<I> len_;
  std::vector<I> perm_;
  std::vector<S> values_;
  std::vector<I> col_idx_;
};

} // namespace sdcgmres::sparse
