#include "sparse/coo.hpp"

#include <algorithm>
#include <stdexcept>

namespace sdcgmres::sparse {

void CooMatrix::add(std::size_t row, std::size_t col, double value) {
  if (row >= rows_ || col >= cols_) {
    throw std::out_of_range("CooMatrix::add: index outside matrix");
  }
  entries_.push_back({row, col, value});
}

void CooMatrix::compress() {
  std::sort(entries_.begin(), entries_.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  std::vector<Triplet> merged;
  merged.reserve(entries_.size());
  for (const Triplet& t : entries_) {
    if (!merged.empty() && merged.back().row == t.row &&
        merged.back().col == t.col) {
      merged.back().value += t.value;
    } else {
      merged.push_back(t);
    }
  }
  entries_ = std::move(merged);
}

} // namespace sdcgmres::sparse
