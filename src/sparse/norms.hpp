#pragma once
/// \file norms.hpp
/// \brief Matrix norm and condition-number estimation.
///
/// The paper's fault detector (Eq. 3) needs an upper bound on the Hessenberg
/// entries: |h_ij| <= ||A||_2 <= ||A||_F.  The Frobenius norm is exact and
/// cheap (one pass over the values, computed in sparse::CsrMatrix), while
/// ||A||_2 = sigma_max(A) is estimated here by power iteration on A^T A.

#include <cstddef>

#include "sparse/csr.hpp"

namespace sdcgmres::sparse {

/// Result of an iterative norm estimate.
struct NormEstimate {
  double value = 0.0;       ///< the estimate
  std::size_t iterations = 0; ///< iterations performed
  bool converged = false;   ///< relative change fell below tolerance
};

/// Estimate ||A||_2 = sigma_max(A) by power iteration on A^T A.
/// The estimate is a lower bound on the true 2-norm that converges from
/// below, so callers who need a guaranteed upper bound should use the
/// Frobenius norm instead (as the paper's detector does).
[[nodiscard]] NormEstimate estimate_two_norm(const CsrMatrix& A,
                                             std::size_t max_iters = 200,
                                             double tol = 1e-10,
                                             unsigned seed = 0x5DCu);

/// Batched sigma_max calibration: \p block independent power-iteration
/// replicas (distinct random starts) advanced simultaneously.  Both
/// halves of each iteration are fused: ONE blocked SpMM for the forward
/// products and ONE blocked transpose SpMM for the transpose products,
/// so an iteration streams the matrix ~2 times at any block size instead
/// of 2 * block for separate scalar runs (block-fold traffic saving; the
/// fused transpose products are bitwise identical to per-replica
/// spmv_transpose calls).  Returns the largest replica's estimate, which is what
/// the detector-bound calibration wants: a start vector accidentally
/// deficient in the top singular direction cannot drag the bound down.
/// Converges when the best replica's relative change falls below \p tol.
/// block == 1 reduces to estimate_two_norm's iteration; block == 0 throws
/// std::invalid_argument (a zero-replica calibration has no answer).
[[nodiscard]] NormEstimate estimate_two_norm_batch(const CsrMatrix& A,
                                                   std::size_t block = 4,
                                                   std::size_t max_iters = 200,
                                                   double tol = 1e-10,
                                                   unsigned seed = 0x5DCu);

/// Estimate sigma_min(A) by inverse power iteration on A^T A, where each
/// application of (A^T A)^{-1} is performed by two long unrestarted GMRES
/// solves.  Intended for small/moderate matrices in tests and Table I.
[[nodiscard]] NormEstimate estimate_smallest_singular_value(
    const CsrMatrix& A, std::size_t max_iters = 30, double solve_tol = 1e-12,
    std::size_t solve_max_iters = 2000, unsigned seed = 0x5DCu);

/// Condition number estimate sigma_max / sigma_min using the two estimators
/// above.  Returns +inf if the sigma_min estimate is zero.
[[nodiscard]] double estimate_condition_number(const CsrMatrix& A,
                                               unsigned seed = 0x5DCu);

/// Smallest Euclidean column norm min_j ||A e_j||_2.  This is a rigorous
/// *upper* bound on sigma_min, so sigma_max / min_column_norm is a rigorous
/// *lower* bound on the condition number -- usable even for matrices whose
/// kappa ~ 1e13 puts iterative sigma_min estimation beyond double
/// precision (the circuit matrix in Table I).
[[nodiscard]] double min_column_norm(const CsrMatrix& A);

/// Exact 1-norm (max column sum of absolute values).
[[nodiscard]] double one_norm(const CsrMatrix& A);

/// Exact infinity-norm (max row sum of absolute values).
[[nodiscard]] double inf_norm(const CsrMatrix& A);

/// Rigorous upper bound on sigma_max(A): sqrt(||A||_1 * ||A||_inf).
/// One pass over the matrix, no iteration -- a detector bound that is
/// often far tighter than ||A||_F (for the Poisson matrix: 8 exactly,
/// vs ||A||_F = 446).  Holds for any A by Hoelder interpolation.
[[nodiscard]] double sqrt_one_inf_bound(const CsrMatrix& A);

/// Gershgorin bound on the spectrum: max_i (|a_ii| + sum_{j!=i} |a_ij|).
/// For symmetric A this bounds the spectral radius and hence ||A||_2; for
/// general A it bounds |lambda| but NOT sigma_max, so the detector should
/// use it only for symmetric matrices (equals inf_norm, kept as a named
/// concept because the SPD analysis in the paper reasons via eigenvalues).
[[nodiscard]] double gershgorin_bound(const CsrMatrix& A);

/// The cheapest rigorous detector bound available for \p A in one pass:
/// min(||A||_F, sqrt(||A||_1 ||A||_inf)).  Every Arnoldi coefficient
/// satisfies |h(i,j)| <= sigma_max(A) <= this bound (paper Eq. 3 with a
/// tighter right-hand side).
[[nodiscard]] double cheapest_detector_bound(const CsrMatrix& A);

} // namespace sdcgmres::sparse
