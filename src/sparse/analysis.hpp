#pragma once
/// \file analysis.hpp
/// \brief Structural and numerical analysis of sparse matrices.
///
/// Provides the characteristics the paper reports in Table I: symmetry of
/// the nonzero pattern, numerical symmetry, positive-definiteness probes,
/// structural rank heuristics, and bandwidth.

#include <cstddef>

#include "sparse/csr.hpp"

namespace sdcgmres::sparse {

/// Summary of a matrix's structural/numerical properties (Table I rows).
struct MatrixProperties {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t nnz = 0;
  bool pattern_symmetric = false;   ///< nonzero pattern equals its transpose
  bool numerically_symmetric = false; ///< A == A^T entry-wise (exact)
  bool has_full_structural_rank = false; ///< every row and column nonempty
  bool diagonally_dominant = false; ///< weak row diagonal dominance
  std::size_t bandwidth = 0;        ///< max |i-j| over stored entries
};

/// Compute all properties in one pass over A and A^T.
[[nodiscard]] MatrixProperties analyze(const CsrMatrix& A);

/// True when the nonzero *pattern* of A is symmetric.
[[nodiscard]] bool is_pattern_symmetric(const CsrMatrix& A);

/// True when A equals its transpose exactly (entry-wise), within
/// absolute tolerance \p tol.
[[nodiscard]] bool is_numerically_symmetric(const CsrMatrix& A,
                                            double tol = 0.0);

/// Cheap necessary condition for full structural rank: every row and every
/// column holds at least one nonzero.  (A true maximum-matching structural
/// rank is not needed for the paper's matrices, both of which satisfy this.)
[[nodiscard]] bool has_nonempty_rows_and_cols(const CsrMatrix& A);

/// Weak row diagonal dominance: |a_ii| >= sum_{j != i} |a_ij| for all i.
[[nodiscard]] bool is_diagonally_dominant(const CsrMatrix& A);

/// Max |i - j| over stored entries.
[[nodiscard]] std::size_t bandwidth(const CsrMatrix& A);

/// Monte-Carlo positive-definiteness probe: checks x^T A x > 0 for
/// \p trials random vectors.  Returns false at the first non-positive
/// quadratic form.  (A necessary condition only; sufficient in practice for
/// the generated test matrices.)
[[nodiscard]] bool probe_positive_definite(const CsrMatrix& A,
                                           std::size_t trials = 16,
                                           unsigned seed = 0x5DCu);

/// Row-length distribution summary: the structural inputs of the
/// execution-backend autotuner (`backend=auto`).
struct RowLengthStats {
  std::size_t min = 0;  ///< shortest row (0 for an empty matrix)
  std::size_t max = 0;  ///< longest row
  double mean = 0.0;    ///< nnz / rows
  double stddev = 0.0;  ///< population standard deviation of row lengths
  /// Coefficient of variation (stddev/mean): the dispersion measure the
  /// autotuner reports; 0 for uniform rows or an empty matrix.
  [[nodiscard]] double dispersion() const noexcept {
    return mean > 0.0 ? stddev / mean : 0.0;
  }
};

/// One pass over row_ptr.
[[nodiscard]] RowLengthStats row_length_stats(const CsrMatrix& A);

/// Storage overhead SELL-C-sigma would pay for A: (padded entry slots) /
/// nnz, simulated from the row lengths alone -- the windowed descending
/// sort and per-chunk padding of sparse::SellMatrix without building
/// anything (O(rows log rows)).  Returns 1.0 for an empty matrix.
[[nodiscard]] double sell_padding_ratio(const CsrMatrix& A, std::size_t chunk,
                                        std::size_t sigma_chunks);

} // namespace sdcgmres::sparse
