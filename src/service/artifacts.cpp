#include "service/artifacts.hpp"

#include <stdexcept>
#include <utility>

#include "solver/registry.hpp"

namespace sdcgmres::service {

namespace {

/// Problem-shaping spec keys, in a fixed order so key strings are
/// canonical regardless of the order a job file assigned them in.
constexpr const char* kProblemKeys[] = {"matrix", "n",     "nodes",  "path",
                                        "seed",   "eps_x", "eps_y",  "beta_x",
                                        "beta_y", "rhs"};

void append_keys(std::string& out, const experiment::ScenarioSpec& spec) {
  for (const char* key : kProblemKeys) {
    if (spec.has(key)) {
      out += '|';
      out += key;
      out += '=';
      out += spec.get(key);
    }
  }
}

} // namespace

std::size_t csr_bytes(const sparse::CsrMatrix& A) {
  return A.nnz() * (sizeof(double) + sizeof(std::size_t)) +
         (A.rows() + 1) * sizeof(std::size_t);
}

std::string problem_cache_key(const experiment::ScenarioSpec& spec) {
  std::string key = "problem";
  append_keys(key, spec);
  return key;
}

std::shared_ptr<const experiment::ScenarioProblem> cached_problem(
    ArtifactCache& cache, const experiment::ScenarioSpec& spec) {
  return cache.get<experiment::ScenarioProblem>(
      problem_cache_key(spec),
      [&spec]()
          -> std::pair<std::shared_ptr<const experiment::ScenarioProblem>,
                       std::size_t> {
        auto problem = std::make_shared<const experiment::ScenarioProblem>(
            experiment::build_problem(spec));
        const std::size_t bytes =
            csr_bytes(problem->A) + problem->b.size() * sizeof(double);
        return {std::move(problem), bytes};
      });
}

std::shared_ptr<const double> cached_calibration(
    ArtifactCache& cache, const experiment::ScenarioSpec& spec,
    const experiment::ScenarioProblem& problem) {
  std::string key = "frobenius";
  append_keys(key, spec);
  return cache.get<double>(
      key, [&problem]() -> std::pair<std::shared_ptr<const double>,
                                     std::size_t> {
        return {std::make_shared<const double>(problem.A.frobenius_norm()),
                sizeof(double)};
      });
}

std::shared_ptr<const krylov::Preconditioner> cached_preconditioner(
    ArtifactCache& cache, const experiment::ScenarioSpec& spec,
    const experiment::ScenarioProblem& problem) {
  const std::string name = spec.get("precond", "none");
  if (name == "none") return nullptr;
  std::string key = "precond|" + name;
  // Parameterized preconditioners factor differently per parameter.
  for (const char* pkey : {"neumann_degree", "neumann_omega"}) {
    if (spec.has(pkey)) {
      key += '|';
      key += pkey;
      key += '=';
      key += spec.get(pkey);
    }
  }
  append_keys(key, spec);
  // Footprint heuristic: ILU0 keeps a same-sparsity factored copy of A,
  // Neumann applies A directly plus vector scratch, Jacobi one diagonal.
  const std::size_t bytes = name.rfind("jacobi", 0) == 0
                                ? problem.A.rows() * sizeof(double)
                                : csr_bytes(problem.A);
  return cache.get<krylov::Preconditioner>(
      key,
      [&spec, &problem, &name, bytes]()
          -> std::pair<std::shared_ptr<const krylov::Preconditioner>,
                       std::size_t> {
        std::shared_ptr<const krylov::Preconditioner> built =
            solver::preconditioner_registry().make(name, problem.A, spec);
        return {std::move(built), bytes};
      });
}

std::shared_ptr<const sparse::CsrMatrix> cached_transpose(
    ArtifactCache& cache, const experiment::ScenarioSpec& spec,
    const experiment::ScenarioProblem& problem) {
  std::string key = "transpose";
  append_keys(key, spec);
  return cache.get<sparse::CsrMatrix>(
      key, [&problem]() -> std::pair<std::shared_ptr<const sparse::CsrMatrix>,
                                     std::size_t> {
        auto at = std::make_shared<const sparse::CsrMatrix>(
            problem.A.transposed());
        const std::size_t bytes = csr_bytes(*at);
        return {std::move(at), bytes};
      });
}

std::shared_ptr<const krylov::MatrixBackend> cached_backend(
    ArtifactCache& cache, const experiment::ScenarioSpec& spec,
    const experiment::ScenarioProblem& problem) {
  const std::string backend_key = spec.get("backend", "csr");
  if (backend_key == "csr") {
    // The csr backend holds no assembled state (it streams the cached
    // problem's matrix directly), so caching it would only pin a
    // zero-byte entry; build a fresh one.
    return solver::backend_registry().make(backend_key, problem.A);
  }
  std::string key = "backend|" + backend_key;
  append_keys(key, spec);
  return cache.get<krylov::MatrixBackend>(
      key,
      [&backend_key, &problem]()
          -> std::pair<std::shared_ptr<const krylov::MatrixBackend>,
                       std::size_t> {
        std::shared_ptr<const krylov::MatrixBackend> built =
            solver::backend_registry().make(backend_key, problem.A);
        const std::size_t bytes = built->resident_bytes();
        return {std::move(built), bytes};
      });
}

std::shared_ptr<const sparse::SellMatrixT<float, std::int32_t>>
cached_sell_mirror32(ArtifactCache& cache,
                     const experiment::ScenarioSpec& spec,
                     const experiment::ScenarioProblem& problem) {
  using Mirror = sparse::SellMatrixT<float, std::int32_t>;
  // Reuse (or assemble) the spec's backend first -- OUTSIDE the cache
  // builder below, since get_or_build holds the cache lock while the
  // builder runs and a nested lookup would deadlock.
  const std::shared_ptr<const krylov::MatrixBackend> backend =
      cached_backend(cache, spec, problem);
  const auto* sell = dynamic_cast<const krylov::SellBackend*>(backend.get());
  if (sell == nullptr) {
    throw std::invalid_argument(
        "cached_sell_mirror32: spec backend '" + backend->name() +
        "' did not assemble a SELL structure (use backend=sell[:C[:sigma]])");
  }
  std::string key = "sell_mirror32|" + backend->name();
  append_keys(key, spec);
  return cache.get<Mirror>(
      key,
      [backend, sell]()
          -> std::pair<std::shared_ptr<const Mirror>, std::size_t> {
        auto mirror = std::make_shared<const Mirror>(sell->matrix());
        const std::size_t bytes =
            mirror->stored() * sizeof(float) +
            mirror->index_slots() * sizeof(std::int32_t);
        return {std::move(mirror), bytes};
      });
}

std::shared_ptr<const sparse::CsrMatrixT<float, std::int32_t>> cached_mirror32(
    ArtifactCache& cache, const experiment::ScenarioSpec& spec,
    const experiment::ScenarioProblem& problem) {
  using Mirror = sparse::CsrMatrixT<float, std::int32_t>;
  std::string key = "mirror32";
  append_keys(key, spec);
  return cache.get<Mirror>(
      key,
      [&problem]() -> std::pair<std::shared_ptr<const Mirror>, std::size_t> {
        auto mirror = std::make_shared<const Mirror>(problem.A);
        const std::size_t bytes =
            mirror->nnz() * (sizeof(float) + sizeof(std::int32_t)) +
            (mirror->rows() + 1) * sizeof(std::int32_t);
        return {std::move(mirror), bytes};
      });
}

} // namespace sdcgmres::service
