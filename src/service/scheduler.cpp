#include "service/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <utility>

#include "experiment/report.hpp"
#include "experiment/scenario.hpp"
#include "service/artifacts.hpp"
#include "service/job.hpp"

namespace sdcgmres::service {

namespace {

/// Submit-sequence ids: "j" + zero-padded decimal, so lexicographic
/// order IS submission order.
std::string format_id(std::size_t seq) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "j%08zu", seq);
  return buf;
}

std::size_t parse_seq(const std::string& id) {
  if (id.size() < 2 || id[0] != 'j') return 0;
  std::size_t value = 0;
  for (std::size_t i = 1; i < id.size(); ++i) {
    if (id[i] < '0' || id[i] > '9') return 0;
    value = value * 10 + static_cast<std::size_t>(id[i] - '0');
  }
  return value;
}

/// Fold one journal tail into an aggregate (sharded jobs: the ranges
/// partition the point set, so counters sum without overlap).
void accumulate_progress(experiment::SweepProgress& total,
                         const experiment::SweepProgress& part) {
  if (!part.started) return;
  if (!total.started) total.header = part.header;
  total.started = true;
  total.points_done += part.points_done;
  total.failed += part.failed;
  total.detected += part.detected;
  total.diverged += part.diverged;
  total.deadline_exceeded += part.deadline_exceeded;
  total.reliable_retries += part.reliable_retries;
  total.outer_restarts += part.outer_restarts;
  if (part.has_stats) {
    total.has_stats = true;
    total.stats.points_done += part.stats.points_done;
    total.stats.traffic += part.stats.traffic;
  }
}

/// Tail \p id's progress: the merged journal once it exists, else the
/// per-range journals a sharded run is still writing.  A live writer may
/// be mid-append; tail_sweep_journal tolerates the unterminated tail.
experiment::SweepProgress job_progress(const SpoolPaths& paths,
                                       const std::string& id) {
  const std::string journal = paths.journals + "/" + id + ".jsonl";
  if (file_exists(journal)) {
    try {
      return experiment::tail_sweep_journal(journal);
    } catch (const std::exception&) {
      return {}; // a corrupt journal reads as "no progress", not a crash
    }
  }
  experiment::SweepProgress total;
  const std::string prefix = id + ".jsonl.range";
  std::error_code ec;
  std::vector<std::string> ranges;
  for (const auto& entry :
       std::filesystem::directory_iterator(paths.journals, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) == 0) ranges.push_back(entry.path().string());
  }
  std::sort(ranges.begin(), ranges.end());
  for (const std::string& path : ranges) {
    try {
      accumulate_progress(total, experiment::tail_sweep_journal(path));
    } catch (const std::exception&) {
    }
  }
  return total;
}

} // namespace

const char* to_string(JobStatus::State state) {
  switch (state) {
    case JobStatus::State::Queued: return "queued";
    case JobStatus::State::Running: return "running";
    case JobStatus::State::Done: return "done";
    case JobStatus::State::Failed: return "failed";
    case JobStatus::State::Unknown: break;
  }
  return "unknown";
}

SweepScheduler::SweepScheduler(SchedulerOptions options)
    : options_(std::move(options)),
      paths_(spool_paths(options_.root)),
      cache_(options_.cache_bytes) {}

SweepScheduler::~SweepScheduler() { stop(); }

void SweepScheduler::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_) return;
  paths_ = init_spool(options_.root);
  requeued_at_start_ = requeue_running(paths_);
  // Resume the submit sequence past every id any state directory holds,
  // so a restarted service never reissues an id.
  seq_ = 0;
  for (const std::string* dir :
       {&paths_.queue, &paths_.running, &paths_.done, &paths_.failed}) {
    for (const std::string& id : list_jobs(*dir)) {
      seq_ = std::max(seq_, parse_seq(id));
    }
  }
  stop_ = false;
  started_ = true;
  const std::size_t n = std::max<std::size_t>(1, options_.max_concurrent_jobs);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void SweepScheduler::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) return;
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  std::lock_guard<std::mutex> lock(mutex_);
  started_ = false;
}

std::string SweepScheduler::submit(const std::string& body) {
  std::string id;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = format_id(++seq_);
    ++submitted_;
  }
  submit_job(paths_, id, body);
  cv_.notify_one();
  return id;
}

const SweepScheduler::JobMeta& SweepScheduler::meta_locked(
    const std::string& id) {
  const auto it = meta_.find(id);
  if (it != meta_.end()) return it->second;
  JobMeta meta;
  try {
    const JobRecord job = load_job_file(job_path(paths_.queue, id));
    meta.tenant = job.tenant;
    meta.priority = job.priority;
  } catch (const std::exception&) {
    // Malformed jobs still get scheduled (under the default tenant at
    // priority 0) so the claiming worker can quarantine them with a
    // reason file -- dropping them here would lose the diagnosis.
    meta.tenant = "default";
  }
  return meta_.emplace(id, std::move(meta)).first->second;
}

std::string SweepScheduler::pick_and_claim_locked() {
  const std::vector<std::string> queued = list_jobs(paths_.queue);
  if (queued.empty()) return {};

  // Group by tenant (std::map iterates tenants in sorted order -- the
  // cyclic round-robin order).
  std::map<std::string, std::vector<const std::string*>> by_tenant;
  for (const std::string& id : queued) {
    by_tenant[meta_locked(id).tenant].push_back(&id);
  }

  // Round-robin: the first tenant strictly after the last served one,
  // wrapping to the smallest.
  auto turn = by_tenant.upper_bound(last_tenant_);
  if (turn == by_tenant.end()) turn = by_tenant.begin();

  // Within the tenant: highest priority, then FIFO (ids sort by submit
  // sequence, and list_jobs returned them sorted).
  const std::string* best = nullptr;
  long best_priority = 0;
  for (const std::string* id : turn->second) {
    const long priority = meta_locked(*id).priority;
    if (best == nullptr || priority > best_priority) {
      best = id;
      best_priority = priority;
    }
  }

  if (!claim_job(paths_, *best)) return {}; // raced; re-poll
  last_tenant_ = turn->first;
  return *best;
}

void SweepScheduler::worker_loop() {
  while (true) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stop_) break;
    const std::string id = pick_and_claim_locked();
    if (id.empty()) {
      cv_.wait_for(lock, std::chrono::milliseconds(options_.poll_ms),
                   [this] { return stop_; });
      continue;
    }
    ++running_jobs_;
    lock.unlock();
    run_one(id);
    if (options_.on_job_finished) options_.on_job_finished(id);
    lock.lock();
    --running_jobs_;
    meta_.erase(id);
  }
}

void SweepScheduler::run_one(const std::string& id) {
  JobRecord job;
  try {
    job = load_job_file(job_path(paths_.running, id));
    job.id = id;
  } catch (const std::exception& e) {
    // Quarantine: the job file itself is bad (parse error, duplicate
    // key, forbidden journal=/resume=, unknown scenario key).
    try {
      fail_job(paths_, id, e.what());
    } catch (const std::exception&) {
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++failed_;
    return;
  }

  try {
    experiment::ScenarioSeams seams;
    seams.problem = cached_problem(cache_, job.spec);
    seams.frobenius_norm =
        *cached_calibration(cache_, job.spec, *seams.problem);
    seams.backend = cached_backend(cache_, job.spec, *seams.problem);
    if (!job.spec.get_bool("sweep", false)) {
      seams.precond = cached_preconditioner(cache_, job.spec, *seams.problem);
    }
    seams.journal = paths_.journals + "/" + id + ".jsonl";
    seams.resume = true; // a missing journal is a fresh start
    const experiment::ScenarioResult result =
        experiment::run_scenario(job.spec, seams);

    std::ostringstream json;
    experiment::write_scenario_json(json, result);
    // Result first, then the state transition: "done" implies the result
    // file exists (a crash between the two re-runs the job, which the
    // journal makes cheap and bitwise identical).
    atomic_write(paths_.tmp, paths_.done + "/" + id + ".json", json.str());
    finish_job(paths_, id);
    std::lock_guard<std::mutex> lock(mutex_);
    ++completed_;
  } catch (const std::exception& e) {
    try {
      fail_job(paths_, id, e.what());
    } catch (const std::exception&) {
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++failed_;
  }
}

JobStatus SweepScheduler::status(const std::string& id) const {
  JobStatus status;
  status.id = id;
  const auto fill_meta = [&] {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = meta_.find(id); it != meta_.end()) {
      status.tenant = it->second.tenant;
      status.priority = it->second.priority;
    }
  };
  if (file_exists(job_path(paths_.queue, id))) {
    status.state = JobStatus::State::Queued;
    fill_meta();
    return status;
  }
  if (file_exists(job_path(paths_.running, id))) {
    status.state = JobStatus::State::Running;
    fill_meta();
    status.progress = job_progress(paths_, id);
    return status;
  }
  if (file_exists(job_path(paths_.done, id))) {
    status.state = JobStatus::State::Done;
    status.progress = job_progress(paths_, id);
    return status;
  }
  if (file_exists(job_path(paths_.failed, id))) {
    status.state = JobStatus::State::Failed;
    try {
      status.reason = read_file(paths_.failed + "/" + id + ".reason");
      while (!status.reason.empty() && status.reason.back() == '\n') {
        status.reason.pop_back();
      }
    } catch (const std::exception&) {
    }
    return status;
  }
  return status;
}

bool SweepScheduler::read_result(const std::string& id,
                                 std::string* json) const {
  const std::string path = paths_.done + "/" + id + ".json";
  if (!file_exists(path)) return false;
  *json = read_file(path);
  return true;
}

SchedulerStats SweepScheduler::stats() const {
  SchedulerStats out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.submitted = submitted_;
    out.completed = completed_;
    out.failed = failed_;
    out.requeued_at_start = requeued_at_start_;
    out.running = running_jobs_;
  }
  out.queued = list_jobs(paths_.queue).size();
  out.cache = cache_.stats();
  return out;
}

std::string status_json(const JobStatus& status) {
  std::ostringstream out;
  out << "{\n"
      << "  \"id\": \"" << experiment::json_escape(status.id) << "\",\n"
      << "  \"state\": \"" << to_string(status.state) << "\"";
  if (!status.tenant.empty()) {
    out << ",\n  \"tenant\": \"" << experiment::json_escape(status.tenant)
        << "\",\n  \"priority\": " << status.priority;
  }
  if (status.state == JobStatus::State::Failed) {
    out << ",\n  \"reason\": \"" << experiment::json_escape(status.reason)
        << "\"";
  }
  if (status.progress.started) {
    const experiment::SweepProgress& p = status.progress;
    out << ",\n  \"progress\": {\n"
        << "    \"points_done\": " << p.points_done << ",\n"
        << "    \"points_total\": " << p.header.n_points << ",\n"
        << "    \"failed\": " << p.failed << ",\n"
        << "    \"detected\": " << p.detected << ",\n"
        << "    \"diverged\": " << p.diverged << ",\n"
        << "    \"deadline_exceeded\": " << p.deadline_exceeded << ",\n"
        << "    \"retried_reliable\": " << p.reliable_retries << ",\n"
        << "    \"restarted_outer\": " << p.outer_restarts;
    if (p.has_stats) {
      out << ",\n    \"matrix_streams\": " << p.stats.traffic.streams()
          << ",\n    \"operand_columns\": " << p.stats.traffic.columns()
          << ",\n    \"scalar_bytes\": " << p.stats.traffic.scalar_bytes
          << ",\n    \"index_bytes\": " << p.stats.traffic.index_bytes
          << ",\n    \"bytes_streamed\": " << p.stats.traffic.bytes();
    }
    out << "\n  }";
  }
  out << "\n}\n";
  return out.str();
}

std::string stats_json(const SchedulerStats& stats) {
  std::ostringstream out;
  out << "{\n"
      << "  \"jobs\": {\n"
      << "    \"submitted\": " << stats.submitted << ",\n"
      << "    \"completed\": " << stats.completed << ",\n"
      << "    \"failed\": " << stats.failed << ",\n"
      << "    \"requeued_at_start\": " << stats.requeued_at_start << ",\n"
      << "    \"queued\": " << stats.queued << ",\n"
      << "    \"running\": " << stats.running << "\n  },\n"
      << "  \"cache\": {\n"
      << "    \"hits\": " << stats.cache.hits << ",\n"
      << "    \"misses\": " << stats.cache.misses << ",\n"
      << "    \"evictions\": " << stats.cache.evictions << ",\n"
      << "    \"oversize\": " << stats.cache.oversize << ",\n"
      << "    \"entries\": " << stats.cache.entries << ",\n"
      << "    \"bytes\": " << stats.cache.bytes << ",\n"
      << "    \"byte_budget\": " << stats.cache.byte_budget << "\n  }\n"
      << "}\n";
  return out.str();
}

} // namespace sdcgmres::service
