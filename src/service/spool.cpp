#include "service/spool.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sdcgmres::service {

namespace {

[[noreturn]] void spool_fail(const std::string& what,
                             const std::string& path) {
  throw std::runtime_error("spool: " + what + " '" + path +
                           "' failed: " + std::strerror(errno));
}

void rename_or_throw(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    spool_fail("rename to '" + to + "' from", from);
  }
}

} // namespace

SpoolPaths spool_paths(const std::string& root) {
  SpoolPaths p;
  p.root = root;
  p.queue = root + "/queue";
  p.running = root + "/running";
  p.done = root + "/done";
  p.failed = root + "/failed";
  p.journals = root + "/journals";
  p.tmp = root + "/tmp";
  return p;
}

SpoolPaths init_spool(const std::string& root) {
  const SpoolPaths p = spool_paths(root);
  for (const std::string* dir :
       {&p.root, &p.queue, &p.running, &p.done, &p.failed, &p.journals,
        &p.tmp}) {
    std::error_code ec;
    std::filesystem::create_directories(*dir, ec);
    if (ec) {
      throw std::runtime_error("spool: create directory '" + *dir +
                               "' failed: " + ec.message());
    }
  }
  return p;
}

std::string job_path(const std::string& dir, const std::string& id) {
  return dir + "/" + id + ".job";
}

void atomic_write(const std::string& tmp_dir, const std::string& path,
                  const std::string& content) {
  // pid + in-process counter: unique across concurrent worker threads
  // AND across a crashed predecessor's leftover staging files.
  static std::atomic<unsigned long> serial{0};
  const std::string tmp = tmp_dir + "/." + std::to_string(::getpid()) + "." +
                          std::to_string(serial.fetch_add(1)) + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) spool_fail("open for writing", tmp);
  std::size_t off = 0;
  while (off < content.size()) {
    const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      spool_fail("write", tmp);
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    spool_fail("fsync", tmp);
  }
  if (::close(fd) != 0) spool_fail("close", tmp);
  rename_or_throw(tmp, path);
}

void submit_job(const SpoolPaths& spool, const std::string& id,
                const std::string& body) {
  atomic_write(spool.tmp, job_path(spool.queue, id), body);
}

bool claim_job(const SpoolPaths& spool, const std::string& id) {
  return std::rename(job_path(spool.queue, id).c_str(),
                     job_path(spool.running, id).c_str()) == 0;
}

void finish_job(const SpoolPaths& spool, const std::string& id) {
  rename_or_throw(job_path(spool.running, id), job_path(spool.done, id));
}

void fail_job(const SpoolPaths& spool, const std::string& id,
              const std::string& reason) {
  atomic_write(spool.tmp, spool.failed + "/" + id + ".reason",
               reason + "\n");
  rename_or_throw(job_path(spool.running, id), job_path(spool.failed, id));
}

std::vector<std::string> list_jobs(const std::string& dir) {
  std::vector<std::string> ids;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.rfind(".job") == name.size() - 4) {
      ids.push_back(name.substr(0, name.size() - 4));
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::size_t requeue_running(const SpoolPaths& spool) {
  std::size_t count = 0;
  for (const std::string& id : list_jobs(spool.running)) {
    rename_or_throw(job_path(spool.running, id), job_path(spool.queue, id));
    ++count;
  }
  return count;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) spool_fail("open for reading", path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

} // namespace sdcgmres::service
