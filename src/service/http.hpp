#pragma once
/// \file http.hpp
/// \brief Self-contained HTTP/1.1 endpoint over POSIX sockets.
///
/// Just enough HTTP for the service's four routes: request-line + headers
/// parsed, Content-Length bodies read, one response per connection
/// (Connection: close).  Requests are handled serially on the accept
/// thread -- every handler in sdc_serve is a quick spool/journal read or
/// an enqueue; the solves themselves run on the scheduler's workers, so
/// a slow sweep never blocks the status endpoint.  No external
/// dependencies, IPv4 loopback by default.

#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace sdcgmres::service {

struct HttpRequest {
  std::string method; ///< e.g. "GET", "POST"
  std::string target; ///< path part of the request line, e.g. "/jobs/j1"
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

class HttpServer {
public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Bind + listen on 127.0.0.1:\p port (0 = kernel-assigned ephemeral
  /// port, read it back via port()).  Throws std::runtime_error on
  /// socket/bind/listen failure.  Call start() to begin serving.
  HttpServer(std::uint16_t port, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Spawn the accept loop thread.
  void start();

  /// Stop accepting, close the listening socket, join (idempotent).
  void stop();

  /// The actually bound port (resolves port 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

private:
  void serve();
  void handle_connection(int fd);

  Handler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  bool running_ = false;
};

} // namespace sdcgmres::service
