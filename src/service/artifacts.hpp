#pragma once
/// \file artifacts.hpp
/// \brief Typed builders over the ArtifactCache for the job-shaped
/// artifacts the scheduler reuses across tenants.
///
/// Keys are derived from the registry name plus its arguments -- exactly
/// the spec keys that feed the corresponding builder -- so two jobs that
/// would construct the same object share one cache entry, and two jobs
/// that differ in ANY input (n=40 vs n=41, seed=1 vs seed=2) never
/// collide.  Byte sizes are the artifacts' resident footprints, computed
/// from the CSR shape (values + col_idx + row_ptr at their stored
/// widths), so the cache's byte budget meaningfully bounds memory.

#include <cstdint>
#include <memory>
#include <string>

#include "experiment/scenario.hpp"
#include "experiment/scenario_spec.hpp"
#include "krylov/backend.hpp"
#include "krylov/precond.hpp"
#include "service/cache.hpp"
#include "sparse/csr.hpp"
#include "sparse/csr_mixed.hpp"
#include "sparse/sell.hpp"

namespace sdcgmres::service {

/// Resident bytes of a double/size_t CSR matrix (values + col_idx +
/// row_ptr).
[[nodiscard]] std::size_t csr_bytes(const sparse::CsrMatrix& A);

/// Cache key of the problem a spec's matrix/rhs keys describe ("problem|"
/// plus every problem-shaping key=value present in \p spec).
[[nodiscard]] std::string problem_cache_key(
    const experiment::ScenarioSpec& spec);

/// Matrix + right-hand side (build_problem on a miss).
[[nodiscard]] std::shared_ptr<const experiment::ScenarioProblem>
cached_problem(ArtifactCache& cache, const experiment::ScenarioSpec& spec);

/// Detector-bound calibration input: ||A||_F of the spec's matrix (what
/// bound=auto seeds the Hessenberg-bound detector with).
[[nodiscard]] std::shared_ptr<const double> cached_calibration(
    ArtifactCache& cache, const experiment::ScenarioSpec& spec,
    const experiment::ScenarioProblem& problem);

/// The spec's preconditioner, factored once and shared (apply() is
/// const).  Returns nullptr for precond=none.
[[nodiscard]] std::shared_ptr<const krylov::Preconditioner>
cached_preconditioner(ArtifactCache& cache,
                      const experiment::ScenarioSpec& spec,
                      const experiment::ScenarioProblem& problem);

/// A^T of the spec's matrix (transpose-structure consumers, e.g. the
/// fused normal-equations calibration path).
[[nodiscard]] std::shared_ptr<const sparse::CsrMatrix> cached_transpose(
    ArtifactCache& cache, const experiment::ScenarioSpec& spec,
    const experiment::ScenarioProblem& problem);

/// The float32/int32 narrowed CSR mirror (the precision=float index=32
/// inner data plane's operator copy).
[[nodiscard]] std::shared_ptr<
    const sparse::CsrMatrixT<float, std::int32_t>>
cached_mirror32(ArtifactCache& cache, const experiment::ScenarioSpec& spec,
                const experiment::ScenarioProblem& problem);

/// The spec's execution backend (`backend=` key), assembled once per
/// matrix+backend and shared across jobs.  `csr` (the default) carries no
/// assembled state and is returned uncached; `sell`/`auto` cache the
/// sorted SELL structure at its resident footprint so the byte budget
/// sees it.  The result feeds ScenarioSeams::backend.
[[nodiscard]] std::shared_ptr<const krylov::MatrixBackend> cached_backend(
    ArtifactCache& cache, const experiment::ScenarioSpec& spec,
    const experiment::ScenarioProblem& problem);

/// The float32/int32 narrowed SELL mirror of the spec's sell backend
/// (what a backend=sell precision=float index=32 job's inner plane would
/// stream); exercised by the service tests alongside cached_mirror32.
[[nodiscard]] std::shared_ptr<
    const sparse::SellMatrixT<float, std::int32_t>>
cached_sell_mirror32(ArtifactCache& cache,
                     const experiment::ScenarioSpec& spec,
                     const experiment::ScenarioProblem& problem);

} // namespace sdcgmres::service
