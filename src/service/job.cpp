#include "service/job.hpp"

#include <stdexcept>

#include "experiment/scenario.hpp"

namespace sdcgmres::service {

namespace {

[[noreturn]] void job_fail(const std::string& path, const std::string& why) {
  throw std::runtime_error("job file '" + path + "': " + why);
}

} // namespace

JobRecord load_job_file(const std::string& path) {
  const experiment::ScenarioSpec raw =
      experiment::ScenarioSpec::parse_file(path);

  JobRecord job;
  for (const auto& [key, value] : raw.entries()) {
    if (key == "tenant") {
      if (value.empty()) {
        job_fail(path, "tenant= must name a non-empty fairness bucket");
      }
      job.tenant = value;
      continue;
    }
    if (key == "priority") {
      std::size_t consumed = 0;
      try {
        job.priority = std::stol(value, &consumed, 10);
      } catch (const std::exception&) {
        consumed = 0;
      }
      if (consumed == 0 || consumed != value.size()) {
        job_fail(path, "priority='" + value +
                           "' is not an integer (higher runs first within "
                           "the tenant; negative = background)");
      }
      continue;
    }
    if (key == "journal" || key == "resume") {
      job_fail(path,
               key + "= is owned by the scheduler (every job is journaled "
                     "under its own id and resumed automatically); drop it "
                     "from the job file");
    }
    job.spec.set(key, value);
  }

  try {
    experiment::validate_scenario_keys(job.spec);
  } catch (const std::exception& e) {
    job_fail(path, e.what());
  }
  return job;
}

} // namespace sdcgmres::service
