#pragma once
/// \file scheduler.hpp
/// \brief SweepScheduler: multi-tenant job scheduling over the spool.
///
/// N worker threads poll the spool's queue/ directory and dispatch jobs
/// onto the existing scenario runner (run_injection_sweep /
/// run_sharded_sweep / single solves via run_scenario).  Scheduling
/// order under contention:
///
///   1. per-tenant ROUND-ROBIN: tenants take turns in cyclic name order,
///      so one tenant's 100-job burst cannot starve another's single job;
///   2. PRIORITY within the tenant: higher priority= runs first;
///   3. FIFO within the priority class: ids embed a zero-padded submit
///      sequence, so lexicographic id order is submission order.
///
/// Every job is journaled under its own id (journals/<id>.jsonl) and run
/// with resume=1, which yields both halves of the durability story:
///
///   * SIGTERM drain: stop() lets in-flight jobs finish (their results
///     are written and spooled to done/), queued jobs stay queued;
///   * kill -9: the job file stays in running/; the next start() moves
///     it back to queue/, and the re-run resumes from the journal --
///     completed points are not re-solved and the final result is
///     bitwise identical to an uninterrupted run (the journal stores
///     residuals as raw IEEE-754 bit patterns).
///
/// The journal doubles as the job's live progress stream: status() tails
/// it (summing per-range journals while a sharded job is in flight) into
/// a SweepProgress -- points done, guard/recovery counters, and the
/// bytes streamed so far.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "experiment/journal.hpp"
#include "service/cache.hpp"
#include "service/spool.hpp"

namespace sdcgmres::service {

struct SchedulerOptions {
  std::string root;                    ///< spool root directory
  std::size_t max_concurrent_jobs = 1; ///< worker threads
  std::size_t cache_bytes = 256ull << 20; ///< ArtifactCache byte budget
  std::size_t poll_ms = 20;            ///< queue poll interval when idle
  /// Called (from the worker thread, outside the scheduler lock) after a
  /// job reaches done/ or failed/ -- the observable service order
  /// (fairness tests, metrics hooks).  Null = off.
  std::function<void(const std::string& id)> on_job_finished;
};

/// Live view of one job, assembled from the spool + its journal.
struct JobStatus {
  enum class State { Unknown, Queued, Running, Done, Failed };
  State state = State::Unknown;
  std::string id;
  std::string tenant;  ///< empty when the job file does not parse
  long priority = 0;
  experiment::SweepProgress progress; ///< journal tail (sweep jobs)
  std::string reason;  ///< failure reason (state == Failed)
};

[[nodiscard]] const char* to_string(JobStatus::State state);

/// Counter snapshot for GET /stats.
struct SchedulerStats {
  std::size_t submitted = 0;         ///< via submit() since start()
  std::size_t completed = 0;
  std::size_t failed = 0;            ///< quarantined into failed/
  std::size_t requeued_at_start = 0; ///< running/ jobs recovered by start()
  std::size_t queued = 0;            ///< current queue/ depth
  std::size_t running = 0;           ///< jobs being solved right now
  CacheStats cache;
};

class SweepScheduler {
public:
  explicit SweepScheduler(SchedulerOptions options);
  ~SweepScheduler(); ///< stop()s

  SweepScheduler(const SweepScheduler&) = delete;
  SweepScheduler& operator=(const SweepScheduler&) = delete;

  /// Initialize the spool (creating it if needed), re-queue any jobs a
  /// crashed predecessor left in running/, and spawn the workers.
  void start();

  /// Graceful drain: workers finish their current job (results written
  /// and spooled), then exit; queued jobs stay queued.  Idempotent.
  void stop();

  /// Enqueue a job file body.  Returns the assigned id (a zero-padded
  /// sequence, so id order is submission order).  The body is validated
  /// by the claiming worker, not here -- a malformed job is quarantined
  /// into failed/ with a reason file, never silently dropped.
  std::string submit(const std::string& body);

  /// Assemble the current state of \p id from the spool + journal tail.
  [[nodiscard]] JobStatus status(const std::string& id) const;

  /// Read done/<id>.json into \p json.  False when the job is not done.
  [[nodiscard]] bool read_result(const std::string& id,
                                 std::string* json) const;

  [[nodiscard]] SchedulerStats stats() const;

  [[nodiscard]] const SpoolPaths& spool() const noexcept { return paths_; }
  [[nodiscard]] ArtifactCache& cache() noexcept { return cache_; }

private:
  struct JobMeta {
    std::string tenant;
    long priority = 0;
  };

  void worker_loop();
  [[nodiscard]] std::string pick_and_claim_locked();
  [[nodiscard]] const JobMeta& meta_locked(const std::string& id);
  void run_one(const std::string& id);

  SchedulerOptions options_;
  SpoolPaths paths_;
  ArtifactCache cache_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool started_ = false;
  bool stop_ = false;
  std::vector<std::thread> workers_;
  std::size_t seq_ = 0; ///< highest assigned submit sequence number
  std::string last_tenant_; ///< round-robin cursor
  std::map<std::string, JobMeta> meta_; ///< parsed envelopes of known jobs
  std::size_t running_jobs_ = 0;
  std::size_t submitted_ = 0;
  std::size_t completed_ = 0;
  std::size_t failed_ = 0;
  std::size_t requeued_at_start_ = 0;
};

/// Render \p status as the GET /jobs/<id> JSON document.
[[nodiscard]] std::string status_json(const JobStatus& status);

/// Render \p stats as the GET /stats JSON document.
[[nodiscard]] std::string stats_json(const SchedulerStats& stats);

} // namespace sdcgmres::service
