#pragma once
/// \file cache.hpp
/// \brief ArtifactCache: thread-safe, byte-budgeted LRU of shared
/// immutable artifacts.
///
/// A sweep service sees the same matrices, transposes, ILU0 factors, and
/// detector calibrations over and over: twenty queued jobs against three
/// matrices should build three problems, not twenty.  The cache hands out
/// shared_ptr<const T> -- every cached artifact is immutable after
/// construction (CsrMatrix, Preconditioner::apply is const, a Frobenius
/// norm is a double), so one instance safely serves concurrent jobs.
///
/// Eviction is least-recently-used by BYTES, not entry count: the caller
/// states each artifact's resident size at insert time and the cache
/// drops LRU entries until the budget holds.  Eviction only drops the
/// cache's reference -- jobs still holding the shared_ptr keep the
/// artifact alive until they finish, so eviction can never invalidate an
/// in-flight solve.  An artifact larger than the whole budget is built
/// and returned but never stored (counted in CacheStats::oversize).
///
/// get_or_build() runs the builder under the cache lock.  That serializes
/// concurrent builds (deliberately: two jobs racing to build the same
/// matrix would do the work twice and briefly double the memory), which
/// is the right trade at this service's scale; a lock-per-key upgrade has
/// a natural seam here if profiles ever demand it.

#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace sdcgmres::service {

/// Counter snapshot for GET /stats.
struct CacheStats {
  std::size_t hits = 0;      ///< get_or_build found the key resident
  std::size_t misses = 0;    ///< key absent; the builder ran
  std::size_t evictions = 0; ///< entries dropped to fit the byte budget
  std::size_t oversize = 0;  ///< artifacts larger than the whole budget
                             ///< (built, returned, never stored)
  std::size_t entries = 0;   ///< currently resident artifacts
  std::size_t bytes = 0;     ///< currently resident bytes
  std::size_t byte_budget = 0;

  bool operator==(const CacheStats&) const = default;
};

class ArtifactCache {
public:
  /// \p byte_budget caps the resident bytes (0 = cache nothing; every
  /// lookup misses and counts oversize -- useful to measure cold costs).
  explicit ArtifactCache(std::size_t byte_budget);

  /// Type-erased builder: the artifact plus its resident size in bytes.
  using Builder =
      std::function<std::pair<std::shared_ptr<const void>, std::size_t>()>;

  /// Return the artifact under \p key, building (and caching) it on a
  /// miss.  A hit moves the entry to the front of the LRU order.
  /// Exceptions from the builder propagate and cache nothing.
  [[nodiscard]] std::shared_ptr<const void> get_or_build(
      const std::string& key, const Builder& build);

  /// Typed convenience: \p build returns {shared_ptr<const T>, bytes}.
  template <typename T, typename F>
  [[nodiscard]] std::shared_ptr<const T> get(const std::string& key,
                                             F&& build) {
    return std::static_pointer_cast<const T>(get_or_build(
        key,
        [&build]() -> std::pair<std::shared_ptr<const void>, std::size_t> {
          std::pair<std::shared_ptr<const T>, std::size_t> built = build();
          return {std::static_pointer_cast<const void>(std::move(built.first)),
                  built.second};
        }));
  }

  [[nodiscard]] CacheStats stats() const;

private:
  struct Entry {
    std::string key;
    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
  };

  mutable std::mutex mutex_;
  std::size_t byte_budget_ = 0;
  std::size_t bytes_ = 0;
  std::list<Entry> lru_; ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  CacheStats counters_; ///< hits/misses/evictions/oversize only
};

} // namespace sdcgmres::service
