#include "service/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace sdcgmres::service {

namespace {

[[noreturn]] void http_fail(const char* what) {
  throw std::runtime_error(std::string("http: ") + what +
                           " failed: " + std::strerror(errno));
}

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

/// Send all of \p data (MSG_NOSIGNAL: a client that hung up must not
/// SIGPIPE the daemon).
bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Case-insensitive Content-Length lookup in a raw header block.
std::size_t content_length(const std::string& headers) {
  static constexpr const char* kName = "content-length:";
  for (std::size_t pos = 0; pos < headers.size();) {
    std::size_t eol = headers.find("\r\n", pos);
    if (eol == std::string::npos) eol = headers.size();
    const std::string line = headers.substr(pos, eol - pos);
    std::string lower;
    lower.reserve(line.size());
    for (const char c : line) {
      lower.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
    if (lower.rfind(kName, 0) == 0) {
      try {
        return static_cast<std::size_t>(
            std::stoull(line.substr(std::strlen(kName))));
      } catch (const std::exception&) {
        return 0;
      }
    }
    pos = eol + 2;
  }
  return 0;
}

} // namespace

HttpServer::HttpServer(std::uint16_t port, Handler handler)
    : handler_(std::move(handler)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) http_fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    http_fail("bind");
  }
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    http_fail("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    http_fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

HttpServer::~HttpServer() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void HttpServer::start() {
  if (running_) return;
  running_ = true;
  thread_ = std::thread([this] { serve(); });
}

void HttpServer::stop() {
  if (!running_) return;
  running_ = false;
  // Unblock accept(): shutdown makes the pending accept fail, and the
  // loop exits on the running_ flag.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
}

void HttpServer::serve() {
  while (running_) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break; // listening socket shut down (stop()) or broken
    }
    handle_connection(fd);
    ::close(fd);
  }
}

void HttpServer::handle_connection(int fd) {
  std::string data;
  char buf[4096];
  std::size_t header_end = std::string::npos;
  // Read the request head first...
  while (header_end == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return; // client hung up mid-request
    }
    data.append(buf, static_cast<std::size_t>(n));
    header_end = data.find("\r\n\r\n");
    if (data.size() > (1u << 20)) return; // refuse unbounded heads
  }
  const std::size_t body_start = header_end + 4;
  const std::size_t line_end = data.find("\r\n");
  const std::string request_line = data.substr(0, line_end);
  const std::string headers =
      data.substr(line_end + 2, header_end - line_end - 2);
  // ...then exactly Content-Length body bytes.
  const std::size_t want = content_length(headers);
  while (data.size() - body_start < want) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    data.append(buf, static_cast<std::size_t>(n));
  }

  HttpRequest request;
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  HttpResponse response;
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    response.status = 400;
    response.body = "{\"error\": \"malformed request line\"}\n";
  } else {
    request.method = request_line.substr(0, sp1);
    request.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    request.body = data.substr(body_start, want);
    try {
      response = handler_(request);
    } catch (const std::exception& e) {
      response.status = 500;
      response.body = std::string("{\"error\": \"") + e.what() + "\"}\n";
    }
  }

  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    reason_phrase(response.status) +
                    "\r\nContent-Type: " + response.content_type +
                    "\r\nContent-Length: " +
                    std::to_string(response.body.size()) +
                    "\r\nConnection: close\r\n\r\n" + response.body;
  send_all(fd, out);
}

} // namespace sdcgmres::service
