#pragma once
/// \file spool.hpp
/// \brief Filesystem job spool: queue/ -> running/ -> done/|failed/ with
/// atomic-rename transitions.
///
/// The spool is the service's durable state -- jobs, results, and failure
/// reasons are plain files, so `ls <root>/queue` IS the queue and any
/// tool that can write a file can submit a job.  Every state transition
/// is a single rename(2) within one filesystem, so a job file is always
/// in exactly one state directory: a crash (even kill -9) between any
/// two instructions leaves either the old state or the new, never a
/// half-moved or half-written file.  Submission writes to tmp/ first and
/// renames into queue/, so a queue scanner never observes a partially
/// written job.
///
/// Layout under the spool root:
///   queue/<id>.job      submitted, not yet claimed
///   running/<id>.job    claimed by a scheduler worker
///   done/<id>.job       finished; done/<id>.json holds the result
///   failed/<id>.job     quarantined; failed/<id>.reason says why
///   journals/<id>.jsonl the job's sweep journal (progress + resume)
///   tmp/                staging for atomic writes (same filesystem)

#include <cstddef>
#include <string>
#include <vector>

namespace sdcgmres::service {

/// Resolved directory paths of one spool root.
struct SpoolPaths {
  std::string root;
  std::string queue;
  std::string running;
  std::string done;
  std::string failed;
  std::string journals;
  std::string tmp;
};

[[nodiscard]] SpoolPaths spool_paths(const std::string& root);

/// Create the spool directory tree (idempotent).  Throws
/// std::runtime_error naming the path on failure.
[[nodiscard]] SpoolPaths init_spool(const std::string& root);

/// Path of \p id's job file in state directory \p dir.
[[nodiscard]] std::string job_path(const std::string& dir,
                                   const std::string& id);

/// Write \p content to \p path atomically: tmp-write + fsync + rename.
/// \p tmp_dir must be on the same filesystem as \p path.
void atomic_write(const std::string& tmp_dir, const std::string& path,
                  const std::string& content);

/// Submit a job: atomically materialize \p body as queue/<id>.job.
void submit_job(const SpoolPaths& spool, const std::string& id,
                const std::string& body);

/// Claim: queue/<id>.job -> running/<id>.job.  Returns false when the
/// job is no longer queued (another worker won the rename).
[[nodiscard]] bool claim_job(const SpoolPaths& spool, const std::string& id);

/// Finish: running/<id>.job -> done/<id>.job.  The caller writes the
/// result to done/<id>.json BEFORE calling this, so "job is done"
/// implies "result file exists".
void finish_job(const SpoolPaths& spool, const std::string& id);

/// Quarantine: running/<id>.job -> failed/<id>.job, with \p reason
/// written to failed/<id>.reason first (same ordering rationale).
void fail_job(const SpoolPaths& spool, const std::string& id,
              const std::string& reason);

/// Job ids (filename stems of *.job) in \p dir, lexicographically sorted
/// -- submission order, since ids embed a zero-padded sequence number.
[[nodiscard]] std::vector<std::string> list_jobs(const std::string& dir);

/// Crash recovery at startup: move every running/ job back to queue/
/// (their journals survive, so a re-run resumes instead of re-solving).
/// Returns the number of jobs re-queued.
std::size_t requeue_running(const SpoolPaths& spool);

/// Read a whole file into a string.  Throws std::runtime_error naming
/// the path when it cannot be read.
[[nodiscard]] std::string read_file(const std::string& path);

/// True when \p path names an existing file.
[[nodiscard]] bool file_exists(const std::string& path);

} // namespace sdcgmres::service
