#pragma once
/// \file job.hpp
/// \brief Job files: a scenario spec plus multi-tenant envelope keys.
///
/// A job file is a ScenarioSpec file (key=value tokens, '#' comments, see
/// ScenarioSpec::parse_file) with two optional envelope keys the
/// scheduler consumes and strips before the spec reaches the scenario
/// runner:
///
///   tenant=<name>    fairness bucket (default "default")
///   priority=<int>   higher runs first WITHIN the tenant (default 0;
///                    negative allowed -- background work)
///
/// Stripping matters for the acceptance contract: the result's spec_text
/// must match a direct `sdc_run --json` run of the scenario keys alone,
/// so envelope keys must never leak into the spec.  journal= and resume=
/// are REJECTED in job files -- the scheduler owns checkpointing (every
/// job is journaled under its own id), and a tenant-chosen journal path
/// could collide with another tenant's.

#include <string>

#include "experiment/scenario_spec.hpp"

namespace sdcgmres::service {

struct JobRecord {
  std::string id;                ///< spool filename stem
  std::string tenant = "default";
  long priority = 0;
  experiment::ScenarioSpec spec; ///< envelope keys stripped
};

/// Load and validate the job file at \p path (id left empty -- the spool
/// filename carries it).  Throws std::runtime_error carrying the path on
/// any rejection: parse_file errors (malformed tokens, duplicate keys),
/// journal=/resume= present, a non-integer priority, an empty tenant, or
/// scenario keys validate_scenario_keys refuses.
[[nodiscard]] JobRecord load_job_file(const std::string& path);

} // namespace sdcgmres::service
