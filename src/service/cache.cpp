#include "service/cache.hpp"

namespace sdcgmres::service {

ArtifactCache::ArtifactCache(std::size_t byte_budget)
    : byte_budget_(byte_budget) {}

std::shared_ptr<const void> ArtifactCache::get_or_build(const std::string& key,
                                                        const Builder& build) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    ++counters_.hits;
    lru_.splice(lru_.begin(), lru_, it->second); // refresh recency
    return it->second->value;
  }
  ++counters_.misses;
  auto [value, bytes] = build();
  if (bytes > byte_budget_) {
    // Too big to ever be resident: hand it to this caller only.  Storing
    // it would evict EVERYTHING else and still blow the budget.
    ++counters_.oversize;
    return value;
  }
  lru_.push_front(Entry{key, value, bytes});
  index_.emplace(key, lru_.begin());
  bytes_ += bytes;
  while (bytes_ > byte_budget_) {
    // The new entry cannot be the victim: bytes <= budget held above, so
    // the list has at least one older entry to drop first.
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++counters_.evictions;
  }
  return value;
}

CacheStats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CacheStats out = counters_;
  out.entries = lru_.size();
  out.bytes = bytes_;
  out.byte_budget = byte_budget_;
  return out;
}

} // namespace sdcgmres::service
