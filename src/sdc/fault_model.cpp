#include "sdc/fault_model.hpp"

#include <cmath>
#include <sstream>

#include "sdc/bits.hpp"

namespace sdcgmres::sdc {

double FaultModel::apply(double value) const {
  switch (kind) {
    case FaultKind::Scale: return value * payload;
    case FaultKind::SetValue: return payload;
    case FaultKind::BitFlip: return flip_bit(value, bit);
    case FaultKind::AddValue: return value + payload;
  }
  return value;
}

std::string to_string(const FaultModel& model) {
  std::ostringstream ss;
  switch (model.kind) {
    case FaultKind::Scale: ss << "scale(" << model.payload << ")"; break;
    case FaultKind::SetValue: ss << "set(" << model.payload << ")"; break;
    case FaultKind::BitFlip: ss << "bitflip(" << model.bit << ")"; break;
    case FaultKind::AddValue: ss << "add(" << model.payload << ")"; break;
  }
  return ss.str();
}

namespace fault_classes {

FaultModel slightly_smaller() {
  return FaultModel::scale(std::pow(10.0, -0.5));
}

} // namespace fault_classes

} // namespace sdcgmres::sdc
