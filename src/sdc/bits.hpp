#pragma once
/// \file bits.hpp
/// \brief IEEE-754 bit-level utilities for the bit-flip fault model.
///
/// The paper argues (Section III-A-2) that injecting bit flips is
/// unnecessary because any flip just produces some representable value --
/// but the library still provides the bit-flip model so users can compare
/// the generalized numerical-error model against the classic one.

#include <cstdint>
#include <string>

namespace sdcgmres::sdc {

/// Reinterpret a double's bits as a 64-bit integer.
[[nodiscard]] std::uint64_t to_bits(double x) noexcept;

/// Reinterpret a 64-bit integer as a double.
[[nodiscard]] double from_bits(std::uint64_t bits) noexcept;

/// Flip bit \p bit (0 = least-significant mantissa bit, 51 = top mantissa
/// bit, 52-62 = exponent, 63 = sign) of \p x.
[[nodiscard]] double flip_bit(double x, unsigned bit);

/// Coarse classification of a double, used by event reporting.
enum class ValueClass {
  Zero,
  Subnormal,
  Normal,
  Infinite,
  NaN,
};

/// Classify \p x per IEEE-754.
[[nodiscard]] ValueClass classify(double x) noexcept;

/// Human-readable class name.
[[nodiscard]] const char* to_string(ValueClass c) noexcept;

/// 64-character binary string (sign | exponent | mantissa) for diagnostics.
[[nodiscard]] std::string bit_pattern(double x);

} // namespace sdcgmres::sdc
