#include "sdc/bits.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace sdcgmres::sdc {

std::uint64_t to_bits(double x) noexcept {
  return std::bit_cast<std::uint64_t>(x);
}

double from_bits(std::uint64_t bits) noexcept {
  return std::bit_cast<double>(bits);
}

double flip_bit(double x, unsigned bit) {
  if (bit > 63) {
    throw std::out_of_range("flip_bit: bit index must be in [0, 63]");
  }
  return from_bits(to_bits(x) ^ (std::uint64_t{1} << bit));
}

ValueClass classify(double x) noexcept {
  switch (std::fpclassify(x)) {
    case FP_ZERO: return ValueClass::Zero;
    case FP_SUBNORMAL: return ValueClass::Subnormal;
    case FP_NORMAL: return ValueClass::Normal;
    case FP_INFINITE: return ValueClass::Infinite;
    default: return ValueClass::NaN;
  }
}

const char* to_string(ValueClass c) noexcept {
  switch (c) {
    case ValueClass::Zero: return "zero";
    case ValueClass::Subnormal: return "subnormal";
    case ValueClass::Normal: return "normal";
    case ValueClass::Infinite: return "infinite";
    case ValueClass::NaN: return "nan";
  }
  return "unknown";
}

std::string bit_pattern(double x) {
  const std::uint64_t bits = to_bits(x);
  std::string s;
  s.reserve(66);
  for (int i = 63; i >= 0; --i) {
    s.push_back(((bits >> i) & 1u) ? '1' : '0');
    if (i == 63 || i == 52) s.push_back('|');
  }
  return s;
}

} // namespace sdcgmres::sdc
