#include "sdc/injection.hpp"

#include <sstream>
#include <stdexcept>

namespace sdcgmres::sdc {

void FaultCampaign::on_solve_begin(std::size_t solve_index) {
  (void)solve_index; // aggregate counting continues across solves
}

void FaultCampaign::on_iteration_begin(const krylov::ArnoldiContext& ctx) {
  (void)ctx;
  ++iterations_seen_;
}

bool FaultCampaign::armed_for_current_iteration() const noexcept {
  // iterations_seen_ was incremented when the current iteration began, so
  // the current 0-based aggregate index is iterations_seen_ - 1.
  return !fired_ && iterations_seen_ > 0 &&
         iterations_seen_ - 1 == plan_.aggregate_iteration;
}

void FaultCampaign::on_matvec_result(const krylov::ArnoldiContext& ctx,
                                     std::span<double> v) {
  if (plan_.target != InjectionTarget::MatvecElement) return;
  if (!armed_for_current_iteration()) return;
  if (plan_.element_index >= v.size()) return;
  const double before = v[plan_.element_index];
  const double after = plan_.model.apply(before);
  v[plan_.element_index] = after;
  fired_ = true;
  std::ostringstream desc;
  desc << "matvec element " << plan_.element_index << " " << to_string(plan_.model);
  log_.record({.kind = EventKind::Injection,
               .solve_index = ctx.solve_index,
               .iteration = ctx.iteration,
               .coefficient = plan_.element_index,
               .value_before = before,
               .value_after = after,
               .bound = 0.0,
               .description = desc.str()});
}

void FaultCampaign::on_power_computed(const krylov::ArnoldiContext& ctx,
                                      std::size_t power_index,
                                      std::size_t block_size,
                                      std::span<double> power) {
  if (plan_.target != InjectionTarget::PowerElement) return;
  if (!armed_for_current_iteration()) return;
  if (plan_.element_index >= power.size()) return;
  const double before = power[plan_.element_index];
  const double after = plan_.model.apply(before);
  power[plan_.element_index] = after;
  fired_ = true;
  std::ostringstream desc;
  desc << "power " << power_index << "/" << block_size << " element "
       << plan_.element_index << " " << to_string(plan_.model);
  log_.record({.kind = EventKind::Injection,
               .solve_index = ctx.solve_index,
               .iteration = ctx.iteration,
               .coefficient = plan_.element_index,
               .value_before = before,
               .value_after = after,
               .bound = 0.0,
               .description = desc.str()});
}

void FaultCampaign::on_projection_coefficient(const krylov::ArnoldiContext& ctx,
                                              std::size_t i,
                                              std::size_t mgs_steps,
                                              double& h) {
  if (plan_.target != InjectionTarget::ProjectionCoefficient) return;
  if (!armed_for_current_iteration()) return;
  bool match = false;
  switch (plan_.position) {
    case MgsPosition::First: match = (i == 0); break;
    case MgsPosition::Last: match = (i + 1 == mgs_steps); break;
    case MgsPosition::Index: match = (i == plan_.coefficient_index); break;
  }
  if (!match) return;
  const double before = h;
  h = plan_.model.apply(h);
  fired_ = true;
  std::ostringstream desc;
  desc << "h(" << i << "," << ctx.iteration << ") " << to_string(plan_.model);
  log_.record({.kind = EventKind::Injection,
               .solve_index = ctx.solve_index,
               .iteration = ctx.iteration,
               .coefficient = i,
               .value_before = before,
               .value_after = h,
               .bound = 0.0,
               .description = desc.str()});
}

void FaultCampaign::on_subdiagonal(const krylov::ArnoldiContext& ctx,
                                   double& h) {
  if (plan_.target != InjectionTarget::SubdiagonalNorm) return;
  if (!armed_for_current_iteration()) return;
  const double before = h;
  h = plan_.model.apply(h);
  fired_ = true;
  std::ostringstream desc;
  desc << "h(" << ctx.iteration + 1 << "," << ctx.iteration << ") "
       << to_string(plan_.model);
  log_.record({.kind = EventKind::Injection,
               .solve_index = ctx.solve_index,
               .iteration = ctx.iteration,
               .coefficient = ctx.iteration + 1,
               .value_before = before,
               .value_after = h,
               .bound = 0.0,
               .description = desc.str()});
}

RecurringFaultCampaign::RecurringFaultCampaign(std::size_t first_iteration,
                                               std::size_t period,
                                               MgsPosition position,
                                               FaultModel model)
    : first_iteration_(first_iteration), period_(period), position_(position),
      model_(model) {
  if (period_ == 0) {
    throw std::invalid_argument(
        "RecurringFaultCampaign: period must be positive");
  }
}

void RecurringFaultCampaign::on_iteration_begin(
    const krylov::ArnoldiContext& ctx) {
  (void)ctx;
  ++iterations_seen_;
}

void RecurringFaultCampaign::on_projection_coefficient(
    const krylov::ArnoldiContext& ctx, std::size_t i, std::size_t mgs_steps,
    double& h) {
  if (iterations_seen_ == 0) return;
  const std::size_t current = iterations_seen_ - 1;
  if (current < first_iteration_) return;
  if ((current - first_iteration_) % period_ != 0) return;
  bool match = false;
  switch (position_) {
    case MgsPosition::First: match = (i == 0); break;
    case MgsPosition::Last: match = (i + 1 == mgs_steps); break;
    case MgsPosition::Index: match = false; break; // not supported here
  }
  if (!match) return;
  const double before = h;
  h = model_.apply(h);
  ++fault_count_;
  std::ostringstream desc;
  desc << "recurring h(" << i << "," << ctx.iteration << ") "
       << to_string(model_);
  log_.record({.kind = EventKind::Injection,
               .solve_index = ctx.solve_index,
               .iteration = ctx.iteration,
               .coefficient = i,
               .value_before = before,
               .value_after = h,
               .bound = 0.0,
               .description = desc.str()});
}

void RecurringFaultCampaign::reset() {
  iterations_seen_ = 0;
  fault_count_ = 0;
  log_.clear();
}

void FaultCampaign::reset() {
  fired_ = false;
  iterations_seen_ = 0;
  log_.clear();
}

} // namespace sdcgmres::sdc
