#include "sdc/detector.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace sdcgmres::sdc {

HessenbergBoundDetector::HessenbergBoundDetector(double bound,
                                                 DetectorResponse response)
    : bound_(bound), response_(response) {
  if (!(bound > 0.0) || !std::isfinite(bound)) {
    throw std::invalid_argument(
        "HessenbergBoundDetector: bound must be positive and finite");
  }
}

void HessenbergBoundDetector::on_solve_begin(std::size_t solve_index) {
  (void)solve_index;
  // A new (inner) solve starts with fresh, fault-free state; any abort
  // request belonged to the previous solve.
  abort_pending_ = false;
}

void HessenbergBoundDetector::check(const krylov::ArnoldiContext& ctx,
                                    std::size_t coefficient, double value) {
  ++checks_;
  // NaN comparisons are false, so test the invariant in the form
  // "|h| <= bound" and flag anything that fails it -- this catches NaN too.
  if (std::abs(value) <= bound_) return;
  ++detections_;
  // Every non-observation response starts by aborting the inner solve;
  // the recovery policies differ only in what the nested solver does next.
  if (response_ != DetectorResponse::RecordOnly) abort_pending_ = true;
  std::ostringstream desc;
  desc << "|h(" << coefficient << "," << ctx.iteration
       << ")| > bound: " << value;
  log_.record({.kind = EventKind::Detection,
               .solve_index = ctx.solve_index,
               .iteration = ctx.iteration,
               .coefficient = coefficient,
               .value_before = value,
               .value_after = value,
               .bound = bound_,
               .description = desc.str()});
}

void HessenbergBoundDetector::on_projection_coefficient(
    const krylov::ArnoldiContext& ctx, std::size_t i, std::size_t mgs_steps,
    double& h) {
  (void)mgs_steps;
  check(ctx, i, h);
}

void HessenbergBoundDetector::on_subdiagonal(const krylov::ArnoldiContext& ctx,
                                             double& h) {
  check(ctx, ctx.iteration + 1, h);
}

void HessenbergBoundDetector::reset() {
  checks_ = 0;
  detections_ = 0;
  abort_pending_ = false;
  log_.clear();
}

} // namespace sdcgmres::sdc
