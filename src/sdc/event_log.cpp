#include "sdc/event_log.hpp"

#include <algorithm>

namespace sdcgmres::sdc {

std::size_t EventLog::count(EventKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [kind](const Event& e) { return e.kind == kind; }));
}

} // namespace sdcgmres::sdc
