#pragma once
/// \file detector.hpp
/// \brief The paper's invariant-based SDC detector (Section V).
///
/// Every projection coefficient satisfies |h(i,j)| <= ||A||_2 <= ||A||_F
/// (Eq. 3), because it is the dot product of a unit vector with a vector no
/// longer than ||A q_j|| <= ||A||_2.  The same bound holds for the
/// subdiagonal norm h(j+1,j) = ||v||, since orthogonal projection never
/// lengthens a vector.  Checking the bound costs one comparison per
/// coefficient and needs no communication.  By construction the detector
/// catches *exactly* the errors that push a coefficient past the bound --
/// we know precisely what is and is not detectable.

#include <cstddef>

#include "krylov/ft_gmres.hpp"
#include "krylov/hooks.hpp"
#include "sdc/event_log.hpp"

namespace sdcgmres::sdc {

/// What the detector does when the invariant is violated.  Every response
/// except RecordOnly aborts the current inner solve; they differ in what
/// the nested solver does NEXT with the flagged step (the krylov-level
/// recovery policy, see inner_recovery_for below).
enum class DetectorResponse {
  RecordOnly,    ///< log the event and continue (observation mode)
  AbortSolve,    ///< request that the current (inner) solve stop immediately
                 ///< and return its pre-fault iterate ("restart the inner
                 ///< solve" response from the paper's Section VII-B-1)
  RetryReliable, ///< abort, then recompute the flagged inner solve with
                 ///< injection disabled (the paper's selective-reliability
                 ///< recompute): FT-GMRES proceeds as if the solve had run
                 ///< reliably, at the cost of a second inner solve
  RestartOuter,  ///< abort, then discard the poisoned outer direction and
                 ///< restart the outer cycle from the accepted columns'
                 ///< explicit residual (heaviest recovery: throws away the
                 ///< current outer basis, keeps the iterate)
};

/// Map a detector response onto the nested solver's recovery policy
/// (krylov stays sdc-free; the seam points this way only).  RecordOnly and
/// AbortSolve both map to None: the abort behaviour itself is carried by
/// the hook's abort_requested(), not by the recovery policy.
[[nodiscard]] constexpr krylov::InnerRecovery inner_recovery_for(
    DetectorResponse response) noexcept {
  switch (response) {
  case DetectorResponse::RetryReliable:
    return krylov::InnerRecovery::RetryReliable;
  case DetectorResponse::RestartOuter:
    return krylov::InnerRecovery::RestartOuter;
  case DetectorResponse::RecordOnly:
  case DetectorResponse::AbortSolve:
    break;
  }
  return krylov::InnerRecovery::None;
}

/// Arnoldi hook checking |h| <= bound on every coefficient.
class HessenbergBoundDetector final : public krylov::ArnoldiHook {
public:
  /// \param bound the invariant bound; the paper uses ||A||_F (always an
  ///        upper bound) or a sigma_max estimate
  /// \param response action on violation
  explicit HessenbergBoundDetector(
      double bound, DetectorResponse response = DetectorResponse::RecordOnly);

  // --- krylov::ArnoldiHook ---
  void on_solve_begin(std::size_t solve_index) override;
  void on_projection_coefficient(const krylov::ArnoldiContext& ctx,
                                 std::size_t i, std::size_t mgs_steps,
                                 double& h) override;
  void on_subdiagonal(const krylov::ArnoldiContext& ctx, double& h) override;
  [[nodiscard]] bool abort_requested() const override {
    return abort_pending_;
  }

  /// The bound in force.
  [[nodiscard]] double bound() const noexcept { return bound_; }

  /// The configured response to a violation.
  [[nodiscard]] DetectorResponse response() const noexcept {
    return response_;
  }

  /// Number of coefficients checked so far.
  [[nodiscard]] std::size_t checks() const noexcept { return checks_; }

  /// Number of violations flagged so far.
  [[nodiscard]] std::size_t detections() const noexcept { return detections_; }

  /// True when at least one violation was flagged.
  [[nodiscard]] bool triggered() const noexcept { return detections_ > 0; }

  /// Detection event records.
  [[nodiscard]] const EventLog& log() const noexcept { return log_; }

  /// Clear counters and the log (reuse between experiment runs).
  void reset();

private:
  void check(const krylov::ArnoldiContext& ctx, std::size_t coefficient,
             double value);

  double bound_;
  DetectorResponse response_;
  EventLog log_;
  std::size_t checks_ = 0;
  std::size_t detections_ = 0;
  bool abort_pending_ = false;
};

} // namespace sdcgmres::sdc
