#pragma once
/// \file abft.hpp
/// \brief Chen-style Online-ABFT comparator (paper Section III-B, its
/// reference [18]).
///
/// The prior-work approach the paper contrasts itself with: periodically
/// verify whole-iteration invariants of the Krylov process -- the Arnoldi
/// relation  A q_j = sum_{i<=j+1} h(i,j) q_i  and the orthonormality of
/// the newest basis vector -- by *recomputing* them.
///
/// Which check catches what (a point the magnitude-bound analysis makes
/// sharp): a fault in an MGS projection coefficient is *self-consistent*
/// with the Arnoldi relation, because the same corrupted value is both
/// stored in H and applied to the vector update -- the relation check
/// cannot see it.  What the fault does break is orthogonality: the
/// un-removed component q_i survives into q_{j+1}.  Likewise a corrupted
/// subdiagonal norm is self-consistent with the relation (q_{j+1} is
/// normalized by the same wrong value) but breaks ||q_{j+1}|| = 1.  The
/// relation check remains useful against corruption of *stored* basis or
/// Hessenberg data after their construction.
/// Each check costs one extra sparse matrix-vector product plus O(j)
/// vector operations (and, on a distributed machine, the corresponding
/// reductions), versus the bound detector's single comparison per
/// coefficient.  In exchange it detects *any* corruption of the iteration
/// large enough to violate the relation, including faults the magnitude
/// bound cannot see (class-2 faults on O(1) coefficients).
///
/// This implementation exists as the quantitative baseline for the
/// paper's argument; see bench_ablation_abft for the cost/coverage
/// comparison.

#include <cstddef>

#include "krylov/hooks.hpp"
#include "krylov/operator.hpp"
#include "sdc/detector.hpp" // DetectorResponse
#include "sdc/event_log.hpp"

namespace sdcgmres::sdc {

/// Configuration of the ABFT monitor.
struct AbftOptions {
  std::size_t check_period = 1; ///< verify every N-th iteration (Chen
                                ///< amortizes cost with sparser checks)
  double relation_tol = 1e-8;   ///< flag when the relative Arnoldi-relation
                                ///< defect ||A q_j - Q h|| / ||h|| exceeds
                                ///< this
  double ortho_tol = 1e-8;      ///< flag when |<q_new, q_i>| exceeds this,
                                ///< or when | ||q_new|| - 1 | does
  DetectorResponse response = DetectorResponse::RecordOnly;
};

/// Whole-iteration invariant checker implementing krylov::ArnoldiHook.
class AbftMonitor final : public krylov::ArnoldiHook {
public:
  /// \param A the (reliable) operator used to recompute A*q_j
  AbftMonitor(const krylov::LinearOperator& A, AbftOptions opts = {});

  // --- krylov::ArnoldiHook ---
  void on_solve_begin(std::size_t solve_index) override;
  void on_iteration_end(const krylov::ArnoldiContext& ctx,
                        const krylov::ArnoldiIterationView& view) override;
  [[nodiscard]] bool abort_requested() const override {
    return abort_pending_;
  }

  [[nodiscard]] std::size_t checks() const noexcept { return checks_; }
  [[nodiscard]] std::size_t detections() const noexcept { return detections_; }
  [[nodiscard]] bool triggered() const noexcept { return detections_ > 0; }
  [[nodiscard]] const EventLog& log() const noexcept { return log_; }

  /// Largest relative Arnoldi-relation defect observed (diagnostics).
  [[nodiscard]] double worst_relation_defect() const noexcept {
    return worst_defect_;
  }

  /// Extra SpMV applications performed (the dominating check cost).
  [[nodiscard]] std::size_t extra_spmv() const noexcept { return extra_spmv_; }

  void reset();

private:
  const krylov::LinearOperator* a_;
  AbftOptions opts_;
  EventLog log_;
  std::size_t checks_ = 0;
  std::size_t detections_ = 0;
  std::size_t extra_spmv_ = 0;
  double worst_defect_ = 0.0;
  bool abort_pending_ = false;
};

} // namespace sdcgmres::sdc
