#pragma once
/// \file event_log.hpp
/// \brief Record of injection and detection events during a solve.
///
/// Every fault campaign and detector appends to an EventLog, so an
/// experiment can afterwards answer: was the fault injected, where, what
/// value did it turn into, and did the detector catch it?

#include <cstddef>
#include <string>
#include <vector>

namespace sdcgmres::sdc {

/// What happened.
enum class EventKind {
  Injection, ///< a fault model was applied to a value
  Detection, ///< a detector flagged a value as theoretically impossible
};

/// One injection or detection event.
struct Event {
  EventKind kind = EventKind::Injection;
  std::size_t solve_index = 0;     ///< inner solve / outer iteration
  std::size_t iteration = 0;       ///< Arnoldi iteration j within the solve
  std::size_t coefficient = 0;     ///< MGS step i (row of h(i,j))
  double value_before = 0.0;       ///< pre-injection / checked value
  double value_after = 0.0;        ///< post-injection value (== before for
                                   ///< detections)
  double bound = 0.0;              ///< detector bound (detections only)
  std::string description;         ///< human-readable summary
};

/// Append-only event container shared by hooks.
class EventLog {
public:
  void record(Event e) { events_.push_back(std::move(e)); }

  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

  /// Number of events of the given kind.
  [[nodiscard]] std::size_t count(EventKind kind) const;

  /// Drop all events (reuse between experiment runs).
  void clear() { events_.clear(); }

private:
  std::vector<Event> events_;
};

} // namespace sdcgmres::sdc
