#pragma once
/// \file injection.hpp
/// \brief Single-event fault injection into the Arnoldi process.
///
/// Reproduces the paper's experiment protocol (Section VII-B): exactly one
/// SDC event per solve, applied to a projection coefficient h(i,j) on a
/// chosen *aggregate* inner iteration (counting Arnoldi iterations across
/// all inner solves, e.g. "25 inner x 9 outer" = 225 possible sites for
/// the Poisson problem), at either the first or the last step of the
/// Modified Gram-Schmidt loop.  The general model also supports faults in
/// the subdiagonal norm and in individual matvec result elements.

#include <cstddef>
#include <optional>

#include "krylov/hooks.hpp"
#include "sdc/event_log.hpp"
#include "sdc/fault_model.hpp"

namespace sdcgmres::sdc {

/// Which value the fault corrupts.
enum class InjectionTarget {
  ProjectionCoefficient, ///< h(i,j) from the orthogonalization dot product
                         ///< (the paper's site, Alg. 1 Line 6)
  SubdiagonalNorm,       ///< h(j+1,j) = ||v|| (Alg. 1 Line 9)
  MatvecElement,         ///< one element of v = A*q_j (Alg. 1 Line 4)
  PowerElement,          ///< one element of a staged matrix power A^k*q_j
                         ///< (s-step mode only; corrupts the block basis
                         ///< before TSQR, so it taints every later column
                         ///< of the block)
};

/// Which MGS step of the targeted iteration is corrupted.
enum class MgsPosition {
  First, ///< i = 0 (taints all subsequent MGS steps; paper's worst case)
  Last,  ///< i = j (the last projection coefficient of the column)
  Index, ///< an explicit step index (skipped when out of range)
};

/// Full description of a single planned SDC event.
struct InjectionPlan {
  InjectionTarget target = InjectionTarget::ProjectionCoefficient;
  MgsPosition position = MgsPosition::First;
  std::size_t coefficient_index = 0; ///< used when position == Index
  std::size_t aggregate_iteration = 0; ///< 0-based Arnoldi iteration count
                                       ///< across all solves seen by the hook
  std::size_t element_index = 0;       ///< used for MatvecElement
  FaultModel model = FaultModel::scale(1e150);

  /// Paper-style plan: corrupt h(i,j) at the given aggregate iteration.
  [[nodiscard]] static InjectionPlan hessenberg(std::size_t aggregate_iteration,
                                                MgsPosition position,
                                                FaultModel model) {
    InjectionPlan p;
    p.target = InjectionTarget::ProjectionCoefficient;
    p.position = position;
    p.aggregate_iteration = aggregate_iteration;
    p.model = model;
    return p;
  }
};

/// Arnoldi hook that fires the planned fault exactly once.
///
/// The hook counts Arnoldi iterations across every solve it observes (the
/// "aggregate inner solve iteration" axis of the paper's figures) and, when
/// the target iteration and MGS position line up, applies the fault model
/// and records an Event.  A single transient SDC: it never fires twice.
class FaultCampaign final : public krylov::ArnoldiHook {
public:
  explicit FaultCampaign(InjectionPlan plan) : plan_(plan) {}

  // --- krylov::ArnoldiHook ---
  void on_solve_begin(std::size_t solve_index) override;
  void on_iteration_begin(const krylov::ArnoldiContext& ctx) override;
  void on_matvec_result(const krylov::ArnoldiContext& ctx,
                        std::span<double> v) override;
  void on_power_computed(const krylov::ArnoldiContext& ctx,
                         std::size_t power_index, std::size_t block_size,
                         std::span<double> power) override;
  void on_projection_coefficient(const krylov::ArnoldiContext& ctx,
                                 std::size_t i, std::size_t mgs_steps,
                                 double& h) override;
  void on_subdiagonal(const krylov::ArnoldiContext& ctx, double& h) override;

  /// True once the single fault has been applied.
  [[nodiscard]] bool fired() const noexcept { return fired_; }

  /// Total Arnoldi iterations observed so far (across solves).
  [[nodiscard]] std::size_t aggregate_iterations() const noexcept {
    return iterations_seen_;
  }

  /// The injection event record (empty until fired).
  [[nodiscard]] const EventLog& log() const noexcept { return log_; }

  /// Re-arm for a fresh solve (clears counters and the log).
  void reset();

private:
  [[nodiscard]] bool armed_for_current_iteration() const noexcept;

  InjectionPlan plan_;
  EventLog log_;
  bool fired_ = false;
  std::size_t iterations_seen_ = 0; ///< incremented at on_iteration_begin
};

/// Extension beyond the paper's single-event model: a fault that recurs
/// every `period` aggregate iterations (starting at `first_iteration`),
/// corrupting the same MGS position with the same model each time.  The
/// paper argues single-event analysis is the right baseline (Section
/// II-A); this hook lets users probe how far the FT-GMRES resilience
/// extends as the event rate grows (see bench_ablation_fault_rate).
class RecurringFaultCampaign final : public krylov::ArnoldiHook {
public:
  RecurringFaultCampaign(std::size_t first_iteration, std::size_t period,
                         MgsPosition position, FaultModel model);

  void on_iteration_begin(const krylov::ArnoldiContext& ctx) override;
  void on_projection_coefficient(const krylov::ArnoldiContext& ctx,
                                 std::size_t i, std::size_t mgs_steps,
                                 double& h) override;

  /// Number of faults applied so far.
  [[nodiscard]] std::size_t fault_count() const noexcept {
    return fault_count_;
  }

  [[nodiscard]] const EventLog& log() const noexcept { return log_; }

  /// Re-arm for a fresh solve (clears counters and the log).
  void reset();

private:
  std::size_t first_iteration_;
  std::size_t period_;
  MgsPosition position_;
  FaultModel model_;
  EventLog log_;
  std::size_t iterations_seen_ = 0;
  std::size_t fault_count_ = 0;
};

} // namespace sdcgmres::sdc
