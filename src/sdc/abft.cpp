#include "sdc/abft.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "la/blas1.hpp"

namespace sdcgmres::sdc {

AbftMonitor::AbftMonitor(const krylov::LinearOperator& A, AbftOptions opts)
    : a_(&A), opts_(opts) {
  if (opts_.check_period == 0) {
    throw std::invalid_argument("AbftMonitor: check_period must be positive");
  }
}

void AbftMonitor::on_solve_begin(std::size_t solve_index) {
  (void)solve_index;
  abort_pending_ = false;
}

void AbftMonitor::on_iteration_end(const krylov::ArnoldiContext& ctx,
                                   const krylov::ArnoldiIterationView& view) {
  if (ctx.iteration % opts_.check_period != 0) return;
  ++checks_;
  const std::size_t j = ctx.iteration;
  const std::size_t cols = view.basis.cols(); // j + 2

  // --- Arnoldi relation: r = A q_j - sum_i h(i,j) q_i must be ~0. ---
  ++extra_spmv_;
  la::Vector r(a_->rows());
  a_->apply(view.basis.col(j), r);
  double h_scale = 0.0;
  for (std::size_t i = 0; i < cols; ++i) {
    la::axpy(-view.h_column[i], view.basis.col(i), r.span());
    h_scale = std::max(h_scale, std::abs(view.h_column[i]));
  }
  const double defect = la::nrm2(r);
  const double rel_defect = (h_scale > 0.0) ? defect / h_scale : defect;
  worst_defect_ = std::max(worst_defect_, rel_defect);
  const bool relation_bad =
      !(rel_defect <= opts_.relation_tol); // NaN-safe: NaN fails <=

  // --- Orthonormality of the newest vector. ---
  bool ortho_bad = false;
  double worst_dot = 0.0;
  const std::span<const double> q_new = view.basis.col(cols - 1);
  for (std::size_t i = 0; i + 1 < cols; ++i) {
    const double d = std::abs(la::dot(view.basis.col(i), q_new));
    worst_dot = std::max(worst_dot, d);
    if (!(d <= opts_.ortho_tol)) ortho_bad = true;
  }
  // Normality: a corrupted subdiagonal norm is self-consistent with the
  // Arnoldi relation but leaves ||q_new|| != 1.
  const double norm_defect = std::abs(la::nrm2(q_new) - 1.0);
  worst_dot = std::max(worst_dot, norm_defect);
  if (!(norm_defect <= opts_.ortho_tol)) ortho_bad = true;

  if (!relation_bad && !ortho_bad) return;
  ++detections_;
  if (opts_.response == DetectorResponse::AbortSolve) abort_pending_ = true;
  std::ostringstream desc;
  if (relation_bad) {
    desc << "Arnoldi relation defect " << rel_defect << " at column " << j;
  }
  if (ortho_bad) {
    if (relation_bad) desc << "; ";
    desc << "orthogonality defect " << worst_dot << " at column " << j;
  }
  log_.record({.kind = EventKind::Detection,
               .solve_index = ctx.solve_index,
               .iteration = j,
               .coefficient = 0,
               .value_before = rel_defect,
               .value_after = worst_dot,
               .bound = opts_.relation_tol,
               .description = desc.str()});
}

void AbftMonitor::reset() {
  checks_ = 0;
  detections_ = 0;
  extra_spmv_ = 0;
  worst_defect_ = 0.0;
  abort_pending_ = false;
  log_.clear();
}

} // namespace sdcgmres::sdc
