#pragma once
/// \file sandbox.hpp
/// \brief The sandbox reliability model (paper Section IV).
///
/// The sandbox makes exactly two promises about its unreliable guest: it
/// returns *something*, and it returns in finite time.  This wrapper
/// enforces both around any FlexiblePreconditioner guest (in FT-GMRES, the
/// faulty inner GMRES solve): exceptions escaping the guest -- crashes, in
/// the taxonomy of Fig. 1 -- are converted into soft faults by substituting
/// a fallback result, and non-finite guest output can optionally be
/// filtered the same way.  Finite time is the guest's own iteration bound.
///
/// Under the span data plane the host owns the output storage and hands
/// the guest a fixed-size span, so the wrong-shape failure mode of the
/// old owning-vector contract is structurally impossible: a guest cannot
/// return a vector of the wrong length, only fail to write (crash) or
/// write garbage (filtered here).  Partial writes from a crashing guest
/// are harmless: the fallback overwrites the whole span.

#include <cstddef>
#include <span>

#include "krylov/precond.hpp"
#include "la/vector.hpp"

namespace sdcgmres::sdc {

/// Host-side policy for handling misbehaving guests.
struct SandboxOptions {
  bool replace_nonfinite = true; ///< filter Inf/NaN guest output (reliable
                                 ///< host introspection); fallback is q
  bool catch_exceptions = true;  ///< convert guest crashes into soft faults
};

/// Per-sandbox statistics.
struct SandboxStats {
  std::size_t invocations = 0;       ///< guest calls
  std::size_t nonfinite_outputs = 0; ///< outputs filtered for Inf/NaN
  std::size_t exceptions = 0;  ///< guest crashes converted to soft faults
};

/// Wraps a guest flexible preconditioner in the sandbox contract.
class Sandbox final : public krylov::FlexiblePreconditioner {
public:
  explicit Sandbox(krylov::FlexiblePreconditioner& guest,
                   SandboxOptions opts = {})
      : guest_(&guest), opts_(opts) {}

  using krylov::FlexiblePreconditioner::apply;
  void apply(std::span<const double> q, std::size_t outer_index,
             std::span<double> z) override;

  [[nodiscard]] const SandboxStats& stats() const noexcept { return stats_; }

  /// Clear statistics (reuse between experiment runs).
  void reset() { stats_ = {}; }

private:
  krylov::FlexiblePreconditioner* guest_;
  SandboxOptions opts_;
  SandboxStats stats_;
};

} // namespace sdcgmres::sdc
