#include "sdc/sandbox.hpp"

#include <exception>

#include "la/blas1.hpp"

namespace sdcgmres::sdc {

void Sandbox::apply(std::span<const double> q, std::size_t outer_index,
                    std::span<double> z) {
  ++stats_.invocations;
  bool crashed = false;
  if (opts_.catch_exceptions) {
    try {
      guest_->apply(q, outer_index, z);
    } catch (const std::exception&) {
      crashed = true;
    }
  } else {
    guest_->apply(q, outer_index, z);
  }
  if (crashed) {
    // The guest crashed; the sandbox still returns *something*.  Identity
    // output keeps the outer iteration mathematically valid (M_j = I),
    // and overwriting the whole span erases any partial guest write.
    ++stats_.exceptions;
    la::copy(q, z);
    return;
  }
  if (opts_.replace_nonfinite && !la::all_finite(std::span<const double>(z))) {
    ++stats_.nonfinite_outputs;
    la::copy(q, z);
  }
}

} // namespace sdcgmres::sdc
