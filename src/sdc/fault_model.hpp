#pragma once
/// \file fault_model.hpp
/// \brief Models of what an SDC event does to a floating-point value.
///
/// The paper's experiments use multiplicative faults relative to the
/// correct value (classes 1-3: x1e+150, x10^-0.5, x1e-300); the general
/// SDC model also admits absolute replacement and bit flips.

#include <cstdint>
#include <string>

namespace sdcgmres::sdc {

/// What kind of corruption a fault applies.
enum class FaultKind {
  Scale,    ///< value *= factor (the paper's experiment classes)
  SetValue, ///< value := payload (arbitrary SDC, incl. Inf/NaN)
  BitFlip,  ///< flip one bit of the IEEE-754 representation
  AddValue, ///< value += payload (offset corruption)
};

/// A fault model: one corruption rule for one double.
struct FaultModel {
  FaultKind kind = FaultKind::Scale;
  double payload = 1.0;  ///< factor (Scale), replacement (SetValue),
                         ///< offset (AddValue)
  unsigned bit = 0;      ///< bit index (BitFlip only)

  /// Apply the corruption to \p value.
  [[nodiscard]] double apply(double value) const;

  /// The paper's class-1 fault: h * 1e+150.
  [[nodiscard]] static FaultModel scale(double factor) {
    return {FaultKind::Scale, factor, 0};
  }
  /// Replace with an arbitrary value (e.g. NaN or Inf).
  [[nodiscard]] static FaultModel set_value(double v) {
    return {FaultKind::SetValue, v, 0};
  }
  /// Flip one bit of the binary64 representation.
  [[nodiscard]] static FaultModel bit_flip(unsigned bit) {
    return {FaultKind::BitFlip, 0.0, bit};
  }
  /// Add a constant offset.
  [[nodiscard]] static FaultModel add_value(double v) {
    return {FaultKind::AddValue, v, 0};
  }
};

/// Human-readable description, e.g. "scale(1e+150)".
[[nodiscard]] std::string to_string(const FaultModel& model);

/// The paper's three experiment fault classes (Section VII-B-1).
namespace fault_classes {
/// Class 1: very large, h * 10^+150.
[[nodiscard]] inline FaultModel very_large() { return FaultModel::scale(1e150); }
/// Class 2: slightly smaller, h * 10^-0.5.
[[nodiscard]] FaultModel slightly_smaller();
/// Class 3: nearly zero, h * 10^-300.
[[nodiscard]] inline FaultModel nearly_zero() { return FaultModel::scale(1e-300); }
} // namespace fault_classes

} // namespace sdcgmres::sdc
