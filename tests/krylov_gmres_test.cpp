#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "gen/convection_diffusion.hpp"
#include "gen/poisson.hpp"
#include "gen/random_sparse.hpp"
#include "krylov/gmres.hpp"
#include "la/blas1.hpp"

namespace krylov = sdcgmres::krylov;
namespace gen = sdcgmres::gen;
namespace la = sdcgmres::la;

namespace {

double explicit_residual(const sdcgmres::sparse::CsrMatrix& A,
                         const la::Vector& b, const la::Vector& x) {
  la::Vector r(A.rows());
  A.spmv(x, r);
  la::waxpby(1.0, b, -1.0, r, r);
  return la::nrm2(r);
}

} // namespace

TEST(Gmres, SolvesPoissonToTolerance) {
  const auto A = gen::poisson2d(12);
  const la::Vector b = la::ones(A.rows());
  krylov::GmresOptions opts;
  opts.max_iters = 300;
  opts.tol = 1e-10;
  const auto res = krylov::gmres(A, b, opts);
  EXPECT_EQ(res.status, krylov::SolveStatus::Converged);
  EXPECT_LE(explicit_residual(A, b, res.x), 1e-9 * la::nrm2(b));
}

TEST(Gmres, SolvesNonsymmetricSystem) {
  const auto A = gen::convection_diffusion2d(10, 20.0, -5.0);
  const la::Vector b = la::ones(A.rows());
  krylov::GmresOptions opts;
  opts.max_iters = 200;
  opts.tol = 1e-10;
  const auto res = krylov::gmres(A, b, opts);
  EXPECT_EQ(res.status, krylov::SolveStatus::Converged);
  EXPECT_LE(explicit_residual(A, b, res.x), 1e-8);
}

TEST(Gmres, ResidualHistoryMonotonicallyNonIncreasing) {
  // The defining GMRES property (assuming correct arithmetic).
  const auto A = gen::convection_diffusion2d(8, 10.0, 10.0);
  const la::Vector b = la::ones(A.rows());
  krylov::GmresOptions opts;
  opts.max_iters = 64; // full Krylov space, no restart
  opts.tol = 1e-12;
  const auto res = krylov::gmres(A, b, opts);
  for (std::size_t k = 1; k < res.residual_history.size(); ++k) {
    EXPECT_LE(res.residual_history[k],
              res.residual_history[k - 1] * (1.0 + 1e-12));
  }
}

TEST(Gmres, ZeroRhsConvergesImmediately) {
  const auto A = gen::poisson2d(5);
  const auto res = krylov::gmres(A, la::zeros(25), krylov::GmresOptions{});
  EXPECT_EQ(res.status, krylov::SolveStatus::Converged);
  EXPECT_EQ(res.iterations, 0u);
  EXPECT_EQ(la::nrm2(res.x), 0.0);
}

TEST(Gmres, ExactInitialGuessConvergesWithoutIterating) {
  const auto A = gen::poisson2d(5);
  const la::Vector x_true = la::ones(25);
  const la::Vector b = A.apply(x_true);
  const krylov::CsrOperator op(A);
  krylov::GmresOptions opts;
  const auto res = krylov::gmres(op, b, x_true, opts);
  EXPECT_EQ(res.status, krylov::SolveStatus::Converged);
  EXPECT_EQ(res.iterations, 0u);
}

TEST(Gmres, FixedIterationModeRunsExactBudget) {
  // tol = 0 reproduces the paper's inner solves: exactly max_iters
  // iterations, no convergence test.
  const auto A = gen::poisson2d(8);
  krylov::GmresOptions opts;
  opts.max_iters = 25;
  opts.tol = 0.0;
  const auto res = krylov::gmres(A, la::ones(64), opts);
  EXPECT_EQ(res.iterations, 25u);
  EXPECT_EQ(res.status, krylov::SolveStatus::MaxIterations);
}

TEST(Gmres, RestartedSolveConverges) {
  const auto A = gen::poisson2d(10);
  const la::Vector b = la::ones(A.rows());
  krylov::GmresOptions opts;
  opts.max_iters = 600;
  opts.restart = 20;
  opts.tol = 1e-8;
  const auto res = krylov::gmres(A, b, opts);
  EXPECT_EQ(res.status, krylov::SolveStatus::Converged);
  EXPECT_LE(explicit_residual(A, b, res.x), 1e-6);
}

TEST(Gmres, RestartedNeverBeatsFullGmresInIterations) {
  const auto A = gen::convection_diffusion2d(9, 15.0, 0.0);
  const la::Vector b = la::ones(A.rows());
  krylov::GmresOptions full;
  full.max_iters = 200;
  full.tol = 1e-8;
  krylov::GmresOptions restarted = full;
  restarted.restart = 10;
  restarted.max_iters = 2000;
  const auto r_full = krylov::gmres(A, b, full);
  const auto r_rest = krylov::gmres(A, b, restarted);
  ASSERT_EQ(r_full.status, krylov::SolveStatus::Converged);
  ASSERT_EQ(r_rest.status, krylov::SolveStatus::Converged);
  EXPECT_GE(r_rest.iterations, r_full.iterations);
}

TEST(Gmres, HappyBreakdownReturnsExactSolution) {
  // Identity matrix: Krylov space is one-dimensional, breakdown at step 1
  // with the exact solution.
  sdcgmres::sparse::CooMatrix coo(6, 6);
  for (std::size_t i = 0; i < 6; ++i) coo.add(i, i, 1.0);
  const sdcgmres::sparse::CsrMatrix I{std::move(coo)};
  la::Vector b{1.0, -2.0, 3.0, 0.5, 0.0, 4.0};
  krylov::GmresOptions opts;
  opts.tol = 0.0; // even with no convergence test, breakdown must stop it
  opts.max_iters = 6;
  const auto res = krylov::gmres(I, b, opts);
  EXPECT_EQ(res.status, krylov::SolveStatus::HappyBreakdown);
  EXPECT_EQ(res.iterations, 1u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(res.x[i], b[i], 1e-14);
  }
}

TEST(Gmres, JacobiRightPreconditioningAcceleratesSkewedSystem) {
  // Badly scaled diagonal-dominant system: Jacobi fixes the scaling.
  auto opts_gen = gen::RandomSparseOptions{};
  opts_gen.rows = opts_gen.cols = 100;
  opts_gen.diagonal_shift = 50.0;
  opts_gen.seed = 9;
  auto A = gen::random_sparse(opts_gen);
  // Scale rows to spread the diagonal over 6 orders of magnitude.
  sdcgmres::sparse::CooMatrix scaled(100, 100);
  for (std::size_t i = 0; i < 100; ++i) {
    const double s = std::pow(10.0, static_cast<double>(i % 7) - 3.0);
    const auto cols = A.row_cols(i);
    const auto vals = A.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      scaled.add(i, cols[k], vals[k] * s);
    }
  }
  const sdcgmres::sparse::CsrMatrix As{std::move(scaled)};
  const la::Vector b = la::ones(100);

  krylov::GmresOptions plain;
  plain.max_iters = 100;
  plain.tol = 1e-10;
  const auto res_plain = krylov::gmres(As, b, plain);

  const krylov::JacobiPreconditioner jacobi(As);
  krylov::GmresOptions pre = plain;
  pre.right_precond = &jacobi;
  const auto res_pre = krylov::gmres(As, b, pre);

  ASSERT_EQ(res_pre.status, krylov::SolveStatus::Converged);
  EXPECT_LT(res_pre.iterations, res_plain.iterations);
  EXPECT_LE(explicit_residual(As, b, res_pre.x), 1e-7);
}

TEST(Gmres, InvalidArgumentsThrow) {
  const auto A = gen::poisson1d(4);
  const krylov::CsrOperator op(A);
  krylov::GmresOptions opts;
  EXPECT_THROW((void)krylov::gmres(op, la::ones(5), la::zeros(4), opts),
               std::invalid_argument);
  EXPECT_THROW((void)krylov::gmres(op, la::ones(4), la::zeros(5), opts),
               std::invalid_argument);
  opts.max_iters = 0;
  EXPECT_THROW((void)krylov::gmres(op, la::ones(4), la::zeros(4), opts),
               std::invalid_argument);
}

TEST(Gmres, StatusNamesAreStable) {
  EXPECT_STREQ(krylov::to_string(krylov::SolveStatus::Converged), "converged");
  EXPECT_STREQ(krylov::to_string(krylov::SolveStatus::MaxIterations),
               "max-iterations");
  EXPECT_STREQ(krylov::to_string(krylov::SolveStatus::HappyBreakdown),
               "happy-breakdown");
  EXPECT_STREQ(krylov::to_string(krylov::SolveStatus::AbortedByDetector),
               "aborted-by-detector");
}

TEST(Gmres, IterateIsOptimalInTheKrylovSubspace) {
  // GMRES minimizes the residual over x0 + K_k: no scaling of the GMRES
  // update direction can produce a smaller residual.
  const auto A = gen::convection_diffusion2d(6, 8.0, 3.0);
  const la::Vector b = la::ones(36);
  krylov::GmresOptions opts;
  opts.max_iters = 7;
  opts.tol = 0.0;
  const auto res = krylov::gmres(A, b, opts);
  // r(t) = || b - A (t * x) ||^2 is minimized at t = 1 within the span of
  // the computed update; check r(1) <= r(t) for perturbed scalings.
  const auto residual_at = [&](double t) {
    la::Vector x = res.x;
    la::scal(t, x);
    la::Vector r(36);
    A.spmv(x, r);
    la::waxpby(1.0, b, -1.0, r, r);
    return la::nrm2(r);
  };
  const double at_one = residual_at(1.0);
  EXPECT_LE(at_one, residual_at(0.9) * (1.0 + 1e-12));
  EXPECT_LE(at_one, residual_at(1.1) * (1.0 + 1e-12));
}

TEST(Gmres, RestartCycleResidualsAreMonotoneAcrossCycles) {
  // Each restart begins from the previous cycle's iterate, so the first
  // estimate of cycle c+1 equals the explicit residual at the end of
  // cycle c: the history must stay non-increasing across the boundary.
  const auto A = gen::poisson2d(9);
  krylov::GmresOptions opts;
  opts.max_iters = 120;
  opts.restart = 15;
  opts.tol = 1e-10;
  const auto res = krylov::gmres(A, la::ones(81), opts);
  for (std::size_t k = 1; k < res.residual_history.size(); ++k) {
    EXPECT_LE(res.residual_history[k],
              res.residual_history[k - 1] * (1.0 + 1e-10))
        << "at iteration " << k;
  }
}

TEST(Gmres, ResidualEstimateMatchesExplicitResidualWithoutFaults) {
  const auto A = gen::convection_diffusion2d(7, 12.0, -4.0);
  const la::Vector b = la::ones(49);
  krylov::GmresOptions opts;
  opts.max_iters = 30;
  opts.tol = 1e-9;
  const auto res = krylov::gmres(A, b, opts);
  ASSERT_EQ(res.status, krylov::SolveStatus::Converged);
  EXPECT_NEAR(res.residual_norm, explicit_residual(A, b, res.x),
              1e-10 * la::nrm2(b));
}

TEST(Gmres, SolutionMatchesDirectSubstitutionOnTinySystem) {
  // 2x2 system solved by hand: A = [4 1; 2 3], b = [1; 2] -> x = [0.1; 0.6].
  sdcgmres::sparse::CooMatrix coo(2, 2);
  coo.add(0, 0, 4.0);
  coo.add(0, 1, 1.0);
  coo.add(1, 0, 2.0);
  coo.add(1, 1, 3.0);
  const sdcgmres::sparse::CsrMatrix A{std::move(coo)};
  krylov::GmresOptions opts;
  opts.tol = 1e-14;
  opts.max_iters = 2;
  const auto res = krylov::gmres(A, la::Vector{1.0, 2.0}, opts);
  EXPECT_NEAR(res.x[0], 0.1, 1e-12);
  EXPECT_NEAR(res.x[1], 0.6, 1e-12);
}

// ---------------------------------------------------------------------------
// GmresEngine: the step-driveable protocol behind gmres()/gmres_in_place()
// and the lockstep inner solves of ft_gmres_batch.
// ---------------------------------------------------------------------------

TEST(GmresEngine, ManualDriveIsBitwiseIdenticalToGmres) {
  // Driving the engine by hand through the documented protocol must
  // reproduce gmres() exactly -- including across restart cycles, where
  // the engine turns over into a fresh residual phase.
  const auto A = gen::convection_diffusion2d(9, 8.0, -3.0);
  const krylov::CsrOperator op(A);
  const la::Vector b = la::ones(A.rows());
  krylov::GmresOptions opts;
  opts.max_iters = 60;
  opts.restart = 7; // several cycles
  opts.tol = 1e-10;

  const auto reference = krylov::gmres(op, b, la::Vector(A.cols()), opts);

  krylov::KrylovWorkspace ws;
  la::Vector x(A.cols());
  std::vector<double> history;
  krylov::GmresEngine engine(op, b.span(), x.span(), opts, nullptr, 0, ws,
                             &history);
  EXPECT_TRUE(engine.awaiting_residual());
  std::size_t residual_steps = 0;
  std::size_t arnoldi_steps = 0;
  while (!engine.finished()) {
    if (engine.awaiting_residual()) {
      ++residual_steps;
      op.apply(engine.residual_operand(), engine.residual_target());
      engine.start_cycle();
    } else {
      ++arnoldi_steps;
      engine.begin_iteration();
      op.apply(engine.direction(), engine.v_target());
      engine.advance();
    }
  }
  const krylov::GmresStats& stats = engine.stats();

  EXPECT_EQ(stats.status, reference.status);
  EXPECT_EQ(stats.iterations, reference.iterations);
  EXPECT_EQ(stats.residual_norm, reference.residual_norm); // bitwise
  ASSERT_EQ(history.size(), reference.residual_history.size());
  for (std::size_t i = 0; i < history.size(); ++i) {
    ASSERT_EQ(history[i], reference.residual_history[i]) << "history " << i;
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_EQ(x[i], reference.x[i]) << "x[" << i << "]";
  }
  EXPECT_GT(residual_steps, 1u) << "test wants multiple restart cycles";
  EXPECT_EQ(stats.operator_applies, residual_steps + arnoldi_steps);
}

TEST(GmresEngine, OperatorApplyCountMatchesConsumedProducts) {
  // Every operator product the solve consumes is exactly one apply() in
  // the straight-through drive: the engine's operator_applies counter and
  // the operator's own traffic stats must agree.
  const auto A = gen::poisson2d(10);
  const krylov::CsrOperator op(A);
  const la::Vector b = la::ones(A.rows());
  krylov::GmresOptions opts;
  opts.max_iters = 12;
  opts.tol = 0.0; // fixed-iteration mode, the paper's inner-solve shape

  op.reset_stats();
  la::Vector x(A.cols());
  const auto stats = krylov::gmres_in_place(op, b.span(), x.span(), opts);
  EXPECT_EQ(stats.iterations, 12u);
  // One cycle-start residual + one product per Arnoldi iteration.
  EXPECT_EQ(stats.operator_applies, 13u);
  EXPECT_EQ(op.stats().apply_calls, stats.operator_applies);
  EXPECT_EQ(op.stats().apply_block_calls, 0u);
  EXPECT_EQ(op.stats().columns(), stats.operator_applies);
}
