#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "gen/poisson.hpp"
#include "gen/random_sparse.hpp"
#include "krylov/cg.hpp"
#include "krylov/gmres.hpp"
#include "la/blas1.hpp"

namespace krylov = sdcgmres::krylov;
namespace gen = sdcgmres::gen;
namespace la = sdcgmres::la;

namespace {

double explicit_residual(const sdcgmres::sparse::CsrMatrix& A,
                         const la::Vector& b, const la::Vector& x) {
  la::Vector r(A.rows());
  A.spmv(x, r);
  la::waxpby(1.0, b, -1.0, r, r);
  return la::nrm2(r);
}

} // namespace

TEST(Cg, SolvesPoisson) {
  const auto A = gen::poisson2d(12);
  const la::Vector b = la::ones(A.rows());
  krylov::CgOptions opts;
  opts.tol = 1e-10;
  const auto res = krylov::cg(A, b, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_FALSE(res.indefinite);
  EXPECT_LE(explicit_residual(A, b, res.x), 1e-8);
}

TEST(Cg, AgreesWithGmresOnSpdSystem) {
  const auto A = gen::poisson2d(8);
  const la::Vector b = la::ones(64);
  krylov::CgOptions copts;
  copts.tol = 1e-12;
  const auto rc = krylov::cg(A, b, copts);
  krylov::GmresOptions gopts;
  gopts.max_iters = 300;
  gopts.tol = 1e-12;
  const auto rg = krylov::gmres(A, b, gopts);
  ASSERT_TRUE(rc.converged);
  ASSERT_EQ(rg.status, krylov::SolveStatus::Converged);
  la::Vector diff = rc.x;
  la::axpy(-1.0, rg.x, diff);
  EXPECT_LE(la::nrm2(diff), 1e-8 * la::nrm2(rc.x));
}

TEST(Cg, JacobiPreconditioningReducesIterations) {
  // Anisotropic Laplacian: badly scaled; Jacobi helps.
  const auto A = gen::anisotropic2d(16, 100.0, 1.0);
  const la::Vector b = la::ones(A.rows());
  krylov::CgOptions plain;
  plain.tol = 1e-10;
  plain.max_iters = 5000;
  const auto res_plain = krylov::cg(A, b, plain);

  const krylov::JacobiPreconditioner jacobi(A);
  krylov::CgOptions pre = plain;
  pre.precond = &jacobi;
  const auto res_pre = krylov::cg(A, b, pre);

  ASSERT_TRUE(res_plain.converged);
  ASSERT_TRUE(res_pre.converged);
  EXPECT_LE(res_pre.iterations, res_plain.iterations);
}

TEST(Cg, DetectsIndefiniteMatrix) {
  // -Laplacian is negative definite: p^T A p < 0 on the first iteration.
  const auto A = gen::poisson2d(6).scaled(-1.0);
  const auto res = krylov::cg(A, la::ones(36), krylov::CgOptions{});
  EXPECT_TRUE(res.indefinite);
  EXPECT_FALSE(res.converged);
}

TEST(Cg, ExactInitialGuessConvergesWithoutIterating) {
  const auto A = gen::poisson2d(5);
  const la::Vector x_true = la::ones(25);
  const la::Vector b = A.apply(x_true);
  const krylov::CsrOperator op(A);
  const auto res = krylov::cg(op, b, x_true, krylov::CgOptions{});
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0u);
}

TEST(Cg, KrylovOptimalityFiniteTermination) {
  // CG on an n-dimensional SPD system terminates in at most n iterations
  // (exact arithmetic); allow a tiny slack for rounding.
  const auto A = gen::random_spd(30, 21);
  const la::Vector b = la::ones(30);
  krylov::CgOptions opts;
  opts.tol = 1e-10;
  opts.max_iters = 40;
  const auto res = krylov::cg(A, b, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 35u);
}

TEST(Cg, InvalidArgumentsThrow) {
  const auto A = gen::poisson1d(4);
  const krylov::CsrOperator op(A);
  EXPECT_THROW((void)krylov::cg(op, la::ones(5), la::zeros(4),
                                krylov::CgOptions{}),
               std::invalid_argument);
}

TEST(Cg, ResidualHistoryRecorded) {
  const auto A = gen::poisson2d(6);
  krylov::CgOptions opts;
  opts.tol = 1e-8;
  const auto res = krylov::cg(A, la::ones(36), opts);
  EXPECT_EQ(res.residual_history.size(), res.iterations);
}
