#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "gen/circuit.hpp"
#include "sparse/analysis.hpp"
#include "sparse/norms.hpp"

namespace gen = sdcgmres::gen;
namespace sparse = sdcgmres::sparse;

namespace {

gen::CircuitOptions small_options() {
  gen::CircuitOptions opts;
  opts.nodes = 500;
  return opts;
}

} // namespace

TEST(Circuit, DimensionsMatchOptions) {
  auto opts = small_options();
  const auto A = gen::circuit_like(opts);
  EXPECT_EQ(A.rows(), opts.nodes);
  EXPECT_EQ(A.cols(), opts.nodes);
  EXPECT_GT(A.nnz(), 3u * opts.nodes); // ring + shortcuts stamped
}

TEST(Circuit, DeterministicForFixedSeed) {
  const auto A = gen::circuit_like(small_options());
  const auto B = gen::circuit_like(small_options());
  ASSERT_EQ(A.nnz(), B.nnz());
  for (std::size_t k = 0; k < A.values().size(); ++k) {
    EXPECT_EQ(A.values()[k], B.values()[k]);
  }
}

TEST(Circuit, DifferentSeedsGiveDifferentMatrices) {
  auto opts = small_options();
  const auto A = gen::circuit_like(opts);
  opts.seed += 1;
  const auto B = gen::circuit_like(opts);
  bool any_difference = (A.nnz() != B.nnz());
  if (!any_difference) {
    for (std::size_t k = 0; k < A.values().size(); ++k) {
      if (A.values()[k] != B.values()[k]) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Circuit, PatternIsNonsymmetric) {
  // The one-sided VCCS stamps must break pattern symmetry (this is what
  // makes the Arnoldi H genuinely upper Hessenberg, Fig. 2 right).
  const auto A = gen::circuit_like(small_options());
  EXPECT_FALSE(sparse::is_pattern_symmetric(A));
  EXPECT_FALSE(sparse::is_numerically_symmetric(A));
}

TEST(Circuit, FrobeniusNormCalibratedToTable1) {
  const auto A = gen::circuit_like(small_options());
  EXPECT_NEAR(A.frobenius_norm(), 42.4179, 1e-6);
}

TEST(Circuit, NormalizationCanBeDisabled) {
  auto opts = small_options();
  opts.target_frobenius_norm = 0.0;
  const auto A = gen::circuit_like(opts);
  EXPECT_GT(A.frobenius_norm(), 0.0);
}

TEST(Circuit, SeverelyIllConditioned) {
  // Weak nodes spanning [1e-7, 1e-3] node scalings should produce a
  // condition number of at least ~1e10 (the paper's matrix has 7.3e13).
  auto opts = small_options();
  const auto A = gen::circuit_like(opts);
  const double sigma_max = sparse::estimate_two_norm(A).value;
  // Upper bound on sigma_min: |A e_w| for a weak node's unit vector is at
  // most the norm of that node's row/column entries.  Use the analysis
  // helper indirectly: the diagonal contains g * s_w^2 entries.
  double min_diag = 1e300;
  const auto d = A.diagonal();
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (d[i] != 0.0) min_diag = std::min(min_diag, std::abs(d[i]));
  }
  // sigma_min <= ||A e_i|| ~ column norm; the diagonal alone bounds the
  // order of magnitude here.
  EXPECT_GT(sigma_max / min_diag, 1e10);
}

TEST(Circuit, FullStructuralRank) {
  const auto A = gen::circuit_like(small_options());
  EXPECT_TRUE(sparse::has_nonempty_rows_and_cols(A));
}

TEST(Circuit, WeakNodeCountValidation) {
  auto opts = small_options();
  opts.weak_nodes = opts.nodes;
  EXPECT_THROW((void)gen::circuit_like(opts), std::invalid_argument);
}

TEST(Circuit, TooFewNodesThrows) {
  gen::CircuitOptions opts;
  opts.nodes = 2;
  EXPECT_THROW((void)gen::circuit_like(opts), std::invalid_argument);
}

TEST(Circuit, NoWeakNodesGivesModerateConditioning) {
  auto opts = small_options();
  opts.weak_nodes = 0;
  const auto A = gen::circuit_like(opts);
  const double cond = sparse::estimate_condition_number(A);
  EXPECT_LT(cond, 1e6); // without weak nodes the network is benign
}
