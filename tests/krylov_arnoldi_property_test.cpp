#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "gen/circuit.hpp"
#include "gen/convection_diffusion.hpp"
#include "gen/poisson.hpp"
#include "gen/random_sparse.hpp"
#include "krylov/arnoldi.hpp"
#include "la/blas1.hpp"
#include "sparse/norms.hpp"

namespace krylov = sdcgmres::krylov;
namespace gen = sdcgmres::gen;
namespace la = sdcgmres::la;
namespace sparse = sdcgmres::sparse;

namespace {

/// Named matrix factory so failures identify the family.
struct MatrixCase {
  std::string name;
  sparse::CsrMatrix matrix;
};


/// Start vector exciting (generically) all eigenvectors; a constant vector
/// spans a tiny invariant subspace on the Poisson grids.
la::Vector generic_vector(std::size_t n) {
  la::Vector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(1.7 * static_cast<double>(i) + 0.3) +
           0.01 * static_cast<double>(i % 13);
  }
  return v;
}

MatrixCase make_case(const std::string& name) {
  if (name == "poisson2d") return {name, gen::poisson2d(9)};
  if (name == "poisson3d") return {name, gen::poisson3d(4)};
  if (name == "anisotropic") return {name, gen::anisotropic2d(8, 25.0, 1.0)};
  if (name == "convection") {
    return {name, gen::convection_diffusion2d(8, 40.0, -10.0)};
  }
  if (name == "circuit") {
    gen::CircuitOptions opts;
    opts.nodes = 300;
    return {name, gen::circuit_like(opts)};
  }
  if (name == "random_spd") return {name, gen::random_spd(80, 3)};
  return {name, gen::random_diag_dominant(80, 5)};
}

using ParamT = std::tuple<std::string, krylov::Orthogonalization>;

class ArnoldiProperty : public ::testing::TestWithParam<ParamT> {};

} // namespace

/// The paper's Eq. (3): every upper-Hessenberg entry obeys
/// |h(i,j)| <= ||A||_2 <= ||A||_F -- for every matrix family and every
/// orthogonalization variant.
TEST_P(ArnoldiProperty, HessenbergEntriesObeyFrobeniusBound) {
  const auto [name, ortho] = GetParam();
  const auto [label, A] = make_case(name);
  const krylov::CsrOperator op(A);
  const double bound = A.frobenius_norm();

  const auto res = krylov::arnoldi(op, generic_vector(A.rows()), 15, ortho);
  for (std::size_t j = 0; j < res.steps; ++j) {
    for (std::size_t i = 0; i <= j + 1; ++i) {
      EXPECT_LE(std::abs(res.h(i, j)), bound * (1.0 + 1e-12))
          << label << " h(" << i << "," << j << ")";
    }
  }
}

/// The tighter form of the invariant: |h(i,j)| <= ||A||_2 (estimated).
TEST_P(ArnoldiProperty, HessenbergEntriesObeyTwoNormBound) {
  const auto [name, ortho] = GetParam();
  const auto [label, A] = make_case(name);
  const krylov::CsrOperator op(A);
  // Power iteration converges from below; pad by a small factor so the
  // check cannot fail merely because the estimate is slightly low.
  const double bound = sparse::estimate_two_norm(A, 500, 1e-12).value * 1.01;

  const auto res = krylov::arnoldi(op, generic_vector(A.rows()), 15, ortho);
  for (std::size_t j = 0; j < res.steps; ++j) {
    for (std::size_t i = 0; i <= j + 1; ++i) {
      EXPECT_LE(std::abs(res.h(i, j)), bound)
          << label << " h(" << i << "," << j << ")";
    }
  }
}

/// Basis orthonormality must hold across families and orthogonalizers.
TEST_P(ArnoldiProperty, BasisOrthonormal) {
  const auto [name, ortho] = GetParam();
  const auto [label, A] = make_case(name);
  const krylov::CsrOperator op(A);
  // 10 steps: past that the diagonally dominant families have nearly
  // converged Krylov spaces (tiny subdiagonals), and MGS/CGS orthogonality
  // degrades as O(eps / h_{j+1,j}) -- expected behaviour, not a defect.
  const auto res = krylov::arnoldi(op, generic_vector(A.rows()), 10, ortho);
  for (std::size_t a = 0; a < res.q.cols(); ++a) {
    for (std::size_t b = a; b < res.q.cols(); ++b) {
      const double target = (a == b) ? 1.0 : 0.0;
      EXPECT_NEAR(la::dot(res.q.col(a), res.q.col(b)), target, 1e-6)
          << label << " <q" << a << ", q" << b << ">";
    }
  }
}

/// The Arnoldi relation A Q_k = Q_{k+1} H_k holds for every variant.
TEST_P(ArnoldiProperty, HessenbergRelation) {
  const auto [name, ortho] = GetParam();
  const auto [label, A] = make_case(name);
  const krylov::CsrOperator op(A);
  const auto res = krylov::arnoldi(op, generic_vector(A.rows()), 12, ortho);
  const double scale = A.frobenius_norm();
  for (std::size_t j = 0; j < res.steps; ++j) {
    la::Vector aq(A.rows());
    op.apply(res.q.col(j), aq);
    for (std::size_t i = 0; i <= j + 1 && i < res.q.cols(); ++i) {
      la::axpy(-res.h(i, j), res.q.col(i), aq.span());
    }
    EXPECT_LE(la::nrm2(aq), 1e-10 * scale) << label << " column " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamiliesAndOrthogonalizers, ArnoldiProperty,
    ::testing::Combine(
        ::testing::Values("poisson2d", "poisson3d", "anisotropic",
                          "convection", "circuit", "random_spd",
                          "random_nonsym"),
        ::testing::Values(krylov::Orthogonalization::MGS,
                          krylov::Orthogonalization::CGS,
                          krylov::Orthogonalization::CGS2)),
    [](const ::testing::TestParamInfo<ParamT>& info) {
      return std::get<0>(info.param) + "_" +
             krylov::to_string(std::get<1>(info.param));
    });
