#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "la/blas2.hpp"
#include "la/krylov_basis.hpp"

namespace la = sdcgmres::la;

namespace {

double entry(std::size_t i, std::size_t j) {
  return std::sin(1.3 * static_cast<double>(i) +
                  0.7 * static_cast<double>(j)) +
         0.01 * static_cast<double>((i + 2 * j) % 7);
}

la::DenseMatrix test_matrix(std::size_t rows, std::size_t cols) {
  la::DenseMatrix a(rows, cols);
  for (std::size_t j = 0; j < cols; ++j) {
    for (std::size_t i = 0; i < rows; ++i) a(i, j) = entry(i, j);
  }
  return a;
}

la::KrylovBasis test_basis(std::size_t rows, std::size_t cols) {
  la::KrylovBasis b(rows, cols);
  for (std::size_t j = 0; j < cols; ++j) {
    std::span<double> c = b.append();
    for (std::size_t i = 0; i < rows; ++i) c[i] = entry(i, j);
  }
  return b;
}

la::Vector test_vector(std::size_t n, double phase) {
  la::Vector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::cos(0.9 * static_cast<double>(i) + phase);
  }
  return v;
}

/// Textbook row-by-row reference, deliberately unblocked.
la::Vector naive_gemv(double alpha, const la::DenseMatrix& a,
                      const la::Vector& x, double beta, const la::Vector& y0) {
  la::Vector y = y0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) sum += a(i, j) * x[j];
    y[i] = alpha * sum + beta * y0[i];
  }
  return y;
}

la::Vector naive_gemv_t(double alpha, const la::DenseMatrix& a,
                        const la::Vector& x, double beta,
                        const la::Vector& y0) {
  la::Vector y = y0;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    double sum = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) sum += a(i, j) * x[i];
    y[j] = alpha * sum + beta * y0[j];
  }
  return y;
}

} // namespace

/// The blocked kernels must agree with the naive reference across column
/// counts straddling the 4-wide block boundary (1..9 exercises full
/// blocks, remainders, and the empty remainder).
TEST(Blas2Gemv, BlockedMatchesNaiveAcrossColumnCounts) {
  const std::size_t rows = 53;
  for (std::size_t cols = 1; cols <= 9; ++cols) {
    const auto a = test_matrix(rows, cols);
    const auto x = test_vector(cols, 0.2);
    const auto y0 = test_vector(rows, 1.1);
    for (const double beta : {0.0, 1.0, -0.5}) {
      la::Vector y = y0;
      la::gemv(2.0, a, x, beta, y);
      const la::Vector ref = naive_gemv(2.0, a, x, beta, y0);
      for (std::size_t i = 0; i < rows; ++i) {
        EXPECT_NEAR(y[i], ref[i], 1e-12) << "cols=" << cols
                                         << " beta=" << beta << " i=" << i;
      }
    }
  }
}

TEST(Blas2GemvT, BlockedMatchesNaiveAcrossColumnCounts) {
  const std::size_t rows = 53;
  for (std::size_t cols = 1; cols <= 9; ++cols) {
    const auto a = test_matrix(rows, cols);
    const auto x = test_vector(rows, 0.4);
    const auto y0 = test_vector(cols, 2.3);
    for (const double beta : {0.0, 1.0, -0.5}) {
      la::Vector y = y0;
      la::gemv_t(1.5, a, x, beta, y);
      const la::Vector ref = naive_gemv_t(1.5, a, x, beta, y0);
      for (std::size_t j = 0; j < cols; ++j) {
        EXPECT_NEAR(y[j], ref[j], 1e-12) << "cols=" << cols
                                         << " beta=" << beta << " j=" << j;
      }
    }
  }
}

/// With beta == 0, y must be overwritten even when it starts as NaN (the
/// coefficients buffer of the fused CGS pass is uninitialized scratch).
TEST(Blas2GemvT, BetaZeroOverwritesNonFiniteY) {
  const auto a = test_matrix(10, 3);
  const auto x = test_vector(10, 0.0);
  la::Vector y(3, std::nan(""));
  la::gemv_t(1.0, a, x, 0.0, y);
  for (std::size_t j = 0; j < 3; ++j) EXPECT_TRUE(std::isfinite(y[j]));
}

TEST(Blas2Gemv, BetaZeroOverwritesNonFiniteY) {
  const auto a = test_matrix(6, 2);
  const auto x = test_vector(2, 0.0);
  la::Vector y(6, std::nan(""));
  la::gemv(1.0, a, x, 0.0, y);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_TRUE(std::isfinite(y[i]));
}

/// Each gemv_t coefficient keeps the sequential accumulation order of a
/// naive dot product: bitwise equality, not just closeness.  This is what
/// makes the fused CGS hook values identical to the per-vector path.
TEST(Blas2GemvT, CoefficientsBitwiseMatchSequentialDot) {
  const std::size_t rows = 4099; // not a multiple of anything convenient
  const std::size_t cols = 7;
  const auto b = test_basis(rows, cols);
  const auto x = test_vector(rows, 0.8);
  std::vector<double> y(cols, 0.0);
  la::gemv_t(1.0, b.view(cols), x.span(), 0.0, y);
  for (std::size_t j = 0; j < cols; ++j) {
    double ref = 0.0;
    const std::span<const double> cj = b.col(j);
    for (std::size_t i = 0; i < rows; ++i) ref += cj[i] * x[i];
    EXPECT_EQ(y[j], ref) << "column " << j;
  }
}

TEST(Blas2BasisView, GemvAgreesWithDenseCopy) {
  const std::size_t rows = 31;
  const std::size_t cols = 6;
  const auto b = test_basis(rows, cols);
  const la::DenseMatrix a = b.to_dense();
  const auto x = test_vector(cols, 0.5);
  la::Vector y_basis(rows);
  la::gemv(1.0, b.view(cols), x.span(), 0.0, y_basis.span());
  la::Vector y_dense(rows);
  la::gemv(1.0, a, x, 0.0, y_dense);
  for (std::size_t i = 0; i < rows; ++i) {
    EXPECT_DOUBLE_EQ(y_basis[i], y_dense[i]);
  }
}

TEST(Blas2BasisView, DimensionMismatchThrows) {
  const auto b = test_basis(5, 2);
  la::Vector x(3), y(5);
  EXPECT_THROW(la::gemv(1.0, b.view(2), x.span(), 0.0, y.span()),
               std::invalid_argument);
  EXPECT_THROW(la::gemv_t(1.0, b.view(2), y.span(), 0.0, x.span()),
               std::invalid_argument);
}

TEST(Blas2, OrthonormalityDefectOnBasisView) {
  la::KrylovBasis b(4, 2);
  b.append(la::Vector{1.0, 0.0, 0.0, 0.0});
  b.append(la::Vector{0.0, 1.0, 0.0, 0.0});
  EXPECT_NEAR(la::orthonormality_defect(b.view()), 0.0, 1e-15);
  // Perturb: defect must track the perturbation.
  b.col(1)[0] = 0.25;
  EXPECT_NEAR(la::orthonormality_defect(b.view()), 0.25, 1e-12);
}
