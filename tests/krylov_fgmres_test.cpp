#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <span>
#include <stdexcept>

#include "gen/convection_diffusion.hpp"
#include "gen/poisson.hpp"
#include "krylov/fgmres.hpp"
#include "krylov/gmres.hpp"
#include "la/blas1.hpp"

namespace krylov = sdcgmres::krylov;
namespace gen = sdcgmres::gen;
namespace la = sdcgmres::la;

namespace {

/// Flexible preconditioner that alternates between Jacobi-like scaling and
/// identity -- a legitimate "changing preconditioner" workload for FGMRES.
class AlternatingPreconditioner final : public krylov::FlexiblePreconditioner {
public:
  explicit AlternatingPreconditioner(const la::Vector& inv_diag)
      : inv_diag_(inv_diag) {}
  using krylov::FlexiblePreconditioner::apply;
  void apply(std::span<const double> q, std::size_t outer_index,
             std::span<double> z) override {
    if (outer_index % 2 == 0) {
      la::hadamard(q, std::span<const double>(inv_diag_.span()), z);
    } else {
      la::copy(q, z);
    }
  }

private:
  la::Vector inv_diag_;
};

/// Guest that returns NaN-poisoned output on one chosen invocation.
class PoisonedPreconditioner final : public krylov::FlexiblePreconditioner {
public:
  explicit PoisonedPreconditioner(std::size_t poisoned_call)
      : poisoned_(poisoned_call) {}
  using krylov::FlexiblePreconditioner::apply;
  void apply(std::span<const double> q, std::size_t outer_index,
             std::span<double> z) override {
    la::copy(q, z);
    if (outer_index == poisoned_) {
      z[0] = std::numeric_limits<double>::quiet_NaN();
    }
  }

private:
  std::size_t poisoned_;
};

double explicit_residual(const sdcgmres::sparse::CsrMatrix& A,
                         const la::Vector& b, const la::Vector& x) {
  la::Vector r(A.rows());
  A.spmv(x, r);
  la::waxpby(1.0, b, -1.0, r, r);
  return la::nrm2(r);
}

} // namespace

TEST(Fgmres, IdentityPreconditionerMatchesGmres) {
  const auto A = gen::poisson2d(8);
  const la::Vector b = la::ones(A.rows());
  const krylov::CsrOperator op(A);

  krylov::IdentityPreconditioner ident;
  krylov::FixedFlexibleAdapter M(ident);
  krylov::FgmresOptions opts;
  opts.max_outer = 200;
  opts.tol = 1e-10;
  const auto flex = krylov::fgmres(op, b, la::zeros(64), opts, M);

  krylov::GmresOptions gopts;
  gopts.max_iters = 200;
  gopts.tol = 1e-10;
  const auto plain = krylov::gmres(A, b, gopts);

  ASSERT_EQ(flex.status, krylov::SolveStatus::Converged);
  ASSERT_EQ(plain.status, krylov::SolveStatus::Converged);
  // With M = I, FGMRES *is* GMRES: same iteration counts.
  EXPECT_EQ(flex.outer_iterations, plain.iterations);
}

TEST(Fgmres, ConvergesWithChangingPreconditioner) {
  const auto A = gen::convection_diffusion2d(9, 10.0, 5.0);
  const la::Vector b = la::ones(A.rows());
  const krylov::CsrOperator op(A);
  la::Vector inv_diag = A.diagonal();
  for (std::size_t i = 0; i < inv_diag.size(); ++i) {
    inv_diag[i] = 1.0 / inv_diag[i];
  }
  AlternatingPreconditioner M(inv_diag);
  krylov::FgmresOptions opts;
  opts.max_outer = 150;
  opts.tol = 1e-10;
  const auto res = krylov::fgmres(op, b, la::zeros(81), opts, M);
  EXPECT_EQ(res.status, krylov::SolveStatus::Converged);
  EXPECT_LE(explicit_residual(A, b, res.x), 1e-8);
}

TEST(Fgmres, ExplicitResidualIsReportedAtExit) {
  const auto A = gen::poisson2d(7);
  const la::Vector b = la::ones(49);
  const krylov::CsrOperator op(A);
  krylov::IdentityPreconditioner ident;
  krylov::FixedFlexibleAdapter M(ident);
  krylov::FgmresOptions opts;
  opts.tol = 1e-9;
  const auto res = krylov::fgmres(op, b, la::zeros(49), opts, M);
  EXPECT_NEAR(res.residual_norm, explicit_residual(A, b, res.x),
              1e-12 * la::nrm2(b));
}

TEST(Fgmres, SanitizesNonFinitePreconditionerOutput) {
  const auto A = gen::poisson2d(7);
  const la::Vector b = la::ones(49);
  const krylov::CsrOperator op(A);
  PoisonedPreconditioner M(2); // third outer iteration returns NaN
  krylov::FgmresOptions opts;
  opts.max_outer = 120;
  opts.tol = 1e-9;
  const auto res = krylov::fgmres(op, b, la::zeros(49), opts, M);
  EXPECT_EQ(res.status, krylov::SolveStatus::Converged);
  EXPECT_EQ(res.sanitized_outputs, 1u);
  EXPECT_LE(explicit_residual(A, b, res.x), 1e-7);
}

TEST(Fgmres, SanitizationCanBeDisabled) {
  const auto A = gen::poisson2d(5);
  const la::Vector b = la::ones(25);
  const krylov::CsrOperator op(A);
  PoisonedPreconditioner M(0);
  krylov::FgmresOptions opts;
  opts.sanitize_preconditioner_output = false;
  opts.max_outer = 10;
  const auto res = krylov::fgmres(op, b, la::zeros(25), opts, M);
  // NaN floods the iteration; the solver must not claim convergence.
  EXPECT_NE(res.status, krylov::SolveStatus::Converged);
  EXPECT_EQ(res.sanitized_outputs, 0u);
}

TEST(Fgmres, DegenerateGuestDirectionIsRetriedWithIdentity) {
  // A guest returning a ~zero (but nonzero, finite) vector creates a
  // numerically rank-deficient Hessenberg column.  The reliable phase
  // must discard it and retry with the identity preconditioner rather
  // than declaring rank deficiency (this is how FT-GMRES runs through a
  // fault whose truncated projected solve degenerates the inner update).
  class TinyGuest final : public krylov::FlexiblePreconditioner {
  public:
    using krylov::FlexiblePreconditioner::apply;
    void apply(std::span<const double> q, std::size_t outer_index,
               std::span<double> z) override {
      la::copy(q, z);
      if (outer_index == 1) la::scal(1e-150, z);
    }
  };
  const auto A = gen::poisson2d(6);
  const krylov::CsrOperator op(A);
  TinyGuest M;
  krylov::FgmresOptions opts;
  opts.max_outer = 120;
  opts.tol = 1e-8;
  const auto res = krylov::fgmres(op, la::ones(36), la::zeros(36), opts, M);
  EXPECT_EQ(res.status, krylov::SolveStatus::Converged);
  EXPECT_GE(res.sanitized_outputs, 1u);
}

TEST(Fgmres, DegenerateDirectionIsLoudFailureWhenSanitizationOff) {
  class TinyGuest final : public krylov::FlexiblePreconditioner {
  public:
    using krylov::FlexiblePreconditioner::apply;
    void apply(std::span<const double> q, std::size_t outer_index,
               std::span<double> z) override {
      la::copy(q, z);
      if (outer_index == 1) la::scal(1e-150, z);
    }
  };
  const auto A = gen::poisson2d(6);
  const krylov::CsrOperator op(A);
  TinyGuest M;
  krylov::FgmresOptions opts;
  opts.max_outer = 20;
  opts.tol = 1e-8;
  opts.sanitize_preconditioner_output = false;
  const auto res = krylov::fgmres(op, la::ones(36), la::zeros(36), opts, M);
  // Trichotomy: never a silent wrong answer -- the degenerate basis is
  // reported loudly.
  EXPECT_EQ(res.status, krylov::SolveStatus::RankDeficient);
}

TEST(Fgmres, ZeroInitialResidualReturnsImmediately) {
  const auto A = gen::poisson2d(5);
  const la::Vector x_true = la::ones(25);
  const la::Vector b = A.apply(x_true);
  const krylov::CsrOperator op(A);
  krylov::IdentityPreconditioner ident;
  krylov::FixedFlexibleAdapter M(ident);
  const auto res = krylov::fgmres(op, b, x_true, krylov::FgmresOptions{}, M);
  EXPECT_EQ(res.status, krylov::SolveStatus::Converged);
  EXPECT_EQ(res.outer_iterations, 0u);
}

TEST(Fgmres, TracksRankChecks) {
  const auto A = gen::poisson2d(6);
  const krylov::CsrOperator op(A);
  krylov::IdentityPreconditioner ident;
  krylov::FixedFlexibleAdapter M(ident);
  krylov::FgmresOptions opts;
  opts.tol = 1e-8;
  opts.rank_check_every_iteration = true;
  const auto res = krylov::fgmres(op, la::ones(36), la::zeros(36), opts, M);
  EXPECT_EQ(res.rank_checks, res.outer_iterations);
  EXPECT_GT(res.min_sigma_ratio, 0.0);
  EXPECT_LE(res.min_sigma_ratio, 1.0);
}

TEST(Fgmres, MaxIterationsReportedWhenBudgetTooSmall) {
  const auto A = gen::poisson2d(10);
  const krylov::CsrOperator op(A);
  krylov::IdentityPreconditioner ident;
  krylov::FixedFlexibleAdapter M(ident);
  krylov::FgmresOptions opts;
  opts.max_outer = 3;
  opts.tol = 1e-12;
  const auto res = krylov::fgmres(op, la::ones(100), la::zeros(100), opts, M);
  EXPECT_EQ(res.status, krylov::SolveStatus::MaxIterations);
  EXPECT_EQ(res.outer_iterations, 3u);
  // Even without convergence the best iterate is returned.
  EXPECT_LT(res.residual_norm, la::nrm2(la::ones(100)));
}

TEST(Fgmres, InvalidArgumentsThrow) {
  const auto A = gen::poisson1d(4);
  const krylov::CsrOperator op(A);
  krylov::IdentityPreconditioner ident;
  krylov::FixedFlexibleAdapter M(ident);
  krylov::FgmresOptions opts;
  EXPECT_THROW(
      (void)krylov::fgmres(op, la::ones(5), la::zeros(4), opts, M),
      std::invalid_argument);
  opts.max_outer = 0;
  EXPECT_THROW(
      (void)krylov::fgmres(op, la::ones(4), la::zeros(4), opts, M),
      std::invalid_argument);
}

TEST(Fgmres, StatusNamesAreStable) {
  EXPECT_STREQ(krylov::to_string(krylov::SolveStatus::Converged),
               "converged");
  EXPECT_STREQ(krylov::to_string(krylov::SolveStatus::HappyBreakdown),
               "happy-breakdown");
  EXPECT_STREQ(krylov::to_string(krylov::SolveStatus::Indefinite),
               "indefinite");
  EXPECT_STREQ(krylov::to_string(krylov::SolveStatus::RankDeficient),
               "rank-deficient");
  EXPECT_STREQ(krylov::to_string(krylov::SolveStatus::MaxIterations),
               "max-iterations");
}
