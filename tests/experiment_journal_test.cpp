#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include <unistd.h>

#include "experiment/journal.hpp"
#include "experiment/sweep.hpp"
#include "gen/poisson.hpp"
#include "la/blas1.hpp"

namespace experiment = sdcgmres::experiment;
namespace krylov = sdcgmres::krylov;
namespace gen = sdcgmres::gen;
namespace la = sdcgmres::la;

namespace {

/// Unique journal path under gtest's temp dir (tests may run in parallel).
std::string journal_path(const char* name) {
  return testing::TempDir() + "sdcgmres_journal_" + name + "_" +
         std::to_string(::getpid()) + ".jsonl";
}

experiment::SweepJournalHeader sample_header() {
  experiment::SweepJournalHeader h;
  h.baseline_outer = 7;
  h.baseline_total_inner = 70;
  h.baseline_converged = true;
  h.n_points = 70;
  h.stride = 1;
  h.site_limit = 0;
  return h;
}

experiment::SweepPoint sample_point(std::size_t site) {
  experiment::SweepPoint p;
  p.aggregate_iteration = site;
  p.outer_iterations = 7 + site % 3;
  p.converged = true;
  p.injected = true;
  p.detected = site % 2 == 0;
  p.sanitized_outputs = site % 2;
  p.inner_applies = 25 * (7 + site % 3);
  p.inner_diverged = site % 4 == 0 ? 1 : 0;
  p.reliable_retries = site % 2;
  p.outer_restarts = site % 3;
  p.status = krylov::SolveStatus::Converged;
  // A value with no short decimal representation: the bit-pattern
  // round-trip is exactly what distinguishes the journal from a CSV.
  p.residual_norm = 1.0 / 3.0 * static_cast<double>(site + 1) * 1e-9;
  return p;
}

experiment::SweepConfig small_sweep_config() {
  experiment::SweepConfig config;
  config.solver.inner.max_iters = 5;
  config.solver.outer.tol = 1e-8;
  config.solver.outer.max_outer = 120;
  return config;
}

} // namespace

TEST(SweepJournal, MissingFileLoadsEmpty) {
  const auto contents =
      experiment::SweepJournal::load(journal_path("missing"));
  EXPECT_FALSE(contents.has_header);
  EXPECT_TRUE(contents.points.empty());
  EXPECT_FALSE(contents.discarded_tail);
}

TEST(SweepJournal, WriteMergedRoundTripsBitwise) {
  const std::string path = journal_path("roundtrip");
  const auto header = sample_header();
  std::vector<std::pair<std::size_t, experiment::SweepPoint>> points;
  for (std::size_t i = 0; i < 5; ++i) points.emplace_back(i, sample_point(i));

  experiment::SweepJournal::write_merged(path, header, points);
  const auto contents = experiment::SweepJournal::load(path);

  ASSERT_TRUE(contents.has_header);
  EXPECT_EQ(contents.header, header);
  ASSERT_EQ(contents.points.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(contents.points[i].first, points[i].first);
    // SweepPoint::operator== compares the residual doubles exactly: this
    // is the bitwise identity the u64 encoding exists for.
    EXPECT_EQ(contents.points[i].second, points[i].second);
  }
  EXPECT_FALSE(contents.discarded_tail);
  std::remove(path.c_str());
}

TEST(SweepJournal, AppendFlushLoadRoundTrips) {
  const std::string path = journal_path("append");
  const auto header = sample_header();
  {
    experiment::SweepJournal writer(path);
    writer.append_header(header);
    writer.append_point(3, sample_point(3));
    writer.flush();
    writer.append_point(4, sample_point(4));
    writer.flush();
  }
  const auto contents = experiment::SweepJournal::load(path);
  ASSERT_TRUE(contents.has_header);
  EXPECT_EQ(contents.header, header);
  ASSERT_EQ(contents.points.size(), 2u);
  EXPECT_EQ(contents.points[0].first, 3u);
  EXPECT_EQ(contents.points[1].second, sample_point(4));
  std::remove(path.c_str());
}

TEST(SweepJournal, UnterminatedTailIsDiscardedEvenWhenItParses) {
  const std::string path = journal_path("tail");
  std::vector<std::pair<std::size_t, experiment::SweepPoint>> points{
      {0, sample_point(0)}, {1, sample_point(1)}};
  experiment::SweepJournal::write_merged(path, sample_header(), points);

  // Chop the trailing newline: the last line still parses, but a crash
  // mid-append can truncate a number without breaking the syntax, so the
  // loader must drop the tail unconditionally.
  std::ifstream in(path);
  std::stringstream data;
  data << in.rdbuf();
  in.close();
  std::string text = data.str();
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '\n');
  text.pop_back();
  std::ofstream(path, std::ios::trunc) << text;

  const auto contents = experiment::SweepJournal::load(path);
  EXPECT_TRUE(contents.discarded_tail);
  ASSERT_EQ(contents.points.size(), 1u);
  EXPECT_EQ(contents.points[0].first, 0u);
  std::remove(path.c_str());
}

TEST(SweepJournal, MalformedInteriorLineThrowsWithPathAndLineNumber) {
  const std::string path = journal_path("corrupt");
  experiment::SweepJournal::write_merged(
      path, sample_header(), {{0, sample_point(0)}, {1, sample_point(1)}});
  // Overwrite line 2 (the first point) with garbage of the same shape.
  std::ifstream in(path);
  std::string line, text;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    text += line_no == 2 ? "{\"type\":\"point\",garbage" : line;
    text += '\n';
  }
  in.close();
  std::ofstream(path, std::ios::trunc) << text;

  try {
    (void)experiment::SweepJournal::load(path);
    FAIL() << "corrupt interior line must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(SweepJournal, UnwritableDirectoryThrowsWithPathAndReason) {
  const std::string path = "/nonexistent-dir/sweep.jsonl";
  try {
    experiment::SweepJournal writer(path);
    FAIL() << "opening a journal in a missing directory must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("open for appending"), std::string::npos) << what;
  }
}

TEST(SweepJournal, DuplicateIndicesKeepTheLastOccurrence) {
  const std::string path = journal_path("dup");
  auto early = sample_point(2);
  auto late = sample_point(2);
  late.outer_iterations = 99;
  experiment::SweepJournal::write_merged(path, sample_header(),
                                         {{2, early}, {2, late}});
  const auto contents = experiment::SweepJournal::load(path);
  ASSERT_EQ(contents.points.size(), 2u);
  EXPECT_EQ(contents.points.back().second.outer_iterations, 99u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Checkpoint/resume through the sweep engine.
// ---------------------------------------------------------------------------

TEST(SweepJournalResume, InterruptedSweepResumesBitwiseIdentical) {
  const auto A = gen::poisson2d(6);
  const la::Vector b = la::ones(36);
  auto config = small_sweep_config();

  // Reference: one uninterrupted, journal-free sweep.
  const auto reference = experiment::run_injection_sweep(A, b, config);

  // "Interrupted" run: journal everything, then truncate the journal to
  // the header plus half the points -- exactly what a crash leaves behind
  // (the final partial line case is covered above).
  const std::string path = journal_path("resume");
  config.journal = path;
  (void)experiment::run_injection_sweep(A, b, config);

  auto full = experiment::SweepJournal::load(path);
  ASSERT_TRUE(full.has_header);
  ASSERT_EQ(full.points.size(), reference.points.size());
  full.points.resize(full.points.size() / 2);
  experiment::SweepJournal::write_merged(path, full.header, full.points);

  config.resume = true;
  const auto resumed = experiment::run_injection_sweep(A, b, config);
  EXPECT_EQ(resumed.points, reference.points);
  EXPECT_EQ(resumed.baseline_outer, reference.baseline_outer);
  EXPECT_EQ(resumed.baseline_total_inner, reference.baseline_total_inner);

  // The finished journal holds every point again, in index order.
  const auto final_contents = experiment::SweepJournal::load(path);
  EXPECT_EQ(final_contents.points.size(), reference.points.size());
  std::remove(path.c_str());
}

TEST(SweepJournalResume, HeaderMismatchRefusesToResume) {
  const auto A = gen::poisson2d(6);
  const la::Vector b = la::ones(36);
  auto config = small_sweep_config();
  const std::string path = journal_path("mismatch");
  config.journal = path;
  (void)experiment::run_injection_sweep(A, b, config);

  // The same journal fed to a differently-shaped sweep must be refused:
  // stride changes the point <-> site mapping.
  config.resume = true;
  config.stride = 2;
  EXPECT_THROW((void)experiment::run_injection_sweep(A, b, config),
               std::invalid_argument);
  std::remove(path.c_str());
}

// --- stats records + progress tailing --------------------------------------

namespace {

experiment::SweepRunningStats sample_stats(std::size_t done) {
  experiment::SweepRunningStats s;
  s.points_done = done;
  s.traffic.apply_calls = 100 * done;
  s.traffic.apply_block_calls = 7 * done;
  s.traffic.block_columns = 28 * done;
  s.traffic.scalar_bytes = 1'000'000 * done + 13;
  s.traffic.index_bytes = 800'000 * done + 5;
  return s;
}

} // namespace

TEST(SweepJournal, StatsRecordsRoundTripAndLastWins) {
  const std::string path = journal_path("stats");
  {
    experiment::SweepJournal writer(path);
    writer.append_header(sample_header());
    writer.append_point(0, sample_point(0));
    writer.append_stats(sample_stats(1));
    writer.append_point(1, sample_point(1));
    writer.append_stats(sample_stats(2));
    writer.flush();
  }
  const auto contents = experiment::SweepJournal::load(path);
  ASSERT_TRUE(contents.has_stats);
  // The LAST record wins: it is the cumulative baseline a resume
  // restores, so the raw traffic decomposition must round-trip exactly.
  EXPECT_EQ(contents.stats, sample_stats(2));
  std::remove(path.c_str());
}

TEST(SweepJournal, WriteMergedDropsStatsRecords) {
  const std::string path = journal_path("stats_merged");
  {
    experiment::SweepJournal writer(path);
    writer.append_header(sample_header());
    writer.append_point(0, sample_point(0));
    writer.append_stats(sample_stats(1));
    writer.flush();
  }
  auto contents = experiment::SweepJournal::load(path);
  ASSERT_TRUE(contents.has_stats);
  experiment::SweepJournal::write_merged(path, contents.header,
                                         contents.points);
  contents = experiment::SweepJournal::load(path);
  EXPECT_FALSE(contents.has_stats)
      << "compaction drops stats lines; the resume path re-appends the "
         "restored baseline itself";
  EXPECT_EQ(contents.points.size(), 1u);
  std::remove(path.c_str());
}

TEST(SweepJournal, TailOfMissingJournalIsNotStarted) {
  const auto progress =
      experiment::tail_sweep_journal(journal_path("tail_missing"));
  EXPECT_FALSE(progress.started);
  EXPECT_EQ(progress.points_done, 0u);
  EXPECT_FALSE(progress.has_stats);
}

TEST(SweepJournal, TailAggregatesPointsWithLastWinsDedup) {
  const std::string path = journal_path("tail_agg");
  {
    experiment::SweepJournal writer(path);
    writer.append_header(sample_header());
    writer.append_point(0, sample_point(0));
    writer.append_point(1, sample_point(1));
    // Point 0 journaled twice (a re-queued shard range re-solves it):
    // the tail must count it once, keeping the LAST occurrence.
    writer.append_point(0, sample_point(0));
    writer.append_stats(sample_stats(2));
    writer.flush();
  }
  const auto progress = experiment::tail_sweep_journal(path);
  EXPECT_TRUE(progress.started);
  EXPECT_EQ(progress.header, sample_header());
  EXPECT_EQ(progress.points_done, 2u);
  EXPECT_EQ(progress.detected, 1u); // sites 0 (even) of {0,1}
  EXPECT_EQ(progress.diverged, 1u); // site 0 has inner_diverged == 1
  EXPECT_EQ(progress.reliable_retries, 1u); // 0%2 + 1%2
  EXPECT_EQ(progress.outer_restarts, 1u);   // 0%3 + 1%3
  ASSERT_TRUE(progress.has_stats);
  EXPECT_EQ(progress.stats, sample_stats(2));
  std::remove(path.c_str());
}
