#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>
#include <string>

#include <unistd.h>

#include "service/job.hpp"
#include "service/spool.hpp"

namespace service = sdcgmres::service;

namespace {

std::string fresh_root(const char* name) {
  return testing::TempDir() + "sdcgmres_spool_" + name + "_" +
         std::to_string(::getpid());
}

/// Write a job file body directly (for load_job_file tests).
std::string write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path);
  out << body;
  return path;
}

} // namespace

TEST(Spool, InitCreatesEveryStateDirectoryIdempotently) {
  const std::string root = fresh_root("init");
  const service::SpoolPaths paths = service::init_spool(root);
  for (const std::string* dir :
       {&paths.queue, &paths.running, &paths.done, &paths.failed,
        &paths.journals, &paths.tmp}) {
    EXPECT_TRUE(std::ifstream(*dir).good() || true); // exists as dir
    EXPECT_TRUE(service::list_jobs(*dir).empty());
  }
  // Second init over the same tree is a no-op, not an error.
  EXPECT_NO_THROW((void)service::init_spool(root));
}

TEST(Spool, SubmitIsAtomicAndListedFifo) {
  const service::SpoolPaths paths = service::init_spool(fresh_root("submit"));
  service::submit_job(paths, "j00000002", "matrix=poisson n=10\n");
  service::submit_job(paths, "j00000001", "matrix=poisson n=11\n");
  // tmp/ holds no leftover staging file after the renames.
  EXPECT_TRUE(service::list_jobs(paths.tmp).empty());
  const auto ids = service::list_jobs(paths.queue);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], "j00000001") << "ids list in submit-sequence order";
  EXPECT_EQ(ids[1], "j00000002");
  EXPECT_EQ(service::read_file(service::job_path(paths.queue, "j00000002")),
            "matrix=poisson n=10\n");
}

TEST(Spool, LifecycleTransitionsMoveTheJobFile) {
  const service::SpoolPaths paths = service::init_spool(fresh_root("life"));
  service::submit_job(paths, "j1", "matrix=poisson n=10\n");

  ASSERT_TRUE(service::claim_job(paths, "j1"));
  EXPECT_TRUE(service::list_jobs(paths.queue).empty());
  EXPECT_EQ(service::list_jobs(paths.running),
            std::vector<std::string>{"j1"});
  EXPECT_FALSE(service::claim_job(paths, "j1"))
      << "a second claim must lose the rename race";

  service::finish_job(paths, "j1");
  EXPECT_TRUE(service::list_jobs(paths.running).empty());
  EXPECT_EQ(service::list_jobs(paths.done), std::vector<std::string>{"j1"});
}

TEST(Spool, FailWritesReasonBeforeQuarantining) {
  const service::SpoolPaths paths = service::init_spool(fresh_root("fail"));
  service::submit_job(paths, "j1", "garbage\n");
  ASSERT_TRUE(service::claim_job(paths, "j1"));
  service::fail_job(paths, "j1", "token 'garbage' has no '='");
  EXPECT_EQ(service::list_jobs(paths.failed), std::vector<std::string>{"j1"});
  EXPECT_EQ(service::read_file(paths.failed + "/j1.reason"),
            "token 'garbage' has no '='\n");
}

TEST(Spool, RequeueRunningRecoversCrashedJobs) {
  const service::SpoolPaths paths = service::init_spool(fresh_root("requeue"));
  service::submit_job(paths, "j1", "a=1\n");
  service::submit_job(paths, "j2", "a=2\n");
  ASSERT_TRUE(service::claim_job(paths, "j1"));
  // Simulated kill -9: the claimed job never finished.
  EXPECT_EQ(service::requeue_running(paths), 1u);
  const auto ids = service::list_jobs(paths.queue);
  EXPECT_EQ(ids, (std::vector<std::string>{"j1", "j2"}));
  EXPECT_TRUE(service::list_jobs(paths.running).empty());
}

// --- job files -------------------------------------------------------------

TEST(JobFile, LoadsSpecAndStripsEnvelopeKeys) {
  const std::string path = write_file(
      fresh_root("job_ok") + ".job",
      "# nightly batch for alice\n"
      "tenant=alice priority=7\n"
      "matrix=poisson n=20 inner=10\n"
      "sweep=1 fault=class1\n");
  const service::JobRecord job = service::load_job_file(path);
  EXPECT_EQ(job.tenant, "alice");
  EXPECT_EQ(job.priority, 7);
  EXPECT_FALSE(job.spec.has("tenant"));
  EXPECT_FALSE(job.spec.has("priority"));
  EXPECT_EQ(job.spec.to_string(),
            "matrix=poisson n=20 inner=10 sweep=1 fault=class1")
      << "the stripped spec must match what sdc_run would be given";
}

TEST(JobFile, DefaultsTenantAndPriority) {
  const std::string path =
      write_file(fresh_root("job_dflt") + ".job", "matrix=poisson n=10\n");
  const service::JobRecord job = service::load_job_file(path);
  EXPECT_EQ(job.tenant, "default");
  EXPECT_EQ(job.priority, 0);
}

TEST(JobFile, RejectsSchedulerOwnedKeys) {
  for (const char* body :
       {"matrix=poisson journal=/tmp/x.jsonl\n", "matrix=poisson resume=1\n"}) {
    const std::string path = write_file(
        fresh_root("job_owned") + std::to_string(body[15]) + ".job", body);
    try {
      (void)service::load_job_file(path);
      FAIL() << "scheduler-owned key must be rejected: " << body;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
          << "the error must carry the job file path";
      EXPECT_NE(std::string(e.what()).find("owned by the scheduler"),
                std::string::npos);
    }
  }
}

TEST(JobFile, RejectsNonIntegerPriorityWithPath) {
  const std::string path = write_file(fresh_root("job_prio") + ".job",
                                      "matrix=poisson priority=high\n");
  try {
    (void)service::load_job_file(path);
    FAIL() << "priority=high must be rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("priority='high'"),
              std::string::npos);
  }
}

TEST(JobFile, RejectsUnknownScenarioKeysWithPath) {
  const std::string path = write_file(fresh_root("job_typo") + ".job",
                                      "matrix=poisson positon=first\n");
  try {
    (void)service::load_job_file(path);
    FAIL() << "a typo'd scenario key must be rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("positon"), std::string::npos);
  }
}

TEST(JobFile, DuplicateKeyRejectionPropagatesPathAndLines) {
  const std::string path = write_file(fresh_root("job_dup") + ".job",
                                      "matrix=poisson\n"
                                      "n=20\n"
                                      "n=40\n");
  try {
    (void)service::load_job_file(path);
    FAIL() << "duplicate keys in a job file must be rejected";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos);
    EXPECT_NE(what.find("duplicate key 'n' at line 3"), std::string::npos);
    EXPECT_NE(what.find("first assigned at line 2"), std::string::npos);
  }
}
